"""Shared fixtures: small reference particle distributions.

Everything here is sized for sub-second construction so the full suite stays
fast; the physically realistic (and slower) Model MW configurations live in
the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fdps.particles import ParticleSet, ParticleType


def plummer_positions(n: int, a: float = 100.0, rng: np.random.Generator | None = None) -> np.ndarray:
    """Positions sampled from a Plummer sphere of scale radius ``a`` [pc]."""
    rng = rng or np.random.default_rng(42)
    # Inverse-CDF sampling of the Plummer cumulative mass profile.
    x = rng.uniform(0.0, 1.0, n)
    r = a / np.sqrt(x ** (-2.0 / 3.0) - 1.0)
    mu = rng.uniform(-1.0, 1.0, n)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    s = np.sqrt(1.0 - mu**2)
    return np.column_stack([r * s * np.cos(phi), r * s * np.sin(phi), r * mu])


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(123)


@pytest.fixture
def plummer_ps(rng) -> ParticleSet:
    """A 512-particle Plummer sphere of DM particles with equal masses."""
    n = 512
    pos = plummer_positions(n, a=50.0, rng=rng)
    ps = ParticleSet.from_arrays(
        pos=pos,
        mass=np.full(n, 10.0),
        eps=np.full(n, 1.0),
        pid=np.arange(n),
        ptype=np.full(n, int(ParticleType.DARK_MATTER)),
    )
    ps.vel[:] = rng.normal(0.0, 1.0, (n, 3))
    return ps


@pytest.fixture
def uniform_gas_ps(rng) -> ParticleSet:
    """A ~12^3 glass-ish uniform gas cube, 60 pc side, ~1 M_sun particles."""
    side = 60.0
    npts = 12
    g = (np.arange(npts) + 0.5) / npts * side - side / 2
    xx, yy, zz = np.meshgrid(g, g, g, indexing="ij")
    pos = np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])
    pos += rng.normal(0.0, 0.05 * side / npts, pos.shape)  # de-grid jitter
    n = len(pos)
    ps = ParticleSet.from_arrays(
        pos=pos,
        mass=np.full(n, 1.0),
        eps=np.full(n, 0.1),
        pid=np.arange(n),
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.h[:] = 2.0 * side / npts
    ps.u[:] = 25.0  # a few thousand K
    return ps
