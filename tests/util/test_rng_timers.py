"""RandomStreams determinism and TimerRegistry bookkeeping."""

import time

import numpy as np

from repro.util.rng import RandomStreams, default_rng
from repro.util.timers import TimerRegistry


def test_streams_are_reproducible():
    a = RandomStreams(7).get("imf").normal(size=10)
    b = RandomStreams(7).get("imf").normal(size=10)
    assert np.array_equal(a, b)


def test_streams_are_independent_of_creation_order():
    s1 = RandomStreams(7)
    s1.get("other")  # consume a different stream first
    a = s1.get("imf").normal(size=10)
    b = RandomStreams(7).get("imf").normal(size=10)
    assert np.array_equal(a, b)


def test_distinct_names_give_distinct_streams():
    s = RandomStreams(7)
    assert not np.array_equal(s.get("a").normal(size=8), s.get("b").normal(size=8))


def test_same_name_returns_same_generator():
    s = RandomStreams(0)
    assert s.get("x") is s.get("x")


def test_fork_gives_new_family():
    a = RandomStreams(7).fork(1).get("imf").normal(size=4)
    b = RandomStreams(7).fork(2).get("imf").normal(size=4)
    assert not np.array_equal(a, b)


def test_default_rng_seeded():
    assert default_rng(3).integers(1000) == default_rng(3).integers(1000)


def test_timer_accumulates():
    reg = TimerRegistry()
    with reg.measure("part"):
        time.sleep(0.01)
    with reg.measure("part"):
        time.sleep(0.01)
    t = reg.get("part")
    assert t.count == 2
    assert t.total >= 0.02
    assert t.mean >= 0.01


def test_timer_slowest_merge():
    r1, r2 = TimerRegistry(), TimerRegistry()
    r1.get("a").total = 1.0
    r2.get("a").total = 3.0
    r2.get("b").total = 0.5
    worst = TimerRegistry.slowest([r1, r2])
    assert worst == {"a": 3.0, "b": 0.5}


def test_timer_reset():
    reg = TimerRegistry()
    with reg.measure("x"):
        pass
    reg.reset()
    assert reg.get("x").total == 0.0
    assert reg.get("x").count == 0
