"""RandomStreams determinism and TimerRegistry bookkeeping."""

import time

import numpy as np
import pytest

from repro.obs.trace import Tracer
from repro.util.rng import RandomStreams, default_rng
from repro.util.timers import Timer, TimerRegistry


def test_streams_are_reproducible():
    a = RandomStreams(7).get("imf").normal(size=10)
    b = RandomStreams(7).get("imf").normal(size=10)
    assert np.array_equal(a, b)


def test_streams_are_independent_of_creation_order():
    s1 = RandomStreams(7)
    s1.get("other")  # consume a different stream first
    a = s1.get("imf").normal(size=10)
    b = RandomStreams(7).get("imf").normal(size=10)
    assert np.array_equal(a, b)


def test_distinct_names_give_distinct_streams():
    s = RandomStreams(7)
    assert not np.array_equal(s.get("a").normal(size=8), s.get("b").normal(size=8))


def test_same_name_returns_same_generator():
    s = RandomStreams(0)
    assert s.get("x") is s.get("x")


def test_fork_gives_new_family():
    a = RandomStreams(7).fork(1).get("imf").normal(size=4)
    b = RandomStreams(7).fork(2).get("imf").normal(size=4)
    assert not np.array_equal(a, b)


def test_default_rng_seeded():
    assert default_rng(3).integers(1000) == default_rng(3).integers(1000)


def test_timer_accumulates():
    reg = TimerRegistry()
    with reg.measure("part"):
        time.sleep(0.01)
    with reg.measure("part"):
        time.sleep(0.01)
    t = reg.get("part")
    assert t.count == 2
    assert t.total >= 0.02
    assert t.mean >= 0.01


def test_timer_slowest_merge():
    r1, r2 = TimerRegistry(), TimerRegistry()
    r1.get("a").total = 1.0
    r2.get("a").total = 3.0
    r2.get("b").total = 0.5
    worst = TimerRegistry.slowest([r1, r2])
    assert worst == {"a": 3.0, "b": 0.5}


def test_timer_reset():
    reg = TimerRegistry()
    with reg.measure("x"):
        pass
    reg.reset()
    assert reg.get("x").total == 0.0
    assert reg.get("x").count == 0


# ------------------------------------------------------------- reentrancy
def test_timer_reentrant_measure_counts_outermost_only():
    # A phase measured inside itself (recursive phase, two code paths
    # sharing a name) must neither clobber the start stamp nor double
    # count: one interval, one count, total >= the full outer window.
    reg = TimerRegistry()
    with reg.measure("phase"):
        time.sleep(0.005)
        with reg.measure("phase"):
            time.sleep(0.005)
        time.sleep(0.005)
    t = reg.get("phase")
    assert t.count == 1
    assert t.total >= 0.015
    assert not t.running


def test_timer_inner_stop_returns_zero():
    t = Timer("x")
    t.start()
    t.start()
    assert t.stop() == 0.0          # inner exit: nothing accumulated yet
    assert t.running
    assert t.stop() > 0.0           # outermost exit closes the interval
    assert t.count == 1


def test_timer_stop_before_start_raises():
    with pytest.raises(RuntimeError, match="stopped before start"):
        Timer("x").stop()


def test_timer_restarts_after_full_cycle():
    t = Timer("x")
    for _ in range(2):
        t.start()
        t.stop()
    assert t.count == 2


# ----------------------------------------------------------- tracer bridge
def test_measure_bridges_spans_to_tracer():
    tr = Tracer()
    reg = TimerRegistry(tracer=tr, cat="sim", rank=2)
    with reg.measure("Calc_Force", backend="numpy"):
        pass
    [rec] = tr.records
    assert rec.name == "Calc_Force"
    assert rec.cat == "sim"
    assert rec.rank == 2
    assert rec.attrs == {"backend": "numpy"}
    # The span brackets the timer: its duration can only be wider.
    assert rec.dur >= reg.get("Calc_Force").total


def test_measure_without_tracer_emits_nothing():
    reg = TimerRegistry()  # defaults to NULL_TRACER
    with reg.measure("x"):
        pass
    assert not hasattr(reg.tracer, "records")
    assert reg.get("x").count == 1
