"""Unit-system sanity: the constants must match their CGS derivations."""

import numpy as np
import pytest

from repro.util import constants as C


def test_grav_const_value():
    # G = 4.4985e-3 pc^3 / (M_sun Myr^2), standard galactic-dynamics value.
    assert C.GRAV_CONST == pytest.approx(4.4985e-3, rel=1e-3)


def test_velocity_unit_is_about_one_km_s():
    assert C.KM_PER_S == pytest.approx(0.9778, rel=1e-3)


def test_sn_energy_in_code_units():
    # 1e51 erg ~ 5.3e7 M_sun (pc/Myr)^2: spreading it over 1 M_sun gives
    # ejecta speeds of ~1e4 pc/Myr ~ 1e4 km/s, the right SN scale.
    assert C.SN_ENERGY == pytest.approx(5.26e7, rel=0.01)


def test_temperature_energy_roundtrip_scalar():
    for t in (10.0, 1e4, 1e7):
        u = C.temperature_to_internal_energy(t)
        t_back = C.internal_energy_to_temperature(u)
        assert t_back == pytest.approx(t, rel=0.05)


def test_temperature_energy_roundtrip_array():
    t = np.logspace(1, 7, 50)
    u = C.temperature_to_internal_energy(t)
    back = C.internal_energy_to_temperature(u)
    assert np.allclose(back, t, rtol=0.05)


def test_internal_energy_monotone_in_temperature():
    t = np.logspace(1, 8, 200)
    u = C.temperature_to_internal_energy(t)
    assert np.all(np.diff(u) > 0)


def test_sound_speed_of_warm_gas():
    # 1e4 K neutral gas: c_s ~ 10 km/s ~ 10 pc/Myr.
    u = C.temperature_to_internal_energy(1.0e4)
    cs = C.sound_speed(u)
    assert 5.0 < cs < 20.0


def test_sn_region_sound_speed_matches_paper():
    # The paper quotes ~1000 km/s sound speed in SN-heated gas (~1e7 K+).
    u = C.temperature_to_internal_energy(7.0e7)
    cs_km_s = C.sound_speed(u) * C.KM_PER_S
    assert 800.0 < cs_km_s < 2000.0


def test_mean_molecular_weight_limits():
    assert C.mean_molecular_weight(10.0) == pytest.approx(C.MU_NEUTRAL)
    assert C.mean_molecular_weight(1e6) == pytest.approx(C.MU_IONIZED)
    mid = C.mean_molecular_weight(10 ** 4.25)
    assert C.MU_IONIZED < mid < C.MU_NEUTRAL


def test_density_to_nh_order_of_magnitude():
    # 1 M_sun/pc^3 ~ 30 H atoms / cm^3 (for X_H = 0.76).
    assert C.DENSITY_TO_NH == pytest.approx(30.0, rel=0.15)
