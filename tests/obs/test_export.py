"""Exporter round-trips: JSONL streams and Chrome/Perfetto trace JSON."""

import json

import pytest

from repro.obs.export import (
    JSONL_SCHEMA_VERSION,
    load_jsonl,
    load_run,
    to_chrome_trace,
    trace_path,
    write_chrome_trace,
    write_jsonl,
    write_run,
)
from repro.obs.trace import Tracer


def _traced(rank=0):
    tr = Tracer(rank=rank, run_id="round-trip")
    with tr.span("step", cat="sim", step=0):
        with tr.span("gravity", cat="sim", backend="numpy"):
            pass
    tr.span_at("pool_p2p", 0.1, 0.02, cat="comm", bytes=256, messages=1,
               critical_bytes=256)
    tr.instant("serve.dispatch", cat="serve", tid="main", batch=0)
    tr.count("sn_events", 2)
    tr.gauge("queue_depth", 4)
    tr.attach_meta("service_metrics", {"schema": 1, "n_completed": 2})
    return tr


def test_jsonl_round_trip(tmp_path):
    tr = _traced(rank=3)
    path = write_jsonl(tr, tmp_path / "t.jsonl")
    loaded = load_jsonl(path)
    assert loaded.run_id == "round-trip"
    assert loaded.rank == 3
    assert loaded.schema == JSONL_SCHEMA_VERSION
    assert len(loaded.records) == len(tr.records)
    for got, want in zip(loaded.records, tr.records):
        assert got.name == want.name
        assert got.cat == want.cat
        assert got.rank == want.rank
        assert got.tid == want.tid
        assert got.depth == want.depth
        assert got.attrs == want.attrs
        assert got.t0 == pytest.approx(want.t0)
        assert got.dur == pytest.approx(want.dur)
    assert loaded.counters == {"sn_events": 2.0}
    assert loaded.gauges == {"queue_depth": 4.0}
    assert loaded.meta["service_metrics"] == {"schema": 1, "n_completed": 2}


def test_first_line_is_versioned_meta(tmp_path):
    path = write_jsonl(_traced(), tmp_path / "t.jsonl")
    first = json.loads(path.read_text().splitlines()[0])
    assert first["type"] == "meta"
    assert first["schema"] == JSONL_SCHEMA_VERSION


def test_write_run_uses_canonical_rank_paths(tmp_path):
    assert write_run(_traced(rank=2), tmp_path) == trace_path(tmp_path, 2)
    assert (tmp_path / "trace-rank2.jsonl").exists()


def test_load_run_directory_sorts_by_rank(tmp_path):
    write_run(_traced(rank=1), tmp_path)
    write_run(_traced(rank=0), tmp_path)
    traces = load_run(tmp_path)
    assert [t.rank for t in traces] == [0, 1]


def test_load_run_single_file_and_missing_dir(tmp_path):
    path = write_jsonl(_traced(), tmp_path / "solo.jsonl")
    assert len(load_run(path)) == 1
    with pytest.raises(FileNotFoundError):
        load_run(tmp_path / "empty-dir-without-streams")


def test_chrome_trace_events(tmp_path):
    tr = _traced(rank=1)
    doc = to_chrome_trace([load_jsonl(write_jsonl(tr, tmp_path / "t.jsonl"))])
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert any(e["name"] == "process_name"
               and e["args"]["name"] == "rank 1" for e in meta)
    assert all(e["pid"] == 1 for e in complete + instants)
    # Timestamps are microseconds; attrs ride in args.
    comm = next(e for e in complete if e["name"] == "pool_p2p")
    assert comm["ts"] == pytest.approx(0.1 * 1e6)
    assert comm["dur"] == pytest.approx(0.02 * 1e6)
    assert comm["args"]["bytes"] == 256
    assert any(e["name"] == "serve.dispatch" for e in instants)
    json.dumps(doc)  # the whole document must be JSON-serializable


def test_chrome_trace_accepts_live_tracer(tmp_path):
    out = write_chrome_trace(_traced(), tmp_path / "chrome.json")
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
