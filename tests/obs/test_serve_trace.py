"""Chaos tracing: recovery spans line up with the ServiceMetrics counters.

A killed worker leaves a visible trail — ``serve.redispatch`` /
``serve.worker_restart`` / ``serve.inline_recovery`` span events — and
every one of those trails must agree, count for count, with the
:class:`~repro.serve.metrics.ServiceMetrics` ledger the fault-tolerance
suite asserts on.  One story, two witnesses.
"""

import pytest

from repro.obs.export import write_run
from repro.obs.report import report_run
from repro.obs.trace import Tracer
from repro.serve import SurrogateServer
from tests.serve.test_faults import FAST, _await_restart, _run_rounds, _surr


def _spans(tr, name):
    return [r for r in tr.records if r.name == name and r.cat == "serve"]


@pytest.fixture(scope="module")
def chaos_trace():
    """One killed-worker run: (tracer, final metrics, server knobs)."""
    tr = Tracer(run_id="chaos")
    rounds = ((0, 5, 4), (6, 11, 4))
    with SurrogateServer(
        surrogate=_surr(), transport="process", n_workers=2, max_batch=2,
        fault_plan="kill@w0:b1", supervision=FAST, tracer=tr,
    ) as srv:
        _run_rounds(srv, rounds)
        _await_restart(srv)  # make the kill's restart span observable
        metrics = srv.metrics
        tr.attach_meta("service_metrics", metrics.to_dict(
            max_batch=srv.scheduler.max_batch, n_workers=srv.n_workers,
        ))
    return tr, metrics


def test_recovery_spans_match_metrics_counters(chaos_trace):
    tr, m = chaos_trace
    assert len(_spans(tr, "serve.redispatch")) == m.n_redispatch
    assert len(_spans(tr, "serve.worker_restart")) == m.n_worker_restarts
    assert m.n_worker_restarts >= 1  # the kill actually happened
    # Inline fallbacks resolve whole batches; their event counts sum to the
    # oracle counter exactly.
    inline = _spans(tr, "serve.inline_recovery")
    assert sum(r.attrs["events"] for r in inline) == m.n_fault_oracle
    assert m.n_redispatch + m.n_fault_oracle >= 1


def test_dispatch_spans_cover_flushes_and_redispatches(chaos_trace):
    tr, m = chaos_trace
    dispatches = _spans(tr, "serve.dispatch")
    # One instant per transport dispatch: every scheduler flush plus every
    # re-dispatch of a lost batch (tagged with generation >= 1).
    assert len(dispatches) == m.n_batches + m.n_redispatch
    regen = [r for r in dispatches if r.attrs["generation"] > 0]
    assert len(regen) == m.n_redispatch


def test_exposed_wait_spans_sum_to_metric(chaos_trace):
    tr, m = chaos_trace
    waits = _spans(tr, "serve.exposed_wait")
    assert waits  # collect() blocked at least once
    assert sum(r.dur for r in waits) == pytest.approx(m.exposed_wait_s)


def test_batch_spans_ride_worker_lanes(chaos_trace):
    tr, _m = chaos_trace
    batches = _spans(tr, "serve.batch")
    assert batches
    assert all(r.tid.startswith("worker-") or r.tid == "inline"
               for r in batches)
    assert all(r.dur >= 0.0 for r in batches)
    claims = _spans(tr, "serve.claim")
    assert all(r.tid.startswith("worker-") for r in claims)


def test_shm_transport_traces_zero_copy_encode():
    tr = Tracer(run_id="shm")
    with SurrogateServer(
        surrogate=_surr(), transport="shm", n_workers=2, max_batch=2,
        shm_slots=8, tracer=tr,
    ) as srv:
        _run_rounds(srv)
        m = srv.metrics
    encodes = _spans(tr, "serve.shm.encode")
    assert encodes
    # Slot/fallback attrs sum to the transport counters exactly.
    assert sum(r.attrs["slots"] for r in encodes) == m.n_shm_slot
    assert sum(r.attrs["fallbacks"] for r in encodes) == m.n_shm_fallback


def test_chaos_report_carries_recovery_story(chaos_trace, tmp_path):
    tr, m = chaos_trace
    write_run(tr, tmp_path)
    report = report_run(tmp_path)
    assert "serve.exposed_wait" in report.serve_spans
    # The attached versioned metrics price into the hidden/exposed summary
    # (exposed = inline time + blocking wait, capped at actual worker time).
    assert report.serve_summary
    expected_exposed = m.inline_predict_s + min(
        m.exposed_wait_s, sum(m.worker_busy_s.values())
    )
    assert report.serve_summary["inference_exposed_s"] == pytest.approx(
        expected_exposed
    )
    text = report.to_text()
    assert "surrogate serving" in text
    assert "overlap efficiency" in text
