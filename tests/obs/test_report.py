"""Run reports: the Table-3 slowest-rank merge and the comm ledger,
both driven *through the span layer* of a multi-rank simulated run."""

import numpy as np
import pytest

from repro.fdps.distributed import DistributedGravity
from repro.fdps.particles import ParticleSet
from repro.obs.export import write_run
from repro.obs.report import diff_reports, report_run, report_traces
from repro.obs.trace import Tracer
from repro.util.timers import TimerRegistry
from tests.conftest import plummer_positions


def _cluster(n=600, seed=31):
    rng = np.random.default_rng(seed)
    pos = plummer_positions(n, a=30.0, rng=rng)
    ps = ParticleSet.from_arrays(
        pos=pos,
        mass=rng.uniform(0.5, 2.0, n),
        eps=np.full(n, 0.5),
        pid=np.arange(n),
    )
    ps.vel[:] = rng.normal(0, 0.5, (n, 3))
    return ps


def _synthetic_tracer():
    """Hand-laid spans with known durations across 3 simulated ranks."""
    tr = Tracer(run_id="synthetic")
    with tr.span("step", cat="sim", step=0):
        # Calc_Force: per-rank totals 1.0 / 3.0 / 2.0 -> slowest 3.0.
        tr.span_at("Calc_Force", 0.0, 1.0, rank=0)
        tr.span_at("Calc_Force", 0.0, 3.0, rank=1)
        tr.span_at("Calc_Force", 0.0, 2.0, rank=2)
        # Exchange_Particle: rank 0 brackets it twice (0.5 + 0.5 = 1.0).
        tr.span_at("Exchange_Particle", 1.0, 0.5, rank=0)
        tr.span_at("Exchange_Particle", 1.5, 0.5, rank=0)
        tr.span_at("Exchange_Particle", 1.0, 0.25, rank=2)
    with tr.span("step", cat="sim", step=1):
        tr.span_at("Calc_Force", 4.0, 1.0, rank=1)
    return tr


def test_slowest_rank_merge_from_spans():
    report = report_traces([_as_loaded(_synthetic_tracer())])
    force = report.breakdown["Calc_Force"]
    # rank 1 totals 3.0 + 1.0 = 4.0s, the slowest; mean over ranks present.
    assert force["slowest"] == pytest.approx(4.0)
    assert force["mean"] == pytest.approx((1.0 + 4.0 + 2.0) / 3)
    assert force["count"] == 2  # the busiest rank bracketed it twice
    exch = report.breakdown["Exchange_Particle"]
    assert exch["slowest"] == pytest.approx(1.0)
    assert exch["count"] == 2
    # The umbrella "step" span is steps, not a breakdown row.
    assert "step" not in report.breakdown
    assert report.n_steps == 2
    assert report.n_ranks == 3


def _as_loaded(tr):
    from repro.obs.export import LoadedTrace

    out = LoadedTrace()
    out.run_id = tr.run_id
    out.rank = tr.rank
    out.records = list(tr.records)
    out.counters = dict(tr.counters)
    out.meta = dict(tr.meta)
    return out


@pytest.mark.parametrize("use_torus", [False, True])
def test_distributed_run_report_matches_in_process_accounting(
    tmp_path, use_torus
):
    """Span-layer accounting == in-process TimerRegistry + CommStats."""
    tr = Tracer(run_id="dist")
    dg = DistributedGravity(n_ranks=8, theta=0.35, use_torus=use_torus,
                            tracer=tr)
    ps = _cluster()
    decomp, locals_ = dg.scatter(ps)
    accs = dg.forces(locals_, decomp)
    dg.step(locals_, decomp, dt=1e-3, accs=accs)

    run_dir = tmp_path / "run"
    write_run(tr, run_dir)
    report = report_run(run_dir)

    # --- Table-3 rows: the span-rebuilt slowest-rank merge must agree with
    # the in-process TimerRegistry reduction (spans bracket the timers, so
    # they carry a few microseconds of extra overhead per call, never less).
    in_process = TimerRegistry.slowest(dg.timers)
    assert set(report.breakdown) == set(in_process)
    for name, worst in in_process.items():
        from_spans = report.breakdown[name]["slowest"]
        assert from_spans >= worst * 0.999
        assert from_spans <= worst + 0.05
    counts = {
        name: max(reg.get(name).count for reg in dg.timers
                  if name in reg.timers)
        for name in in_process
    }
    for name, count in counts.items():
        assert report.breakdown[name]["count"] == count

    # --- comm rows: byte-exact against the CommStats ledger, including the
    # per-call busiest-rank sum (the bandwidth critical path).
    assert set(report.comm) == set(dg.comm.stats)
    for label, stats in dg.comm.stats.items():
        row = report.comm[label]
        assert int(row["bytes"]) == stats.bytes_total
        assert int(row["messages"]) == stats.n_messages
        assert int(row["critical_bytes"]) == stats.critical_bytes
        assert int(row["calls"]) == stats.n_calls

    # All simulated ranks appear in the one-process trace.
    assert report.n_ranks == 8
    text = report.to_text()
    assert "Calc_Force" in text
    assert "exchange_let" in text


def test_report_diff_lines_up_rows():
    a = report_traces([_as_loaded(_synthetic_tracer())])
    b = report_traces([_as_loaded(_synthetic_tracer())])
    b.breakdown["Calc_Force"]["slowest"] = 8.0
    out = diff_reports(a, b)
    assert "Calc_Force" in out
    assert "2.00" in out  # 8.0 / 4.0 ratio column
    assert out.splitlines()[-1].lstrip().startswith("WALL")
