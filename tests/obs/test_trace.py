"""Tracer core: spans, nesting, null path, counters, rank override."""

import time

import pytest

from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


def test_span_records_name_cat_attrs():
    tr = Tracer(rank=2, run_id="r")
    with tr.span("gravity", cat="sim", step=7, backend="numpy"):
        pass
    [rec] = tr.records
    assert rec.name == "gravity"
    assert rec.cat == "sim"
    assert rec.rank == 2
    assert rec.attrs == {"step": 7, "backend": "numpy"}
    assert rec.dur >= 0.0
    assert rec.t0 >= 0.0


def test_spans_nest_with_depth():
    tr = Tracer()
    with tr.span("outer"):
        with tr.span("inner"):
            pass
    inner, outer = tr.records  # inner closes (and records) first
    assert inner.name == "inner" and inner.depth == 1
    assert outer.name == "outer" and outer.depth == 0
    # Nesting containment: inner lies within outer's interval.
    assert outer.t0 <= inner.t0
    assert inner.t0 + inner.dur <= outer.t0 + outer.dur + 1e-9


def test_span_records_on_exception_and_stack_unwinds():
    tr = Tracer()
    with pytest.raises(ValueError):
        with tr.span("boom"):
            raise ValueError("x")
    [rec] = tr.records
    assert rec.name == "boom"
    assert tr._stack == []


def test_span_set_attaches_attrs_while_open():
    tr = Tracer()
    with tr.span("op") as sp:
        sp.set(bytes=128)
    assert tr.records[0].attrs["bytes"] == 128


def test_rank_keyword_overrides_record_rank():
    tr = Tracer(rank=0)
    with tr.span("phase", rank=3):
        pass
    tr.span_at("done", 0.0, 0.1, rank=5)
    assert tr.records[0].rank == 3
    assert tr.records[1].rank == 5
    # The override is consumed, not duplicated into attrs.
    assert "rank" not in tr.records[0].attrs
    assert "rank" not in tr.records[1].attrs


def test_span_at_and_instant():
    tr = Tracer()
    tr.span_at("batch", 1.0, 0.5, cat="serve", tid="worker-1", events=4)
    tr.instant("dispatch", cat="serve", batch=9)
    batch, inst = tr.records
    assert (batch.t0, batch.dur, batch.tid) == (1.0, 0.5, "worker-1")
    assert inst.dur == 0.0
    assert inst.attrs == {"batch": 9}


def test_now_is_monotonic_epoch_relative():
    tr = Tracer()
    a = tr.now()
    time.sleep(0.002)
    b = tr.now()
    assert 0.0 <= a < b < 60.0


def test_counters_accumulate_and_gauges_keep_last():
    tr = Tracer()
    tr.count("sn_events")
    tr.count("sn_events", 2)
    tr.gauge("queue_depth", 5)
    tr.gauge("queue_depth", 3)
    assert tr.counters == {"sn_events": 3.0}
    assert tr.gauges == {"queue_depth": 3.0}


def test_attach_meta_last_write_wins():
    tr = Tracer()
    tr.attach_meta("service_metrics", {"a": 1})
    tr.attach_meta("service_metrics", {"b": 2})
    assert tr.meta == {"service_metrics": {"b": 2}}


def test_totals_sums_per_name_and_filters_cat():
    tr = Tracer()
    with tr.span("a", cat="sim"):
        pass
    with tr.span("a", cat="sim"):
        pass
    tr.span_at("x", 0.0, 2.0, cat="comm")
    totals = tr.totals()
    assert set(totals) == {"a", "x"}
    assert tr.totals(cat="comm") == {"x": 2.0}
    assert tr.totals(cat="sim").keys() == {"a"}


def test_null_tracer_is_inert():
    nt = NullTracer()
    assert nt.enabled is False
    with nt.span("anything", cat="serve", bytes=1) as sp:
        sp.set(more=2)
    nt.span_at("x", 0.0, 1.0)
    nt.instant("y")
    nt.count("c")
    nt.gauge("g", 1.0)
    nt.attach_meta("k", {})
    assert nt.now() == 0.0
    assert not hasattr(nt, "records")


def test_null_tracer_singleton_shares_null_span():
    a = NULL_TRACER.span("a")
    b = NULL_TRACER.span("b")
    assert a is b  # one shared no-op handle: the zero-allocation fast path
