"""SNSurrogate end-to-end, the Sedov oracle, and training-data generation."""

import numpy as np
import pytest

from repro.ml.unet import UNet3D
from repro.sn.turbulence import make_turbulent_box
from repro.surrogate.model import SedovBlastOracle, SNSurrogate
from repro.surrogate.training_data import (
    SNTrainingDataset,
    build_dataset,
    generate_sedov_pair,
)
from repro.surrogate.voxelize import voxelize_particles
from repro.util.constants import internal_energy_to_temperature


@pytest.fixture(scope="module")
def box():
    return make_turbulent_box(n_per_side=10, side=60.0, mean_density=0.05,
                              temperature=100.0, mach=3.0, seed=0)


@pytest.fixture(scope="module")
def grid_in(box):
    return voxelize_particles(box, np.zeros(3), 60.0, n_grid=8)


def test_oracle_heats_and_evacuates_center(grid_in):
    oracle = SedovBlastOracle(t_after=0.02)
    out = oracle(grid_in)
    c = grid_in.n_grid // 2
    assert out.field("temperature")[c, c, c] > 100.0 * grid_in.field("temperature")[c, c, c]
    assert out.field("density")[c, c, c] < grid_in.field("density")[c, c, c]


def test_oracle_preserves_outside_shock(grid_in):
    oracle = SedovBlastOracle(t_after=0.005)  # small shock radius
    out = oracle(grid_in)
    r = grid_in.voxel_radii()
    from repro.sn.sedov import SedovSolution

    rho0 = float(np.mean(grid_in.field("density")))
    rs = SedovSolution(energy=oracle.energy, rho0=rho0).shock_radius(0.005)
    outside = r > rs * 1.2
    assert np.allclose(
        out.field("density")[outside], grid_in.field("density")[outside]
    )
    assert np.allclose(out.field("vx")[outside], grid_in.field("vx")[outside])


def test_oracle_velocities_radial(grid_in):
    oracle = SedovBlastOracle(t_after=0.02)
    base = grid_in.fields.copy()
    base[2:] = 0.0  # still ambient gas
    from repro.surrogate.voxelize import VoxelGrid

    out = oracle(VoxelGrid(fields=base, center=grid_in.center, side=grid_in.side))
    g = grid_in.voxel_centers_1d()
    xx, yy, zz = np.meshgrid(g, g, g, indexing="ij")
    vdotr = out.field("vx") * xx + out.field("vy") * yy + out.field("vz") * zz
    assert np.all(vdotr >= -1e-9)


def test_surrogate_particle_roundtrip(box):
    surr = SNSurrogate(oracle=SedovBlastOracle(t_after=0.02), n_grid=8, side=60.0)
    rng = np.random.default_rng(0)
    region = box.copy()
    out = surr.predict_particles(region, np.zeros(3), rng)
    # Mass conservation by construction.
    assert len(out) == len(region)
    assert np.array_equal(np.sort(out.pid), np.sort(region.pid))
    assert out.total_mass() == pytest.approx(region.total_mass())
    # The blast is visible: hot particles exist now.
    t_out = internal_energy_to_temperature(out.u)
    assert t_out.max() > 1e5
    # And a shell: particles pushed outward on average.
    assert np.median(np.abs(out.pos)) >= 0.0


def test_surrogate_with_unet_predictor(box):
    net = UNet3D(in_channels=8, out_channels=5, base_channels=2, depth=1, seed=0)
    surr = SNSurrogate(predictor=net.forward, n_grid=8, side=60.0)
    rng = np.random.default_rng(1)
    out = surr.predict_particles(box.copy(), np.zeros(3), rng)
    assert len(out) == len(box)
    assert np.all(np.isfinite(out.pos))
    assert np.all(out.u > 0)


def test_surrogate_requires_exactly_one_backend():
    with pytest.raises(ValueError):
        SNSurrogate()
    with pytest.raises(ValueError):
        SNSurrogate(predictor=lambda x: x, oracle=SedovBlastOracle())


def test_surrogate_empty_region():
    surr = SNSurrogate(oracle=SedovBlastOracle(), n_grid=8)
    from repro.fdps.particles import ParticleSet

    out = surr.predict_particles(ParticleSet.empty(0), np.zeros(3), np.random.default_rng(0))
    assert len(out) == 0


# ------------------------------------------------------------ training data
def test_generate_sedov_pair_shapes():
    x, y = generate_sedov_pair(seed=0, n_grid=8, n_per_side=8)
    assert x.shape == (8, 8, 8, 8)
    assert y.shape == (5, 8, 8, 8)
    assert np.all(np.isfinite(x)) and np.all(np.isfinite(y))


def test_pairs_differ_by_seed():
    x0, _ = generate_sedov_pair(seed=0, n_grid=8, n_per_side=8)
    x1, _ = generate_sedov_pair(seed=1, n_grid=8, n_per_side=8)
    assert not np.allclose(x0, x1)


def test_target_shows_blast_signature():
    x, y = generate_sedov_pair(seed=2, n_grid=8, n_per_side=8)
    # Central target temperature (channel 1, log10) far above ambient input.
    c = 4
    assert y[1, c, c, c] > x[1, c, c, c] + 2.0  # > 2 dex hotter


def test_dataset_build_split_save(tmp_path):
    ds = build_dataset(5, base_seed=10, n_grid=8, n_per_side=8)
    assert len(ds) == 5
    tr, va = ds.split(0.4, np.random.default_rng(0))
    assert len(tr) == 3 and len(va) == 2
    p = tmp_path / "ds.npz"
    ds.save(p)
    back = SNTrainingDataset.load(p)
    assert len(back) == 5
    assert np.allclose(back.inputs[0], ds.inputs[0])
    assert np.allclose(back.targets[4], ds.targets[4])


def test_dataset_shape_validation():
    ds = SNTrainingDataset()
    ds.add(np.zeros((8, 4, 4, 4)), np.zeros((5, 4, 4, 4)))
    with pytest.raises(ValueError):
        ds.add(np.zeros((8, 8, 8, 8)), np.zeros((5, 8, 8, 8)))
