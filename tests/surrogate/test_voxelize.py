"""Particle -> voxel mapping: Shepard exactness, density, region extraction."""

import numpy as np
import pytest

from repro.fdps.particles import ParticleType
from repro.surrogate.voxelize import FIELD_NAMES, extract_region, voxelize_particles
from repro.util.constants import internal_energy_to_temperature


def test_field_order():
    assert FIELD_NAMES == ("density", "temperature", "vx", "vy", "vz")


def test_shapes(uniform_gas_ps):
    grid = voxelize_particles(uniform_gas_ps, np.zeros(3), 60.0, n_grid=8)
    assert grid.fields.shape == (5, 8, 8, 8)
    assert grid.cell == pytest.approx(7.5)


def test_shepard_reproduces_constant_fields(uniform_gas_ps):
    ps = uniform_gas_ps.copy()
    ps.vel[:] = np.array([3.0, -2.0, 0.5])
    grid = voxelize_particles(ps, np.zeros(3), 60.0, n_grid=8)
    assert np.allclose(grid.field("vx"), 3.0, atol=1e-9)
    assert np.allclose(grid.field("vy"), -2.0, atol=1e-9)
    assert np.allclose(grid.field("vz"), 0.5, atol=1e-9)
    t_expect = internal_energy_to_temperature(25.0)
    assert np.allclose(grid.field("temperature"), t_expect, rtol=1e-6)


def test_density_close_to_mean(uniform_gas_ps):
    # 12^3 particles of 1 M_sun in a (60 pc)^3 box: mean rho = 1728/216000.
    grid = voxelize_particles(uniform_gas_ps, np.zeros(3), 60.0, n_grid=8)
    rho = grid.field("density")
    mean_rho = uniform_gas_ps.total_mass() / 60.0**3
    core = rho[2:-2, 2:-2, 2:-2]
    assert np.median(core) == pytest.approx(mean_rho, rel=0.25)


def test_total_deposited_mass(uniform_gas_ps):
    # Sum of rho * cell volume ~ total mass (edges lose a little kernel).
    grid = voxelize_particles(uniform_gas_ps, np.zeros(3), 60.0, n_grid=16)
    deposited = grid.field("density").sum() * grid.cell**3
    assert deposited == pytest.approx(uniform_gas_ps.total_mass(), rel=0.15)


def test_hot_spot_appears_in_temperature(uniform_gas_ps):
    ps = uniform_gas_ps.copy()
    r = np.linalg.norm(ps.pos, axis=1)
    ps.u[r < 10] = 2.5e4  # hot centre
    grid = voxelize_particles(ps, np.zeros(3), 60.0, n_grid=8)
    t = grid.field("temperature")
    assert t[4, 4, 4] > 5.0 * t[0, 0, 0]


def test_ignores_non_gas(uniform_gas_ps):
    ps = uniform_gas_ps.copy()
    ps.ptype[:100] = int(ParticleType.STAR)
    grid_all = voxelize_particles(uniform_gas_ps, np.zeros(3), 60.0, n_grid=8)
    grid_gas = voxelize_particles(ps, np.zeros(3), 60.0, n_grid=8)
    assert grid_gas.field("density").sum() < grid_all.field("density").sum()


def test_voxel_radii(uniform_gas_ps):
    grid = voxelize_particles(uniform_gas_ps, np.zeros(3), 60.0, n_grid=8)
    r = grid.voxel_radii()
    assert r.shape == (8, 8, 8)
    assert r.min() > 0
    corner = np.sqrt(3) * (30.0 - grid.cell / 2)
    assert r.max() == pytest.approx(corner, rel=1e-9)


def test_empty_region_falls_back_to_nearest(uniform_gas_ps):
    # Voxelize a box offset from the particles: no kernel coverage on the
    # far side, but the fields must still be finite everywhere.
    grid = voxelize_particles(uniform_gas_ps, np.array([50.0, 0.0, 0.0]), 60.0, n_grid=8)
    assert np.all(np.isfinite(grid.fields))


def test_extract_region(uniform_gas_ps):
    region, idx = extract_region(uniform_gas_ps, np.zeros(3), 20.0)
    assert len(region) == len(idx)
    assert len(region) > 0
    assert np.all(np.abs(region.pos) <= 10.0 + 1e-12)
    # Region is a copy: mutating it leaves the parent untouched.
    region.u[:] = 999.0
    assert not np.any(uniform_gas_ps.u == 999.0)


def test_extract_region_gas_only(uniform_gas_ps):
    ps = uniform_gas_ps.copy()
    ps.ptype[0] = int(ParticleType.STAR)
    region, _ = extract_region(ps, ps.pos[0], 20.0)
    assert not np.any(region.pid == ps.pid[0])
