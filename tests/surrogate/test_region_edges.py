"""``extract_region`` near domain edges: raise or ghost-fill, never truncate.

Regression suite for the silent-truncation hazard: a rank extracting an SN
region whose cube pokes past its domain slab used to return only its own
gas, feeding the surrogate a partial region with no error.  Now a declared
``domain`` either raises :class:`RegionIncompleteError` (no ghosts) or the
supplied ghosts complete the region bit-exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fdps.particles import ParticleSet, ParticleType
from repro.surrogate.voxelize import RegionIncompleteError, extract_region


def _gas_cloud(n=64, seed=0, half=100.0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.empty(n)
    ps.pid[:] = np.arange(n)
    ps.ptype[:] = int(ParticleType.GAS)
    ps.pos[:] = rng.uniform(-half, half, size=(n, 3))
    ps.mass[:] = 1.0
    ps.vel[:] = rng.normal(size=(n, 3))
    ps.u[:] = rng.uniform(0.1, 1.0, n)
    ps.h[:] = 5.0
    return ps


def test_cube_inside_slab_passes():
    ps = _gas_cloud()
    lo, hi = np.full(3, -100.0), np.full(3, 100.0)
    region, idx = extract_region(
        ps, np.zeros(3), 60.0, domain=(lo, hi)
    )
    ref, ref_idx = extract_region(ps, np.zeros(3), 60.0)
    assert np.array_equal(idx, ref_idx)
    assert region.pack().tobytes() == ref.pack().tobytes()


def test_cube_crossing_finite_face_raises():
    ps = _gas_cloud()
    lo, hi = np.array([0.0, -np.inf, -np.inf]), np.full(3, np.inf)
    with pytest.raises(RegionIncompleteError):
        extract_region(ps, np.array([10.0, 0.0, 0.0]), 60.0, domain=(lo, hi))


def test_infinite_faces_never_raise():
    """±inf faces are the global boundary — nothing lives beyond them."""
    ps = _gas_cloud()
    lo = np.array([-np.inf, -np.inf, -np.inf])
    hi = np.array([np.inf, np.inf, np.inf])
    region, _ = extract_region(ps, np.zeros(3), 60.0, domain=(lo, hi))
    ref, _ = extract_region(ps, np.zeros(3), 60.0)
    assert region.pack().tobytes() == ref.pack().tobytes()


def test_ghost_fill_matches_global_extraction():
    """local-slab gas + remote ghosts == one global extraction, bit-exact."""
    ps = _gas_cloud(n=128, seed=2)
    center = np.array([0.0, 0.0, 0.0])
    side = 80.0
    cut = 0.0  # slab boundary through the cube
    left = ps.select(ps.pos[:, 0] < cut)
    right = ps.select(ps.pos[:, 0] >= cut)

    ref, _ = extract_region(ps, center, side)
    assert len(ref) > 0

    lo = np.array([-np.inf, -np.inf, -np.inf])
    hi = np.array([cut, np.inf, np.inf])
    region, idx = extract_region(
        left, center, side, domain=(lo, hi), ghosts=right
    )
    assert region.pack().tobytes() == ref.pack().tobytes()
    # The index array refers to local particles only.
    assert np.all(left.pos[idx, 0] < cut)


def test_ghost_fill_ignores_out_of_cube_and_non_gas_ghosts():
    ps = _gas_cloud(n=32, seed=3)
    ghosts = _gas_cloud(n=16, seed=4)
    ghosts.pos[:] += 1e4           # far outside any cube
    ghosts.pid[:] += 1000
    stars = _gas_cloud(n=4, seed=5)
    stars.ptype[:] = int(ParticleType.STAR)
    stars.pos[:] = 0.0             # in-cube but not gas
    stars.pid[:] += 2000
    region, _ = extract_region(
        ps, np.zeros(3), 60.0,
        domain=(np.full(3, -1e5), np.full(3, 1e5)),
        ghosts=ghosts.append(stars),
    )
    ref, _ = extract_region(ps, np.zeros(3), 60.0)
    assert region.pack().tobytes() == ref.pack().tobytes()


def test_merged_region_is_pid_sorted():
    ps = _gas_cloud(n=64, seed=6)
    left = ps.select(ps.pos[:, 0] < 0)
    right = ps.select(ps.pos[:, 0] >= 0)
    region, _ = extract_region(
        left, np.zeros(3), 120.0,
        domain=(np.array([-np.inf, -np.inf, -np.inf]),
                np.array([0.0, np.inf, np.inf])),
        ghosts=right,
    )
    assert np.all(np.diff(region.pid) > 0)
