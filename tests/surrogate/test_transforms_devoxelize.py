"""Field transforms (8-channel encoding) and Gibbs-sampling devoxelization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdps.particles import ParticleSet, ParticleType
from repro.surrogate.devoxelize import devoxelize_to_particles, gibbs_sample_positions
from repro.surrogate.transforms import FieldTransform
from repro.surrogate.voxelize import VoxelGrid


def _random_fields(n=8, seed=0):
    rng = np.random.default_rng(seed)
    rho = 10.0 ** rng.uniform(-3, 2, (n, n, n))
    temp = 10.0 ** rng.uniform(1, 7, (n, n, n))
    v = rng.normal(0, 50, (3, n, n, n))
    return np.concatenate([rho[None], temp[None], v])


def test_encode_produces_8_channels():
    tf = FieldTransform()
    chans = tf.encode(_random_fields())
    assert chans.shape[0] == 8
    assert np.all(np.isfinite(chans))


def test_encode_decode_input_roundtrip():
    tf = FieldTransform()
    fields = _random_fields(seed=1)
    back = tf.decode_input(tf.encode(fields))
    assert np.allclose(back[0], fields[0], rtol=1e-10)
    assert np.allclose(back[1], fields[1], rtol=1e-10)
    # Velocities: exact where |v| > floor, zeroed below.
    for c in range(3):
        big = np.abs(fields[2 + c]) > tf.v_floor
        assert np.allclose(back[2 + c][big], fields[2 + c][big], rtol=1e-10)
        assert np.all(np.abs(back[2 + c][~big]) <= tf.v_floor + 1e-12)


def test_target_roundtrip():
    tf = FieldTransform()
    fields = _random_fields(seed=2)
    back = tf.decode_target(tf.encode_target(fields))
    assert np.allclose(back[0], fields[0], rtol=1e-10)
    assert np.allclose(back[1], fields[1], rtol=1e-10)
    for c in range(2, 5):
        assert np.allclose(back[c], fields[c], rtol=1e-8, atol=1e-10)


def test_velocity_split_channels_disjoint():
    tf = FieldTransform()
    fields = _random_fields(seed=3)
    chans = tf.encode(fields)
    lf = np.log10(tf.v_floor)
    for c in range(3):
        pos_on = chans[2 + 2 * c] > lf
        neg_on = chans[3 + 2 * c] > lf
        assert not np.any(pos_on & neg_on)


def test_dynamic_range_compression():
    # The whole point (Sec. 3.3): 6 orders of magnitude in T become ~1 order
    # in channel space.
    tf = FieldTransform()
    fields = _random_fields(seed=4)
    chans = tf.encode(fields)
    assert fields[1].max() / fields[1].min() > 1e4
    assert chans[1].max() - chans[1].min() < 10.0


@given(st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_roundtrip_property(seed):
    tf = FieldTransform()
    fields = _random_fields(n=4, seed=seed)
    back = tf.decode_target(tf.encode_target(fields))
    assert np.allclose(back[0], fields[0], rtol=1e-9)


# ------------------------------------------------------------------ Gibbs
def test_gibbs_samples_follow_density():
    rng = np.random.default_rng(0)
    n = 8
    dens = np.ones((n, n, n)) * 0.01
    dens[:4, :, :] = 1.0  # 100x denser half
    coords = gibbs_sample_positions(dens, 20000, rng, n_sweeps=6)
    frac_dense = np.mean(coords[:, 0] < 4.0)
    expect = dens[:4].sum() / dens.sum()
    assert frac_dense == pytest.approx(expect, abs=0.03)


def test_gibbs_coordinates_in_range():
    rng = np.random.default_rng(1)
    dens = np.random.default_rng(2).uniform(0.1, 1.0, (6, 6, 6))
    coords = gibbs_sample_positions(dens, 500, rng)
    assert np.all(coords >= 0.0)
    assert np.all(coords < 6.0)


def test_gibbs_empty_field_rejected():
    with pytest.raises(ValueError):
        gibbs_sample_positions(np.zeros((4, 4, 4)), 10, np.random.default_rng(0))


def test_gibbs_concentrates_on_peak():
    rng = np.random.default_rng(3)
    dens = np.full((8, 8, 8), 1e-6)
    dens[6, 2, 5] = 1.0
    coords = gibbs_sample_positions(dens, 1000, rng, n_sweeps=6)
    cells = np.floor(coords).astype(int)
    on_peak = np.mean(np.all(cells == [6, 2, 5], axis=1))
    assert on_peak > 0.95


# ------------------------------------------------------------ devoxelize
def _template(n):
    ps = ParticleSet.empty(n)
    ps.pid[:] = np.arange(n) + 100
    ps.mass[:] = 0.75
    ps.ptype[:] = int(ParticleType.GAS)
    ps.zmet[:, 1] = 0.01
    return ps


def test_devoxelize_conserves_count_mass_ids():
    rng = np.random.default_rng(4)
    fields = _random_fields(seed=5)
    grid = VoxelGrid(fields=fields, center=np.array([5.0, 0.0, -3.0]), side=60.0)
    template = _template(300)
    out = devoxelize_to_particles(grid, template, rng)
    assert len(out) == 300
    assert np.array_equal(out.pid, template.pid)
    assert np.allclose(out.mass, template.mass)  # mass conservation
    assert np.allclose(out.zmet, template.zmet)  # metals ride along
    assert np.all(out.ptype == int(ParticleType.GAS))


def test_devoxelize_positions_inside_box():
    rng = np.random.default_rng(5)
    grid = VoxelGrid(fields=_random_fields(seed=6), center=np.zeros(3), side=60.0)
    out = devoxelize_to_particles(grid, _template(200), rng)
    assert np.all(np.abs(out.pos) <= 30.0)


def test_devoxelize_velocities_from_fields():
    rng = np.random.default_rng(6)
    fields = _random_fields(seed=7)
    fields[2] = 17.0  # constant vx
    grid = VoxelGrid(fields=fields, center=np.zeros(3), side=60.0)
    out = devoxelize_to_particles(grid, _template(100), rng)
    assert np.allclose(out.vel[:, 0], 17.0, rtol=1e-9)


def test_devoxelize_internal_energy_positive():
    rng = np.random.default_rng(7)
    grid = VoxelGrid(fields=_random_fields(seed=8), center=np.zeros(3), side=60.0)
    out = devoxelize_to_particles(grid, _template(100), rng)
    assert np.all(out.u > 0)
    assert np.all(np.isfinite(out.h))


def test_devoxelize_empty_template():
    rng = np.random.default_rng(8)
    grid = VoxelGrid(fields=_random_fields(seed=9), center=np.zeros(3), side=60.0)
    out = devoxelize_to_particles(grid, ParticleSet.empty(0), rng)
    assert len(out) == 0
