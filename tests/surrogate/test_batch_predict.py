"""SNSurrogate.predict_batch: serial parity, order independence, padding."""

import numpy as np

from repro.core.pool import PoolManager
from repro.fdps.particles import ParticleSet, ParticleType
from repro.ml.unet import UNet3D
from repro.serve.wire import event_rng
from repro.surrogate.model import SedovBlastOracle, SNSurrogate


def _region(n=30, seed=0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-25, 25, (n, 3)),
        mass=np.full(n, 1.0),
        pid=np.arange(n) + 1000 * seed,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = 25.0
    ps.h[:] = 8.0
    return ps


def _oracle_surr():
    return SNSurrogate(oracle=SedovBlastOracle(t_after=0.1), n_grid=8, side=60.0)


def _unet_surr():
    net = UNet3D(in_channels=8, out_channels=5, base_channels=2, depth=1, seed=0)
    return SNSurrogate(predictor=net, n_grid=8, side=60.0)


def _events(n):
    return [(k, _region(seed=k), np.zeros(3)) for k in range(n)]


def test_batch_matches_serial_bit_for_bit():
    surr = _oracle_surr()
    events = _events(4)
    serial = [
        surr.predict_particles(r, c, event_rng(0, pid, 0)) for pid, r, c in events
    ]
    batched = surr.predict_batch(
        [r for _, r, _ in events],
        [c for _, _, c in events],
        [event_rng(0, pid, 0) for pid, _, _ in events],
    )
    for ref, got in zip(serial, batched):
        for name, arr in ref.data.items():
            assert np.array_equal(got.data[name], arr), name


def test_batch_order_independence():
    """Satellite regression: per-event seeding makes predictions invariant
    under dispatch/collect ordering."""
    surr = _oracle_surr()
    events = _events(3)
    fwd = surr.predict_batch(
        [r for _, r, _ in events], [c for _, _, c in events],
        [event_rng(0, pid, 0) for pid, _, _ in events],
    )
    rev = surr.predict_batch(
        [r for _, r, _ in reversed(events)], [c for _, _, c in reversed(events)],
        [event_rng(0, pid, 0) for pid, _, _ in reversed(events)],
    )
    for ref, got in zip(fwd, reversed(rev)):
        assert np.array_equal(got.pos, ref.pos)
        assert np.array_equal(got.u, ref.u)


def test_pool_collect_order_independence():
    """Same regression at the PoolManager level: two managers dispatching
    the same SNe in opposite orders produce identical per-star predictions
    (the old shared-RNG collect made them order-dependent)."""

    def run(order):
        m = PoolManager(surrogate=_oracle_surr(), n_pool=4, latency_steps=5, seed=0)
        for k in order:
            m.dispatch(_region(seed=k), np.zeros(3), star_pid=k, time=0.0, step=0)
        return {e.star_pid: p for e, p in m.collect(5)}

    a = run([0, 1, 2])
    b = run([2, 0, 1])
    assert set(a) == set(b)
    for pid in a:
        assert np.array_equal(a[pid].pos, b[pid].pos)
        assert np.array_equal(a[pid].vel, b[pid].vel)
        assert np.array_equal(a[pid].u, b[pid].u)


def test_empty_region_passes_through():
    surr = _oracle_surr()
    out = surr.predict_batch(
        [ParticleSet.empty(0), _region(seed=1)],
        [np.zeros(3), np.zeros(3)],
        [event_rng(0, 0, 0), event_rng(0, 1, 0)],
    )
    assert len(out[0]) == 0
    assert len(out[1]) == 30


def test_unet_batch_matches_serial():
    surr = _unet_surr()
    events = _events(3)
    serial = [
        surr.predict_particles(r, c, event_rng(0, pid, 0)) for pid, r, c in events
    ]
    batched = surr.predict_batch(
        [r for _, r, _ in events], [c for _, _, c in events],
        [event_rng(0, pid, 0) for pid, _, _ in events],
    )
    for ref, got in zip(serial, batched):
        assert np.array_equal(got.pos, ref.pos)
        assert np.array_equal(got.u, ref.u)


def test_padded_batch_matches_unpadded():
    surr = _unet_surr()
    events = _events(2)

    def args():  # fresh generators per call — they are consumed by Gibbs
        return (
            [r for _, r, _ in events], [c for _, _, c in events],
            [event_rng(0, pid, 0) for pid, _, _ in events],
        )

    plain = surr.predict_batch(*args())
    padded = surr.predict_batch(*args(), pad_to=4)
    for ref, got in zip(plain, padded):
        assert np.array_equal(got.pos, ref.pos)
        assert np.array_equal(got.u, ref.u)
