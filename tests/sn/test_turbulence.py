"""Turbulent field spectra and turbulent-box initial conditions."""

import numpy as np
import pytest

from repro.fdps.particles import ParticleType
from repro.sn.turbulence import (
    make_turbulent_box,
    measure_power_spectrum,
    turbulent_velocity_field,
)
from repro.util.constants import internal_energy_to_temperature


def test_field_shape_and_rms():
    v = turbulent_velocity_field(16, seed=0)
    assert v.shape == (3, 16, 16, 16)
    for c in range(3):
        assert np.sqrt(np.mean(v[c] ** 2)) == pytest.approx(1.0, rel=1e-9)


def test_field_reproducible():
    a = turbulent_velocity_field(8, seed=5)
    b = turbulent_velocity_field(8, seed=5)
    assert np.array_equal(a, b)
    c = turbulent_velocity_field(8, seed=6)
    assert not np.array_equal(a, c)


def test_spectrum_slope_is_minus_four():
    # P(k) ~ k^-4 (the paper's v ~ k^-4 spectrum for star-forming regions).
    v = turbulent_velocity_field(64, spectral_index=-4.0, seed=1)
    k, pk = measure_power_spectrum(v[0], n_bins=12)
    ok = (k > 2) & (k < 20) & (pk > 0)
    slope = np.polyfit(np.log10(k[ok]), np.log10(pk[ok]), 1)[0]
    assert slope == pytest.approx(-4.0, abs=0.5)


def test_spectral_index_is_respected():
    v = turbulent_velocity_field(64, spectral_index=-2.0, seed=2)
    k, pk = measure_power_spectrum(v[0], n_bins=12)
    ok = (k > 2) & (k < 20) & (pk > 0)
    slope = np.polyfit(np.log10(k[ok]), np.log10(pk[ok]), 1)[0]
    assert slope == pytest.approx(-2.0, abs=0.5)


def test_solenoidal_projection_reduces_divergence():
    n = 32
    v_sol = turbulent_velocity_field(n, seed=3, solenoidal_fraction=1.0)
    v_mix = turbulent_velocity_field(n, seed=3, solenoidal_fraction=None)

    def mean_div2(v):
        dx = np.gradient(v[0], axis=0)
        dy = np.gradient(v[1], axis=1)
        dz = np.gradient(v[2], axis=2)
        return np.mean((dx + dy + dz) ** 2)

    assert mean_div2(v_sol) < 0.2 * mean_div2(v_mix)


def test_turbulent_box_bulk_properties():
    side = 60.0
    ps = make_turbulent_box(n_per_side=10, side=side, mean_density=0.05,
                            temperature=100.0, mach=5.0, seed=0)
    assert len(ps) == 1000
    assert np.all(ps.ptype == int(ParticleType.GAS))
    # Density: total mass over volume.
    assert ps.total_mass() / side**3 == pytest.approx(0.05, rel=1e-6)
    # Temperature as requested.
    t = internal_energy_to_temperature(ps.u)
    assert np.allclose(t, 100.0, rtol=0.05)
    # Zero net momentum.
    assert np.allclose(ps.momentum(), 0.0, atol=1e-8 * ps.total_mass())


def test_turbulent_box_mach_number():
    ps = make_turbulent_box(n_per_side=12, temperature=100.0, mach=5.0, seed=1)
    cs_iso = np.sqrt(2.0 / 3.0 * ps.u[0])
    v_rms = np.sqrt(np.mean(np.sum(ps.vel**2, axis=1)) / 3.0)
    assert v_rms / cs_iso == pytest.approx(5.0, rel=0.05)


def test_turbulent_box_positions_span_box():
    side = 60.0
    ps = make_turbulent_box(n_per_side=8, side=side, seed=2)
    lo, hi = ps.bounding_box()
    assert np.all(lo > -side)
    assert np.all(hi < side)
    assert np.all(hi - lo > 0.7 * side)


def test_particle_mass_override():
    ps = make_turbulent_box(n_per_side=6, particle_mass=1.0, seed=3)
    assert np.allclose(ps.mass, 1.0)
