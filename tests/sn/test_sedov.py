"""Sedov–Taylor solution against literature values and conservation laws."""

import numpy as np
import pytest

from repro.sn.sedov import SedovSolution, sedov_shock_radius
from repro.util.constants import GAMMA, SN_ENERGY


@pytest.fixture(scope="module")
def sol():
    return SedovSolution(energy=1.0, rho0=1.0, gamma=GAMMA)


def test_beta_matches_literature(sol):
    # gamma = 5/3: beta ~ 1.152 (Sedov 1959; Kamm & Timmes 2007).
    assert sol.beta == pytest.approx(1.1517, abs=0.01)


def test_beta_gamma_14():
    s = SedovSolution(energy=1.0, rho0=1.0, gamma=1.4)
    # gamma = 7/5: beta ~ 1.033.
    assert s.beta == pytest.approx(1.033, abs=0.01)


def test_shock_radius_scaling(sol):
    r1 = sol.shock_radius(1.0)
    r32 = sol.shock_radius(32.0)
    assert r32 / r1 == pytest.approx(32.0 ** 0.4, rel=1e-12)
    # Energy scaling E^{1/5}.
    s10 = SedovSolution(energy=1e5, rho0=1.0)
    assert s10.shock_radius(1.0) / r1 == pytest.approx(10.0, rel=1e-12)


def test_module_level_helper(sol):
    assert sedov_shock_radius(1.0, 1.0, 2.0) == pytest.approx(sol.shock_radius(2.0))


def test_compression_ratio_at_shock(sol):
    t = 1.0
    rs = sol.shock_radius(t)
    dens, _, _ = sol.evaluate(np.array([rs * 0.999]), t)
    # Strong shock: rho2/rho0 = (gamma+1)/(gamma-1) = 4 for gamma = 5/3.
    assert dens[0] / sol.rho0 == pytest.approx(4.0, rel=0.02)


def test_ambient_state_outside(sol):
    t = 1.0
    rs = sol.shock_radius(t)
    dens, vel, u = sol.evaluate(np.array([rs * 1.5, rs * 3.0]), t)
    assert np.allclose(dens, sol.rho0)
    assert np.allclose(vel, 0.0)


def test_central_evacuation(sol):
    t = 1.0
    rs = sol.shock_radius(t)
    dens, _, _ = sol.evaluate(np.array([0.01 * rs]), t)
    assert dens[0] < 0.05 * sol.rho0  # interior is nearly empty


def test_energy_conservation(sol):
    # The integrated kinetic+thermal energy inside the shock equals E.
    for t in (0.5, 2.0):
        assert sol.total_energy(t) == pytest.approx(sol.energy, rel=0.02)


def test_mass_conservation(sol):
    # Mass inside the shock = swept ambient mass: integral of the profile.
    t = 1.0
    rs = sol.shock_radius(t)
    r = np.linspace(rs * 1e-3, rs, 4000)
    dens, _, _ = sol.evaluate(r, t)
    m = np.trapezoid(4 * np.pi * r**2 * dens, r)
    assert m == pytest.approx(sol.swept_mass(t), rel=0.02)


def test_velocity_profile_monotone_inside(sol):
    t = 1.0
    rs = sol.shock_radius(t)
    r = np.linspace(0.05 * rs, 0.999 * rs, 200)
    _, vel, _ = sol.evaluate(r, t)
    assert np.all(vel >= 0)
    assert vel[-1] == pytest.approx(2.0 / (GAMMA + 1.0) * sol.shock_velocity(t), rel=0.02)


def test_apply_to_particles_radial(sol):
    rng = np.random.default_rng(0)
    pos = rng.uniform(-2, 2, (500, 3))
    center = np.zeros(3)
    dens, vel, u = sol.apply_to_particles(pos, center, t=1.0)
    # Velocities point radially outward.
    r = np.linalg.norm(pos, axis=1)
    inside = r < sol.shock_radius(1.0)
    vdotr = np.einsum("ij,ij->i", vel, pos)
    assert np.all(vdotr[inside] >= -1e-12)
    assert np.all(dens > 0)
    assert np.all(np.isfinite(u))


def test_physical_sn_scale():
    # A real SN (1e51 erg) in n_H ~ 1 cm^-3 gas (0.031 M_sun/pc^3):
    # after 0.1 Myr the adiabatic shell radius is ~32 pc — just filling the
    # paper's (60 pc)^3 prediction region (half-side 30 pc; real shells are
    # slightly smaller due to radiative losses).
    s = SedovSolution(energy=SN_ENERGY, rho0=0.031)
    r = s.shock_radius(0.1)
    assert 15.0 < r < 40.0


def test_shock_velocity_definition(sol):
    t = 2.0
    eps = 1e-6
    numeric = (sol.shock_radius(t + eps) - sol.shock_radius(t - eps)) / (2 * eps)
    assert sol.shock_velocity(t) == pytest.approx(numeric, rel=1e-6)
