"""Initial conditions: profiles, Model MW structure, per-domain generation."""

import numpy as np
import pytest

from repro.fdps.domain import DomainDecomposition
from repro.fdps.particles import ParticleType
from repro.ic.galaxy import MW_SPEC, generate_for_domain, make_mw_mini, make_mw_model
from repro.ic.halo import jeans_sigma
from repro.ic.profiles import ExponentialDisk, NFWHalo
from repro.util.constants import KM_PER_S


@pytest.fixture(scope="module")
def mw():
    return make_mw_model(n_total=6000, seed=42)


# ---------------------------------------------------------------- profiles
def test_nfw_enclosed_mass_total():
    halo = NFWHalo(m_total=1e12, a=2e4, r_max=2e5)
    assert halo.enclosed_mass(np.array([2e5]))[0] == pytest.approx(1e12, rel=1e-9)


def test_nfw_inner_slope_minus_one():
    halo = NFWHalo(m_total=1e12, a=2e4, r_max=2e5)
    r = np.array([1e2, 2e2])
    slope = np.log(halo.density(r[1]) / halo.density(r[0])) / np.log(2.0)
    assert slope == pytest.approx(-1.0, abs=0.1)


def test_nfw_outer_slope_minus_three():
    halo = NFWHalo(m_total=1e12, a=2e4, r_max=2e5)
    r = np.array([1.0e5, 2.0e5])
    slope = np.log(halo.density(r[1]) / halo.density(r[0])) / np.log(2.0)
    assert slope == pytest.approx(-3.0, abs=0.3)


def test_disk_enclosed_mass():
    d = ExponentialDisk(m_total=5e10, r_d=2.6e3, z_d=300.0)
    assert d.enclosed_mass_cyl(np.array([1e9]))[0] == pytest.approx(5e10, rel=1e-6)
    half = d.enclosed_mass_cyl(np.array([d.r_d * 1.678]))[0]
    assert half == pytest.approx(0.5 * 5e10, rel=0.01)


def test_disk_sampling_matches_profile():
    d = ExponentialDisk(m_total=1e10, r_d=3e3, z_d=300.0)
    rng = np.random.default_rng(0)
    pos = d.sample(20000, rng)
    r = np.hypot(pos[:, 0], pos[:, 1])
    # Median cylindrical radius of an exponential disk ~ 1.678 Rd.
    assert np.median(r) == pytest.approx(1.678 * 3e3, rel=0.05)
    # Vertical: median |z| of sech^2 = zd * atanh(0.5).
    assert np.median(np.abs(pos[:, 2])) == pytest.approx(300 * np.arctanh(0.5), rel=0.1)


def test_mw_circular_velocity_about_220_km_s():
    halo, sdisk, gdisk, rot = MW_SPEC.components()
    v_sun = rot.circular_velocity(np.array([8.2e3]))[0] * KM_PER_S
    assert 170.0 < v_sun < 280.0  # the observed ~220-240 km/s ballpark


def test_jeans_sigma_reasonable():
    halo, _, _, rot = MW_SPEC.components()
    sig = jeans_sigma(halo, rot, np.array([1e4, 1e5]))
    assert np.all(sig > 0)
    assert sig[0] * KM_PER_S < 400.0


# ---------------------------------------------------------------- Model MW
def test_component_mass_fractions(mw):
    m_dm = mw.mass[mw.where_type(ParticleType.DARK_MATTER)].sum()
    m_star = mw.mass[mw.where_type(ParticleType.STAR)].sum()
    m_gas = mw.mass[mw.where_type(ParticleType.GAS)].sum()
    assert m_dm / MW_SPEC.m_dm == pytest.approx(1.0, rel=0.05)
    assert m_star / MW_SPEC.m_star == pytest.approx(1.0, rel=0.05)
    assert m_gas / MW_SPEC.m_gas == pytest.approx(1.0, rel=0.05)


def test_unique_pids(mw):
    assert len(np.unique(mw.pid)) == len(mw)


def test_gas_is_thin_disk(mw):
    gas = mw.gas()
    r = np.hypot(gas.pos[:, 0], gas.pos[:, 1])
    assert np.median(np.abs(gas.pos[:, 2])) < 0.1 * np.median(r)


def test_disk_rotates(mw):
    gas = mw.gas()
    # Specific angular momentum along z dominates and is one-signed.
    lz = gas.pos[:, 0] * gas.vel[:, 1] - gas.pos[:, 1] * gas.vel[:, 0]
    assert np.mean(lz > 0) > 0.95


def test_halo_roughly_isotropic(mw):
    dm = mw.dark_matter()
    lz = dm.pos[:, 0] * dm.vel[:, 1] - dm.pos[:, 1] * dm.vel[:, 0]
    assert abs(np.mean(lz > 0) - 0.5) < 0.1


def test_central_concentration(mw):
    # The Fig. 4 premise: the *baryons* crowd the centre and mid-plane
    # (the NFW halo's own half-mass radius is legitimately ~70 kpc).
    baryon = ~mw.where_type(ParticleType.DARK_MATTER)
    r_b = np.linalg.norm(mw.pos[baryon], axis=1)
    r_max = np.linalg.norm(mw.pos, axis=1).max()
    assert np.median(r_b) < 0.05 * r_max


def test_mini_model_scales_down():
    mini = make_mw_mini(n_total=2000, seed=1)
    assert mini.total_mass() == pytest.approx(MW_SPEC.m_total / 100.0, rel=0.05)
    r_mw = np.linalg.norm(make_mw_model(2000, seed=1).pos, axis=1)
    r_mini = np.linalg.norm(mini.pos, axis=1)
    assert np.median(r_mini) < np.median(r_mw)


def test_generation_deterministic():
    a = make_mw_model(1000, seed=7)
    b = make_mw_model(1000, seed=7)
    assert np.array_equal(a.pos, b.pos)
    assert not np.array_equal(a.pos, make_mw_model(1000, seed=8).pos)


# ----------------------------------------------------- per-domain generation
def test_per_domain_union_equals_full():
    full = make_mw_model(3000, seed=3)
    dd = DomainDecomposition.fit(full.pos, (2, 2, 1), sample=None)
    parts = [generate_for_domain(dd, r, 3000, seed=3) for r in range(dd.n_domains)]
    n_union = sum(len(p) for p in parts)
    assert n_union == len(full)
    pids = np.sort(np.concatenate([p.pid for p in parts]))
    assert np.array_equal(pids, np.sort(full.pid))


def test_per_domain_particles_inside_their_domain():
    full = make_mw_model(2000, seed=4)
    dd = DomainDecomposition.fit(full.pos, (2, 1, 2), sample=None)
    for r in range(dd.n_domains):
        part = generate_for_domain(dd, r, 2000, seed=4)
        if len(part) == 0:
            continue
        lo, hi = dd.domain_box(r)
        assert np.all(part.pos >= lo) and np.all(part.pos < hi)
