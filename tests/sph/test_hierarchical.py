"""Hierarchical-timestep cost accounting (the Sec. 1 argument)."""

import numpy as np
import pytest

from repro.sph.timestep import (
    hierarchical_bins,
    hierarchical_efficiency,
    hierarchical_update_fractions,
)


def test_update_fractions_sum_to_one():
    dts = np.array([2e-3] * 90 + [1e-4] * 10)
    levels, fracs = hierarchical_update_fractions(dts, dt_base=2e-3)
    assert fracs.sum() == pytest.approx(1.0)
    assert 0 in levels
    assert fracs[list(levels).index(0)] == pytest.approx(0.9)


def test_efficiency_all_equal_timesteps():
    # Everyone in bin 0: hierarchical == shared modulo the overhead.
    dts = np.full(1000, 2e-3)
    out = hierarchical_efficiency(dts, dt_base=2e-3, fixed_overhead=0.3)
    assert out["k_max"] == 0
    assert out["individual_updates"] == out["shared_updates"]
    assert out["speedup"] == pytest.approx(1.0 / 1.3)


def test_efficiency_improves_with_smaller_hot_fraction():
    n = 10_000
    speedups = []
    for hot in (0.1, 0.01, 0.001):
        dts = np.full(n, 2e-3)
        dts[: int(hot * n)] = 2e-3 / 32
        speedups.append(hierarchical_efficiency(dts, 2e-3)["speedup"])
    assert speedups[0] < speedups[1] < speedups[2]


def test_efficiency_capped_by_overhead():
    # Even a single deep particle cannot push the speedup past the ceiling.
    n = 100_000
    dts = np.full(n, 2e-3)
    dts[0] = 2e-3 / 1024
    out = hierarchical_efficiency(dts, 2e-3, fixed_overhead=0.3)
    assert out["speedup"] <= out["speedup_ceiling"]
    assert out["speedup"] > 0.9 * out["speedup_ceiling"]
    # While the *shared* scheme pays the full 1024x.
    assert out["shared_updates"] == n * 1024


def test_zero_overhead_recovers_ideal_individual_stepping():
    dts = np.array([*[2e-3] * 99, 2e-3 / 16])
    out = hierarchical_efficiency(dts, 2e-3, fixed_overhead=0.0)
    ideal = (100 * 16) / (99 + 16)
    assert out["speedup"] == pytest.approx(ideal)


def test_bins_consistency_with_fractions():
    rng = np.random.default_rng(0)
    dts = 2e-3 * 2.0 ** (-rng.integers(0, 5, 500).astype(float))
    bins = hierarchical_bins(dts, 2e-3)
    levels, fracs = hierarchical_update_fractions(dts, 2e-3)
    for lv, fr in zip(levels, fracs):
        assert fr == pytest.approx(np.mean(bins == lv))
