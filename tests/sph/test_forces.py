"""Hydro forces: conservation laws, shock heating, signal velocity."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sph.density import compute_density
from repro.sph.forces import compute_hydro_forces


def _prepared_state(pos, vel, mass, u, h0=0.3, n_ngb=40):
    res = compute_density(pos, vel, mass, u, np.full(len(pos), h0), n_ngb=n_ngb)
    return res


def _random_cloud(n=300, seed=0, vscale=1.0):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, 1, (n, 3))
    vel = rng.normal(0, vscale, (n, 3))
    mass = rng.uniform(0.5, 1.5, n)
    u = rng.uniform(0.5, 2.0, n)
    return pos, vel, mass, u


def test_momentum_conservation_exact():
    pos, vel, mass, u = _random_cloud(seed=1)
    d = _prepared_state(pos, vel, mass, u)
    f = compute_hydro_forces(
        pos, vel, mass, d.h, d.dens, d.pres, d.csnd,
        omega=d.omega, divv=d.divv, curlv=d.curlv,
    )
    ptot = (mass[:, None] * f.acc).sum(axis=0)
    scale = np.abs(mass[:, None] * f.acc).sum()
    assert np.all(np.abs(ptot) < 1e-10 * scale)


def test_total_energy_conservation_exact():
    # d/dt (sum m u + sum 1/2 m v^2) = sum m du/dt + sum m v.a = 0
    # holds pairwise for this formulation, including viscosity.
    pos, vel, mass, u = _random_cloud(seed=2, vscale=3.0)
    d = _prepared_state(pos, vel, mass, u)
    f = compute_hydro_forces(
        pos, vel, mass, d.h, d.dens, d.pres, d.csnd,
        omega=d.omega, divv=d.divv, curlv=d.curlv,
    )
    de_thermal = np.sum(mass * f.du_dt)
    de_kinetic = np.sum(mass * np.einsum("ij,ij->i", vel, f.acc))
    scale = np.abs(mass * f.du_dt).sum() + np.abs(
        mass * np.einsum("ij,ij->i", vel, f.acc)
    ).sum()
    assert abs(de_thermal + de_kinetic) < 1e-10 * scale


def test_uniform_lattice_nearly_zero_force():
    npts = 10
    g = (np.arange(npts) + 0.5) / npts
    xx, yy, zz = np.meshgrid(g, g, g, indexing="ij")
    pos = np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])
    n = len(pos)
    vel = np.zeros((n, 3))
    mass = np.ones(n)
    u = np.ones(n)
    d = _prepared_state(pos, vel, mass, u)
    f = compute_hydro_forces(pos, vel, mass, d.h, d.dens, d.pres, d.csnd, omega=d.omega)
    core = np.all((pos > 0.3) & (pos < 0.7), axis=1)
    edge = ~np.all((pos > 0.1) & (pos < 0.9), axis=1)
    fmag = np.linalg.norm(f.acc, axis=1)
    # Interior forces must be far below the boundary forces (SPH carries an
    # irreducible E0 discretization error, so "zero" means "edge-dominated").
    assert np.median(fmag[core]) < 0.25 * np.median(fmag[edge])
    # And the residual interior force is well below the gradient scale P/(rho h).
    scale = np.median(d.pres / (d.dens * d.h))
    assert np.median(fmag[core]) < 0.2 * scale


def test_pressure_gradient_pushes_outward():
    # Hot center, cold surroundings: central particles must accelerate away.
    rng = np.random.default_rng(4)
    pos = rng.uniform(-1, 1, (600, 3))
    n = len(pos)
    r = np.linalg.norm(pos, axis=1)
    u = np.where(r < 0.4, 50.0, 1.0)
    mass = np.ones(n)
    vel = np.zeros((n, 3))
    d = _prepared_state(pos, vel, mass, u, h0=0.4, n_ngb=50)
    f = compute_hydro_forces(pos, vel, mass, d.h, d.dens, d.pres, d.csnd, omega=d.omega)
    shell = (r > 0.3) & (r < 0.6)
    radial = np.einsum("ij,ij->i", f.acc[shell], pos[shell]) / r[shell]
    assert np.median(radial) > 0.0


def test_viscosity_heats_approaching_flows():
    # Two streams colliding: viscous du/dt > 0 in the interaction zone.
    rng = np.random.default_rng(5)
    pos = rng.uniform(0, 1, (500, 3))
    vel = np.where(pos[:, :1] < 0.5, 4.0, -4.0) * np.array([[1.0, 0.0, 0.0]])
    mass = np.ones(500)
    u = np.full(500, 0.1)
    d = _prepared_state(pos, vel, mass, u, h0=0.25, n_ngb=40)
    f = compute_hydro_forces(
        pos, vel, mass, d.h, d.dens, d.pres, d.csnd,
        omega=d.omega, divv=d.divv, curlv=d.curlv,
    )
    zone = np.abs(pos[:, 0] - 0.5) < 0.15
    assert np.median(f.du_dt[zone]) > 0.0


def test_no_viscosity_for_receding_flows():
    rng = np.random.default_rng(6)
    pos = rng.uniform(0, 1, (400, 3))
    # Pure expansion away from the plane x=0.5; pairs recede -> mu = 0.
    vel = np.sign(pos[:, :1] - 0.5) * 4.0 * np.array([[1.0, 0.0, 0.0]])
    mass = np.ones(400)
    u = np.full(400, 1e-8)  # negligible pressure
    d = _prepared_state(pos, vel, mass, u, h0=0.25, n_ngb=40)
    f_lo = compute_hydro_forces(
        pos, vel, mass, d.h, d.dens, d.pres, d.csnd, alpha_visc=0.0, beta_visc=0.0
    )
    f_hi = compute_hydro_forces(
        pos, vel, mass, d.h, d.dens, d.pres, d.csnd, alpha_visc=1.0, beta_visc=2.0
    )
    assert np.allclose(f_lo.acc, f_hi.acc)


def test_signal_velocity_exceeds_sound_speed():
    pos, vel, mass, u = _random_cloud(seed=7, vscale=5.0)
    d = _prepared_state(pos, vel, mass, u)
    f = compute_hydro_forces(pos, vel, mass, d.h, d.dens, d.pres, d.csnd)
    assert np.all(f.v_signal >= d.csnd - 1e-12)


def test_empty_neighborhood_is_handled():
    # Two particles far apart: no pairs, zero forces.
    pos = np.array([[0.0, 0.0, 0.0], [100.0, 0.0, 0.0]])
    f = compute_hydro_forces(
        pos, np.zeros((2, 3)), np.ones(2), np.array([0.5, 0.5]),
        np.ones(2), np.ones(2), np.ones(2),
    )
    assert np.allclose(f.acc, 0.0)
    assert f.n_pairs == 0


@given(st.integers(30, 120), st.integers(0, 30))
@settings(max_examples=10, deadline=None)
def test_conservation_property(n, seed):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, 1, (n, 3))
    vel = rng.normal(0, 2, (n, 3))
    mass = rng.uniform(0.5, 2.0, n)
    u = rng.uniform(0.1, 3.0, n)
    d = compute_density(pos, vel, mass, u, np.full(n, 0.4), n_ngb=min(32, n // 2))
    f = compute_hydro_forces(
        pos, vel, mass, d.h, d.dens, d.pres, d.csnd,
        omega=d.omega, divv=d.divv, curlv=d.curlv,
    )
    ptot = (mass[:, None] * f.acc).sum(axis=0)
    pscale = np.abs(mass[:, None] * f.acc).sum() + 1e-300
    assert np.all(np.abs(ptot) < 1e-9 * pscale)
    de = np.sum(mass * f.du_dt) + np.sum(mass * np.einsum("ij,ij->i", vel, f.acc))
    escale = np.abs(mass * f.du_dt).sum() + 1e-300
    assert abs(de) < 1e-8 * max(escale, 1.0)
