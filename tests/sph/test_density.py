"""Density pass: lattice density, h convergence, companion fields."""

import numpy as np
import pytest

from repro.sph.density import compute_density
from repro.sph.kernels import WendlandC2
from repro.util.constants import GAMMA


def _lattice(npts=10, side=1.0, jitter=0.0, seed=0):
    rng = np.random.default_rng(seed)
    g = (np.arange(npts) + 0.5) / npts * side
    xx, yy, zz = np.meshgrid(g, g, g, indexing="ij")
    pos = np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])
    if jitter:
        pos += rng.normal(0, jitter * side / npts, pos.shape)
    return pos


def test_uniform_lattice_density():
    pos = _lattice(10, side=1.0)
    n = len(pos)
    mass = np.full(n, 1.0 / n)  # total mass 1 in unit volume -> rho = 1
    vel = np.zeros((n, 3))
    u = np.ones(n)
    res = compute_density(pos, vel, mass, u, np.full(n, 0.25), n_ngb=40)
    core = np.all((pos > 0.25) & (pos < 0.75), axis=1)  # avoid edge deficit
    assert np.median(res.dens[core]) == pytest.approx(1.0, rel=0.05)


def test_h_converges_to_target_neighbor_count():
    pos = _lattice(12, side=1.0, jitter=0.2)
    n = len(pos)
    res = compute_density(
        pos, np.zeros((n, 3)), np.ones(n), np.ones(n),
        np.full(n, 0.3), n_ngb=50, tol=0.2,
    )
    core = np.all((pos > 0.25) & (pos < 0.75), axis=1)
    counts = res.n_neighbors[core]
    assert np.median(counts) == pytest.approx(50, rel=0.25)


def test_good_initial_guess_converges_in_two_sweeps():
    # The paper's Sec. 5.2.5 claim: with a proper guess the kernel-size
    # iteration needs ~2 sweeps.
    pos = _lattice(10, side=1.0, jitter=0.1)
    n = len(pos)
    first = compute_density(
        pos, np.zeros((n, 3)), np.ones(n), np.ones(n), np.full(n, 0.2),
        n_ngb=40, tol=0.12,
    )
    again = compute_density(
        pos, np.zeros((n, 3)), np.ones(n), np.ones(n), first.h,
        n_ngb=40, tol=0.12,
    )
    assert again.iterations <= 2


def test_omega_near_unity_for_uniform():
    pos = _lattice(10)
    n = len(pos)
    res = compute_density(
        pos, np.zeros((n, 3)), np.ones(n), np.ones(n), np.full(n, 0.25), n_ngb=40
    )
    core = np.all((pos > 0.25) & (pos < 0.75), axis=1)
    assert np.median(np.abs(res.omega[core] - 1.0)) < 0.2


def test_divergence_of_hubble_flow():
    # v = H x has div v = 3H and zero curl.
    pos = _lattice(12, jitter=0.05)
    n = len(pos)
    hubble = 2.5
    vel = hubble * (pos - 0.5)
    res = compute_density(
        pos, vel, np.ones(n), np.ones(n), np.full(n, 0.25), n_ngb=60
    )
    core = np.all((pos > 0.3) & (pos < 0.7), axis=1)
    assert np.median(res.divv[core]) == pytest.approx(3 * hubble, rel=0.15)
    assert np.median(res.curlv[core]) < 0.3 * 3 * hubble


def test_curl_of_rigid_rotation():
    # v = omega x r: curl = 2 omega, div = 0.
    pos = _lattice(12, jitter=0.05)
    n = len(pos)
    om = 3.0
    rel = pos - 0.5
    vel = np.column_stack([-om * rel[:, 1], om * rel[:, 0], np.zeros(n)])
    res = compute_density(
        pos, vel, np.ones(n), np.ones(n), np.full(n, 0.25), n_ngb=60
    )
    core = np.all((pos > 0.3) & (pos < 0.7), axis=1)
    assert np.median(res.curlv[core]) == pytest.approx(2 * om, rel=0.15)
    assert np.abs(np.median(res.divv[core])) < 0.3 * om


def test_pressure_and_sound_speed():
    pos = _lattice(8)
    n = len(pos)
    u = np.full(n, 4.0)
    res = compute_density(
        pos, np.zeros((n, 3)), np.ones(n), u, np.full(n, 0.3), n_ngb=40
    )
    assert np.allclose(res.pres, (GAMMA - 1) * res.dens * u)
    assert np.allclose(res.csnd, np.sqrt(GAMMA * res.pres / res.dens))


def test_density_positive_everywhere():
    rng = np.random.default_rng(3)
    pos = rng.uniform(0, 1, (400, 3))
    n = len(pos)
    res = compute_density(
        pos, np.zeros((n, 3)), np.ones(n), np.ones(n), np.full(n, 0.25), n_ngb=33
    )
    assert np.all(res.dens > 0)
    assert np.all(np.isfinite(res.omega))


def test_wendland_kernel_option():
    pos = _lattice(8)
    n = len(pos)
    res = compute_density(
        pos, np.zeros((n, 3)), np.full(n, 1.0 / n), np.ones(n),
        np.full(n, 0.35), n_ngb=55, kernel=WendlandC2(),
    )
    core = np.all((pos > 0.25) & (pos < 0.75), axis=1)
    assert np.median(res.dens[core]) == pytest.approx(1.0, rel=0.1)


def test_mass_weighting():
    # Doubling every mass doubles the density.
    pos = _lattice(8, jitter=0.1)
    n = len(pos)
    r1 = compute_density(
        pos, np.zeros((n, 3)), np.ones(n), np.ones(n), np.full(n, 0.3), n_ngb=40
    )
    r2 = compute_density(
        pos, np.zeros((n, 3)), 2 * np.ones(n), np.ones(n), np.full(n, 0.3), n_ngb=40
    )
    assert np.allclose(r2.dens, 2 * r1.dens)
