"""Timestep criteria: CFL scale, mass scaling, hierarchical bins."""

import numpy as np
import pytest

from repro.sph.timestep import (
    acceleration_timestep,
    cfl_timestep,
    dynamical_time,
    global_timestep,
    hierarchical_bins,
    timestep_mass_scaling,
)
from repro.util.constants import KM_PER_S, temperature_to_internal_energy, sound_speed


def test_cfl_basic_scaling():
    dt = cfl_timestep(np.array([2.0]), np.array([10.0]), courant=0.3)
    assert dt[0] == pytest.approx(0.06)


def test_sn_region_timestep_is_about_100_years():
    # The paper's headline number (Sec. 1): ~1 M_sun resolution gas with
    # SN sound speeds of ~1000 km/s needs dt ~ O(100) yr.
    # At 1 M_sun and n_H ~ 1 cm^-3, h ~ a few pc for ~100 neighbors.
    cs = 1000.0 / KM_PER_S          # 1000 km/s in pc/Myr
    h = 3.0                          # pc
    dt_myr = cfl_timestep(np.array([h]), np.array([cs]), courant=0.1)[0]
    dt_yr = dt_myr * 1e6
    assert 50.0 < dt_yr < 1000.0


def test_cold_disk_timestep_is_much_longer():
    u_cold = temperature_to_internal_energy(100.0)
    cs = sound_speed(u_cold)
    dt_cold = cfl_timestep(np.array([3.0]), np.array([cs]), courant=0.1)[0]
    u_hot = temperature_to_internal_energy(1e7)
    dt_hot = cfl_timestep(np.array([3.0]), np.array([sound_speed(u_hot)]), courant=0.1)[0]
    assert dt_cold > 100.0 * dt_hot


def test_global_timestep_is_min():
    dts = np.array([0.5, 0.01, 3.0])
    assert global_timestep(dts) == pytest.approx(0.01)
    assert global_timestep(dts, dt_max=0.005) == pytest.approx(0.005)
    assert global_timestep(np.array([]), dt_max=1.0) == 1.0


def test_hierarchical_bins_power_of_two():
    dt_base = 1.0
    dts = np.array([1.0, 0.6, 0.3, 0.24, 0.01])
    bins = hierarchical_bins(dts, dt_base)
    assert list(bins) == [0, 1, 2, 3, 7]
    # Every particle's bin step must not exceed its own dt.
    assert np.all(dt_base / 2.0**bins <= dts + 1e-12)


def test_mass_scaling_five_sixths():
    # Refining resolution 100x shrinks dt by 100^(5/6) ~ 46x.
    dt = timestep_mass_scaling(m_ref=100.0, dt_ref=1.0, m_new=1.0)
    assert dt == pytest.approx(100.0 ** (-5.0 / 6.0), rel=1e-12)
    assert 1.0 / dt == pytest.approx(46.4, rel=0.01)


def test_acceleration_timestep_positive():
    dt = acceleration_timestep(np.array([1.0, 2.0]), np.array([[1.0, 0, 0], [0, 4.0, 0]]))
    assert np.all(dt > 0)
    assert dt[0] > dt[1] * np.sqrt(1.0 / 2.0) - 1e-12


def test_dynamical_time_scaling():
    td1 = dynamical_time(np.array([1.0]))[0]
    td4 = dynamical_time(np.array([4.0]))[0]
    assert td1 / td4 == pytest.approx(2.0)
    # ~50 Myr at 1 M_sun/pc^3? t_dyn = sqrt(3 pi /(32 G rho)):
    assert td1 == pytest.approx(np.sqrt(3 * np.pi / (32 * 4.4985e-3)), rel=1e-3)
