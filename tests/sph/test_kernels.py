"""Kernel normalization, smoothness, and derivative consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sph.kernels import CubicSpline, WendlandC2


KERNELS = [CubicSpline(), WendlandC2()]


@pytest.mark.parametrize("kernel", KERNELS, ids=["cubic", "wendland"])
def test_normalization_integrates_to_one(kernel):
    # 4 pi int_0^h W(r, h) r^2 dr = 1 for any h.
    for h in (0.5, 1.0, 3.7):
        r = np.linspace(0, h, 20001)
        w = kernel.value(r, np.full_like(r, h))
        integral = 4.0 * np.pi * np.trapezoid(w * r**2, r)
        assert integral == pytest.approx(1.0, rel=1e-4)


@pytest.mark.parametrize("kernel", KERNELS, ids=["cubic", "wendland"])
def test_compact_support(kernel):
    assert kernel.value(np.array([1.5]), np.array([1.0]))[0] == 0.0
    assert kernel.w(np.array([1.0]))[0] == pytest.approx(0.0, abs=1e-12)


@pytest.mark.parametrize("kernel", KERNELS, ids=["cubic", "wendland"])
def test_monotone_decreasing(kernel):
    q = np.linspace(0, 1, 500)
    w = kernel.w(q)
    assert np.all(np.diff(w) <= 1e-12)
    assert np.all(kernel.dw(q[1:]) <= 1e-12)


@pytest.mark.parametrize("kernel", KERNELS, ids=["cubic", "wendland"])
def test_dw_matches_finite_difference(kernel):
    q = np.linspace(0.01, 0.99, 300)
    eps = 1e-6
    fd = (kernel.w(q + eps) - kernel.w(q - eps)) / (2 * eps)
    assert np.allclose(kernel.dw(q), fd, atol=1e-4)


@pytest.mark.parametrize("kernel", KERNELS, ids=["cubic", "wendland"])
def test_dvalue_dh_matches_finite_difference(kernel):
    r = np.array([0.3, 0.7, 1.2])
    h = np.full_like(r, 1.5)
    eps = 1e-6
    fd = (kernel.value(r, h + eps) - kernel.value(r, h - eps)) / (2 * eps)
    assert np.allclose(kernel.dvalue_dh(r, h), fd, rtol=1e-4, atol=1e-8)


@pytest.mark.parametrize("kernel", KERNELS, ids=["cubic", "wendland"])
def test_grad_factor_finite_at_origin(kernel):
    gf = kernel.grad_factor(np.array([0.0, 1e-15]), np.array([1.0, 1.0]))
    assert np.all(np.isfinite(gf))


@pytest.mark.parametrize("kernel", KERNELS, ids=["cubic", "wendland"])
def test_grad_points_inward(kernel):
    # (1/r) dW/dr < 0 inside the support: the kernel force is repulsive
    # along +r_ij for positive pressure.
    r = np.linspace(0.05, 0.95, 50)
    h = np.ones_like(r)
    assert np.all(kernel.grad_factor(r, h) <= 0.0)


@given(st.floats(0.1, 10.0), st.floats(0.0, 0.99))
@settings(max_examples=60, deadline=None)
def test_scaling_invariance_property(h, q):
    # W(qh, h) = w(q) * sigma / h^3 for both kernels.  q is kept off the
    # support edge: (1-q)^3 amplifies the rounding of (q*h)/h without bound
    # as q -> 1, which is a property of floats, not of the kernel.
    for kernel in KERNELS:
        val = kernel.value(np.array([q * h]), np.array([h]))[0]
        ref = kernel.sigma / h**3 * kernel.w(np.array([q]))[0]
        assert val == pytest.approx(ref, rel=1e-9, abs=1e-250)


def test_cubic_spline_known_values():
    k = CubicSpline()
    assert k.w(np.array([0.0]))[0] == pytest.approx(1.0)
    assert k.w(np.array([0.5]))[0] == pytest.approx(0.25)


def test_wendland_known_values():
    k = WendlandC2()
    assert k.w(np.array([0.0]))[0] == pytest.approx(1.0)
    assert k.w(np.array([0.5]))[0] == pytest.approx(0.5**4 * 3.0)
