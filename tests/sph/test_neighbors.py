"""Cell-linked-list neighbor search vs brute force and scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.spatial import cKDTree

from repro.sph.neighbors import NeighborGrid, neighbor_counts, neighbor_pairs


def _brute_pairs(pos, radius, mode):
    r_arr = np.broadcast_to(np.asarray(radius, dtype=float), (len(pos),))
    d = np.linalg.norm(pos[:, None, :] - pos[None, :, :], axis=2)
    if mode == "gather":
        keep = d < r_arr[:, None]
    else:
        keep = d < np.maximum(r_arr[:, None], r_arr[None, :])
    return {(i, j) for i, j in zip(*np.nonzero(keep))}


@pytest.mark.parametrize("mode", ["gather", "symmetric"])
def test_matches_brute_force_fixed_radius(rng, mode):
    pos = rng.uniform(0, 10, (200, 3))
    i, j, r = neighbor_pairs(pos, 1.3, mode=mode, include_self=True)
    got = set(zip(i.tolist(), j.tolist()))
    assert got == _brute_pairs(pos, 1.3, mode)


@pytest.mark.parametrize("mode", ["gather", "symmetric"])
def test_matches_brute_force_variable_radius(rng, mode):
    pos = rng.uniform(0, 10, (150, 3))
    radius = rng.uniform(0.5, 2.0, 150)
    i, j, _ = neighbor_pairs(pos, radius, mode=mode, include_self=True)
    got = set(zip(i.tolist(), j.tolist()))
    assert got == _brute_pairs(pos, radius, mode)


def test_matches_scipy_kdtree(rng):
    pos = rng.uniform(0, 20, (500, 3))
    radius = 2.1
    i, j, _ = neighbor_pairs(pos, radius, mode="gather", include_self=True)
    tree = cKDTree(pos)
    ref_counts = np.array([len(x) for x in tree.query_ball_point(pos, radius)])
    # cKDTree uses <=; we use <. Perturbed random data has no exact ties.
    counts = np.bincount(i, minlength=len(pos))
    assert np.array_equal(counts, ref_counts)


def test_distances_returned_correctly(rng):
    pos = rng.uniform(0, 5, (80, 3))
    i, j, r = neighbor_pairs(pos, 1.0, include_self=False)
    ref = np.linalg.norm(pos[i] - pos[j], axis=1)
    assert np.allclose(r, ref)
    assert np.all(r < 1.0)
    assert np.all(r > 0.0)


def test_include_self_toggle(rng):
    pos = rng.uniform(0, 5, (50, 3))
    i1, j1, _ = neighbor_pairs(pos, 1.0, include_self=True)
    i0, j0, _ = neighbor_pairs(pos, 1.0, include_self=False)
    assert np.sum(i1 == j1) == 50
    assert np.sum(i0 == j0) == 0
    assert len(i1) == len(i0) + 50


def test_symmetric_mode_is_symmetric(rng):
    pos = rng.uniform(0, 8, (120, 3))
    radius = rng.uniform(0.3, 2.5, 120)
    i, j, _ = neighbor_pairs(pos, radius, mode="symmetric", include_self=False)
    pairs = set(zip(i.tolist(), j.tolist()))
    assert all((j_, i_) in pairs for i_, j_ in pairs)


def test_neighbor_counts(rng):
    pos = rng.uniform(0, 6, (100, 3))
    counts = neighbor_counts(pos, 1.5)
    d = np.linalg.norm(pos[:, None] - pos[None, :], axis=2)
    assert np.array_equal(counts, (d < 1.5).sum(axis=1))


def test_zero_radius_rejected():
    with pytest.raises(ValueError):
        neighbor_pairs(np.zeros((3, 3)), 0.0)


def test_grid_handles_single_point():
    i, j, r = neighbor_pairs(np.array([[1.0, 2.0, 3.0]]), 1.0)
    assert list(i) == [0] and list(j) == [0] and r[0] == 0.0


def test_candidate_pairs_superset_of_true_pairs(rng):
    pos = rng.uniform(0, 10, (100, 3))
    grid = NeighborGrid.build(pos, 1.0)
    ci, cj = grid.candidate_pairs(pos)
    cand = set(zip(ci.tolist(), cj.tolist()))
    true = _brute_pairs(pos, 1.0, "gather")
    assert true <= cand


@given(st.integers(2, 60), st.floats(0.3, 3.0), st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_pair_count_property(n, radius, seed):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, 5, (n, 3))
    i, j, _ = neighbor_pairs(pos, radius, mode="gather", include_self=True)
    assert len(i) == len(_brute_pairs(pos, radius, "gather"))
