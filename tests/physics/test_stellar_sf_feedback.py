"""Stellar lifetimes, SN scheduling, star formation, feedback injection."""

import numpy as np
import pytest

from repro.fdps.particles import ParticleSet, ParticleType
from repro.physics.feedback import SNFeedback, SNYields, metallicity
from repro.physics.star_formation import StarFormationModel
from repro.physics.stellar import (
    SN_MASS_MAX,
    SN_MASS_MIN,
    exploding_between,
    is_sn_progenitor,
    schedule_sn,
    stellar_lifetime,
)
from repro.util.constants import SN_ENERGY, internal_energy_to_temperature, temperature_to_internal_energy


# --------------------------------------------------------------- lifetimes
def test_lifetime_monotone_decreasing():
    m = np.array([0.5, 1.0, 5.0, 10.0, 40.0, 100.0])
    t = stellar_lifetime(m)
    assert np.all(np.diff(t) < 0)


def test_solar_lifetime_about_10_gyr():
    t = stellar_lifetime(1.0)
    assert 8e3 < t < 2e4  # Myr


def test_massive_star_lifetime_few_myr():
    t = stellar_lifetime(40.0)
    assert 1.0 < t < 10.0
    t10 = stellar_lifetime(10.0)
    assert 10.0 < t10 < 40.0


def test_progenitor_window():
    assert not is_sn_progenitor(1.0)
    assert is_sn_progenitor(8.0)
    assert is_sn_progenitor(25.0)
    assert not is_sn_progenitor(50.0)
    assert SN_MASS_MIN == 8.0 and SN_MASS_MAX == 40.0


def test_schedule_sn_and_window_query():
    masses = np.array([1.0, 10.0, 20.0])
    tsn = schedule_sn(masses, t_form=100.0)
    assert np.isinf(tsn[0])
    assert np.all(tsn[1:] > 100.0)
    # The 20 M_sun star dies first.
    assert tsn[2] < tsn[1]
    idx = exploding_between(tsn, tsn[2] - 0.1, tsn[2] + 0.1)
    assert list(idx) == [2]


# ---------------------------------------------------------- star formation
def _dense_cold_gas(n=100, seed=0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(0, 10, (n, 3)),
        mass=np.full(n, 1.0),
        pid=np.arange(n),
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.dens[:] = 100.0
    ps.u[:] = temperature_to_internal_energy(50.0)
    ps.divv[:] = -1.0
    ps.h[:] = 1.0
    return ps


def test_eligibility_criteria():
    sf = StarFormationModel(density_threshold=10.0, temperature_threshold=300.0)
    ps = _dense_cold_gas()
    assert sf.eligible(ps).all()
    ps.dens[:10] = 0.1
    ps.u[10:20] = temperature_to_internal_energy(1e5)
    ps.divv[20:30] = +1.0
    mask = sf.eligible(ps)
    assert not mask[:30].any()
    assert mask[30:].all()


def test_stars_ineligible():
    sf = StarFormationModel()
    ps = _dense_cold_gas()
    ps.ptype[:] = int(ParticleType.STAR)
    assert not sf.eligible(ps).any()


def test_formation_probability_increases_with_density():
    sf = StarFormationModel(efficiency=0.05)
    p = sf.formation_probability(np.array([10.0, 1000.0]), dt=1.0)
    assert 0 < p[0] < p[1] < 1.0


def test_form_stars_creates_individual_stars():
    sf = StarFormationModel(efficiency=1e9)  # force conversion this step
    ps = _dense_cold_gas(50)
    rng = np.random.default_rng(1)
    out, events, next_pid = sf.form_stars(ps, time=10.0, dt=1.0, rng=rng, next_pid=1000)
    stars = out.stars()
    assert len(events) > 0
    assert len(stars) > 0
    # Star-by-star: individual masses from the IMF, not equal chunks.
    assert len(np.unique(np.round(stars.mass, 6))) > 1
    assert np.all(stars.tform == 10.0)
    assert next_pid > 1000
    # Massive ones have finite SN times.
    massive = stars.mass > 8.0
    assert np.all(np.isfinite(stars.tsn[massive]))
    light = stars.mass < 8.0
    assert np.all(np.isinf(stars.tsn[light]))


def test_form_stars_mass_budget():
    sf = StarFormationModel(efficiency=1e9)
    ps = _dense_cold_gas(50)
    m0 = ps.total_mass()
    rng = np.random.default_rng(2)
    out, events, _ = sf.form_stars(ps, time=0.0, dt=1.0, rng=rng, next_pid=0)
    # Total mass conserved to within one IMF star per event.
    assert abs(out.total_mass() - m0) < 150.0 * len(events) * 0.02 + 5.0


def test_no_formation_when_cold_gas_absent():
    sf = StarFormationModel()
    ps = _dense_cold_gas(20)
    ps.u[:] = temperature_to_internal_energy(1e6)
    rng = np.random.default_rng(3)
    out, events, next_pid = sf.form_stars(ps, 0.0, 1.0, rng, next_pid=5)
    assert events == []
    assert len(out) == 20
    assert next_pid == 5


# --------------------------------------------------------------- feedback
def test_sn_injection_conserves_energy_budget(uniform_gas_ps):
    ps = uniform_gas_ps.copy()
    e0 = ps.thermal_energy()
    fb = SNFeedback()
    n = fb.inject(ps, center=np.zeros(3))
    assert n > 0
    e1 = ps.thermal_energy()
    assert e1 - e0 == pytest.approx(SN_ENERGY, rel=1e-9)


def test_sn_heats_center_most(uniform_gas_ps):
    ps = uniform_gas_ps.copy()
    fb = SNFeedback()
    fb.inject(ps, center=np.zeros(3))
    r = np.linalg.norm(ps.pos, axis=1)
    t_new = internal_energy_to_temperature(ps.u)
    near = r < 7.5  # inside the injection radius (lattice spacing is 5 pc)
    far = r > 20.0
    assert np.median(t_new[near]) > 100.0 * np.median(t_new[far])
    # SN-heated gas reaches ~1e7 K (the paper's Fig. 1 annotation).
    assert t_new.max() > 1e6


def test_sn_metal_injection(uniform_gas_ps):
    ps = uniform_gas_ps.copy()
    fb = SNFeedback(yields=SNYields(c=0.1, o=1.0, mg=0.1, fe=0.08))
    fb.inject(ps, center=np.zeros(3), ejecta_mass=1.28)
    z = metallicity(ps)
    assert z.max() > 0
    # Total injected metal mass equals the yields.
    total_metal = float((ps.zmet * ps.mass[:, None]).sum())
    assert total_metal == pytest.approx(1.28, rel=1e-6)
    # Oxygen dominates.
    per_species = (ps.zmet * ps.mass[:, None]).sum(axis=0)
    assert per_species[1] == per_species.max()


def test_sn_into_void_uses_nearest(uniform_gas_ps):
    ps = uniform_gas_ps.copy()
    fb = SNFeedback(coupling_radius=0.5)
    n = fb.inject(ps, center=np.array([500.0, 0.0, 0.0]))
    assert n == 1


def test_sn_no_gas_is_noop():
    ps = ParticleSet.from_arrays(pos=np.zeros((3, 3)), ptype=np.full(3, int(ParticleType.STAR)))
    fb = SNFeedback()
    assert fb.inject(ps, center=np.zeros(3)) == 0
