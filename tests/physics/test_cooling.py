"""Cooling model: curve shape, integration stability, equilibria."""

import numpy as np
import pytest

from repro.physics.cooling import CoolingModel
from repro.util.constants import (
    internal_energy_to_temperature,
    temperature_to_internal_energy,
)


@pytest.fixture
def cool():
    return CoolingModel()


def test_lambda_peaks_near_1e5(cool):
    t = np.logspace(4.0, 7.5, 100)
    lam = cool.lambda_cgs(t)
    peak_t = t[np.argmax(lam)]
    assert 3e4 < peak_t < 1e6


def test_lambda_small_below_1e4(cool):
    lam_cold = cool.lambda_cgs(np.array([100.0]))[0]
    lam_warm = cool.lambda_cgs(np.array([2e4]))[0]
    assert lam_cold < 1e-3 * lam_warm


def test_dense_hot_gas_cools(cool):
    u = temperature_to_internal_energy(1e6)
    rate = cool.du_dt(np.array([u]), np.array([10.0]))[0]
    assert rate < 0.0


def test_diffuse_cold_gas_heats(cool):
    u = temperature_to_internal_energy(30.0)
    rate = cool.du_dt(np.array([u]), np.array([1e-4]))[0]
    assert rate > 0.0


def test_integration_respects_floor(cool):
    u = temperature_to_internal_energy(1e6)
    new_u = cool.integrate(np.array([u]), np.array([100.0]), dt=100.0)
    t_new = internal_energy_to_temperature(new_u[0])
    assert t_new >= cool.t_floor * 0.99


def test_integration_moves_toward_equilibrium(cool):
    # Dense gas: hot relaxes downward, ultracold heats upward.
    dens = np.array([1.0])
    u_hot = temperature_to_internal_energy(1e6)
    u_after = cool.integrate(np.array([u_hot]), dens, dt=10.0)[0]
    assert u_after < u_hot


def test_integration_never_negative(cool):
    u = temperature_to_internal_energy(np.array([1e7, 1e4, 100.0]))
    dens = np.array([100.0, 100.0, 100.0])
    out = cool.integrate(u, dens, dt=1000.0)
    assert np.all(out > 0)


def test_short_step_matches_rate(cool):
    u = temperature_to_internal_energy(1e5)
    dens = np.array([0.01])
    dt = 1e-8
    rate = cool.du_dt(np.array([u]), dens)[0]
    out = cool.integrate(np.array([u]), dens, dt=dt)[0]
    assert out - u == pytest.approx(rate * dt, rel=1e-3)


def test_cooling_time_positive_finite(cool):
    u = temperature_to_internal_energy(np.array([1e4, 1e6]))
    tc = cool.cooling_time(u, np.array([1.0, 1.0]))
    assert np.all(tc > 0)
    assert np.all(np.isfinite(tc))


def test_sn_heated_gas_cooling_time_long_compared_to_cfl():
    # 1e7 K gas at low density cools slowly: the *hydro* timestep, not the
    # cooling, is the bottleneck the surrogate removes.
    cool = CoolingModel()
    u = temperature_to_internal_energy(1e7)
    tc = cool.cooling_time(np.array([u]), np.array([0.01]))[0]
    assert tc > 1.0  # Myr, i.e. >> the 2,000 yr global step


def test_equilibrium_temperature_monotone_with_density(cool):
    t_lo = cool.equilibrium_temperature(0.001)
    t_hi = cool.equilibrium_temperature(10.0)
    assert t_lo > t_hi  # denser gas equilibrates colder
    assert 10.0 <= t_hi <= 1e4


def test_metallicity_scaling_cools_faster():
    cool_z = CoolingModel(metallicity_scaling=True)
    t = np.array([1000.0])
    lam_solar = cool_z.lambda_cgs(t, z=np.array([0.0134]))
    lam_poor = cool_z.lambda_cgs(t, z=np.array([0.00134]))
    assert lam_solar[0] > lam_poor[0]


def test_vectorized_integration_matches_scalar(cool):
    u = temperature_to_internal_energy(np.array([1e6, 1e4, 50.0]))
    dens = np.array([1.0, 0.1, 10.0])
    batch = cool.integrate(u, dens, dt=5.0)
    singles = [cool.integrate(u[i : i + 1], dens[i : i + 1], dt=5.0)[0] for i in range(3)]
    assert np.allclose(batch, singles)
