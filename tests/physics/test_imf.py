"""IMF sampling statistics and analytic moments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.imf import KroupaIMF, PiecewisePowerLawIMF, PowerLawSegment, SalpeterIMF


@pytest.fixture(scope="module")
def kroupa():
    return KroupaIMF()


def test_samples_within_bounds(kroupa):
    m = kroupa.sample(5000, np.random.default_rng(0))
    assert m.min() >= kroupa.m_min
    assert m.max() <= kroupa.m_max


def test_mean_mass_kroupa(kroupa):
    # Kroupa mean mass is ~0.4-0.6 M_sun for m_max = 150.
    mean = kroupa.mean_mass()
    assert 0.3 < mean < 0.8
    m = kroupa.sample(200_000, np.random.default_rng(1))
    assert np.mean(m) == pytest.approx(mean, rel=0.05)


def test_massive_star_fraction_is_few_percent(kroupa):
    # The paper: "massive stars more than about 10 solar masses are only a
    # few percent of all stellar populations".
    frac_num = kroupa.number_fraction_above(10.0)
    assert 1e-4 < frac_num < 0.02
    frac_mass = kroupa.mass_fraction_above(10.0)
    assert 0.05 < frac_mass < 0.35


def test_number_fraction_matches_sampling(kroupa):
    rng = np.random.default_rng(2)
    m = kroupa.sample(300_000, rng)
    emp = np.mean(m > 8.0)
    assert emp == pytest.approx(kroupa.number_fraction_above(8.0), rel=0.15)


def test_slope_recovered_from_samples(kroupa):
    rng = np.random.default_rng(3)
    m = kroupa.sample(400_000, rng)
    # Fit the high-mass slope on [1, 30]: histogram in log m.
    bins = np.logspace(0, np.log10(30), 25)
    hist, edges = np.histogram(m, bins=bins)
    centers = np.sqrt(edges[:-1] * edges[1:])
    widths = np.diff(edges)
    dndm = hist / widths
    ok = hist > 50
    slope = np.polyfit(np.log10(centers[ok]), np.log10(dndm[ok]), 1)[0]
    assert slope == pytest.approx(-2.3, abs=0.15)


def test_salpeter_slope():
    imf = SalpeterIMF()
    rng = np.random.default_rng(4)
    m = imf.sample(300_000, rng)
    bins = np.logspace(np.log10(0.2), np.log10(30), 25)
    hist, edges = np.histogram(m, bins=bins)
    centers = np.sqrt(edges[:-1] * edges[1:])
    dndm = hist / np.diff(edges)
    ok = hist > 50
    slope = np.polyfit(np.log10(centers[ok]), np.log10(dndm[ok]), 1)[0]
    assert slope == pytest.approx(-2.35, abs=0.15)


def test_sample_total_mass_hits_budget(kroupa):
    rng = np.random.default_rng(5)
    total = 500.0
    m = kroupa.sample_total_mass(total, rng)
    assert abs(m.sum() - total) < kroupa.m_max  # off by at most one star
    assert np.all(m >= kroupa.m_min)


def test_sample_total_mass_small_budget(kroupa):
    rng = np.random.default_rng(6)
    # Budget below the minimum stellar mass: may return zero stars.
    m = kroupa.sample_total_mass(0.01, rng)
    assert m.sum() <= 0.02 + kroupa.m_min


def test_sample_total_mass_star_by_star(kroupa):
    # The paper's star particle mass is 0.75 M_sun: a single gas particle
    # typically makes one star (sometimes zero or two).
    rng = np.random.default_rng(7)
    counts = [len(kroupa.sample_total_mass(0.75, rng)) for _ in range(200)]
    assert 0 <= min(counts)
    assert max(counts) <= 8
    assert np.mean(counts) < 4


def test_zero_budget(kroupa):
    assert len(kroupa.sample_total_mass(0.0, np.random.default_rng(0))) == 0


def test_contiguity_validation():
    with pytest.raises(ValueError):
        PiecewisePowerLawIMF(
            [PowerLawSegment(0.1, 0.5, 1.3), PowerLawSegment(0.6, 10, 2.3)]
        )


@given(st.floats(0.5, 20.0), st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_number_fraction_monotone_property(m_cut, seed):
    imf = KroupaIMF()
    f1 = imf.number_fraction_above(m_cut)
    f2 = imf.number_fraction_above(m_cut * 2)
    assert 0.0 <= f2 <= f1 <= 1.0
