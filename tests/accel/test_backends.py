"""Backend registry + cross-backend kernel parity.

Every registered backend must reproduce the numpy reference physics: the
``seed`` baseline bit-for-bit, ``numba``/``pikg`` to 1e-10 relative
tolerance (their scalar loops reassociate sums).  The numba backend runs
here in pure-Python mode when numba isn't installed — the jitted kernels
are the same source, exercised by the CI leg that installs numba with
``REPRO_BACKEND=numba``.
"""

import numpy as np
import pytest

from repro.accel.backends import (
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
)
from repro.accel.backends.base import KernelBackend
from repro.accel.backends.numba_backend import HAVE_NUMBA, NumbaBackend
from repro.core.integrator import IntegratorConfig, SurrogateLeapfrog
from repro.core.pool import PoolManager
from repro.fdps.distributed import DistributedGravity
from repro.fdps.particles import ParticleSet
from repro.gravity.kernels import accel_between, accel_direct
from repro.gravity.treegrav import tree_accel
from repro.sn.turbulence import make_turbulent_box
from repro.sph.density import compute_density
from repro.sph.forces import compute_hydro_forces
from repro.surrogate.model import SedovBlastOracle, SNSurrogate
from tests.conftest import plummer_positions

RTOL = 1e-10


def _alt_backends():
    """Non-reference backends to check against numpy: (id, instance)."""
    out = [("seed", get_backend("seed")), ("pikg", get_backend("pikg"))]
    out.append(("numba-py", NumbaBackend(force_python=True)))
    if HAVE_NUMBA:
        out.append(("numba-jit", get_backend("numba")))
    return out


ALT_BACKENDS = _alt_backends()
ALT_IDS = [name for name, _ in ALT_BACKENDS]
ALT_ONLY = [bk for _, bk in ALT_BACKENDS]


@pytest.fixture
def cluster():
    rng = np.random.default_rng(7)
    n = 150
    pos = rng.random((n, 3)) * 4.0
    vel = rng.normal(size=(n, 3)) * 0.2
    mass = rng.uniform(0.3, 0.7, n)
    u = rng.uniform(0.5, 2.0, n)
    h0 = np.full(n, 0.9)
    return pos, vel, mass, u, h0


# ------------------------------------------------------------------- registry
def test_registry_contents():
    assert {"numpy", "seed", "numba", "pikg"} <= set(registered_backends())
    avail = available_backends()
    assert "numpy" in avail and "seed" in avail and "pikg" in avail
    assert ("numba" in avail) == HAVE_NUMBA


def test_get_backend_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert get_backend().name == "numpy"
    monkeypatch.setenv("REPRO_BACKEND", "seed")
    assert get_backend().name == "seed"
    # Explicit name beats the environment; instances pass through.
    assert get_backend("numpy").name == "numpy"
    bk = get_backend("seed")
    assert get_backend(bk) is bk
    with pytest.raises(ValueError):
        get_backend("no-such-backend")


def test_numba_gate():
    bk = get_backend("numba")
    if HAVE_NUMBA:
        assert bk.name == "numba"
    else:
        # Import-gated: a bare environment falls back to the default.
        assert bk.name == "numpy"


def test_register_backend_roundtrip():
    class Dummy(KernelBackend):
        name = "dummy-test"

    register_backend("dummy-test", Dummy)
    try:
        assert get_backend("dummy-test").name == "dummy-test"
        with pytest.raises(ValueError):
            register_backend("dummy-test", Dummy)
    finally:
        from repro.accel.backends import _FACTORIES, _INSTANCES

        _FACTORIES.pop("dummy-test")
        _INSTANCES.pop("dummy-test", None)


def test_backend_selection_reaches_engine():
    ps = make_turbulent_box(n_per_side=5, side=10.0, mean_density=0.05,
                            temperature=100.0, mach=1.0, seed=3)
    cfg = IntegratorConfig(backend="seed", enable_star_formation=False)
    pool = PoolManager(
        surrogate=SNSurrogate(oracle=SedovBlastOracle(t_after=0.01), n_grid=4, side=10.0),
        n_pool=2, latency_steps=2,
    )
    sim = SurrogateLeapfrog(ps, pool, cfg)
    assert sim.engine.backend.name == "seed"


# ------------------------------------------------------------ gravity parity
def test_pikg_coincident_unsoftened_pair_is_finite():
    """The DSL kernel has no coincident-pair mask; the backend must fall
    back to the reference whenever zero softening could make r2 = 0."""
    tp = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    sp = np.array([[0.0, 0.0, 0.0], [3.0, 0.0, 0.0]])
    zeros = np.zeros(2)
    ref = accel_between(tp, zeros, sp, np.ones(2), zeros, backend="numpy")
    out = accel_between(tp, zeros, sp, np.ones(2), zeros, backend="pikg")
    assert np.isfinite(out).all()
    np.testing.assert_allclose(out, ref, rtol=RTOL)


@pytest.mark.parametrize("bk", ALT_ONLY, ids=ALT_IDS)
def test_gravity_direct_parity(bk, cluster):
    pos, _, mass, _, _ = cluster
    eps = np.full(len(pos), 0.05)
    ref = accel_direct(pos, mass, eps, backend="numpy")
    alt = accel_direct(pos, mass, eps, backend=bk)
    np.testing.assert_allclose(alt, ref, rtol=RTOL, atol=1e-12 * np.abs(ref).max())


@pytest.mark.parametrize("bk", ALT_ONLY, ids=ALT_IDS)
def test_gravity_mixed_parity(bk, cluster):
    pos, _, mass, _, _ = cluster
    eps = np.full(len(pos), 0.05)
    targets = pos[:40]
    ref = accel_between(targets, eps[:40], pos, mass, eps, exclude_self=True,
                        backend="numpy")
    mixed = accel_between(targets, eps[:40], pos, mass, eps, exclude_self=True,
                          backend=bk)
    # mixed=False here checks the tile; the float32 variant gets a loose
    # bound of its own (different backends round differently inside f32).
    np.testing.assert_allclose(mixed, ref, rtol=RTOL, atol=1e-12 * np.abs(ref).max())
    from repro.gravity.kernels import accel_between_mixed

    ref32 = accel_between_mixed(targets, eps[:40], pos, mass, eps,
                                exclude_self=True, backend="numpy")
    alt32 = accel_between_mixed(targets, eps[:40], pos, mass, eps,
                                exclude_self=True, backend=bk)
    scale = np.abs(ref32).max()
    np.testing.assert_allclose(alt32, ref32, rtol=5e-5, atol=5e-5 * scale)


@pytest.mark.parametrize("bk", ALT_ONLY, ids=ALT_IDS)
def test_tree_walk_parity(bk):
    rng = np.random.default_rng(11)
    n = 600
    pos = plummer_positions(n, a=20.0, rng=rng)
    mass = rng.uniform(0.5, 2.0, n)
    eps = np.full(n, 0.4)
    ref = tree_accel(pos, mass, eps, theta=0.4, backend="numpy").acc
    alt = tree_accel(pos, mass, eps, theta=0.4, backend=bk).acc
    np.testing.assert_allclose(alt, ref, rtol=RTOL, atol=1e-12 * np.abs(ref).max())


# ------------------------------------------------------------ density parity
@pytest.mark.parametrize("bk", ALT_ONLY, ids=ALT_IDS)
def test_density_parity(bk, cluster):
    pos, vel, mass, u, h0 = cluster
    ref = compute_density(pos, vel, mass, u, h0, n_ngb=24, backend="numpy")
    alt = compute_density(pos, vel, mass, u, h0, n_ngb=24, backend=bk)
    assert alt.iterations == ref.iterations
    for field in ("h", "dens", "omega", "divv", "curlv", "pres", "csnd"):
        a, b = getattr(alt, field), getattr(ref, field)
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12 * np.abs(b).max())
    np.testing.assert_array_equal(alt.n_neighbors, ref.n_neighbors)


# -------------------------------------------------------------- hydro parity
@pytest.mark.parametrize("bk", ALT_ONLY, ids=ALT_IDS)
def test_hydro_force_parity(bk, cluster):
    pos, vel, mass, u, h0 = cluster
    ref_d = compute_density(pos, vel, mass, u, h0, n_ngb=24, backend="numpy")
    kwargs = dict(omega=ref_d.omega, divv=ref_d.divv, curlv=ref_d.curlv)
    ref = compute_hydro_forces(pos, vel, mass, ref_d.h, ref_d.dens, ref_d.pres,
                               ref_d.csnd, grid=ref_d.grid, backend="numpy", **kwargs)
    alt = compute_hydro_forces(pos, vel, mass, ref_d.h, ref_d.dens, ref_d.pres,
                               ref_d.csnd, grid=ref_d.grid, backend=bk, **kwargs)
    assert alt.n_pairs == ref.n_pairs
    scale = np.abs(ref.acc).max()
    np.testing.assert_allclose(alt.acc, ref.acc, rtol=RTOL, atol=1e-11 * scale)
    np.testing.assert_allclose(alt.du_dt, ref.du_dt, rtol=RTOL,
                               atol=1e-11 * np.abs(ref.du_dt).max())
    np.testing.assert_allclose(alt.v_signal, ref.v_signal, rtol=RTOL)


def test_seed_backend_bit_consistency(cluster):
    """Satellite guarantee: bincount scatter == np.add.at scatter, bitwise."""
    pos, vel, mass, u, h0 = cluster
    outs = {}
    for bk in ("numpy", "seed"):
        d = compute_density(pos, vel, mass, u, h0, n_ngb=24, backend=bk)
        f = compute_hydro_forces(pos, vel, mass, d.h, d.dens, d.pres, d.csnd,
                                 omega=d.omega, divv=d.divv, curlv=d.curlv,
                                 grid=d.grid, backend=bk)
        outs[bk] = (d, f)
    d_n, f_n = outs["numpy"]
    d_s, f_s = outs["seed"]
    for field in ("h", "dens", "omega", "divv", "curlv"):
        np.testing.assert_array_equal(getattr(d_n, field), getattr(d_s, field))
    np.testing.assert_array_equal(f_n.acc, f_s.acc)
    np.testing.assert_array_equal(f_n.du_dt, f_s.du_dt)
    np.testing.assert_array_equal(f_n.v_signal, f_s.v_signal)


# ---------------------------------------------------- integrator-level parity
@pytest.mark.parametrize("bk", ALT_ONLY, ids=ALT_IDS)
def test_whole_step_parity_with_fast_path(bk):
    """Two full surrogate-leapfrog steps, including the step-7 cached-pair
    fast path, agree across backends (f64 kernels, no mixed precision)."""

    def run(backend):
        ps = make_turbulent_box(n_per_side=7, side=12.0, mean_density=0.05,
                                temperature=300.0, mach=1.5, seed=5)
        cfg = IntegratorConfig(
            backend=backend, mixed_precision=False, enable_star_formation=False,
            direct_gravity_below=100, leaf_size=8, n_g=64,
        )
        pool = PoolManager(
            surrogate=SNSurrogate(oracle=SedovBlastOracle(t_after=0.01),
                                  n_grid=4, side=12.0),
            n_pool=2, latency_steps=2,
        )
        sim = SurrogateLeapfrog(ps, pool, cfg)
        sim.run(2)
        assert sim.engine.fast_path_available
        return sim.ps

    ref = run("numpy")
    alt = run(bk)
    np.testing.assert_allclose(alt.pos, ref.pos, rtol=1e-9,
                               atol=1e-9 * np.abs(ref.pos).max())
    np.testing.assert_allclose(alt.vel, ref.vel, rtol=1e-8,
                               atol=1e-9 * np.abs(ref.vel).max())
    np.testing.assert_allclose(alt.u, ref.u, rtol=1e-8)
    np.testing.assert_allclose(alt.dens, ref.dens, rtol=1e-8)


# ------------------------------------------------------ distributed parity
@pytest.mark.parametrize("bk", ALT_ONLY, ids=ALT_IDS)
def test_distributed_local_tree_parity(bk):
    """The multi-rank path (cached local trees + LET imports as direct
    sources) hits identical kernels on every backend."""
    rng = np.random.default_rng(31)
    n = 400
    pos = plummer_positions(n, a=25.0, rng=rng)
    ps = ParticleSet.from_arrays(
        pos=pos,
        mass=rng.uniform(0.5, 2.0, n),
        eps=np.full(n, 0.5),
        pid=np.arange(n),
    )
    ref = DistributedGravity(n_ranks=4, theta=0.4, backend="numpy").global_accel(ps.copy())
    alt = DistributedGravity(n_ranks=4, theta=0.4, backend=bk).global_accel(ps.copy())
    np.testing.assert_allclose(alt, ref, rtol=RTOL, atol=1e-12 * np.abs(ref).max())
