"""SpatialIndex: half-pair search parity, cache reuse, explicit invalidation."""

import numpy as np
import pytest

from repro.accel import SpatialIndex
from repro.sph.neighbors import NeighborGrid, neighbor_pairs


def _brute_half_pairs(pos, radius):
    """Unordered symmetric pairs from an O(N^2) scan."""
    r_arr = np.broadcast_to(np.asarray(radius, dtype=float), (len(pos),))
    d = np.linalg.norm(pos[:, None, :] - pos[None, :, :], axis=2)
    keep = d < np.maximum(r_arr[:, None], r_arr[None, :])
    ii, jj = np.nonzero(keep)
    return {(min(a, b), max(a, b)) for a, b in zip(ii.tolist(), jj.tolist()) if a != b}


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_half_pairs_match_brute_force(seed):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, 10, (250, 3))
    radius = rng.uniform(0.5, 2.0, 250)
    i, j, r = neighbor_pairs(pos, radius, mode="symmetric", half=True)
    got = {(min(a, b), max(a, b)) for a, b in zip(i.tolist(), j.tolist())}
    assert len(got) == len(i)  # every unordered pair emitted exactly once
    assert got == _brute_half_pairs(pos, radius)
    assert np.allclose(r, np.linalg.norm(pos[i] - pos[j], axis=1))


def test_half_pairs_are_half_of_symmetric(rng):
    pos = rng.uniform(0, 6, (180, 3))
    radius = rng.uniform(0.4, 1.8, 180)
    full = neighbor_pairs(pos, radius, mode="symmetric", include_self=False)
    half = neighbor_pairs(pos, radius, mode="symmetric", half=True)
    assert 2 * len(half[0]) == len(full[0])


def test_half_pairs_require_symmetric_mode(rng):
    pos = rng.uniform(0, 5, (30, 3))
    with pytest.raises(ValueError):
        neighbor_pairs(pos, 1.0, mode="gather", half=True)


def test_points_in_box_matches_scan(rng):
    pos = rng.uniform(-5, 5, (400, 3))
    grid = NeighborGrid.build(pos, 0.8)
    lo, hi = np.array([-1.5, -2.0, 0.0]), np.array([2.5, 1.0, 4.0])
    got = np.sort(grid.points_in_box(lo, hi))
    ref = np.flatnonzero(np.all((pos >= lo) & (pos <= hi), axis=1))
    assert np.array_equal(got, ref)


# --------------------------------------------------------------- index cache
def test_grid_cached_and_reused(rng):
    idx = SpatialIndex()
    pos = rng.uniform(0, 10, (300, 3))
    g1 = idx.grid_for(pos, 1.0)
    g2 = idx.grid_for(pos, 0.7)     # smaller radius: still covered
    assert g2 is g1
    assert idx.stats.grid_builds == 1 and idx.stats.grid_reuses == 1


def test_grid_rebuilt_when_radius_outgrows_cell(rng):
    idx = SpatialIndex()
    pos = rng.uniform(0, 10, (300, 3))
    g1 = idx.grid_for(pos, 1.0)
    g2 = idx.grid_for(pos, 1.5)     # cell no longer covers the search
    assert g2 is not g1
    assert idx.stats.grid_builds == 2


def test_grid_invalidated_on_position_change(rng):
    idx = SpatialIndex()
    pos = rng.uniform(0, 10, (300, 3))
    g1 = idx.grid_for(pos, 1.0)
    idx.invalidate_positions()
    assert not idx.has_grid
    g2 = idx.grid_for(pos, 1.0)
    assert g2 is not g1


def test_tree_cached_and_invalidated(rng):
    idx = SpatialIndex()
    pos = rng.uniform(0, 10, (500, 3))
    mass = np.ones(500)
    t1 = idx.tree_for(pos, mass)
    t2 = idx.tree_for(pos, mass)
    assert t2 is t1
    assert idx.stats.tree_builds == 1 and idx.stats.tree_reuses == 1
    idx.invalidate_positions()
    t3 = idx.tree_for(pos, mass)
    assert t3 is not t1


def test_tree_rebuilt_on_membership_change(rng):
    idx = SpatialIndex()
    pos = rng.uniform(0, 10, (500, 3))
    t1 = idx.tree_for(pos, np.ones(500))
    # A different particle count never reuses, even without invalidation.
    t2 = idx.tree_for(pos[:250], np.ones(250))
    assert t2 is not t1
    assert idx.stats.tree_builds == 2


def test_tree_rebuilt_on_leaf_size_change(rng):
    idx = SpatialIndex()
    pos = rng.uniform(0, 10, (200, 3))
    t1 = idx.tree_for(pos, np.ones(200), leaf_size=16)
    t2 = idx.tree_for(pos, np.ones(200), leaf_size=8)
    assert t2 is not t1


def test_query_box_through_scope(rng):
    idx = SpatialIndex()
    all_pos = rng.uniform(0, 10, (400, 3))
    scope = np.flatnonzero(all_pos[:, 0] > 3.0)   # the "gas" subset
    idx.grid_for(all_pos[scope], 1.0, scope=scope)
    lo, hi = np.array([4.0, 2.0, 2.0]), np.array([8.0, 8.0, 8.0])
    got = np.sort(idx.query_box(lo, hi))
    ref = scope[np.all((all_pos[scope] >= lo) & (all_pos[scope] <= hi), axis=1)]
    assert np.array_equal(got, np.sort(ref))


def test_query_box_none_without_grid():
    idx = SpatialIndex()
    assert idx.query_box(np.zeros(3), np.ones(3)) is None


def test_stratified_sample_spans_space(rng):
    idx = SpatialIndex()
    pos = rng.uniform(0, 10, (2000, 3))
    idx.tree_for(pos, np.ones(2000))
    pick = idx.stratified_sample(200, 2000)
    assert pick is not None and len(pick) == 200
    assert len(np.unique(pick)) == 200
    # Spatial stratification: the sample's bounding box nearly fills the set's.
    assert np.all(pos[pick].min(axis=0) < 1.0) and np.all(pos[pick].max(axis=0) > 9.0)


def test_stratified_sample_none_when_stale(rng):
    idx = SpatialIndex()
    pos = rng.uniform(0, 10, (1000, 3))
    idx.tree_for(pos, np.ones(1000))
    assert idx.stratified_sample(100, 999) is None   # count mismatch
    idx.invalidate_all()
    assert idx.stratified_sample(100, 1000) is None


# ------------------------------------------------------- multi-rank sampler
def test_concat_sampler_proportional_and_stratified(rng):
    from repro.accel import ConcatStratifiedSampler

    counts = [900, 300, 600]
    blocks, orders = [], []
    for c in counts:
        pos = rng.uniform(0, 10, (c, 3))
        idx = SpatialIndex()
        idx.tree_for(pos, np.ones(c))
        blocks.append(pos)
        orders.append(idx.cached_order(c))
    n_total = sum(counts)
    sampler = ConcatStratifiedSampler(orders=orders, counts=counts)
    pick = sampler.stratified_sample(180, n_total)
    assert pick is not None and len(pick) == 180
    assert len(np.unique(pick)) == 180
    offsets = np.concatenate([[0], np.cumsum(counts)])
    for r, c in enumerate(counts):
        in_block = ((pick >= offsets[r]) & (pick < offsets[r + 1])).sum()
        # Proportional to the rank's share, up to linspace edge effects.
        assert abs(in_block - 180 * c / n_total) <= 2, r


def test_concat_sampler_falls_back_when_an_order_is_missing(rng):
    from repro.accel import ConcatStratifiedSampler

    idx = SpatialIndex()
    pos = rng.uniform(0, 10, (500, 3))
    idx.tree_for(pos, np.ones(500))
    order = idx.cached_order(500)
    sampler = ConcatStratifiedSampler(orders=[order, None], counts=[500, 200])
    assert sampler.stratified_sample(50, 700) is None     # rank 1 has no order
    sampler = ConcatStratifiedSampler(orders=[order], counts=[500])
    assert sampler.stratified_sample(50, 600) is None     # count mismatch
    assert sampler.stratified_sample(600, 500) is None    # sample >= total
    assert sampler.stratified_sample(50, 500) is not None
    # Empty ranks are skipped without needing an order.
    sampler = ConcatStratifiedSampler(orders=[order, None], counts=[500, 0])
    assert sampler.stratified_sample(50, 500) is not None


def test_cached_order_reflects_validity(rng):
    idx = SpatialIndex()
    pos = rng.uniform(0, 10, (400, 3))
    assert idx.cached_order(400) is None
    idx.tree_for(pos, np.ones(400))
    order = idx.cached_order(400)
    assert order is not None and np.array_equal(np.sort(order), np.arange(400))
    assert idx.cached_order(399) is None
    idx.invalidate_positions()
    assert idx.cached_order(400) is None
