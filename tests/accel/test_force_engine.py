"""ForceEngine: half-pair force parity, fast-path exactness, build budgets."""

import numpy as np

from repro.accel import ForceEngine
from repro.core.integrator import IntegratorConfig, SurrogateLeapfrog
from repro.core.pool import PoolManager
from repro.fdps.particles import ParticleType
from repro.sph.density import compute_density
from repro.sph.forces import compute_hydro_forces
from repro.sph.kernels import DEFAULT_KERNEL
from repro.sn.turbulence import make_turbulent_box
from repro.surrogate.model import SedovBlastOracle, SNSurrogate
from repro.surrogate.voxelize import extract_region


def _ordered_pair_reference(pos, vel, mass, h, dens, pres, csnd, omega, divv, curlv,
                            alpha_visc=1.0, beta_visc=2.0):
    """The seed's ordered-pair hydro force loop, on a brute-force pair list."""
    kernel = DEFAULT_KERNEL
    n = len(pos)
    dmat = np.linalg.norm(pos[:, None, :] - pos[None, :, :], axis=2)
    keep = dmat < np.maximum(h[:, None], h[None, :])
    np.fill_diagonal(keep, False)
    i, j = np.nonzero(keep)
    r = dmat[i, j]
    dens_safe = np.maximum(dens, 1e-300)
    dvec = pos[i] - pos[j]
    vvec = vel[i] - vel[j]
    vdotr = np.einsum("ij,ij->i", vvec, dvec)
    gf_i = kernel.grad_factor(r, h[i])
    gf_j = kernel.grad_factor(r, h[j])
    gf_bar = 0.5 * (gf_i + gf_j)
    h_bar = 0.5 * (h[i] + h[j])
    rho_bar = 0.5 * (dens_safe[i] + dens_safe[j])
    c_bar = 0.5 * (csnd[i] + csnd[j])
    mu = h_bar * vdotr / (r**2 + 0.01 * h_bar**2)
    mu = np.where(vdotr < 0.0, mu, 0.0)
    f_i = np.abs(divv) / (np.abs(divv) + curlv + 1e-4 * csnd / np.maximum(h, 1e-300))
    balsara = 0.5 * (f_i[i] + f_i[j])
    visc = balsara * (-alpha_visc * c_bar * mu + beta_visc * mu**2) / rho_bar
    p_term_i = pres[i] / (omega[i] * dens_safe[i] ** 2)
    p_term_j = pres[j] / (omega[j] * dens_safe[j] ** 2)
    scal = mass[j] * (p_term_i * gf_i + p_term_j * gf_j + visc * gf_bar)
    acc = np.zeros((n, 3))
    for ax in range(3):
        np.add.at(acc[:, ax], i, -scal * dvec[:, ax])
    du_dt = np.bincount(
        i, weights=p_term_i * mass[j] * vdotr * gf_i + 0.5 * visc * mass[j] * vdotr * gf_bar,
        minlength=n,
    )
    w_rel = np.where(r > 0, vdotr / np.maximum(r, 1e-300), 0.0)
    vsig = csnd.copy()
    np.maximum.at(vsig, i, csnd[i] + csnd[j] - 3.0 * np.minimum(w_rel, 0.0))
    return acc, du_dt, vsig


def test_half_pair_forces_match_ordered_reference(rng):
    n = 200
    pos = rng.uniform(0, 1, (n, 3))
    vel = rng.normal(0, 2, (n, 3))
    mass = rng.uniform(0.5, 1.5, n)
    u = rng.uniform(0.5, 2.0, n)
    d = compute_density(pos, vel, mass, u, np.full(n, 0.3), n_ngb=40)
    f = compute_hydro_forces(
        pos, vel, mass, d.h, d.dens, d.pres, d.csnd,
        omega=d.omega, divv=d.divv, curlv=d.curlv,
    )
    acc_ref, du_ref, vsig_ref = _ordered_pair_reference(
        pos, vel, mass, d.h, d.dens, d.pres, d.csnd, d.omega, d.divv, d.curlv
    )
    scale = np.abs(acc_ref).max()
    assert np.allclose(f.acc, acc_ref, atol=1e-10 * scale, rtol=1e-10)
    assert np.allclose(f.du_dt, du_ref, atol=1e-10 * max(np.abs(du_ref).max(), 1.0))
    assert np.allclose(f.v_signal, vsig_ref)


def _gas_box(seed=0, n_per_side=8):
    return make_turbulent_box(n_per_side=n_per_side, side=60.0, mean_density=0.05,
                              temperature=100.0, mach=2.0, seed=seed)


def test_fast_path_matches_cold_recompute(rng):
    """step(7) contract: after u and v changed at fixed positions, the cached
    pair lists give the same answer as a from-scratch hydro pass."""
    ps = _gas_box(seed=4)
    cfg = IntegratorConfig(self_gravity=False)
    engine = ForceEngine(cfg)
    engine.hydro(ps, "1st")
    # Cooling-like u change and kick-like velocity change, positions fixed.
    ps.u[:] = np.maximum(ps.u * rng.uniform(0.5, 1.5, len(ps)), 1e-12)
    ps.vel += rng.normal(0, 0.1, ps.vel.shape)
    fast = engine.refresh_hydro(ps, "2nd")
    assert fast is not None
    acc_f, du_f, vsig_f = (a.copy() for a in fast)
    pres_f, csnd_f = ps.pres.copy(), ps.csnd.copy()
    divv_f, curlv_f = ps.divv.copy(), ps.curlv.copy()

    cold_engine = ForceEngine(cfg)
    acc_c, du_c, vsig_c = cold_engine.hydro(ps, "1st")
    scale = max(np.abs(acc_c).max(), 1e-300)
    assert np.allclose(acc_f, acc_c, atol=1e-10 * scale, rtol=1e-10)
    assert np.allclose(du_f, du_c, atol=1e-10 * max(np.abs(du_c).max(), 1.0))
    assert np.allclose(vsig_f, vsig_c, rtol=1e-12)
    assert np.allclose(pres_f, ps.pres) and np.allclose(csnd_f, ps.csnd)
    assert np.allclose(divv_f, ps.divv) and np.allclose(curlv_f, ps.curlv)


def test_fast_path_unavailable_after_position_change():
    ps = _gas_box(seed=5)
    engine = ForceEngine(IntegratorConfig(self_gravity=False))
    engine.hydro(ps, "1st")
    assert engine.fast_path_available
    ps.pos += 0.01
    engine.notify_positions_changed()
    assert not engine.fast_path_available
    assert engine.refresh_hydro(ps, "2nd") is None


def test_fast_path_unavailable_after_membership_change():
    ps = _gas_box(seed=6)
    engine = ForceEngine(IntegratorConfig(self_gravity=False))
    engine.hydro(ps, "1st")
    engine.notify_membership_changed()
    assert engine.refresh_hydro(ps, "2nd") is None


def test_extract_region_via_index_matches_scan():
    ps = _gas_box(seed=7)
    engine = ForceEngine(IntegratorConfig(self_gravity=False))
    engine.hydro(ps, "1st")
    center = np.array([5.0, -3.0, 2.0])
    r_idx, idx = extract_region(ps, center, 30.0, index=engine.index)
    r_ref, idx_ref = extract_region(ps, center, 30.0)
    assert np.array_equal(idx, idx_ref)
    assert np.array_equal(r_idx.pid, r_ref.pid)


def _steady_integrator(n_per_side=8, **cfg_kw):
    ps = _gas_box(seed=8, n_per_side=n_per_side)
    cfg = IntegratorConfig(
        enable_cooling=True, enable_star_formation=False, **cfg_kw
    )
    surr = SNSurrogate(oracle=SedovBlastOracle(t_after=0.01), n_grid=8, side=60.0)
    pool = PoolManager(surrogate=surr, n_pool=5, latency_steps=5)
    return SurrogateLeapfrog(ps, pool, cfg)


def test_steady_step_build_budget():
    """Acceptance instrumentation: in steady state (no SNe, no star
    formation) each step performs exactly one grid build and at most one
    tree build, and the h solve of step (7) is skipped entirely."""
    sim = _steady_integrator(self_gravity=True, direct_gravity_below=0)
    sim.run(2)  # warm up (step 0 pays the extra startup force pass)
    stats = sim.engine.index.stats
    g0, t0 = stats.grid_builds, stats.tree_builds
    sim.run(4)
    assert stats.grid_builds - g0 == 4      # one per step: the density solve
    assert stats.tree_builds - t0 <= 4      # at most one per step
    assert sim.engine.fast_path_available


def test_surrogate_step_physics_unchanged_by_engine():
    """The engine refactor must not change the integrated physics: energies
    stay finite and gas stays the same set."""
    sim = _steady_integrator(self_gravity=False)
    n_gas = int(sim.ps.where_type(ParticleType.GAS).sum())
    sim.run(5)
    d = sim.diagnostics()
    assert d["n_gas"] == n_gas
    assert np.isfinite(d["kinetic_energy"]) and np.isfinite(d["thermal_energy"])


def test_work_weights_surcharge_gas():
    sim = _steady_integrator(self_gravity=False)
    w = sim.engine.work_weights(sim.ps)
    gas = sim.ps.where_type(ParticleType.GAS)
    assert np.all(w[gas] > 1.0)
    assert np.all(w[~gas] == 1.0) or not (~gas).any()
    # The surcharge is the Table-3-anchored hydro/gravity work ratio.
    from repro.perf.costmodel import hydro_gravity_work_ratio

    assert np.allclose(w[gas], 1.0 + hydro_gravity_work_ratio())
