"""Kinematic profiles: rotation curve, dispersions, Toomre Q."""

import numpy as np
import pytest

from repro.analysis.profiles import (
    circular_velocity_from_mass,
    rotation_curve,
    toomre_q_stars,
    velocity_dispersion_profile,
)
from repro.fdps.particles import ParticleType
from repro.ic.galaxy import MW_SPEC, make_mw_model
from repro.util.constants import KM_PER_S


@pytest.fixture(scope="module")
def mw():
    return make_mw_model(n_total=8000, seed=13)


def test_rotation_curve_of_gas_matches_circular(mw):
    r, vphi = rotation_curve(mw, n_bins=10, r_max=1.5e4, species=ParticleType.GAS)
    _, _, _, rot = MW_SPEC.components()
    mid = (r > 4e3) & (r < 1.2e4)
    expect = rot.circular_velocity(r[mid])
    ok = vphi[mid] > 0
    assert np.all(np.abs(vphi[mid][ok] / expect[ok] - 1.0) < 0.35)


def test_rotation_curve_flat_at_solar_radius(mw):
    r, vphi = rotation_curve(mw, n_bins=10, r_max=1.5e4, species=ParticleType.GAS)
    sel = (r > 6e3) & (r < 1.2e4)
    v_kms = vphi[sel] * KM_PER_S
    assert np.all((120.0 < v_kms) & (v_kms < 300.0))


def test_circular_velocity_from_mass_matches_analytic(mw):
    radii, vc = circular_velocity_from_mass(mw, n_bins=10, r_max=2e4)
    _, _, _, rot = MW_SPEC.components()
    expect = rot.circular_velocity(radii)
    assert np.all(np.abs(vc / expect - 1.0) < 0.25)


def test_dispersion_declines_outward(mw):
    r, sig = velocity_dispersion_profile(mw, n_bins=8, r_max=1.2e4)
    inner = sig[1]
    outer = sig[-1]
    assert inner > outer > 0


def test_toomre_q_positive_and_finite(mw):
    r, q = toomre_q_stars(mw, n_bins=8, r_max=1.0e4)
    good = np.isfinite(q) & (q > 0)
    assert good.sum() >= 6
    # The sigma_frac = 0.15 disk is deliberately cool (Q somewhat below 1:
    # gas-rich galaxy ICs *want* local instability so star formation
    # proceeds); Q must still be O(0.1-3), not pathological.
    assert 0.1 < np.median(q[good]) < 3.0
