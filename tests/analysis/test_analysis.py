"""Analysis helpers: maps, PDFs, SFR, conservation audits."""

import numpy as np
import pytest

from repro.analysis.conservation import ConservationAudit
from repro.analysis.maps import column_density_map, disk_thickness, surface_density_profile
from repro.analysis.pdfs import density_pdf, pdf_distance, phase_diagram, temperature_pdf
from repro.analysis.sfr import mass_loading_factor, outflow_rate, star_formation_history
from repro.fdps.particles import ParticleSet, ParticleType
from repro.ic.galaxy import make_mw_mini
from repro.util.constants import temperature_to_internal_energy


@pytest.fixture(scope="module")
def galaxy():
    return make_mw_mini(n_total=4000, seed=9)


# ------------------------------------------------------------------- maps
def test_column_density_conserves_mass(galaxy):
    extent = 1.0e5
    grid = column_density_map(galaxy, "xy", extent=extent, n_pix=32, species=None)
    pix = 2 * extent / 32
    inside = np.all(np.abs(galaxy.pos[:, :2]) < extent, axis=1)
    assert grid.sum() * pix**2 == pytest.approx(galaxy.mass[inside].sum(), rel=1e-9)


def test_face_on_map_centrally_peaked(galaxy):
    grid = column_density_map(galaxy, "xy", extent=5000.0, n_pix=16)
    center = grid[6:10, 6:10].mean()
    corner = np.concatenate([grid[0, :2], grid[-1, -2:]]).mean()
    assert center > 3.0 * corner


def test_edge_on_map_thinner_than_face_on(galaxy):
    edge = column_density_map(galaxy, "xz", extent=5000.0, n_pix=32)
    # Mass-weighted second moments of the edge-on map: the vertical (z)
    # spread must be well below the in-plane (x) spread — Fig. 5's thin
    # edge-on stripe.
    coords = np.arange(32) - 15.5
    wx = edge.sum(axis=1)
    wz = edge.sum(axis=0)
    rms_x = np.sqrt(np.sum(wx * coords**2) / wx.sum())
    rms_z = np.sqrt(np.sum(wz * coords**2) / wz.sum())
    assert rms_z < 0.6 * rms_x


def test_bad_plane_rejected(galaxy):
    with pytest.raises(ValueError):
        column_density_map(galaxy, "qq")


def test_surface_density_declines(galaxy):
    r, sigma = surface_density_profile(galaxy, n_bins=8, r_max=8000.0)
    assert sigma[0] > sigma[-1]


def test_disk_thickness(galaxy):
    hz = disk_thickness(galaxy, ParticleType.GAS)
    assert 0 < hz < 2000.0


# -------------------------------------------------------------------- PDFs
def _gas_box(temps, denss):
    n = len(temps)
    ps = ParticleSet.empty(n)
    ps.ptype[:] = int(ParticleType.GAS)
    ps.mass[:] = 1.0
    ps.u[:] = temperature_to_internal_energy(np.asarray(temps))
    ps.dens[:] = denss
    return ps


def test_temperature_pdf_peaks_at_input():
    ps = _gas_box(np.full(500, 1e4), np.ones(500))
    centers, pdf = temperature_pdf(ps, bins=18)
    assert centers[np.argmax(pdf)] == pytest.approx(4.0, abs=0.5)


def test_density_pdf_normalized():
    rng = np.random.default_rng(0)
    ps = _gas_box(np.full(1000, 100.0), 10 ** rng.normal(0, 1, 1000))
    centers, pdf = density_pdf(ps, bins=24)
    dx = centers[1] - centers[0]
    assert np.sum(pdf) * dx == pytest.approx(1.0, rel=1e-6)


def test_pdf_distance_zero_for_identical():
    ps = _gas_box(np.full(300, 1e3), np.ones(300))
    a = temperature_pdf(ps, bins=16)
    assert pdf_distance(a, a) == 0.0


def test_pdf_distance_positive_for_different():
    a = temperature_pdf(_gas_box(np.full(300, 1e3), np.ones(300)), bins=16)
    b = temperature_pdf(_gas_box(np.full(300, 1e6), np.ones(300)), bins=16)
    assert pdf_distance(a, b) > 0.5


def test_pdf_distance_requires_same_bins():
    a = temperature_pdf(_gas_box([1e3] * 10, [1.0] * 10), bins=8)
    b = temperature_pdf(_gas_box([1e3] * 10, [1.0] * 10), bins=16)
    with pytest.raises(ValueError):
        pdf_distance(a, b)


def test_phase_diagram_shape():
    ps = _gas_box(np.full(200, 1e4), np.ones(200))
    rho_e, t_e, h = phase_diagram(ps, n_bins=10)
    assert h.shape == (10, 10)
    assert h.sum() == pytest.approx(200.0)


# --------------------------------------------------------------------- SFR
def test_star_formation_history():
    ps = ParticleSet.empty(10)
    ps.ptype[:] = int(ParticleType.STAR)
    ps.mass[:] = 2.0
    ps.tform[:5] = 9.5   # five stars formed recently
    ps.tform[5:] = np.inf  # IC stars: excluded
    t, sfr = star_formation_history(ps, t_now=10.0, bin_width=1.0, n_bins=5)
    assert sfr[-1] == pytest.approx(10.0)  # 5 stars x 2 M_sun / 1 Myr
    assert np.all(sfr[:-1] == 0.0)


def test_outflow_rate_counts_outgoing_only():
    ps = ParticleSet.empty(4)
    ps.ptype[:] = int(ParticleType.GAS)
    ps.mass[:] = 1.0
    ps.pos[:, 2] = [1000.0, 1000.0, -1000.0, 1000.0]
    ps.vel[:, 2] = [50.0, -50.0, -50.0, 0.0]  # out, in, out (below), still
    rate = outflow_rate(ps, z_plane=1000.0, dz=200.0)
    assert rate == pytest.approx((50.0 + 50.0) / 200.0)


def test_mass_loading_factor():
    ps = ParticleSet.empty(1)
    ps.ptype[:] = int(ParticleType.GAS)
    ps.mass[:] = 1.0
    ps.pos[0, 2] = 1000.0
    ps.vel[0, 2] = 100.0
    eta = mass_loading_factor(ps, sfr=0.5)
    assert eta == pytest.approx((100.0 / 200.0) / 0.5)
    assert mass_loading_factor(ps, sfr=0.0) == np.inf


# ------------------------------------------------------------- conservation
def test_audit_mass_and_momentum(plummer_ps):
    audit = ConservationAudit()
    audit.record(plummer_ps, 0.0)
    moved = plummer_ps.copy()
    moved.pos += 1.0
    audit.record(moved, 1.0)
    assert audit.mass_drift() == 0.0
    assert audit.momentum_drift() == 0.0
    assert audit.energy_change() == 0.0


def test_audit_detects_mass_loss(plummer_ps):
    audit = ConservationAudit()
    audit.record(plummer_ps, 0.0)
    audit.record(plummer_ps.select(np.arange(100)), 1.0)
    assert audit.mass_drift() > 0.5


def test_audit_energy_budget(uniform_gas_ps):
    from repro.physics.feedback import SNFeedback
    from repro.util.constants import SN_ENERGY

    audit = ConservationAudit()
    ps = uniform_gas_ps.copy()
    audit.record(ps, 0.0)
    SNFeedback().inject(ps, np.zeros(3))
    audit.record(ps, 1.0)
    assert audit.energy_change() == pytest.approx(SN_ENERGY, rel=1e-9)
    assert audit.injected_energy_accounted(n_sn=1, energy_per_sn=SN_ENERGY, tolerance=0.01)
    assert not audit.injected_energy_accounted(n_sn=0, energy_per_sn=SN_ENERGY, tolerance=0.5)
