"""Property-style invariants of the scaling model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.costmodel import RunConfig, StepCostModel
from repro.perf.machines import FUGAKU, RUSTY
from repro.perf.scaling import strong_scaling_curve, weak_scaling_curve


@given(st.integers(7, 17))  # node counts 128..131072 as powers of two
@settings(max_examples=12, deadline=None)
def test_weak_scaling_monotone_property(log2_nodes):
    p = 2**log2_nodes
    model = StepCostModel()
    a = model.total(RunConfig(machine=FUGAKU, n_nodes=p, n_particles=p * 2e6))
    b = model.total(RunConfig(machine=FUGAKU, n_nodes=2 * p, n_particles=2 * p * 2e6))
    assert b > a  # weak-scaling totals grow with scale (log N + comms)


@given(st.integers(12, 16), st.floats(1e10, 3e11))
@settings(max_examples=12, deadline=None)
def test_strong_scaling_monotone_property(log2_nodes, n_particles):
    p = 2**log2_nodes
    model = StepCostModel()
    a = model.total(RunConfig(machine=FUGAKU, n_nodes=p, n_particles=n_particles))
    b = model.total(RunConfig(machine=FUGAKU, n_nodes=2 * p, n_particles=n_particles))
    assert b < a  # more nodes on a fixed problem never slows the model down


def test_flops_independent_of_node_count():
    model = StepCostModel()
    n = 1.0e10
    f1 = model.total_flops(RunConfig(machine=FUGAKU, n_nodes=1024, n_particles=n))
    f2 = model.total_flops(RunConfig(machine=FUGAKU, n_nodes=4096, n_particles=n))
    assert f1 == pytest.approx(f2)


def test_flops_grow_superlinearly_with_n():
    # N log N: doubling N more than doubles the gravity flops.
    model = StepCostModel()
    f1 = model.flops(RunConfig(machine=FUGAKU, n_nodes=1024, n_particles=1e10))
    f2 = model.flops(RunConfig(machine=FUGAKU, n_nodes=1024, n_particles=2e10))
    assert f2["interaction_gravity"] > 2.0 * f1["interaction_gravity"]


def test_bigger_ng_more_gravity_flops():
    model = StepCostModel()
    small = RunConfig(machine=FUGAKU, n_nodes=1024, n_particles=1e10, n_g=1024)
    large = RunConfig(machine=FUGAKU, n_nodes=1024, n_particles=1e10, n_g=65536)
    assert model.flops(large)["interaction_gravity"] > model.flops(small)["interaction_gravity"]


def test_rusty_faster_per_node_than_fugaku():
    # Same load per node: genoa nodes (2 sockets, 4.1 GHz) beat A64FX nodes.
    model = StepCostModel()
    f = model.total(RunConfig(machine=FUGAKU, n_nodes=128, n_particles=128 * 2e6))
    r = model.total(RunConfig(machine=RUSTY, n_nodes=128, n_particles=128 * 2e6))
    assert r < f


def test_curve_helpers_agree_with_model():
    model = StepCostModel()
    pts = weak_scaling_curve(FUGAKU, [512])
    cfg = RunConfig(machine=FUGAKU, n_nodes=512, n_particles=512 * 2e6)
    assert pts[0].total_seconds == pytest.approx(model.total(cfg))
    pts = strong_scaling_curve(FUGAKU, [512], n_particles=1e9)
    cfg = RunConfig(machine=FUGAKU, n_nodes=512, n_particles=1e9)
    assert pts[0].total_seconds == pytest.approx(model.total(cfg))
