"""Performance model: Table 4 shape, Table 3 anchor, scaling curves."""

import pytest

from repro.perf.costmodel import PAPER_TABLE3, RunConfig, StepCostModel
from repro.perf.kernels import PAPER_TABLE4, kernel_performance_table
from repro.perf.machines import FUGAKU, MIYABI, RUSTY
from repro.perf.scaling import (
    projected_one_gyr_walltime,
    strong_scaling_curve,
    time_to_solution_speedup,
    timestep_ratio_vs_conventional,
    weak_scaling_curve,
    weak_scaling_efficiency,
)


# ------------------------------------------------------------------ machines
def test_machine_peaks_match_paper():
    assert FUGAKU.peak_sp_node_tflops == pytest.approx(6.144)
    assert FUGAKU.peak_system_pflops(148_896) == pytest.approx(915.0, rel=0.01)
    assert RUSTY.peak_sp_node_tflops == pytest.approx(12.596, rel=1e-3)
    assert RUSTY.peak_system_pflops(193) == pytest.approx(2.43, rel=0.01)
    assert MIYABI.peak_system_pflops(1024) == pytest.approx(68.5, rel=0.01)


# ------------------------------------------------------------------- Table 4
def test_table4_model_within_factor_of_paper():
    for row in kernel_performance_table():
        paper = row.paper_efficiency_pct
        assert row.efficiency_pct == pytest.approx(paper, rel=0.8), (
            row.isa,
            row.kernel,
        )


def test_table4_orderings_match_paper():
    rows = {(r.isa, r.kernel): r for r in kernel_performance_table()}
    # AVX-512 beats AVX2 beats A64FX on gravity.
    assert (
        rows[("genoa-avx512", "gravity")].efficiency_pct
        > rows[("genoa-avx2", "gravity")].efficiency_pct
        > rows[("a64fx-sve", "gravity")].efficiency_pct
    )
    # AVX2's gather penalty craters the hydro kernels relative to AVX-512.
    assert (
        rows[("genoa-avx2", "hydro_density")].efficiency_pct
        < 0.3 * rows[("genoa-avx512", "hydro_density")].efficiency_pct
    )
    # The untuned GPU path is terrible at hydro but decent at gravity.
    assert rows[("gh200", "gravity")].efficiency_pct > 20.0
    assert rows[("gh200", "hydro_force")].efficiency_pct < 5.0


def test_table4_absolute_speeds_scale():
    rows = {(r.isa, r.kernel): r for r in kernel_performance_table()}
    # GPU gravity is in the tens of Tflops; CPU cores in the tens of Gflops.
    assert rows[("gh200", "gravity")].gflops > 1e4
    assert 10.0 < rows[("a64fx-sve", "gravity")].gflops < 100.0


# ------------------------------------------------------------------- Table 3
@pytest.fixture(scope="module")
def anchor_cfg():
    return RunConfig(machine=FUGAKU, n_nodes=148_896, n_particles=148_896 * 2.0e6)


def test_breakdown_reproduces_anchor(anchor_cfg):
    model = StepCostModel()
    bd = model.breakdown(anchor_cfg)
    for key in (
        "interaction_gravity",
        "interaction_density",
        "interaction_hydro_force",
        "kernel_size",
        "particle_exchange",
        "let_gravity",
        "let_hydro",
        "tree_gravity",
        "tree_hydro",
    ):
        paper_t = PAPER_TABLE3[key][0]
        assert bd[key] == pytest.approx(paper_t, rel=0.15), key
    total = sum(bd.values())
    assert total == pytest.approx(PAPER_TABLE3["total"][0], rel=0.1)


def test_anchor_sustained_pflops(anchor_cfg):
    model = StepCostModel()
    # Paper: 8.20 PFLOPS overall, 0.90% efficiency.
    assert model.achieved_pflops(anchor_cfg) == pytest.approx(8.2, rel=0.25)
    assert model.efficiency(anchor_cfg) == pytest.approx(0.009, rel=0.3)


def test_gravity_dominates_flops_not_time(anchor_cfg):
    model = StepCostModel()
    fl = model.flops(anchor_cfg)
    bd = model.breakdown(anchor_cfg)
    assert fl["interaction_gravity"] > 10 * fl["interaction_density"]
    # But comms and kernel-size dominate the wall clock at full scale.
    assert bd["let_gravity"] + bd["particle_exchange"] > bd["interaction_gravity"]


# ------------------------------------------------------------------ scaling
def test_weak_scaling_total_grows_like_logN():
    pts = weak_scaling_curve(FUGAKU, [128, 1024, 8192, 65536, 148896])
    totals = [p.total_seconds for p in pts]
    assert all(b > a for a, b in zip(totals, totals[1:]))  # grows
    # But sub-linearly: 1000x more nodes < 4x more time.
    assert totals[-1] < 4.0 * totals[0]


def test_weak_scaling_efficiency_near_paper():
    pts = weak_scaling_curve(FUGAKU, [128, 148896])
    eff = weak_scaling_efficiency(pts)
    # Paper: 54% of the 128-node efficiency at 148k nodes (log-compensated).
    assert 0.3 < eff < 0.9


def test_strong_scaling_decreases_then_communication_limits():
    pts = strong_scaling_curve(FUGAKU, [4096, 8192, 16384, 40608], n_particles=4.75e10)
    totals = [p.total_seconds for p in pts]
    assert totals[-1] < totals[0]  # more nodes still helps
    # Speedup is sub-ideal: 10x nodes gives < 10x.
    speedup = totals[0] / totals[-1]
    assert speedup < 40608 / 4096


def test_communication_share_grows_with_scale():
    pts = weak_scaling_curve(FUGAKU, [128, 148896])
    def comm_share(p):
        comm = p.breakdown["let_gravity"] + p.breakdown["let_hydro"] + p.breakdown["particle_exchange"]
        return comm / p.total_seconds
    assert comm_share(pts[1]) > comm_share(pts[0])


def test_rusty_reaches_paper_particle_counts():
    # Paper: weakMW2M-equivalent on Rusty reached 2.3e11 particles.
    pts = weak_scaling_curve(RUSTY, [193], particles_per_node=1.2e9)
    assert pts[0].n_particles == pytest.approx(2.3e11, rel=0.01)
    assert pts[0].total_seconds > 0


# ----------------------------------------------------------------- Sec. 5.3
def test_time_to_solution_113x():
    out = time_to_solution_speedup()
    # Paper: 315 hours (GIZMO-scaled) vs 2.78 hours -> 113x.
    assert out["ours_hours_per_myr"] == pytest.approx(2.78, rel=0.01)
    assert out["gizmo_hours_per_myr"] == pytest.approx(315.0, rel=0.1)
    assert out["speedup"] == pytest.approx(113.0, rel=0.1)


def test_timestep_ratio_10x():
    assert timestep_ratio_vs_conventional() == pytest.approx(10.0)


def test_one_gyr_estimate_60_days():
    out = projected_one_gyr_walltime(seconds_per_step=10.0)
    assert out["steps"] == pytest.approx(5e5)
    assert out["days"] == pytest.approx(57.9, rel=0.01)  # "~60 days"


# ------------------------------------------------- measured-ledger anchoring
def test_hydro_gravity_work_ratio_from_anchor():
    from repro.perf.costmodel import hydro_gravity_work_ratio

    ratio = hydro_gravity_work_ratio()
    # (1.18 + 0.34 + 3.18) per gas particle vs 1.63 per particle at a gas
    # fraction of ~0.163: a gas particle costs ~18x a collisionless one.
    assert 10.0 < ratio < 30.0


def test_comm_seconds_from_measured_ledger():
    from repro.fdps.comm import CommStats
    from repro.perf.costmodel import comm_seconds_from_ledger, measured_comm_breakdown

    stat = CommStats(
        n_calls=3, n_messages=42, bytes_total=3 << 20, byte_hops=3 << 20,
        max_bytes_per_rank=1 << 20, critical_bytes=3 << 20,
    )
    t = comm_seconds_from_ledger(stat, FUGAKU, n_ranks=8)
    assert t > 0
    bigger = CommStats(
        n_calls=3, n_messages=42, bytes_total=3 << 24, byte_hops=3 << 24,
        max_bytes_per_rank=1 << 24, critical_bytes=3 << 24,
    )
    assert comm_seconds_from_ledger(bigger, FUGAKU, n_ranks=8) > t
    assert comm_seconds_from_ledger(CommStats(), FUGAKU, n_ranks=8) == 0.0
    out = measured_comm_breakdown({"exchange_let": stat}, FUGAKU, n_ranks=8)
    assert out["exchange_let"] == pytest.approx(t)
    # The bandwidth term prices the accumulated per-call critical path, not
    # n_calls x the all-time busiest call.
    bw = FUGAKU.network.bandwidth_gb_s * 1e9
    lopsided = CommStats(
        n_calls=10, n_messages=80, bytes_total=2 << 20,
        max_bytes_per_rank=1 << 20, critical_bytes=(1 << 20) + 9 * 1024,
    )
    t_lop = comm_seconds_from_ledger(lopsided, FUGAKU, n_ranks=8)
    assert t_lop < 2 * ((1 << 20) + 9 * 1024) / bw + 1.0e-4  # no 10x inflation
