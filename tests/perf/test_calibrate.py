"""Cost-model calibration from measured backend-kernel throughput."""

import numpy as np
import pytest

from repro.fdps.interaction import OPS_PER_INTERACTION
from repro.perf.calibrate import (
    best_throughput,
    calibrate,
    calibrated_kernel_speed,
    calibration_factors,
    measured_gflops,
)
from repro.perf.kernels import kernel_speed_gflops
from repro.perf.machines import GENOA


def _synthetic_bench():
    kernels = {}
    for k, base in (("gravity", 4.0e7), ("hydro_density", 1.5e7), ("hydro_force", 8.0e6)):
        kernels[k] = {
            "numpy": {
                "5k": {"seconds": 0.1, "interactions": int(base * 0.08),
                       "inter_per_s": base * 0.8},
                "20k": {"seconds": 0.5, "interactions": int(base * 0.5),
                        "inter_per_s": base},
            }
        }
    return {"kernels": kernels}


def test_measured_gflops_uses_table4_ops():
    assert measured_gflops(1e9, "gravity") == pytest.approx(OPS_PER_INTERACTION["gravity"])
    assert measured_gflops(2e6, "hydro_force") == pytest.approx(
        2e6 * OPS_PER_INTERACTION["hydro_force"] / 1e9
    )


def test_best_throughput_picks_fastest_round():
    bench = _synthetic_bench()
    size, ips = best_throughput(bench, "gravity", "numpy")
    assert size == "20k"
    assert ips == pytest.approx(4.0e7)


def test_calibration_factors_roundtrip():
    bench = _synthetic_bench()
    rows = calibrate(bench, backend="numpy", proc=GENOA)
    assert {r.kernel for r in rows} == set(OPS_PER_INTERACTION)
    for row in rows:
        assert row.modeled_gflops == pytest.approx(
            kernel_speed_gflops(GENOA, row.kernel)
        )
        assert row.factor == pytest.approx(row.measured_gflops / row.modeled_gflops)
        # model x factor == measurement: the calibrated speed is anchored.
        assert calibrated_kernel_speed(bench, row.kernel) == pytest.approx(
            row.measured_gflops
        )
    factors = calibration_factors(bench)
    assert factors == {r.kernel: pytest.approx(r.factor) for r in rows}


def test_missing_backend_yields_no_rows():
    assert calibrate(_synthetic_bench(), backend="numba") == []


def test_calibrate_real_bench_output(tmp_path):
    """End-to-end against a real (tiny) benchmark measurement."""
    from repro.accel.backends import get_backend
    from repro.fdps.interaction import InteractionCounter
    from repro.sn.turbulence import make_turbulent_box
    from repro.sph.density import compute_density
    import time

    ps = make_turbulent_box(n_per_side=8, side=20.0, mean_density=0.05,
                            temperature=100.0, mach=1.0, seed=1)
    counter = InteractionCounter()
    t0 = time.perf_counter()
    compute_density(ps.pos, ps.vel, ps.mass, ps.u, ps.h, n_ngb=16,
                    counter=counter, backend=get_backend("numpy"))
    dt = time.perf_counter() - t0
    inter = counter.interactions("hydro_density")
    bench = {"kernels": {"hydro_density": {"numpy": {
        "tiny": {"seconds": dt, "interactions": inter, "inter_per_s": inter / dt},
    }}}}
    rows = calibrate(bench)
    assert len(rows) == 1
    assert rows[0].kernel == "hydro_density"
    assert 0 < rows[0].factor < 1  # a Python backend sits below the ISA model
    assert np.isfinite(rows[0].measured_gflops)
