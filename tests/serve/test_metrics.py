"""ServiceMetrics exports: the versioned dict and the lifecycle-safe digest."""

import time

import pytest

from repro.serve.metrics import METRICS_SCHEMA_VERSION, ServiceMetrics


def _busy_metrics():
    m = ServiceMetrics()
    m.n_submitted = 6
    m.record_batch(2)
    m.record_batch(1)
    m.record_completion(0, 5)
    m.record_completion(0, 7)
    m.add_worker_busy(0, 0.4)
    m.add_worker_busy(1, 0.2)
    m.exposed_wait_s = 0.1
    m.n_worker_restarts = 1
    m.n_batch_timeouts = 1
    m.n_redispatch = 2
    return m


# ------------------------------------------------------------------ to_dict
def test_to_dict_stamps_schema_version():
    d = _busy_metrics().to_dict(max_batch=2, n_workers=2)
    assert d["schema"] == METRICS_SCHEMA_VERSION
    # ...and otherwise matches the unversioned export field for field.
    flat = _busy_metrics().as_dict(max_batch=2, n_workers=2)
    assert {k: v for k, v in d.items() if k != "schema"} == flat


def test_to_dict_is_json_plain():
    import json

    json.dumps(ServiceMetrics().to_dict())
    json.dumps(_busy_metrics().to_dict(max_batch=2, n_workers=2))


# ------------------------------------------------------------------ summary
def test_summary_before_any_activity():
    # Never-started server: no window, no samples — all zeros, no raise.
    s = ServiceMetrics().summary()
    assert s["n_submitted"] == 0
    assert s["worker_utilization"] == 0.0
    assert s["latency_steps_p50"] == 0.0
    assert s["n_faults"] == 0
    assert s["degraded"] is False


def test_summary_mid_flight_uses_now_as_window_end():
    m = _busy_metrics()
    m.started_at = time.perf_counter() - 1.0
    assert m.stopped_at is None
    s = m.summary(max_batch=2, n_workers=2)
    assert 0.0 < s["worker_utilization"] <= 1.0
    assert s["n_batches"] == 2
    assert s["batch_occupancy"] == pytest.approx(1.5 / 2)
    assert s["latency_steps_p50"] == pytest.approx(6.0)


def test_summary_after_restart_reset_window():
    # A supervisor restart can reset started_at past stopped_at; the
    # digest must yield zero utilization, never a negative one.
    m = _busy_metrics()
    m.started_at = 100.0
    m.stopped_at = 99.0
    s = m.summary(n_workers=2)
    assert s["worker_utilization"] == 0.0


def test_summary_folds_fault_counters():
    m = _busy_metrics()
    m.n_worker_errors = 3
    s = m.summary()
    assert s["n_faults"] == 1 + 1 + 3  # restarts + timeouts + errors
    assert s["n_redispatch"] == 2
