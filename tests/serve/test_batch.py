"""BatchScheduler: full-batch and deadline flushing, metrics, validation."""

import numpy as np
import pytest

from repro.serve.batch import BatchScheduler
from repro.serve.metrics import ServiceMetrics


def _buf(event_id):
    b = np.zeros(13)
    b[2] = event_id
    return b


def _add(sched, event_id, step, return_step=None):
    sched.add(_buf(event_id), event_id, step, return_step if return_step is not None else step + 50)


def test_full_batch_flushes_immediately():
    s = BatchScheduler(max_batch=3, max_wait_steps=10)
    for k in range(3):
        _add(s, k, step=0)
    batches = s.due_batches(0)
    assert [len(b) for b in batches] == [3]
    assert s.queue_depth == 0


def test_burst_cuts_multiple_full_batches():
    s = BatchScheduler(max_batch=2, max_wait_steps=10)
    for k in range(5):
        _add(s, k, step=0)
    batches = s.due_batches(0)
    assert [len(b) for b in batches] == [2, 2]
    assert s.queue_depth == 1  # the tail waits for its deadline


def test_partial_batch_waits_until_deadline():
    s = BatchScheduler(max_batch=4, max_wait_steps=2)
    _add(s, 0, step=5)
    assert s.due_batches(5) == []
    assert s.due_batches(6) == []
    batches = s.due_batches(7)  # 5 + max_wait_steps
    assert [len(b) for b in batches] == [1]


def test_deadline_never_passes_return_step():
    # A request due back at step 6 must flush by step 5 even with a long
    # configured wait.
    s = BatchScheduler(max_batch=4, max_wait_steps=100)
    _add(s, 0, step=4, return_step=6)
    assert s.due_batches(4) == []
    assert [len(b) for b in s.due_batches(5)] == [1]


def test_deadline_pulls_remainder_along():
    s = BatchScheduler(max_batch=4, max_wait_steps=2)
    _add(s, 0, step=0)
    _add(s, 1, step=1)
    batches = s.due_batches(2)  # event 0's deadline; event 1 rides along
    assert [len(b) for b in batches] == [2]


def test_fifo_order_preserved():
    s = BatchScheduler(max_batch=2, max_wait_steps=0)
    for k in (7, 8, 9):
        _add(s, k, step=0)
    flat = [int(b[2]) for batch in s.due_batches(0) for b in batch]
    assert flat == [7, 8, 9]


def test_remove_pulls_request_out():
    s = BatchScheduler(max_batch=4, max_wait_steps=0)
    _add(s, 0, step=0)
    _add(s, 1, step=0)
    buf = s.remove(0)
    assert int(buf[2]) == 0
    assert s.queue_depth == 1
    with pytest.raises(ValueError):
        s.remove(0)


def test_flush_all_drains_everything():
    s = BatchScheduler(max_batch=2, max_wait_steps=50)
    for k in range(3):
        _add(s, k, step=0)
    batches = s.flush_all(0)
    assert [len(b) for b in batches] == [2, 1]
    assert s.queue_depth == 0


def test_metrics_record_batches_and_waits():
    m = ServiceMetrics()
    s = BatchScheduler(max_batch=2, max_wait_steps=3, metrics=m)
    _add(s, 0, step=0)
    _add(s, 1, step=1)
    s.due_batches(1)  # full batch
    assert m.batch_sizes == [2]
    assert m.flush_wait_steps == [1, 0]
    assert m.batch_occupancy(max_batch=2) == 1.0


def test_validation():
    with pytest.raises(ValueError):
        BatchScheduler(max_batch=0)
    with pytest.raises(ValueError):
        BatchScheduler(max_batch=2, max_wait_steps=-1)
    with pytest.raises(ValueError):
        BatchScheduler(max_batch=4, pad_to=2)
