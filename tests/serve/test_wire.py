"""Wire format: round trips, validation, per-event seeding."""

import numpy as np
import pytest

from repro.fdps.particles import ParticleSet, ParticleType, packed_width
from repro.serve.wire import (
    REQUEST_MAGIC,
    RESPONSE_MAGIC,
    ServeRequest,
    ServeResponse,
    event_rng,
)


def _region(n=20, seed=0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-25, 25, (n, 3)),
        mass=rng.uniform(0.5, 2.0, n),
        pid=np.arange(n) + 7,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = rng.uniform(10, 50, n)
    ps.h[:] = 8.0
    ps.zmet[:] = rng.uniform(0, 1e-3, (n, 4))
    return ps


def _request(n=20, seed=0):
    return ServeRequest(
        event_id=42,
        base_seed=3,
        star_pid=123,
        dispatch_step=10,
        return_step=15,
        center=np.array([1.0, -2.0, 3.0]),
        region=_region(n, seed),
    )


def test_request_roundtrip_is_exact():
    req = _request()
    back = ServeRequest.from_buffer(req.to_buffer())
    assert back.event_id == 42
    assert back.base_seed == 3
    assert back.star_pid == 123
    assert back.dispatch_step == 10
    assert back.return_step == 15
    assert np.array_equal(back.center, req.center)
    for name, arr in req.region.data.items():
        assert np.array_equal(back.region.data[name], arr), name


def test_response_roundtrip_is_exact():
    res = ServeResponse(event_id=9, return_step=55, particles=_region(11, seed=4))
    back = ServeResponse.from_buffer(res.to_buffer())
    assert back.event_id == 9
    assert back.return_step == 55
    for name, arr in res.particles.data.items():
        assert np.array_equal(back.particles.data[name], arr), name


def test_buffer_nbytes_is_header_plus_packed_payload():
    req = _request(n=20)
    assert req.to_buffer().nbytes == (12 + 20 * packed_width()) * 8


def test_empty_region_roundtrip():
    req = _request(n=0)
    back = ServeRequest.from_buffer(req.to_buffer())
    assert len(back.region) == 0


def test_wrong_magic_rejected():
    buf = _request().to_buffer()
    buf[0] = RESPONSE_MAGIC
    with pytest.raises(ValueError, match="magic"):
        ServeRequest.from_buffer(buf)


def test_wrong_version_rejected():
    buf = _request().to_buffer()
    buf[1] = 99
    with pytest.raises(ValueError, match="version"):
        ServeRequest.from_buffer(buf)


def test_truncated_payload_rejected():
    buf = _request().to_buffer()
    with pytest.raises(ValueError, match="length"):
        ServeRequest.from_buffer(buf[:-5])


def test_wrong_width_rejected():
    buf = _request(n=20).to_buffer()
    buf[11] = packed_width() + 1
    with pytest.raises(ValueError, match="width"):
        ServeRequest.from_buffer(buf)


def test_event_rng_deterministic_and_distinct():
    a = event_rng(1, 100, 5).uniform(size=4)
    b = event_rng(1, 100, 5).uniform(size=4)
    assert np.array_equal(a, b)
    # Any coordinate change gives an independent stream.
    for other in (event_rng(2, 100, 5), event_rng(1, 101, 5), event_rng(1, 100, 6)):
        assert not np.array_equal(a, other.uniform(size=4))


def test_request_rng_matches_event_rng():
    req = _request()
    assert np.array_equal(
        req.rng().uniform(size=3), event_rng(3, 123, 10).uniform(size=3)
    )


# ------------------------------------------------------------ in-place encode
def test_request_encode_into_matches_to_buffer():
    from repro.serve.wire import request_nfloats

    req = _request(n=20)
    slot = np.full(request_nfloats(20) + 10, np.nan)
    used = req.encode_into(slot)
    assert used == request_nfloats(20)
    assert slot[0] == REQUEST_MAGIC
    assert np.array_equal(slot[:used], req.to_buffer())
    # encode_into never caches the external view
    assert req.to_buffer() is not slot


def test_response_encode_into_matches_to_buffer():
    from repro.serve.wire import response_nfloats

    res = ServeResponse(event_id=1, return_step=9, particles=_region(n=12))
    slot = np.zeros(response_nfloats(12))
    used = res.encode_into(slot)
    assert used == response_nfloats(12)
    assert np.array_equal(slot[:used], res.to_buffer())
    decoded = ServeResponse.from_buffer(slot[:used])
    assert decoded.event_id == 1
    assert len(decoded.particles) == 12


def test_encode_into_rejects_small_target():
    req = _request(n=20)
    with pytest.raises(ValueError):
        req.encode_into(np.zeros(8))
    res = ServeResponse(event_id=1, return_step=9, particles=_region(n=12))
    with pytest.raises(ValueError):
        res.encode_into(np.zeros(8))


def test_response_fits_in_request_slot():
    """The in-place overwrite contract: response(n) <= request(n) always."""
    from repro.serve.wire import request_nfloats, response_nfloats

    for n in (0, 1, 20, 4096):
        assert response_nfloats(n) <= request_nfloats(n)


def test_corrupt_header_counts_raise_wire_format_error():
    from repro.serve.wire import WireFormatError

    # A torn buffer can hold anything a float64 can; every invalid
    # (count, width) must surface as the typed error, not an IndexError
    # deep inside unpack.
    for bad in (np.nan, np.inf, -np.inf, -1.0, 2.5):
        buf = _request(n=20).to_buffer()
        buf[10] = bad
        with pytest.raises(WireFormatError):
            ServeRequest.from_buffer(buf)
    res = ServeResponse(event_id=9, return_step=55, particles=_region(11))
    buf = res.to_buffer()
    buf[4] = np.nan
    with pytest.raises(WireFormatError):
        ServeResponse.from_buffer(buf)


def test_wire_format_error_is_a_typed_value_error():
    from repro.serve.wire import WireFormatError

    # Fault recovery catches WireFormatError specifically; existing
    # callers matching ValueError keep working.
    assert issubclass(WireFormatError, ValueError)
    buf = _request().to_buffer()
    buf[0] = -7.0
    with pytest.raises(WireFormatError):
        ServeRequest.from_buffer(buf)
