"""Chaos suite: injected worker faults recover bit-identically.

Every test drives a :class:`SurrogateServer` through a scripted
:class:`FaultPlan` (SIGKILL mid-flight, hang past the batch deadline,
corrupt response, raise in predict, dropped response) and asserts the
headline invariant of the fault-tolerance work: the delivered predictions
are byte-for-byte what the deterministic ``sync`` transport produces, with
the recovery visible only in the :class:`ServiceMetrics` counters — and,
for ``shm``, with every ring slot back on the free stack afterwards.
"""

import time

import numpy as np
import pytest

from repro.fdps.particles import ParticleSet, ParticleType
from repro.serve import (
    Fault,
    FaultPlan,
    SupervisionConfig,
    SurrogateServer,
)
from repro.surrogate.model import SedovBlastOracle, SNSurrogate

TRANSPORTS = ["process", "shm"]

#: Fast-recovery knobs: tests must not wait out production timeouts.
FAST = SupervisionConfig(
    max_consecutive_failures=3,
    backoff_base_s=0.05,
    backoff_cap_s=0.2,
    batch_timeout_s=2.0,
)


def _region(n=40, seed=0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-25, 25, (n, 3)),
        mass=np.full(n, 1.0),
        pid=np.arange(n) + 1000 * seed,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = 25.0
    ps.h[:] = 8.0
    return ps


def _surr():
    return SNSurrogate(oracle=SedovBlastOracle(t_after=0.1), n_grid=8, side=60.0)


def _run_rounds(srv, rounds=((0, 5, 4),)):
    """Submit/collect ``rounds`` of ``(step, return_step, n_events)``.

    Event seeds/pids are globally unique across rounds so the per-event
    RNG — and therefore the prediction bytes — match between any two runs
    with the same rounds, transport-independent.
    """
    out = {}
    k0 = 0
    for step, return_step, n_events in rounds:
        for k in range(k0, k0 + n_events):
            srv.submit(
                _region(seed=k), np.zeros(3), star_pid=k,
                dispatch_step=step, return_step=return_step, base_seed=0,
            )
        k0 += n_events
        for res in srv.collect(return_step):
            out[res.event_id] = res.particles
    return out


def _reference(rounds):
    with SurrogateServer(surrogate=_surr(), transport="sync", max_batch=2) as srv:
        return _run_rounds(srv, rounds)


def _await_restart(srv, deadline_s=5.0):
    """Drive supervision until the scheduled restart fires.

    The restart backoff is wall-clock; a fast machine finishes the whole
    workload inside it, and supervision only runs while the server is
    polled — without this the restart assertion races the scheduler.
    """
    deadline = time.monotonic() + deadline_s
    while srv.metrics.n_worker_restarts < 1 and time.monotonic() < deadline:
        time.sleep(0.005)
        srv.supervise()


def _assert_bit_identical(got, reference):
    assert sorted(got) == sorted(reference)
    for eid, ref in reference.items():
        for name, arr in ref.data.items():
            assert np.array_equal(got[eid].data[name], arr), (eid, name)


def _chaos_server(transport, plan, **kw):
    kw.setdefault("supervision", FAST)
    return SurrogateServer(
        surrogate=_surr(), transport=transport, n_workers=2, max_batch=2,
        shm_slots=8, fault_plan=plan, **kw,
    )


def _assert_slots_free(srv):
    if srv.transport_name == "shm":
        assert srv._transport.n_free_slots == srv.metrics.shm_n_slots


# ---------------------------------------------------------------- fault plan
def test_faultplan_parse_roundtrip():
    plan = FaultPlan.parse("kill@w0:b1, hang@w1:b2:0.5, corrupt@w0:b3")
    assert plan.faults == (
        Fault("kill", 0, 1),
        Fault("hang", 1, 2, 0.5),
        Fault("corrupt", 0, 3),
    )
    assert FaultPlan.parse(",".join(f.as_str() for f in plan.faults)) == plan
    assert [f.action for f in plan.for_worker(0)] == ["kill", "corrupt"]
    assert plan.for_worker(2) == ()


def test_faultplan_parse_rejects_garbage():
    for bad in ("explode@w0:b1", "kill@w0", "kill@wx:b1", "kill@w0:b0"):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)


def test_faultplan_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_SERVE_FAULTS", raising=False)
    assert FaultPlan.from_env() is None
    monkeypatch.setenv("REPRO_SERVE_FAULTS", "kill@w1:b2")
    assert FaultPlan.from_env() == FaultPlan((Fault("kill", 1, 2),))


# -------------------------------------------------------------- chaos: kill
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_kill_mid_flight_bit_identical_with_restart(transport):
    # Two rounds: the first absorbs the kill (lost batch re-dispatches or
    # resolves inline), the second proves service continues; the explicit
    # supervision drain then makes the dead worker's restart observable.
    rounds = ((0, 5, 4), (6, 11, 4))
    with _chaos_server(transport, "kill@w0:b1") as srv:
        got = _run_rounds(srv, rounds)
        _await_restart(srv)
        m = srv.metrics
        assert m.n_redispatch + m.n_fault_oracle >= 1
        assert m.n_worker_restarts >= 1
        assert m.recovery_s and all(t >= 0.0 for t in m.recovery_s)
        assert not srv.degraded
    _assert_bit_identical(got, _reference(rounds))
    _assert_slots_free(srv)


# -------------------------------------------------------------- chaos: hang
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_hang_past_deadline_redispatches(transport):
    rounds = ((0, 5, 4),)
    with _chaos_server(transport, "hang@w0:b1:30.0") as srv:
        got = _run_rounds(srv, rounds)
        m = srv.metrics
        assert m.n_batch_timeouts >= 1
        assert m.n_redispatch + m.n_fault_oracle >= 1
    _assert_bit_identical(got, _reference(rounds))
    # The hung worker may still hold its (zombie) leases until close
    # terminates it — only after close must every slot be home.
    _assert_slots_free(srv)


# ----------------------------------------------------------- chaos: corrupt
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_corrupt_response_redispatches(transport):
    rounds = ((0, 5, 4),)
    with _chaos_server(transport, "corrupt@w0:b1") as srv:
        got = _run_rounds(srv, rounds)
        assert srv.metrics.n_redispatch + srv.metrics.n_fault_oracle >= 1
    _assert_bit_identical(got, _reference(rounds))
    _assert_slots_free(srv)


# -------------------------------------------------------------- chaos: drop
def test_dropped_response_recovers_via_timeout():
    rounds = ((0, 5, 4),)
    with _chaos_server("process", "drop@w0:b1") as srv:
        got = _run_rounds(srv, rounds)
        assert srv.metrics.n_batch_timeouts >= 1
    _assert_bit_identical(got, _reference(rounds))


# ----------------------------------------------------- chaos: worker raises
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_raise_in_predict_resolves_inline(transport):
    rounds = ((0, 5, 4),)
    with _chaos_server(transport, "raise@w0:b1") as srv:
        got = _run_rounds(srv, rounds)
        m = srv.metrics
        assert m.n_worker_errors >= 1
        assert m.n_fault_oracle >= 1      # request-dependent: no retry
    _assert_bit_identical(got, _reference(rounds))
    _assert_slots_free(srv)


# -------------------------------------------------------- chaos: degradation
def test_repeated_kills_degrade_to_inline_and_finish():
    # A single worker whose every incarnation SIGKILLs itself on its first
    # claim: the supervisor restarts it until max_consecutive_failures,
    # then abandons the pool; the run must still finish bit-identically.
    rounds = ((0, 5, 4), (6, 11, 4))
    supervision = SupervisionConfig(
        max_consecutive_failures=2,
        backoff_base_s=0.02,
        backoff_cap_s=0.05,
        batch_timeout_s=2.0,
    )
    with SurrogateServer(
        surrogate=_surr(), transport="process", n_workers=1, max_batch=2,
        fault_plan="kill@w0:b1", supervision=supervision,
    ) as srv:
        got = _run_rounds(srv, rounds)
        m = srv.metrics
        assert srv.degraded and m.degraded
        assert m.n_worker_restarts >= 1
        assert m.n_fault_oracle >= 1
    _assert_bit_identical(got, _reference(rounds))


# ------------------------------------------------------- fault_mode="raise"
def test_fault_mode_raise_surfaces_worker_death():
    with _chaos_server("process", "kill@w0:b1", fault_mode="raise") as srv:
        for k in range(4):
            srv.submit(
                _region(seed=k), np.zeros(3), star_pid=k,
                dispatch_step=0, return_step=5, base_seed=0,
            )
        with pytest.raises((RuntimeError, TimeoutError)):
            srv.collect(5)


def test_fault_mode_raise_surfaces_worker_exception():
    with _chaos_server("process", "raise@w0:b1", fault_mode="raise") as srv:
        for k in range(4):
            srv.submit(
                _region(seed=k), np.zeros(3), star_pid=k,
                dispatch_step=0, return_step=5, base_seed=0,
            )
        with pytest.raises(RuntimeError, match="serve worker"):
            srv.collect(5)


# ------------------------------------------------------------ env threading
def test_env_fault_plan_reaches_workers(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_FAULTS", "raise@w0:b1")
    rounds = ((0, 5, 4),)
    with SurrogateServer(
        surrogate=_surr(), transport="process", n_workers=2, max_batch=2,
        supervision=FAST,
    ) as srv:
        got = _run_rounds(srv, rounds)
        assert srv.metrics.n_worker_errors >= 1
    _assert_bit_identical(got, _reference(rounds))
