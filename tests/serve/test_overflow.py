"""Backpressure: pool-rank exhaustion under every overflow policy.

The invariant across all policies: *no SN event is ever dropped* — every
dispatch eventually yields a prediction, at worst an oracle fallback.
"""

import numpy as np
import pytest

from repro.core.pool import PoolManager
from repro.fdps.particles import ParticleSet, ParticleType
from repro.ml.unet import UNet3D
from repro.serve import OverflowPolicy
from repro.surrogate.model import SedovBlastOracle, SNSurrogate


def _region(n=30, seed=0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-25, 25, (n, 3)),
        mass=np.full(n, 1.0),
        pid=np.arange(n) + 1000 * seed,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = 25.0
    ps.h[:] = 8.0
    return ps


def _manager(policy, n_pool=2, latency=10, **kw):
    surr = SNSurrogate(oracle=SedovBlastOracle(t_after=0.1), n_grid=8, side=60.0)
    return PoolManager(
        surrogate=surr, n_pool=n_pool, latency_steps=latency, seed=0,
        overflow_policy=policy, **kw,
    )


def _flood(m, n, step=0):
    return [
        m.dispatch(_region(seed=k), np.zeros(3), star_pid=k, time=0.0, step=step)
        for k in range(n)
    ]


def test_free_pool_rank_exhaustion():
    m = _manager("queue")
    _flood(m, 2)
    assert m.free_pool_rank(0) is None          # both ranks busy
    assert m.free_pool_rank(10) is not None     # free again after latency


def test_queue_policy_counts_overflow_and_returns_everything():
    m = _manager("queue")
    events = _flood(m, 3)
    assert m.n_overflow == 1
    assert [e.handling for e in events] == ["pooled", "pooled", "queued"]
    returned = m.collect(10)
    assert len(returned) == 3
    assert all(e.returned for e in events)


def test_block_policy_delays_return_and_charges_stall():
    m = _manager("block")
    events = _flood(m, 3)
    assert m.n_overflow == 1
    assert events[2].handling == "blocked"
    # The third SN waited for the earliest rank to free (step 10) and its
    # prediction horizon starts there.
    assert events[2].return_step == 20
    metrics = m.server.metrics
    assert metrics.n_blocked == 1
    assert metrics.blocked_stall_steps == 10
    assert len(m.collect(10)) == 2
    assert len(m.collect(20)) == 1
    assert all(e.returned for e in events)


def test_spill_policy_runs_inline_on_main_rank():
    m = _manager("spill")
    events = _flood(m, 3)
    assert m.n_overflow == 1
    assert events[2].handling == "spilled"
    assert events[2].pool_rank == -1            # no pool slot consumed
    metrics = m.server.metrics
    assert metrics.n_spilled == 1
    assert metrics.inline_predict_s > 0         # main-rank wall-clock paid
    assert len(m.collect(10)) == 3              # still lands at the horizon
    assert all(e.returned for e in events)


def test_spill_prediction_identical_to_pooled():
    # The spilled event's prediction is seeded per event, so it matches
    # what a pool node would have produced bit for bit.
    spill = _manager("spill")
    ev_spill = _flood(spill, 3)[2]
    [(_, pred_spill)] = [
        (e, p) for (e, p) in spill.collect(10) if e.event_id == ev_spill.event_id
    ]
    roomy = _manager("queue", n_pool=8)
    _flood(roomy, 3)
    pred_pool = dict(
        (e.star_pid, p) for (e, p) in roomy.collect(10)
    )[ev_spill.star_pid]
    assert np.array_equal(pred_spill.pos, pred_pool.pos)
    assert np.array_equal(pred_spill.u, pred_pool.u)


def test_oracle_policy_falls_back_and_never_drops():
    m = _manager("oracle")
    events = _flood(m, 3)
    assert m.n_overflow == 1
    assert events[2].handling == "oracle"
    assert m.server.metrics.n_oracle_fallback == 1
    assert len(m.collect(10)) == 3
    assert all(e.returned for e in events)


def test_oracle_fallback_built_for_predictor_surrogate():
    # A U-Net-backed surrogate gets a Sedov fallback on the same grid.
    net = UNet3D(in_channels=8, out_channels=5, base_channels=2, depth=1, seed=0)
    surr = SNSurrogate(predictor=net.forward, n_grid=8, side=60.0)
    m = PoolManager(surrogate=surr, n_pool=1, latency_steps=5, seed=0,
                    overflow_policy="oracle")
    events = _flood(m, 2)
    assert events[1].handling == "oracle"
    fallback = m.fallback_oracle
    assert fallback is not surr
    assert isinstance(fallback.oracle, SedovBlastOracle)
    assert fallback.n_grid == 8
    assert len(m.collect(5)) == 2


@pytest.mark.parametrize("policy", ["queue", "block", "spill", "oracle"])
def test_no_event_dropped_under_sustained_overload(policy):
    # 2 pool nodes, latency 4, two SNe per step for 8 steps: overloaded by
    # design.  Every event must come back, whatever the policy.
    m = _manager(policy, n_pool=2, latency=4)
    events = []
    step = 0
    for step in range(8):
        for j in range(2):
            events.append(
                m.dispatch(_region(seed=10 * step + j), np.zeros(3),
                           star_pid=10 * step + j, time=0.0, step=step)
            )
        m.collect(step)
    last = max(e.return_step for e in events)
    for s in range(step + 1, last + 1):
        m.collect(s)
    assert all(e.returned for e in events)
    assert m.n_in_flight == 0
    assert m.n_overflow > 0
    summary = m.summary()
    assert summary["n_returned"] == len(events)


def test_policy_parse_rejects_unknown():
    with pytest.raises(ValueError, match="unknown overflow policy"):
        _manager("shrug")
    assert OverflowPolicy.parse("BLOCK") is OverflowPolicy.BLOCK
