"""SurrogateServer: transport parity, deadlines, metrics, lifecycle."""

import os

import numpy as np
import pytest

from repro.core.integrator import IntegratorConfig
from repro.core.simulation import GalaxySimulation
from repro.fdps.particles import ParticleSet, ParticleType
from repro.perf.costmodel import serve_summary
from repro.serve import SurrogateServer, SurrogateSpec
from repro.sn.turbulence import make_turbulent_box
from repro.surrogate.model import SedovBlastOracle, SNSurrogate

N_WORKERS = 2  # the CI serve leg runs these tests with two worker processes
#: Worker transport the single-transport lifecycle tests run under; the CI
#: serve leg re-runs this module with REPRO_SERVE_TRANSPORT=shm so the same
#: matrix exercises the shared-memory path.
WORKER_TRANSPORT = os.environ.get("REPRO_SERVE_TRANSPORT", "process")
#: Both worker transports, for the explicit parity matrix.
WORKER_TRANSPORTS = ("process", "shm")


def _region(n=40, seed=0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-25, 25, (n, 3)),
        mass=np.full(n, 1.0),
        pid=np.arange(n) + 1000 * seed,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = 25.0
    ps.h[:] = 8.0
    return ps


def _surr():
    return SNSurrogate(oracle=SedovBlastOracle(t_after=0.1), n_grid=8, side=60.0)


def _submit(server, k, step=0, return_step=5):
    return server.submit(
        _region(seed=k), np.zeros(3), star_pid=k,
        dispatch_step=step, return_step=return_step, base_seed=0,
    )


def test_sync_collect_respects_return_step():
    with SurrogateServer(surrogate=_surr(), transport="sync") as srv:
        _submit(srv, 0, step=0, return_step=5)
        for step in range(5):
            assert srv.collect(step) == []
        [res] = srv.collect(5)
        assert len(res.particles) == 40
        assert srv.n_outstanding == 0


@pytest.mark.parametrize("transport", WORKER_TRANSPORTS)
def test_worker_transport_bit_identical_to_sync(transport):
    """The acceptance criterion: >= 2 workers, identical bytes out."""
    reference = {}
    with SurrogateServer(surrogate=_surr(), transport="sync", max_batch=2) as srv:
        for k in range(5):
            _submit(srv, k)
        for res in srv.collect(5):
            reference[res.event_id] = res.particles
    with SurrogateServer(
        surrogate=_surr(), transport=transport, n_workers=N_WORKERS, max_batch=2
    ) as srv:
        for k in range(5):
            _submit(srv, k)
        srv.tick(0)  # ships two full batches to the workers immediately
        results = srv.collect(5)
        assert len(results) == 5
        for res in results:
            ref = reference[res.event_id]
            for name, arr in ref.data.items():
                assert np.array_equal(res.particles.data[name], arr), name


def test_process_spec_built_in_worker():
    spec = SurrogateSpec(kind="oracle", n_grid=8, side=60.0, t_after=0.1)
    with SurrogateServer(spec=spec, transport=WORKER_TRANSPORT, n_workers=1) as srv:
        _submit(srv, 3)
        [res] = srv.collect(5)
    with SurrogateServer(surrogate=_surr(), transport="sync") as sync:
        _submit(sync, 3)
        [ref] = sync.collect(5)
    assert np.array_equal(res.particles.pos, ref.particles.pos)


def test_spec_from_surrogate_roundtrip():
    spec = SurrogateSpec.from_surrogate(_surr())
    built = spec.build()
    assert built.n_grid == 8
    assert built.oracle.t_after == 0.1
    with pytest.raises(ValueError):
        SurrogateSpec.from_surrogate(SNSurrogate(predictor=lambda x: x, n_grid=8))


def _trained_model_path(tmp_path):
    """A quickly-trained, exported U-Net on the test grid."""
    from repro.ml.serialize import save_model
    from repro.ml.train import train_model
    from repro.ml.unet import UNet3D
    from repro.surrogate.training_data import build_dataset

    ds = build_dataset(4, base_seed=0, n_grid=8, n_per_side=8)
    net = UNet3D(in_channels=8, out_channels=5, base_channels=2, depth=1, seed=0)
    train_model(net, ds.inputs, ds.targets, epochs=2, lr=1e-3, val_fraction=0.25,
                seed=0)
    return save_model(net, tmp_path / "unet_export")


def test_spec_from_surrogate_derives_model_kind(tmp_path):
    """A predictor that remembers its export path yields a model spec."""
    from repro.ml.serialize import InferenceEngine

    path = _trained_model_path(tmp_path)
    engine = InferenceEngine.load(path)
    surr = SNSurrogate(predictor=engine, n_grid=8, side=60.0, gibbs_sweeps=4)
    spec = SurrogateSpec.from_surrogate(surr)
    assert spec.kind == "model"
    assert spec.model_path == str(path)
    assert spec.n_grid == 8 and spec.gibbs_sweeps == 4
    built = spec.build()
    x = np.random.default_rng(0).normal(size=(8, 8, 8, 8))
    assert np.array_equal(built.predictor(x), engine(x))


def test_spec_captures_custom_transform(tmp_path):
    """A non-default FieldTransform must survive the spec round trip."""
    from repro.ml.serialize import InferenceEngine
    from repro.surrogate.transforms import FieldTransform

    path = _trained_model_path(tmp_path)
    custom = FieldTransform(v_scale=5.0, rho_floor=1e-6)
    surr = SNSurrogate(
        predictor=InferenceEngine.load(path), n_grid=8, side=60.0,
        transform=custom,
    )
    spec = SurrogateSpec.from_surrogate(surr)
    assert spec.transform is not None
    built = spec.build()
    assert built.transform == custom
    # Default transforms stay implicit (old specs keep working).
    assert SurrogateSpec.from_surrogate(_surr()).transform is None
    # And the worker transport serves the custom transform bit-identically.
    with SurrogateServer(surrogate=surr, transport="sync") as srv:
        _submit(srv, 0)
        [ref] = srv.collect(5)
    with SurrogateServer(
        surrogate=surr, transport=WORKER_TRANSPORT, n_workers=1
    ) as srv:
        _submit(srv, 0)
        [res] = srv.collect(5)
    for name, arr in ref.particles.data.items():
        assert np.array_equal(res.particles.data[name], arr), name

    class _Opaque:
        def encode(self, fields):
            raise NotImplementedError

    with pytest.raises(ValueError):
        SurrogateSpec.from_surrogate(
            SNSurrogate(predictor=InferenceEngine.load(path), n_grid=8,
                        transform=_Opaque())
        )


def test_trained_model_bit_identical_across_all_transports(tmp_path):
    """train -> save_model -> spec(kind='model') -> identical predictions."""
    spec = SurrogateSpec(
        kind="model", model_path=str(_trained_model_path(tmp_path)),
        n_grid=8, side=60.0,
    )
    results = {}
    for transport in ("sync",) + WORKER_TRANSPORTS:
        with SurrogateServer(
            spec=spec, transport=transport, n_workers=N_WORKERS, max_batch=2
        ) as srv:
            for k in range(4):
                _submit(srv, k)
            results[transport] = {
                res.event_id: res.particles for res in srv.collect(5)
            }
            assert len(results[transport]) == 4
    for transport in WORKER_TRANSPORTS:
        for eid, ref in results["sync"].items():
            for name, arr in ref.data.items():
                assert np.array_equal(
                    results[transport][eid].data[name], arr
                ), (transport, name)


def test_collect_all_drains_outstanding():
    with SurrogateServer(
        surrogate=_surr(), transport=WORKER_TRANSPORT, n_workers=N_WORKERS,
        max_batch=8,
    ) as srv:
        for k in range(3):
            _submit(srv, k, return_step=100)
        out = srv.collect_all()
        assert len(out) == 3
        assert srv.n_outstanding == 0


def test_metrics_populated():
    with SurrogateServer(surrogate=_surr(), transport="sync", max_batch=2) as srv:
        for k in range(4):
            _submit(srv, k)
        srv.collect(5)
        m = srv.metrics_dict()
    assert m["n_submitted"] == 4
    assert m["n_completed"] == 4
    assert m["n_batches"] == 2
    assert m["mean_batch_size"] == 2.0
    assert m["batch_occupancy"] == 1.0
    assert m["latency_steps_p50"] == 5.0
    assert m["bytes_in"] > 0 and m["bytes_out"] > 0
    assert m["inline_predict_s"] > 0  # sync executes on the caller's thread


def test_serve_summary_prices_sync_as_fully_exposed():
    with SurrogateServer(surrogate=_surr(), transport="sync") as srv:
        _submit(srv, 0)
        srv.collect(5)
        summary = serve_summary(srv.metrics_dict())
    assert summary["inference_total_s"] > 0
    assert summary["overlap_efficiency"] == 0.0


def test_serve_summary_prices_overlap():
    with SurrogateServer(
        surrogate=_surr(), transport=WORKER_TRANSPORT, n_workers=N_WORKERS
    ) as srv:
        for k in range(4):
            _submit(srv, k, return_step=5)
        srv.tick(1)
        # Wait until the workers are actually done before collecting, so no
        # exposed wait is charged and the run prices as fully overlapped.
        out = srv.collect_all()
        summary = serve_summary(srv.metrics_dict())
    assert len(out) == 4
    assert summary["inference_total_s"] > 0
    assert summary["overlap_efficiency"] > 0.9


def test_close_is_idempotent():
    srv = SurrogateServer(surrogate=_surr(), transport=WORKER_TRANSPORT, n_workers=1)
    _submit(srv, 0)
    srv.collect(5)
    srv.close()
    srv.close()


def test_requires_surrogate_or_spec():
    with pytest.raises(ValueError):
        SurrogateServer()
    with pytest.raises(ValueError):
        SurrogateServer(surrogate=_surr(), transport="smoke-signals")


@pytest.mark.parametrize("transport", WORKER_TRANSPORTS)
def test_simulation_worker_transport_bit_identical_to_sync(transport):
    """End-to-end: a run with SN events, sync vs each worker transport."""

    def _run(transport):
        box = make_turbulent_box(n_per_side=6, side=60.0, mean_density=0.05,
                                 temperature=100.0, mach=2.0, seed=3)
        star = ParticleSet.empty(1)
        star.pos[:] = 0.0
        star.mass[:] = 20.0
        star.ptype[:] = int(ParticleType.STAR)
        star.pid[:] = 10_000_000
        star.tsn[:] = 0.004
        star.eps[:] = 1.0
        cfg = IntegratorConfig(self_gravity=False, enable_cooling=False,
                               enable_star_formation=False)
        sim = GalaxySimulation(
            box.append(star), dt=2e-3, n_pool=4, latency_steps=3,
            surrogate_grid=8, seed=7, config=cfg,
            serve_transport=transport, serve_workers=N_WORKERS,
            serve_max_batch=2,
        )
        try:
            sim.run(8)
            assert sim.integrator.n_sn_events == 1
            assert sim.pool.summary()["n_returned"] == 1
            return sim.ps.copy()
        finally:
            sim.close()

    ps_sync = _run("sync")
    ps_proc = _run(transport)
    for name, arr in ps_sync.data.items():
        assert np.array_equal(ps_proc.data[name], arr), name
