"""SurrogateServer: transport parity, deadlines, metrics, lifecycle."""

import numpy as np
import pytest

from repro.core.integrator import IntegratorConfig
from repro.core.simulation import GalaxySimulation
from repro.fdps.particles import ParticleSet, ParticleType
from repro.perf.costmodel import serve_summary
from repro.serve import SurrogateServer, SurrogateSpec
from repro.sn.turbulence import make_turbulent_box
from repro.surrogate.model import SedovBlastOracle, SNSurrogate

N_WORKERS = 2  # the CI serve leg runs these tests with two worker processes


def _region(n=40, seed=0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-25, 25, (n, 3)),
        mass=np.full(n, 1.0),
        pid=np.arange(n) + 1000 * seed,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = 25.0
    ps.h[:] = 8.0
    return ps


def _surr():
    return SNSurrogate(oracle=SedovBlastOracle(t_after=0.1), n_grid=8, side=60.0)


def _submit(server, k, step=0, return_step=5):
    return server.submit(
        _region(seed=k), np.zeros(3), star_pid=k,
        dispatch_step=step, return_step=return_step, base_seed=0,
    )


def test_sync_collect_respects_return_step():
    with SurrogateServer(surrogate=_surr(), transport="sync") as srv:
        _submit(srv, 0, step=0, return_step=5)
        for step in range(5):
            assert srv.collect(step) == []
        [res] = srv.collect(5)
        assert len(res.particles) == 40
        assert srv.n_outstanding == 0


def test_process_transport_bit_identical_to_sync():
    """The acceptance criterion: >= 2 workers, identical bytes out."""
    reference = {}
    with SurrogateServer(surrogate=_surr(), transport="sync", max_batch=2) as srv:
        for k in range(5):
            _submit(srv, k)
        for res in srv.collect(5):
            reference[res.event_id] = res.particles
    with SurrogateServer(
        surrogate=_surr(), transport="process", n_workers=N_WORKERS, max_batch=2
    ) as srv:
        for k in range(5):
            _submit(srv, k)
        srv.tick(0)  # ships two full batches to the workers immediately
        results = srv.collect(5)
        assert len(results) == 5
        for res in results:
            ref = reference[res.event_id]
            for name, arr in ref.data.items():
                assert np.array_equal(res.particles.data[name], arr), name


def test_process_spec_built_in_worker():
    spec = SurrogateSpec(kind="oracle", n_grid=8, side=60.0, t_after=0.1)
    with SurrogateServer(spec=spec, transport="process", n_workers=1) as srv:
        _submit(srv, 3)
        [res] = srv.collect(5)
    with SurrogateServer(surrogate=_surr(), transport="sync") as sync:
        _submit(sync, 3)
        [ref] = sync.collect(5)
    assert np.array_equal(res.particles.pos, ref.particles.pos)


def test_spec_from_surrogate_roundtrip():
    spec = SurrogateSpec.from_surrogate(_surr())
    built = spec.build()
    assert built.n_grid == 8
    assert built.oracle.t_after == 0.1
    with pytest.raises(ValueError):
        SurrogateSpec.from_surrogate(SNSurrogate(predictor=lambda x: x, n_grid=8))


def test_collect_all_drains_outstanding():
    with SurrogateServer(
        surrogate=_surr(), transport="process", n_workers=N_WORKERS, max_batch=8
    ) as srv:
        for k in range(3):
            _submit(srv, k, return_step=100)
        out = srv.collect_all()
        assert len(out) == 3
        assert srv.n_outstanding == 0


def test_metrics_populated():
    with SurrogateServer(surrogate=_surr(), transport="sync", max_batch=2) as srv:
        for k in range(4):
            _submit(srv, k)
        srv.collect(5)
        m = srv.metrics_dict()
    assert m["n_submitted"] == 4
    assert m["n_completed"] == 4
    assert m["n_batches"] == 2
    assert m["mean_batch_size"] == 2.0
    assert m["batch_occupancy"] == 1.0
    assert m["latency_steps_p50"] == 5.0
    assert m["bytes_in"] > 0 and m["bytes_out"] > 0
    assert m["inline_predict_s"] > 0  # sync executes on the caller's thread


def test_serve_summary_prices_sync_as_fully_exposed():
    with SurrogateServer(surrogate=_surr(), transport="sync") as srv:
        _submit(srv, 0)
        srv.collect(5)
        summary = serve_summary(srv.metrics_dict())
    assert summary["inference_total_s"] > 0
    assert summary["overlap_efficiency"] == 0.0


def test_serve_summary_prices_overlap():
    with SurrogateServer(
        surrogate=_surr(), transport="process", n_workers=N_WORKERS
    ) as srv:
        for k in range(4):
            _submit(srv, k, return_step=5)
        srv.tick(1)
        # Wait until the workers are actually done before collecting, so no
        # exposed wait is charged and the run prices as fully overlapped.
        out = srv.collect_all()
        summary = serve_summary(srv.metrics_dict())
    assert len(out) == 4
    assert summary["inference_total_s"] > 0
    assert summary["overlap_efficiency"] > 0.9


def test_close_is_idempotent():
    srv = SurrogateServer(surrogate=_surr(), transport="process", n_workers=1)
    _submit(srv, 0)
    srv.collect(5)
    srv.close()
    srv.close()


def test_requires_surrogate_or_spec():
    with pytest.raises(ValueError):
        SurrogateServer()
    with pytest.raises(ValueError):
        SurrogateServer(surrogate=_surr(), transport="smoke-signals")


def test_simulation_process_transport_bit_identical_to_sync():
    """End-to-end: a run with SN events, sync vs process transport."""

    def _run(transport):
        box = make_turbulent_box(n_per_side=6, side=60.0, mean_density=0.05,
                                 temperature=100.0, mach=2.0, seed=3)
        star = ParticleSet.empty(1)
        star.pos[:] = 0.0
        star.mass[:] = 20.0
        star.ptype[:] = int(ParticleType.STAR)
        star.pid[:] = 10_000_000
        star.tsn[:] = 0.004
        star.eps[:] = 1.0
        cfg = IntegratorConfig(self_gravity=False, enable_cooling=False,
                               enable_star_formation=False)
        sim = GalaxySimulation(
            box.append(star), dt=2e-3, n_pool=4, latency_steps=3,
            surrogate_grid=8, seed=7, config=cfg,
            serve_transport=transport, serve_workers=N_WORKERS,
            serve_max_batch=2,
        )
        try:
            sim.run(8)
            assert sim.integrator.n_sn_events == 1
            assert sim.pool.summary()["n_returned"] == 1
            return sim.ps.copy()
        finally:
            sim.close()

    ps_sync = _run("sync")
    ps_proc = _run("process")
    for name, arr in ps_sync.data.items():
        assert np.array_equal(ps_proc.data[name], arr), name
