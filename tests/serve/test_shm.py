"""Shared-memory transport: ring mechanics, parity, fallback, recycling."""

import numpy as np
import pytest

from repro.fdps.particles import ParticleSet, ParticleType
from repro.perf.costmodel import serve_summary
from repro.serve import SharedMemoryRing, SurrogateServer, SurrogateSpec
from repro.surrogate.model import SedovBlastOracle, SNSurrogate

N_WORKERS = 2


def _region(n=40, seed=0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-25, 25, (n, 3)),
        mass=np.full(n, 1.0),
        pid=np.arange(n) + 1000 * seed,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = 25.0
    ps.h[:] = 8.0
    return ps


def _surr():
    return SNSurrogate(oracle=SedovBlastOracle(t_after=0.1), n_grid=8, side=60.0)


def _submit(server, k, step=0, return_step=5):
    return server.submit(
        _region(seed=k), np.zeros(3), star_pid=k,
        dispatch_step=step, return_step=return_step, base_seed=0,
    )


def _reference(n_events, return_step=5):
    out = {}
    with SurrogateServer(surrogate=_surr(), transport="sync", max_batch=2) as srv:
        for k in range(n_events):
            _submit(srv, k, return_step=return_step)
        for res in srv.collect(return_step):
            out[res.event_id] = res.particles
    return out


def _assert_equal(particles, reference):
    for name, arr in reference.data.items():
        assert np.array_equal(particles.data[name], arr), name


# ------------------------------------------------------------------- the ring
def test_ring_write_and_view_roundtrip():
    ring = SharedMemoryRing(n_slots=4, slot_floats=16)
    try:
        buf = np.arange(10, dtype=np.float64)
        assert ring.write(2, buf) == 10
        assert np.array_equal(ring.slot(2, 10), buf)
        # a second mapping of the same segment sees the bytes (zero-copy)
        other = SharedMemoryRing(n_slots=4, slot_floats=16, name=ring.name)
        assert np.array_equal(other.slot(2, 10), buf)
        other.slot(2)[0] = -1.0
        assert ring.slot(2, 1)[0] == -1.0
        other.close()
    finally:
        ring.close()


def test_ring_close_is_idempotent_and_unlinks():
    ring = SharedMemoryRing(n_slots=1, slot_floats=8)
    name = ring.name
    ring.close()
    ring.close()
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_ring_validates_geometry():
    with pytest.raises(ValueError):
        SharedMemoryRing(n_slots=0, slot_floats=8)
    with pytest.raises(ValueError):
        SharedMemoryRing(n_slots=2, slot_floats=0)


# ------------------------------------------------------------------ transport
def test_shm_bit_identical_to_sync():
    reference = _reference(5)
    with SurrogateServer(
        surrogate=_surr(), transport="shm", n_workers=N_WORKERS, max_batch=2
    ) as srv:
        for k in range(5):
            _submit(srv, k)
        srv.tick(0)
        results = srv.collect(5)
        assert len(results) == 5
        for res in results:
            _assert_equal(res.particles, reference[res.event_id])
        assert srv.metrics.n_shm_fallback == 0


def test_shm_spec_built_in_worker():
    spec = SurrogateSpec(kind="oracle", n_grid=8, side=60.0, t_after=0.1)
    reference = _reference(1)
    with SurrogateServer(spec=spec, transport="shm", n_workers=1) as srv:
        _submit(srv, 0)
        [res] = srv.collect(5)
    _assert_equal(res.particles, reference[res.event_id])


def test_shm_oversize_request_falls_back_to_queue():
    """Requests bigger than a slot still serve, bit-identically, counted."""
    reference = _reference(3)
    with SurrogateServer(
        surrogate=_surr(), transport="shm", n_workers=1, max_batch=2,
        shm_slot_particles=8,          # regions have 40 particles: never fits
    ) as srv:
        for k in range(3):
            _submit(srv, k)
        results = srv.collect(5)
        assert len(results) == 3
        for res in results:
            _assert_equal(res.particles, reference[res.event_id])
        assert srv.metrics.n_shm_fallback == 3


def test_shm_slot_exhaustion_falls_back_then_recycles():
    reference = _reference(6, return_step=5)
    with SurrogateServer(
        surrogate=_surr(), transport="shm", n_workers=1, max_batch=2,
        shm_slots=2,
    ) as srv:
        # One burst of 6 at max_batch 2: the first batch leases both slots,
        # the rest must ride the queue.
        for k in range(6):
            _submit(srv, k)
        results = srv.collect(5)
        assert len(results) == 6
        for res in results:
            _assert_equal(res.particles, reference[res.event_id])
        assert srv.metrics.n_shm_fallback == 4
        assert srv.metrics.n_shm_slot == 2
        # After collect every lease is back; the next round is zero-copy.
        assert srv._transport.n_free_slots == 2
        fallbacks_before = srv.metrics.n_shm_fallback
        for k in range(2):
            _submit(srv, k, step=6, return_step=11)
        assert len(srv.collect(11)) == 2
        assert srv.metrics.n_shm_fallback == fallbacks_before


def test_shm_collect_all_drains_outstanding():
    with SurrogateServer(
        surrogate=_surr(), transport="shm", n_workers=N_WORKERS, max_batch=8
    ) as srv:
        for k in range(3):
            _submit(srv, k, return_step=100)
        out = srv.collect_all()
        assert len(out) == 3
        assert srv.n_outstanding == 0
        assert srv._transport.n_free_slots == srv.metrics.shm_n_slots


def test_shm_metrics_and_summary():
    with SurrogateServer(
        surrogate=_surr(), transport="shm", n_workers=1, max_batch=2
    ) as srv:
        for k in range(4):
            _submit(srv, k)
        srv.collect(5)
        m = srv.metrics_dict()
        summary = serve_summary(m)
    assert m["n_completed"] == 4
    assert m["shm_n_slots"] == 32
    assert m["shm_slot_bytes"] > 0
    assert m["n_shm_slot"] == 4
    assert m["n_shm_fallback"] == 0
    assert m["bytes_in"] > 0 and m["bytes_out"] > 0
    assert summary["shm_zero_copy_fraction"] == 1.0
    assert summary["transport_bytes"] == m["bytes_in"] + m["bytes_out"]


def test_shm_close_is_idempotent():
    srv = SurrogateServer(surrogate=_surr(), transport="shm", n_workers=1)
    _submit(srv, 0)
    srv.collect(5)
    srv.close()
    srv.close()


def test_shm_worker_exception_propagates_and_frees_slots():
    with SurrogateServer(
        surrogate=_surr(), transport="shm", n_workers=1, max_batch=1
    ) as srv:
        request = _submit(srv, 0)
        # Corrupt the queued wire buffer's magic: the worker's decode fails
        # and the failure must come back as an exception, not a hang.
        request.to_buffer()[0] = -1.0
        with pytest.raises(RuntimeError, match="serve worker"):
            srv.collect(5)
        assert srv._transport.n_free_slots == srv.metrics.shm_n_slots


def test_ring_slot_validates_index_and_nfloats():
    from repro.serve.wire import WireFormatError

    ring = SharedMemoryRing(n_slots=4, slot_floats=16)
    try:
        for bad_index in (4, -1, 100):
            with pytest.raises(WireFormatError):
                ring.slot(bad_index)
        for bad_nfloats in (0, -3, 17):
            with pytest.raises(WireFormatError):
                ring.slot(0, bad_nfloats)
        assert ring.slot(0, 16).size == 16
    finally:
        ring.close()
    with pytest.raises(ValueError):
        ring.slot(0)
