"""Batched inference parity: forward_batch == per-sample forward, exactly.

The batched convolution folds the batch axis into each tap's matmul, so
every output element is the same dot product over the same operands as the
single-sample pass — bit-identical results, which the serve subsystem's
determinism guarantee leans on.
"""

import numpy as np
import pytest

from repro.ml.layers import Conv3D, Layer, LeakyReLU, MaxPool3D, Upsample3D
from repro.ml.serialize import InferenceEngine, load_model, save_model
from repro.ml.unet import UNet3D


def _batch(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


def test_conv3d_forward_batch_matches_loop():
    conv = Conv3D(4, 6, 3, rng=np.random.default_rng(0))
    x = _batch((5, 4, 8, 8, 8), seed=1)
    ref = np.stack([conv.forward(s) for s in x])
    assert np.array_equal(conv.forward_batch(x), ref)


def test_conv3d_1x1_forward_batch():
    conv = Conv3D(3, 2, 1, rng=np.random.default_rng(2))
    x = _batch((3, 3, 4, 4, 4), seed=3)
    ref = np.stack([conv.forward(s) for s in x])
    assert np.array_equal(conv.forward_batch(x), ref)


def test_conv3d_forward_batch_validates_channels():
    conv = Conv3D(4, 6, 3)
    with pytest.raises(ValueError):
        conv.forward_batch(_batch((2, 3, 8, 8, 8)))


def test_elementwise_layers_forward_batch():
    x = _batch((4, 3, 6, 6, 6), seed=4)
    relu = LeakyReLU()
    assert np.array_equal(relu.forward_batch(x), np.stack([relu(s) for s in x]))
    pool = MaxPool3D()
    assert np.array_equal(pool.forward_batch(x), np.stack([pool(s) for s in x]))
    up = Upsample3D()
    assert np.array_equal(up.forward_batch(x), np.stack([up(s) for s in x]))


def test_maxpool_forward_batch_rejects_odd_dims():
    with pytest.raises(ValueError):
        MaxPool3D().forward_batch(_batch((2, 3, 5, 6, 6)))


def test_base_layer_fallback_loops_forward():
    class Doubler(Layer):
        def forward(self, x):
            return 2.0 * x

    x = _batch((3, 2, 4, 4, 4), seed=5)
    assert np.array_equal(Doubler().forward_batch(x), 2.0 * x)


def test_unet_forward_batch_matches_loop():
    net = UNet3D(in_channels=8, out_channels=5, base_channels=4, depth=2, seed=1)
    x = _batch((4, 8, 8, 8, 8), seed=6)
    ref = np.stack([net.forward(s) for s in x])
    out = net.forward_batch(x)
    assert out.shape == (4, 5, 8, 8, 8)
    assert np.array_equal(out, ref)


def test_unet_forward_batch_validation():
    net = UNet3D(in_channels=8, out_channels=5, base_channels=2, depth=1, seed=0)
    with pytest.raises(ValueError):
        net.forward_batch(_batch((8, 8, 8, 8)))       # missing batch axis
    with pytest.raises(ValueError):
        net.forward_batch(_batch((2, 4, 8, 8, 8)))    # wrong channels
    with pytest.raises(ValueError):
        net.forward_batch(_batch((2, 8, 7, 7, 7)))    # not divisible by 2^depth


def test_forward_batch_leaves_training_state_usable():
    # A batched inference pass must not corrupt a subsequent backward.
    net = UNet3D(in_channels=2, out_channels=1, base_channels=2, depth=1, seed=2)
    x = _batch((2, 8, 8, 8), seed=7)
    y = net.forward(x)
    net.forward_batch(_batch((3, 2, 8, 8, 8), seed=8))
    y2 = net.forward(x)
    assert np.array_equal(y, y2)
    net.backward(np.ones_like(y2))  # must not raise


def test_inference_engine_predict_batch(tmp_path):
    net = UNet3D(in_channels=8, out_channels=5, base_channels=2, depth=1, seed=3)
    path = tmp_path / "model.npz"
    save_model(net, path)
    engine = InferenceEngine(load_model(path))
    x = _batch((3, 8, 8, 8, 8), seed=9)
    out = engine.predict_batch(x)
    assert out.shape == (3, 5, 8, 8, 8)
    ref = np.stack([engine(s) for s in x])
    assert np.array_equal(out, ref)
