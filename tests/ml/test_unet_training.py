"""U-Net integration: shapes, gradients, training convergence, export."""

import numpy as np
import pytest

from repro.ml.loss import mae_loss, mse_grad, mse_loss
from repro.ml.optim import Adam, SGD
from repro.ml.serialize import InferenceEngine, load_model, save_model
from repro.ml.train import evaluate_model, train_model
from repro.ml.unet import UNet3D


@pytest.fixture
def tiny_unet():
    return UNet3D(in_channels=2, out_channels=1, base_channels=4, depth=1, seed=0)


def test_output_shape(tiny_unet):
    x = np.random.default_rng(0).normal(size=(2, 8, 8, 8))
    out = tiny_unet.forward(x)
    assert out.shape == (1, 8, 8, 8)


def test_paper_configuration_shapes():
    # The paper's 8-channel input / 5-field output (on a smaller grid here).
    net = UNet3D(in_channels=8, out_channels=5, base_channels=4, depth=2, seed=1)
    x = np.random.default_rng(1).normal(size=(8, 8, 8, 8))
    out = net.forward(x)
    assert out.shape == (5, 8, 8, 8)


def test_rejects_bad_input(tiny_unet):
    with pytest.raises(ValueError):
        tiny_unet.forward(np.zeros((3, 8, 8, 8)))  # wrong channels
    with pytest.raises(ValueError):
        tiny_unet.forward(np.zeros((2, 7, 7, 7)))  # not divisible by 2^depth


def test_full_gradient_check():
    # End-to-end input gradient through encoder/skip/decoder paths.
    net = UNet3D(in_channels=1, out_channels=1, base_channels=2, depth=1, seed=2)
    rng = np.random.default_rng(2)
    x = rng.normal(size=(1, 4, 4, 4))
    out = net.forward(x)
    grad_out = rng.normal(size=out.shape)
    analytic = net.backward(grad_out)
    eps = 1e-6
    numeric = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        lp = np.sum(net.forward(x) * grad_out)
        x[idx] = orig - eps
        lm = np.sum(net.forward(x) * grad_out)
        x[idx] = orig
        numeric[idx] = (lp - lm) / (2 * eps)
        it.iternext()
    assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


def test_parameter_count_grows_with_base(tiny_unet):
    big = UNet3D(in_channels=2, out_channels=1, base_channels=8, depth=1, seed=0)
    assert big.n_parameters() > tiny_unet.n_parameters()


def test_overfits_single_sample(tiny_unet):
    rng = np.random.default_rng(3)
    x = rng.normal(size=(2, 8, 8, 8))
    y = rng.normal(size=(1, 8, 8, 8)) * 0.1
    hist = train_model(tiny_unet, [x], [y], epochs=60, lr=3e-3, val_fraction=0.0)
    assert hist.train[-1] < 0.2 * hist.train[0]


def test_learns_identity_map():
    # y = x on smooth random fields (the physically relevant regime: the
    # surrogate's log-density inputs are spatially smooth).  Validation is
    # on held-out fields, so this checks generalization, not memorization.
    from scipy.ndimage import gaussian_filter

    net = UNet3D(in_channels=1, out_channels=1, base_channels=4, depth=1, seed=4)
    rng = np.random.default_rng(4)
    data = [
        gaussian_filter(rng.normal(size=(1, 8, 8, 8)), sigma=(0, 1.5, 1.5, 1.5))
        for _ in range(6)
    ]
    hist = train_model(net, data, data, epochs=60, lr=5e-3, val_fraction=0.3, seed=1)
    assert hist.val[-1] < 0.4 * hist.val[0]


def test_early_stopping():
    net = UNet3D(in_channels=1, out_channels=1, base_channels=2, depth=1, seed=5)
    rng = np.random.default_rng(5)
    # Pure-noise targets: validation cannot improve for long.
    xs = [rng.normal(size=(1, 4, 4, 4)) for _ in range(6)]
    ys = [rng.normal(size=(1, 4, 4, 4)) for _ in range(6)]
    hist = train_model(net, xs, ys, epochs=100, lr=1e-4, patience=3, seed=2)
    assert len(hist.train) < 100


def test_adam_beats_sgd_on_small_problem():
    rng = np.random.default_rng(6)
    x = rng.normal(size=(1, 8, 8, 8))
    y = 0.5 * x
    net_a = UNet3D(1, 1, base_channels=2, depth=1, seed=7)
    net_s = UNet3D(1, 1, base_channels=2, depth=1, seed=7)
    h_a = train_model(net_a, [x], [y], epochs=25, val_fraction=0.0, optimizer=Adam(lr=1e-3))
    h_s = train_model(net_s, [x], [y], epochs=25, val_fraction=0.0,
                      optimizer=SGD(lr=1e-3))
    assert h_a.train[-1] < h_s.train[-1]


def test_loss_functions():
    a = np.array([1.0, 2.0])
    b = np.array([0.0, 0.0])
    assert mse_loss(a, b) == pytest.approx(2.5)
    assert mae_loss(a, b) == pytest.approx(1.5)
    g = mse_grad(a, b)
    assert np.allclose(g, [1.0, 2.0])


def test_train_validates_inputs(tiny_unet):
    with pytest.raises(ValueError):
        train_model(tiny_unet, [np.zeros((2, 8, 8, 8))], [], epochs=1)
    with pytest.raises(ValueError):
        train_model(tiny_unet, [], [], epochs=1)


# ----------------------------------------------------------------- serialize
def test_save_load_roundtrip(tmp_path, tiny_unet):
    rng = np.random.default_rng(8)
    x = rng.normal(size=(2, 8, 8, 8))
    ref = tiny_unet.forward(x)
    path = tmp_path / "model.npz"
    save_model(tiny_unet, path)
    clone = load_model(path)
    assert np.allclose(clone.forward(x), ref)
    assert clone.config() == tiny_unet.config()


def test_inference_engine(tmp_path, tiny_unet):
    rng = np.random.default_rng(9)
    x = rng.normal(size=(2, 8, 8, 8))
    path = tmp_path / "model.npz"
    save_model(tiny_unet, path)
    engine = InferenceEngine.load(path)
    assert engine.in_channels == 2
    assert engine.out_channels == 1
    assert np.allclose(engine(x), tiny_unet.forward(x))
    assert engine.n_parameters() == tiny_unet.n_parameters()


def test_evaluate_model(tiny_unet):
    rng = np.random.default_rng(10)
    xs = [rng.normal(size=(2, 8, 8, 8)) for _ in range(3)]
    ys = [rng.normal(size=(1, 8, 8, 8)) for _ in range(3)]
    val = evaluate_model(tiny_unet, xs, ys)
    assert val > 0


def test_save_load_roundtrip_without_npz_suffix(tmp_path, tiny_unet):
    """np.savez appends .npz; both directions must normalize identically."""
    rng = np.random.default_rng(11)
    x = rng.normal(size=(2, 8, 8, 8))
    ref = tiny_unet.forward(x)
    bare = tmp_path / "model"              # no suffix
    written = save_model(tiny_unet, bare)
    assert written == tmp_path / "model.npz"
    assert written.exists()
    # load through the bare path, the normalized path, and an engine
    assert np.allclose(load_model(bare).forward(x), ref)
    assert np.allclose(load_model(written).forward(x), ref)
    engine = InferenceEngine.load(bare)
    assert np.allclose(engine(x), ref)
    assert engine.model_path == str(written)


def test_save_model_keeps_explicit_npz_suffix(tmp_path, tiny_unet):
    path = tmp_path / "model.npz"
    assert save_model(tiny_unet, path) == path
    assert path.exists()
    assert not (tmp_path / "model.npz.npz").exists()


def test_inference_engine_model_path_none_in_memory(tiny_unet):
    assert InferenceEngine(tiny_unet).model_path is None


def test_early_stop_restores_best_weights():
    """After a plateau stop the model must hold its best-val snapshot."""
    net = UNet3D(in_channels=1, out_channels=1, base_channels=2, depth=1, seed=6)
    rng = np.random.default_rng(6)
    xs = [rng.normal(size=(1, 4, 4, 4)) for _ in range(8)]
    ys = [rng.normal(size=(1, 4, 4, 4)) for _ in range(8)]
    # An absurd learning rate makes later epochs strictly worse, so the
    # last-epoch weights and the best-epoch weights genuinely differ.
    hist = train_model(net, xs, ys, epochs=40, lr=0.5, patience=3, seed=3)
    assert len(hist.val) < 40                       # early stop fired
    assert hist.val[-1] > hist.best_val             # last epoch was worse
    # The restored weights reproduce exactly the recorded best val loss.
    val_idx = np.random.default_rng(3).permutation(8)[: int(round(0.2 * 8))]
    restored_val = float(
        np.mean([mse_loss(net.forward(xs[i]), ys[i]) for i in val_idx])
    )
    assert restored_val == hist.best_val


def test_patience_without_early_stop_still_restores_best():
    """Even when the plateau never fires, the kept model is the best one."""
    net = UNet3D(1, 1, base_channels=2, depth=1, seed=8)
    rng = np.random.default_rng(8)
    xs = [rng.normal(size=(1, 4, 4, 4)) for _ in range(8)]
    ys = [rng.normal(size=(1, 4, 4, 4)) for _ in range(8)]
    hist = train_model(net, xs, ys, epochs=6, lr=0.5, seed=2, patience=100)
    assert len(hist.val) == 6                       # ran to the end
    val_idx = np.random.default_rng(2).permutation(8)[: int(round(0.2 * 8))]
    restored_val = float(
        np.mean([mse_loss(net.forward(xs[i]), ys[i]) for i in val_idx])
    )
    assert restored_val == hist.best_val
