"""Layer correctness: reference implementations and gradient checks."""

import numpy as np
import pytest

from repro.ml.layers import Conv3D, LeakyReLU, MaxPool3D, Sequential, Upsample3D


def _numeric_grad_input(layer, x, grad_out, eps=1e-6):
    """Finite-difference dL/dx for L = sum(forward(x) * grad_out)."""
    num = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        lp = np.sum(layer.forward(x) * grad_out)
        x[idx] = orig - eps
        lm = np.sum(layer.forward(x) * grad_out)
        x[idx] = orig
        num[idx] = (lp - lm) / (2 * eps)
        it.iternext()
    return num


def _check_input_grad(layer, x, rtol=1e-5, atol=1e-7):
    rng = np.random.default_rng(0)
    out = layer.forward(x)
    grad_out = rng.normal(size=out.shape)
    analytic = layer.backward(grad_out)
    layer.forward(x)  # restore caches consumed by the numeric sweep
    numeric = _numeric_grad_input(layer, x.copy(), grad_out)
    assert np.allclose(analytic, numeric, rtol=rtol, atol=atol)


# ------------------------------------------------------------------- Conv3D
def test_conv_identity_kernel():
    conv = Conv3D(1, 1, 3, rng=np.random.default_rng(0))
    conv.weight[:] = 0.0
    conv.weight[0, 0, 1, 1, 1] = 1.0  # delta kernel = identity
    conv.bias[:] = 0.0
    x = np.random.default_rng(1).normal(size=(1, 4, 4, 4))
    assert np.allclose(conv.forward(x), x)


def test_conv_against_brute_force():
    rng = np.random.default_rng(2)
    conv = Conv3D(2, 3, 3, rng=rng)
    x = rng.normal(size=(2, 5, 4, 6))
    out = conv.forward(x)
    # Brute-force correlation with zero padding.
    xp = np.pad(x, ((0, 0), (1, 1), (1, 1), (1, 1)))
    ref = np.zeros_like(out)
    for co in range(3):
        for d in range(5):
            for h in range(4):
                for w in range(6):
                    patch = xp[:, d : d + 3, h : h + 3, w : w + 3]
                    ref[co, d, h, w] = np.sum(patch * conv.weight[co]) + conv.bias[co]
    assert np.allclose(out, ref)


def test_conv_input_gradient():
    rng = np.random.default_rng(3)
    conv = Conv3D(2, 2, 3, rng=rng)
    x = rng.normal(size=(2, 4, 4, 4))
    _check_input_grad(conv, x)


def test_conv_weight_gradient():
    rng = np.random.default_rng(4)
    conv = Conv3D(1, 2, 3, rng=rng)
    x = rng.normal(size=(1, 4, 4, 4))
    out = conv.forward(x)
    grad_out = rng.normal(size=out.shape)
    conv.backward(grad_out)
    analytic_w = conv.dweight.copy()
    analytic_b = conv.dbias.copy()
    eps = 1e-6
    num_w = np.zeros_like(conv.weight)
    it = np.nditer(conv.weight, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = conv.weight[idx]
        conv.weight[idx] = orig + eps
        lp = np.sum(conv.forward(x) * grad_out)
        conv.weight[idx] = orig - eps
        lm = np.sum(conv.forward(x) * grad_out)
        conv.weight[idx] = orig
        num_w[idx] = (lp - lm) / (2 * eps)
        it.iternext()
    assert np.allclose(analytic_w, num_w, rtol=1e-5, atol=1e-7)
    # Bias gradient.
    num_b = np.zeros_like(conv.bias)
    for c in range(len(conv.bias)):
        orig = conv.bias[c]
        conv.bias[c] = orig + eps
        lp = np.sum(conv.forward(x) * grad_out)
        conv.bias[c] = orig - eps
        lm = np.sum(conv.forward(x) * grad_out)
        conv.bias[c] = orig
        num_b[c] = (lp - lm) / (2 * eps)
    assert np.allclose(analytic_b, num_b, rtol=1e-5, atol=1e-7)


def test_conv_1x1():
    rng = np.random.default_rng(5)
    conv = Conv3D(3, 2, 1, rng=rng)
    x = rng.normal(size=(3, 4, 4, 4))
    out = conv.forward(x)
    ref = np.einsum("oc,cdhw->odhw", conv.weight[:, :, 0, 0, 0], x) + conv.bias[
        :, None, None, None
    ]
    assert np.allclose(out, ref)


def test_conv_rejects_even_kernel():
    with pytest.raises(ValueError):
        Conv3D(1, 1, 2)


def test_conv_rejects_wrong_channels():
    conv = Conv3D(2, 1, 3)
    with pytest.raises(ValueError):
        conv.forward(np.zeros((3, 4, 4, 4)))


# ----------------------------------------------------------------- LeakyReLU
def test_leaky_relu_values_and_grad():
    lr = LeakyReLU(slope=0.1)
    x = np.array([[[[-2.0, 3.0]]]])
    out = lr.forward(x)
    assert out[0, 0, 0, 0] == pytest.approx(-0.2)
    assert out[0, 0, 0, 1] == pytest.approx(3.0)
    grad = lr.backward(np.ones_like(x))
    assert grad[0, 0, 0, 0] == pytest.approx(0.1)
    assert grad[0, 0, 0, 1] == pytest.approx(1.0)


# ------------------------------------------------------------------- pooling
def test_maxpool_values():
    x = np.arange(16.0).reshape(2, 2, 2, 2)
    mp = MaxPool3D()
    out = mp.forward(x)
    assert out.shape == (2, 1, 1, 1)
    assert out[0, 0, 0, 0] == 7.0
    assert out[1, 0, 0, 0] == 15.0


def test_maxpool_gradient_routes_to_argmax():
    rng = np.random.default_rng(6)
    x = rng.normal(size=(1, 4, 4, 4))
    mp = MaxPool3D()
    _check_input_grad(mp, x)


def test_maxpool_odd_dims_rejected():
    with pytest.raises(ValueError):
        MaxPool3D().forward(np.zeros((1, 3, 4, 4)))


def test_upsample_shape_and_values():
    x = np.arange(8.0).reshape(1, 2, 2, 2)
    up = Upsample3D()
    out = up.forward(x)
    assert out.shape == (1, 4, 4, 4)
    assert np.all(out[0, :2, :2, :2] == x[0, 0, 0, 0])


def test_upsample_gradient():
    rng = np.random.default_rng(7)
    x = rng.normal(size=(2, 2, 2, 2))
    _check_input_grad(Upsample3D(), x)


def test_pool_then_upsample_identity_on_constant():
    x = np.full((1, 4, 4, 4), 3.14)
    seq = Sequential(MaxPool3D(), Upsample3D())
    assert np.allclose(seq.forward(x), x)


def test_sequential_backward_chains():
    rng = np.random.default_rng(8)
    seq = Sequential(Conv3D(1, 2, 3, rng=rng), LeakyReLU(), Conv3D(2, 1, 3, rng=rng))
    x = rng.normal(size=(1, 4, 4, 4))
    _check_input_grad(seq, x)


def test_sequential_params_namespaced():
    seq = Sequential(Conv3D(1, 2, 3), LeakyReLU(), Conv3D(2, 1, 3))
    names = set(seq.params())
    assert "0.weight" in names and "2.bias" in names
    assert len(names) == 4
