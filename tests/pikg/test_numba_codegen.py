"""The numba codegen target: scalarized loops, both layouts, jit gating."""

import numpy as np
import pytest

from repro.pikg.codegen import (
    generate_numba_kernel,
    generate_numpy_kernel,
    generate_scalar_kernel,
)
from repro.pikg.dsl import CUBIC_DENSITY_DSL, GRAVITY_DSL, parse_kernel
from repro.sph.kernels import CubicSpline

try:
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False


@pytest.fixture(scope="module")
def grav_spec():
    return parse_kernel(GRAVITY_DSL, name="grav")


@pytest.fixture(scope="module")
def dens_spec():
    return parse_kernel(CUBIC_DENSITY_DSL, name="dens")


def _gravity_inputs(n_i=15, n_j=25, seed=0):
    rng = np.random.default_rng(seed)
    i_arrays = {
        "xi": rng.normal(size=(n_i, 3)),
        "eps2_i": np.full(n_i, 0.01),
    }
    j_arrays = {
        "xj": rng.normal(size=(n_j, 3)),
        "m_j": rng.uniform(0.5, 2.0, n_j),
        "eps2_j": np.full(n_j, 0.01),
    }
    return i_arrays, j_arrays


def test_tile_layout_matches_numpy_target(grav_spec):
    i_arrays, j_arrays = _gravity_inputs()
    ref = generate_numpy_kernel(grav_spec)(i_arrays, j_arrays)
    out = generate_numba_kernel(grav_spec, layout="tile")(i_arrays, j_arrays)
    np.testing.assert_allclose(out["f"], ref["f"], rtol=1e-12)


def test_tile_layout_matches_scalar_target(grav_spec):
    i_arrays, j_arrays = _gravity_inputs(seed=3)
    ref = generate_scalar_kernel(grav_spec)(i_arrays, j_arrays)
    out = generate_numba_kernel(grav_spec, layout="tile")(i_arrays, j_arrays)
    np.testing.assert_allclose(out["f"], ref["f"], rtol=1e-12)


def test_pairs_layout_scatters_like_tile(dens_spec):
    rng = np.random.default_rng(4)
    n = 40
    pos = rng.random((n, 3)) * 2.0
    h = np.full(n, 0.8)
    mass = rng.uniform(0.5, 1.5, n)
    i_arrays = {"xi": pos, "hinv_i": 1.0 / h}
    j_arrays = {"xj": pos, "m_j": mass}
    # Dense tile = every (i, j) pair; the pairs layout over the full edge
    # list must reproduce it exactly (compact support kills far pairs).
    tile = generate_numba_kernel(dens_spec, layout="tile")(i_arrays, j_arrays)
    ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    pairs = generate_numba_kernel(dens_spec, layout="pairs")(
        i_arrays, j_arrays, ii.ravel(), jj.ravel()
    )
    np.testing.assert_allclose(pairs["rho"], tile["rho"], rtol=1e-12)


def test_cubic_dsl_matches_library_kernel(dens_spec):
    rng = np.random.default_rng(5)
    n = 30
    pos = rng.random((n, 3)) * 2.0
    h = np.full(n, 0.9)
    mass = rng.uniform(0.5, 1.5, n)
    out = generate_numba_kernel(dens_spec, layout="tile")(
        {"xi": pos, "hinv_i": 1.0 / h}, {"xj": pos, "m_j": mass}
    )
    kernel = CubicSpline()
    r = np.linalg.norm(pos[:, None, :] - pos[None, :, :], axis=2)
    ref = (kernel.value(r, h[:, None]) * mass[None, :]).sum(axis=1)
    np.testing.assert_allclose(out["rho"], ref, rtol=1e-12)


def test_generated_source_is_scalarized(grav_spec):
    fn = generate_numba_kernel(grav_spec, layout="tile")
    assert fn.layout == "tile"
    assert fn.jitted == HAVE_NUMBA
    # Components unrolled into scalars, PIKG-style; no vector temporaries.
    for frag in ("xi_0", "xi_1", "xi_2", "rij_0", "_acc_f_0", "for _j in range"):
        assert frag in fn.source
    assert fn.spec is grav_spec


def test_unknown_layout_rejected(grav_spec):
    with pytest.raises(ValueError):
        generate_numba_kernel(grav_spec, layout="warp")
