"""PIKG: DSL parsing, generated-kernel correctness, Remez/PPA accuracy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gravity.kernels import accel_between
from repro.pikg.codegen import generate_numpy_kernel, generate_scalar_kernel
from repro.pikg.dsl import GRAVITY_DSL, parse_kernel
from repro.pikg.ppa import PPATable, remez_minimax
from repro.sph.kernels import CubicSpline


# ---------------------------------------------------------------------- DSL
def test_parse_gravity_kernel():
    spec = parse_kernel(GRAVITY_DSL, name="grav")
    assert spec.i_vars == {"xi": 3, "eps2_i": 1}
    assert spec.j_vars == {"xj": 3, "m_j": 1, "eps2_j": 1}
    assert spec.accumulators == {"f": 3}
    assert len(spec.statements) == 5


def test_gravity_op_count_near_paper():
    # Table 4 quotes 27 operations for the gravity kernel; our counting
    # convention should land in the same ballpark.
    spec = parse_kernel(GRAVITY_DSL)
    ops = spec.operation_count()
    assert 20 <= ops <= 35


def test_rejects_unknown_intrinsic():
    with pytest.raises(ValueError):
        parse_kernel("i: a\nj: b\nacc: c\nc += evil(a, b)")


def test_rejects_attribute_access():
    with pytest.raises(ValueError):
        parse_kernel("i: a\nj: b\nacc: c\nc += a.__class__")


def test_rejects_accumulate_on_temporary():
    with pytest.raises(ValueError):
        parse_kernel("i: a\nj: b\nacc: c\nt += a * b")


def test_rejects_empty():
    with pytest.raises(ValueError):
        parse_kernel("i: a\nj: b\nacc: c\n")


# ------------------------------------------------------------------ codegen
@pytest.fixture(scope="module")
def grav_spec():
    return parse_kernel(GRAVITY_DSL, name="grav")


def _gravity_inputs(n_i=20, n_j=30, seed=0):
    rng = np.random.default_rng(seed)
    i_arrays = {
        "xi": rng.normal(0, 10, (n_i, 3)),
        "eps2_i": np.full(n_i, 0.25),
    }
    j_arrays = {
        "xj": rng.normal(0, 10, (n_j, 3)),
        "m_j": rng.uniform(0.5, 2.0, n_j),
        "eps2_j": np.full(n_j, 0.25),
    }
    return i_arrays, j_arrays


def test_numpy_kernel_matches_reference_gravity(grav_spec):
    fn = generate_numpy_kernel(grav_spec)
    i_arrays, j_arrays = _gravity_inputs()
    out = fn(i_arrays, j_arrays)["f"]
    # Reference: the hand-written library kernel, without G and unsummed
    # self-exclusion (sources are distinct points here).
    ref = accel_between(
        i_arrays["xi"],
        np.sqrt(i_arrays["eps2_i"]),
        j_arrays["xj"],
        j_arrays["m_j"],
        np.sqrt(j_arrays["eps2_j"]),
        g=1.0,
    )
    assert np.allclose(out, ref, rtol=1e-12)


def test_scalar_and_numpy_backends_agree(grav_spec):
    f_np = generate_numpy_kernel(grav_spec)
    f_sc = generate_scalar_kernel(grav_spec)
    i_arrays, j_arrays = _gravity_inputs(n_i=5, n_j=7, seed=1)
    a = f_np(i_arrays, j_arrays)
    b = f_sc(i_arrays, j_arrays)
    assert np.allclose(a["f"], b["f"], rtol=1e-12)


def test_scalar_accumulator_kernel():
    spec = parse_kernel(
        "i: xi[3]\nj: xj[3], m_j\nacc: pot\n"
        "rij = xi - xj\n"
        "r2 = dot(rij, rij) + 0.01\n"
        "pot += m_j * rsqrt(r2)\n",
        name="potk",
    )
    f_np = generate_numpy_kernel(spec)
    f_sc = generate_scalar_kernel(spec)
    i_arrays, j_arrays = _gravity_inputs(n_i=4, n_j=6, seed=2)
    del j_arrays["eps2_j"]
    del i_arrays["eps2_i"]
    a = f_np(i_arrays, j_arrays)["pot"]
    b = f_sc(i_arrays, j_arrays)["pot"]
    assert a.shape == (4,)
    assert np.allclose(a, b, rtol=1e-12)


def test_generated_source_is_inspectable(grav_spec):
    fn = generate_numpy_kernel(grav_spec)
    assert "def grav(" in fn.source
    assert "SoA" in fn.source
    assert fn.spec is grav_spec


# --------------------------------------------------------------------- PPA
def test_remez_exact_for_polynomials():
    # A cubic is reproduced exactly by a degree-3 minimax fit.
    f = lambda x: 2.0 - x + 0.5 * x**2 - 0.25 * x**3
    coeffs, err = remez_minimax(f, 0.0, 1.0, 3)
    assert err < 1e-12
    assert np.allclose(coeffs, [2.0, -1.0, 0.5, -0.25], atol=1e-10)


def test_remez_error_decreases_with_degree():
    f = np.exp
    errs = [remez_minimax(f, 0.0, 1.0, d)[1] for d in (1, 2, 3, 4)]
    assert all(a > b for a, b in zip(errs, errs[1:]))


def test_remez_beats_taylor():
    # Minimax should outperform the Taylor polynomial of the same degree.
    f = np.exp
    _, err_minimax = remez_minimax(f, 0.0, 1.0, 3)
    xs = np.linspace(0, 1, 2001)
    taylor = 1 + xs + xs**2 / 2 + xs**3 / 6
    err_taylor = np.max(np.abs(taylor - np.exp(xs)))
    assert err_minimax < 0.5 * err_taylor


def test_ppa_table_accuracy_on_sph_kernel():
    # The production use case: approximate the cubic-spline kernel profile.
    k = CubicSpline()
    f = lambda q: k.w(np.asarray(q))
    table = PPATable.fit(f, x_max=1.0, n_segments=8, degree=3)
    q = np.linspace(0, 0.999, 5000)
    assert np.max(np.abs(table(q) - f(q))) < 5e-4
    assert table.max_error < 5e-4


def test_ppa_more_segments_more_accurate():
    k = CubicSpline()
    f = lambda q: k.w(np.asarray(q))
    e4 = PPATable.fit(f, 1.0, n_segments=4, degree=2).max_error
    e16 = PPATable.fit(f, 1.0, n_segments=16, degree=2).max_error
    assert e16 < e4


def test_ppa_flops_accounting():
    t = PPATable.fit(np.exp, 1.0, n_segments=4, degree=3)
    assert t.flops_per_eval() == 9


@given(st.integers(2, 6), st.integers(2, 4))
@settings(max_examples=10, deadline=None)
def test_ppa_error_bound_property(n_segments, degree):
    table = PPATable.fit(np.sin, 2.0, n_segments=n_segments, degree=degree)
    x = np.linspace(0, 1.999, 1000)
    assert np.max(np.abs(table(x) - np.sin(x))) <= table.max_error * 1.5 + 1e-12
