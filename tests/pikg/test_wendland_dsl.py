"""The Wendland density kernel written in the PIKG DSL vs the library SPH."""

import numpy as np
import pytest

from repro.pikg.codegen import generate_numpy_kernel, generate_scalar_kernel
from repro.pikg.dsl import WENDLAND_DENSITY_DSL, parse_kernel
from repro.sph.kernels import WendlandC2


@pytest.fixture(scope="module")
def spec():
    return parse_kernel(WENDLAND_DENSITY_DSL, name="wendland_density")


def _inputs(n_i=30, n_j=60, seed=0, h=1.5):
    rng = np.random.default_rng(seed)
    i_arrays = {
        "xi": rng.uniform(0, 3, (n_i, 3)),
        "hinv_i": np.full(n_i, 1.0 / h),
    }
    j_arrays = {
        "xj": rng.uniform(0, 3, (n_j, 3)),
        "m_j": rng.uniform(0.5, 2.0, n_j),
    }
    return i_arrays, j_arrays, h


def test_generated_density_matches_library_kernel(spec):
    fn = generate_numpy_kernel(spec)
    i_arrays, j_arrays, h = _inputs()
    rho = fn(i_arrays, j_arrays)["rho"]
    # Reference: explicit Wendland C2 sum.
    k = WendlandC2()
    d = i_arrays["xi"][:, None, :] - j_arrays["xj"][None, :, :]
    r = np.linalg.norm(d, axis=2)
    ref = np.sum(j_arrays["m_j"][None, :] * k.value(r, np.full_like(r, h)), axis=1)
    assert np.allclose(rho, ref, rtol=1e-10)


def test_scalar_backend_agrees(spec):
    f_np = generate_numpy_kernel(spec)
    f_sc = generate_scalar_kernel(spec)
    i_arrays, j_arrays, _ = _inputs(n_i=6, n_j=10, seed=1)
    assert np.allclose(
        f_np(i_arrays, j_arrays)["rho"], f_sc(i_arrays, j_arrays)["rho"], rtol=1e-10
    )


def test_compact_support_is_branch_free(spec):
    # Sources beyond the support contribute exactly zero through max(1-q,0).
    fn = generate_numpy_kernel(spec)
    i_arrays = {"xi": np.zeros((1, 3)), "hinv_i": np.array([1.0])}
    j_arrays = {"xj": np.array([[5.0, 0.0, 0.0]]), "m_j": np.array([1e6])}
    assert fn(i_arrays, j_arrays)["rho"][0] == 0.0


def test_density_op_count_near_paper(spec):
    # Table 4 lists 73 ops for density/pressure; the density-only DSL form
    # should land below that but the same order.
    ops = spec.operation_count()
    assert 15 <= ops <= 73


def test_normalization_constant_in_dsl():
    # The literal 3.3422... must be sigma = 21/(2 pi).
    assert 21.0 / (2.0 * np.pi) == pytest.approx(3.3422538049298023, rel=1e-12)
