"""Octree structural invariants and walk correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdps.tree import Octree
from tests.conftest import plummer_positions


def _build(n=300, leaf_size=8, seed=0):
    rng = np.random.default_rng(seed)
    pos = plummer_positions(n, a=30.0, rng=rng)
    mass = rng.uniform(0.5, 2.0, n)
    return Octree.build(pos, mass, leaf_size=leaf_size), pos, mass


def test_root_covers_everything():
    tree, pos, mass = _build()
    assert tree.node_count[0] == len(pos)
    assert tree.node_mass[0] == pytest.approx(mass.sum())
    com = (mass[:, None] * pos).sum(axis=0) / mass.sum()
    assert np.allclose(tree.node_com[0], com)


def test_children_partition_parent():
    tree, _, _ = _build()
    for node in range(tree.n_nodes):
        if tree.node_is_leaf[node]:
            continue
        kids = tree.node_children[node]
        kids = kids[kids >= 0]
        assert kids.size >= 1
        assert tree.node_count[kids].sum() == tree.node_count[node]
        assert tree.node_mass[kids].sum() == pytest.approx(tree.node_mass[node])


def test_leaves_respect_leaf_size():
    tree, _, _ = _build(leaf_size=8)
    leaves = np.flatnonzero(tree.node_is_leaf)
    assert np.all(tree.node_count[leaves] <= 8)


def test_leaves_partition_particles():
    tree, pos, _ = _build()
    leaves = np.flatnonzero(tree.node_is_leaf)
    covered = np.zeros(len(pos), dtype=int)
    for leaf in leaves:
        s, c = tree.node_first[leaf], tree.node_count[leaf]
        covered[s : s + c] += 1
    assert np.all(covered == 1)


def test_particles_inside_their_nodes():
    tree, _, _ = _build()
    for node in range(tree.n_nodes):
        s, c = tree.node_first[node], tree.node_count[node]
        p = tree.sorted_pos[s : s + c]
        lo = tree.node_center[node] - 0.5 * tree.node_side[node] * (1 + 1e-9)
        hi = tree.node_center[node] + 0.5 * tree.node_side[node] * (1 + 1e-9)
        assert np.all(p >= lo - 1e-9) and np.all(p <= hi + 1e-9)


def test_walk_far_box_accepts_root_or_few_nodes():
    tree, pos, mass = _build()
    far_lo = np.array([1e6, 1e6, 1e6])
    far_hi = far_lo + 1.0
    nodes, parts = tree.walk_box(far_lo, far_hi, theta=0.5)
    assert parts.size == 0
    # All mass should be represented by the accepted monopoles.
    assert tree.node_mass[nodes].sum() == pytest.approx(mass.sum())
    assert len(nodes) <= 8


def test_walk_overlapping_box_opens_to_particles():
    tree, pos, mass = _build()
    lo, hi = pos.min(axis=0), pos.max(axis=0)
    nodes, parts = tree.walk_box(lo, hi, theta=0.5)
    # A box covering everything can never satisfy the MAC (d = 0).
    assert nodes.size == 0
    assert sorted(parts.tolist()) == list(range(len(pos)))


def test_walk_mass_conservation_any_theta():
    tree, pos, mass = _build(n=500)
    for theta in (0.2, 0.5, 1.0):
        nodes, parts = tree.walk_box(
            np.array([40.0, 40.0, 40.0]), np.array([60.0, 60.0, 60.0]), theta
        )
        total = tree.node_mass[nodes].sum() + mass[parts].sum()
        assert total == pytest.approx(mass.sum()), f"theta={theta}"


def test_walk_no_duplicate_particles():
    tree, pos, _ = _build(n=400)
    nodes, parts = tree.walk_box(
        np.array([0.0, 0.0, 0.0]), np.array([10.0, 10.0, 10.0]), 0.6
    )
    assert len(np.unique(parts)) == len(parts)


def test_group_slices_cover_all():
    tree, pos, _ = _build(n=333)
    slices = tree.group_slices(50)
    assert slices[0][0] == 0
    assert slices[-1][1] == len(pos)
    for (_s0, e0), (s1, _e1) in zip(slices, slices[1:]):
        assert e0 == s1
    assert all(e - s <= 50 for s, e in slices)


def test_single_particle_tree():
    tree = Octree.build(np.array([[1.0, 2.0, 3.0]]), np.array([5.0]))
    assert tree.n_nodes == 1
    assert tree.node_is_leaf[0]
    assert tree.node_mass[0] == 5.0


def test_coincident_particles_terminate():
    # Identical positions cannot be separated by subdividing; the max-depth
    # guard must stop the build.
    pos = np.zeros((20, 3))
    tree = Octree.build(pos, np.ones(20), leaf_size=4)
    assert tree.node_count[0] == 20


@given(st.integers(10, 200), st.integers(2, 32))
@settings(max_examples=20, deadline=None)
def test_tree_mass_invariant_property(n, leaf_size):
    rng = np.random.default_rng(n * 31 + leaf_size)
    pos = rng.normal(0.0, 10.0, (n, 3))
    mass = rng.uniform(0.1, 5.0, n)
    tree = Octree.build(pos, mass, leaf_size=leaf_size)
    assert tree.node_mass[0] == pytest.approx(mass.sum())
    leaves = np.flatnonzero(tree.node_is_leaf)
    assert tree.node_count[leaves].sum() == n
