"""Snapshot I/O round trips and forward compatibility."""

import numpy as np
import pytest

from repro.core.integrator import IntegratorConfig
from repro.core.simulation import GalaxySimulation
from repro.fdps.io import (
    load_simulation_state,
    load_snapshot,
    save_simulation,
    save_snapshot,
)
from repro.fdps.particles import ParticleSet


def test_roundtrip_preserves_all_fields(plummer_ps, tmp_path):
    p = tmp_path / "snap.npz"
    save_snapshot(plummer_ps, p, time=3.5, step=17)
    back, header = load_snapshot(p)
    assert header["time"] == 3.5
    assert header["step"] == 17
    assert len(back) == len(plummer_ps)
    for name, arr in plummer_ps.data.items():
        assert np.array_equal(back.data[name], arr), name


def test_uncompressed_roundtrip(plummer_ps, tmp_path):
    p = tmp_path / "snap_raw.npz"
    save_snapshot(plummer_ps, p, compressed=False)
    back, _ = load_snapshot(p)
    assert np.array_equal(back.pos, plummer_ps.pos)


def test_missing_field_gets_default(plummer_ps, tmp_path):
    # Simulate an old snapshot without the 'tsn' column.
    p = tmp_path / "old.npz"
    save_snapshot(plummer_ps, p)
    import numpy as np_mod

    with np_mod.load(p) as data:
        payload = {k: data[k] for k in data.files if k != "field/tsn"}
    np_mod.savez(tmp_path / "old2.npz", **payload)
    back, _ = load_snapshot(tmp_path / "old2.npz")
    assert np.all(np.isinf(back.tsn))  # the registry default


def test_unknown_field_is_skipped(plummer_ps, tmp_path):
    p = tmp_path / "future.npz"
    save_snapshot(plummer_ps, p)
    import numpy as np_mod

    with np_mod.load(p) as data:
        payload = {k: data[k] for k in data.files}
    payload["field/quantum_flux"] = np.ones(len(plummer_ps))
    np_mod.savez(tmp_path / "future2.npz", **payload)
    back, _ = load_snapshot(tmp_path / "future2.npz")
    assert len(back) == len(plummer_ps)


def test_corrupt_length_rejected(plummer_ps, tmp_path):
    p = tmp_path / "bad.npz"
    save_snapshot(plummer_ps, p)
    import numpy as np_mod

    with np_mod.load(p) as data:
        payload = {k: data[k] for k in data.files}
    payload["field/mass"] = np.ones(3)  # wrong row count
    np_mod.savez(tmp_path / "bad2.npz", **payload)
    with pytest.raises(ValueError):
        load_snapshot(tmp_path / "bad2.npz")


def test_simulation_checkpoint(tmp_path):
    from repro.sn.turbulence import make_turbulent_box

    box = make_turbulent_box(n_per_side=6, side=20.0, seed=1)
    cfg = IntegratorConfig(enable_cooling=False, enable_star_formation=False,
                           self_gravity=False)
    sim = GalaxySimulation(box, dt=1e-3, n_pool=3, config=cfg, surrogate_grid=8)
    sim.run(3)
    p = tmp_path / "ckpt.npz"
    save_simulation(sim, p)
    ps, header = load_simulation_state(p)
    assert header["step"] == 3
    assert header["time"] == pytest.approx(3e-3)
    assert header["extra"]["dt"] == pytest.approx(1e-3)
    assert np.array_equal(np.sort(ps.pid), np.sort(sim.ps.pid))

    # Restarting from the checkpoint continues cleanly.
    sim2 = GalaxySimulation(ps, dt=header["extra"]["dt"], n_pool=3,
                            config=cfg, surrogate_grid=8)
    sim2.integrator.time = header["time"]
    sim2.integrator.step_count = header["step"]
    sim2.run(2)
    assert sim2.step_count == 5


def test_empty_set_roundtrip(tmp_path):
    p = tmp_path / "empty.npz"
    save_snapshot(ParticleSet.empty(0), p)
    back, header = load_snapshot(p)
    assert len(back) == 0
    assert header["n_particles"] == 0


# ---------------------------------------------------------------- atomicity
def test_save_appends_npz_returns_path_and_leaves_no_temp(plummer_ps, tmp_path):
    out = save_snapshot(plummer_ps, tmp_path / "ckpt")
    assert out == tmp_path / "ckpt.npz"
    assert out.exists() and not (tmp_path / "ckpt").exists()
    assert [f for f in tmp_path.iterdir() if f.name.startswith(".")] == []


def _save_then_die(ps_arrays, path):
    """Child target: SIGKILL itself after writing the temp bytes but
    *before* the rename — the exact torn-writer window atomicity closes."""
    import os
    import signal

    from repro.fdps import io as io_mod

    real_fsync = os.fsync

    def fsync_then_die(fd):
        real_fsync(fd)
        os.kill(os.getpid(), signal.SIGKILL)

    os.fsync = fsync_then_die
    ps = ParticleSet.from_arrays(**ps_arrays)
    io_mod.save_snapshot(ps, path, time=9.9, step=99)


def test_writer_killed_mid_save_leaves_previous_checkpoint_intact(
    plummer_ps, tmp_path
):
    import multiprocessing as mp
    import signal

    final = save_snapshot(plummer_ps, tmp_path / "ckpt", time=1.0, step=5)
    arrays = {
        "pos": plummer_ps.pos, "mass": plummer_ps.mass,
        "pid": plummer_ps.pid, "ptype": plummer_ps.ptype,
    }
    ctx = mp.get_context("fork")
    proc = ctx.Process(target=_save_then_die, args=(arrays, str(final)))
    proc.start()
    proc.join(30)
    assert proc.exitcode == -signal.SIGKILL
    back, header = load_snapshot(final)       # old checkpoint, not a torn file
    assert header["step"] == 5 and header["time"] == 1.0
    for name, arr in plummer_ps.data.items():
        assert np.array_equal(back.data[name], arr), name


def test_failed_save_cleans_temp_and_keeps_previous(
    plummer_ps, tmp_path, monkeypatch
):
    final = save_snapshot(plummer_ps, tmp_path / "ckpt", step=1)

    def boom(fh, **payload):
        fh.write(b"partial garbage")
        raise RuntimeError("disk full")

    monkeypatch.setattr("repro.fdps.io.np.savez_compressed", boom)
    with pytest.raises(RuntimeError, match="disk full"):
        save_snapshot(plummer_ps, tmp_path / "ckpt", step=2)
    _, header = load_snapshot(final)
    assert header["step"] == 1
    assert [f for f in tmp_path.iterdir() if f.name.startswith(".")] == []
