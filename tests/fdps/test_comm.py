"""Simulated MPI: delivery semantics, torus metric, 3D alltoallv equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdps.comm import SimComm, TorusTopology


def _random_send_matrix(p, rng, empty_prob=0.3):
    send = [[None] * p for _ in range(p)]
    for s in range(p):
        for d in range(p):
            if rng.uniform() > empty_prob:
                send[s][d] = rng.normal(size=rng.integers(1, 20)).astype(np.float64)
    return send


def test_alltoallv_transposes():
    p = 4
    comm = SimComm(p)
    send = [[np.array([float(s * 10 + d)]) for d in range(p)] for s in range(p)]
    recv = comm.alltoallv(send)
    for d in range(p):
        for s in range(p):
            assert recv[d][s][0] == s * 10 + d


def test_alltoallv_none_passthrough():
    comm = SimComm(2)
    send = [[None, np.ones(3)], [None, None]]
    recv = comm.alltoallv(send)
    assert recv[1][0].sum() == 3.0
    assert recv[0][0] is None and recv[0][1] is None


def test_torus_hops_wraparound():
    topo = TorusTopology((4, 4, 4))
    a = topo.rank((0, 0, 0))
    b = topo.rank((3, 0, 0))
    assert topo.hops(a, b) == 1  # wraps around
    c = topo.rank((2, 2, 2))
    assert topo.hops(a, c) == 6


def test_torus_coords_roundtrip():
    topo = TorusTopology((3, 4, 5))
    for r in range(topo.n_ranks):
        assert topo.rank(topo.coords(r)) == r


@pytest.mark.parametrize("dims", [(2, 2, 2), (3, 2, 2), (4, 1, 2)])
def test_3d_alltoallv_matches_flat(dims):
    topo = TorusTopology(dims)
    p = topo.n_ranks
    rng = np.random.default_rng(p)
    comm = SimComm(p, topology=topo)
    send = _random_send_matrix(p, rng)
    flat = SimComm(p, topology=topo).alltoallv(send)
    routed = comm.alltoallv_3d(send)
    for d in range(p):
        for s in range(p):
            if flat[d][s] is None:
                assert routed[d][s] is None
            else:
                assert np.array_equal(flat[d][s], routed[d][s])


@given(st.integers(2, 3), st.integers(1, 3), st.integers(1, 3), st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_3d_alltoallv_delivery_property(qx, qy, qz, seed):
    topo = TorusTopology((qx, qy, qz))
    p = topo.n_ranks
    rng = np.random.default_rng(seed)
    comm = SimComm(p, topology=topo)
    send = _random_send_matrix(p, rng, empty_prob=0.5)
    routed = comm.alltoallv_3d(send)
    for d in range(p):
        for s in range(p):
            ref = send[s][d]
            if ref is None:
                assert routed[d][s] is None
            else:
                assert np.array_equal(routed[d][s], ref)


def test_3d_alltoallv_fewer_peers_per_phase():
    # The point of the algorithm: per-rank peer count per phase is the line
    # length (p^{1/3}), so total distinct messages shrink vs flat all-to-all.
    topo = TorusTopology((4, 4, 4))
    p = topo.n_ranks
    send = [
        [np.ones(4) if s != d else None for d in range(p)] for s in range(p)
    ]
    flat_comm = SimComm(p, topology=topo)
    flat_comm.alltoallv(send)
    torus_comm = SimComm(p, topology=topo)
    torus_comm.alltoallv_3d(send)
    flat_msgs = flat_comm.stats["alltoallv"].n_messages
    routed_msgs = torus_comm.stats["alltoallv_3d"].n_messages
    assert flat_msgs == p * (p - 1)
    # 3 phases x p ranks x (q-1) peers = 3 * 64 * 3 = 576 < 4032.
    assert routed_msgs <= 3 * p * (max(topo.dims) - 1)
    assert routed_msgs < flat_msgs


def test_stats_byte_accounting():
    comm = SimComm(2)
    send = [[None, np.zeros(10)], [np.zeros(5), None]]
    comm.alltoallv(send)
    st_ = comm.stats["alltoallv"]
    assert st_.bytes_total == 15 * 8
    assert st_.n_messages == 2
    assert st_.max_bytes_per_rank == 80


def test_p2p_send_recv_tags():
    comm = SimComm(3)
    comm.send(0, 2, np.array([1.0]), tag=7)
    comm.send(1, 2, np.array([2.0]), tag=9)
    assert comm.recv(2, tag=9)[0] == 2.0
    assert comm.recv(2, src=0)[0] == 1.0
    assert comm.recv(2) is None
    assert comm.pending(2) == 0


def test_split_main_and_pool():
    comm = SimComm(6)
    colors = [0, 0, 0, 0, 1, 1]  # 4 main + 2 pool
    subs = comm.split(colors)
    assert subs[0].size == 4
    assert subs[1].size == 2
    assert subs[1].world_rank(0) == 4
    subs[1].send(0, 1, np.array([3.0]))
    assert subs[1].recv(1)[0] == 3.0


def test_allreduce_sum():
    comm = SimComm(3)
    vals = [np.array([1.0, 2.0]), np.array([10.0, 20.0]), np.array([100.0, 200.0])]
    out = comm.allreduce_sum(vals)
    assert np.array_equal(out, [111.0, 222.0])
