"""Morton key encode/decode invariants, including hypothesis round-trips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdps.morton import (
    MORTON_BITS,
    morton_decode,
    morton_encode,
    morton_keys,
    quantize,
)


def test_encode_decode_roundtrip_small():
    ix = np.array([0, 1, 2, 5, 100, (1 << MORTON_BITS) - 1], dtype=np.int64)
    iy = np.array([0, 3, 7, 2, 50, 0], dtype=np.int64)
    iz = np.array([0, 2, 1, 9, 25, (1 << MORTON_BITS) - 1], dtype=np.int64)
    dx, dy, dz = morton_decode(morton_encode(ix, iy, iz))
    assert np.array_equal(dx, ix.astype(np.uint64))
    assert np.array_equal(dy, iy.astype(np.uint64))
    assert np.array_equal(dz, iz.astype(np.uint64))


@given(
    st.lists(
        st.tuples(
            st.integers(0, (1 << MORTON_BITS) - 1),
            st.integers(0, (1 << MORTON_BITS) - 1),
            st.integers(0, (1 << MORTON_BITS) - 1),
        ),
        min_size=1,
        max_size=64,
    )
)
@settings(max_examples=50, deadline=None)
def test_encode_decode_roundtrip_property(coords):
    arr = np.asarray(coords, dtype=np.int64)
    dx, dy, dz = morton_decode(morton_encode(arr[:, 0], arr[:, 1], arr[:, 2]))
    assert np.array_equal(dx, arr[:, 0].astype(np.uint64))
    assert np.array_equal(dy, arr[:, 1].astype(np.uint64))
    assert np.array_equal(dz, arr[:, 2].astype(np.uint64))


def test_keys_are_unique_for_distinct_cells():
    ix, iy, iz = np.meshgrid(np.arange(8), np.arange(8), np.arange(8), indexing="ij")
    keys = morton_encode(ix.ravel(), iy.ravel(), iz.ravel())
    assert len(np.unique(keys)) == 512


def test_locality_first_octant():
    # All points in the low half of the cube share a zero top bit-triple.
    lo, hi = np.zeros(3), np.ones(3)
    pos = np.random.default_rng(0).uniform(0.0, 0.499, (100, 3))
    keys = morton_keys(pos, lo, hi)
    top = keys >> np.uint64(3 * (MORTON_BITS - 1))
    assert np.all(top == 0)


def test_quantize_clips_to_box():
    lo, hi = np.zeros(3), np.ones(3)
    pos = np.array([[-5.0, 0.5, 2.0]])
    ix, iy, iz = quantize(pos, lo, hi)
    assert ix[0] == 0
    assert iz[0] == (1 << MORTON_BITS) - 1


def test_sorted_keys_group_spatially():
    # After sorting by key, adjacent particles should be spatially closer on
    # average than random pairs (the property interaction groups rely on).
    rng = np.random.default_rng(1)
    pos = rng.uniform(0, 1, (2000, 3))
    keys = morton_keys(pos, np.zeros(3), np.ones(3))
    order = np.argsort(keys)
    sorted_pos = pos[order]
    adjacent = np.linalg.norm(np.diff(sorted_pos, axis=0), axis=1).mean()
    shuffled = pos[rng.permutation(2000)]
    random_pairs = np.linalg.norm(np.diff(shuffled, axis=0), axis=1).mean()
    assert adjacent < 0.5 * random_pairs
