"""ParticleSet container semantics."""

import numpy as np
import pytest

from repro.fdps.particles import FIELDS, ParticleSet, ParticleType


def test_empty_allocates_all_fields():
    ps = ParticleSet.empty(10)
    assert len(ps) == 10
    for name in FIELDS:
        assert name in ps.data
        assert len(ps.data[name]) == 10


def test_from_arrays_rejects_unknown_field():
    with pytest.raises(KeyError):
        ParticleSet.from_arrays(pos=np.zeros((3, 3)), bogus=np.zeros(3))


def test_from_arrays_requires_pos():
    with pytest.raises(KeyError):
        ParticleSet.from_arrays(mass=np.ones(3))


def test_select_copies(plummer_ps):
    sub = plummer_ps.select(np.arange(10))
    sub.mass[:] = -1.0
    assert np.all(plummer_ps.mass[:10] == 10.0)


def test_type_masks(plummer_ps):
    assert plummer_ps.where_type(ParticleType.DARK_MATTER).all()
    assert len(plummer_ps.gas()) == 0
    assert len(plummer_ps.dark_matter()) == len(plummer_ps)


def test_append_concatenates(plummer_ps):
    both = plummer_ps.append(plummer_ps)
    assert len(both) == 2 * len(plummer_ps)
    assert both.total_mass() == pytest.approx(2 * plummer_ps.total_mass())


def test_remove(plummer_ps):
    mask = np.zeros(len(plummer_ps), dtype=bool)
    mask[:100] = True
    out = plummer_ps.remove(mask)
    assert len(out) == len(plummer_ps) - 100


def test_reorder_keeps_columns_aligned(plummer_ps):
    pid_of_first = plummer_ps.pid[0]
    pos_of_first = plummer_ps.pos[0].copy()
    order = np.random.default_rng(0).permutation(len(plummer_ps))
    plummer_ps.reorder(order)
    where = np.flatnonzero(plummer_ps.pid == pid_of_first)[0]
    assert np.array_equal(plummer_ps.pos[where], pos_of_first)


def test_replace_by_pid_overwrites_matching():
    ps = ParticleSet.from_arrays(pos=np.zeros((5, 3)), pid=np.arange(5))
    rep = ParticleSet.from_arrays(
        pos=np.ones((2, 3)) * 9.0, pid=np.array([1, 3])
    )
    rep.u[:] = 77.0
    n = ps.replace_by_pid(rep)
    assert n == 2
    assert np.all(ps.pos[1] == 9.0)
    assert np.all(ps.pos[3] == 9.0)
    assert ps.u[1] == 77.0
    assert np.all(ps.pos[0] == 0.0)


def test_replace_by_pid_ignores_missing_ids():
    ps = ParticleSet.from_arrays(pos=np.zeros((3, 3)), pid=np.array([10, 20, 30]))
    rep = ParticleSet.from_arrays(pos=np.ones((2, 3)), pid=np.array([20, 999]))
    assert ps.replace_by_pid(rep) == 1
    assert np.all(ps.pos[1] == 1.0)


def test_replace_by_pid_empty_replacement():
    ps = ParticleSet.empty(3)
    assert ps.replace_by_pid(ParticleSet.empty(0)) == 0


def test_replace_by_pid_survives_reordering():
    # The whole point of ID-based replacement: domain decomposition may have
    # shuffled particles while the pool node was predicting.
    ps = ParticleSet.from_arrays(pos=np.zeros((6, 3)), pid=np.arange(6))
    rep = ps.select(np.array([2, 4]))
    rep.pos[:] = 5.0
    ps.reorder(np.array([5, 3, 1, 0, 2, 4]))
    assert ps.replace_by_pid(rep) == 2
    assert np.all(ps.pos[np.flatnonzero(ps.pid == 2)] == 5.0)


def test_energies_and_momentum(plummer_ps):
    ke = plummer_ps.kinetic_energy()
    assert ke > 0
    p = plummer_ps.momentum()
    assert p.shape == (3,)
    manual = (plummer_ps.mass[:, None] * plummer_ps.vel).sum(axis=0)
    assert np.allclose(p, manual)


def test_bounding_box(plummer_ps):
    lo, hi = plummer_ps.bounding_box(pad=1.0)
    assert np.all(lo < plummer_ps.pos.min(axis=0))
    assert np.all(hi > plummer_ps.pos.max(axis=0))


def test_pack_unpack_roundtrip_all_fields():
    rng = np.random.default_rng(7)
    n = 25
    ps = ParticleSet.empty(n)
    for name, (shape, dtype, _fill) in FIELDS.items():
        if np.issubdtype(dtype, np.integer):
            ps.data[name][...] = rng.integers(0, 100, (n, *shape)).astype(dtype)
        else:
            ps.data[name][...] = rng.normal(0, 10, (n, *shape))
    back = ParticleSet.unpack(ps.pack())
    for name in FIELDS:
        assert back.data[name].dtype == ps.data[name].dtype, name
        assert np.array_equal(back.data[name], ps.data[name]), name


def test_packed_width_counts_every_column():
    from repro.fdps.particles import packed_width

    expected = sum(
        int(np.prod(shape, dtype=np.int64)) for shape, _, _ in FIELDS.values()
    )
    assert packed_width() == expected
    assert ParticleSet.empty(4).pack().shape == (4, expected)
    assert ParticleSet.empty(4).pack().nbytes == 4 * expected * 8
