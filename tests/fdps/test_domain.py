"""Multisection domain decomposition: balance, coverage, Fig. 4 geometry."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdps.domain import DomainDecomposition, process_grid
from tests.conftest import plummer_positions


def test_assignment_covers_all_points(rng):
    pos = rng.normal(0, 100, (2000, 3))
    dd = DomainDecomposition.fit(pos, (2, 3, 2), sample=None)
    ranks = dd.assign(pos)
    assert ranks.min() >= 0
    assert ranks.max() < dd.n_domains


def test_balance_equal_weights(rng):
    pos = rng.normal(0, 100, (4000, 3))
    dd = DomainDecomposition.fit(pos, (2, 2, 2), sample=None)
    counts = np.bincount(dd.assign(pos), minlength=8)
    assert counts.max() <= 1.3 * counts.min()


def test_balance_weighted(rng):
    # Put all the work in x > 0: the x cut should move right of the median.
    pos = rng.uniform(-1, 1, (4000, 3))
    w = np.where(pos[:, 0] > 0, 10.0, 1.0)
    dd = DomainDecomposition.fit(pos, (2, 1, 1), weights=w, sample=None)
    cut = dd.bounds[1, 0, 0, 0, 0]
    assert cut > 0.2


def test_domains_tile_space(rng):
    pos = rng.normal(0, 50, (3000, 3))
    dd = DomainDecomposition.fit(pos, (2, 2, 2), sample=None)
    # Any point in space maps to exactly one domain whose box contains it.
    probes = rng.uniform(-200, 200, (500, 3))
    ranks = dd.assign(probes)
    for p, r in zip(probes, ranks):
        lo, hi = dd.domain_box(int(r))
        assert np.all(p >= lo) and np.all(p < hi)


def test_rank_ijk_roundtrip():
    dd = DomainDecomposition.fit(np.random.default_rng(0).normal(size=(100, 3)), (3, 2, 4), sample=None)
    for rank in range(dd.n_domains):
        assert dd.rank_of(dd.ijk_of(rank)) == rank


def test_concentrated_distribution_makes_thin_central_domains():
    # The Fig. 4 phenomenon: central domains of a centrally concentrated
    # galaxy become much smaller than outer ones.
    pos = plummer_positions(20000, a=10.0, rng=np.random.default_rng(5))
    dd = DomainDecomposition.fit(pos, (4, 4, 1), sample=None)
    lo, hi = pos.min(axis=0), pos.max(axis=0)
    widths = []
    for rank in range(dd.n_domains):
        blo, bhi = dd.finite_domain_box(rank, lo, hi)
        widths.append(bhi[0] - blo[0])
    widths = np.array(widths)
    assert widths.max() > 5.0 * widths.min()


def test_slice_y0_returns_rectangles():
    pos = plummer_positions(5000, a=20.0, rng=np.random.default_rng(6))
    dd = DomainDecomposition.fit(pos, (3, 3, 3), sample=None)
    lo, hi = pos.min(axis=0), pos.max(axis=0)
    rects = dd.slice_y0(lo, hi)
    assert len(rects) >= 3  # at least one y-column crosses y=0 per x slab
    for r in rects:
        assert r[0] <= r[1] and r[2] <= r[3]


def test_surface_areas_positive():
    pos = np.random.default_rng(7).normal(0, 10, (1000, 3))
    dd = DomainDecomposition.fit(pos, (2, 2, 2), sample=None)
    lo, hi = pos.min(axis=0), pos.max(axis=0)
    areas = dd.surface_areas(lo, hi)
    assert np.all(areas > 0)


def test_sampling_approximates_full_decomposition(rng):
    pos = rng.normal(0, 100, (20000, 3))
    full = DomainDecomposition.fit(pos, (2, 2, 1), sample=None)
    samp = DomainDecomposition.fit(pos, (2, 2, 1), sample=2000, rng=rng)
    counts = np.bincount(samp.assign(pos), minlength=4)
    assert counts.max() <= 1.5 * counts.min()
    # The x cut from sampling should be near the full-data cut.
    assert abs(full.bounds[1, 0, 0, 0, 0] - samp.bounds[1, 0, 0, 0, 0]) < 20.0


@given(st.integers(1, 64))
@settings(max_examples=30, deadline=None)
def test_process_grid_factorizes(n):
    px, py, pz = process_grid(n)
    assert px * py * pz == n
    assert px >= py >= pz >= 1


def test_process_grid_prefers_cubes():
    assert process_grid(8) == (2, 2, 2)
    assert process_grid(27) == (3, 3, 3)
    assert process_grid(64) == (4, 4, 4)
