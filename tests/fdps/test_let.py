"""LET wire format: pseudo/real split preservation and byte-ledger exactness."""

import numpy as np
import pytest

from repro.fdps.comm import SimComm, TorusTopology
from repro.fdps.domain import DomainDecomposition, process_grid
from repro.fdps.let import LetExport, build_let_exports, exchange_let
from repro.fdps.tree import Octree
from tests.conftest import plummer_positions


@pytest.fixture()
def cluster():
    rng = np.random.default_rng(41)
    pos = plummer_positions(900, a=30.0, rng=rng)
    mass = rng.uniform(0.5, 2.0, 900)
    return pos, mass


def _setup(pos, mass, grid):
    dd = DomainDecomposition.fit(pos, grid, sample=None)
    ranks = dd.assign(pos)
    trees = [
        Octree.build(pos[ranks == r], mass[ranks == r], leaf_size=16)
        for r in range(dd.n_domains)
    ]
    glo, ghi = pos.min(axis=0), pos.max(axis=0)
    return dd, trees, glo, ghi


def test_pack_unpack_preserves_pseudo_split(cluster):
    pos, mass = cluster
    tree = Octree.build(pos, mass, leaf_size=16)
    exp = build_let_exports(tree, np.array([150.0] * 3), np.array([220.0] * 3), 0.5)
    assert exp.n_pseudo > 0 and exp.n_real > 0
    back = LetExport.unpack(exp.pack())
    assert back.n_pseudo == exp.n_pseudo
    assert back.n_real == exp.n_real
    assert np.array_equal(back.pos, exp.pos)
    assert np.array_equal(back.mass, exp.mass)
    assert exp.nbytes == exp.pack().nbytes  # nbytes reports the wire size


def test_unpack_rejects_corrupt_header(cluster):
    pos, mass = cluster
    tree = Octree.build(pos, mass, leaf_size=16)
    exp = build_let_exports(tree, np.array([150.0] * 3), np.array([220.0] * 3), 0.5)
    buf = exp.pack()
    buf[0, 0] += 1  # header no longer matches the body length
    with pytest.raises(ValueError):
        LetExport.unpack(buf)


def test_merge_keeps_monopoles_separate_from_boundary_particles():
    a = LetExport(
        pos=np.arange(12.0).reshape(4, 3), mass=np.arange(4.0) + 1, n_pseudo=1
    )
    b = LetExport(
        pos=-np.arange(9.0).reshape(3, 3), mass=np.arange(3.0) + 10, n_pseudo=2
    )
    merged = LetExport.merge([a, b])
    assert merged.n_pseudo == 3
    assert merged.n_real == 4
    # Pseudo block: a's monopole then b's two, in order; real block after.
    assert np.array_equal(merged.mass[:3], [1.0, 10.0, 11.0])
    assert np.array_equal(merged.mass[3:], [2.0, 3.0, 4.0, 12.0])
    assert merged.mass.sum() == pytest.approx(a.mass.sum() + b.mass.sum())


def test_exchange_let_imports_keep_pseudo_counts(cluster):
    pos, mass = cluster
    dd, trees, glo, ghi = _setup(pos, mass, (2, 2, 1))
    comm = SimComm(dd.n_domains)
    imports = exchange_let(comm, trees, dd, glo, ghi, theta=0.4)
    for dst in range(dd.n_domains):
        expected_pseudo = sum(
            build_let_exports(
                trees[src], *dd.finite_domain_box(dst, glo, ghi), 0.4
            ).n_pseudo
            for src in range(dd.n_domains)
            if src != dst
        )
        assert imports[dst].n_pseudo == expected_pseudo
        assert imports[dst].n_real == len(imports[dst].mass) - expected_pseudo
        assert imports[dst].n_pseudo > 0


@pytest.mark.parametrize("use_3d", [False, True])
def test_exchange_let_byte_ledger_exact(cluster, use_3d):
    pos, mass = cluster
    grid = process_grid(8)
    dd, trees, glo, ghi = _setup(pos, mass, grid)
    topo = TorusTopology(grid) if use_3d else None
    comm = SimComm(dd.n_domains, topology=topo)
    exchange_let(comm, trees, dd, glo, ghi, theta=0.4, use_3d=use_3d)
    expected = 0
    for src in range(dd.n_domains):
        for dst in range(dd.n_domains):
            if src == dst:
                continue
            nbytes = build_let_exports(
                trees[src], *dd.finite_domain_box(dst, glo, ghi), 0.4
            ).pack().nbytes
            if topo is None:
                expected += nbytes
            else:
                ca, cb = topo.coords(src), topo.coords(dst)
                expected += nbytes * sum(a != b for a, b in zip(ca, cb))
    assert comm.stats["exchange_let"].bytes_total == expected
    assert expected > 0
