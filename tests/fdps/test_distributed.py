"""Distributed FDPS pipeline: the multi-rank integration test."""

import numpy as np
import pytest

from repro.accel.index import ConcatStratifiedSampler
from repro.fdps.distributed import DistributedGravity
from repro.fdps.domain import DomainDecomposition
from repro.fdps.interaction import InteractionCounter
from repro.fdps.particles import ParticleSet, packed_width
from repro.gravity.kernels import accel_direct
from tests.conftest import plummer_positions


def _cluster(n=800, seed=21):
    rng = np.random.default_rng(seed)
    pos = plummer_positions(n, a=30.0, rng=rng)
    ps = ParticleSet.from_arrays(
        pos=pos,
        mass=rng.uniform(0.5, 2.0, n),
        eps=np.full(n, 0.5),
        pid=np.arange(n),
    )
    ps.vel[:] = rng.normal(0, 0.5, (n, 3))
    return ps


def _rel_err(a, b):
    scale = np.maximum(np.linalg.norm(b, axis=1), 1e-300)
    return np.linalg.norm(a - b, axis=1) / scale


@pytest.mark.parametrize("n_ranks", [1, 4, 8])
def test_distributed_matches_direct(n_ranks):
    ps = _cluster()
    ref = accel_direct(ps.pos, ps.mass, ps.eps)
    driver = DistributedGravity(n_ranks=n_ranks, theta=0.3)
    acc = driver.global_accel(ps.copy())
    err = _rel_err(acc, ref)
    assert np.median(err) < 5e-3
    # Tail errors come from boundary particles whose remote matter arrives
    # as borderline-accepted monopoles; 99th percentile stays below 10%.
    assert np.percentile(err, 99) < 1e-1


def test_torus_routing_gives_same_forces():
    ps = _cluster(seed=22)
    flat = DistributedGravity(n_ranks=8, theta=0.35, use_torus=False)
    torus = DistributedGravity(n_ranks=8, theta=0.35, use_torus=True)
    a_flat = flat.global_accel(ps.copy())
    a_torus = torus.global_accel(ps.copy())
    assert np.allclose(a_flat, a_torus)
    # The torus route shows up in its own stats label.
    assert "exchange_let" in torus.comm.stats


def test_scatter_gather_roundtrip():
    ps = _cluster(seed=23)
    driver = DistributedGravity(n_ranks=6)
    decomp, locals_ = driver.scatter(ps)
    assert sum(len(l) for l in locals_) == len(ps)
    back = driver.gather(locals_)
    assert np.array_equal(np.sort(back.pid), np.sort(ps.pid))
    assert back.total_mass() == pytest.approx(ps.total_mass())


def test_exchange_particles_moves_emigrants():
    ps = _cluster(seed=24)
    driver = DistributedGravity(n_ranks=4)
    decomp, locals_ = driver.scatter(ps)
    # Push particles of rank 0 far along +x so they belong elsewhere.
    locals_[0].pos[:, 0] += 100.0
    merged_pos = np.concatenate([l.pos for l in locals_])
    from repro.fdps.domain import DomainDecomposition

    new_decomp = DomainDecomposition.fit(merged_pos, driver.grid)
    moved = driver.exchange_particles(locals_, new_decomp)
    assert sum(len(l) for l in moved) == len(ps)
    # Every particle now sits in its owner's domain.
    for rank, loc in enumerate(moved):
        if len(loc) == 0:
            continue
        assert np.all(new_decomp.assign(loc.pos) == rank)
    # Communication was counted.
    assert driver.comm.stats["exchange_particles"].n_messages > 0


def test_distributed_step_conserves_momentum():
    ps = _cluster(seed=25)
    p0 = ps.momentum()
    driver = DistributedGravity(n_ranks=4, theta=0.3)
    decomp, locals_ = driver.scatter(ps)
    accs = None
    for _ in range(3):
        locals_, decomp, accs = driver.step(locals_, decomp, dt=0.01, accs=accs)
    merged = driver.gather(locals_)
    p1 = merged.momentum()
    scale = np.abs(merged.mass[:, None] * merged.vel).sum()
    assert np.all(np.abs(p1 - p0) < 2e-3 * scale)  # tree-force asymmetry only
    assert len(merged) == len(ps)


def test_distributed_step_matches_single_rank():
    ps = _cluster(n=500, seed=26)
    single = DistributedGravity(n_ranks=1, theta=0.3)
    multi = DistributedGravity(n_ranks=4, theta=0.3)

    d1, l1 = single.scatter(ps.copy())
    d4, l4 = multi.scatter(ps.copy())
    a1 = a4 = None
    for _ in range(2):
        l1, d1, a1 = single.step(l1, d1, dt=0.02, accs=a1)
        l4, d4, a4 = multi.step(l4, d4, dt=0.02, accs=a4)
    g1, g4 = single.gather(l1), multi.gather(l4)
    # Same particles, nearly identical trajectories (tree-walk order only).
    assert np.array_equal(g1.pid, g4.pid)
    disp = np.linalg.norm(g1.pos - g4.pos, axis=1)
    typical = np.linalg.norm(g1.pos, axis=1).mean()
    assert np.median(disp) < 1e-3 * typical


def test_interaction_counter_collects():
    ps = _cluster(n=400, seed=27)
    driver = DistributedGravity(n_ranks=4, theta=0.4)
    decomp, locals_ = driver.scatter(ps)
    counter = InteractionCounter()
    driver.forces(locals_, decomp, counter=counter)
    assert counter.interactions("gravity") > 0
    assert counter.flops("gravity") == 27 * counter.interactions("gravity")


def _expected_exchange_bytes(driver, locals_, decomp):
    """Sum of packed payload bytes, weighted by torus forwarding phases."""
    topo = driver.comm.topology
    total = 0
    for src in range(driver.n_ranks):
        ps = locals_[src]
        owner = decomp.assign(ps.pos)
        for dst in range(driver.n_ranks):
            if dst == src:
                continue
            n_moving = int((owner == dst).sum())
            if n_moving == 0:
                continue
            nbytes = n_moving * packed_width() * 8
            if topo is None:
                total += nbytes
            else:
                ca, cb = topo.coords(src), topo.coords(dst)
                total += nbytes * sum(a != b for a, b in zip(ca, cb))
    return total


@pytest.mark.parametrize("use_torus", [False, True])
def test_exchange_particles_byte_ledger_exact(use_torus):
    ps = _cluster(seed=31)
    driver = DistributedGravity(n_ranks=8, use_torus=use_torus)
    decomp, locals_ = driver.scatter(ps)
    # Displace rank 0 so a real migration happens.
    locals_[0].pos[:, 0] += 80.0
    merged_pos = np.concatenate([loc.pos for loc in locals_])
    new_decomp = DomainDecomposition.fit(merged_pos, driver.grid)
    expected = _expected_exchange_bytes(driver, locals_, new_decomp)
    assert expected > 0
    driver.comm.reset_stats()
    moved = driver.exchange_particles(locals_, new_decomp)
    assert driver.comm.stats["exchange_particles"].bytes_total == expected
    assert sum(len(loc) for loc in moved) == len(ps)


def test_exchange_particles_carries_full_payload():
    """Migrated particles keep every field: velocity, type, metals, pids."""
    rng = np.random.default_rng(32)
    n = 120
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-50, 50, (n, 3)),
        vel=rng.normal(0, 1, (n, 3)),
        mass=rng.uniform(0.5, 2.0, n),
        u=rng.uniform(1, 10, n),
        zmet=rng.uniform(0, 0.02, (n, 4)),
        ptype=rng.integers(0, 3, n),
        pid=rng.permutation(10 * n)[:n],
    )
    driver = DistributedGravity(n_ranks=4)
    decomp, locals_ = driver.scatter(ps.copy())
    locals_[0].pos[:, 0] += 200.0
    merged_pos = np.concatenate([loc.pos for loc in locals_])
    new_decomp = DomainDecomposition.fit(merged_pos, driver.grid)
    moved = driver.exchange_particles(locals_, new_decomp)
    back = driver.gather(moved)
    order = np.argsort(ps.pid, kind="stable")
    for name in ("vel", "mass", "u", "zmet", "ptype"):
        assert np.array_equal(back.data[name], ps.data[name][order]), name


def test_one_tree_build_per_rank_per_step():
    ps = _cluster(n=600, seed=33)
    driver = DistributedGravity(n_ranks=4, theta=0.35, decomp_sample=64)
    decomp, locals_ = driver.scatter(ps)
    accs = driver.forces(locals_, decomp)  # warm-up pays the first builds
    for index in driver.indices:
        index.stats.reset()
    n_steps = 3
    for _ in range(n_steps):
        locals_, decomp, accs = driver.step(locals_, decomp, dt=0.01, accs=accs)
    for index in driver.indices:
        assert index.stats.tree_builds <= n_steps  # <= 1 build per step
    assert sum(i.stats.tree_builds for i in driver.indices) > 0
    # A force re-evaluation at unchanged positions reuses every cached tree.
    builds_before = [i.stats.tree_builds for i in driver.indices]
    driver.forces(locals_, decomp)
    assert [i.stats.tree_builds for i in driver.indices] == builds_before
    assert any(i.stats.tree_reuses > 0 for i in driver.indices)


def test_step_refit_gets_weights_and_stratified_sampler(monkeypatch):
    captured = []
    orig = DomainDecomposition.fit.__func__

    def spy(cls, pos, grid, weights=None, sample=100_000, rng=None, index=None):
        captured.append({"n": len(pos), "weights": weights, "index": index})
        return orig(cls, pos, grid, weights=weights, sample=sample, rng=rng, index=index)

    monkeypatch.setattr(DomainDecomposition, "fit", classmethod(spy))
    ps = _cluster(n=800, seed=34)
    # Small groups so per-particle work (interaction-list length) varies.
    driver = DistributedGravity(n_ranks=4, theta=0.35, n_g=32)
    decomp, locals_ = driver.scatter(ps)
    driver.step(locals_, decomp, dt=0.01)
    refit = captured[-1]
    assert isinstance(refit["index"], ConcatStratifiedSampler)
    w = refit["weights"]
    assert w is not None and len(w) == refit["n"] and np.all(w > 0)
    # The measured gravity work varies between particles (it is not a
    # silently-dropped all-ones placeholder).
    assert np.unique(w).size > 1
    # The sampler snapshotted valid per-rank Morton orders: it can draw a
    # stratified subsample of the merged set.
    pick = refit["index"].stratified_sample(50, refit["n"])
    assert pick is not None and len(pick) == 50
    assert len(np.unique(pick)) == 50 and pick.min() >= 0 and pick.max() < refit["n"]


def test_global_accel_row_order_with_shuffled_pids():
    """Regression pin: global_accel aligns to input rows, not pid order."""
    ps = _cluster(n=300, seed=35)
    rng = np.random.default_rng(36)
    ps.pid[:] = rng.permutation(5000)[:300]  # unique, shuffled, sparse
    ref = accel_direct(ps.pos, ps.mass, ps.eps)
    driver = DistributedGravity(n_ranks=4, theta=0.3)
    acc = driver.global_accel(ps.copy())
    assert np.median(_rel_err(acc, ref)) < 5e-3


def test_empty_rank_is_tolerated():
    # All particles in one octant: some ranks may end up (nearly) empty.
    rng = np.random.default_rng(28)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(0, 1, (50, 3)),
        mass=np.ones(50),
        eps=np.full(50, 0.05),
        pid=np.arange(50),
    )
    driver = DistributedGravity(n_ranks=8, theta=0.2)
    acc = driver.global_accel(ps)
    ref = accel_direct(ps.pos, ps.mass, ps.eps)
    assert np.median(_rel_err(acc, ref)) < 2e-2
