"""GalaxySimulation facade: configuration paths, SFR, domain bookkeeping."""

import numpy as np
import pytest

from repro.core.integrator import IntegratorConfig
from repro.core.simulation import GalaxySimulation
from repro.sn.turbulence import make_turbulent_box
from repro.surrogate.model import SedovBlastOracle, SNSurrogate
from repro.util.constants import temperature_to_internal_energy


def _small_box(seed=0):
    return make_turbulent_box(n_per_side=7, side=30.0, mean_density=0.1,
                              temperature=500.0, mach=1.0, seed=seed)


def _fast_cfg(**kw):
    kw.setdefault("enable_cooling", False)
    kw.setdefault("enable_star_formation", False)
    kw.setdefault("self_gravity", False)
    return IntegratorConfig(**kw)


def test_latency_defaults_to_n_pool():
    sim = GalaxySimulation(_small_box(), dt=1e-3, n_pool=7,
                           config=_fast_cfg(), surrogate_grid=8)
    assert sim.pool.latency_steps == 7
    assert sim.pool.n_pool == 7


def test_custom_latency():
    sim = GalaxySimulation(_small_box(), dt=1e-3, n_pool=4, latency_steps=9,
                           config=_fast_cfg(), surrogate_grid=8)
    assert sim.pool.latency_steps == 9


def test_custom_surrogate_is_used():
    surr = SNSurrogate(oracle=SedovBlastOracle(t_after=0.05), n_grid=8, side=30.0)
    sim = GalaxySimulation(_small_box(), dt=1e-3, surrogate=surr,
                           config=_fast_cfg())
    assert sim.pool.surrogate is surr


def test_default_oracle_horizon_matches_latency():
    # 50 steps x 2e-3 Myr = 0.1 Myr: the paper's prediction horizon.
    sim = GalaxySimulation(_small_box(), dt=2e-3, n_pool=50,
                           config=_fast_cfg(), surrogate_grid=8)
    assert sim.pool.surrogate.oracle.t_after == pytest.approx(0.1)


def test_run_until():
    sim = GalaxySimulation(_small_box(), dt=1e-3, n_pool=3,
                           config=_fast_cfg(), surrogate_grid=8)
    sim.run_until(0.0035)
    assert sim.step_count == 4
    assert sim.time == pytest.approx(0.004)


def test_sfr_window():
    sim = GalaxySimulation(_small_box(), dt=1e-3, n_pool=3,
                           config=_fast_cfg(), surrogate_grid=8)
    sim.integrator.sf_history = [(0.001, 5.0), (0.002, 3.0)]
    sim.integrator.time = 0.0025
    assert sim.star_formation_rate(window=1.0) == pytest.approx(8.0)
    # A window ending before the events sees nothing.
    sim.integrator.time = 10.0
    assert sim.star_formation_rate(window=1.0) == 0.0


def test_domain_bookkeeping_enabled():
    cfg = _fast_cfg(n_domains=4)
    sim = GalaxySimulation(_small_box(), dt=1e-3, n_pool=3, config=cfg,
                           surrogate_grid=8)
    sim.run(1)
    assert sim.integrator.decomp is not None
    assert sim.integrator.decomp.n_domains == 4
    assert "Exchange_Particle" in sim.timing_breakdown()


def test_star_formation_inside_full_loop():
    # Dense cold gas + aggressive efficiency: stars must appear within a
    # couple of steps of the full scheme and be recorded in diagnostics.
    from repro.physics.star_formation import StarFormationModel

    box = _small_box(seed=3)
    box.u[:] = temperature_to_internal_energy(30.0)
    box.divv[:] = -1.0
    cfg = _fast_cfg(enable_star_formation=True)
    # The hydro pass recomputes the true SPH density (~0.09 M_sun/pc^3 for
    # this box), so the threshold must sit below it.
    sf = StarFormationModel(density_threshold=0.01, temperature_threshold=500.0,
                            efficiency=1e9, require_converging=False)
    sim = GalaxySimulation(box, dt=1e-3, n_pool=3, config=cfg,
                           surrogate_grid=8, star_formation=sf)
    sim.run(2)
    d = sim.diagnostics()
    assert d["n_stars"] > 0
    assert d["n_sf_events"] > 0
    assert sim.star_formation_rate(window=1.0) > 0.0
    # New stars carry unique fresh pids.
    assert len(np.unique(sim.ps.pid)) == len(sim.ps)


def test_cooling_inside_full_loop():
    box = _small_box(seed=4)
    hot = temperature_to_internal_energy(1.0e6)
    box.u[:] = hot
    cfg = _fast_cfg(enable_cooling=True)
    sim = GalaxySimulation(box, dt=1e-3, n_pool=3, config=cfg, surrogate_grid=8)
    sim.run(2)
    assert sim.ps.u.mean() < hot  # radiative losses happened
    assert "Feedback_and_Cooling" in sim.timing_breakdown()


def test_gas_cfl_diagnostic():
    box = _small_box(seed=5)
    sim = GalaxySimulation(box, dt=1e-3, n_pool=3, config=_fast_cfg(),
                           surrogate_grid=8)
    sim.run(1)
    dt_cfl = sim.integrator.gas_cfl_timestep()
    assert 0 < dt_cfl < np.inf
