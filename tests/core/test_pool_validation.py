"""PoolManager and SimComm validation paths and edge cases."""

import numpy as np
import pytest

from repro.core.pool import PoolManager
from repro.fdps.comm import SimComm, TorusTopology
from repro.surrogate.model import SedovBlastOracle, SNSurrogate


def _surr():
    return SNSurrogate(oracle=SedovBlastOracle(), n_grid=8, side=60.0)


def test_pool_rejects_zero_nodes():
    with pytest.raises(ValueError):
        PoolManager(surrogate=_surr(), n_pool=0)


def test_pool_rejects_undersized_communicator():
    with pytest.raises(ValueError):
        PoolManager(surrogate=_surr(), n_pool=4, comm=SimComm(3))


def test_comm_rejects_zero_ranks():
    with pytest.raises(ValueError):
        SimComm(0)


def test_comm_rejects_mismatched_topology():
    with pytest.raises(ValueError):
        SimComm(5, topology=TorusTopology((2, 2, 2)))


def test_alltoallv_validates_matrix_shape():
    comm = SimComm(3)
    with pytest.raises(ValueError):
        comm.alltoallv([[None] * 3] * 2)  # wrong row count
    with pytest.raises(ValueError):
        comm.alltoallv([[None] * 2] * 3)  # wrong row length


def test_alltoallv_3d_requires_topology():
    comm = SimComm(8)
    with pytest.raises(RuntimeError):
        comm.alltoallv_3d([[None] * 8 for _ in range(8)])


def test_comm_split_validates_color_count():
    comm = SimComm(4)
    with pytest.raises(ValueError):
        comm.split([0, 0, 1])


def test_stats_reset():
    comm = SimComm(2)
    comm.alltoallv([[None, np.ones(2)], [None, None]])
    assert comm.stats
    comm.reset_stats()
    assert not comm.stats


def test_subcomm_rank_translation():
    comm = SimComm(5)
    subs = comm.split([1, 0, 1, 0, 1])
    sub = subs[1]
    assert sub.size == 3
    assert [sub.world_rank(i) for i in range(3)] == [0, 2, 4]
    assert sub.local_rank(4) == 2


def test_allgather_delivers_everything():
    comm = SimComm(3)
    vals = [np.full(2, float(r)) for r in range(3)]
    out = comm.allgather(vals)
    for dst in range(3):
        for src in range(3):
            assert np.all(out[dst][src] == src)
