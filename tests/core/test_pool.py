"""PoolManager: dispatch/collect protocol, latency, overflow handling."""

import numpy as np
import pytest

from repro.core.pool import PoolManager
from repro.fdps.comm import SimComm
from repro.fdps.particles import ParticleSet, ParticleType
from repro.surrogate.model import SedovBlastOracle, SNSurrogate


def _region(n=50, seed=0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-25, 25, (n, 3)),
        mass=np.full(n, 1.0),
        pid=np.arange(n) + 1000 * seed,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = 25.0
    ps.h[:] = 8.0
    return ps


@pytest.fixture
def manager():
    surr = SNSurrogate(oracle=SedovBlastOracle(t_after=0.1), n_grid=8, side=60.0)
    return PoolManager(surrogate=surr, n_pool=4, latency_steps=5, seed=0)


def test_dispatch_assigns_round_robin(manager):
    ranks = []
    for k in range(4):
        e = manager.dispatch(_region(seed=k), np.zeros(3), star_pid=k, time=0.0, step=0)
        ranks.append(e.pool_rank)
    assert sorted(ranks) == [0, 1, 2, 3]
    assert manager.n_in_flight == 4


def test_collect_respects_latency(manager):
    manager.dispatch(_region(), np.zeros(3), star_pid=1, time=0.0, step=0)
    for step in range(5):
        assert manager.collect(step) == []
    results = manager.collect(5)
    assert len(results) == 1
    event, predicted = results[0]
    assert event.returned
    assert event.in_flight_steps == 5
    assert len(predicted) == 50


def test_prediction_preserves_ids_and_mass(manager):
    region = _region(seed=3)
    manager.dispatch(region, np.zeros(3), star_pid=2, time=0.0, step=0)
    [(event, predicted)] = manager.collect(10)
    assert np.array_equal(np.sort(predicted.pid), np.sort(region.pid))
    assert predicted.total_mass() == pytest.approx(region.total_mass())


def test_pool_node_frees_after_return(manager):
    manager.dispatch(_region(seed=0), np.zeros(3), star_pid=1, time=0.0, step=0)
    assert manager.free_pool_rank(0) == 1  # rank 0 busy
    manager.collect(5)
    assert manager.free_pool_rank(5) in (0, 1, 2, 3)
    # After latency elapsed, rank 0 is free again.
    e = manager.dispatch(_region(seed=1), np.zeros(3), star_pid=2, time=0.0, step=6)
    assert e.pool_rank is not None


def test_overflow_counted():
    surr = SNSurrogate(oracle=SedovBlastOracle(), n_grid=8, side=60.0)
    m = PoolManager(surrogate=surr, n_pool=2, latency_steps=10, seed=0)
    for k in range(3):  # 3 SNe, 2 pool nodes, all in one step
        m.dispatch(_region(seed=k), np.zeros(3), star_pid=k, time=0.0, step=0)
    assert m.n_overflow == 1


def test_paper_sizing_no_overflow_for_one_sn_per_step():
    # n_pool = latency = 50: one SN per step never overflows (Sec. 3.2).
    surr = SNSurrogate(oracle=SedovBlastOracle(), n_grid=8, side=60.0)
    m = PoolManager(surrogate=surr, n_pool=50, latency_steps=50, seed=0)
    for step in range(120):
        m.dispatch(_region(seed=step % 5), np.zeros(3), star_pid=step, time=0.0, step=step)
        m.collect(step)
    assert m.n_overflow == 0


def test_comm_traffic_counted():
    world = SimComm(1 + 2)  # 1 main + 2 pool
    surr = SNSurrogate(oracle=SedovBlastOracle(), n_grid=8, side=60.0)
    m = PoolManager(surrogate=surr, n_pool=2, latency_steps=1, seed=0, comm=world)
    m.dispatch(_region(), np.zeros(3), star_pid=1, time=0.0, step=0)
    m.collect(1)
    stat = world.stats["pool_p2p"]
    assert stat.n_messages == 2  # region out, prediction back
    # The ledger charges the full wire buffers: header + packed FIELDS
    # payload, both ways (50 particles x 29 float64 columns + headers).
    from repro.fdps.particles import packed_width

    expected = (12 + 50 * packed_width()) * 8 + (6 + 50 * packed_width()) * 8
    assert stat.bytes_total == expected


def test_summary(manager):
    manager.dispatch(_region(), np.zeros(3), star_pid=1, time=0.0, step=0)
    manager.collect(5)
    s = manager.summary()
    assert s["n_events"] == 1
    assert s["n_returned"] == 1
    assert s["n_in_flight"] == 0
    assert s["total_region_particles"] == 50
