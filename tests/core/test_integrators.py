"""The surrogate scheme vs the conventional baseline — the paper's core."""

import numpy as np
import pytest

from repro.core.conventional import ConventionalIntegrator
from repro.core.integrator import IntegratorConfig, SurrogateLeapfrog
from repro.core.pool import PoolManager
from repro.core.simulation import GalaxySimulation
from repro.fdps.particles import ParticleSet, ParticleType
from repro.sn.turbulence import make_turbulent_box
from repro.surrogate.model import SedovBlastOracle, SNSurrogate
from repro.util.constants import internal_energy_to_temperature


def _box_with_doomed_star(t_explode=0.004, seed=0):
    """A turbulent box plus one massive star about to explode."""
    box = make_turbulent_box(n_per_side=8, side=60.0, mean_density=0.05,
                             temperature=100.0, mach=2.0, seed=seed)
    star = ParticleSet.empty(1)
    star.pos[:] = 0.0
    star.mass[:] = 20.0
    star.ptype[:] = int(ParticleType.STAR)
    star.pid[:] = 10_000_000
    star.tsn[:] = t_explode
    star.eps[:] = 1.0
    return box.append(star)


def _make_scheme(ps, dt=2e-3, latency=5, n_pool=5, **cfg_kw):
    cfg_kw.setdefault("self_gravity", False)
    cfg = IntegratorConfig(
        dt=dt,
        latency_steps=latency,
        n_pool=n_pool,
        enable_cooling=False,
        enable_star_formation=False,
        **cfg_kw,
    )
    surr = SNSurrogate(oracle=SedovBlastOracle(t_after=latency * dt), n_grid=8, side=60.0)
    pool = PoolManager(surrogate=surr, n_pool=n_pool, latency_steps=latency)
    return SurrogateLeapfrog(ps, pool, cfg)


def test_fixed_timestep_is_respected():
    sim = _make_scheme(_box_with_doomed_star())
    sim.run(8)
    assert sim.step_count == 8
    assert sim.time == pytest.approx(8 * 2e-3)


def test_sn_detected_and_dispatched():
    sim = _make_scheme(_box_with_doomed_star(t_explode=0.003))
    sim.run(2)  # t covers [0, 0.004): the SN at 0.003 fires in step 2
    assert sim.n_sn_events == 1
    assert sim.pool.n_in_flight == 1
    # The star never re-explodes.
    sim.run(2)
    assert sim.n_sn_events == 1


def test_main_nodes_feel_nothing_until_return():
    # Step 3 of the loop: integration proceeds WITHOUT feedback energy.
    ps = _box_with_doomed_star(t_explode=0.001)
    sim = _make_scheme(ps, latency=5)
    sim.run(3)
    t_max = internal_energy_to_temperature(sim.ps.u[sim.ps.where_type(ParticleType.GAS)]).max()
    assert t_max < 1e4  # still cold: no blast yet


def test_prediction_replaces_particles_after_latency():
    ps = _box_with_doomed_star(t_explode=0.001)
    sim = _make_scheme(ps, latency=5)
    sim.run(7)  # explosion at step 1, return at step 6
    gas = sim.ps.where_type(ParticleType.GAS)
    t_max = internal_energy_to_temperature(sim.ps.u[gas]).max()
    assert t_max > 1e5  # the blast landed
    assert sim.pool.summary()["n_returned"] == 1


def test_replacement_conserves_mass_and_count():
    ps = _box_with_doomed_star(t_explode=0.001)
    n0 = len(ps)
    m0 = ps.total_mass()
    sim = _make_scheme(ps, latency=3)
    sim.run(6)
    assert len(sim.ps) == n0
    assert sim.ps.total_mass() == pytest.approx(m0)
    assert len(np.unique(sim.ps.pid)) == n0


def _resolved_box_with_doomed_star(t_explode=0.0015, seed=1):
    """A star-by-star resolution box: 1 M_sun particles at n_H ~ 30 cm^-3.

    h ~ 2 pc here, so SN-heated gas (v_sig ~ 1000 pc/Myr) genuinely drives
    the CFL step far below the 2,000 yr cap — the regime of Sec. 1.
    """
    box = make_turbulent_box(n_per_side=10, side=10.0, mean_density=1.0,
                             particle_mass=1.0, temperature=100.0, mach=2.0,
                             seed=seed)
    star = ParticleSet.empty(1)
    star.pos[:] = 0.0
    star.mass[:] = 20.0
    star.ptype[:] = int(ParticleType.STAR)
    star.pid[:] = 10_000_000
    star.tsn[:] = t_explode
    star.eps[:] = 0.5
    return box.append(star)


def test_timer_labels_match_paper_breakdown():
    sim = _make_scheme(_box_with_doomed_star(), self_gravity=True)
    sim.run(2)
    labels = set(sim.timers.totals())
    for expected in (
        "Identify_SNe",
        "Send_SNe",
        "Receive_SNe",
        "Integration",
        "Final_kick",
        "1st Calc_Kernel_Size_and_Density",
        "1st Calc_Force",
        "2nd Calc_Kernel_Size_and_Density",
    ):
        assert expected in labels


def test_conventional_timestep_collapses_after_sn():
    """The Sec. 5.3 experiment: direct feedback shrinks the CFL step ~10x."""
    ps = _resolved_box_with_doomed_star(t_explode=0.0015)
    sim = ConventionalIntegrator(
        ps,
        dt_max=2e-3,
        courant=0.1,
        self_gravity=False,
        enable_cooling=False,
        enable_star_formation=False,
    )
    sim.run(2)  # SN fires in step 1; step 2 feels the hot bubble
    dt_before = sim.dt_history[0]
    sim.run(2)
    dt_after = min(sim.dt_history[-2:])
    assert dt_before == pytest.approx(2e-3)
    assert dt_after < 0.2 * dt_before  # paper: 2,000 yr -> ~200 yr


def test_surrogate_scheme_takes_fewer_steps():
    """Headline claim: fixed 2,000 yr beats adaptive CFL on steps to t_end."""
    t_end = 0.008
    ps1 = _resolved_box_with_doomed_star(t_explode=0.0015, seed=1)
    conv = ConventionalIntegrator(
        ps1, dt_max=2e-3, courant=0.1, self_gravity=False,
        enable_cooling=False, enable_star_formation=False,
    )
    n_conv = conv.run_until(t_end, max_steps=500)

    ps2 = _resolved_box_with_doomed_star(t_explode=0.0015, seed=1)
    surr = _make_scheme(ps2, dt=2e-3, latency=5)
    surr.run_until(t_end)
    assert surr.step_count < 0.5 * n_conv
    assert conv.n_sn_events == 1 and surr.n_sn_events == 1


def test_galaxy_simulation_facade():
    ps = _box_with_doomed_star(t_explode=0.001)
    sim = GalaxySimulation(ps, dt=2e-3, n_pool=5, surrogate_grid=8, seed=1)
    sim.integrator.cfg.self_gravity = False
    sim.integrator.cfg.enable_cooling = False
    sim.integrator.cfg.enable_star_formation = False
    sim.run(6)
    d = sim.diagnostics()
    assert d["step"] == 6
    assert d["n_particles"] == len(ps)
    assert d["pool"]["n_events"] == 1
    assert "Integration" in sim.timing_breakdown()
    assert sim.star_formation_rate() == 0.0


def test_momentum_stability_without_sn():
    # No SN, no gravity: hydro alone conserves momentum step over step.
    box = make_turbulent_box(n_per_side=8, side=60.0, mean_density=0.05,
                             temperature=1000.0, mach=1.0, seed=3)
    sim = _make_scheme(box)
    p0 = box.momentum()
    sim.run(5)
    p1 = sim.ps.momentum()
    scale = np.abs(sim.ps.mass[:, None] * sim.ps.vel).sum()
    assert np.all(np.abs(p1 - p0) < 1e-8 * max(scale, 1.0))
