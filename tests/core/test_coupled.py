"""Coupled multi-rank runs: bit-identity, byte ledgers, report reconciliation.

The coupled runner's contract (see :mod:`repro.core.runner.coupled`) is that
an ``n_ranks > 1`` run over one shared surrogate service produces *byte-for-
byte* the particle state of the single-rank integrator, while genuinely
paying for domain migration, cross-rank SN-region ghosts and per-rank pool
traffic on the communication ledgers.  The ICs below force one SN whose
(60 pc)^3 region straddles the 2-rank domain cut, so every run exercises the
``region_ghost`` path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GalaxySimulation
from repro.core.integrator import IntegratorConfig, SurrogateLeapfrog
from repro.core.pool import PoolManager, PoolOccupancy
from repro.fdps.comm import SimComm
from repro.fdps.particles import ParticleType
from repro.ic.galaxy import make_mw_mini
from repro.serve import SurrogateServer
from repro.surrogate.model import SedovBlastOracle, SNSurrogate

DT = 2e-3
N_POOL = 3
LATENCY = 2
SEED = 7
STEPS = 4


def _boundary_sn_ic():
    """A mini galaxy with one SN at the 2-rank cut and gas on both sides.

    The star sits at the gas median x — the (2, 1, 1) multisection cuts
    there — and six gas particles are planted inside its 60 pc cube with
    modest smoothing lengths (the IC's kpc-scale gas h would make the voxel
    deposit pathologically wide).
    """
    ps = make_mw_mini(n_total=800, seed=1)
    stars = np.flatnonzero(ps.where_type(ParticleType.STAR))
    gas = np.flatnonzero(ps.where_type(ParticleType.GAS))
    medx = np.median(ps.pos[ps.where_type(ParticleType.GAS), 0])
    si = stars[0]
    ps.pos[si] = [medx, 0.0, 0.0]
    ps.tsn[si] = 1e-3  # explodes on step 0
    rng = np.random.default_rng(3)
    ps.pos[gas[:6]] = ps.pos[si] + rng.uniform(-25.0, 25.0, size=(6, 3))
    ps.h[gas[:6]] = 10.0
    return ps


def _config():
    # Cooling off: the planted clump is unphysically dense and makes the
    # cooling substepping stiff; the coupling machinery under test here is
    # orthogonal to it (cooling/SF parity is covered separately below).
    return IntegratorConfig(
        enable_cooling=False, enable_star_formation=False, seed=SEED
    )


def _run(n_ranks, **kw):
    sim = GalaxySimulation(
        _boundary_sn_ic(), dt=DT, n_pool=N_POOL, latency_steps=LATENCY,
        seed=SEED, config=_config(), n_ranks=n_ranks, **kw,
    )
    sim.run(STEPS)
    return sim


@pytest.fixture(scope="module")
def single_rank_state():
    sim = _run(1)
    state = sim.ps.pack().tobytes()
    diag = sim.diagnostics()
    events = [e.event_id for e in sim.pool.events]
    bytes_per_event = [e.region_bytes for e in sim.pool.events]
    sim.close()
    return state, diag, events, bytes_per_event


@pytest.mark.parametrize("use_torus", [False, True])
@pytest.mark.parametrize("transport", ["sync", "process", "shm"])
def test_coupled_bit_identical_to_single_rank(
    single_rank_state, use_torus, transport
):
    """2 ranks x {flat, torus} x {sync, process, shm}: same bytes out."""
    ref_state, ref_diag, _, _ = single_rank_state
    kw = {} if transport == "sync" else {
        "serve_transport": transport, "serve_workers": 2,
    }
    sim = _run(2, use_torus=use_torus, **kw)
    try:
        assert sim.ps.pack().tobytes() == ref_state
        diag = sim.diagnostics()
        assert diag["n_sn_events"] == ref_diag["n_sn_events"] == 1
        assert diag["time"] == ref_diag["time"]
        assert diag["step"] == ref_diag["step"]
    finally:
        sim.close()


def test_region_ghost_ledger_charged(single_rank_state):
    """The boundary-crossing SN region pulls ghosts: bytes on the ledger."""
    sim = _run(2)
    try:
        stats = sim.integrator.comm_stats()
        ghost = stats["region_ghost"]
        assert ghost.bytes_total > 0
        assert ghost.n_messages >= 1
        # Migration is real too: refits move particles between the ranks.
        assert stats["exchange_particles"].bytes_total > 0
    finally:
        sim.close()


def test_event_ids_and_wire_bytes_match_single_rank(single_rank_state):
    """Shared-server event ids and per-event region bytes are rank-free."""
    _, _, ref_events, ref_bytes = single_rank_state
    sim = _run(2)
    try:
        events = sorted(
            (e for pool in sim.integrator.pools for e in pool.events),
            key=lambda e: e.event_id,
        )
        assert [e.event_id for e in events] == ref_events
        assert [e.region_bytes for e in events] == ref_bytes
    finally:
        sim.close()


def test_pool_p2p_ledger_matches_explicit_single_rank_reference():
    """Coupled pool bytes == a single-rank PoolManager run with a ledger.

    The facade's single-rank path doesn't attach a communicator, so the
    reference is built by hand: one main rank + N_POOL pool ranks on a
    SimComm, same seeds, same server sizing.  Every byte the coupled run's
    per-rank clients charge to ``pool_p2p`` must appear in the single-rank
    ledger too — requests and responses are rank-free wire buffers.
    """
    surrogate = SNSurrogate(
        oracle=SedovBlastOracle(t_after=LATENCY * DT), n_grid=16, side=60.0
    )
    server = SurrogateServer(surrogate=surrogate, transport="sync")
    comm = SimComm(1 + N_POOL)
    pool = PoolManager(
        n_pool=N_POOL, latency_steps=LATENCY, seed=SEED, comm=comm,
        server=server, horizon=LATENCY * DT,
    )
    integ = SurrogateLeapfrog(_boundary_sn_ic(), pool, _config())
    integ.run(STEPS)
    ref = comm.stats["pool_p2p"]

    sim = _run(2)
    try:
        got = sim.integrator.comm_stats()["pool_p2p"]
        assert got.bytes_total == ref.bytes_total
        assert got.n_messages == ref.n_messages
        assert got.n_calls == ref.n_calls
    finally:
        sim.close()
        pool.close()


def test_run_report_reconciles_with_merged_ledger(tmp_path):
    """``repro.obs report`` comm rows == the merged in-process ledger."""
    from repro.obs.export import write_run
    from repro.obs.report import report_run
    from repro.obs.trace import Tracer

    tr = Tracer(run_id="coupled")
    sim = GalaxySimulation(
        _boundary_sn_ic(), dt=DT, n_pool=N_POOL, latency_steps=LATENCY,
        seed=SEED, config=_config(), n_ranks=2, tracer=tr,
    )
    sim.run(STEPS)
    try:
        merged = sim.integrator.comm_stats()
        write_run(tr, tmp_path / "run")
        report = report_run(tmp_path / "run")
        active = {label for label, s in merged.items() if s.n_calls}
        assert active and active <= set(report.comm)
        for label, stats in merged.items():
            if stats.n_calls == 0:
                continue
            row = report.comm[label]
            assert int(row["bytes"]) == stats.bytes_total
            assert int(row["messages"]) == stats.n_messages
            assert int(row["critical_bytes"]) == stats.critical_bytes
            assert int(row["calls"]) == stats.n_calls
    finally:
        sim.close()


def test_full_physics_parity_with_star_formation():
    """Cooling + star formation on (natural IC): still bit-identical.

    Exercises the coupled runner's owner remap across a membership change —
    if star formation fires, gas disappears and new star pids appear; either
    way the two runs must agree byte-for-byte.
    """
    def run(n_ranks):
        sim = GalaxySimulation(
            make_mw_mini(n_total=800, seed=1), dt=DT, n_pool=N_POOL,
            latency_steps=LATENCY, seed=SEED,
            config=IntegratorConfig(seed=SEED), n_ranks=n_ranks,
        )
        sim.run(3)
        state = sim.ps.pack().tobytes()
        sim.close()
        return state

    assert run(1) == run(2)


def test_owner_remap_after_membership_change():
    """Surviving pids keep their owner; fresh pids are assigned by position."""
    sim = _run(2)
    try:
        runner = sim.integrator
        ps = runner.ps
        before = dict(zip(ps.pid.tolist(), runner.owner.tolist()))
        # Drop the first particle, append one fresh star far on the +x side.
        new_ps = ps.select(np.arange(1, len(ps)))
        star = ps.select(np.array([len(ps) - 1])).copy()
        star.pid[0] = int(ps.pid.max()) + 1
        star.ptype[0] = int(ParticleType.STAR)
        star.pos[0] = [1e5, 0.0, 0.0]
        new_ps = new_ps.append(star)
        runner._replace_particle_set(new_ps)
        assert len(runner.owner) == len(runner.ps)
        for pid, owner in zip(runner.ps.pid.tolist(), runner.owner.tolist()):
            if pid in before:
                assert owner == before[pid]
        # The fresh star is far beyond the cut: it belongs to the last rank.
        assert runner.owner[-1] == runner.decomp.assign(
            runner.ps.pos[-1:]
        )[0]
    finally:
        sim.close()


def test_shared_occupancy_prevents_double_booking():
    """Two clients of one calendar can never book the same node twice."""
    occ = PoolOccupancy(n_pool=2)
    assert occ.free_rank(0) == 0
    occ.book(0, until_step=5)
    assert occ.free_rank(0) == 1
    occ.book(1, until_step=5)
    assert occ.free_rank(0) is None
    assert occ.free_rank(5) == 0  # both free again at their until_step
