"""Checkpoint/restore: a restored run continues bit-identically.

The satellite fix for the old gap where ``load_simulation_state`` returned
raw ``(ps, header)`` and nothing could rebuild a live run: `
``GalaxySimulation.restore`` reconstructs the integrator clock,
``next_pid``, the SN/SF counters, the SF RNG state, and the stored force
arrays, so save -> restore -> step matches an uninterrupted run exactly.
"""

import numpy as np

from repro.core.integrator import IntegratorConfig
from repro.core.simulation import GalaxySimulation
from repro.fdps.io import load_checkpoint, load_simulation_state, save_simulation
from repro.fdps.particles import ParticleSet, ParticleType
from repro.sn.turbulence import make_turbulent_box


def _ic(with_star=True, seed=5):
    box = make_turbulent_box(n_per_side=6, side=60.0, mean_density=0.05,
                             temperature=100.0, mach=2.0, seed=seed)
    if not with_star:
        return box
    star = ParticleSet.empty(1)
    star.pos[:] = 0.0
    star.mass[:] = 20.0
    star.ptype[:] = int(ParticleType.STAR)
    star.pid[:] = 10_000_000
    star.tsn[:] = 0.003  # explodes at step 2, returns at step 4 (< save step)
    star.eps[:] = 1.0
    return box.append(star)


def _sim(ps, **kw):
    cfg = IntegratorConfig(self_gravity=False, enable_cooling=True,
                           enable_star_formation=True)
    return GalaxySimulation(ps, dt=2e-3, n_pool=4, latency_steps=2,
                            surrogate_grid=8, seed=11, config=cfg, **kw)


def test_save_restore_step_matches_uninterrupted(tmp_path):
    path = tmp_path / "ckpt.npz"

    straight = _sim(_ic())
    straight.run(9)

    first = _sim(_ic())
    first.run(6)
    save_simulation(first, path)
    resumed = GalaxySimulation.restore(path)
    assert resumed.step_count == 6
    assert resumed.time == first.time
    resumed.run(3)

    assert resumed.step_count == straight.step_count
    assert resumed.time == straight.time
    for name, arr in straight.ps.data.items():
        assert np.array_equal(resumed.ps.data[name], arr), name
    assert resumed.integrator.n_sn_events == straight.integrator.n_sn_events
    assert resumed.integrator.n_sf_events == straight.integrator.n_sf_events
    assert resumed.integrator.next_pid == straight.integrator.next_pid


def test_restore_rebuilds_counters_and_rng(tmp_path):
    path = tmp_path / "ckpt.npz"
    sim = _sim(_ic())
    sim.run(5)
    sim.integrator.next_pid = 123456  # make the value distinctive
    save_simulation(sim, path)

    back = GalaxySimulation.restore(path)
    assert back.step_count == 5
    assert back.integrator.next_pid == 123456
    assert back.integrator.n_sn_events == sim.integrator.n_sn_events
    assert back.integrator.n_sf_events == sim.integrator.n_sf_events
    assert back.pool.n_pool == 4
    assert back.pool.latency_steps == 2
    assert back.integrator.cfg.dt == sim.integrator.cfg.dt
    # The SF generator continues from the saved state, not from the seed.
    assert (
        back.integrator.rng.bit_generator.state
        == sim.integrator.rng.bit_generator.state
    )
    assert back.integrator._first_forces_done


def test_restore_accepts_overrides(tmp_path):
    path = tmp_path / "ckpt.npz"
    sim = _sim(_ic(with_star=False))
    sim.run(2)
    save_simulation(sim, path)
    back = GalaxySimulation.restore(path, n_pool=9, overflow_policy="block")
    assert back.pool.n_pool == 9
    assert str(back.pool.overflow_policy) == "OverflowPolicy.BLOCK"


def test_checkpoint_is_a_valid_plain_snapshot(tmp_path):
    # Older readers that only know (ps, header) still work on a checkpoint.
    path = tmp_path / "ckpt.npz"
    sim = _sim(_ic(with_star=False))
    sim.run(2)
    save_simulation(sim, path)
    ps, header = load_simulation_state(path)
    assert len(ps) == len(sim.ps)
    assert header["step"] == 2
    state = load_checkpoint(path)
    assert set(state.arrays) == {"grav_acc", "hydro_acc", "du_dt", "vsig"}
    assert state.arrays["grav_acc"].shape == (len(ps), 3)


def test_in_flight_sn_is_rescheduled_not_lost(tmp_path):
    # The prediction for an SN in flight at save time is dropped, but the
    # event itself must not be: the saved tsn is reset to the explosion
    # time and the restored run re-dispatches it as an overdue SN.
    path = tmp_path / "midflight.npz"
    cfg = IntegratorConfig(self_gravity=False, enable_cooling=False,
                           enable_star_formation=False)
    sim = GalaxySimulation(_ic(), dt=2e-3, n_pool=4, latency_steps=20,
                           surrogate_grid=8, seed=11, config=cfg)
    sim.run(4)  # SN dispatched at step 2, due back at step 22: in flight
    assert sim.pool.n_in_flight == 1
    save_simulation(sim, path)

    back = GalaxySimulation.restore(path)
    assert np.isfinite(back.ps.tsn[back.ps.pid == 10_000_000])[0]
    e_before = back.diagnostics()["thermal_energy"]
    back.run(1)  # overdue SN fires immediately
    assert back.integrator.n_sn_events == 1
    assert back.pool.n_in_flight == 1
    back.run(21)
    assert back.pool.summary()["n_returned"] == 1
    assert back.diagnostics()["thermal_energy"] > 100 * e_before


def test_restore_without_force_arrays_recomputes(tmp_path):
    # A checkpoint written before the first force pass has no arrays; the
    # restored run recomputes them on its first step.
    path = tmp_path / "fresh.npz"
    sim = _sim(_ic(with_star=False))
    save_simulation(sim, path)
    state = load_checkpoint(path)
    assert state.arrays == {}
    back = GalaxySimulation.restore(path)
    assert not back.integrator._first_forces_done
    back.run(1)  # must not raise


def test_checkpoint_carries_model_spec_for_exported_surrogate(tmp_path):
    """A trained-export surrogate now survives save/restore via its spec."""
    from repro.ml.serialize import save_model
    from repro.ml.unet import UNet3D

    net = UNet3D(in_channels=8, out_channels=5, base_channels=2, depth=1, seed=0)
    export = save_model(net, tmp_path / "ckpt_unet")
    sim = _sim(_ic(with_star=False), surrogate_model_path=export)
    sim.run(2)
    path = tmp_path / "ckpt_model.npz"
    sim.save(path)
    sim.close()

    _, header = load_simulation_state(path)
    spec_meta = header["extra"]["surrogate_spec"]
    assert spec_meta is not None
    assert spec_meta["kind"] == "model"
    assert spec_meta["model_path"] == str(export)

    restored = GalaxySimulation.restore(path)
    try:
        surr = restored.pool.server.local_surrogate
        assert surr.predictor is not None
        assert surr.predictor.model_path == str(export)
        x = np.random.default_rng(0).normal(size=(8, 8, 8, 8))
        assert np.array_equal(surr.predictor(x), net.forward(x))
    finally:
        restored.close()
