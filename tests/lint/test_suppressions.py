"""Suppression semantics: silence, prose, unused-reporting, select scoping."""

import textwrap

from repro.lint import UNUSED_RULE, lint_source

VIOLATION = """
import numpy as np

def deposit(grid, idx, w):
    np.add.at(grid, idx, w){comment}
"""


def _lint(source, select=None):
    return lint_source(
        textwrap.dedent(source), module="repro.sph.density", select=select
    )


def test_suppression_silences_named_rule():
    assert _lint(VIOLATION.format(comment="  # repro-lint: disable=hotpath-hygiene")) == []


def test_suppression_with_prose_reason():
    src = VIOLATION.format(
        comment="  # repro-lint: disable=hotpath-hygiene -- seed-idiom on purpose"
    )
    assert _lint(src) == []


def test_suppression_all_silences_everything():
    assert _lint(VIOLATION.format(comment="  # repro-lint: disable=all")) == []


def test_suppression_on_wrong_line_does_not_silence():
    src = """
    import numpy as np
    # repro-lint: disable=hotpath-hygiene

    def deposit(grid, idx, w):
        np.add.at(grid, idx, w)
    """
    rules = {f.rule for f in _lint(src)}
    assert "hotpath-hygiene" in rules
    assert UNUSED_RULE in rules  # and the stray comment is itself reported


def test_unused_suppression_reported():
    src = """
    import numpy as np

    def deposit(idx, w, size):
        return np.bincount(idx, weights=w, minlength=size)  # repro-lint: disable=hotpath-hygiene
    """
    findings = _lint(src)
    assert [f.rule for f in findings] == [UNUSED_RULE]
    assert "silences nothing" in findings[0].message


def test_unused_suppression_not_reported_for_unselected_rule():
    src = """
    import numpy as np

    def deposit(idx, w, size):
        return np.bincount(idx, weights=w, minlength=size)  # repro-lint: disable=hotpath-hygiene
    """
    # Under --select determinism the hotpath rule never ran; the suppression
    # had no chance to match and must not be called stale.
    assert _lint(src, select=["determinism"]) == []


def test_docstring_mention_is_not_a_suppression():
    src = '''
    import numpy as np

    def deposit(idx, w, size):
        """Silence the checker with ``# repro-lint: disable=hotpath-hygiene``."""
        return np.bincount(idx, weights=w, minlength=size)
    '''
    assert _lint(src) == []
