"""CLI contract (exit codes, JSON shape) and the tree-is-clean gate."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint import lint_paths, module_name_for, registered_rules

REPO = Path(__file__).resolve().parents[2]

VIOLATING = """import numpy as np


def deposit(grid, idx, w):
    np.add.at(grid, idx, w)
"""

CLEAN = """import numpy as np


def deposit(idx, w, size):
    return np.bincount(idx, weights=w, minlength=size)
"""


def _run(*args, cwd=REPO):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True, text=True, env=env, cwd=cwd,
    )


def _fixture(tmp_path, source):
    # Path it under a repro/ dir so module_name_for maps into rule scope.
    pkg = tmp_path / "repro" / "sph"
    pkg.mkdir(parents=True)
    f = pkg / "density.py"
    f.write_text(source)
    return f


def test_real_tree_is_clean():
    """The repo's own src/ holds every invariant (the CI gate)."""
    findings = lint_paths([str(REPO / "src")])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_exit_zero_on_clean_file(tmp_path):
    proc = _run(str(_fixture(tmp_path, CLEAN)))
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_cli_exit_one_and_text_findings_on_violation(tmp_path):
    proc = _run(str(_fixture(tmp_path, VIOLATING)))
    assert proc.returncode == 1
    assert "hotpath-hygiene" in proc.stdout
    assert "density.py:5:" in proc.stdout


def test_cli_json_output_shape(tmp_path):
    proc = _run(str(_fixture(tmp_path, VIOLATING)), "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert isinstance(payload, list) and len(payload) == 1
    entry = payload[0]
    assert entry["rule"] == "hotpath-hygiene"
    assert entry["line"] == 5
    assert set(entry) == {"rule", "path", "line", "col", "message"}


def test_cli_select_unknown_rule_is_usage_error(tmp_path):
    proc = _run(str(_fixture(tmp_path, CLEAN)), "--select", "no-such-rule")
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr


def test_cli_list_rules_names_the_catalog():
    proc = _run("--list-rules")
    assert proc.returncode == 0
    for name in registered_rules():
        assert name in proc.stdout
    assert len(registered_rules()) == 10


def test_module_name_for_anchors_at_repro():
    assert module_name_for(Path("src/repro/serve/shm.py")) == "repro.serve.shm"
    assert module_name_for(Path("src/repro/lint/__init__.py")) == "repro.lint"
    assert module_name_for(Path("scratch/foo.py")) == "foo"


def test_parse_error_is_reported_not_raised(tmp_path):
    f = _fixture(tmp_path, "def broken(:\n")
    findings = lint_paths([str(f)])
    assert [x.rule for x in findings] == ["parse-error"]
