"""Fixture tests: every rule fires on a violating snippet and stays quiet
on the idiomatic version of the same code."""

import textwrap

from repro.lint import lint_source


def _lint(source, module, select=None):
    return lint_source(textwrap.dedent(source), module=module, select=select)


def _rules(findings):
    return [f.rule for f in findings]


# ------------------------------------------------------------- determinism
def test_determinism_flags_global_rng():
    findings = _lint(
        """
        import numpy as np

        def kick(x):
            return x + np.random.normal(size=x.shape)
        """,
        module="repro.sph.density",
    )
    assert "determinism" in _rules(findings)
    assert "global RNG state" in findings[0].message


def test_determinism_flags_stdlib_random_and_wall_clock():
    findings = _lint(
        """
        import random
        import time

        def jitter():
            return random.random() + time.time()
        """,
        module="repro.core.sim",
        select=["determinism"],
    )
    assert len(findings) == 2


def test_determinism_allows_seeded_generator_and_perf_counter():
    findings = _lint(
        """
        import time
        import numpy as np

        def kick(x, seed):
            t0 = time.perf_counter()
            rng = np.random.default_rng(seed)
            return x + rng.normal(size=x.shape), time.perf_counter() - t0
        """,
        module="repro.sph.density",
        select=["determinism"],
    )
    assert findings == []


def test_determinism_scoped_to_deterministic_modules():
    findings = _lint(
        """
        import numpy as np

        def noise():
            return np.random.normal()
        """,
        module="repro.analysis.maps",  # observables, not a physics path
        select=["determinism"],
    )
    assert findings == []


# ------------------------------------------------------------ rng-plumbing
def test_rng_plumbing_flags_unpinnable_generator():
    findings = _lint(
        """
        import numpy as np

        def sample(n):
            rng = np.random.default_rng()
            return rng.uniform(size=n)
        """,
        module="repro.ic.disk",
        select=["rng-plumbing"],
    )
    assert _rules(findings) == ["rng-plumbing"]


def test_rng_plumbing_accepts_seed_param_self_attr_and_private():
    findings = _lint(
        """
        import numpy as np

        def sample(n, seed=0):
            return np.random.default_rng(seed).uniform(size=n)

        def _helper(n):
            return np.random.default_rng(0).uniform(size=n)

        class Sampler:
            def draw(self, n):
                return np.random.default_rng(self.seed).uniform(size=n)
        """,
        module="repro.ic.disk",
        select=["rng-plumbing"],
    )
    assert findings == []


# ------------------------------------------------------------ ledger-label
def test_ledger_label_flags_unlabeled_send():
    findings = _lint(
        """
        def exchange(comm, arr):
            comm.send(0, 1, arr)
        """,
        module="repro.fdps.distributed",
        select=["ledger-label"],
    )
    assert _rules(findings) == ["ledger-label"]


def test_ledger_label_accepts_explicit_label():
    findings = _lint(
        """
        def exchange(comm, parts, arr):
            comm.send(0, 1, arr, label="exchange_particles")
            comm.alltoallv(parts, label="exchange_let")
        """,
        module="repro.fdps.distributed",
        select=["ledger-label"],
    )
    assert findings == []


# ----------------------------------------------------------- import-gating
def test_import_gating_flags_optional_dep_outside_seam():
    findings = _lint(
        """
        import numba
        """,
        module="repro.sph.density",
        select=["import-gating"],
    )
    assert _rules(findings) == ["import-gating"]
    assert "outside the backend seam" in findings[0].message


def test_import_gating_flags_unguarded_import_in_seam():
    findings = _lint(
        """
        import numba
        """,
        module="repro.accel.backends.gpu_backend",
        select=["import-gating"],
    )
    assert _rules(findings) == ["import-gating"]
    assert "try/except ImportError" in findings[0].message


def test_import_gating_accepts_guarded_import_in_seam():
    findings = _lint(
        """
        try:
            import numba
            HAVE_NUMBA = True
        except ImportError:
            numba = None
            HAVE_NUMBA = False
        """,
        module="repro.accel.backends.gpu_backend",
        select=["import-gating"],
    )
    assert findings == []


# ---------------------------------------------------------- backend-purity
def test_backend_purity_flags_sibling_and_orchestration_imports():
    findings = _lint(
        """
        from repro.accel.backends.numba_backend import NumbaBackend
        from repro.core.sim import Simulation
        """,
        module="repro.accel.backends.gpu_backend",
        select=["backend-purity"],
    )
    assert _rules(findings) == ["backend-purity", "backend-purity"]


def test_backend_purity_accepts_base_and_kernel_params():
    findings = _lint(
        """
        from repro.accel.backends.base import KernelBackend
        from repro.sph.kernels import CubicSpline
        """,
        module="repro.accel.backends.gpu_backend",
        select=["backend-purity"],
    )
    assert findings == []


def test_backend_purity_exempts_registry_init_and_base():
    source = """
    from repro.accel.backends.numpy_backend import NumpyBackend
    """
    # The registry package __init__ must import backends to register them.
    assert _lint(source, module="repro.accel.backends", select=["backend-purity"]) == []
    assert _lint(source, module="repro.accel.backends.base", select=["backend-purity"]) == []


# --------------------------------------------------------- hotpath-hygiene
def test_hotpath_flags_add_at_and_per_particle_loops():
    findings = _lint(
        """
        import numpy as np

        def deposit(grid, idx, w, pos):
            np.add.at(grid, idx, w)
            for i in range(len(pos)):
                grid[i] += 1
            for i in range(pos.shape[0]):
                grid[i] += 1
        """,
        module="repro.sph.density",
        select=["hotpath-hygiene"],
    )
    assert _rules(findings) == ["hotpath-hygiene"] * 3


def test_hotpath_accepts_bincount_and_exempts_backends():
    clean = """
    import numpy as np

    def deposit(idx, w, size):
        return np.bincount(idx, weights=w, minlength=size)
    """
    assert _lint(clean, module="repro.sph.density", select=["hotpath-hygiene"]) == []
    scalar = """
    import numpy as np

    def kernel(grid, idx, w, pos):
        np.add.at(grid, idx, w)
    """
    # Backends reproduce the seed idioms on purpose; the rule is scoped out.
    assert _lint(
        scalar, module="repro.accel.backends.numpy_backend", select=["hotpath-hygiene"]
    ) == []


# ----------------------------------------------------------- lease-pairing
def test_lease_pairing_flags_leak():
    findings = _lint(
        """
        class T:
            def dispatch(self):
                index = self._free.pop()
                return index
        """,
        module="repro.serve.shm",
        select=["lease-pairing"],
    )
    assert _rules(findings) == ["lease-pairing"]
    assert "leaks" in findings[0].message


def test_lease_pairing_flags_release_outside_finally():
    findings = _lint(
        """
        class T:
            def convert(self, batch_id):
                leased = self._batch_slots.pop(batch_id, [])
                buffers = self.read(leased)
                self._free.extend(leased)
                return buffers
        """,
        module="repro.serve.shm",
        select=["lease-pairing"],
    )
    assert _rules(findings) == ["lease-pairing"]
    assert "finally" in findings[0].message


def test_lease_pairing_flags_takeover_without_release():
    findings = _lint(
        """
        class T:
            def convert(self, batch_id):
                leased = self._batch_slots.pop(batch_id, [])
                return self.read(leased)
        """,
        module="repro.serve.shm",
        select=["lease-pairing"],
    )
    assert _rules(findings) == ["lease-pairing"]


def test_lease_pairing_accepts_handoff_and_finally_release():
    findings = _lint(
        """
        class T:
            def dispatch(self, batch_id):
                leased = [self._free.pop()]
                self._batch_slots[batch_id] = leased

            def convert(self, batch_id):
                leased = self._batch_slots.pop(batch_id, [])
                try:
                    return self.read(leased)
                finally:
                    self._free.extend(leased)
        """,
        module="repro.serve.shm",
        select=["lease-pairing"],
    )
    assert findings == []


# ----------------------------------------------------------- wire-symmetry
def test_wire_symmetry_flags_missing_decoder():
    findings = _lint(
        """
        class Packet:
            def encode_into(self, out):
                out[0] = 1.0
                return 1
        """,
        module="repro.serve.mywire",
        select=["wire-symmetry"],
    )
    assert _rules(findings) == ["wire-symmetry"]
    assert "write-only" in findings[0].message


def test_wire_symmetry_flags_header_slot_drift():
    findings = _lint(
        """
        class Packet:
            def encode_into(self, out):
                out[0] = 1.0
                out[1] = 2.0
                out[2] = 3.0
                return 3

            @classmethod
            def from_buffer(cls, buf):
                return cls(buf[0], buf[1])
        """,
        module="repro.serve.mywire",
        select=["wire-symmetry"],
    )
    assert _rules(findings) == ["wire-symmetry"]
    assert "written but never decoded: [2]" in findings[0].message


def test_wire_symmetry_accepts_symmetric_header_and_check_helper():
    findings = _lint(
        """
        def _check_header(buf):
            assert buf[0] == 7.0 and buf[1] == 1.0

        class Packet:
            def encode_into(self, out):
                out[0] = 7.0
                out[1] = 1.0
                out[2] = 3.0
                out[3:5] = (1.0, 2.0)
                return 5

            @classmethod
            def from_buffer(cls, buf):
                _check_header(buf)
                return cls(buf[2], buf[3:5])
        """,
        module="repro.serve.mywire",
        select=["wire-symmetry"],
    )
    assert findings == []


def test_wire_symmetry_credits_header_counts_helper_slots():
    findings = _lint(
        """
        def _check_header(buf):
            assert buf[0] == 7.0 and buf[1] == 1.0

        def _header_counts(buf, n_slot, w_slot):
            return int(buf[n_slot]), int(buf[w_slot])

        class Packet:
            def encode_into(self, out):
                out[0] = 7.0
                out[1] = 1.0
                out[2] = 5.0
                out[3] = 4.0
                return 4

            @classmethod
            def from_buffer(cls, buf):
                _check_header(buf)
                n, w = _header_counts(buf, 2, 3)
                return cls(n, w)
        """,
        module="repro.serve.mywire",
        select=["wire-symmetry"],
    )
    assert findings == []


# ------------------------------------------------- lease-pairing: zombies
def test_lease_pairing_accepts_zombie_handoff_and_takeover():
    findings = _lint(
        """
        class T:
            def expire_batch(self, batch_id):
                leased = self._batch_slots.pop(batch_id, [])
                if leased:
                    self._zombies[batch_id] = leased

            def on_done_late(self, batch_id):
                leased = self._zombies.pop(batch_id, [])
                try:
                    return self.read(leased)
                finally:
                    self._free.extend(leased)
        """,
        module="repro.serve.shm",
        select=["lease-pairing"],
    )
    assert findings == []


def test_lease_pairing_flags_zombie_takeover_without_release():
    findings = _lint(
        """
        class T:
            def reap(self, batch_id):
                leased = self._zombies.pop(batch_id, [])
                return len(leased)
        """,
        module="repro.serve.shm",
        select=["lease-pairing"],
    )
    assert _rules(findings) == ["lease-pairing"]


# ------------------------------------------------------------ silent-except
def test_silent_except_flags_bare_and_broad_pass():
    findings = _lint(
        """
        def close(q):
            try:
                q.close()
            except Exception:
                pass

        def close2(q):
            try:
                q.close()
            except:
                pass
        """,
        module="repro.serve.server",
        select=["silent-except"],
    )
    assert _rules(findings) == ["silent-except", "silent-except"]
    assert "swallows" in findings[0].message


def test_silent_except_accepts_narrow_tuple():
    findings = _lint(
        """
        def __del__(self):
            try:
                self.close()
            except (OSError, ValueError, AttributeError, RuntimeError):
                pass
        """,
        module="repro.serve.server",
        select=["silent-except"],
    )
    assert findings == []


def test_silent_except_accepts_log_raise_and_exc_use():
    findings = _lint(
        """
        def a(fn, log):
            try:
                fn()
            except Exception:
                log.warning("fn failed")

        def b(fn):
            try:
                fn()
            except Exception:
                raise RuntimeError("fn failed")

        def c(fn, res_q, wid, bid):
            try:
                fn()
            except Exception as exc:
                res_q.put(("done", wid, bid, exc, 0.0))
        """,
        module="repro.serve.server",
        select=["silent-except"],
    )
    assert findings == []


def test_silent_except_flags_unused_bound_exception():
    findings = _lint(
        """
        def a(fn):
            try:
                fn()
            except Exception as exc:
                pass
        """,
        module="repro.core.sim",
        select=["silent-except"],
    )
    assert _rules(findings) == ["silent-except"]


# ------------------------------------------------------------ span-pairing
def test_span_pairing_flags_bare_span_call():
    findings = _lint(
        """
        def phase(tracer):
            tracer.span("gravity", cat="sim")
            do_work()
        """,
        module="repro.core.sim",
        select=["span-pairing"],
    )
    assert _rules(findings) == ["span-pairing"]
    assert "never closed" in findings[0].message


def test_span_pairing_flags_leaked_handle():
    findings = _lint(
        """
        class Engine:
            def phase(self):
                sp = self._tracer.span("gravity")
                do_work()
        """,
        module="repro.accel.engine",
        select=["span-pairing"],
    )
    assert _rules(findings) == ["span-pairing"]


def test_span_pairing_accepts_with_statement():
    findings = _lint(
        """
        class Engine:
            def phase(self):
                with self.tracer.span("gravity", backend="numpy"):
                    do_work()
        """,
        module="repro.accel.engine",
        select=["span-pairing"],
    )
    assert findings == []


def test_span_pairing_accepts_finally_closed_handle():
    findings = _lint(
        """
        def phase(tracer):
            sp = tracer.span("gravity")
            sp.__enter__()
            try:
                do_work()
            finally:
                sp.__exit__(None, None, None)
        """,
        module="repro.core.sim",
        select=["span-pairing"],
    )
    assert findings == []


def test_span_pairing_ignores_unrelated_span_methods():
    findings = _lint(
        """
        def fn(array):
            return array.span("x")  # not a tracer-named receiver
        """,
        module="repro.core.sim",
        select=["span-pairing"],
    )
    assert findings == []


def test_determinism_covers_obs_clocks():
    # repro.obs rides the determinism scope: absolute clocks are banned
    # there so traces from two runs stay comparable.
    findings = _lint(
        """
        import time

        def stamp():
            return time.time()
        """,
        module="repro.obs.trace",
        select=["determinism"],
    )
    assert _rules(findings) == ["determinism"]


# ------------------------------------------------------- runner-layer scope
def test_scopes_cover_the_runner_layer():
    """The new ``repro.core.runner`` layer rides the existing prefixes.

    The coupled runner owns comm-crossing calls (region ghosts, pool
    dispatch) and seeded randomness, so the ledger-label, determinism and
    rng-plumbing rules must all apply to its modules — by prefix, not by a
    hand-maintained list that a rename would silently miss.
    """
    from repro.lint.registry import get_rule

    for rule_name in ("determinism", "rng-plumbing", "ledger-label"):
        rule = get_rule(rule_name)
        for module in (
            "repro.core.runner",
            "repro.core.runner.step",
            "repro.core.runner.coupled",
        ):
            assert rule.applies_to(module), (rule_name, module)


def test_determinism_fires_in_runner_modules():
    findings = _lint(
        """
        import numpy as np

        def jitter():
            return np.random.normal()
        """,
        module="repro.core.runner.coupled",
        select=["determinism"],
    )
    assert _rules(findings) == ["determinism"]


def test_ledger_label_fires_in_runner_modules():
    findings = _lint(
        """
        def ship(comm, arr):
            comm.send(0, 1, arr)
        """,
        module="repro.core.runner.coupled",
        select=["ledger-label"],
    )
    assert _rules(findings) == ["ledger-label"]
