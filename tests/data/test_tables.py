"""Literature registries: Table 1, Table 2, Figure 2 series."""

import numpy as np
import pytest

from repro.data.runs import RUN_TABLE, run_by_name
from repro.data.sota import (
    ONE_BILLION,
    SOTA_RUNS,
    THIS_WORK,
    breaks_billion_barrier,
    figure2_series,
)


def test_table1_row_count():
    assert len(SOTA_RUNS) == 7  # the seven prior-art rows of Table 1


def test_no_prior_work_breaks_the_barrier():
    for run in SOTA_RUNS:
        assert not breaks_billion_barrier(run), run.paper


def test_this_work_breaks_the_barrier():
    assert breaks_billion_barrier(THIS_WORK)
    assert THIS_WORK.n_tot == pytest.approx(3.0e11)
    # ~500x more particles than the largest prior run (Sec. 6: "~500x").
    largest_prior = max(r.n_tot for r in SOTA_RUNS)
    assert THIS_WORK.n_tot / largest_prior == pytest.approx(469, rel=0.1)


def test_this_work_star_by_star_resolution():
    assert THIS_WORK.m_gas == 0.75
    assert THIS_WORK.m_star == 0.75
    # Prior MW-mass runs sit at >= 400 M_sun (Richings 2022).
    mw_mass_prior = [r for r in SOTA_RUNS if r.m_tot >= 1e12]
    assert all(r.m_gas >= 400.0 for r in mw_mass_prior)


def test_dm_mass_derived():
    richings = next(r for r in SOTA_RUNS if "Richings" in r.paper)
    # Paper text: DM resolution ~1e4 M_sun for Richings et al.
    assert 1e3 < richings.m_dm < 1e4


def test_figure2_series_structure():
    fig = figure2_series()
    for panel in ("dm", "gas"):
        assert len(fig[panel]["points"]) >= 6
        name, m_tot, m_part = fig[panel]["this_work"]
        assert "This work" in name
        assert m_part <= 7.0  # DM 6 M_sun (Table 2), gas 0.75 M_sun
        assert "one_billion" in fig[panel]["lines"]
        xs, ys = fig[panel]["lines"]["one_billion"]
        assert np.allclose(xs / ys, ONE_BILLION)


def test_this_work_below_barrier_line_in_fig2():
    # Fig. 2: "This Work" sits below the one-billion line (more particles).
    fig = figure2_series()
    _, m_tot, m_part = fig["gas"]["this_work"]
    assert m_tot / m_part > ONE_BILLION


# --------------------------------------------------------------------- Table 2
def test_table2_rows():
    assert len(RUN_TABLE) == 8
    weak = run_by_name("weakMW2M")
    assert weak.nodes_max == 148896
    assert weak.n_total == pytest.approx(3.01e11, rel=0.01)
    assert weak.m_tot == pytest.approx(1.2e12)


def test_weak_run_is_2m_per_node():
    weak = run_by_name("weakMW2M")
    assert weak.n_total / weak.nodes_max == pytest.approx(2.0e6, rel=0.02)


def test_strong_runs_fixed_totals():
    s = run_by_name("strongMWs")
    assert s.kind == "strong"
    assert s.n_total == pytest.approx(4.75e10, rel=0.01)
    m = run_by_name("strongMWm")
    assert m.n_total == pytest.approx(5.17e9, rel=0.02)


def test_gas_fractions_sensible():
    for run in RUN_TABLE:
        assert 0.05 < run.gas_fraction < 0.75, run.name


def test_unknown_run_raises():
    with pytest.raises(KeyError):
        run_by_name("nope")
