"""Tree gravity vs direct summation, LET-based distributed forces."""

import numpy as np
import pytest

from repro.fdps.comm import SimComm
from repro.fdps.domain import DomainDecomposition
from repro.fdps.interaction import InteractionCounter
from repro.fdps.let import build_let_exports, exchange_let
from repro.fdps.tree import Octree
from repro.gravity.kernels import accel_direct
from repro.gravity.treegrav import tree_accel
from tests.conftest import plummer_positions


@pytest.fixture(scope="module")
def cluster():
    rng = np.random.default_rng(11)
    pos = plummer_positions(1500, a=40.0, rng=rng)
    mass = rng.uniform(0.5, 2.0, 1500)
    eps = np.full(1500, 0.5)
    return pos, mass, eps


def _rel_err(a, b):
    scale = np.linalg.norm(b, axis=1)
    return np.linalg.norm(a - b, axis=1) / np.maximum(scale, 1e-300)


def test_tree_matches_direct_small_theta(cluster):
    pos, mass, eps = cluster
    ref = accel_direct(pos, mass, eps)
    res = tree_accel(pos, mass, eps, theta=0.2, n_g=64)
    assert np.median(_rel_err(res.acc, ref)) < 1e-3
    assert np.percentile(_rel_err(res.acc, ref), 99) < 1e-2


def test_tree_error_decreases_with_theta(cluster):
    pos, mass, eps = cluster
    ref = accel_direct(pos, mass, eps)
    errs = []
    for theta in (1.0, 0.6, 0.3):
        res = tree_accel(pos, mass, eps, theta=theta, n_g=64)
        errs.append(np.median(_rel_err(res.acc, ref)))
    assert errs[0] > errs[1] > errs[2]


def test_theta_zero_is_exact_direct(cluster):
    pos, mass, eps = cluster
    ref = accel_direct(pos, mass, eps)
    res = tree_accel(pos, mass, eps, theta=0.0, n_g=128)
    assert np.allclose(res.acc, ref, rtol=1e-12, atol=1e-14)


def test_larger_ng_longer_lists(cluster):
    # The n_g trade-off of Sec. 5.2.4: bigger groups -> fewer walks but
    # longer average interaction lists.
    pos, mass, eps = cluster
    r_small = tree_accel(pos, mass, eps, theta=0.5, n_g=32)
    r_large = tree_accel(pos, mass, eps, theta=0.5, n_g=512)
    assert r_large.n_groups < r_small.n_groups
    assert r_large.mean_list_length > r_small.mean_list_length


def test_interaction_counter_threaded(cluster):
    pos, mass, eps = cluster
    c = InteractionCounter()
    res = tree_accel(pos, mass, eps, theta=0.5, n_g=128, counter=c)
    assert c.interactions("gravity") == res.interactions
    assert res.interactions < len(pos) ** 2  # beat direct summation
    assert res.interactions > 0


def test_mixed_precision_tree(cluster):
    pos, mass, eps = cluster
    ref = accel_direct(pos, mass, eps)
    res = tree_accel(pos, mass, eps, theta=0.3, n_g=128, mixed_precision=True)
    assert np.median(_rel_err(res.acc, ref)) < 5e-3


def test_let_exports_conserve_mass(cluster):
    pos, mass, eps = cluster
    tree = Octree.build(pos, mass, leaf_size=16)
    exp = build_let_exports(tree, np.array([200.0] * 3), np.array([260.0] * 3), 0.5)
    assert exp.mass.sum() == pytest.approx(mass.sum())
    assert exp.n_pseudo > 0
    # pack/unpack round-trip
    back = exp.unpack(exp.pack())
    assert np.allclose(back.pos, exp.pos)
    assert np.allclose(back.mass, exp.mass)


def test_distributed_let_forces_match_global(cluster):
    """End-to-end FDPS pipeline: decompose, exchange LETs, compute forces.

    Per-rank forces using local + imported LET matter must agree with the
    global tree result at tree-code accuracy.
    """
    pos, mass, eps = cluster
    ref = accel_direct(pos, mass, eps)
    theta = 0.35

    dd = DomainDecomposition.fit(pos, (2, 2, 1), sample=None)
    ranks = dd.assign(pos)
    comm = SimComm(dd.n_domains)
    glo, ghi = pos.min(axis=0), pos.max(axis=0)

    trees = []
    for r in range(dd.n_domains):
        sel = ranks == r
        trees.append(Octree.build(pos[sel], mass[sel], leaf_size=16))
    imports = exchange_let(comm, trees, dd, glo, ghi, theta)

    acc = np.zeros_like(pos)
    for r in range(dd.n_domains):
        sel = ranks == r
        res = tree_accel(
            pos[sel],
            mass[sel],
            eps[sel],
            theta=theta,
            n_g=64,
            extra_pos=imports[r].pos,
            extra_mass=imports[r].mass,
        )
        acc[sel] = res.acc
    err = _rel_err(acc, ref)
    assert np.median(err) < 5e-3
    assert np.percentile(err, 99) < 5e-2


def test_let_cheaper_than_full_exchange(cluster):
    pos, mass, eps = cluster
    dd = DomainDecomposition.fit(pos, (2, 2, 1), sample=None)
    ranks = dd.assign(pos)
    comm = SimComm(dd.n_domains)
    glo, ghi = pos.min(axis=0), pos.max(axis=0)
    trees = [
        Octree.build(pos[ranks == r], mass[ranks == r], leaf_size=16)
        for r in range(dd.n_domains)
    ]
    exchange_let(comm, trees, dd, glo, ghi, theta=0.5)
    sent = comm.stats["exchange_let"].bytes_total
    full = pos.nbytes + mass.nbytes
    # Each rank would need the full remote complement: (p-1) * full ~ 3*full.
    assert sent < 3 * full
