"""Direct gravity kernels: analytic checks, symmetry, mixed precision."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdps.interaction import InteractionCounter
from repro.gravity.kernels import (
    accel_between,
    accel_between_mixed,
    accel_direct,
    potential_direct,
    total_potential_energy,
)
from repro.util.constants import GRAV_CONST


def test_two_body_force_magnitude():
    # Unsoftened two-body: |a| = G m / r^2.
    pos = np.array([[0.0, 0.0, 0.0], [10.0, 0.0, 0.0]])
    acc = accel_direct(pos, np.array([5.0, 3.0]), np.zeros(2))
    assert acc[0, 0] == pytest.approx(GRAV_CONST * 3.0 / 100.0)
    assert acc[1, 0] == pytest.approx(-GRAV_CONST * 5.0 / 100.0)
    assert np.allclose(acc[:, 1:], 0.0)


def test_softening_caps_close_force():
    pos = np.array([[0.0, 0.0, 0.0], [1e-6, 0.0, 0.0]])
    eps = np.array([1.0, 1.0])
    acc = accel_direct(pos, np.ones(2), eps)
    # denominator ~ (eps_i^2 + eps_j^2)^{3/2} = 2^{3/2}
    assert abs(acc[0, 0]) < GRAV_CONST


def test_momentum_conservation_random(rng):
    pos = rng.normal(0, 10, (50, 3))
    mass = rng.uniform(0.5, 2.0, 50)
    eps = np.full(50, 0.3)
    acc = accel_direct(pos, mass, eps)
    # Newton's third law: sum of m*a vanishes.
    assert np.allclose((mass[:, None] * acc).sum(axis=0), 0.0, atol=1e-10)


def test_self_force_is_zero():
    pos = np.zeros((1, 3))
    acc = accel_direct(pos, np.array([1e6]), np.array([0.1]))
    assert np.allclose(acc, 0.0)


def test_counter_counts_n_squared():
    c = InteractionCounter()
    pos = np.random.default_rng(0).normal(size=(20, 3))
    accel_direct(pos, np.ones(20), np.ones(20), counter=c)
    assert c.interactions("gravity") == 400
    assert c.flops("gravity") == 400 * 27


def test_mixed_precision_close_to_double(rng):
    pos = rng.normal(0, 100.0, (100, 3)) + np.array([5000.0, 0.0, 0.0])
    mass = rng.uniform(0.5, 2.0, 100)
    eps = np.full(100, 1.0)
    a64 = accel_between(pos, eps, pos, mass, eps, exclude_self=True)
    a32 = accel_between_mixed(pos, eps, pos, mass, eps, exclude_self=True)
    scale = np.linalg.norm(a64, axis=1).max()
    assert np.max(np.abs(a64 - a32)) / scale < 1e-4


def test_mixed_precision_beats_naive_float32_far_from_origin(rng):
    # The point of the relative-coordinate trick: far from the origin a
    # naive float32 cast destroys small separations; the group-relative
    # conversion keeps full single-precision *relative* accuracy.
    offset = np.array([1.0e7, 0.0, 0.0])
    pos = rng.normal(0, 1.0, (50, 3)) + offset
    mass = rng.uniform(0.5, 2.0, 50)
    eps = np.full(50, 0.05)
    a64 = accel_between(pos, eps, pos, mass, eps, exclude_self=True)
    a_mixed = accel_between_mixed(pos, eps, pos, mass, eps, exclude_self=True)

    p32 = pos.astype(np.float32).astype(np.float64)  # naive truncation
    a_naive = accel_between(p32, eps, p32, mass, eps, exclude_self=True)

    scale = np.linalg.norm(a64, axis=1).max()
    err_mixed = np.max(np.abs(a64 - a_mixed)) / scale
    err_naive = np.max(np.abs(a64 - a_naive)) / scale
    assert err_mixed < 1e-3
    assert err_mixed < 0.01 * err_naive


def test_potential_matches_pairwise_sum(rng):
    pos = rng.normal(0, 5, (30, 3))
    mass = rng.uniform(0.5, 2.0, 30)
    eps = np.full(30, 0.2)
    pot = potential_direct(pos, mass, eps)
    # brute force
    ref = np.zeros(30)
    for i in range(30):
        for j in range(30):
            if i == j:
                continue
            r2 = np.sum((pos[i] - pos[j]) ** 2)
            ref[i] -= GRAV_CONST * mass[j] / np.sqrt(r2 + eps[i] ** 2 + eps[j] ** 2)
    assert np.allclose(pot, ref)


def test_total_potential_energy_negative(rng):
    pos = rng.normal(0, 5, (40, 3))
    mass = rng.uniform(0.5, 2.0, 40)
    u = total_potential_energy(pos, mass, np.full(40, 0.2))
    assert u < 0.0


@given(st.integers(2, 30), st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_momentum_conservation_property(n, seed):
    rng = np.random.default_rng(seed)
    pos = rng.normal(0, 10, (n, 3))
    mass = rng.uniform(0.1, 10.0, n)
    eps = rng.uniform(0.01, 1.0, n)
    acc = accel_direct(pos, mass, eps)
    f_total = (mass[:, None] * acc).sum(axis=0)
    scale = np.abs(mass[:, None] * acc).sum() + 1e-300
    assert np.all(np.abs(f_total) / scale < 1e-10)


def test_chunking_consistency(rng, monkeypatch):
    # Results must not depend on the source-axis chunk boundary.
    pos = rng.normal(0, 10, (300, 3))
    mass = rng.uniform(0.5, 2.0, 300)
    eps = np.full(300, 0.3)
    a_ref = accel_direct(pos, mass, eps)
    monkeypatch.setenv("REPRO_GRAV_CHUNK", "16")
    a_small = accel_direct(pos, mass, eps)
    assert np.allclose(a_ref, a_small)


def test_grav_chunk_size_tunable(monkeypatch):
    from repro.gravity.kernels import grav_chunk_size

    monkeypatch.delenv("REPRO_GRAV_CHUNK", raising=False)
    monkeypatch.delenv("REPRO_GRAV_TEMP_MB", raising=False)
    auto = grav_chunk_size(256)
    assert 256 <= auto <= 65536
    # Auto-sizing shrinks the tile as the target count grows.
    assert grav_chunk_size(8192) <= auto
    monkeypatch.setenv("REPRO_GRAV_TEMP_MB", "8")
    assert grav_chunk_size(256) < auto
    monkeypatch.setenv("REPRO_GRAV_CHUNK", "1234")
    assert grav_chunk_size(256) == 1234
