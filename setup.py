"""Thin setup shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works through the legacy develop path in offline
environments that lack the ``wheel`` package (PEP 660 editable installs
require it).
"""

from setuptools import setup

setup()
