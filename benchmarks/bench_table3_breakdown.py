"""Table 3: the per-part time/FLOP breakdown, model vs paper, plus the
n_g ablation the paper discusses in Sec. 5.2.4.

Model columns must match the paper at the Fugaku anchor (that is the
calibration point); the Rusty and Miyabi interaction rows test the
*transfer* of the model across architectures (shape target: within ~2x).
"""

import numpy as np

from benchmarks.conftest import fmt_table
from repro.perf.costmodel import PAPER_TABLE3, RunConfig, StepCostModel
from repro.perf.machines import FUGAKU, MIYABI, RUSTY


def _fugaku_anchor():
    model = StepCostModel()
    cfg = RunConfig(machine=FUGAKU, n_nodes=148896, n_particles=148896 * 2.0e6)
    return model, cfg, model.breakdown(cfg)


def test_table3_fugaku(benchmark, write_result):
    model, cfg, bd = benchmark.pedantic(_fugaku_anchor, rounds=1, iterations=1)
    rows = []
    for key, (paper_t, _paper_f) in PAPER_TABLE3.items():
        if key == "total":
            continue
        rows.append([key, bd[key], paper_t, bd[key] / paper_t])
    total = sum(bd.values())
    rows.append(["TOTAL", total, PAPER_TABLE3["total"][0], total / PAPER_TABLE3["total"][0]])
    table = fmt_table(["part", "model [s]", "paper [s]", "ratio"], rows)
    table += (
        f"\nsustained: {model.achieved_pflops(cfg):.2f} PFLOPS"
        f" (paper 8.20), efficiency {100 * model.efficiency(cfg):.2f}%"
        f" (paper 0.90%)\n"
    )
    write_result("table3_fugaku", table)
    for row in rows:
        assert 0.8 < row[3] < 1.25, row[0]


def test_table3_rusty_miyabi_transfer(benchmark, write_result):
    def _run():
        model = StepCostModel()
        rusty = RunConfig(machine=RUSTY, n_nodes=193, n_particles=2.3e11)
        # MW_miyabi: 2e7 particles/node, n_g = 65536 (Sec. 5.2.4: "We found
        # n_g = 65536 best for Miyabi").
        miyabi = RunConfig(
            machine=MIYABI, n_nodes=1024, n_particles=1024 * 2.0e7, n_g=65536
        )
        return model, model.breakdown(rusty), model.breakdown(miyabi)

    model, bd_rusty, bd_miyabi = benchmark.pedantic(_run, rounds=1, iterations=1)
    # Paper Table 3: Rusty gravity 138 s (119 PFLOP), hydro force 18.4 s;
    # Miyabi gravity 22.6 s (52.4 PFLOP).
    rows = [
        ["rusty interaction_gravity", bd_rusty["interaction_gravity"], 138.0],
        ["rusty interaction_hydro_force", bd_rusty["interaction_hydro_force"], 18.4],
        ["miyabi interaction_gravity", bd_miyabi["interaction_gravity"], 22.6],
    ]
    table = fmt_table(["part", "model [s]", "paper [s]"], rows)
    write_result("table3_transfer", table)
    for name, modeled, paper in rows:
        assert 0.3 < modeled / paper < 3.0, name  # cross-machine shape


def test_table3_ng_ablation(benchmark, write_result):
    """Sec. 5.2.4: the group-size trade-off (paper found n_g = 2048 best)."""

    def _sweep():
        model = StepCostModel()
        rows = []
        for n_g in (256, 1024, 2048, 8192, 32768):
            cfg = RunConfig(
                machine=FUGAKU, n_nodes=148896, n_particles=148896 * 2.0e6, n_g=n_g
            )
            bd = model.breakdown(cfg)
            # Tree-walk cost shrinks with n_g; interaction cost grows.
            walk = bd["tree_gravity"] * (2048.0 / n_g) ** 0.5
            rows.append([n_g, bd["interaction_gravity"], walk,
                         bd["interaction_gravity"] + walk])
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_result(
        "table3_ng_ablation",
        fmt_table(["n_g", "interaction [s]", "walk [s]", "sum [s]"], rows),
    )
    sums = [r[3] for r in rows]
    best = [r[0] for r in rows][int(np.argmin(sums))]
    # The optimum sits at an intermediate n_g (the paper's 2048 regime),
    # not at either extreme of the sweep.
    assert best not in (256, 32768)
