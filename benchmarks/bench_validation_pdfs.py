"""Sec. 3.3 validation (via ref. [14]): surrogate vs direct integration.

The paper validates the surrogate by showing density/temperature PDFs and
global structure statistics indistinguishable from conventional runs.  We
run the *same* SN in the same turbulent box two ways — direct SPH
integration with thermal feedback, and the surrogate's field-space
prediction — and compare the resulting gas PDFs; the surrogate must land
far closer to the direct result than "no SN at all" does.
"""

import numpy as np

from benchmarks.conftest import fmt_table
from repro.analysis.pdfs import density_pdf, pdf_distance, temperature_pdf
from repro.core.conventional import ConventionalIntegrator
from repro.physics.feedback import SNFeedback
from repro.sn.turbulence import make_turbulent_box
from repro.surrogate.model import SedovBlastOracle, SNSurrogate

T_AFTER = 0.01  # Myr: enough for a resolved shell in the small box


def _box(seed=11):
    return make_turbulent_box(n_per_side=10, side=10.0, mean_density=1.0,
                              particle_mass=1.0, temperature=100.0,
                              mach=2.0, seed=seed)


def _run():
    # Direct: thermal dump + adaptive CFL integration to T_AFTER.
    direct = _box()
    SNFeedback().inject(direct, np.zeros(3))
    sim = ConventionalIntegrator(
        direct, dt_max=5e-4, courant=0.15, self_gravity=False,
        enable_cooling=False, enable_star_formation=False,
    )
    sim.run_until(T_AFTER, max_steps=400)
    direct = sim.ps

    # Surrogate: one field-space prediction, no integration.
    surr_ps = _box()
    surrogate = SNSurrogate(
        oracle=SedovBlastOracle(t_after=T_AFTER), n_grid=8, side=10.0
    )
    predicted = surrogate.predict_particles(surr_ps, np.zeros(3), np.random.default_rng(0))
    # Density for PDF purposes: quick SPH density pass on both states.
    from repro.sph.density import compute_density

    for ps in (direct, predicted):
        gas = ps.where_type(2)
        d = compute_density(ps.pos[gas], ps.vel[gas], ps.mass[gas], ps.u[gas],
                            ps.h[gas], n_ngb=32)
        ps.dens[gas] = d.dens

    untouched = _box()
    gas = untouched.where_type(2)
    d = compute_density(untouched.pos[gas], untouched.vel[gas],
                        untouched.mass[gas], untouched.u[gas],
                        untouched.h[gas], n_ngb=32)
    untouched.dens[gas] = d.dens
    return direct, predicted, untouched


def test_validation_pdfs(benchmark, write_result):
    direct, predicted, untouched = benchmark.pedantic(_run, rounds=1, iterations=1)
    bins_t = np.linspace(0, 9, 25)
    bins_r = np.linspace(-6, 4, 25)
    t_direct = temperature_pdf(direct, bins=bins_t)
    t_surr = temperature_pdf(predicted, bins=bins_t)
    t_none = temperature_pdf(untouched, bins=bins_t)
    r_direct = density_pdf(direct, bins=bins_r)
    r_surr = density_pdf(predicted, bins=bins_r)

    d_t = pdf_distance(t_direct, t_surr)
    d_t_none = pdf_distance(t_direct, t_none)
    d_r = pdf_distance(r_direct, r_surr)
    rows = [
        ["T-PDF distance: surrogate vs direct", d_t],
        ["T-PDF distance: no-SN vs direct", d_t_none],
        ["rho-PDF distance: surrogate vs direct", d_r],
        ["hot gas fraction (direct)", _hot_fraction(direct)],
        ["hot gas fraction (surrogate)", _hot_fraction(predicted)],
        ["hot gas fraction (no SN)", _hot_fraction(untouched)],
    ]
    write_result("validation_pdfs", fmt_table(["quantity", "value"], rows))

    # The surrogate's PDFs must be closer to direct than ignoring the SN is.
    assert d_t < d_t_none
    # Both runs must actually contain hot SN gas; the untouched box none.
    assert _hot_fraction(direct) > 0
    assert _hot_fraction(predicted) > 0
    assert _hot_fraction(untouched) == 0.0


def _hot_fraction(ps) -> float:
    from repro.util.constants import internal_energy_to_temperature

    gas = ps.where_type(2)
    t = internal_energy_to_temperature(ps.u[gas])
    return float(np.mean(t > 1e5))
