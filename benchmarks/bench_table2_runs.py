"""Table 2: the run-configuration registry, with derived per-node loads."""

from benchmarks.conftest import fmt_table
from repro.data.runs import RUN_TABLE


def _rows():
    rows = []
    for run in RUN_TABLE:
        rows.append(
            [
                run.name,
                run.machine,
                f"{run.nodes_max}-{run.nodes_min}",
                run.m_dm,
                run.n_dm,
                run.m_star,
                run.n_star,
                run.m_gas,
                run.n_gas,
                run.m_tot,
                run.n_total / run.nodes_max,
                run.n_total / run.nodes_min,
            ]
        )
    return rows


def test_table2(benchmark, write_result):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    write_result(
        "table2_runs",
        fmt_table(
            ["Run", "machine", "nodes", "m_DM", "N_DM", "m_star", "N_star",
             "m_gas", "N_gas", "M_tot", "N/node max", "N/node min"],
            rows,
        ),
    )
    # weakMW2M: 2M per node at full scale (the memory limit of Sec. 5.1).
    weak = next(r for r in rows if r[0] == "weakMW2M")
    assert abs(weak[10] / 2.0e6 - 1) < 0.02
    # Fugaku *strong*-scaling runs (fixed N) fit 32 GB/node at ~150 B per
    # particle even at their smallest node counts; weak runs shrink N with
    # the node count, so only their max-node load is meaningful.
    from repro.data.runs import RUN_TABLE as _RT

    for run in _RT:
        if run.machine == "fugaku" and run.kind == "strong":
            assert run.n_total / run.nodes_min * 150 < 32e9, run.name
