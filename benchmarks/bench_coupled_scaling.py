"""Coupled scaling benchmark: multi-rank surrogate runs, priced at scale.

The coupled runner (:mod:`repro.core.runner.coupled`) emulates ``p`` main
ranks serially in one process, so its wall clock is roughly the *sum* of
the per-rank work.  This bench recovers the parallel story the paper tells
(Figs. 6-7) from what the emulation actually measures:

* **bit-identity first**: at every size, a 2-rank ``force_mode="global"``
  run over the shared surrogate service must reproduce the single-rank
  state byte-for-byte, with real ``region_ghost`` bytes on the ledger
  (the planted SN straddles the domain cut) — asserted, not plotted;
* **measured scaling**: ``force_mode="distributed"`` runs (per-rank trees
  + LET exchange) are timed, and the modeled parallel step time replaces
  the serialized per-rank phase seconds with the slowest rank's
  (``TimerRegistry.slowest`` — the paper's "slowest MPI process");
* **cost-model pricing**: the measured byte ledgers (migration, LET,
  region ghosts, pool round trips) are priced on Fugaku's network model
  (:func:`repro.perf.costmodel.comm_seconds_from_ledger`), and the
  Sec. 5.2 :class:`StepCostModel` extrapolates a full-scale (weakMW2M,
  148,896-node) step time — once at the paper's modeled kernel speeds and
  once rescaled by this machine's measured kernel calibration
  (``BENCH_backend_kernels.json`` via :func:`calibration_factors`);
* **overlap**: one ``process``-transport run scores the paper's
  "inference fully overlaps" claim via :func:`serve_summary`.

The numba backend is used when its toolchain is importable; otherwise the
registry's fallback (``numpy``) runs and the JSON records which backend the
numbers belong to.  Results land in
``benchmarks/results/BENCH_coupled_scaling.json``.  Runs as a pytest bench
or standalone (the CI coupled leg):

    python benchmarks/bench_coupled_scaling.py --smoke
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import GalaxySimulation
from repro.accel.backends import get_backend
from repro.core.integrator import IntegratorConfig
from repro.fdps.particles import ParticleType
from repro.ic.galaxy import make_mw_mini
from repro.perf.calibrate import calibration_factors, load_bench
from repro.perf.costmodel import (
    PAPER_TABLE3,
    RunConfig,
    StepCostModel,
    measured_comm_breakdown,
    serve_summary,
)
from repro.perf.machines import FUGAKU
from repro.util.timers import TimerRegistry

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
DT = 2e-3
LATENCY = 2
N_POOL = 3
SEED = 7

#: Paper full-scale anchor (weakMW2M): Table 3's own configuration.
ANCHOR_NODES = 148_896
ANCHOR_NLOC = 2.0e6

#: Which measured-kernel calibration row prices each model breakdown part.
KERNEL_OF_PART = {
    "interaction_gravity": "gravity",
    "interaction_density": "hydro_density",
    "interaction_hydro_force": "hydro_force",
    "kernel_size": "hydro_density",
}


def _boundary_sn_ic(n_total):
    """A mini galaxy with one SN cube straddling the 2-rank domain cut.

    The star sits at the overall median x — the (2, 1, 1) multisection cuts
    there — and six gas particles are planted on both sides of it inside
    the 60 pc region cube, with modest smoothing lengths (the IC's
    kpc-scale gas h would make the voxel deposit pathologically wide).
    """
    ps = make_mw_mini(n_total=n_total, seed=1)
    stars = np.flatnonzero(ps.where_type(ParticleType.STAR))
    gas = np.flatnonzero(ps.where_type(ParticleType.GAS))
    si = stars[0]
    ps.pos[si] = [np.median(ps.pos[:, 0]), 0.0, 0.0]
    ps.tsn[si] = 1e-3  # explodes on step 0
    rng = np.random.default_rng(3)
    ps.pos[gas[:6]] = ps.pos[si] + rng.uniform(-25.0, 25.0, size=(6, 3))
    ps.pos[gas[:3], 0] = ps.pos[si, 0] - np.abs(ps.pos[gas[:3], 0] - ps.pos[si, 0])
    ps.pos[gas[3:6], 0] = ps.pos[si, 0] + np.abs(ps.pos[gas[3:6], 0] - ps.pos[si, 0])
    ps.h[gas[:6]] = 10.0
    return ps


def _config(backend):
    # Cooling off: the planted clump is unphysically dense and makes the
    # cooling substeps stiff; scaling is about the coupling machinery.
    return IntegratorConfig(
        enable_cooling=False, enable_star_formation=False, seed=SEED,
        backend=backend,
    )


def _run(n_total, n_ranks, steps, backend, force_mode="global", transport="sync"):
    """One timed run; returns (state bytes, wall seconds, sim stats dict)."""
    kw = {} if transport == "sync" else {
        "serve_transport": transport, "serve_workers": 2,
    }
    sim = GalaxySimulation(
        _boundary_sn_ic(n_total), dt=DT, n_pool=N_POOL,
        latency_steps=LATENCY, seed=SEED, config=_config(backend),
        n_ranks=n_ranks, coupled_force_mode=force_mode, **kw,
    )
    try:
        t0 = time.perf_counter()
        sim.run(steps)
        wall = time.perf_counter() - t0
        state = sim.ps.pack().tobytes()
        out = {"n_sn_events": sim.diagnostics()["n_sn_events"]}
        if n_ranks > 1:
            runner = sim.integrator
            stats = runner.comm_stats()
            per_rank = [sum(t.totals().values()) for t in runner.driver.timers]
            slowest = sum(TimerRegistry.slowest(runner.driver.timers).values())
            out.update(
                comm_bytes={k: s.bytes_total for k, s in stats.items() if s.n_calls},
                comm_modeled_s=measured_comm_breakdown(stats, FUGAKU, n_ranks),
                region_ghost_bytes=stats["region_ghost"].bytes_total,
                # Replace the serialized per-rank phase seconds with the
                # slowest rank's: the parallel wall the emulation stands for.
                parallel_wall=wall - sum(per_rank) + slowest,
            )
        else:
            out.update(comm_bytes={}, comm_modeled_s={}, parallel_wall=wall)
        if transport != "sync":
            out["serve"] = serve_summary(sim.server.metrics_dict())
    finally:
        sim.close()
    return state, wall, out


def _extrapolate(backend):
    """Full-scale (Table 3 anchor) step time, modeled and locally calibrated."""
    model = StepCostModel()
    cfg = RunConfig(
        machine=FUGAKU, n_nodes=ANCHOR_NODES,
        n_particles=ANCHOR_NODES * ANCHOR_NLOC,
    )
    parts = model.breakdown(cfg)
    bench_path = Path(__file__).parent / "results" / "BENCH_backend_kernels.json"
    factors = {}
    if bench_path.exists():
        bench = load_bench(bench_path)
        name = backend if backend in bench.get("available_backends", []) else "numpy"
        factors = calibration_factors(bench, backend=name)
    local_parts = {
        part: s / factors[KERNEL_OF_PART[part]]
        if part in KERNEL_OF_PART and KERNEL_OF_PART[part] in factors
        else s
        for part, s in parts.items()
    }
    return {
        "machine": FUGAKU.name,
        "n_nodes": ANCHOR_NODES,
        "n_particles": ANCHOR_NODES * ANCHOR_NLOC,
        "model_total_s": float(sum(parts.values())),
        "paper_total_s": PAPER_TABLE3["total"][0],
        "calibration_factors": factors,
        "local_backend_total_s": float(sum(local_parts.values())),
    }


def run_coupled_scaling(sizes, rank_plans, steps, backend):
    payload = {
        "smoke": SMOKE, "steps": steps, "dt": DT, "backend": backend,
        "sizes": sizes, "rows": [], "parity": {}, "scaling": {},
    }
    rows = []
    parallel = {}  # (n, ranks) -> parallel s/step
    for n in sizes:
        ref_state, ref_wall, ref = _run(n, 1, steps, backend)
        parallel[n, 1] = ref["parallel_wall"] / steps
        rows.append([n, 1, ref["parallel_wall"] / steps, ref_wall / steps])
        payload["rows"].append({
            "n": n, "ranks": 1, "wall_s_per_step": ref_wall / steps,
            "parallel_s_per_step": ref["parallel_wall"] / steps,
            "n_sn_events": ref["n_sn_events"],
        })

        # The headline contract: global-force 2-rank run over the shared
        # service is byte-identical, with real cross-rank region ghosts.
        state, _, chk = _run(n, 2, steps, backend, force_mode="global")
        assert state == ref_state, f"coupled parity broken at N={n}"
        assert chk["region_ghost_bytes"] > 0, f"SN cube missed the cut at N={n}"
        assert chk["n_sn_events"] == ref["n_sn_events"] >= 1
        payload["parity"][str(n)] = True

        for ranks in rank_plans.get(n, ()):
            state, wall, out = _run(
                n, ranks, steps, backend, force_mode="distributed"
            )
            assert out["region_ghost_bytes"] > 0
            parallel[n, ranks] = out["parallel_wall"] / steps
            rows.append([n, ranks, out["parallel_wall"] / steps, wall / steps])
            payload["rows"].append({
                "n": n, "ranks": ranks, "wall_s_per_step": wall / steps,
                "parallel_s_per_step": out["parallel_wall"] / steps,
                "n_sn_events": out["n_sn_events"],
                "comm_bytes": out["comm_bytes"],
                "comm_modeled_s_fugaku": out["comm_modeled_s"],
                "region_ghost_bytes": out["region_ghost_bytes"],
            })

    # Overlap probe: same workload, async transport, shared server.
    _, _, probe = _run(
        sizes[0], 2, steps, backend, force_mode="global", transport="process"
    )
    payload["serve_overlap"] = probe["serve"]

    model = StepCostModel()

    def nl(n):
        return model.gravity_list_length(
            RunConfig(machine=FUGAKU, n_nodes=1, n_particles=float(n))
        )

    scal = payload["scaling"]
    n0 = sizes[0]
    if (2 * n0, 2) in parallel:
        # Weak scaling at n0/rank: perfect efficiency would keep the
        # parallel step time flat up to the log N interaction-list growth.
        scal["weak_efficiency"] = float(
            parallel[n0, 1] * nl(2 * n0) / nl(n0) / parallel[2 * n0, 2]
        )
    strong_n = next((n for n in sizes if (n, 2) in parallel), None)
    if strong_n is not None:
        scal["strong_n"] = strong_n
        scal["strong_efficiency"] = float(
            parallel[strong_n, 1] / (2 * parallel[strong_n, 2])
        )
    payload["extrapolation"] = _extrapolate(backend)
    return payload, rows


def _fmt_table(headers, rows):
    # Local copy of benchmarks/conftest.py:fmt_table — the standalone CI
    # entry runs without the repo root (and thus the conftest) on sys.path.
    cols = [len(h) for h in headers]
    str_rows = [[str(v) for v in row] for row in rows]
    for srow in str_rows:
        cols = [max(c, len(s)) for c, s in zip(cols, srow)]
    lines = ["  ".join(h.ljust(c) for h, c in zip(headers, cols))]
    lines.append("  ".join("-" * c for c in cols))
    for srow in str_rows:
        lines.append("  ".join(s.ljust(c) for s, c in zip(srow, cols)))
    return "\n".join(lines) + "\n"


def _fmt(payload, rows):
    text = _fmt_table(
        ["N", "ranks", "parallel s/step", "wall s/step"],
        [[n, r, f"{p:.4g}", f"{w:.4g}"] for n, r, p, w in rows],
    )
    scal = payload["scaling"]
    ex = payload["extrapolation"]
    lines = [text]
    if "weak_efficiency" in scal:
        lines.append(
            "weak-scaling efficiency "
            f"({payload['sizes'][0]}/rank, logN-compensated): "
            f"{scal['weak_efficiency']:.2f}"
        )
    if "strong_efficiency" in scal:
        lines.append(
            f"strong-scaling efficiency (N={scal['strong_n']}): "
            f"{scal['strong_efficiency']:.2f}"
        )
    lines.append(
        "serve overlap efficiency (process, 2 workers): "
        f"{payload['serve_overlap']['overlap_efficiency']:.2f}"
    )
    lines.append(
        f"extrapolated full-scale s/step ({payload['backend']} kernels): "
        f"{ex['local_backend_total_s']:.2f} "
        f"(model: {ex['model_total_s']:.2f}, paper Table 3: "
        f"{ex['paper_total_s']:.2f})"
    )
    return "\n".join(lines) + "\n"


def _plan():
    backend = get_backend("numba").name  # falls back to numpy when not jitted
    if SMOKE:
        # One weak pair (800/rank) keeps the CI leg under a minute.
        return [800, 1600], {800: [2], 1600: [2]}, 3, backend
    sizes = [2000, 4000, 8000]
    rank_plans = {2000: [2], 4000: [2, 4], 8000: [2]}
    return sizes, rank_plans, 4, backend


def test_coupled_scaling(benchmark, results_dir, write_result):
    sizes, rank_plans, steps, backend = _plan()
    payload, rows = benchmark.pedantic(
        run_coupled_scaling, args=(sizes, rank_plans, steps, backend),
        rounds=1, iterations=1,
    )
    (results_dir / "BENCH_coupled_scaling.json").write_text(
        json.dumps(payload, indent=2)
    )
    write_result("coupled_scaling", _fmt(payload, rows))
    assert all(payload["parity"].values())
    assert payload["extrapolation"]["model_total_s"] > 0


def main(argv):
    """Standalone entry for the CI coupled leg (no pytest-benchmark needed)."""
    global SMOKE
    if "--smoke" in argv:
        SMOKE = True
    sizes, rank_plans, steps, backend = _plan()
    payload, rows = run_coupled_scaling(sizes, rank_plans, steps, backend)
    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "BENCH_coupled_scaling.json").write_text(
        json.dumps(payload, indent=2)
    )
    text = _fmt(payload, rows)
    (results / "coupled_scaling.txt").write_text(text)
    print(text)
    print("coupled scaling bench: parity held at", list(payload["parity"]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
