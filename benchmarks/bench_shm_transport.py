"""Shm-transport benchmark: zero-copy serving at the paper's 64^3 grid.

Measures the claims the ``shm`` transport makes against ``sync`` and
``process`` with payload-heavy SN regions at n_grid in {16, 32, 64}:

1. **Parity is bit-exact**: every transport returns byte-identical
   particle predictions for the same submissions, at every grid —
   asserted on the full (event -> packed fields) mapping, for the Sedov
   oracle at all grids and for a trained, exported U-Net.
2. **The transport layer gets cheaper**: regions/s *through the transport
   layer* — wall-clock minus the worker's in-predictor seconds, which are
   bit-identical code across transports — must be at least as high for
   ``shm`` as for ``process`` at 64^3.  This is the robust form of the
   throughput comparison on a shared CI box: at 64^3 the NumPy surrogate
   compute is hundreds of ms per region and fluctuates by more than the
   several-ms transport gap, so raw end-to-end regions/s compares noise,
   not transports.  Raw regions/s is still recorded for every transport
   and grid, and sanity-asserted to stay within noise of ``process``.
3. **Zero-copy means zero fallbacks**: every request at every grid fits
   its ring slot (``n_shm_fallback == 0``), so no payload ever crossed a
   pipe.

Results land in ``benchmarks/results/BENCH_shm_transport.json``.  Smoke
mode (``REPRO_BENCH_SMOKE=1``, the CI serve leg) runs the 16^3 column
only and keeps the parity + fallback assertions.
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import fmt_table
from repro.fdps.particles import ParticleSet, ParticleType
from repro.serve import SurrogateServer, SurrogateSpec

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
GRIDS = (16,) if SMOKE else (16, 32, 64)
N_REGIONS = 4 if SMOKE else 6
ROUNDS = 1 if SMOKE else 3
#: Payload-heavy regions (the regime the transport exists for): ~16k
#: particles is ~3.7 MB of packed FIELDS per request and per response.
N_PARTICLES = 2000 if SMOKE else 16000
SMOOTHING_H = 0.9          # keeps the 64^3 voxelize stencil compact
GIBBS_SWEEPS = 1
LATENCY = 4
#: End-to-end noise guard: the raw-rate floor for shm vs process (the
#: transport-layer comparison below is the strict one).
RAW_RATE_NOISE_FLOOR = 0.90

TRANSPORTS = ("sync", "process", "shm")


def _region(n, seed):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-28, 28, (n, 3)),
        mass=rng.uniform(0.5, 2.0, n),
        pid=np.arange(n) + 100_000 * seed,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = rng.uniform(10, 60, n)
    ps.h[:] = SMOOTHING_H
    return ps


def _server(transport, spec, surrogate=None):
    kwargs = dict(max_batch=1, shm_slot_particles=2 * N_PARTICLES)
    if transport != "sync":
        kwargs["n_workers"] = 1     # apples-to-apples: one serving process
    return SurrogateServer(
        surrogate=surrogate, spec=spec, transport=transport, **kwargs
    )


def _drive(server, regions):
    """Submit everything, drain, return (wall_s, worker_busy_s, results)."""
    t0 = time.perf_counter()
    for k, region in enumerate(regions):
        server.submit(region, np.zeros(3), star_pid=k,
                      dispatch_step=0, return_step=LATENCY)
    results = {r.event_id: r.particles.pack() for r in server.collect_all()}
    wall = time.perf_counter() - t0
    # Predictor seconds, wherever they ran: worker busy time for the worker
    # transports, inline predict time for sync.  Bit-identical code either
    # way, so subtracting it isolates the transport layer.
    busy = (
        sum(server.metrics.worker_busy_s.values())
        + server.metrics.inline_predict_s
    )
    return wall, busy, results


def _measure(n_grid, regions):
    """Per-transport rates and byte-level parity at one grid size."""
    spec = SurrogateSpec(
        kind="oracle", n_grid=n_grid, side=60.0, gibbs_sweeps=GIBBS_SWEEPS
    )
    rows = {}
    reference = None
    for transport in TRANSPORTS:
        walls, overheads = [], []
        for _ in range(ROUNDS):
            with _server(transport, spec) as srv:
                wall, busy, results = _drive(srv, regions)
                if transport == "shm":
                    assert srv.metrics.n_shm_fallback == 0, (
                        "a request missed its shm slot — resize the ring"
                    )
            walls.append(wall)
            overheads.append(max(wall - busy, 0.0))
            if reference is None:
                reference = results
            else:
                assert results.keys() == reference.keys()
                for eid, packed in reference.items():
                    assert np.array_equal(results[eid], packed), (
                        f"{transport} diverged from sync on event {eid} "
                        f"at n_grid={n_grid}"
                    )
        wall = min(walls)
        rows[transport] = {
            "regions_per_s": len(regions) / wall,
            "wall_s": wall,
            "transport_overhead_s": max(min(overheads), 1e-9),
            "transport_regions_per_s": len(regions) / max(min(overheads), 1e-9),
        }
    return rows


def _trained_model_parity(results_n_grid=16):
    """train -> save_model -> spec(kind='model'): parity across transports."""
    from repro.ml.serialize import save_model
    from repro.ml.train import train_model
    from repro.ml.unet import UNet3D
    from repro.surrogate.training_data import build_dataset

    ds = build_dataset(4, base_seed=0, n_grid=8, n_per_side=8)
    net = UNet3D(in_channels=8, out_channels=5, base_channels=2, depth=1, seed=0)
    train_model(net, ds.inputs, ds.targets, epochs=2, lr=1e-3, val_fraction=0.25,
                seed=0)
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = save_model(net, os.path.join(tmp, "bench_unet"))
        spec = SurrogateSpec(kind="model", model_path=str(path), n_grid=8,
                             side=60.0, gibbs_sweeps=GIBBS_SWEEPS)
        regions = [_region(200, seed=50 + k) for k in range(3)]
        reference = None
        for transport in TRANSPORTS:
            with _server(transport, spec) as srv:
                _, _, results = _drive(srv, regions)
            if reference is None:
                reference = results
            else:
                for eid, packed in reference.items():
                    assert np.array_equal(results[eid], packed), transport
    return True


def test_shm_transport(benchmark, results_dir, write_result):
    regions = [_region(N_PARTICLES, seed=k) for k in range(N_REGIONS)]
    payload_bytes = int(regions[0].pack().nbytes)

    per_grid = {}
    for n_grid in GRIDS:
        per_grid[str(n_grid)] = benchmark.pedantic(
            _measure, args=(n_grid, regions), rounds=1, iterations=1
        ) if n_grid == GRIDS[0] else _measure(n_grid, regions)

    trained_parity = _trained_model_parity()

    payload = {
        "smoke": SMOKE,
        "n_regions": N_REGIONS,
        "n_particles_per_region": N_PARTICLES,
        "request_payload_bytes": payload_bytes,
        "rounds": ROUNDS,
        "grids": {
            g: {t: dict(rows[t]) for t in TRANSPORTS}
            for g, rows in per_grid.items()
        },
        "bit_identical_across_transports": True,   # asserted above
        "trained_model_parity": trained_parity,
    }
    (results_dir / "BENCH_shm_transport.json").write_text(
        json.dumps(payload, indent=2)
    )

    rows = []
    for g, grid_rows in per_grid.items():
        for t in TRANSPORTS:
            r = grid_rows[t]
            rows.append([
                f"{g}^3 {t}",
                f"{r['regions_per_s']:.2f}",
                f"{r['transport_regions_per_s']:.1f}",
                f"{r['transport_overhead_s'] * 1e3:.0f}",
            ])
    write_result(
        "shm_transport",
        fmt_table(
            ["grid/transport", "regions/s", "transport regions/s", "overhead [ms]"],
            rows,
        ),
    )

    if not SMOKE:
        r64 = per_grid["64"]
        # The throughput claim at the paper's grid: with the bit-identical
        # predictor seconds removed, the shm transport layer serves regions
        # at least as fast as the pickled-pipe transport.
        assert (
            r64["shm"]["transport_regions_per_s"]
            >= r64["process"]["transport_regions_per_s"]
        ), (
            f"shm transport layer slower than process at 64^3: "
            f"{r64['shm']['transport_overhead_s']:.3f}s vs "
            f"{r64['process']['transport_overhead_s']:.3f}s overhead"
        )
        # And end to end it must at least match process within noise.
        assert r64["shm"]["regions_per_s"] >= (
            RAW_RATE_NOISE_FLOOR * r64["process"]["regions_per_s"]
        ), (
            f"shm end-to-end rate {r64['shm']['regions_per_s']:.2f} fell "
            f"below {RAW_RATE_NOISE_FLOOR:.2f}x process "
            f"{r64['process']['regions_per_s']:.2f}"
        )
