"""Figure 7: weak- and strong-scaling on the Rusty genoa cluster.

Weak: 25M particles per MPI process (48 processes/node), 11 to 193 nodes —
reaching 2.3e11 particles at the top, "approximately the same as the number
of particles in the full system run on Fugaku" (Sec. 5.2.4).  Strong: the
strongMW_rusty and strongMWs_rusty series of Table 2.
"""


from benchmarks.conftest import fmt_table
from repro.data.runs import run_by_name
from repro.perf.machines import RUSTY
from repro.perf.scaling import strong_scaling_curve, weak_scaling_curve

WEAK_NODES = [11, 22, 43, 96, 193]
PER_NODE = 25.0e6 * 48  # 25M per MPI process x 48 processes per node
PARTS = [
    "interaction_gravity", "interaction_density", "interaction_hydro_force",
    "kernel_size", "tree_gravity", "tree_hydro",
    "let_gravity", "let_hydro", "particle_exchange", "other",
]


def _table(points):
    rows = [
        [p.n_nodes, p.n_particles, p.total_seconds, *(p.breakdown[k] for k in PARTS)]
        for p in points
    ]
    return fmt_table(["nodes", "N", "total[s]", *PARTS], rows)


def test_fig7_weak_scaling(benchmark, write_result):
    points = benchmark.pedantic(
        lambda: weak_scaling_curve(RUSTY, WEAK_NODES, particles_per_node=PER_NODE),
        rounds=1,
        iterations=1,
    )
    write_result("fig7_weak_rusty", _table(points))
    # Top of the weak series reaches the paper's 2.3e11 particles.
    assert points[-1].n_particles == 193 * PER_NODE
    assert abs(points[-1].n_particles / 2.3e11 - 1.0) < 0.01
    totals = [p.total_seconds for p in points]
    assert all(b > a for a, b in zip(totals, totals[1:]))
    # Few nodes + fat memory: compute dominates communication everywhere
    # (an order of magnitude fewer CPUs than Fugaku, Sec. 5.1).
    top = points[-1].breakdown
    comm = top["let_gravity"] + top["let_hydro"] + top["particle_exchange"]
    compute = top["interaction_gravity"] + top["interaction_density"] + top["kernel_size"]
    assert compute > comm


def test_fig7_strong_scaling(benchmark, write_result):
    def _strong():
        series = {}
        for name, nodes in (
            ("strongMW_rusty", [43, 96, 193]),
            ("strongMWs_rusty", [11, 22, 43]),
        ):
            run = run_by_name(name)
            series[name] = strong_scaling_curve(
                RUSTY, nodes, n_particles=run.n_total, gas_fraction=run.gas_fraction
            )
        return series

    series = benchmark.pedantic(_strong, rounds=1, iterations=1)
    out = []
    for name, points in series.items():
        out.append(f"series: {name}")
        out.append(_table(points))
        totals = [p.total_seconds for p in points]
        assert totals[-1] < totals[0]
        # "The performance on Rusty also shows excellent scalability":
        # better than 60% parallel efficiency over the node range.
        speedup = totals[0] / totals[-1]
        ideal = points[-1].n_nodes / points[0].n_nodes
        assert speedup > 0.6 * ideal
    write_result("fig7_strong_rusty", "\n".join(out))
