"""Serve fault-tolerance benchmark: what a worker crash actually costs.

Runs the same submit/collect workload three ways — fault-free, with one
injected SIGKILL mid-flight, and with one hung worker — over the
``process`` and ``shm`` transports, and measures:

* **recovery overhead**: wall-clock of the faulted run vs the fault-free
  baseline (a kill costs one supervision pass + one re-dispatch; a hang
  additionally waits out ``batch_timeout_s``);
* **time-to-recovery**: the supervisor's measured death-to-restart
  latency (``ServiceMetrics.recovery_s``);
* **the headline invariant**: every faulted run's predictions are
  byte-for-byte the fault-free run's predictions — asserted, not plotted.

Results land in ``benchmarks/results/BENCH_serve_faults.json``.  Runs as a
pytest bench or standalone (the CI chaos leg):

    python benchmarks/bench_serve_faults.py --smoke
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.fdps.particles import ParticleSet, ParticleType
from repro.serve import SupervisionConfig, SurrogateServer, SurrogateSpec

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
LATENCY = 6
#: Fast recovery so the hang scenario measures the protocol, not the wait.
SUPERVISION = SupervisionConfig(
    max_consecutive_failures=3,
    backoff_base_s=0.05,
    backoff_cap_s=0.2,
    batch_timeout_s=1.0,
)
SCENARIOS = {
    "baseline": None,
    "kill": "kill@w0:b1",
    "hang": "hang@w0:b1:30.0",
}


def _region(n=60, seed=0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-25, 25, (n, 3)),
        mass=np.full(n, 1.0),
        pid=np.arange(n) + 1000 * seed,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = 25.0
    ps.h[:] = 8.0
    return ps


def _run(transport, fault_plan, n_events):
    """One submit/collect workload; returns (wall_s, {eid: particles}, metrics)."""
    spec = SurrogateSpec(kind="oracle", n_grid=8, side=60.0, t_after=0.1)
    with SurrogateServer(
        spec=spec, transport=transport, n_workers=2, max_batch=2,
        shm_slots=16, fault_plan=fault_plan, supervision=SUPERVISION,
    ) as srv:
        t0 = time.perf_counter()
        for k in range(n_events):
            srv.submit(_region(seed=k), np.zeros(3), star_pid=k,
                       dispatch_step=0, return_step=LATENCY)
        got = {r.event_id: r.particles for r in srv.collect(LATENCY)}
        wall = time.perf_counter() - t0
        metrics = {
            "n_redispatch": srv.metrics.n_redispatch,
            "n_fault_oracle": srv.metrics.n_fault_oracle,
            "n_batch_timeouts": srv.metrics.n_batch_timeouts,
            "n_worker_restarts": srv.metrics.n_worker_restarts,
            "n_slots_reclaimed": srv.metrics.n_slots_reclaimed,
            "recovery_s": list(srv.metrics.recovery_s),
        }
    return wall, got, metrics


def _assert_bit_identical(got, reference):
    assert sorted(got) == sorted(reference)
    for eid, ref in reference.items():
        for name, arr in ref.data.items():
            assert np.array_equal(got[eid].data[name], arr), (eid, name)


def run_fault_bench(n_events):
    payload = {"smoke": SMOKE, "n_events": n_events, "transports": {}}
    rows = []
    for transport in ("process", "shm"):
        per = {}
        baseline_got = None
        for scenario, plan in SCENARIOS.items():
            wall, got, metrics = _run(transport, plan, n_events)
            if scenario == "baseline":
                baseline_got = got
            else:
                _assert_bit_identical(got, baseline_got)
            per[scenario] = {"wall_s": wall, **metrics}
        for scenario in ("kill", "hang"):
            per[scenario]["overhead_s"] = (
                per[scenario]["wall_s"] - per["baseline"]["wall_s"]
            )
        payload["transports"][transport] = per
        rows += [
            [f"{transport} baseline wall [s]", f"{per['baseline']['wall_s']:.3f}"],
            [f"{transport} kill overhead [s]", f"{per['kill']['overhead_s']:.3f}"],
            [f"{transport} hang overhead [s]", f"{per['hang']['overhead_s']:.3f}"],
            [
                f"{transport} mean time-to-recovery [s]",
                f"{np.mean(per['kill']['recovery_s']):.3f}"
                if per["kill"]["recovery_s"] else "n/a (run ended first)",
            ],
        ]
    return payload, rows


def test_serve_faults(benchmark, results_dir, write_result):
    from benchmarks.conftest import fmt_table

    n_events = 8 if SMOKE else 24
    payload, rows = benchmark.pedantic(
        run_fault_bench, args=(n_events,), rounds=1, iterations=1
    )
    (results_dir / "BENCH_serve_faults.json").write_text(
        json.dumps(payload, indent=2)
    )
    write_result("serve_faults", fmt_table(["metric", "value"], rows))
    for transport, per in payload["transports"].items():
        assert per["kill"]["n_redispatch"] + per["kill"]["n_fault_oracle"] >= 1
        assert per["hang"]["n_batch_timeouts"] >= 1


def main(argv):
    """Standalone entry for the CI chaos leg (no pytest-benchmark needed)."""
    global SMOKE
    if "--smoke" in argv:
        SMOKE = True
    n_events = 8 if SMOKE else 24
    payload, rows = run_fault_bench(n_events)
    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "BENCH_serve_faults.json").write_text(json.dumps(payload, indent=2))
    width = max(len(r[0]) for r in rows)
    for name, value in rows:
        print(f"{name:<{width}}  {value}")
    for transport, per in payload["transports"].items():
        assert per["kill"]["n_redispatch"] + per["kill"]["n_fault_oracle"] >= 1, transport
        assert per["hang"]["n_batch_timeouts"] >= 1, transport
    print("serve fault bench: recoveries bit-identical on both transports")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
