"""Table 1: state-of-the-art isolated-disk runs vs This Work.

Regenerates every row of the paper's Table 1 from the literature registry
and verifies the headline comparison: This Work is the only entry past the
billion-particle barrier, at star-by-star (sub-solar) baryonic resolution.
"""

from benchmarks.conftest import fmt_table
from repro.data.sota import SOTA_RUNS, THIS_WORK, breaks_billion_barrier


def _rows():
    rows = []
    for run in (*SOTA_RUNS, THIS_WORK):
        rows.append(
            [
                run.paper,
                run.n_gas,
                run.m_gas,
                run.n_star,
                run.m_star,
                run.n_dm,
                run.m_tot,
                run.n_tot,
                run.code,
                "YES" if breaks_billion_barrier(run) else "no",
            ]
        )
    return rows


def test_table1(benchmark, write_result):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    table = fmt_table(
        ["Paper", "N_gas", "m_gas", "N_star", "m_star", "N_DM", "M_tot",
         "N_tot", "Code", ">1e9?"],
        rows,
    )
    write_result("table1_sota", table)
    assert sum(r[-1] == "YES" for r in rows) == 1
    assert rows[-1][0].startswith("This work")
    # Resolution gap: This Work's gas particle is 533x lighter than the
    # best prior MW-mass run (0.75 vs 400 M_sun).
    assert rows[-1][2] == 0.75
