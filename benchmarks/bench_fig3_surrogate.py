"""Figure 3 (and the Sec. 3.3 pipeline): U-Net surrogate in/out example.

Trains a small 3D U-Net on Sedov-in-turbulence pairs (the paper's training
procedure at reduced scale), exports it through the ONNX-like CPU path,
runs the full particle -> voxel -> U-Net -> particle pipeline once, and
reports the prediction error against (a) the exact oracle target and (b)
the "no-SN" persistence baseline — the surrogate must beat persistence by
a wide margin (the paper's analogous claim: better than low-resolution
simulation).
"""

import numpy as np

from benchmarks.conftest import fmt_table
from repro.ml.loss import mse_loss
from repro.ml.serialize import InferenceEngine, save_model
from repro.ml.train import train_model
from repro.ml.unet import UNet3D
from repro.surrogate.training_data import build_dataset, generate_sedov_pair

N_GRID = 8
N_TRAIN = 14


def _run(tmp_path):
    ds = build_dataset(N_TRAIN, base_seed=0, n_grid=N_GRID, n_per_side=10)
    net = UNet3D(in_channels=8, out_channels=5, base_channels=4, depth=1, seed=0)
    hist = train_model(net, ds.inputs, ds.targets, epochs=60, lr=2e-3,
                       val_fraction=0.2, seed=0)

    path = tmp_path / "surrogate.npz"
    save_model(net, path)
    engine = InferenceEngine.load(path)

    x_test, y_test = generate_sedov_pair(seed=999, n_grid=N_GRID, n_per_side=10)
    pred = engine(x_test)
    err_model = mse_loss(pred, y_test)
    # Persistence baseline: predict "nothing happened" (input fields recast
    # into target space: channel 0,1 copy; velocities ~0 in asinh space).
    persistence = np.zeros_like(y_test)
    persistence[0] = x_test[0]
    persistence[1] = x_test[1]
    err_persist = mse_loss(persistence, y_test)
    return hist, err_model, err_persist, engine.n_parameters()


def test_fig3_surrogate(benchmark, write_result, tmp_path):
    hist, err_model, err_persist, n_params = benchmark.pedantic(
        _run, args=(tmp_path,), rounds=1, iterations=1
    )
    rows = [
        ["train loss (first epoch)", hist.train[0]],
        ["train loss (last epoch)", hist.train[-1]],
        ["best validation loss", hist.best_val],
        ["test MSE (U-Net, held-out seed)", err_model],
        ["test MSE (persistence baseline)", err_persist],
        ["improvement factor", err_persist / err_model],
        ["U-Net parameters", float(n_params)],
    ]
    write_result("fig3_surrogate", fmt_table(["quantity", "value"], rows))
    assert hist.train[-1] < hist.train[0]
    assert err_model < 0.5 * err_persist  # the surrogate learned the blast
