"""Sec. 5.3: time-to-solution — the 113x and 10x headline numbers.

Three parts:
1. the 113x arithmetic vs the GIZMO-style adaptive-timestep baseline,
   reproduced from the paper's own inputs;
2. the 10x timestep ratio — *measured* here by running our conventional
   integrator on a star-by-star-resolution SN and watching its CFL step
   collapse while the surrogate scheme holds 2,000 yr;
3. the dt ~ m^{5/6} resolution scaling that makes adaptive timesteps
   untenable at 1 M_sun.
"""


from benchmarks.conftest import fmt_table
from repro.core.conventional import ConventionalIntegrator
from repro.fdps.particles import ParticleSet, ParticleType
from repro.perf.scaling import (
    projected_one_gyr_walltime,
    time_to_solution_speedup,
    timestep_ratio_vs_conventional,
)
from repro.sn.turbulence import make_turbulent_box
from repro.sph.timestep import timestep_mass_scaling


def test_sec53_analytic_speedup(benchmark, write_result):
    out = benchmark.pedantic(time_to_solution_speedup, rounds=1, iterations=1)
    gyr = projected_one_gyr_walltime(seconds_per_step=10.0)
    rows = [
        ["ours [hours / Myr]", out["ours_hours_per_myr"]],
        ["GIZMO-scaled [hours / Myr]", out["gizmo_hours_per_myr"]],
        ["speedup", out["speedup"]],
        ["paper speedup", 113.0],
        ["timestep ratio (fixed 2000 yr / post-SN 200 yr)", timestep_ratio_vs_conventional()],
        ["1 Gyr at 10 s/step [days]", gyr["days"]],
    ]
    write_result("sec53_analytic", fmt_table(["quantity", "value"], rows))
    assert abs(out["speedup"] / 113.0 - 1.0) < 0.15


def test_sec53_measured_timestep_collapse(benchmark, write_result):
    """Run the conventional scheme through an SN and measure dt directly."""

    def _run():
        box = make_turbulent_box(n_per_side=10, side=10.0, mean_density=1.0,
                                 particle_mass=1.0, temperature=100.0,
                                 mach=2.0, seed=7)
        star = ParticleSet.empty(1)
        star.mass[:] = 20.0
        star.ptype[:] = int(ParticleType.STAR)
        star.pid[:] = 10_000_000
        star.tsn[:] = 0.0015
        star.eps[:] = 0.5
        sim = ConventionalIntegrator(
            box.append(star), dt_max=2e-3, courant=0.1,
            self_gravity=False, enable_cooling=False,
            enable_star_formation=False,
        )
        sim.run(6)
        return sim.dt_history

    dts = benchmark.pedantic(_run, rounds=1, iterations=1)
    dt_before = dts[0]
    dt_after = min(dts)
    ratio = dt_before / dt_after
    rows = [
        ["dt before SN [yr]", dt_before * 1e6],
        ["dt after SN [yr]", dt_after * 1e6],
        ["measured collapse ratio", ratio],
        ["paper ratio", 10.0],
    ]
    write_result("sec53_measured_dt", fmt_table(["quantity", "value"], rows))
    # Shape: an order-of-magnitude-class collapse (the paper measured 10x;
    # the exact factor depends on Courant number and local density).
    assert ratio > 4.0


def test_sec53_mass_scaling(benchmark, write_result):
    def _rows():
        rows = []
        for m in (400.0, 100.0, 10.0, 1.0, 0.75):
            dt = timestep_mass_scaling(m_ref=400.0, dt_ref=1.0, m_new=m)
            rows.append([m, dt, 1.0 / dt])
        return rows

    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    write_result(
        "sec53_mass_scaling",
        fmt_table(["m_particle [Msun]", "dt / dt(400 Msun)", "cost factor"], rows),
    )
    # 400 -> 0.75 M_sun costs adaptive codes ~188x more steps.
    assert rows[-1][2] > 100.0
