"""Microbenchmark: spatial-structure reuse across integrator steps.

Records what the accel refactor is supposed to guarantee — at most one
neighbor-grid build per density solve and at most one octree build per step
in the steady state, with step (7) running on cached pair lists — plus the
single-step wall-clock, so the performance trajectory of the ~20k-particle
integrator lands in ``benchmarks/results/BENCH_accel_reuse.json`` for every
future PR to compare against.
"""

import json
import time

from benchmarks.conftest import fmt_table
from repro.core.integrator import IntegratorConfig, SurrogateLeapfrog
from repro.core.pool import PoolManager
from repro.sn.turbulence import make_turbulent_box
from repro.surrogate.model import SedovBlastOracle, SNSurrogate

#: ~20k gas particles: the acceptance-criterion configuration.
N_PER_SIDE = 27
N_STEPS = 3


def _make_sim() -> SurrogateLeapfrog:
    ps = make_turbulent_box(n_per_side=N_PER_SIDE, side=60.0, mean_density=0.05,
                            temperature=100.0, mach=2.0, seed=12)
    cfg = IntegratorConfig(self_gravity=True, enable_cooling=True,
                           enable_star_formation=False)
    surr = SNSurrogate(oracle=SedovBlastOracle(t_after=0.01), n_grid=8, side=60.0)
    pool = PoolManager(surrogate=surr, n_pool=5, latency_steps=5)
    return SurrogateLeapfrog(ps, pool, cfg)


def test_accel_reuse(benchmark, results_dir, write_result):
    sim = _make_sim()
    sim.run(1)  # warm-up: pays the startup force evaluation
    stats = sim.engine.index.stats
    stats.reset()

    def _run():
        t0 = time.perf_counter()
        sim.run(N_STEPS)
        return (time.perf_counter() - t0) / N_STEPS

    wall_per_step = benchmark.pedantic(_run, rounds=1, iterations=1)

    # One density solve per steady step (step 7 reuses cached pairs), so
    # grid builds per density solve == grid builds per step here.
    grid_builds_per_step = stats.grid_builds / N_STEPS
    tree_builds_per_step = stats.tree_builds / N_STEPS
    payload = {
        "n_particles": len(sim.ps),
        "n_steps": N_STEPS,
        "wall_per_step_s": wall_per_step,
        "grid_builds_per_step": grid_builds_per_step,
        "tree_builds_per_step": tree_builds_per_step,
        "index_stats": stats.as_dict(),
        "fast_path_active": sim.engine.fast_path_available,
    }
    (results_dir / "BENCH_accel_reuse.json").write_text(json.dumps(payload, indent=2))

    rows = [
        ["wall clock / step [s]", wall_per_step],
        ["grid builds / density solve", grid_builds_per_step],
        ["tree builds / step", tree_builds_per_step],
        ["grid reuses", stats.grid_reuses],
        ["tree reuses", stats.tree_reuses],
    ]
    write_result("accel_reuse", fmt_table(["metric", "value"], rows))

    assert grid_builds_per_step <= 1.0
    assert tree_builds_per_step <= 1.0
    assert sim.engine.fast_path_available
