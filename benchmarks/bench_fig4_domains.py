"""Figure 4: the multisection domain decomposition sliced at y = 0.

Regenerates the decomposition of a concentrated MW model and reports the
rectangles crossing the y=0 plane — the paper's figure shows central
domains squeezed into long, thin slivers, which is what drives the
particle-exchange surface costs of Sec. 5.2.1.
"""

import numpy as np

from benchmarks.conftest import fmt_table
from repro.fdps.domain import DomainDecomposition
from repro.ic.galaxy import make_mw_model


def _run():
    ps = make_mw_model(n_total=20000, seed=4)
    dd = DomainDecomposition.fit(ps.pos, (4, 4, 2), sample=None)
    lo, hi = ps.pos.min(axis=0), ps.pos.max(axis=0)
    rects = dd.slice_y0(lo, hi)
    counts = np.bincount(dd.assign(ps.pos), minlength=dd.n_domains)
    return rects, counts


def test_fig4_domains(benchmark, write_result):
    rects, counts = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    aspects = []
    for r in rects:
        w, h = r[1] - r[0], r[3] - r[2]
        aspect = max(w, h) / max(min(w, h), 1e-12)
        aspects.append(aspect)
        rows.append([r[0], r[1], r[2], r[3], w, h, aspect])
    table = fmt_table(["x0", "x1", "z0", "z1", "dx", "dz", "aspect"], rows)
    table += (
        f"\ndomains crossing y=0: {len(rects)}"
        f"\nload balance: min={counts.min()} max={counts.max()}"
        f" (imbalance {counts.max() / max(counts.min(), 1):.2f}x)"
        f"\nmax aspect ratio: {max(aspects):.1f}"
    )
    write_result("fig4_domains", table)
    # The paper's phenomenon: some domains are very thin (high aspect).
    assert max(aspects) > 5.0
    # And the decomposition still balances particle counts.
    assert counts.max() <= 1.5 * max(counts.min(), 1)
