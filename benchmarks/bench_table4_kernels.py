"""Table 4: asymptotic interaction-kernel performance per ISA.

Two parts: (a) the per-ISA efficiency *model* against all 12 paper
measurements; (b) a real measurement of this library's NumPy kernels
(interactions/second x ops, the paper's own counting methodology of
Sec. 4.3) — the honest "what pure NumPy achieves on this host" row.
"""

import time

import numpy as np

from benchmarks.conftest import fmt_table
from repro.fdps.interaction import InteractionCounter, OPS_PER_INTERACTION
from repro.gravity.kernels import accel_between
from repro.perf.kernels import kernel_performance_table
from repro.sph.density import compute_density
from repro.sph.forces import compute_hydro_forces


def test_table4_model(benchmark, write_result):
    rows_raw = benchmark.pedantic(kernel_performance_table, rounds=1, iterations=1)
    rows = [
        [r.isa, r.kernel, r.gflops, r.paper_gflops, r.efficiency_pct, r.paper_efficiency_pct]
        for r in rows_raw
    ]
    write_result(
        "table4_model",
        fmt_table(
            ["ISA", "kernel", "model Gflops", "paper Gflops", "model eff%", "paper eff%"],
            rows,
        ),
    )
    for r in rows_raw:
        # Shape agreement: each modeled efficiency within ~2x of the paper.
        ratio = r.efficiency_pct / r.paper_efficiency_pct
        assert 0.45 < ratio < 2.2, (r.isa, r.kernel, ratio)


def test_table4_measured_numpy_gravity(benchmark, write_result):
    rng = np.random.default_rng(0)
    n_i, n_j = 512, 8192
    tp = rng.normal(0, 10, (n_i, 3))
    te = np.full(n_i, 0.1)
    sp = rng.normal(0, 10, (n_j, 3))
    sm = rng.uniform(0.5, 2.0, n_j)

    def _kernel():
        return accel_between(tp, te, sp, sm)

    benchmark(_kernel)
    t0 = time.perf_counter()
    reps = 5
    for _ in range(reps):
        _kernel()
    dt = (time.perf_counter() - t0) / reps
    gflops = n_i * n_j * OPS_PER_INTERACTION["gravity"] / dt / 1e9
    write_result(
        "table4_measured",
        f"NumPy gravity kernel on this host: {gflops:.2f} Gflops "
        f"({n_i}x{n_j} interactions in {dt * 1e3:.1f} ms)\n"
        f"(paper single-core: 37.7 Gflops A64FX / 90.6 Gflops AVX-512)\n",
    )
    assert gflops > 0.1  # sanity: the counting methodology produces a rate


def test_table4_measured_hydro(benchmark, write_result):
    rng = np.random.default_rng(1)
    n = 3000
    pos = rng.uniform(0, 10, (n, 3))
    vel = rng.normal(0, 1, (n, 3))
    mass = np.ones(n)
    u = np.ones(n)
    counter = InteractionCounter()
    d = compute_density(pos, vel, mass, u, np.full(n, 0.8), n_ngb=32, counter=counter)

    def _force():
        return compute_hydro_forces(
            pos, vel, mass, d.h, d.dens, d.pres, d.csnd, counter=counter
        )

    benchmark(_force)
    counter.reset()
    t0 = time.perf_counter()
    _force()
    dt = time.perf_counter() - t0
    gflops = counter.flops("hydro_force") / dt / 1e9
    write_result(
        "table4_measured_hydro",
        f"NumPy hydro-force pass on this host: {gflops:.2f} Gflops "
        f"({counter.interactions('hydro_force')} interactions in {dt * 1e3:.1f} ms)\n",
    )
    assert counter.interactions("hydro_force") > 0
