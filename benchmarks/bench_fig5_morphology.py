"""Figure 5: face-on / edge-on gas column density with the surrogate scheme.

Runs a small MW-mini galaxy for a few global steps under the full
surrogate-coupled integrator (gravity + SPH + cooling + star formation +
pool nodes) and regenerates the two panels as column-density grids,
checking the morphology the figure shows: a centrally peaked rotating disk,
thin in the edge-on view, with a multi-decade column-density range.
"""

import numpy as np

from benchmarks.conftest import fmt_table
from repro.analysis.maps import column_density_map
from repro.core.integrator import IntegratorConfig
from repro.core.simulation import GalaxySimulation


def _run():
    # Gas-rich sampling (40% of particles in the gas): Fig. 5 is a *gas*
    # column-density map, so the gas needs decent particle statistics.
    from repro.ic.galaxy import MW_SPEC, make_mw_model

    ps = make_mw_model(
        n_total=4000, seed=2, spec=MW_SPEC.scaled(0.01),
        count_fractions=(0.3, 0.3, 0.4),
    )
    cfg = IntegratorConfig(dt=2e-3, n_ngb=24, direct_gravity_below=5000)
    sim = GalaxySimulation(ps, dt=2e-3, n_pool=5, surrogate_grid=8, config=cfg, seed=0)
    sim.run(3)
    extent = 4000.0
    face = column_density_map(sim.ps, "xy", extent=extent, n_pix=32)
    edge = column_density_map(sim.ps, "xz", extent=extent, n_pix=32)
    return sim, face, edge


def test_fig5_morphology(benchmark, write_result):
    sim, face, edge = benchmark.pedantic(_run, rounds=1, iterations=1)
    nz = face[face > 0]
    rows = [
        ["steps run", float(sim.step_count)],
        ["central face-on Sigma [Msun/pc^2]", float(face[14:18, 14:18].mean())],
        ["outer face-on Sigma [Msun/pc^2]", float(face[:4, :4].mean())],
        ["column density decades spanned", float(np.log10(nz.max() / nz.min()))],
        ["n gas", float(sim.diagnostics()["n_gas"])],
        ["thermal energy", float(sim.diagnostics()["thermal_energy"])],
    ]
    write_result("fig5_morphology", fmt_table(["quantity", "value"], rows))

    # Face-on: centrally peaked.
    assert face[14:18, 14:18].mean() > 3.0 * max(face[:4, :4].mean(), 1e-12)
    # Edge-on: vertically thin relative to the radial extent.
    coords = np.arange(32) - 15.5
    wz = edge.sum(axis=0)
    wx = edge.sum(axis=1)
    rms_z = np.sqrt(np.sum(wz * coords**2) / wz.sum())
    rms_x = np.sqrt(np.sum(wx * coords**2) / wx.sum())
    assert rms_z < 0.6 * rms_x
    # Fig. 5's color bar spans ~5 decades at 5e10 gas particles; at this
    # bench's 1.6e3 particles the NGP dynamic range is Poisson-limited to
    # max-count/1, so require >1 decade (central pixels >10 particles).
    assert np.log10(nz.max() / nz.min()) > 1.0
