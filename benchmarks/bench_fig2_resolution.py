"""Figure 2: mass-resolution vs total-mass planes with the billion barrier.

Regenerates both panels' scatter points, the iso-N diagonals, and checks the
geometric claim of the figure: all prior art sits above the one-billion
line, This Work below it in both panels.
"""

from benchmarks.conftest import fmt_table
from repro.data.sota import ONE_BILLION, figure2_series


def test_fig2(benchmark, write_result):
    fig = benchmark.pedantic(figure2_series, rounds=1, iterations=1)
    out = []
    for panel in ("dm", "gas"):
        rows = []
        for name, m_tot, m_part in fig[panel]["points"]:
            rows.append([name, m_tot, m_part, m_tot / m_part])
        name, m_tot, m_part = fig[panel]["this_work"]
        rows.append([name + "  <== this work", m_tot, m_part, m_tot / m_part])
        out.append(f"panel: {panel}\n" + fmt_table(
            ["Run", "M_total [Msun]", "m_particle [Msun]", "N implied"], rows
        ))
        # Every prior point is above the barrier line (N < 1e9); this work below.
        for _, m, mp in fig[panel]["points"]:
            assert m / mp < ONE_BILLION
        assert m_tot / m_part > ONE_BILLION
    write_result("fig2_resolution", "\n".join(out))
