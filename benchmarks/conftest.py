"""Benchmark support: every benchmark regenerates one paper table/figure.

Each bench writes its regenerated rows/series to ``benchmarks/results/`` so
the artifacts survive pytest's stdout capture, and registers a single
``benchmark.pedantic`` round (these are experiment reproductions, not
micro-benchmarks — one measured round each keeps the suite fast while still
producing timing data).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def write_result(results_dir):
    """Callable: write_result(name, text) -> path; also echoes to stdout."""

    def _write(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text)
        print(f"\n=== {name} ===\n{text}")
        return path

    return _write


def fmt_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text table formatting shared by all benches."""
    cols = [len(h) for h in headers]
    str_rows = []
    for row in rows:
        srow = [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row]
        str_rows.append(srow)
        cols = [max(c, len(s)) for c, s in zip(cols, srow)]
    lines = ["  ".join(h.ljust(c) for h, c in zip(headers, cols))]
    lines.append("  ".join("-" * c for c in cols))
    for srow in str_rows:
        lines.append("  ".join(s.ljust(c) for s, c in zip(srow, cols)))
    return "\n".join(lines) + "\n"
