"""Figure 6: weak- and strong-scaling on Fugaku (cost-model reproduction).

Left panel: weakMW2M — 2M particles/node from 128 to 148,896 nodes; the
total per-step time grows ~log N (the paper's dashed guide), with the
communication parts (Exchange LET, Exchange Particle) taking over at scale.
Right panel: the three strong-scaling series of Table 2 (strongMW,
strongMWs, strongMWm) with compute parts scaling nearly ideally.
"""

import numpy as np

from benchmarks.conftest import fmt_table
from repro.data.runs import run_by_name
from repro.perf.machines import FUGAKU
from repro.perf.scaling import strong_scaling_curve, weak_scaling_curve, weak_scaling_efficiency

WEAK_NODES = [128, 512, 2048, 8192, 32768, 81920, 148896]
PARTS = [
    "interaction_gravity", "interaction_density", "interaction_hydro_force",
    "kernel_size", "tree_gravity", "tree_hydro",
    "let_gravity", "let_hydro", "particle_exchange", "other",
]


def _weak():
    return weak_scaling_curve(FUGAKU, WEAK_NODES)


def _table(points):
    rows = []
    for p in points:
        rows.append(
            [p.n_nodes, p.n_particles, p.total_seconds, *(p.breakdown[k] for k in PARTS)]
        )
    return fmt_table(["nodes", "N", "total[s]", *PARTS], rows)


def test_fig6_weak_scaling(benchmark, write_result):
    points = benchmark.pedantic(_weak, rounds=1, iterations=1)
    table = _table(points)
    eff = weak_scaling_efficiency(points)
    table += f"\nlogN-compensated efficiency 148k vs 128 nodes: {eff:.2f} (paper: 0.54)\n"
    write_result("fig6_weak_fugaku", table)

    totals = np.array([p.total_seconds for p in points])
    # ~log N growth: fit total vs log2(N) and require decent linearity.
    logn = np.log2([p.n_particles for p in points])
    coeffs = np.polyfit(logn, totals, 1)
    fit = np.polyval(coeffs, logn)
    assert coeffs[0] > 0
    # The paper draws a log N guide through the weak-scaling totals; the
    # comm terms add a p^{1/3} component, so demand strong but not perfect
    # log-linearity.
    assert np.corrcoef(fit, totals)[0, 1] > 0.95
    # Paper anchor: full system lands near 20 s/step.
    assert 15.0 < totals[-1] < 26.0
    assert 0.3 < eff < 0.9
    # Communication dominates at the top end, compute at the bottom.
    top = points[-1].breakdown
    assert top["let_gravity"] + top["particle_exchange"] > top["interaction_gravity"]


def test_fig6_strong_scaling(benchmark, write_result):
    def _strong():
        series = {}
        for name, nodes in (
            ("strongMW", [67680, 98304, 148896]),
            ("strongMWs", [4096, 8192, 16384, 40608]),
            ("strongMWm", [128, 256, 512, 1024]),
        ):
            run = run_by_name(name)
            series[name] = strong_scaling_curve(
                FUGAKU, nodes, n_particles=run.n_total, gas_fraction=run.gas_fraction
            )
        return series

    series = benchmark.pedantic(_strong, rounds=1, iterations=1)
    out = []
    for name, points in series.items():
        out.append(f"series: {name}")
        out.append(_table(points))
        totals = [p.total_seconds for p in points]
        # Strong scaling: more nodes -> less time per step, sub-ideally.
        assert totals[-1] < totals[0]
        ideal = totals[0] * points[0].n_nodes / points[-1].n_nodes
        assert totals[-1] > ideal  # communication floor
        # Compute parts scale ~ideally ("Calc Force scales very well"):
        # node-seconds for the gravity interaction stay constant.
        f0 = points[0].breakdown["interaction_gravity"] * points[0].n_nodes
        f1 = points[-1].breakdown["interaction_gravity"] * points[-1].n_nodes
        assert abs(f1 / f0 - 1) < 0.25
    write_result("fig6_strong_fugaku", "\n".join(out))
