"""Microbenchmark: compute-backend kernel throughput and whole-step speedup.

For each registered backend this measures, at 5k/20k/50k particles:

* per-kernel throughput in interactions/s for the three hot kernels of
  Table 4 (tree gravity, density gather including the h iteration, and the
  half-pair hydro force), and
* the whole surrogate-leapfrog step, reported as a speedup over the
  ``seed`` backend — the pre-registry kernels frozen inside the same
  harness, so the ratio isolates exactly the kernel-layer changes.

Results land in ``benchmarks/results/BENCH_backend_kernels.json`` together
with the gravity chunk size actually chosen (``REPRO_GRAV_CHUNK`` /
``REPRO_GRAV_TEMP_MB`` satellite).  The numba rows only appear where numba
is installed (the dedicated CI leg); the acceptance floors are asserted
here: numpy >= 1.1x and, when jitted, numba >= 3x on the 20k whole step.
``repro.perf.calibrate`` consumes the JSON to calibrate the Table-4 cost
model from these local measurements.
"""

import json
import os
import time

from benchmarks.conftest import fmt_table
from repro.accel.backends import available_backends, get_backend
from repro.accel.backends.numba_backend import HAVE_NUMBA
from repro.core.integrator import IntegratorConfig, SurrogateLeapfrog
from repro.core.pool import PoolManager
from repro.fdps.interaction import InteractionCounter
from repro.gravity.kernels import grav_chunk_size
from repro.gravity.treegrav import tree_accel
from repro.sn.turbulence import make_turbulent_box
from repro.sph.density import compute_density
from repro.sph.forces import compute_hydro_forces
from repro.surrogate.model import SedovBlastOracle, SNSurrogate

#: n_per_side -> ~5k / ~20k / ~50k particles.
SIZES = {17: "5k", 27: "20k", 37: "50k"}
WHOLE_STEP_ROUNDS = {17: 3, 27: 3, 37: 2}
ACCEPT_SIZE = "20k"


def _box(n_per_side):
    return make_turbulent_box(n_per_side=n_per_side, side=60.0, mean_density=0.05,
                              temperature=100.0, mach=2.0, seed=12)


def _whole_step_backends():
    out = ["seed", "numpy"]
    if HAVE_NUMBA:
        out.append("numba")
    return out


def _kernel_backends():
    out = ["seed", "numpy"]
    if HAVE_NUMBA:
        out.append("numba")
    if get_backend("pikg").jitted:
        out.append("pikg")
    return out


def _time_kernels(ps, backend):
    """(seconds, interactions) per kernel for one backend on one box.

    The octree is built outside the timed region (backend-independent
    work), so the gravity number measures the walk + kernel evaluation the
    backend actually owns — the quantity ``perf/calibrate.py`` converts to
    Gflop/s.
    """
    from repro.fdps.tree import Octree

    bk = get_backend(backend)
    out = {}

    tree = Octree.build(ps.pos, ps.mass, leaf_size=16)
    t0 = time.perf_counter()
    res = tree_accel(ps.pos, ps.mass, ps.eps, theta=0.5, leaf_size=16,
                     tree=tree, backend=bk)
    out["gravity"] = (time.perf_counter() - t0, res.interactions)

    counter = InteractionCounter()
    t0 = time.perf_counter()
    d = compute_density(ps.pos, ps.vel, ps.mass, ps.u, ps.h, n_ngb=32,
                        counter=counter, backend=bk)
    # Interaction convention of the seed ledger: the final gather list,
    # counted once (sweep work is proportional; identical across backends).
    out["hydro_density"] = (
        time.perf_counter() - t0, counter.interactions("hydro_density")
    )

    t0 = time.perf_counter()
    f = compute_hydro_forces(ps.pos, ps.vel, ps.mass, d.h, d.dens, d.pres, d.csnd,
                             omega=d.omega, divv=d.divv, curlv=d.curlv,
                             grid=d.grid, backend=bk)
    out["hydro_force"] = (time.perf_counter() - t0, 2 * f.n_pairs)
    return out


def _whole_step(n_per_side, backend):
    ps = _box(n_per_side)
    cfg = IntegratorConfig(self_gravity=True, enable_cooling=True,
                           enable_star_formation=False, backend=backend)
    surr = SNSurrogate(oracle=SedovBlastOracle(t_after=0.01), n_grid=8, side=60.0)
    pool = PoolManager(surrogate=surr, n_pool=5, latency_steps=5)
    sim = SurrogateLeapfrog(ps, pool, cfg)
    sim.run(1)  # warm-up: startup force pass (and JIT compilation)
    rounds = WHOLE_STEP_ROUNDS[n_per_side]
    t0 = time.perf_counter()
    sim.run(rounds)
    return (time.perf_counter() - t0) / rounds


def test_backend_kernels(benchmark, results_dir, write_result):
    kernels: dict = {}
    whole: dict = {}

    def _run():
        # Warm every backend on a tiny box first so JIT compilation (numba,
        # pikg) never pollutes a measured round.
        warm = _box(9)
        for bk in _kernel_backends():
            _time_kernels(warm, bk)
        for n_side, label in SIZES.items():
            ps = _box(n_side)
            for bk in _kernel_backends():
                for kname, (s, it) in _time_kernels(ps, bk).items():
                    kernels.setdefault(kname, {}).setdefault(bk, {})[label] = {
                        "seconds": s,
                        "interactions": it,
                        "inter_per_s": it / max(s, 1e-12),
                    }
            whole[label] = {}
            for bk in _whole_step_backends():
                whole[label][bk] = {"wall_per_step_s": _whole_step(n_side, bk)}
            seed_wall = whole[label]["seed"]["wall_per_step_s"]
            for bk in _whole_step_backends():
                whole[label][bk]["speedup_vs_seed"] = (
                    seed_wall / whole[label][bk]["wall_per_step_s"]
                )
        return whole[ACCEPT_SIZE]["numpy"]["speedup_vs_seed"]

    benchmark.pedantic(_run, rounds=1, iterations=1)

    payload = {
        "available_backends": available_backends(),
        "numba_jitted": HAVE_NUMBA,
        "grav_chunk": {
            "chosen_for_group_256": grav_chunk_size(256),
            "chosen_for_group_2048": grav_chunk_size(2048),
            "env_chunk": os.environ.get("REPRO_GRAV_CHUNK"),
            "env_budget_mb": os.environ.get("REPRO_GRAV_TEMP_MB"),
        },
        "kernels": kernels,
        "whole_step": whole,
    }
    (results_dir / "BENCH_backend_kernels.json").write_text(
        json.dumps(payload, indent=2)
    )

    rows = []
    for kname, per_bk in kernels.items():
        for bk, per_size in per_bk.items():
            for label, cell in per_size.items():
                rows.append([kname, bk, label, cell["inter_per_s"] / 1e6])
    for label, per_bk in whole.items():
        for bk, cell in per_bk.items():
            rows.append(["whole_step", bk, label, cell["speedup_vs_seed"]])
    write_result(
        "backend_kernels",
        fmt_table(["kernel", "backend", "size", "Minter/s | speedup"], rows),
    )

    # Acceptance floors (ISSUE 3): bincount-scatter numpy >= 1.1x the seed
    # kernels on the 20k whole step; jitted numba >= 3x (CI numba leg).
    assert whole[ACCEPT_SIZE]["numpy"]["speedup_vs_seed"] >= 1.1
    if HAVE_NUMBA:
        assert whole[ACCEPT_SIZE]["numba"]["speedup_vs_seed"] >= 3.0
    for per_bk in kernels.values():
        for per_size in per_bk.values():
            for cell in per_size.values():
                assert cell["interactions"] > 0
