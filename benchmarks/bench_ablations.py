"""Ablation benches for the design choices DESIGN.md calls out.

1. **pool sizing / latency** (Sec. 3.2's n_pool = latency rule): sweep the
   pool-node count at fixed SN rate and measure overflow;
2. **mixed precision** (Sec. 4.3): force accuracy of the relative-float32
   kernel vs float64 and vs a naive float32 cast;
3. **hierarchical vs shared timesteps** (Sec. 1): why individual timesteps
   do NOT rescue adaptive schemes — the global per-substep overhead caps
   the speedup regardless of how few particles sit in the deep bins;
4. **3-phase torus vs flat alltoallv** (Sec. 3.4): message-count reduction
   at p = 512 ranks.
"""

import numpy as np

from benchmarks.conftest import fmt_table
from repro.core.pool import PoolManager
from repro.fdps.comm import SimComm, TorusTopology
from repro.fdps.particles import ParticleSet, ParticleType
from repro.gravity.kernels import accel_between, accel_between_mixed
from repro.sph.timestep import hierarchical_efficiency
from repro.surrogate.model import SedovBlastOracle, SNSurrogate


def _region(n=40, seed=0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-25, 25, (n, 3)),
        mass=np.full(n, 1.0),
        pid=np.arange(n),
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = 25.0
    ps.h[:] = 8.0
    return ps


def test_ablation_pool_sizing(benchmark, write_result):
    """One SN per step for 100 steps: n_pool >= latency avoids overflow."""

    def _sweep():
        rows = []
        latency = 20
        for n_pool in (5, 10, 15, 20, 30):
            surr = SNSurrogate(oracle=SedovBlastOracle(), n_grid=8, side=60.0)
            mgr = PoolManager(surrogate=surr, n_pool=n_pool, latency_steps=latency)
            for step in range(100):
                mgr.dispatch(_region(seed=step % 3), np.zeros(3), step, 0.0, step)
                mgr.collect(step)
            rows.append([n_pool, latency, mgr.n_overflow])
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_result(
        "ablation_pool_sizing", fmt_table(["n_pool", "latency", "overflows"], rows)
    )
    by_pool = {r[0]: r[2] for r in rows}
    assert by_pool[20] == 0 and by_pool[30] == 0  # the paper's sizing rule
    assert by_pool[5] > by_pool[10] > 0           # undersized pools overflow


def test_ablation_mixed_precision(benchmark, write_result):
    """Sec. 4.3: relative-f32 keeps accuracy where naive f32 loses it."""

    def _measure():
        rng = np.random.default_rng(0)
        rows = []
        for offset in (0.0, 1e4, 1e6, 1e8):
            pos = rng.normal(0, 1.0, (200, 3)) + np.array([offset, 0.0, 0.0])
            mass = rng.uniform(0.5, 2.0, 200)
            eps = np.full(200, 0.05)
            ref = accel_between(pos, eps, pos, mass, eps, exclude_self=True)
            mixed = accel_between_mixed(pos, eps, pos, mass, eps, exclude_self=True)
            p32 = pos.astype(np.float32).astype(np.float64)
            naive = accel_between(p32, eps, p32, mass, eps, exclude_self=True)
            scale = np.linalg.norm(ref, axis=1).max()
            rows.append(
                [
                    offset,
                    float(np.abs(mixed - ref).max() / scale),
                    float(np.abs(naive - ref).max() / scale),
                ]
            )
        return rows

    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    write_result(
        "ablation_mixed_precision",
        fmt_table(["offset [pc]", "relative-f32 err", "naive-f32 err"], rows),
    )
    for _offset, err_mixed, _err_naive in rows:
        assert err_mixed < 1e-3  # group-relative f32 never degrades
    # Far from the origin the naive cast is catastrophically worse.
    assert rows[-1][2] > 100 * rows[-1][1]


def test_ablation_hierarchical_timesteps(benchmark, write_result):
    """Sec. 1: individual timesteps cannot beat the global-overhead ceiling."""

    def _model():
        rng = np.random.default_rng(1)
        rows = []
        for hot_fraction in (0.1, 0.01, 0.001, 0.0001):
            # Disk gas at dt_base; a hot SN tail 16x shorter.
            n = 100_000
            dts = np.full(n, 2.0e-3)
            n_hot = max(int(hot_fraction * n), 1)
            dts[:n_hot] = 2.0e-3 / 16.0
            out = hierarchical_efficiency(dts, dt_base=2.0e-3, fixed_overhead=0.3)
            rows.append(
                [hot_fraction, out["k_max"], out["speedup"], out["speedup_ceiling"]]
            )
        return rows

    rows = benchmark.pedantic(_model, rounds=1, iterations=1)
    write_result(
        "ablation_hierarchical",
        fmt_table(["hot fraction", "k_max", "speedup", "ceiling"], rows),
    )
    speedups = [r[2] for r in rows]
    ceiling = rows[0][3]
    # Speedup grows as the hot tail shrinks but saturates at the ceiling —
    # the reason the paper abandons hierarchical stepping for the surrogate.
    assert all(b >= a for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] <= ceiling + 1e-9
    assert speedups[-1] > 0.8 * ceiling


def test_ablation_torus_alltoallv(benchmark, write_result):
    """Sec. 3.4: 3-phase torus vs flat all-to-all at p = 512."""

    def _count():
        topo = TorusTopology((8, 8, 8))
        p = topo.n_ranks
        payload = np.ones(8)
        send = [[payload if s != d else None for d in range(p)] for s in range(p)]
        flat = SimComm(p, topology=topo)
        flat.alltoallv(send)
        routed = SimComm(p, topology=topo)
        routed.alltoallv_3d(send)
        return (
            flat.stats["alltoallv"].n_messages,
            routed.stats["alltoallv_3d"].n_messages,
            flat.stats["alltoallv"].bytes_total,
            routed.stats["alltoallv_3d"].bytes_total,
        )

    n_flat, n_routed, b_flat, b_routed = benchmark.pedantic(
        _count, rounds=1, iterations=1
    )
    write_result(
        "ablation_torus_a2a",
        fmt_table(
            ["scheme", "messages", "bytes"],
            [["flat", n_flat, b_flat], ["3-phase torus", n_routed, b_routed]],
        ),
    )
    # p(p-1) = 261,632 messages flat vs <= 3 p (q-1) = 10,752 routed:
    # a 24x message reduction bought with <= 3x the forwarded bytes.
    assert n_flat == 512 * 511
    assert n_routed < n_flat / 20
    assert b_routed <= 3 * b_flat
