"""Microbenchmark: spatial-structure reuse across the *distributed* pipeline.

The multi-rank companion of ``bench_accel_reuse``: it records that the
single-rank guarantee — at most one octree build per rank per step, with the
cached tree serving both the LET export and the force walk — holds across
ranks, and that the communication ledger sees the full migrated payload
(every particle field) plus the header-carrying LET buffers.  The measured
byte counts are priced on the Fugaku network model, anchoring the cost
model's communication terms on what actually crossed the communicator.
Results land in ``benchmarks/results/BENCH_distributed_reuse.json``.
"""

import json
import time

import numpy as np

from benchmarks.conftest import fmt_table
from repro.fdps.distributed import DistributedGravity
from repro.fdps.particles import ParticleSet
from repro.perf.costmodel import measured_comm_breakdown
from repro.perf.machines import FUGAKU

N_PARTICLES = 4000
N_RANKS = 8
N_STEPS = 3


def _plummer_cluster(n=N_PARTICLES, a=30.0, seed=45) -> ParticleSet:
    rng = np.random.default_rng(seed)
    r = a / np.sqrt(rng.uniform(0.01, 0.99, n) ** (-2.0 / 3.0) - 1.0)
    u, v = rng.uniform(-1, 1, n), rng.uniform(0, 2 * np.pi, n)
    s = np.sqrt(1 - u * u)
    pos = r[:, None] * np.stack([s * np.cos(v), s * np.sin(v), u], axis=1)
    ps = ParticleSet.from_arrays(
        pos=pos,
        mass=rng.uniform(0.5, 2.0, n),
        eps=np.full(n, 0.5),
        pid=np.arange(n),
    )
    ps.vel[:] = rng.normal(0, 0.3, (n, 3))
    return ps


def test_distributed_reuse(benchmark, results_dir, write_result):
    driver = DistributedGravity(n_ranks=N_RANKS, theta=0.4, use_torus=True)
    decomp, locals_ = driver.scatter(_plummer_cluster())
    accs = driver.forces(locals_, decomp)  # warm-up pays the first builds
    for index in driver.indices:
        index.stats.reset()
    driver.comm.reset_stats()

    def _run():
        nonlocal locals_, decomp, accs
        t0 = time.perf_counter()
        for _ in range(N_STEPS):
            locals_, decomp, accs = driver.step(locals_, decomp, dt=0.01, accs=accs)
        return (time.perf_counter() - t0) / N_STEPS

    wall_per_step = benchmark.pedantic(_run, rounds=1, iterations=1)

    builds = [index.stats.tree_builds for index in driver.indices]
    reuses = [index.stats.tree_reuses for index in driver.indices]
    ledger = driver.comm.stats
    comm_model_s = measured_comm_breakdown(ledger, FUGAKU, n_ranks=N_RANKS)
    payload = {
        "n_particles": N_PARTICLES,
        "n_ranks": N_RANKS,
        "n_steps": N_STEPS,
        "wall_per_step_s": wall_per_step,
        "tree_builds_per_rank": builds,
        "tree_reuses_per_rank": reuses,
        "max_tree_builds_per_rank_per_step": max(builds) / N_STEPS,
        "comm_bytes": {
            label: stat.bytes_total for label, stat in ledger.items()
        },
        "comm_byte_hops": {
            label: stat.byte_hops for label, stat in ledger.items()
        },
        "comm_modeled_seconds_fugaku": comm_model_s,
    }
    (results_dir / "BENCH_distributed_reuse.json").write_text(
        json.dumps(payload, indent=2)
    )

    rows = [
        ["wall clock / step [s]", wall_per_step],
        ["max tree builds / rank / step", max(builds) / N_STEPS],
        ["tree reuses (all ranks)", sum(reuses)],
        ["exchange_particles bytes", ledger["exchange_particles"].bytes_total],
        ["exchange_let bytes", ledger["exchange_let"].bytes_total],
        ["modeled comm s/step (Fugaku)", sum(comm_model_s.values()) / N_STEPS],
    ]
    write_result("distributed_reuse", fmt_table(["metric", "value"], rows))

    # The acceptance guarantee: at most one octree build per rank per step.
    assert max(builds) <= N_STEPS
    assert ledger["exchange_particles"].bytes_total > 0
    assert ledger["exchange_let"].bytes_total > 0
