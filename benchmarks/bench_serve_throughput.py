"""Serve-subsystem benchmark: batched inference throughput + pool overlap.

Measures the two claims the `repro.serve` subsystem makes:

1. **Batching pays**: coalescing SN regions through
   ``SNSurrogate.predict_fields_batch`` (one batched U-Net forward instead
   of a per-region loop) raises inference regions/s — floor asserted at
   >= 1.5x serial for batch >= 4 (the CI smoke floor).
2. **Overlap works**: with the ``process`` transport, predictions run on
   worker processes while the main loop keeps integrating; overlap
   efficiency — the fraction of inference wall-clock hidden from the main
   path — lands >= 80% with 2 workers (asserted outside smoke mode, where
   CI runners may not have the cores to show it).

Everything is recorded in ``benchmarks/results/BENCH_serve_throughput.json``
so future PRs can compare regions/s and overlap vs pool-worker count.
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import fmt_table
from repro.fdps.particles import ParticleSet, ParticleType
from repro.ml.unet import UNet3D
from repro.perf.costmodel import serve_summary
from repro.serve import SurrogateServer, SurrogateSpec
from repro.surrogate.model import SNSurrogate
from repro.surrogate.voxelize import voxelize_particles

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
N_GRID = 8
BATCH_SIZES = (1, 4, 8)
WORKER_COUNTS = (1, 2)
LATENCY = 8


def _region(n=60, seed=0):
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-25, 25, (n, 3)),
        mass=np.full(n, 1.0),
        pid=np.arange(n) + 1000 * seed,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = 25.0
    ps.h[:] = 8.0
    return ps


def _unet_surrogate():
    net = UNet3D(in_channels=8, out_channels=5, base_channels=2, depth=2, seed=0)
    return SNSurrogate(predictor=net, n_grid=N_GRID, side=60.0)


def _batched_inference_rates(n_rounds):
    """Field-space inference regions/s, serial vs batched."""
    surr = _unet_surrogate()
    grids = [
        voxelize_particles(_region(seed=k), np.zeros(3), 60.0, N_GRID)
        for k in range(max(BATCH_SIZES))
    ]
    surr.predict_fields_batch(grids[:2])  # warm-up
    rates = {}
    for b in BATCH_SIZES:
        t0 = time.perf_counter()
        done = 0
        for _ in range(n_rounds):
            surr.predict_fields_batch(grids[:b])
            done += b
        rates[b] = done / (time.perf_counter() - t0)
    return rates


def _worker_scaling(n_regions):
    """End-to-end server regions/s (submit -> collect_all) vs workers."""
    spec = SurrogateSpec(kind="oracle", n_grid=12, side=60.0, t_after=0.1)
    out = {}
    for label, kwargs in [
        ("sync", dict(transport="sync")),
        *((f"process-{w}", dict(transport="process", n_workers=w)) for w in WORKER_COUNTS),
    ]:
        with SurrogateServer(spec=spec, max_batch=4, **kwargs) as srv:
            t0 = time.perf_counter()
            for k in range(n_regions):
                srv.submit(_region(seed=k), np.zeros(3), star_pid=k,
                           dispatch_step=0, return_step=LATENCY)
            srv.collect_all()
            out[label] = n_regions / (time.perf_counter() - t0)
    return out


def _overlap_run(transport, n_workers, n_steps, main_step_s):
    """A simulated main loop: one SN per step + a fixed-duration step.

    The integration step is represented by a fixed wall-clock latency
    (``time.sleep``) rather than CPU spin: on a core-starved runner a
    CPU-bound main loop would serialize with the worker processes *by
    construction*, hiding what this benchmark actually measures — whether
    the service keeps inference off the main loop's critical path.  Returns
    (wall seconds, serve_summary dict).
    """
    spec = SurrogateSpec(kind="oracle", n_grid=12, side=60.0, t_after=0.1)
    with SurrogateServer(
        spec=spec, transport=transport, n_workers=n_workers,
        max_batch=2, max_wait_steps=0,
    ) as srv:
        t0 = time.perf_counter()
        for step in range(n_steps):
            srv.submit(_region(seed=step), np.zeros(3), star_pid=step,
                       dispatch_step=step, return_step=step + LATENCY)
            srv.tick(step)
            time.sleep(main_step_s)             # the "integration" work
            srv.collect(step)
        srv.collect_all()
        wall = time.perf_counter() - t0
        summary = serve_summary(srv.metrics_dict())
    return wall, summary


def test_serve_throughput(benchmark, results_dir, write_result):
    n_rounds = 4 if SMOKE else 12
    n_regions = 8 if SMOKE else 24
    n_steps = 10 if SMOKE else 40

    rates = benchmark.pedantic(
        _batched_inference_rates, args=(n_rounds,), rounds=1, iterations=1
    )
    scaling = _worker_scaling(n_regions)

    # Calibrate the main step to ~1.5x one region's inference cost, so the
    # workers have the headroom to hide everything.
    spec = SurrogateSpec(kind="oracle", n_grid=12, side=60.0, t_after=0.1)
    with SurrogateServer(spec=spec, transport="sync") as cal:
        for k in range(4):
            cal.submit(_region(seed=k), np.zeros(3), star_pid=k,
                       dispatch_step=0, return_step=1)
        t0 = time.perf_counter()
        cal.collect_all()
        per_region = (time.perf_counter() - t0) / 4
    main_step_s = max(1.5 * per_region, 2e-3)

    t_main = n_steps * main_step_s
    t_sync, sync_summary = _overlap_run("sync", 0, n_steps, main_step_s)
    t_proc, proc_summary = _overlap_run("process", 2, n_steps, main_step_s)
    inference_s = max(t_sync - t_main, 1e-9)
    overlap_efficiency = min(max((t_sync - t_proc) / inference_s, 0.0), 1.0)

    payload = {
        "smoke": SMOKE,
        "n_grid": N_GRID,
        "inference_regions_per_s": {str(b): rates[b] for b in BATCH_SIZES},
        "batched_speedup_vs_serial": {
            str(b): rates[b] / rates[1] for b in BATCH_SIZES
        },
        "server_regions_per_s": scaling,
        "overlap": {
            "n_steps": n_steps,
            "main_step_s": main_step_s,
            "wall_main_only_s": t_main,
            "wall_sync_s": t_sync,
            "wall_process_2w_s": t_proc,
            "overlap_efficiency": overlap_efficiency,
            "sync_summary": sync_summary,
            "process_summary": proc_summary,
        },
    }
    (results_dir / "BENCH_serve_throughput.json").write_text(
        json.dumps(payload, indent=2)
    )

    rows = [
        [f"inference regions/s (batch {b})", f"{rates[b]:.1f}"]
        for b in BATCH_SIZES
    ]
    rows += [
        [f"speedup vs serial (batch {b})", f"{rates[b] / rates[1]:.2f}x"]
        for b in BATCH_SIZES[1:]
    ]
    rows += [[f"server regions/s ({k})", f"{v:.1f}"] for k, v in scaling.items()]
    rows += [
        ["wall main-only [s]", f"{t_main:.3f}"],
        ["wall sync (inference inline) [s]", f"{t_sync:.3f}"],
        ["wall process 2 workers [s]", f"{t_proc:.3f}"],
        ["overlap efficiency", f"{overlap_efficiency:.2f}"],
        ["process worker utilization", f"{proc_summary['worker_utilization']:.2f}"],
    ]
    write_result("serve_throughput", fmt_table(["metric", "value"], rows))

    # CI smoke floor: batching must pay >= 1.5x at batch >= 4.
    assert rates[4] >= 1.5 * rates[1], (
        f"batched inference only {rates[4] / rates[1]:.2f}x serial at batch 4"
    )
    # Sanity: the sync transport exposes all inference on the main path.
    assert sync_summary["overlap_efficiency"] == 0.0
    if not SMOKE:
        # The acceptance floor: >= 80% of inference wall-clock hidden.
        assert overlap_efficiency >= 0.8, (
            f"overlap efficiency {overlap_efficiency:.2f} < 0.8"
        )
        assert proc_summary["overlap_efficiency"] >= 0.8
