"""Observability overhead benchmark: tracing must be (nearly) free.

The ISSUE 9 acceptance bar for ``repro.obs``: with tracing enabled, a
20k-particle run is **bit-identical** to the untraced run and at most 5%
slower.  This bench runs the same simulation twice per repeat — once under
the default :data:`~repro.obs.NULL_TRACER`, once under a live
:class:`~repro.obs.Tracer` — interleaved, takes the best wall time of each
(min-of-repeats is robust to scheduler noise), and asserts both halves:

* every particle array of the final state is ``np.array_equal`` between
  the traced and untraced runs (tracing reads clocks, never physics);
* ``traced_best / untraced_best <= 1.05`` (the smoke configuration is far
  smaller, so per-step time is microseconds-scale and OS jitter dominates
  — it gets proportionally more headroom while the full run holds the
  paper-scale 5% bar).

Results land in ``benchmarks/results/BENCH_obs_overhead.json``.  Runs as a
pytest bench or standalone:

    python benchmarks/bench_obs_overhead.py --smoke
"""

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import GalaxySimulation, make_mw_mini
from repro.obs import Tracer

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))

#: Per-mode run shape: (n_particles, n_steps, repeats, max overhead ratio).
FULL = (20_000, 3, 3, 1.05)
SMOKE_CFG = (2_000, 3, 3, 1.50)


def _run_once(n_total: int, steps: int, traced: bool):
    """One simulation; returns (wall_s, final particle arrays, tracer)."""
    ps = make_mw_mini(n_total=n_total, seed=3)
    tracer = Tracer(run_id="obs-overhead") if traced else None
    with GalaxySimulation(
        ps, dt=2e-3, seed=3, n_pool=4, latency_steps=2, tracer=tracer
    ) as sim:
        t0 = time.perf_counter()
        sim.run(steps)
        wall = time.perf_counter() - t0
        state = {name: arr.copy() for name, arr in sim.ps.data.items()}
    return wall, state, tracer


def _assert_bit_identical(a: dict, b: dict) -> None:
    assert sorted(a) == sorted(b)
    for name, arr in a.items():
        assert np.array_equal(arr, b[name]), f"tracing changed ps.{name}"


def run_overhead_bench():
    n_total, steps, repeats, max_ratio = SMOKE_CFG if SMOKE else FULL
    walls = {"untraced": [], "traced": []}
    baseline_state = traced_state = None
    tracer = None
    for _ in range(repeats):
        wall_u, baseline_state, _none = _run_once(n_total, steps, traced=False)
        wall_t, traced_state, tracer = _run_once(n_total, steps, traced=True)
        walls["untraced"].append(wall_u)
        walls["traced"].append(wall_t)
    _assert_bit_identical(traced_state, baseline_state)
    # The trace must actually contain the run: one umbrella span per step
    # plus the bridged phase brackets underneath.
    n_steps_traced = sum(
        1 for r in tracer.records if r.name == "step" and r.cat == "sim"
    )
    assert n_steps_traced == steps, (n_steps_traced, steps)
    assert len(tracer.records) > steps * 5
    best_u = min(walls["untraced"])
    best_t = min(walls["traced"])
    ratio = best_t / best_u
    payload = {
        "smoke": SMOKE,
        "n_particles": n_total,
        "n_steps": steps,
        "repeats": repeats,
        "untraced_s": walls["untraced"],
        "traced_s": walls["traced"],
        "best_untraced_s": best_u,
        "best_traced_s": best_t,
        "overhead_ratio": ratio,
        "max_ratio": max_ratio,
        "n_span_records": len(tracer.records),
        "bit_identical": True,
    }
    rows = [
        ["particles", n_total],
        ["steps", steps],
        ["best untraced [s]", f"{best_u:.4f}"],
        ["best traced [s]", f"{best_t:.4f}"],
        ["overhead ratio", f"{ratio:.4f}"],
        ["budget", f"{max_ratio:.2f}"],
        ["span records", len(tracer.records)],
        ["bit identical", "yes"],
    ]
    assert ratio <= max_ratio, (
        f"tracing overhead {ratio:.3f}x exceeds the {max_ratio:.2f}x budget "
        f"(best traced {best_t:.4f}s vs untraced {best_u:.4f}s)"
    )
    return payload, rows


def test_obs_overhead(benchmark, results_dir, write_result):
    from benchmarks.conftest import fmt_table

    payload, rows = benchmark.pedantic(
        run_overhead_bench, args=(), rounds=1, iterations=1
    )
    (results_dir / "BENCH_obs_overhead.json").write_text(
        json.dumps(payload, indent=2)
    )
    write_result("obs_overhead", fmt_table(["metric", "value"], rows))


def main(argv):
    """Standalone entry (CI serve job; no pytest-benchmark needed)."""
    global SMOKE
    if "--smoke" in argv:
        SMOKE = True
    payload, rows = run_overhead_bench()
    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "BENCH_obs_overhead.json").write_text(json.dumps(payload, indent=2))
    width = max(len(str(r[0])) for r in rows)
    for name, value in rows:
        print(f"{name!s:<{width}}  {value}")
    print(
        f"obs overhead bench: {payload['overhead_ratio']:.3f}x "
        f"(budget {payload['max_ratio']:.2f}x), state bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
