"""Scaling study: regenerate the Fig. 6/7 curves from the performance model.

Prints the weak-scaling series on Fugaku (2M particles/node, 128 to
148,896 nodes) and Rusty, plus the Sec. 5.3 time-to-solution arithmetic.

Run:  python examples/scaling_study.py
"""

from repro.perf.machines import FUGAKU, RUSTY
from repro.perf.scaling import (
    time_to_solution_speedup,
    weak_scaling_curve,
    weak_scaling_efficiency,
)


def print_curve(title, points):
    print(f"\n{title}")
    print(f"{'nodes':>8} {'N':>12} {'total[s]':>9} {'grav[s]':>8} "
          f"{'LET[s]':>7} {'exch[s]':>8} {'PFLOPS':>7} {'eff%':>6}")
    for p in points:
        bd = p.breakdown
        print(f"{p.n_nodes:>8} {p.n_particles:>12.3e} {p.total_seconds:>9.2f} "
              f"{bd['interaction_gravity']:>8.2f} {bd['let_gravity']:>7.2f} "
              f"{bd['particle_exchange']:>8.2f} {p.achieved_pflops:>7.2f} "
              f"{100 * p.efficiency:>6.2f}")


def main() -> None:
    fugaku = weak_scaling_curve(FUGAKU, [128, 1024, 8192, 65536, 148896])
    print_curve("Fugaku weak scaling (weakMW2M, 2M particles/node):", fugaku)
    print(f"logN-compensated efficiency at full scale: "
          f"{weak_scaling_efficiency(fugaku):.2f} (paper: 0.54)")

    rusty = weak_scaling_curve(RUSTY, [11, 43, 96, 193],
                               particles_per_node=25e6 * 48)
    print_curve("\nRusty weak scaling (25M per MPI process x 48):", rusty)

    tts = time_to_solution_speedup()
    print("\nTime-to-solution (Sec. 5.3):")
    print(f"  this scheme : {tts['ours_hours_per_myr']:.2f} h per Myr "
          f"({tts['steps_per_myr']:.0f} steps of 2,000 yr at 20 s)")
    print(f"  GIZMO-style : {tts['gizmo_hours_per_myr']:.0f} h per Myr "
          f"(N^(4/3)-scaled adaptive timesteps)")
    print(f"  speedup     : {tts['speedup']:.0f}x   (paper: 113x)")


if __name__ == "__main__":
    main()
