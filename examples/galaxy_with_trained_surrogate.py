"""End to end: train the U-Net, then run a galaxy with it — the full system.

This is the complete ASURA-FDPS-ML loop of the paper in one script:

1. train the 3D U-Net surrogate on Sedov-in-turbulence pairs and export
   it with ``save_model`` (the CPU deployment artifact of Sec. 3.3);
2. build a gas-rich dwarf galaxy with a massive star about to explode;
3. integrate with the fixed 2,000-yr global timestep; when the star goes
   off, its (60 pc)^3 region is shipped to a pool node, the *trained
   network* — reloaded from the export via ``surrogate_model_path`` —
   predicts the post-SN state, and the particles come back by ID.

Run:  python examples/galaxy_with_trained_surrogate.py
"""


import tempfile
from pathlib import Path

from repro.core.simulation import GalaxySimulation
from repro.core.integrator import IntegratorConfig
from repro.fdps.particles import ParticleSet, ParticleType
from repro.ml.serialize import save_model
from repro.ml.train import train_model
from repro.ml.unet import UNet3D
from repro.sn.turbulence import make_turbulent_box
from repro.surrogate.training_data import build_dataset
from repro.util.constants import internal_energy_to_temperature


def main() -> None:
    # --- 1. train and export ---------------------------------------------------
    print("training the surrogate (12 pairs, 8^3 grid) ...")
    ds = build_dataset(12, base_seed=0, n_grid=8, n_per_side=10)
    net = UNet3D(in_channels=8, out_channels=5, base_channels=4, depth=1, seed=0)
    hist = train_model(net, ds.inputs, ds.targets, epochs=30, lr=2e-3,
                       val_fraction=0.25, seed=0)
    print(f"  val loss {hist.val[0]:.3f} -> {hist.best_val:.3f}")
    deploy_dir = tempfile.mkdtemp(prefix="galaxy_surrogate_")
    export = save_model(net, Path(deploy_dir) / "galaxy_surrogate")
    print(f"  exported to {export}")

    # --- 2. a dwarf with a doomed star ----------------------------------------
    box = make_turbulent_box(n_per_side=10, side=60.0, mean_density=0.3,
                             temperature=200.0, mach=3.0, seed=5)
    star = ParticleSet.empty(1)
    star.mass[:] = 25.0
    star.ptype[:] = int(ParticleType.STAR)
    star.pid[:] = 999_999
    star.tsn[:] = 0.003          # explodes on step 2
    star.eps[:] = 1.0
    ps = box.append(star)

    # --- 3. integrate with the trained, exported surrogate ---------------------
    cfg = IntegratorConfig(dt=2e-3, latency_steps=4, n_pool=4,
                           enable_star_formation=False, self_gravity=False)
    sim = GalaxySimulation(ps, dt=2e-3, surrogate_model_path=export,
                           surrogate_grid=8, n_pool=4,
                           latency_steps=4, config=cfg, seed=0)

    for _ in range(8):
        sim.run(1)
        gas = sim.ps.where_type(ParticleType.GAS)
        t_max = internal_energy_to_temperature(sim.ps.u[gas]).max()
        d = sim.diagnostics()
        print(f"step {d['step']}: SNe {d['n_sn_events']}, "
              f"in flight {d['pool']['n_in_flight']}, T_max = {t_max:9.2e} K")

    returned = sim.pool.summary()["n_returned"]
    print(f"\npredictions returned: {returned}; "
          f"particle count conserved: {len(sim.ps) == len(ps)}")


if __name__ == "__main__":
    main()
