"""A resolved supernova blast: SPH simulation vs the exact Sedov solution.

Injects 1e51 erg into a 1 M_sun-resolution turbulent box, integrates it
with the conventional adaptive-timestep scheme (watching the CFL step
collapse — the bottleneck of Sec. 1), and compares the shock position
against the Sedov-Taylor similarity solution.

Run:  python examples/sn_blast.py
"""

import numpy as np

from repro.core.conventional import ConventionalIntegrator
from repro.physics.feedback import SNFeedback
from repro.sn.sedov import SedovSolution
from repro.sn.turbulence import make_turbulent_box
from repro.util.constants import SN_ENERGY, internal_energy_to_temperature


def shock_radius_estimate(ps) -> float:
    """Radius of the fastest-moving mass shell (a simple shock proxy)."""
    gas = ps.where_type(2)
    r = np.linalg.norm(ps.pos[gas], axis=1)
    vr = np.einsum("ij,ij->i", ps.vel[gas], ps.pos[gas]) / np.maximum(r, 1e-12)
    moving = vr > 0.3 * vr.max()
    return float(np.median(r[moving])) if moving.any() else 0.0


def main() -> None:
    rho0 = 1.0  # M_sun/pc^3 ~ 30 H/cm^3: a star-forming clump
    box = make_turbulent_box(n_per_side=12, side=12.0, mean_density=rho0,
                             particle_mass=1.0, temperature=100.0,
                             mach=2.0, seed=3)
    print(f"box: {len(box)} x 1 M_sun particles at rho = {rho0} M_sun/pc^3")

    n_heated = SNFeedback().inject(box, center=np.zeros(3))
    print(f"SN injected: 1e51 erg over {n_heated} particles, "
          f"T_max = {internal_energy_to_temperature(box.u).max():.2e} K")

    sim = ConventionalIntegrator(
        box, dt_max=2e-3, courant=0.15, self_gravity=False,
        enable_cooling=False, enable_star_formation=False,
    )
    sedov = SedovSolution(energy=SN_ENERGY, rho0=rho0)

    t_report = [0.002, 0.004, 0.006]
    print("\n   t [kyr]   dt [yr]   R_sph [pc]   R_sedov [pc]")
    for t_end in t_report:
        sim.run_until(t_end, max_steps=300)
        r_sph = shock_radius_estimate(sim.ps)
        r_sedov = sedov.shock_radius(sim.time)
        print(f"   {sim.time * 1e3:7.2f}   {sim.dt_history[-1] * 1e6:7.1f}"
              f"   {r_sph:9.2f}   {r_sedov:10.2f}")

    print(f"\nsteps taken: {sim.step_count} "
          f"(smallest dt: {min(sim.dt_history) * 1e6:.0f} yr — this collapse "
          f"is exactly what the surrogate scheme bypasses)")


if __name__ == "__main__":
    main()
