"""Train the SN surrogate end to end — the full Sec. 3.3 pipeline.

1. generate SN training pairs (turbulent boxes + the exact Sedov state
   0.1 Myr after the explosion — swap in ``generate_sph_pair`` for
   simulation-grade labels);
2. train the 3D U-Net (batch size 1, MSE, Adam — the paper's recipe);
3. export via the ONNX-like CPU path and reload with InferenceEngine;
4. plug the trained engine into SNSurrogate and predict a particle region.

Run:  python examples/train_surrogate.py
"""

from pathlib import Path

import numpy as np

from repro.ml.loss import mse_loss
from repro.ml.serialize import InferenceEngine, save_model
from repro.ml.train import train_model
from repro.ml.unet import UNet3D
from repro.sn.turbulence import make_turbulent_box
from repro.surrogate.model import SNSurrogate
from repro.surrogate.training_data import build_dataset, generate_sedov_pair
from repro.util.constants import internal_energy_to_temperature

N_GRID = 8       # paper: 64^3; small here so the demo takes seconds
N_TRAIN = 16
EPOCHS = 40


def main() -> None:
    print(f"generating {N_TRAIN} Sedov-in-turbulence training pairs ...")
    ds = build_dataset(N_TRAIN, base_seed=0, n_grid=N_GRID, n_per_side=10)

    net = UNet3D(in_channels=8, out_channels=5, base_channels=4, depth=1, seed=0)
    print(f"training U-Net ({net.n_parameters()} parameters, batch size 1, MSE/Adam) ...")
    hist = train_model(net, ds.inputs, ds.targets, epochs=EPOCHS, lr=2e-3,
                       val_fraction=0.25, seed=0, patience=10)
    print(f"  epochs run: {len(hist.train)}  "
          f"train {hist.train[0]:.3f} -> {hist.train[-1]:.3f}  "
          f"best val {hist.best_val:.3f}")

    out = Path("surrogate_model.npz")
    save_model(net, out)
    engine = InferenceEngine.load(out)
    print(f"exported to {out} and reloaded via the CPU inference engine")

    # Held-out evaluation in field space.
    x, y = generate_sedov_pair(seed=777, n_grid=N_GRID, n_per_side=10)
    err = mse_loss(engine(x), y)
    base = mse_loss(np.concatenate([x[:2], np.zeros((3, *x.shape[1:]))]), y)
    print(f"held-out MSE: {err:.3f}  (persistence baseline {base:.3f})")

    # Particle-level prediction, exactly what a pool node runs.
    region = make_turbulent_box(n_per_side=10, side=60.0, mean_density=1.0,
                                temperature=100.0, mach=3.0, seed=42)
    surrogate = SNSurrogate(predictor=engine, n_grid=N_GRID, side=60.0)
    predicted = surrogate.predict_particles(region, np.zeros(3), np.random.default_rng(0))
    t = internal_energy_to_temperature(predicted.u)
    print(
        f"predicted region: {len(predicted)} particles "
        f"(count/IDs/mass conserved: "
        f"{np.array_equal(np.sort(predicted.pid), np.sort(region.pid))}), "
        f"T_max = {t.max():.2e} K"
    )


if __name__ == "__main__":
    main()
