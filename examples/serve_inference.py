"""Standalone surrogate serving: many concurrent clients, one service.

Drives a :class:`repro.serve.SurrogateServer` outside any simulation — the
"pool nodes as a service" view: several simulated main-rank clients each
dispatch SN regions on their own cadence, the scheduler coalesces them
into batches, worker processes run the predictions overlapped, and every
client gets its results back within its latency window.  Prints the
service metrics (queue depth, batch occupancy, latency percentiles, worker
utilization) and the overlap summary of the perf cost model.

Run:  python examples/serve_inference.py
"""

import time

import numpy as np

from repro.fdps.particles import ParticleSet, ParticleType
from repro.perf.costmodel import serve_summary
from repro.serve import SurrogateServer, SurrogateSpec

N_CLIENTS = 4          # simulated main ranks
N_STEPS = 24           # global steps driven by each client
LATENCY_STEPS = 8      # prediction horizon in steps
SN_PERIOD = 4          # each client fires one SN every SN_PERIOD steps
MAIN_STEP_S = 0.02     # each step's "integration work" (wall-clock)


def make_region(n: int, seed: int) -> ParticleSet:
    """A random (60 pc)^3 gas region standing in for an SN neighborhood."""
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-28, 28, (n, 3)),
        mass=rng.uniform(0.5, 2.0, n),
        pid=np.arange(n) + 100_000 * seed,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = rng.uniform(10, 60, n)
    ps.h[:] = 8.0
    return ps


def main() -> None:
    spec = SurrogateSpec(kind="oracle", n_grid=12, side=60.0, t_after=0.1)
    server = SurrogateServer(
        spec=spec, transport="process", n_workers=2,
        max_batch=4, max_wait_steps=1,
    )
    print(f"server up: {server.n_workers} workers, "
          f"max batch {server.scheduler.max_batch}")

    received = 0
    with server:
        t0 = time.perf_counter()
        for step in range(N_STEPS + LATENCY_STEPS):
            # Each client fires on its own phase; requests from different
            # clients land in the same step and get coalesced.
            if step < N_STEPS:
                for client in range(N_CLIENTS):
                    if (step + client) % SN_PERIOD == 0:
                        server.submit(
                            make_region(60, seed=97 * step + client),
                            center=np.zeros(3),
                            star_pid=1000 * client + step,
                            dispatch_step=step,
                            return_step=step + LATENCY_STEPS,
                        )
            server.tick(step)
            time.sleep(MAIN_STEP_S)  # the clients' "integration work"
            for response in server.collect(step):
                received += 1
                assert response.return_step <= step
        wall = time.perf_counter() - t0

    metrics = server.metrics_dict()
    print(f"\n{metrics['n_submitted']} regions submitted, {received} "
          f"predictions returned in {wall:.2f} s wall")
    print(f"  mean queue depth   {metrics['mean_queue_depth']:.2f}")
    print(f"  batch occupancy    {metrics['batch_occupancy']:.2f}")
    print(f"  latency p50 / p95  {metrics['latency_steps_p50']:.0f} / "
          f"{metrics['latency_steps_p95']:.0f} steps")
    print(f"  worker utilization {metrics['worker_utilization']:.2f}")
    print(f"  exposed wait       {metrics['exposed_wait_s'] * 1e3:.1f} ms")

    summary = serve_summary(metrics)
    print("\noverlap summary (perf cost model):")
    for key, value in summary.items():
        print(f"  {key:22s} {value:.3f}")


if __name__ == "__main__":
    main()
