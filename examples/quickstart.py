"""Quickstart: a surrogate-coupled galaxy simulation in ~20 lines.

Builds a small Milky-Way-like galaxy (MW-mini, 1/100 of the MW mass),
attaches the supernova surrogate (analytic Sedov oracle by default — swap
in a trained U-Net via ``examples/train_surrogate.py``), and integrates
with the paper's fixed 2,000-year global timestep.

Run:  python examples/quickstart.py
"""

from repro import GalaxySimulation, make_mw_mini

def main() -> None:
    # ~1/100 Milky Way mass, 3,000 particles (DM + stars + gas).
    ps = make_mw_mini(n_total=3000, seed=1)
    print(f"initial conditions: {len(ps)} particles, "
          f"{ps.total_mass():.3e} M_sun total")

    # Fixed global timestep of 2,000 yr = 2e-3 Myr (Sec. 3.2); 5 pool
    # nodes with a 5-step prediction latency (scaled-down from the paper's
    # 50/50 so the demo returns predictions quickly).
    sim = GalaxySimulation(ps, dt=2e-3, n_pool=5, surrogate_grid=8, seed=0)
    sim.integrator.cfg.direct_gravity_below = 5000  # small N: direct sum

    for _step in range(5):
        sim.run(1)
        d = sim.diagnostics()
        print(
            f"step {d['step']:2d}  t = {d['time'] * 1e3:6.1f} kyr   "
            f"gas {d['n_gas']:4d}  stars {d['n_stars']:4d}  "
            f"SNe dispatched {d['n_sn_events']}  "
            f"in flight {d['pool']['n_in_flight']}"
        )

    print("\nper-part timing breakdown [s]:")
    for part, seconds in sorted(sim.timing_breakdown().items()):
        print(f"  {part:40s} {seconds:.3f}")


if __name__ == "__main__":
    main()
