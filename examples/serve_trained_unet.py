"""Serve a trained, exported U-Net through the inference service — Sec. 3.3.

The full production deployment path of the paper, end to end:

1. train the 3D U-Net surrogate on Sedov-in-turbulence pairs;
2. export it with :func:`repro.ml.serialize.save_model` (the ONNX-like
   CPU deployment artifact);
3. describe it as a picklable ``SurrogateSpec(kind="model")`` — every pool
   worker loads the export itself, no weights cross a queue;
4. serve SN regions through :class:`repro.serve.SurrogateServer` on the
   zero-copy ``shm`` transport, and verify the predictions are
   bit-identical to the deterministic in-process ``sync`` transport.

Run:  python examples/serve_trained_unet.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.fdps.particles import ParticleSet, ParticleType
from repro.ml.serialize import save_model
from repro.ml.train import train_model
from repro.ml.unet import UNet3D
from repro.perf.costmodel import serve_summary
from repro.serve import SurrogateServer, SurrogateSpec
from repro.surrogate.training_data import build_dataset

N_GRID = 8         # paper: 64^3; small so the demo trains in seconds
N_TRAIN = 12
EPOCHS = 20
N_EVENTS = 6
LATENCY_STEPS = 4


def make_region(n: int, seed: int) -> ParticleSet:
    rng = np.random.default_rng(seed)
    ps = ParticleSet.from_arrays(
        pos=rng.uniform(-28, 28, (n, 3)),
        mass=rng.uniform(0.5, 2.0, n),
        pid=np.arange(n) + 100_000 * seed,
        ptype=np.full(n, int(ParticleType.GAS)),
    )
    ps.u[:] = rng.uniform(10, 60, n)
    ps.h[:] = 8.0
    return ps


def serve_events(spec: SurrogateSpec, transport: str) -> dict[int, np.ndarray]:
    """Dispatch N_EVENTS regions, collect all predictions, pack them."""
    with SurrogateServer(
        spec=spec, transport=transport, n_workers=2, max_batch=2
    ) as server:
        for k in range(N_EVENTS):
            server.submit(
                make_region(80, seed=k), center=np.zeros(3), star_pid=k,
                dispatch_step=0, return_step=LATENCY_STEPS,
            )
        packed = {
            r.event_id: r.particles.pack() for r in server.collect(LATENCY_STEPS)
        }
        metrics = server.metrics_dict()
    if transport == "shm":
        summary = serve_summary(metrics)
        print(f"  [{transport}] zero-copy fraction "
              f"{summary['shm_zero_copy_fraction']:.2f}, "
              f"{metrics['bytes_in'] + metrics['bytes_out']} wire bytes, "
              f"{metrics['n_batches']} batches")
    return packed


def main() -> None:
    # --- 1-2. train and export -----------------------------------------------
    print(f"training the U-Net ({N_TRAIN} pairs, {N_GRID}^3 grid) ...")
    ds = build_dataset(N_TRAIN, base_seed=0, n_grid=N_GRID, n_per_side=10)
    net = UNet3D(in_channels=8, out_channels=5, base_channels=4, depth=1, seed=0)
    hist = train_model(net, ds.inputs, ds.targets, epochs=EPOCHS, lr=2e-3,
                       val_fraction=0.25, seed=0, patience=8)
    print(f"  {len(hist.train)} epochs, best val {hist.best_val:.3f} "
          f"(weights restored to that snapshot)")
    with tempfile.TemporaryDirectory() as deploy_dir:
        export = save_model(net, Path(deploy_dir) / "trained_unet")  # suffix normalized
        print(f"  exported to {export}")

        # --- 3. the worker-buildable recipe -----------------------------------
        spec = SurrogateSpec(kind="model", model_path=str(export),
                             n_grid=N_GRID, side=60.0)

        # --- 4. serve on every transport, compare bytes -----------------------
        print(f"serving {N_EVENTS} SN regions through the trained model ...")
        results = {t: serve_events(spec, t) for t in ("sync", "process", "shm")}
    for transport in ("process", "shm"):
        for eid, packed in results["sync"].items():
            assert np.array_equal(results[transport][eid], packed), (
                transport, eid,
            )
    print("predictions bit-identical across sync / process / shm transports")


if __name__ == "__main__":
    main()
