"""Figure 4 demo: multisection domain decomposition of a concentrated galaxy.

Decomposes a Milky-Way model over a 4x4x2 process grid and renders the
domains crossing the y = 0 plane as ASCII art — the central domains come
out long and thin, exactly the morphology of the paper's Fig. 4 that
drives the particle-exchange costs at scale.

Run:  python examples/domain_decomposition.py
"""

import numpy as np

from repro.fdps.domain import DomainDecomposition
from repro.ic.galaxy import make_mw_model


def render(rects, x_range, z_range, width=78, height=24) -> str:
    """Rectangle outlines on a character canvas."""
    canvas = [[" "] * width for _ in range(height)]

    def to_px(x, z):
        i = int((x - x_range[0]) / (x_range[1] - x_range[0]) * (width - 1))
        j = int((z - z_range[0]) / (z_range[1] - z_range[0]) * (height - 1))
        return min(max(i, 0), width - 1), min(max(j, 0), height - 1)

    for r in rects:
        x0, x1, z0, z1 = r
        i0, j0 = to_px(x0, z0)
        i1, j1 = to_px(x1, z1)
        for i in range(i0, i1 + 1):
            canvas[j0][i] = "-"
            canvas[j1][i] = "-"
        for j in range(j0, j1 + 1):
            canvas[j][i0] = "|"
            canvas[j][i1] = "|"
    return "\n".join("".join(row) for row in canvas)


def main() -> None:
    ps = make_mw_model(n_total=20000, seed=4)
    dd = DomainDecomposition.fit(ps.pos, (4, 4, 2), sample=None)
    counts = np.bincount(dd.assign(ps.pos), minlength=dd.n_domains)
    print(f"{dd.n_domains} domains; particles per domain: "
          f"min {counts.min()}, max {counts.max()}")

    lo, hi = ps.pos.min(axis=0), ps.pos.max(axis=0)
    rects = dd.slice_y0(lo, hi)
    # Zoom to the inner 40 kpc where the interesting structure lives.
    zoom = 2.0e4
    inner = [r for r in rects if abs(r[0]) < zoom or abs(r[1]) < zoom]
    clipped = [np.clip(r, -zoom, zoom) for r in inner]
    print(f"\n{len(rects)} domains cross the y=0 plane; inner 40 kpc view:\n")
    print(render(clipped, (-zoom, zoom), (-zoom, zoom)))

    aspects = [(r[1] - r[0]) / max(r[3] - r[2], 1e-9) for r in rects]
    worst = max(max(a, 1 / a) for a in aspects)
    print(f"\nworst domain aspect ratio: {worst:.1f} "
          f"(the thin central domains of Fig. 4)")


if __name__ == "__main__":
    main()
