"""Baryonic subgrid physics of the ASURA model.

The star-by-star resolution of the paper (0.75 M_sun gas particles) means
stellar feedback is *not* statistical: each star particle is an individual
star drawn from the IMF, its lifetime is tracked, and massive stars
(8–40 M_sun) each explode as one core-collapse supernova injecting 1e51 erg
and metals.  This package provides:

* :mod:`repro.physics.cooling` — radiative cooling/heating (10 K–1e8 K);
* :mod:`repro.physics.imf` — Kroupa/Salpeter initial mass functions with
  star-by-star sampling;
* :mod:`repro.physics.stellar` — stellar lifetimes and SN scheduling;
* :mod:`repro.physics.star_formation` — conversion of cold dense gas into
  individual stars;
* :mod:`repro.physics.feedback` — SN energy and metal injection (the step
  the surrogate model *replaces* on the main nodes).
"""

from repro.physics.cooling import CoolingModel
from repro.physics.imf import KroupaIMF, SalpeterIMF
from repro.physics.stellar import stellar_lifetime, is_sn_progenitor, SN_MASS_MIN, SN_MASS_MAX
from repro.physics.star_formation import StarFormationModel, StarFormationEvent
from repro.physics.feedback import SNFeedback, SNYields

__all__ = [
    "CoolingModel",
    "KroupaIMF",
    "SalpeterIMF",
    "stellar_lifetime",
    "is_sn_progenitor",
    "SN_MASS_MIN",
    "SN_MASS_MAX",
    "StarFormationModel",
    "StarFormationEvent",
    "SNFeedback",
    "SNYields",
]
