"""Star formation: cold dense gas into individual stars.

A gas particle is SF-eligible when (i) its density exceeds a threshold,
(ii) it is cold, and (iii) its flow is converging.  An eligible particle
converts with probability p = 1 - exp(-C_* dt / t_ff) per step (the standard
local-efficiency-per-free-fall-time scheme).  Conversion is *star-by-star*:
the gas mass is replaced by individual stars sampled from the IMF — at
0.75 M_sun resolution a converted particle typically yields one star,
occasionally zero (mass carried to the next conversion) or a few light ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fdps.particles import ParticleSet, ParticleType
from repro.physics.imf import KroupaIMF, PiecewisePowerLawIMF
from repro.physics.stellar import schedule_sn
from repro.sph.timestep import dynamical_time
from repro.util.constants import internal_energy_to_temperature


@dataclass
class StarFormationEvent:
    """Record of one conversion: which gas died, which stars were born."""

    gas_index: int
    star_masses: np.ndarray
    time: float


@dataclass
class StarFormationModel:
    """Density/temperature threshold star formation with IMF sampling.

    Parameters
    ----------
    density_threshold : [M_sun/pc^3] (1 M_sun/pc^3 ~ 30 H/cm^3).
    temperature_threshold : [K] gas hotter than this never forms stars.
    efficiency : C_*, the efficiency per free-fall time.
    require_converging : demand div v < 0.
    """

    density_threshold: float = 10.0
    temperature_threshold: float = 300.0
    efficiency: float = 0.05
    require_converging: bool = True
    imf: PiecewisePowerLawIMF = field(default_factory=KroupaIMF)

    def eligible(self, ps: ParticleSet) -> np.ndarray:
        """Boolean mask over all particles: gas that may form stars now."""
        gas = ps.where_type(ParticleType.GAS)
        temp = internal_energy_to_temperature(ps.u)
        ok = gas & (ps.dens >= self.density_threshold) & (temp <= self.temperature_threshold)
        if self.require_converging:
            ok &= ps.divv < 0.0
        return ok

    def formation_probability(self, dens: np.ndarray, dt: float) -> np.ndarray:
        """p = 1 - exp(-C_* dt / t_ff(rho))."""
        tff = dynamical_time(dens)
        return 1.0 - np.exp(-self.efficiency * float(dt) / tff)

    def form_stars(
        self,
        ps: ParticleSet,
        time: float,
        dt: float,
        rng: np.random.Generator,
        next_pid: int,
    ) -> tuple[ParticleSet, list[StarFormationEvent], int]:
        """Convert eligible gas into star particles.

        Returns the updated particle set, the event list, and the next free
        particle ID.  Converted gas particles are removed; each new star
        inherits the gas particle's position (with a small scatter inside
        its kernel), velocity, and metallicity, and gets its SN time
        stamped.
        """
        mask = self.eligible(ps)
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return ps, [], next_pid
        p = self.formation_probability(ps.dens[idx], dt)
        fire = rng.uniform(0.0, 1.0, idx.size) < p
        idx = idx[fire]
        if idx.size == 0:
            return ps, [], next_pid

        events: list[StarFormationEvent] = []
        new_stars: list[ParticleSet] = []
        kill = np.zeros(len(ps), dtype=bool)
        for gi in idx:
            masses = self.imf.sample_total_mass(float(ps.mass[gi]), rng)
            if masses.size == 0:
                continue  # budget below the lightest star: try next step
            kill[gi] = True
            k = len(masses)
            stars = ParticleSet.empty(k)
            scatter = rng.normal(0.0, 0.1 * ps.h[gi], (k, 3))
            stars.pos[:] = ps.pos[gi] + scatter
            stars.vel[:] = ps.vel[gi]
            stars.mass[:] = masses
            stars.ptype[:] = int(ParticleType.STAR)
            stars.eps[:] = ps.eps[gi]
            stars.pid[:] = np.arange(next_pid, next_pid + k)
            stars.zmet[:] = ps.zmet[gi]
            stars.tform[:] = time
            stars.tsn[:] = schedule_sn(masses, time)
            next_pid += k
            new_stars.append(stars)
            events.append(StarFormationEvent(gas_index=int(gi), star_masses=masses, time=time))

        out = ps.remove(kill)
        for s in new_stars:
            out = out.append(s)
        return out, events, next_pid
