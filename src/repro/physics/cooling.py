"""Radiative cooling and heating.

A collisional-ionization-equilibrium cooling curve Lambda(T) spanning
10 K – 1e8 K (piecewise power-law in log-log, shaped like the standard
Sutherland & Dopita curve with a low-temperature fine-structure extension)
plus constant photoelectric heating.  The net specific energy rate is

.. math::  \\dot u = (\\Gamma n_H - \\Lambda(T) n_H^2) / \\rho

integrated with a sub-cycled semi-implicit update so a single 2,000 yr
global step can absorb cooling times far shorter than the step — the same
reason the production code treats cooling separately from the hydro kick
(step 6 of the Sec. 3.2 loop).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import (
    MSUN_G,
    MYR_S,
    PC_CM,
    DENSITY_TO_NH,
    internal_energy_to_temperature,
    temperature_to_internal_energy,
)

# Anchor points of log10 Lambda [erg cm^3 / s] vs log10 T [K]; CIE-like shape:
# fine-structure cooling below 1e4 K, the Ly-alpha wall at 1e4, the peak near
# 1e5, the dip near 1e7, bremsstrahlung rise beyond.
_LOGT = np.array([1.0, 2.0, 3.0, 3.9, 4.0, 4.3, 5.0, 5.8, 6.5, 7.0, 7.5, 8.0])
_LOGL = np.array(
    [-30.0, -28.4, -27.2, -26.0, -23.2, -21.9, -21.3, -21.8, -22.6, -22.9, -22.7, -22.4]
)

#: erg cm^3 s^-1 -> code units (M_sun pc^3 (pc/Myr)^2 Myr^-1 ... applied in rate form).
_ERG = 1.0 / (MSUN_G * (PC_CM / MYR_S) ** 2)


@dataclass
class CoolingModel:
    """Cooling/heating with a temperature floor and photoelectric heating.

    Parameters
    ----------
    heating_gamma : photoelectric heating rate per H atom [erg/s]; the
        paper's ISM model keeps the warm phase alive against cooling.
    t_floor / t_ceiling : clamp on the temperature after the update.
    metallicity_scaling : if True, scale Lambda linearly with Z/Z_sun below
        1e4 K and as a 0.5 power above (metals dominate fine-structure
        cooling; bremsstrahlung is metal-free).
    """

    heating_gamma: float = 2.0e-26
    t_floor: float = 10.0
    t_ceiling: float = 1.0e9
    metallicity_scaling: bool = False
    z_sun: float = 0.0134

    def lambda_cgs(self, temperature: np.ndarray, z: np.ndarray | None = None) -> np.ndarray:
        """Lambda(T) [erg cm^3/s], optionally metallicity-scaled."""
        logt = np.log10(np.clip(np.asarray(temperature, dtype=np.float64), 1.0, 1e9))
        lam = 10.0 ** np.interp(logt, _LOGT, _LOGL)
        if self.metallicity_scaling and z is not None:
            zfac = np.clip(np.asarray(z) / self.z_sun, 1e-3, 100.0)
            cold = logt < 4.0
            lam = np.where(cold, lam * zfac, lam * np.sqrt(zfac))
        return lam

    def du_dt(
        self, u: np.ndarray, dens: np.ndarray, z: np.ndarray | None = None
    ) -> np.ndarray:
        """Net du/dt in code units [(pc/Myr)^2 / Myr]."""
        u = np.asarray(u, dtype=np.float64)
        dens = np.asarray(dens, dtype=np.float64)
        t = internal_energy_to_temperature(u)
        n_h = dens * DENSITY_TO_NH                       # cm^-3
        lam = self.lambda_cgs(t, z)                      # erg cm^3/s
        # rho in cgs: dens * MSUN_G / PC_CM^3.
        rho_cgs = np.maximum(dens, 1e-300) * MSUN_G / PC_CM**3
        du_cgs = (self.heating_gamma * n_h - lam * n_h**2) / rho_cgs  # erg/g/s
        # erg/g = cm^2/s^2 -> (pc/Myr)^2 ; /s -> /Myr.
        return du_cgs / (PC_CM / MYR_S) ** 2 * MYR_S

    def cooling_time(self, u: np.ndarray, dens: np.ndarray) -> np.ndarray:
        """|u / du_dt| [Myr] (inf where the net rate vanishes)."""
        rate = self.du_dt(u, dens)
        return np.where(rate != 0.0, np.abs(np.asarray(u) / rate), np.inf)

    def integrate(
        self,
        u: np.ndarray,
        dens: np.ndarray,
        dt: float,
        z: np.ndarray | None = None,
        max_subcycles: int = 64,
    ) -> np.ndarray:
        """Advance u over dt with adaptive sub-cycling (new u returned).

        Each sub-step is limited to a 25% relative change of u (explicit but
        stable because of the limiter), and the result is clamped to the
        temperature floor/ceiling.
        """
        u = np.asarray(u, dtype=np.float64).copy()
        dens = np.asarray(dens, dtype=np.float64)
        remaining = np.full_like(u, float(dt))
        u_floor = temperature_to_internal_energy(self.t_floor)
        u_ceil = temperature_to_internal_energy(self.t_ceiling)
        for _ in range(max_subcycles):
            active = remaining > 0.0
            if not active.any():
                break
            rate = self.du_dt(u, dens, z)
            # Sub-step: min(remaining, 0.25 u / |rate|).
            safe = np.where(rate != 0.0, 0.25 * u / np.abs(rate), np.inf)
            step = np.minimum(remaining, np.maximum(safe, 1e-12))
            step = np.where(active, step, 0.0)
            u = np.clip(u + rate * step, u_floor, u_ceil)
            # At the floor/ceiling the remaining time can be dropped.
            at_limit = (u <= u_floor * (1 + 1e-12)) & (rate < 0)
            at_limit |= (u >= u_ceil * (1 - 1e-12)) & (rate > 0)
            remaining = np.where(at_limit, 0.0, remaining - step)
        return u

    def equilibrium_temperature(self, dens: float, bracket=(10.0, 1e8)) -> float:
        """T where heating balances cooling at a given density (bisection)."""
        lo, hi = bracket
        n_h = dens * DENSITY_TO_NH

        def net(t: float) -> float:
            return self.heating_gamma - self.lambda_cgs(np.array([t]))[0] * n_h

        flo = net(lo)
        for _ in range(200):
            mid = np.sqrt(lo * hi)
            fm = net(mid)
            if flo * fm <= 0:
                hi = mid
            else:
                lo, flo = mid, fm
            if hi / lo < 1.0 + 1e-6:
                break
        return float(np.sqrt(lo * hi))
