"""Stellar lifetimes and supernova scheduling.

Lifetimes follow the Raiteri et al. (1996) quadratic log-log fit at solar
metallicity; massive stars in [8, 40] M_sun end as core-collapse SNe.  When
a star particle is created, :func:`schedule_sn` stamps the absolute
simulation time of its explosion into the ``tsn`` field, and the integrator
simply compares ``tsn`` against the current step window — this is the
"identify stars exploding between t and t + dt_global" of Sec. 3.2, step 1.
"""

from __future__ import annotations

import numpy as np

#: CCSN progenitor mass window [M_sun].
SN_MASS_MIN = 8.0
SN_MASS_MAX = 40.0

# Raiteri et al. (1996) coefficients (solar Z), t in years.
_A0 = 10.13
_A1 = -4.10
_A2 = 1.07


def stellar_lifetime(mass: np.ndarray | float) -> np.ndarray | float:
    """Main-sequence lifetime [Myr] of a star of the given mass [M_sun]."""
    logm = np.log10(np.maximum(np.asarray(mass, dtype=np.float64), 0.01))
    logt_yr = _A0 + _A1 * logm + _A2 * logm**2
    t = 10.0 ** (logt_yr - 6.0)  # yr -> Myr
    if np.isscalar(mass):
        return float(t)
    return t


def is_sn_progenitor(mass: np.ndarray | float) -> np.ndarray | bool:
    """True for stars that will explode as core-collapse SNe."""
    m = np.asarray(mass, dtype=np.float64)
    out = (m >= SN_MASS_MIN) & (m <= SN_MASS_MAX)
    if np.isscalar(mass):
        return bool(out)
    return out


def schedule_sn(mass: np.ndarray, t_form: np.ndarray | float) -> np.ndarray:
    """Absolute SN time [Myr] per star: t_form + lifetime, inf if no SN."""
    m = np.asarray(mass, dtype=np.float64)
    t = np.asarray(t_form, dtype=np.float64) + stellar_lifetime(m)
    return np.where(is_sn_progenitor(m), t, np.inf)


def exploding_between(tsn: np.ndarray, t0: float, t1: float) -> np.ndarray:
    """Indices of stars whose SN time falls in the window [t0, t1).

    This is step (1) of the Sec. 3.2 integration loop.
    """
    tsn = np.asarray(tsn, dtype=np.float64)
    return np.flatnonzero((tsn >= t0) & (tsn < t1))
