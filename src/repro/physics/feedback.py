"""Supernova feedback: energy and metal injection.

This is the *direct* (conventional) feedback path: 1e51 erg of thermal
energy plus core-collapse yields (C, O, Mg, Fe) are kernel-weighted over the
gas neighbors of the explosion site.  In the surrogate scheme this code runs
only inside the training-data generator and the conventional baseline — on
the main nodes the pool-node U-Net prediction *replaces* it (Sec. 3.2 step 3
explicitly integrates "without adding any feedback energy").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fdps.particles import METAL_SPECIES, ParticleSet, ParticleType
from repro.sph.kernels import DEFAULT_KERNEL, SPHKernel
from repro.util.constants import SN_ENERGY


@dataclass
class SNYields:
    """Ejected masses per core-collapse SN [M_sun] (typical 15-20 M_sun
    progenitor yields: Nomoto et al. 2013 ballpark)."""

    c: float = 0.15
    o: float = 1.5
    mg: float = 0.12
    fe: float = 0.07

    def as_array(self) -> np.ndarray:
        return np.array([self.c, self.o, self.mg, self.fe])

    @property
    def total(self) -> float:
        return float(self.as_array().sum())


@dataclass
class SNFeedback:
    """Thermal-dump SN feedback with kernel weighting.

    Parameters
    ----------
    energy : energy per SN in code units (default 1e51 erg).
    coupling_radius : fallback injection radius [pc] when the local kernel
        size is unresolved; the paper's surrogate region is a (60 pc)^3 box,
        and direct injection uses the SPH kernel scale instead.
    """

    energy: float = SN_ENERGY
    yields: SNYields = None  # type: ignore[assignment]
    coupling_radius: float = 5.0
    kernel: SPHKernel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.yields is None:
            self.yields = SNYields()
        if self.kernel is None:
            self.kernel = DEFAULT_KERNEL

    def inject(
        self,
        ps: ParticleSet,
        center: np.ndarray,
        ejecta_mass: float = 0.0,
    ) -> int:
        """Deposit one SN at ``center`` into the surrounding gas, in place.

        Energy and metals are shared over gas particles within
        max(local h, coupling_radius) with SPH-kernel weights.  Returns the
        number of gas particles heated (0 if no gas is in range — the SN
        fizzles into the void, which the caller may log).
        """
        gas = ps.where_type(ParticleType.GAS)
        gidx = np.flatnonzero(gas)
        if gidx.size == 0:
            return 0
        center = np.asarray(center, dtype=np.float64)
        d = ps.pos[gidx] - center[None, :]
        r = np.sqrt(np.einsum("ij,ij->i", d, d))
        radius = max(float(np.median(ps.h[gidx])), self.coupling_radius)
        near = r < radius
        if not near.any():
            # Fall back to the single nearest particle: energy must go
            # somewhere or the conservation audit breaks.
            near = np.zeros_like(r, dtype=bool)
            near[np.argmin(r)] = True
        target = gidx[near]
        w = self.kernel.value(r[near], np.full(near.sum(), radius))
        w = np.maximum(w, 1e-300)
        w /= w.sum()

        # Thermal energy: specific energy bump du = w_k E / m_k.
        ps.u[target] += w * self.energy / ps.mass[target]
        # Metals: mass-fraction update including the added ejecta mass.
        add = w[:, None] * self.yields.as_array()[None, :]
        old_metal_mass = ps.zmet[target] * ps.mass[target][:, None]
        new_mass = ps.mass[target] + w * ejecta_mass
        ps.zmet[target] = (old_metal_mass + add) / new_mass[:, None]
        ps.mass[target] = new_mass
        return int(near.sum())


def metallicity(ps: ParticleSet) -> np.ndarray:
    """Total metal mass fraction Z per particle (sum of tracked species).

    Tracked species cover ~2/3 of the true metal budget; this is the Z used
    by the metallicity-scaled cooling.
    """
    return ps.zmet.sum(axis=1)


def metal_species_index(name: str) -> int:
    """Column index of a species in the ``zmet`` array."""
    return METAL_SPECIES.index(name)
