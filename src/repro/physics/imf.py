"""Initial mass functions with star-by-star sampling.

At the paper's 0.75 M_sun baryonic resolution, star formation creates
*individual stars*: each new star particle carries one stellar mass drawn
from the IMF.  Sampling uses exact inverse-CDF inversion of the piecewise
power laws, and ``sample_total_mass`` draws stars until a gas mass budget is
exhausted (the conversion step of :mod:`repro.physics.star_formation`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PowerLawSegment:
    """dN/dm ~ m^-alpha on [m_lo, m_hi)."""

    m_lo: float
    m_hi: float
    alpha: float


class PiecewisePowerLawIMF:
    """A broken-power-law IMF with exact inverse-CDF sampling."""

    def __init__(self, segments: list[PowerLawSegment]) -> None:
        if not segments:
            raise ValueError("need at least one segment")
        for a, b in zip(segments, segments[1:], strict=False):
            if not np.isclose(a.m_hi, b.m_lo):
                raise ValueError("segments must be contiguous")
        self.segments = segments
        # Continuity coefficients: amplitude of each segment so dN/dm is
        # continuous across breaks, then global normalization to unit number.
        coeff = [1.0]
        for a, b in zip(segments, segments[1:], strict=False):
            coeff.append(coeff[-1] * a.m_hi ** (-a.alpha) / a.m_hi ** (-b.alpha))
        numbers = np.array(
            [c * self._seg_number(s) for c, s in zip(coeff, self.segments, strict=True)]
        )
        total = numbers.sum()
        self.coeff = np.asarray(coeff) / total
        self.seg_prob = numbers / total
        self.cum_prob = np.concatenate([[0.0], np.cumsum(self.seg_prob)])

    @staticmethod
    def _seg_number(s: PowerLawSegment) -> float:
        a = s.alpha
        if np.isclose(a, 1.0):
            return np.log(s.m_hi / s.m_lo)
        return (s.m_hi ** (1 - a) - s.m_lo ** (1 - a)) / (1 - a)

    @staticmethod
    def _seg_mass(s: PowerLawSegment) -> float:
        a = s.alpha
        if np.isclose(a, 2.0):
            return np.log(s.m_hi / s.m_lo)
        return (s.m_hi ** (2 - a) - s.m_lo ** (2 - a)) / (2 - a)

    # -- statistics ------------------------------------------------------------
    @property
    def m_min(self) -> float:
        return self.segments[0].m_lo

    @property
    def m_max(self) -> float:
        return self.segments[-1].m_hi

    def mean_mass(self) -> float:
        """<m> = int m dN / int dN."""
        num = sum(c * self._seg_mass(s) for c, s in zip(self.coeff, self.segments, strict=True))
        return float(num)  # coeff already normalized to unit number

    def number_fraction_above(self, m: float) -> float:
        """Fraction of stars with mass > m."""
        frac = 0.0
        for c, s in zip(self.coeff, self.segments, strict=True):
            lo = max(s.m_lo, m)
            if lo >= s.m_hi:
                continue
            frac += c * self._seg_number(PowerLawSegment(lo, s.m_hi, s.alpha))
        return float(frac)

    def mass_fraction_above(self, m: float) -> float:
        """Fraction of total stellar mass in stars with mass > m."""
        num = 0.0
        for c, s in zip(self.coeff, self.segments, strict=True):
            lo = max(s.m_lo, m)
            if lo >= s.m_hi:
                continue
            num += c * self._seg_mass(PowerLawSegment(lo, s.m_hi, s.alpha))
        return float(num / self.mean_mass())

    # -- sampling ---------------------------------------------------------------
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw n stellar masses (exact inverse CDF)."""
        u = rng.uniform(0.0, 1.0, n)
        seg_idx = np.searchsorted(self.cum_prob, u, side="right") - 1
        seg_idx = np.clip(seg_idx, 0, len(self.segments) - 1)
        out = np.empty(n)
        for k, s in enumerate(self.segments):
            sel = seg_idx == k
            if not sel.any():
                continue
            # Rescale u within the segment to [0, 1).
            v = (u[sel] - self.cum_prob[k]) / self.seg_prob[k]
            a = s.alpha
            if np.isclose(a, 1.0):
                out[sel] = s.m_lo * (s.m_hi / s.m_lo) ** v
            else:
                lo_p = s.m_lo ** (1 - a)
                hi_p = s.m_hi ** (1 - a)
                out[sel] = (lo_p + v * (hi_p - lo_p)) ** (1.0 / (1 - a))
        return out

    def sample_total_mass(
        self, total_mass: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw stars until their summed mass reaches ``total_mass``.

        The final star is kept if that leaves the total closer to the
        target (standard stop-nearest scheme), so the expectation of the
        sampled mass is unbiased to O(<m>).
        """
        if total_mass <= 0:
            return np.empty(0)
        expect = max(int(total_mass / self.mean_mass() * 1.2) + 8, 8)
        masses: list[float] = []
        acc = 0.0
        while True:
            batch = self.sample(expect, rng)
            for m in batch:
                if acc + m > total_mass:
                    if (acc + m) - total_mass < total_mass - acc:
                        masses.append(m)
                    return np.asarray(masses)
                masses.append(m)
                acc += m


class KroupaIMF(PiecewisePowerLawIMF):
    """Kroupa (2001): alpha = 1.3 on [0.08, 0.5), 2.3 on [0.5, m_max)."""

    def __init__(self, m_min: float = 0.08, m_max: float = 150.0) -> None:
        super().__init__(
            [
                PowerLawSegment(m_min, 0.5, 1.3),
                PowerLawSegment(0.5, m_max, 2.3),
            ]
        )


class SalpeterIMF(PiecewisePowerLawIMF):
    """Salpeter (1955): single slope 2.35 on [0.1, 100]."""

    def __init__(self, m_min: float = 0.1, m_max: float = 100.0) -> None:
        super().__init__([PowerLawSegment(m_min, m_max, 2.35)])
