"""Service observability: what the inference service is doing, in numbers.

:class:`ServiceMetrics` is filled in by the server and scheduler as
requests flow through, and exports one flat dict (:meth:`as_dict`) that the
benchmarks write next to their timing rows and that
:func:`repro.perf.costmodel.serve_summary` prices: queue depth, batch
occupancy, per-event latency percentiles (in global steps), worker busy
time, and the wall-clock the main rank spent *blocked* on a late
prediction — the exposed (non-overlapped) part of the DL time that the
paper's Figs. 6–7 exclude because, ideally, it is zero.

Fault tolerance is observable here too: worker restarts, batch
re-dispatches, inline fault fallbacks, reclaimed shm slots, per-batch
timeouts, and time-to-recovery samples all land in counters — the serve
recovery paths *count* faults, they never swallow them (the
``silent-except`` lint rule holds that line statically).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

#: Version stamp of the :meth:`ServiceMetrics.to_dict` export.  Consumers
#: (the run report, the cost model, archived ``BENCH_*.json`` rows) key on
#: it; bump on any rename/removal/semantic change of an exported field —
#: *adding* fields is compatible and needs no bump.
METRICS_SCHEMA_VERSION = 1


@dataclass
class ServiceMetrics:
    """Counters and samples accumulated over one server lifetime."""

    n_submitted: int = 0
    n_completed: int = 0
    n_batches: int = 0
    bytes_in: int = 0            # request buffers crossing to the workers
    bytes_out: int = 0           # response buffers crossing back
    #: Pending-queue depth sampled at every tick.
    queue_depth_samples: list[int] = field(default_factory=list)
    #: Events per flushed batch.
    batch_sizes: list[int] = field(default_factory=list)
    #: Per-event latency in global steps: collect step - dispatch step.
    latency_steps: list[int] = field(default_factory=list)
    #: Per-event steps spent waiting in the scheduler before the flush.
    flush_wait_steps: list[int] = field(default_factory=list)
    #: Seconds each worker spent inside the predictor.
    worker_busy_s: dict[int, float] = field(default_factory=dict)
    #: Wall seconds the *main* rank blocked waiting for a due prediction.
    exposed_wait_s: float = 0.0
    #: Wall seconds spent running predictions inline on the main rank
    #: (sync transport flushes, spill/oracle overflow handling).
    inline_predict_s: float = 0.0
    # --- overflow policy accounting (replaces the old silent counter) -------
    n_overflow: int = 0
    n_blocked: int = 0
    n_spilled: int = 0
    n_oracle_fallback: int = 0
    blocked_stall_steps: int = 0
    # --- fault tolerance (worker supervision + recovery) ---------------------
    #: Dead/hung workers the supervisor respawned from the spec.
    n_worker_restarts: int = 0
    #: Batches re-dispatched from the in-flight request registry after a
    #: worker death, kill, or corrupt response.
    n_redispatch: int = 0
    #: Events resolved inline on the main rank by the fault fallback (the
    #: same surrogate the workers build, so results stay bit-identical).
    n_fault_oracle: int = 0
    #: Shm ring slots reclaimed from dead workers back into the free list.
    n_slots_reclaimed: int = 0
    #: In-flight batches that blew their per-batch deadline (hung or lost).
    n_batch_timeouts: int = 0
    #: Exception rows shipped back by live workers (predict failures).
    n_worker_errors: int = 0
    #: Seconds from detecting each worker death to its replacement running.
    recovery_s: list[float] = field(default_factory=list)
    #: True once the server gave up on its workers and went inline-only.
    degraded: bool = False
    # --- shm-transport accounting --------------------------------------------
    #: Requests dispatched zero-copy through a shared-memory ring slot.
    n_shm_slot: int = 0
    #: Requests that could not use a shared-memory slot (ring exhausted or
    #: payload larger than a slot) and rode the pickled queue instead.
    n_shm_fallback: int = 0
    #: Ring geometry (0 unless the transport is ``shm``).
    shm_n_slots: int = 0
    shm_slot_bytes: int = 0
    # --- wall-clock window for utilization ----------------------------------
    started_at: float | None = None
    stopped_at: float | None = None

    # ----------------------------------------------------------- accumulation
    def record_batch(self, size: int) -> None:
        self.n_batches += 1
        self.batch_sizes.append(int(size))

    def record_completion(self, dispatch_step: int, collect_step: int) -> None:
        self.n_completed += 1
        self.latency_steps.append(int(collect_step) - int(dispatch_step))

    def add_worker_busy(self, worker_id: int, seconds: float) -> None:
        self.worker_busy_s[worker_id] = (
            self.worker_busy_s.get(worker_id, 0.0) + float(seconds)
        )

    # -------------------------------------------------------------- summaries
    def batch_occupancy(self, max_batch: int) -> float:
        """Mean fill fraction of flushed batches (1.0 = always full)."""
        if not self.batch_sizes or max_batch <= 0:
            return 0.0
        return float(np.mean(self.batch_sizes)) / float(max_batch)

    def latency_percentiles(self) -> tuple[float, float]:
        """(p50, p95) event latency in global steps."""
        if not self.latency_steps:
            return (0.0, 0.0)
        arr = np.asarray(self.latency_steps, dtype=np.float64)
        return (float(np.percentile(arr, 50)), float(np.percentile(arr, 95)))

    def worker_utilization(self, n_workers: int = 0) -> float:
        """Mean busy fraction over *all* workers in the service window.

        ``n_workers`` is the pool size; workers that never received a batch
        contribute zero busy time, so they must count in the denominator —
        otherwise a 2-worker service fed entirely through worker 0 would
        report worker 0's busy fraction as the pool mean.
        """
        if not self.worker_busy_s or self.started_at is None:
            return 0.0
        stop = self.stopped_at if self.stopped_at is not None else time.perf_counter()
        if stop <= self.started_at:
            return 0.0
        window = stop - self.started_at
        denom = max(int(n_workers), len(self.worker_busy_s))
        return float(sum(self.worker_busy_s.values()) / (denom * window))

    def as_dict(self, max_batch: int = 0, n_workers: int = 0) -> dict:
        p50, p95 = self.latency_percentiles()
        return {
            "n_submitted": self.n_submitted,
            "n_completed": self.n_completed,
            "n_batches": self.n_batches,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "mean_queue_depth": (
                float(np.mean(self.queue_depth_samples))
                if self.queue_depth_samples
                else 0.0
            ),
            "max_queue_depth": (
                int(max(self.queue_depth_samples)) if self.queue_depth_samples else 0
            ),
            "mean_batch_size": (
                float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0
            ),
            "batch_occupancy": self.batch_occupancy(max_batch),
            "latency_steps_p50": p50,
            "latency_steps_p95": p95,
            "mean_flush_wait_steps": (
                float(np.mean(self.flush_wait_steps)) if self.flush_wait_steps else 0.0
            ),
            "worker_busy_s": dict(self.worker_busy_s),
            "worker_utilization": self.worker_utilization(n_workers),
            "exposed_wait_s": self.exposed_wait_s,
            "inline_predict_s": self.inline_predict_s,
            "n_overflow": self.n_overflow,
            "n_blocked": self.n_blocked,
            "n_spilled": self.n_spilled,
            "n_oracle_fallback": self.n_oracle_fallback,
            "blocked_stall_steps": self.blocked_stall_steps,
            "n_shm_slot": self.n_shm_slot,
            "n_shm_fallback": self.n_shm_fallback,
            "shm_n_slots": self.shm_n_slots,
            "shm_slot_bytes": self.shm_slot_bytes,
            "n_worker_restarts": self.n_worker_restarts,
            "n_redispatch": self.n_redispatch,
            "n_fault_oracle": self.n_fault_oracle,
            "n_slots_reclaimed": self.n_slots_reclaimed,
            "n_batch_timeouts": self.n_batch_timeouts,
            "n_worker_errors": self.n_worker_errors,
            "recovery_s": list(self.recovery_s),
            "mean_recovery_s": (
                float(np.mean(self.recovery_s)) if self.recovery_s else 0.0
            ),
            "degraded": self.degraded,
        }

    def to_dict(self, max_batch: int = 0, n_workers: int = 0) -> dict:
        """The versioned export: :meth:`as_dict` plus a ``schema`` stamp.

        This is the shape attached to traces (``service_metrics`` meta) and
        consumed by :func:`repro.perf.costmodel.serve_summary` — the schema
        field lets archived exports be validated years later.
        """
        out = {"schema": METRICS_SCHEMA_VERSION}
        out.update(self.as_dict(max_batch=max_batch, n_workers=n_workers))
        return out

    def summary(self, max_batch: int = 0, n_workers: int = 0) -> dict:
        """A small human-oriented digest, safe at *any* lifecycle point.

        Callable before the server ever started (``started_at`` unset),
        mid-flight (``stopped_at`` unset — the utilization window falls
        back to "now"), and after a supervisor restart reset the window
        (``stopped_at <= started_at`` yields zero utilization rather than a
        negative one).  Never raises; every value is a plain float/int.
        """
        p50, p95 = self.latency_percentiles()
        return {
            "n_submitted": int(self.n_submitted),
            "n_completed": int(self.n_completed),
            "n_batches": int(self.n_batches),
            "batch_occupancy": self.batch_occupancy(max_batch),
            "latency_steps_p50": p50,
            "latency_steps_p95": p95,
            "worker_utilization": self.worker_utilization(n_workers),
            "exposed_wait_s": float(self.exposed_wait_s),
            "inline_predict_s": float(self.inline_predict_s),
            "n_faults": int(
                self.n_worker_restarts + self.n_batch_timeouts + self.n_worker_errors
            ),
            "n_redispatch": int(self.n_redispatch),
            "degraded": bool(self.degraded),
        }
