"""The serve wire format: SN regions and predictions as flat float64 buffers.

One request or response is a single 1-D ``np.float64`` array — a fixed
header followed by the full packed-``FIELDS`` particle payload
(:meth:`repro.fdps.particles.ParticleSet.pack`).  A single dtype keeps the
buffer directly shippable over any byte transport (pipes, shared memory,
MPI) and makes its ``nbytes`` the exact figure the :class:`SimComm` ledger
charges.  Integer header entries (ids, steps, counts) are stored as
float64, exact for any value below 2**53 — the same convention the domain
exchange payload uses for ``pid``.

Layout (offsets in float64 slots)::

    request   [0] REQUEST_MAGIC   [1] WIRE_VERSION  [2] event_id
              [3] base_seed       [4] star_pid      [5] dispatch_step
              [6] return_step     [7:10] center xyz [10] n_particles
              [11] packed_width   [12:] particle payload (n * width)

    response  [0] RESPONSE_MAGIC  [1] WIRE_VERSION  [2] event_id
              [3] return_step     [4] n_particles   [5] packed_width
              [6:] particle payload (n * width)

Decoding validates magic, version, and payload length, so a torn or
misrouted buffer fails loudly instead of producing corrupt particles.

Both messages can also be encoded *in place* into a caller-provided
float64 view (:meth:`ServeRequest.encode_into` /
:meth:`ServeResponse.encode_into`) — that is how the shared-memory
transport writes requests and predictions directly into ring slots with no
intermediate allocation; :func:`request_nfloats` / :func:`response_nfloats`
size those slots.  A response for ``n`` particles always fits in the slot
that carried the request for the same ``n`` (its header is smaller and the
payload identical in shape), so a worker can overwrite a request with its
prediction in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fdps.particles import ParticleSet, packed_width

WIRE_VERSION = 1
#: "SREQ" / "SRES" in ASCII — integer-valued magics survive the float64 trip.
REQUEST_MAGIC = float(0x53524551)
RESPONSE_MAGIC = float(0x53524553)

_REQ_HEADER = 12
_RES_HEADER = 6


class WireFormatError(ValueError):
    """A serve wire buffer failed validation before decoding.

    Raised on truncated buffers, wrong magic/version, non-integral or
    negative header counts, and payload-length mismatches — one typed
    error the fault-recovery paths can catch (a torn response is a
    recoverable transport fault, a numpy ``IndexError`` deep inside
    ``ParticleSet.unpack`` is not).
    """


def request_nfloats(n_particles: int) -> int:
    """Float64 slots one encoded request for ``n_particles`` occupies."""
    return _REQ_HEADER + int(n_particles) * packed_width()


def response_nfloats(n_particles: int) -> int:
    """Float64 slots one encoded response for ``n_particles`` occupies."""
    return _RES_HEADER + int(n_particles) * packed_width()


@dataclass
class ServeRequest:
    """One SN region on its way to an inference worker."""

    event_id: int
    base_seed: int
    star_pid: int
    dispatch_step: int
    return_step: int
    center: np.ndarray          # (3,) [pc]
    region: ParticleSet
    #: Cached wire encoding — requests are immutable once built, so encode
    #: once and let every consumer (transport, comm ledger) share the bytes.
    buffer: np.ndarray | None = field(default=None, repr=False, compare=False)

    def rng(self) -> np.random.Generator:
        """The per-event Gibbs generator — a pure function of the event.

        Seeding from (base seed, star pid, dispatch step) makes the
        prediction independent of dispatch/collect ordering, batching, and
        which worker runs it.  Note that an in-flight event re-dispatched
        after a checkpoint restore carries its *new* dispatch step, so it
        draws a fresh (still deterministic) sample.
        """
        return event_rng(self.base_seed, self.star_pid, self.dispatch_step)

    def to_buffer(self) -> np.ndarray:
        if self.buffer is not None:
            return self.buffer
        buf = np.empty(request_nfloats(len(self.region)), dtype=np.float64)
        self.encode_into(buf)
        self.buffer = buf
        return buf

    def encode_into(self, out: np.ndarray) -> int:
        """Write the wire encoding into ``out`` (e.g. a shared-memory slot).

        Returns the number of float64 entries used; raises when ``out`` is
        too small.  The cached :attr:`buffer` is *not* set — an external
        view must never be aliased past the caller's control.
        """
        payload = self.region.pack()
        n, w = payload.shape
        total = _REQ_HEADER + n * w
        if out.size < total:
            raise ValueError(
                f"serve request needs {total} float64 slots, target has {out.size}"
            )
        out[0] = REQUEST_MAGIC
        out[1] = WIRE_VERSION
        out[2] = self.event_id
        out[3] = self.base_seed
        out[4] = self.star_pid
        out[5] = self.dispatch_step
        out[6] = self.return_step
        out[7:10] = np.asarray(self.center, dtype=np.float64)
        out[10] = n
        out[11] = w
        out[_REQ_HEADER:total] = payload.ravel()
        return total

    @classmethod
    def from_buffer(cls, buf: np.ndarray) -> "ServeRequest":
        buf = np.asarray(buf, dtype=np.float64).ravel()
        _check_header(buf, REQUEST_MAGIC, _REQ_HEADER, "request")
        n, w = _header_counts(buf, 10, 11, "request")
        _check_payload(buf, _REQ_HEADER, n, w, "request")
        region = ParticleSet.unpack(buf[_REQ_HEADER:].reshape(n, w))
        return cls(
            event_id=int(buf[2]),
            base_seed=int(buf[3]),
            star_pid=int(buf[4]),
            dispatch_step=int(buf[5]),
            return_step=int(buf[6]),
            center=buf[7:10].copy(),
            region=region,
            buffer=buf,
        )


@dataclass
class ServeResponse:
    """One prediction on its way back to the main rank."""

    event_id: int
    return_step: int
    particles: ParticleSet
    #: Cached wire encoding (see :attr:`ServeRequest.buffer`).
    buffer: np.ndarray | None = field(default=None, repr=False, compare=False)

    def to_buffer(self) -> np.ndarray:
        if self.buffer is not None:
            return self.buffer
        buf = np.empty(response_nfloats(len(self.particles)), dtype=np.float64)
        self.encode_into(buf)
        self.buffer = buf
        return buf

    def encode_into(self, out: np.ndarray) -> int:
        """Write the wire encoding into ``out`` (see :meth:`ServeRequest
        .encode_into`); a shm worker overwrites the request slot with this."""
        payload = self.particles.pack()
        n, w = payload.shape
        total = _RES_HEADER + n * w
        if out.size < total:
            raise ValueError(
                f"serve response needs {total} float64 slots, target has {out.size}"
            )
        out[0] = RESPONSE_MAGIC
        out[1] = WIRE_VERSION
        out[2] = self.event_id
        out[3] = self.return_step
        out[4] = n
        out[5] = w
        out[_RES_HEADER:total] = payload.ravel()
        return total

    @classmethod
    def from_buffer(cls, buf: np.ndarray) -> "ServeResponse":
        buf = np.asarray(buf, dtype=np.float64).ravel()
        _check_header(buf, RESPONSE_MAGIC, _RES_HEADER, "response")
        n, w = _header_counts(buf, 4, 5, "response")
        _check_payload(buf, _RES_HEADER, n, w, "response")
        particles = ParticleSet.unpack(buf[_RES_HEADER:].reshape(n, w))
        return cls(event_id=int(buf[2]), return_step=int(buf[3]),
                   particles=particles, buffer=buf)


def event_rng(base_seed: int, star_pid: int, dispatch_step: int) -> np.random.Generator:
    """Deterministic per-event generator for the Gibbs re-sampling."""
    return np.random.default_rng(
        [abs(int(base_seed)), abs(int(star_pid)), abs(int(dispatch_step))]
    )


def _check_header(buf: np.ndarray, magic: float, header: int, kind: str) -> None:
    if len(buf) < header:
        raise WireFormatError(f"serve {kind} buffer too short for its header")
    if buf[0] != magic:
        raise WireFormatError(f"serve {kind} buffer has wrong magic {buf[0]!r}")
    if not np.isfinite(buf[1]) or int(buf[1]) != WIRE_VERSION:
        raise WireFormatError(
            f"serve {kind} wire version {buf[1]!r} != {WIRE_VERSION}"
        )


def _header_counts(buf: np.ndarray, n_slot: int, w_slot: int, kind: str) -> tuple[int, int]:
    """Decode (n_particles, packed_width) from a validated header.

    A corrupt header can hold anything a float64 can (NaN, inf, negative,
    fractional); every such value must surface as :class:`WireFormatError`
    before the payload length is trusted.
    """
    n_f, w_f = float(buf[n_slot]), float(buf[w_slot])
    if not (np.isfinite(n_f) and np.isfinite(w_f)):
        raise WireFormatError(f"serve {kind} header counts are not finite")
    n, w = int(n_f), int(w_f)
    if n != n_f or w != w_f or n < 0 or w < 1:
        raise WireFormatError(
            f"serve {kind} header counts ({n_f!r}, {w_f!r}) are not valid "
            "(count, width) integers"
        )
    return n, w


def _check_payload(buf: np.ndarray, header: int, n: int, w: int, kind: str) -> None:
    if w != packed_width():
        raise WireFormatError(
            f"serve {kind} payload width {w} != registry width {packed_width()}"
        )
    if len(buf) != header + n * w:
        raise WireFormatError(
            f"serve {kind} buffer length {len(buf)} != header + {n}x{w} payload"
        )
