"""The serve wire format: SN regions and predictions as flat float64 buffers.

One request or response is a single 1-D ``np.float64`` array — a fixed
header followed by the full packed-``FIELDS`` particle payload
(:meth:`repro.fdps.particles.ParticleSet.pack`).  A single dtype keeps the
buffer directly shippable over any byte transport (pipes, shared memory,
MPI) and makes its ``nbytes`` the exact figure the :class:`SimComm` ledger
charges.  Integer header entries (ids, steps, counts) are stored as
float64, exact for any value below 2**53 — the same convention the domain
exchange payload uses for ``pid``.

Layout (offsets in float64 slots)::

    request   [0] REQUEST_MAGIC   [1] WIRE_VERSION  [2] event_id
              [3] base_seed       [4] star_pid      [5] dispatch_step
              [6] return_step     [7:10] center xyz [10] n_particles
              [11] packed_width   [12:] particle payload (n * width)

    response  [0] RESPONSE_MAGIC  [1] WIRE_VERSION  [2] event_id
              [3] return_step     [4] n_particles   [5] packed_width
              [6:] particle payload (n * width)

Decoding validates magic, version, and payload length, so a torn or
misrouted buffer fails loudly instead of producing corrupt particles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fdps.particles import ParticleSet, packed_width

WIRE_VERSION = 1
#: "SREQ" / "SRES" in ASCII — integer-valued magics survive the float64 trip.
REQUEST_MAGIC = float(0x53524551)
RESPONSE_MAGIC = float(0x53524553)

_REQ_HEADER = 12
_RES_HEADER = 6


@dataclass
class ServeRequest:
    """One SN region on its way to an inference worker."""

    event_id: int
    base_seed: int
    star_pid: int
    dispatch_step: int
    return_step: int
    center: np.ndarray          # (3,) [pc]
    region: ParticleSet
    #: Cached wire encoding — requests are immutable once built, so encode
    #: once and let every consumer (transport, comm ledger) share the bytes.
    buffer: np.ndarray | None = field(default=None, repr=False, compare=False)

    def rng(self) -> np.random.Generator:
        """The per-event Gibbs generator — a pure function of the event.

        Seeding from (base seed, star pid, dispatch step) makes the
        prediction independent of dispatch/collect ordering, batching, and
        which worker runs it.  Note that an in-flight event re-dispatched
        after a checkpoint restore carries its *new* dispatch step, so it
        draws a fresh (still deterministic) sample.
        """
        return event_rng(self.base_seed, self.star_pid, self.dispatch_step)

    def to_buffer(self) -> np.ndarray:
        if self.buffer is not None:
            return self.buffer
        payload = self.region.pack()
        n, w = payload.shape
        buf = np.empty(_REQ_HEADER + n * w, dtype=np.float64)
        buf[0] = REQUEST_MAGIC
        buf[1] = WIRE_VERSION
        buf[2] = self.event_id
        buf[3] = self.base_seed
        buf[4] = self.star_pid
        buf[5] = self.dispatch_step
        buf[6] = self.return_step
        buf[7:10] = np.asarray(self.center, dtype=np.float64)
        buf[10] = n
        buf[11] = w
        buf[_REQ_HEADER:] = payload.ravel()
        self.buffer = buf
        return buf

    @classmethod
    def from_buffer(cls, buf: np.ndarray) -> "ServeRequest":
        buf = np.asarray(buf, dtype=np.float64).ravel()
        _check_header(buf, REQUEST_MAGIC, _REQ_HEADER, "request")
        n, w = int(buf[10]), int(buf[11])
        _check_payload(buf, _REQ_HEADER, n, w, "request")
        region = ParticleSet.unpack(buf[_REQ_HEADER:].reshape(n, w))
        return cls(
            event_id=int(buf[2]),
            base_seed=int(buf[3]),
            star_pid=int(buf[4]),
            dispatch_step=int(buf[5]),
            return_step=int(buf[6]),
            center=buf[7:10].copy(),
            region=region,
            buffer=buf,
        )


@dataclass
class ServeResponse:
    """One prediction on its way back to the main rank."""

    event_id: int
    return_step: int
    particles: ParticleSet
    #: Cached wire encoding (see :attr:`ServeRequest.buffer`).
    buffer: np.ndarray | None = field(default=None, repr=False, compare=False)

    def to_buffer(self) -> np.ndarray:
        if self.buffer is not None:
            return self.buffer
        payload = self.particles.pack()
        n, w = payload.shape
        buf = np.empty(_RES_HEADER + n * w, dtype=np.float64)
        buf[0] = RESPONSE_MAGIC
        buf[1] = WIRE_VERSION
        buf[2] = self.event_id
        buf[3] = self.return_step
        buf[4] = n
        buf[5] = w
        buf[_RES_HEADER:] = payload.ravel()
        self.buffer = buf
        return buf

    @classmethod
    def from_buffer(cls, buf: np.ndarray) -> "ServeResponse":
        buf = np.asarray(buf, dtype=np.float64).ravel()
        _check_header(buf, RESPONSE_MAGIC, _RES_HEADER, "response")
        n, w = int(buf[4]), int(buf[5])
        _check_payload(buf, _RES_HEADER, n, w, "response")
        particles = ParticleSet.unpack(buf[_RES_HEADER:].reshape(n, w))
        return cls(event_id=int(buf[2]), return_step=int(buf[3]),
                   particles=particles, buffer=buf)


def event_rng(base_seed: int, star_pid: int, dispatch_step: int) -> np.random.Generator:
    """Deterministic per-event generator for the Gibbs re-sampling."""
    return np.random.default_rng(
        [abs(int(base_seed)), abs(int(star_pid)), abs(int(dispatch_step))]
    )


def _check_header(buf: np.ndarray, magic: float, header: int, kind: str) -> None:
    if len(buf) < header:
        raise ValueError(f"serve {kind} buffer too short for its header")
    if buf[0] != magic:
        raise ValueError(f"serve {kind} buffer has wrong magic {buf[0]!r}")
    if int(buf[1]) != WIRE_VERSION:
        raise ValueError(
            f"serve {kind} wire version {int(buf[1])} != {WIRE_VERSION}"
        )


def _check_payload(buf: np.ndarray, header: int, n: int, w: int, kind: str) -> None:
    if w != packed_width():
        raise ValueError(
            f"serve {kind} payload width {w} != registry width {packed_width()}"
        )
    if len(buf) != header + n * w:
        raise ValueError(
            f"serve {kind} buffer length {len(buf)} != header + {n}x{w} payload"
        )
