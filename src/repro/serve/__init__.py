"""``repro.serve`` — asynchronous, batched surrogate-inference service.

The paper's headline performance claim (Sec. 3.1–3.2, Figs. 6–7) is that
SN surrogate inference runs on dedicated *pool* ranks, fully overlapped
with the main-node integration, so the DL time never touches the critical
path.  This package realizes that overlap in-process-tree form:

* :class:`SurrogateServer` — owns worker processes (or a deterministic
  in-process ``sync`` transport), a :class:`BatchScheduler` that coalesces
  in-flight SN regions into padded voxel batches with deadline-aware
  flushing, and a :class:`ServiceMetrics` ledger (queue depth, batch
  occupancy, p50/p95 latency in steps, worker utilization, exposed wait).
* :mod:`repro.serve.wire` — the packed-``FIELDS`` wire format every region
  and prediction crosses the transport in (documented there, field by
  field), whose exact byte counts the :class:`~repro.fdps.comm.SimComm`
  ledger charges.
* :class:`OverflowPolicy` — explicit backpressure (queue / block / spill /
  oracle) replacing the old silent overflow counter; no SN event is ever
  dropped without at least an oracle-fallback prediction.

:class:`repro.core.pool.PoolManager` is a thin client over this service;
``examples/serve_inference.py`` drives a standalone server,
``examples/serve_trained_unet.py`` serves a trained exported U-Net, and
``benchmarks/bench_serve_throughput.py`` / ``bench_shm_transport.py``
measure regions/s, overlap efficiency, and cross-transport parity.

Choosing a transport
--------------------

All three produce bit-identical predictions (per-event seeded Gibbs); they
differ only in *where* inference runs and *how* the payload bytes move:

========== ===================== ============================== =====================
transport  where inference runs  payload copy semantics         when to use
========== ===================== ============================== =====================
``sync``   caller's thread, at   none — buffers stay in          tests, debugging,
           flush time            process                         deterministic refs;
                                                                 inference is fully
                                                                 exposed on the main
                                                                 path
``process`` ``n_workers`` OS     pickled through a queue pipe,   overlap on small
           processes             twice per direction (request    payloads / toy
                                 out, response back)             grids; no shared
                                                                 memory available
``shm``    ``n_workers`` OS      zero-copy: one memmove into a   production regions
           processes             shared ring slot, worker        (the paper's 64^3
                                 decodes from and overwrites     serving path) —
                                 the slot in place; queues       pipe traffic is
                                 carry only slot indices         O(events), not
                                                                 O(bytes)
========== ===================== ============================== =====================

The ``SimComm`` ``pool_p2p`` ledger always charges the wire buffer's exact
``nbytes``, so the measured communication volume is transport-independent.

Failure modes and recovery
--------------------------

A long production run must treat the oracle fallback — not a crash — as
the worst case (the shared-ML-server deployments the paper line targets
run for days).  Under the default ``fault_mode="recover"`` the worker
transports survive every worker-side fault; the ``sync`` transport has no
workers and nothing to survive:

=================== ======================== ===============================
fault               detection                recovery
=================== ======================== ===============================
worker dies         ``is_alive`` edge in the supervisor restarts it from the
(crash, OOM, kill)  supervision pass; the    picklable recipe with capped
                    claim row attributes the exponential backoff; the lost
                    batch it held            batch re-dispatches from the
                                             in-flight request registry
worker hangs        per-batch timeout        batch re-dispatches; the hung
                    (``SupervisionConfig     worker's shm leases park as
                    .batch_timeout_s``)      zombies until provably released
response dropped    per-batch timeout        same as a hang
response corrupt    :class:`~repro.serve     batch re-dispatches; events the
                    .wire.WireFormatError`   good buffers covered are kept
                    at decode                (idempotent)
worker raises       exception row on the     events resolve *inline* on the
in predict          result queue             main rank (request-dependent
                                             faults would recur on retry)
repeated failures   ``max_consecutive_       service *degrades*: all work
                    failures`` per worker;   runs inline on the main rank
                    every slot abandoned     and the run still finishes
=================== ======================== ===============================

Re-dispatched requests keep their original ``dispatch_step``, so the
per-event RNG — and therefore the prediction bytes — are unchanged: a run
with injected worker kills finishes **bit-identical** to a fault-free run,
with the recoveries visible only in :class:`ServiceMetrics`
(``n_worker_restarts``, ``n_redispatch``, ``n_fault_oracle``,
``n_slots_reclaimed``, ``n_batch_timeouts``, ``recovery_s``).
``fault_mode="raise"`` disables all of this and surfaces the first fault
as an exception (debugging the workers themselves).  Faults are scripted
deterministically via :class:`FaultPlan` / ``REPRO_SERVE_FAULTS`` — see
:mod:`repro.serve.faults`, ``tests/serve/test_faults.py``, and
``benchmarks/bench_serve_faults.py``.

Coupled multi-rank runs: one server, many clients
-------------------------------------------------

In the paper's production topology every *main* rank submits its own SN
regions to the shared pool (Fig. 1); here the
:class:`~repro.core.runner.coupled.CoupledRunner` gives each simulated
rank its own :class:`~repro.core.pool.PoolManager` client of **one**
``SurrogateServer``.  Two server features exist for exactly that shape:

* ``submit(..., client=r)`` tags a request with its owner rank, and
  ``collect(step, client=r)`` / ``collect_all(client=r)`` deliver only
  that client's due predictions — while still *waiting* globally, so
  batches mixing several ranks' events flush exactly as they would for a
  single caller.  Event ids, batch composition and per-event seeds are
  assigned in submission order, which the coupled runner makes the global
  (= single-rank) dispatch order;
* a shared :class:`~repro.core.pool.PoolOccupancy` calendar arbitrates
  pool-node bookings across clients, so two ranks can never double-book a
  pool rank and the booking sequence is identical to a single-rank run.

The result is the contract ``tests/core/test_coupled.py`` enforces: an
``n_ranks > 1`` coupled run is byte-identical to the single-rank one, on
every transport.  ``benchmarks/bench_coupled_scaling.py`` measures what
the shared service costs and hides at scale.
"""

from repro.serve.batch import BatchScheduler
from repro.serve.faults import Fault, FaultInjector, FaultPlan, InjectedWorkerError
from repro.serve.metrics import ServiceMetrics
from repro.serve.policies import FaultMode, OverflowPolicy
from repro.serve.server import (
    SupervisionConfig,
    SurrogateServer,
    SurrogateSpec,
    WorkerLost,
    predict_batch_buffers,
)
from repro.serve.shm import SharedMemoryRing
from repro.serve.wire import (
    ServeRequest,
    ServeResponse,
    WireFormatError,
    event_rng,
    request_nfloats,
    response_nfloats,
)

__all__ = [
    "BatchScheduler",
    "Fault",
    "FaultInjector",
    "FaultMode",
    "FaultPlan",
    "InjectedWorkerError",
    "OverflowPolicy",
    "ServeRequest",
    "ServeResponse",
    "ServiceMetrics",
    "SharedMemoryRing",
    "SupervisionConfig",
    "SurrogateServer",
    "SurrogateSpec",
    "WireFormatError",
    "WorkerLost",
    "event_rng",
    "predict_batch_buffers",
    "request_nfloats",
    "response_nfloats",
]
