"""``repro.serve`` — asynchronous, batched surrogate-inference service.

The paper's headline performance claim (Sec. 3.1–3.2, Figs. 6–7) is that
SN surrogate inference runs on dedicated *pool* ranks, fully overlapped
with the main-node integration, so the DL time never touches the critical
path.  This package realizes that overlap in-process-tree form:

* :class:`SurrogateServer` — owns worker processes (or a deterministic
  in-process ``sync`` transport), a :class:`BatchScheduler` that coalesces
  in-flight SN regions into padded voxel batches with deadline-aware
  flushing, and a :class:`ServiceMetrics` ledger (queue depth, batch
  occupancy, p50/p95 latency in steps, worker utilization, exposed wait).
* :mod:`repro.serve.wire` — the packed-``FIELDS`` wire format every region
  and prediction crosses the transport in (documented there, field by
  field), whose exact byte counts the :class:`~repro.fdps.comm.SimComm`
  ledger charges.
* :class:`OverflowPolicy` — explicit backpressure (queue / block / spill /
  oracle) replacing the old silent overflow counter; no SN event is ever
  dropped without at least an oracle-fallback prediction.

:class:`repro.core.pool.PoolManager` is a thin client over this service;
``examples/serve_inference.py`` drives a standalone server,
``examples/serve_trained_unet.py`` serves a trained exported U-Net, and
``benchmarks/bench_serve_throughput.py`` / ``bench_shm_transport.py``
measure regions/s, overlap efficiency, and cross-transport parity.

Choosing a transport
--------------------

All three produce bit-identical predictions (per-event seeded Gibbs); they
differ only in *where* inference runs and *how* the payload bytes move:

========== ===================== ============================== =====================
transport  where inference runs  payload copy semantics         when to use
========== ===================== ============================== =====================
``sync``   caller's thread, at   none — buffers stay in          tests, debugging,
           flush time            process                         deterministic refs;
                                                                 inference is fully
                                                                 exposed on the main
                                                                 path
``process`` ``n_workers`` OS     pickled through a queue pipe,   overlap on small
           processes             twice per direction (request    payloads / toy
                                 out, response back)             grids; no shared
                                                                 memory available
``shm``    ``n_workers`` OS      zero-copy: one memmove into a   production regions
           processes             shared ring slot, worker        (the paper's 64^3
                                 decodes from and overwrites     serving path) —
                                 the slot in place; queues       pipe traffic is
                                 carry only slot indices         O(events), not
                                                                 O(bytes)
========== ===================== ============================== =====================

The ``SimComm`` ``pool_p2p`` ledger always charges the wire buffer's exact
``nbytes``, so the measured communication volume is transport-independent.
"""

from repro.serve.batch import BatchScheduler
from repro.serve.metrics import ServiceMetrics
from repro.serve.policies import OverflowPolicy
from repro.serve.server import SurrogateServer, SurrogateSpec, predict_batch_buffers
from repro.serve.shm import SharedMemoryRing
from repro.serve.wire import (
    ServeRequest,
    ServeResponse,
    event_rng,
    request_nfloats,
    response_nfloats,
)

__all__ = [
    "BatchScheduler",
    "OverflowPolicy",
    "ServeRequest",
    "ServeResponse",
    "ServiceMetrics",
    "SharedMemoryRing",
    "SurrogateServer",
    "SurrogateSpec",
    "event_rng",
    "predict_batch_buffers",
    "request_nfloats",
    "response_nfloats",
]
