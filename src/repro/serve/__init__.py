"""``repro.serve`` — asynchronous, batched surrogate-inference service.

The paper's headline performance claim (Sec. 3.1–3.2, Figs. 6–7) is that
SN surrogate inference runs on dedicated *pool* ranks, fully overlapped
with the main-node integration, so the DL time never touches the critical
path.  This package realizes that overlap in-process-tree form:

* :class:`SurrogateServer` — owns worker processes (or a deterministic
  in-process ``sync`` transport), a :class:`BatchScheduler` that coalesces
  in-flight SN regions into padded voxel batches with deadline-aware
  flushing, and a :class:`ServiceMetrics` ledger (queue depth, batch
  occupancy, p50/p95 latency in steps, worker utilization, exposed wait).
* :mod:`repro.serve.wire` — the packed-``FIELDS`` wire format every region
  and prediction crosses the transport in (documented there, field by
  field), whose exact byte counts the :class:`~repro.fdps.comm.SimComm`
  ledger charges.
* :class:`OverflowPolicy` — explicit backpressure (queue / block / spill /
  oracle) replacing the old silent overflow counter; no SN event is ever
  dropped without at least an oracle-fallback prediction.

:class:`repro.core.pool.PoolManager` is a thin client over this service;
``examples/serve_inference.py`` drives a standalone server, and
``benchmarks/bench_serve_throughput.py`` measures regions/s and overlap
efficiency against pool-worker count.
"""

from repro.serve.batch import BatchScheduler
from repro.serve.metrics import ServiceMetrics
from repro.serve.policies import OverflowPolicy
from repro.serve.server import SurrogateServer, SurrogateSpec, predict_batch_buffers
from repro.serve.wire import ServeRequest, ServeResponse, event_rng

__all__ = [
    "BatchScheduler",
    "OverflowPolicy",
    "ServeRequest",
    "ServeResponse",
    "ServiceMetrics",
    "SurrogateServer",
    "SurrogateSpec",
    "event_rng",
    "predict_batch_buffers",
]
