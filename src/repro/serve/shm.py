"""Zero-copy shared-memory transport: a ring of packed-``FIELDS`` slots.

The ``process`` transport ships every request and response through a
``multiprocessing.Queue`` — each crossing pickles the float64 payload and
copies it through a pipe twice (feeder thread write + reader drain).  At
the paper's production grid the per-event payload is hundreds of kilobytes
and, as the precursor works found, that data movement (not the forward
pass) is what dominates pool-node cost.  This module removes it:

* :class:`SharedMemoryRing` — one ``multiprocessing.shared_memory`` block
  cut into fixed-size float64 slots, mapped as an ``(n_slots, slot_floats)``
  array in the main process and in every worker.
* Requests are encoded straight into a free slot (one memmove of the
  already-wire-framed buffer); workers decode them *from the slot*, run the
  batched predictor, and overwrite the slot with the encoded prediction in
  place — a response never outgrows the request that carried the same
  particles (smaller header, identical payload shape).
* Only tiny control tuples ``(batch_id, [(slot, nfloats), ...])`` cross the
  queues, so pipe traffic is O(events), not O(bytes).

The slots reuse the exact :mod:`repro.serve.wire` framing, so the byte
figures charged to the :class:`~repro.fdps.comm.SimComm` ``pool_p2p``
ledger — always the wire buffer's ``nbytes`` — are identical across the
``sync``, ``process`` and ``shm`` transports.

Backpressure: a request that does not fit a slot (or arrives while every
slot is in flight) falls back to the pickled-queue path of the ``process``
transport for that one event, counted in
:attr:`~repro.serve.metrics.ServiceMetrics.n_shm_fallback` — correctness
never depends on the ring being big enough.

Lease safety under faults
-------------------------

A slot leased to an in-flight batch has three ways home, and every one of
them must be crash-safe (the ``lease-pairing`` lint rule checks the
acquire/release pairing statically):

* **done row** — the normal path: :meth:`_ShmTransport._convert_payload`
  frees the batch's leases on success *and* failure edges (``finally``).
* **dead worker** — the supervisor attributes claimed batches to the dead
  process; its leases are reclaimed immediately (a dead worker cannot
  touch the ring again), counted in ``metrics.n_slots_reclaimed``.
* **expired batch** — a *timed-out* batch's worker may be hung, not dead,
  and may still read/write the slots.  The leases are parked in a zombie
  registry instead of freed (freeing would race the hung worker's
  in-place response write into a re-leased slot); they return to the free
  stack only on proof the holder is done with them — its late done row,
  a *newer* claim row from the same (strictly serial) worker, its death,
  or transport close after every worker has exited.
"""

from __future__ import annotations

import queue as queue_mod
import time
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Union

import numpy as np

from repro.serve.faults import FaultInjector, FaultPlan
from repro.serve.metrics import ServiceMetrics
from repro.serve.server import (
    HEARTBEAT_S,
    Reply,
    SupervisionConfig,
    _WorkerTransportBase,
)
from repro.serve.wire import ServeRequest, ServeResponse, WireFormatError

if TYPE_CHECKING:  # annotation-only imports
    from repro.serve.server import SurrogateSpec
    from repro.surrogate.model import SNSurrogate

#: A control entry: ``(SLOT, index, nfloats)`` for ring-resident payloads,
#: ``(INLINE, buffer)`` for queue-pickled fallbacks.
Entry = Union[tuple[int, int, int], tuple[int, np.ndarray]]

#: Control-entry tags: payload lives in a ring slot / rides the queue.
SLOT = 0
INLINE = 1


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking tracker ownership.

    Python 3.13+ has ``track=False`` for exactly this.  Before 3.13 an
    attach re-registers the name with the resource tracker; within one
    multiprocessing process tree the tracker is shared (its fd rides fork
    and the spawn preparation data) and its cache is a set, so the extra
    registration is an idempotent no-op that the owner's ``unlink``
    clears — explicitly unregistering here would instead make that
    ``unlink`` double-remove and spam KeyError from the tracker.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: shared tracker, registration harmless
        return shared_memory.SharedMemory(name=name)


class SharedMemoryRing:
    """A shared block of ``n_slots`` fixed-size float64 slots.

    The creating (main) process owns the segment and unlinks it on
    :meth:`close`; workers attach by ``name`` and only unmap.  Slot
    allocation policy lives with the caller — the ring itself is just the
    mapped memory.
    """

    def __init__(self, n_slots: int, slot_floats: int, name: str | None = None) -> None:
        if n_slots < 1 or slot_floats < 1:
            raise ValueError("ring needs at least one slot of at least one float")
        self.n_slots = int(n_slots)
        self.slot_floats = int(slot_floats)
        if name is None:
            self._seg = shared_memory.SharedMemory(
                create=True, size=self.n_slots * self.slot_floats * 8
            )
            self._owner = True
        else:
            self._seg = _attach(name)
            self._owner = False
        self.name = self._seg.name
        self._arr: np.ndarray | None = np.ndarray(
            (self.n_slots, self.slot_floats), dtype=np.float64, buffer=self._seg.buf
        )

    @property
    def nbytes(self) -> int:
        return self.n_slots * self.slot_floats * 8

    def slot(self, index: int, nfloats: int | None = None) -> np.ndarray:
        """A live view of slot ``index`` (optionally length-trimmed).

        Control tuples cross process boundaries, so both coordinates are
        validated before any memory is touched: an out-of-range index or a
        length exceeding the slot capacity raises
        :class:`~repro.serve.wire.WireFormatError` — a corrupt control
        entry is a recoverable transport fault, not an IndexError deep in
        numpy.
        """
        if self._arr is None:
            raise ValueError("ring is closed")
        if not 0 <= int(index) < self.n_slots:
            raise WireFormatError(
                f"shm slot index {index} outside ring of {self.n_slots} slots"
            )
        row = self._arr[int(index)]
        if nfloats is None:
            return row
        if not 0 < int(nfloats) <= self.slot_floats:
            raise WireFormatError(
                f"shm slot payload length {nfloats} not in (0, {self.slot_floats}]"
            )
        return row[: int(nfloats)]

    def write(self, index: int, buf: np.ndarray) -> int:
        """Memmove an encoded wire buffer into a slot; returns floats used."""
        if self._arr is None:
            raise ValueError("ring is closed")
        n = buf.size
        self._arr[index, :n] = buf
        return n

    def close(self) -> None:
        if self._arr is None:
            return
        self._arr = None
        self._seg.close()
        if self._owner:
            try:
                self._seg.unlink()
            except FileNotFoundError:
                pass
    # No __del__: a fork-started worker inherits the owner's ring object,
    # and a finalizer there would unlink the segment under the main process
    # when the worker exits.  Lifetime is explicit — the transport (owner)
    # and the worker main (attachments) both close() in their shutdown
    # paths, and the resource tracker covers hard crashes of the creator.


def serve_batch_in_place(
    surrogate: SNSurrogate,
    ring: SharedMemoryRing,
    entries: list[Entry],
    pad_to: int | None = None,
) -> list[Entry]:
    """Worker inner loop: decode from slots, predict, overwrite in place.

    ``entries`` come from :meth:`_ShmTransport.dispatch`: ``(SLOT, index,
    nfloats)`` for ring-resident requests, ``(INLINE, buffer)`` for
    fallback requests that rode the queue.  Returns response entries of the
    same two shapes.  The prediction path is byte-identical to
    :func:`repro.serve.server.predict_batch_buffers` — same decode, same
    batched predictor call, same per-event seeded RNG — so the three
    transports stay bit-identical.
    """
    requests: list[ServeRequest] = []
    out_slots: list[int | None] = []
    for entry in entries:
        if entry[0] == SLOT:
            _, index, nfloats = entry
            requests.append(ServeRequest.from_buffer(ring.slot(index, nfloats)))
            out_slots.append(index)
        else:
            requests.append(ServeRequest.from_buffer(entry[1]))
            out_slots.append(None)
    predicted = surrogate.predict_batch(
        [r.region for r in requests],
        [r.center for r in requests],
        [r.rng() for r in requests],
        pad_to=pad_to,
    )
    out = []
    for request, index, particles in zip(requests, out_slots, predicted, strict=True):
        response = ServeResponse(
            event_id=request.event_id,
            return_step=request.return_step,
            particles=particles,
        )
        if index is None:
            out.append((INLINE, response.to_buffer()))
        else:
            used = response.encode_into(ring.slot(index))
            out.append((SLOT, index, used))
    return out


def _shm_worker_main(
    worker_id: int,
    spec: SurrogateSpec | SNSurrogate,
    ring_name: str,
    n_slots: int,
    slot_floats: int,
    req_q: Any,
    res_q: Any,
    pad_to: int | None,
    fault_plan: FaultPlan | None = None,
) -> None:
    """Pool-node worker: attach the ring, build the surrogate, serve.

    Speaks the same tagged-row protocol as
    :func:`repro.serve.server._worker_main` (heartbeat / claim / done), and
    honours the same :class:`~repro.serve.faults.FaultPlan` script —
    ``corrupt`` tears the wire magic of the first response *in its ring
    slot* when the response is slot-resident.
    """
    from repro.serve.server import _resolve_surrogate  # import cycle at top level

    injector = FaultInjector(fault_plan or FaultPlan(), worker_id)
    ring = SharedMemoryRing(n_slots, slot_floats, name=ring_name)
    try:
        surrogate = _resolve_surrogate(spec)
        while True:
            try:
                item = req_q.get(timeout=HEARTBEAT_S)
            except queue_mod.Empty:
                res_q.put(("hb", worker_id))
                continue
            if item is None:
                break
            batch_id, entries = item
            res_q.put(("claim", worker_id, batch_id))
            injector.on_claim()
            t0 = time.perf_counter()
            try:
                injector.on_predict()
                responses = serve_batch_in_place(surrogate, ring, entries, pad_to)
            except Exception as exc:  # ship the failure instead of dying silently
                res_q.put(("done", worker_id, batch_id, exc, 0.0))
                continue
            if injector.corrupts_response() and responses:
                entry = responses[0]
                if entry[0] == SLOT:
                    ring.slot(entry[1])[0] = -1.0       # tear the wire magic
                else:
                    entry[1][0] = -1.0
            if injector.drops_response():
                continue
            res_q.put(
                ("done", worker_id, batch_id, responses, time.perf_counter() - t0)
            )
    finally:
        ring.close()


class _ShmTransport(_WorkerTransportBase):
    """N workers reading/writing ring slots; queues carry only slot indices.

    Extends :class:`~repro.serve.server._WorkerTransportBase` (queues,
    supervisor, tagged-row pump) with the slot-lease life cycle — see the
    module docstring's fault section for the three ways a lease comes home.
    """

    _worker_kind = "shm-worker"

    def __init__(
        self,
        spec: SurrogateSpec | SNSurrogate,
        n_workers: int,
        ctx_method: str | None = None,
        pad_to: int | None = None,
        n_slots: int = 32,
        slot_floats: int = 0,
        metrics: ServiceMetrics | None = None,
        fault_plan: FaultPlan | None = None,
        supervision: SupervisionConfig | None = None,
        tracer: Any = None,
    ) -> None:
        if slot_floats < 1:
            raise ValueError("shm transport needs a positive slot size")
        # The ring and lease books exist before super().__init__ spawns the
        # workers: _worker_args reads the ring name.
        self._ring = SharedMemoryRing(n_slots, slot_floats)
        self._free = list(range(n_slots - 1, -1, -1))   # stack of free slots
        self._batch_slots: dict[int, list[int]] = {}    # in-flight slot leases
        #: Leases of expired (timed-out) batches, parked until their holder
        #: is provably done: batch_id -> (claiming worker or None, slots).
        self._zombies: dict[int, tuple[int | None, list[int]]] = {}
        super().__init__(
            spec, n_workers, ctx_method=ctx_method, pad_to=pad_to,
            metrics=metrics, fault_plan=fault_plan, supervision=supervision,
            tracer=tracer,
        )

    def _worker_target(self) -> Any:
        return _shm_worker_main

    def _worker_args(self, worker_id: int) -> tuple:
        return (
            worker_id, self._spec, self._ring.name, self._ring.n_slots,
            self._ring.slot_floats, self._req_q, self._res_q, self._pad_to,
            self._fault_plan,
        )

    @property
    def n_free_slots(self) -> int:
        return len(self._free)

    # ------------------------------------------------------------ dispatch
    def _encode_batch(self, batch_id: int, buffers: list[np.ndarray]) -> list[Entry]:
        tt0 = self._tracer.now()
        entries: list[Entry] = []
        leased: list[int] = []
        n_fallback = 0
        for buf in buffers:
            if self._free and buf.size <= self._ring.slot_floats:
                index = self._free.pop()
                self._ring.write(index, buf)
                leased.append(index)
                entries.append((SLOT, index, buf.size))
                self._metrics.n_shm_slot += 1
            else:
                # Oversize request or exhausted ring: this one event rides
                # the queue (pickled), like the process transport.
                self._metrics.n_shm_fallback += 1
                n_fallback += 1
                entries.append((INLINE, buf))
        self._batch_slots[batch_id] = leased
        if self._tracer.enabled:
            self._tracer.span_at(
                "serve.shm.encode", tt0, self._tracer.now() - tt0, cat="serve",
                batch=batch_id, slots=len(leased), fallbacks=n_fallback,
            )
        return entries

    # ------------------------------------------------------------- replies
    def _convert_payload(
        self, batch_id: int, payload: Any
    ) -> "list[np.ndarray] | Exception":
        """Memmove slot-resident responses out of the ring; free the leases.

        Runs for normal *and* late (previously expired) done rows — the
        lease lookup falls back to the zombie registry — and releases on
        success and failure edges alike, so a worker exception cannot leak
        slots.
        """
        leased = self._batch_slots.pop(batch_id, None)
        if leased is None:
            leased = self._zombies.pop(batch_id, (None, []))[1]
        try:
            if isinstance(payload, Exception):
                return payload
            buffers: list[np.ndarray] = []
            for entry in payload:
                if entry[0] == SLOT:
                    _, index, nfloats = entry
                    buffers.append(np.array(self._ring.slot(index, nfloats)))
                else:
                    buffers.append(entry[1])
            return buffers
        finally:
            self._free.extend(leased)

    # ------------------------------------------------------ lease recovery
    def expire_batch(self, batch_id: int) -> None:
        """Park a timed-out batch's leases as zombies.

        The holder may be a *hung* worker that will still write its
        in-place response into these slots; returning them to the free
        stack now would hand a worker's output buffer to a new request.
        """
        leased = self._batch_slots.pop(batch_id, [])
        if leased:
            self._zombies[batch_id] = (self._claims.get(batch_id), leased)

    def _on_claim_row(self, worker_id: int, batch_id: int) -> None:
        # Workers are strictly serial: a fresh claim proves this worker is
        # done touching every batch it claimed earlier, so any zombie
        # leases attributed to it are safe to free.  The claim also
        # attributes a previously unclaimed zombie batch to its holder.
        if batch_id in self._zombies:
            self._zombies[batch_id] = (worker_id, self._zombies[batch_id][1])
        stale = [
            b for b, (w, _) in self._zombies.items()
            if w == worker_id and b != batch_id
        ]
        freed: list[int] = []
        try:
            for b in stale:
                freed.extend(self._zombies.pop(b)[1])
        finally:
            self._free.extend(freed)

    def _reclaim_batch(self, batch_id: int) -> None:
        # The claiming worker died: it can never touch the ring again, so
        # the batch's leases return to the free stack immediately.
        freed: list[int] = []
        try:
            freed.extend(self._batch_slots.pop(batch_id, []))
        finally:
            self._free.extend(freed)
            self._metrics.n_slots_reclaimed += len(freed)

    def _on_worker_dead(self, worker_id: int) -> None:
        stale = [b for b, (w, _) in self._zombies.items() if w == worker_id]
        freed: list[int] = []
        try:
            for b in stale:
                freed.extend(self._zombies.pop(b)[1])
        finally:
            self._free.extend(freed)
            self._metrics.n_slots_reclaimed += len(freed)

    def _reclaim_all(self) -> None:
        # No live workers remain (degraded, or close after join): every
        # outstanding lease — in-flight and zombie — is safe to take back.
        freed: list[int] = []
        try:
            for leased in self._batch_slots.values():
                freed.extend(leased)
            self._batch_slots.clear()
            for _w, leased in self._zombies.values():
                freed.extend(leased)
            self._zombies.clear()
        finally:
            self._free.extend(freed)
            self._metrics.n_slots_reclaimed += len(freed)

    def _close_extra(self) -> None:
        self._ring.close()


__all__ = [
    "INLINE",
    "SLOT",
    "Entry",
    "Reply",
    "SharedMemoryRing",
    "serve_batch_in_place",
]
