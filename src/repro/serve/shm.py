"""Zero-copy shared-memory transport: a ring of packed-``FIELDS`` slots.

The ``process`` transport ships every request and response through a
``multiprocessing.Queue`` — each crossing pickles the float64 payload and
copies it through a pipe twice (feeder thread write + reader drain).  At
the paper's production grid the per-event payload is hundreds of kilobytes
and, as the precursor works found, that data movement (not the forward
pass) is what dominates pool-node cost.  This module removes it:

* :class:`SharedMemoryRing` — one ``multiprocessing.shared_memory`` block
  cut into fixed-size float64 slots, mapped as an ``(n_slots, slot_floats)``
  array in the main process and in every worker.
* Requests are encoded straight into a free slot (one memmove of the
  already-wire-framed buffer); workers decode them *from the slot*, run the
  batched predictor, and overwrite the slot with the encoded prediction in
  place — a response never outgrows the request that carried the same
  particles (smaller header, identical payload shape).
* Only tiny control tuples ``(batch_id, [(slot, nfloats), ...])`` cross the
  queues, so pipe traffic is O(events), not O(bytes).

The slots reuse the exact :mod:`repro.serve.wire` framing, so the byte
figures charged to the :class:`~repro.fdps.comm.SimComm` ``pool_p2p``
ledger — always the wire buffer's ``nbytes`` — are identical across the
``sync``, ``process`` and ``shm`` transports.

Backpressure: a request that does not fit a slot (or arrives while every
slot is in flight) falls back to the pickled-queue path of the ``process``
transport for that one event, counted in
:attr:`~repro.serve.metrics.ServiceMetrics.n_shm_fallback` — correctness
never depends on the ring being big enough.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Union

import numpy as np

from repro.serve.wire import ServeRequest, ServeResponse

if TYPE_CHECKING:  # annotation-only: a top-level import would be a cycle
    from repro.serve.metrics import ServiceMetrics
    from repro.serve.server import SurrogateSpec
    from repro.surrogate.model import SNSurrogate

#: A control entry: ``(SLOT, index, nfloats)`` for ring-resident payloads,
#: ``(INLINE, buffer)`` for queue-pickled fallbacks.
Entry = Union[tuple[int, int, int], tuple[int, np.ndarray]]

#: A worker reply after :meth:`_ShmTransport._convert`:
#: ``(batch_id, worker_id, buffers-or-exception, busy_seconds)``.
Reply = tuple[int, int, "list[np.ndarray] | Exception", float]

#: Seconds wait() tolerates before declaring the workers dead (mirrors
#: :data:`repro.serve.server.WORKER_TIMEOUT_S`; kept local to avoid an
#: import cycle).
_WORKER_TIMEOUT_S = 120.0

#: Control-entry tags: payload lives in a ring slot / rides the queue.
SLOT = 0
INLINE = 1


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking tracker ownership.

    Python 3.13+ has ``track=False`` for exactly this.  Before 3.13 an
    attach re-registers the name with the resource tracker; within one
    multiprocessing process tree the tracker is shared (its fd rides fork
    and the spawn preparation data) and its cache is a set, so the extra
    registration is an idempotent no-op that the owner's ``unlink``
    clears — explicitly unregistering here would instead make that
    ``unlink`` double-remove and spam KeyError from the tracker.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: shared tracker, registration harmless
        return shared_memory.SharedMemory(name=name)


class SharedMemoryRing:
    """A shared block of ``n_slots`` fixed-size float64 slots.

    The creating (main) process owns the segment and unlinks it on
    :meth:`close`; workers attach by ``name`` and only unmap.  Slot
    allocation policy lives with the caller — the ring itself is just the
    mapped memory.
    """

    def __init__(self, n_slots: int, slot_floats: int, name: str | None = None) -> None:
        if n_slots < 1 or slot_floats < 1:
            raise ValueError("ring needs at least one slot of at least one float")
        self.n_slots = int(n_slots)
        self.slot_floats = int(slot_floats)
        if name is None:
            self._seg = shared_memory.SharedMemory(
                create=True, size=self.n_slots * self.slot_floats * 8
            )
            self._owner = True
        else:
            self._seg = _attach(name)
            self._owner = False
        self.name = self._seg.name
        self._arr: np.ndarray | None = np.ndarray(
            (self.n_slots, self.slot_floats), dtype=np.float64, buffer=self._seg.buf
        )

    @property
    def nbytes(self) -> int:
        return self.n_slots * self.slot_floats * 8

    def slot(self, index: int, nfloats: int | None = None) -> np.ndarray:
        """A live view of slot ``index`` (optionally length-trimmed)."""
        if self._arr is None:
            raise ValueError("ring is closed")
        row = self._arr[index]
        return row if nfloats is None else row[:nfloats]

    def write(self, index: int, buf: np.ndarray) -> int:
        """Memmove an encoded wire buffer into a slot; returns floats used."""
        if self._arr is None:
            raise ValueError("ring is closed")
        n = buf.size
        self._arr[index, :n] = buf
        return n

    def close(self) -> None:
        if self._arr is None:
            return
        self._arr = None
        self._seg.close()
        if self._owner:
            try:
                self._seg.unlink()
            except FileNotFoundError:
                pass
    # No __del__: a fork-started worker inherits the owner's ring object,
    # and a finalizer there would unlink the segment under the main process
    # when the worker exits.  Lifetime is explicit — the transport (owner)
    # and the worker main (attachments) both close() in their shutdown
    # paths, and the resource tracker covers hard crashes of the creator.


def serve_batch_in_place(
    surrogate: SNSurrogate,
    ring: SharedMemoryRing,
    entries: list[Entry],
    pad_to: int | None = None,
) -> list[Entry]:
    """Worker inner loop: decode from slots, predict, overwrite in place.

    ``entries`` come from :meth:`_ShmTransport.dispatch`: ``(SLOT, index,
    nfloats)`` for ring-resident requests, ``(INLINE, buffer)`` for
    fallback requests that rode the queue.  Returns response entries of the
    same two shapes.  The prediction path is byte-identical to
    :func:`repro.serve.server.predict_batch_buffers` — same decode, same
    batched predictor call, same per-event seeded RNG — so the three
    transports stay bit-identical.
    """
    requests: list[ServeRequest] = []
    out_slots: list[int | None] = []
    for entry in entries:
        if entry[0] == SLOT:
            _, index, nfloats = entry
            requests.append(ServeRequest.from_buffer(ring.slot(index, nfloats)))
            out_slots.append(index)
        else:
            requests.append(ServeRequest.from_buffer(entry[1]))
            out_slots.append(None)
    predicted = surrogate.predict_batch(
        [r.region for r in requests],
        [r.center for r in requests],
        [r.rng() for r in requests],
        pad_to=pad_to,
    )
    out = []
    for request, index, particles in zip(requests, out_slots, predicted, strict=True):
        response = ServeResponse(
            event_id=request.event_id,
            return_step=request.return_step,
            particles=particles,
        )
        if index is None:
            out.append((INLINE, response.to_buffer()))
        else:
            used = response.encode_into(ring.slot(index))
            out.append((SLOT, index, used))
    return out


def _shm_worker_main(
    worker_id: int,
    spec: SurrogateSpec | SNSurrogate,
    ring_name: str,
    n_slots: int,
    slot_floats: int,
    req_q: Any,
    res_q: Any,
    pad_to: int | None,
) -> None:
    """Pool-node worker: attach the ring, build the surrogate, serve."""
    from repro.serve.server import _resolve_surrogate  # import cycle at top level

    ring = SharedMemoryRing(n_slots, slot_floats, name=ring_name)
    try:
        surrogate = _resolve_surrogate(spec)
        while True:
            item = req_q.get()
            if item is None:
                break
            batch_id, entries = item
            t0 = time.perf_counter()
            try:
                responses = serve_batch_in_place(surrogate, ring, entries, pad_to)
            except Exception as exc:  # ship the failure instead of dying silently
                res_q.put((batch_id, worker_id, exc, 0.0))
                continue
            res_q.put((batch_id, worker_id, responses, time.perf_counter() - t0))
    finally:
        ring.close()


class _ShmTransport:
    """N workers reading/writing ring slots; queues carry only slot indices.

    Implements the same transport protocol as ``_ProcessTransport``
    (``dispatch`` / ``poll`` / ``wait`` / ``close`` returning ``(batch_id,
    worker_id, [response buffers], busy_s)`` items), so
    :class:`~repro.serve.server.SurrogateServer` cannot tell them apart —
    only the bytes move differently.
    """

    def __init__(
        self,
        spec: SurrogateSpec | SNSurrogate,
        n_workers: int,
        ctx_method: str | None = None,
        pad_to: int | None = None,
        n_slots: int = 32,
        slot_floats: int = 0,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("shm transport needs at least one worker")
        if slot_floats < 1:
            raise ValueError("shm transport needs a positive slot size")
        methods = mp.get_all_start_methods()
        method = ctx_method or ("fork" if "fork" in methods else "spawn")
        ctx = mp.get_context(method)
        self._ring = SharedMemoryRing(n_slots, slot_floats)
        self._free = list(range(n_slots - 1, -1, -1))   # stack of free slots
        self._batch_slots: dict[int, list[int]] = {}    # in-flight slot leases
        self._metrics = metrics
        self._req_q = ctx.Queue()
        self._res_q = ctx.Queue()
        self._workers = [
            ctx.Process(
                target=_shm_worker_main,
                args=(
                    i, spec, self._ring.name, n_slots, slot_floats,
                    self._req_q, self._res_q, pad_to,
                ),
                daemon=True,
                name=f"repro-serve-shm-worker-{i}",
            )
            for i in range(n_workers)
        ]
        for w in self._workers:
            w.start()

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def n_free_slots(self) -> int:
        return len(self._free)

    def dispatch(self, batch_id: int, buffers: list[np.ndarray]) -> None:
        entries: list[Entry] = []
        leased: list[int] = []
        for buf in buffers:
            if self._free and buf.size <= self._ring.slot_floats:
                index = self._free.pop()
                self._ring.write(index, buf)
                leased.append(index)
                entries.append((SLOT, index, buf.size))
                if self._metrics is not None:
                    self._metrics.n_shm_slot += 1
            else:
                # Oversize request or exhausted ring: this one event rides
                # the queue (pickled), like the process transport.
                if self._metrics is not None:
                    self._metrics.n_shm_fallback += 1
                entries.append((INLINE, buf))
        self._batch_slots[batch_id] = leased
        self._req_q.put((batch_id, entries))

    def _convert(self, item: tuple[int, int, Any, float]) -> Reply:
        """Turn a worker reply into the server's (id, wid, buffers, s) shape.

        Slot-resident responses are memmoved out of the ring (the response
        object outlives the slot's next lease) and every slot the batch
        leased is returned to the free stack — also on the failure path, so
        a worker exception cannot leak slots.
        """
        batch_id, worker_id, payload, busy_s = item
        leased = self._batch_slots.pop(batch_id, [])
        try:
            if isinstance(payload, Exception):
                return (batch_id, worker_id, payload, busy_s)
            buffers: list[np.ndarray] = []
            for entry in payload:
                if entry[0] == SLOT:
                    _, index, nfloats = entry
                    buffers.append(np.array(self._ring.slot(index, nfloats)))
                else:
                    buffers.append(entry[1])
            return (batch_id, worker_id, buffers, busy_s)
        finally:
            self._free.extend(leased)

    def poll(self) -> list[Reply]:
        out: list[Reply] = []
        while True:
            try:
                out.append(self._convert(self._res_q.get_nowait()))
            except queue_mod.Empty:
                return out

    def wait(self, timeout: float = _WORKER_TIMEOUT_S) -> Reply:
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self._convert(self._res_q.get(timeout=1.0))
            except queue_mod.Empty:
                if not any(w.is_alive() for w in self._workers):
                    raise RuntimeError("all serve workers died") from None
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"no serve response within {timeout:.0f}s"
                    ) from None

    def close(self) -> None:
        for _ in self._workers:
            self._req_q.put(None)
        for w in self._workers:
            w.join(timeout=10.0)
        for w in self._workers:
            if w.is_alive():
                w.terminate()
                w.join(timeout=5.0)
        self._req_q.close()
        self._res_q.close()
        self._ring.close()
