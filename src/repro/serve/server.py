"""`SurrogateServer` — the asynchronous, batched SN-inference service.

The server owns a :class:`BatchScheduler` and a transport:

* ``sync`` — predictions execute in-process at flush time on the caller's
  thread.  Deterministic, dependency-free, and exactly the critical-path
  shape of the old lazy ``PoolManager`` — the tests' reference path.
* ``process`` — ``n_workers`` OS processes, each of which builds its own
  surrogate (from a picklable :class:`SurrogateSpec` or a pickled
  :class:`SNSurrogate`) and serves batches from a shared request queue.
  Inference then genuinely overlaps the main loop: the only wall-clock the
  main rank ever pays is the submit/collect bookkeeping, plus an *exposed
  wait* (recorded in :class:`ServiceMetrics`) when a prediction misses its
  return step.
* ``shm`` — the same worker pool, but every request and prediction lives
  in a :class:`repro.serve.shm.SharedMemoryRing` slot; the queues carry
  only slot indices, so nothing is pickled and no payload bytes cross a
  pipe (see :mod:`repro.serve.shm`).

Because the Gibbs re-sampling is seeded per event
(:func:`repro.serve.wire.event_rng`), all transports — and any batch
composition or worker count — produce bit-identical predictions.

Fault tolerance
---------------

The worker transports survive worker faults instead of surfacing them as
crashes of the main rank (``fault_mode="recover"``, the default):

* **In-flight request registry** — the server keeps every dispatched
  batch's request buffers until the batch's responses are absorbed, so a
  lost batch can be *re-dispatched* byte-identically (the requests keep
  their original ``dispatch_step``, hence the same per-event RNG) or
  resolved *inline* on the main rank by the same surrogate recipe the
  workers build.  Duplicate replies from a worker that was merely slow are
  idempotent: a response for an event already completed is dropped.
* **Worker supervision** — :class:`_WorkerSupervisor` detects dead workers
  (``is_alive`` plus tagged heartbeat/claim rows on the result queue),
  restarts them from the picklable recipe with capped exponential backoff,
  and attributes each in-flight batch to the worker that claimed it so a
  death converts exactly the claimed batches into :class:`WorkerLost`
  replies.  After ``SupervisionConfig.max_consecutive_failures`` failures
  without a successful batch a worker slot is abandoned; when every slot
  is abandoned the service *degrades*: all outstanding and future work
  runs inline on the main rank, bit-identically, and the run finishes.
* **Per-batch timeouts** — a batch with no response within
  ``SupervisionConfig.batch_timeout_s`` (a *hung* worker, or a dropped
  reply) is expired at the transport and recovered like a death.

Every recovery is counted, never swallowed (``n_worker_restarts``,
``n_redispatch``, ``n_fault_oracle``, ``n_slots_reclaimed``,
``n_batch_timeouts``, ``recovery_s`` in :class:`ServiceMetrics`).
``fault_mode="raise"`` restores the strict pre-fault-tolerance behaviour:
the first worker fault raises on the main rank.  Failures are injectable
on purpose through a :class:`~repro.serve.faults.FaultPlan` (or the
``REPRO_SERVE_FAULTS`` environment variable) — see
:mod:`repro.serve.faults` and ``tests/serve/test_faults.py``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from dataclasses import dataclass

import numpy as np

from repro.fdps.particles import ParticleSet
from repro.serve.batch import BatchScheduler
from repro.serve.faults import FaultInjector, FaultPlan
from repro.obs.trace import NULL_TRACER
from repro.serve.metrics import ServiceMetrics
from repro.serve.policies import FaultMode
from repro.serve.wire import ServeRequest, ServeResponse, WireFormatError
from repro.surrogate.model import SedovBlastOracle, SNSurrogate
from repro.util.constants import SN_ENERGY

#: Seconds of *zero progress* (no replies, no recoveries) the server
#: tolerates before giving up with TimeoutError — a backstop against
#: protocol bugs, not the per-batch deadline (that is
#: ``SupervisionConfig.batch_timeout_s``).
WORKER_TIMEOUT_S = 120.0

#: Seconds an idle worker waits for a request before posting a heartbeat
#: row — the supervisor's liveness signal between batches.
HEARTBEAT_S = 5.0

#: Longest single blocking read on the result queue; bounds how stale the
#: supervisor's death/timeout checks can get while the main rank waits.
_WAIT_SLICE_S = 0.25

#: A transport reply: ``(batch_id, worker_id, payload, busy_seconds)``
#: where the payload is the response buffers, a worker-side exception, or
#: a :class:`WorkerLost` marker for a batch lost to a dead worker.
Reply = tuple[int, int, "list[np.ndarray] | Exception", float]


class WorkerLost(RuntimeError):
    """Marker payload: the worker holding this batch died before replying.

    Travels *in band* as a reply payload so the server's absorb loop sees
    worker deaths in dispatch order relative to real replies; it is never
    raised by the transports themselves.
    """


@dataclass(frozen=True)
class SupervisionConfig:
    """Tunables for worker supervision and in-flight recovery."""

    #: Worker deaths without an intervening served batch before the
    #: supervisor stops restarting that worker slot.
    max_consecutive_failures: int = 3
    #: Restart backoff: ``base * 2**(failures-1)`` seconds, capped.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: Seconds a dispatched batch may go unanswered before it is declared
    #: lost (hung worker / dropped reply) and recovered.
    batch_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_consecutive_failures < 1:
            raise ValueError("max_consecutive_failures must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("need 0 <= backoff_base_s <= backoff_cap_s")
        if self.batch_timeout_s <= 0:
            raise ValueError("batch_timeout_s must be positive")


@dataclass(frozen=True)
class SurrogateSpec:
    """A picklable recipe for building the surrogate inside a worker.

    ``kind="oracle"`` builds the analytic Sedov oracle; ``kind="model"``
    loads an exported U-Net through :class:`repro.ml.serialize
    .InferenceEngine` — the two pool-node deployments of Sec. 3.3.
    """

    kind: str = "oracle"
    n_grid: int = 16
    side: float = 60.0
    gibbs_sweeps: int = 8
    # oracle parameters
    t_after: float = 0.1
    energy: float = SN_ENERGY
    t_floor: float = 10.0
    # model parameters
    model_path: str | None = None
    #: Non-default field-transform parameters as (rho_floor, t_floor,
    #: v_floor, v_scale); None means the default FieldTransform.  Captured
    #: so a worker-built surrogate encodes/decodes exactly like the
    #: in-process one.
    transform: tuple | None = None

    def _transform_kwargs(self) -> dict:
        if self.transform is None:
            return {}
        from repro.surrogate.transforms import FieldTransform

        return {"transform": FieldTransform(*self.transform)}

    def build(self) -> SNSurrogate:
        if self.kind == "oracle":
            return SNSurrogate(
                oracle=SedovBlastOracle(
                    energy=self.energy, t_after=self.t_after, t_floor=self.t_floor
                ),
                n_grid=self.n_grid,
                side=self.side,
                gibbs_sweeps=self.gibbs_sweeps,
                **self._transform_kwargs(),
            )
        if self.kind == "model":
            from repro.ml.serialize import InferenceEngine

            if self.model_path is None:
                raise ValueError("kind='model' requires model_path")
            return SNSurrogate(
                predictor=InferenceEngine.load(self.model_path),
                n_grid=self.n_grid,
                side=self.side,
                gibbs_sweeps=self.gibbs_sweeps,
                **self._transform_kwargs(),
            )
        raise ValueError(f"unknown surrogate spec kind {self.kind!r}")

    @classmethod
    def from_surrogate(cls, surr: SNSurrogate) -> "SurrogateSpec":
        """Best-effort spec for an existing surrogate.

        Two deployments are derivable: the analytic Sedov oracle, and a
        trained exported model whose predictor remembers where it was
        loaded from (:class:`repro.ml.serialize.InferenceEngine` records
        ``model_path``) — workers then reload the export themselves instead
        of inheriting a pickled copy of every weight tensor.
        """
        from dataclasses import astuple

        from repro.surrogate.transforms import FieldTransform

        if type(surr.transform) is not FieldTransform:
            raise ValueError(
                "no derivable spec: the surrogate uses a custom transform "
                "object the spec cannot capture; let the server pickle the "
                "surrogate itself"
            )
        transform = (
            None if surr.transform == FieldTransform()
            else astuple(surr.transform)
        )
        if isinstance(surr.oracle, SedovBlastOracle):
            return cls(
                kind="oracle",
                n_grid=surr.n_grid,
                side=surr.side,
                gibbs_sweeps=surr.gibbs_sweeps,
                t_after=surr.oracle.t_after,
                energy=surr.oracle.energy,
                t_floor=surr.oracle.t_floor,
                transform=transform,
            )
        model_path = getattr(surr.predictor, "model_path", None)
        if model_path:
            return cls(
                kind="model",
                model_path=str(model_path),
                n_grid=surr.n_grid,
                side=surr.side,
                gibbs_sweeps=surr.gibbs_sweeps,
                transform=transform,
            )
        raise ValueError(
            "no derivable spec: the surrogate is neither Sedov-oracle-backed "
            "nor backed by a predictor that records its model_path (load the "
            "export via InferenceEngine.load); pass a SurrogateSpec("
            "kind='model', model_path=...) or let the server pickle the "
            "surrogate object itself"
        )


def _resolve_surrogate(spec) -> SNSurrogate:
    return spec.build() if isinstance(spec, SurrogateSpec) else spec


def predict_batch_buffers(
    surrogate: SNSurrogate, buffers: list[np.ndarray], pad_to: int | None = None
) -> list[np.ndarray]:
    """Decode a request batch, run the batched predictor, encode responses.

    This is the worker inner loop — shared verbatim by the sync transport so
    both paths execute identical code on identical bytes.
    """
    requests = [ServeRequest.from_buffer(b) for b in buffers]
    predicted = surrogate.predict_batch(
        [r.region for r in requests],
        [r.center for r in requests],
        [r.rng() for r in requests],
        pad_to=pad_to,
    )
    return [
        ServeResponse(
            event_id=r.event_id, return_step=r.return_step, particles=p
        ).to_buffer()
        for r, p in zip(requests, predicted, strict=True)
    ]


def _worker_main(worker_id: int, spec, req_q, res_q, pad_to: int | None,
                 fault_plan: FaultPlan | None = None) -> None:
    """Pool-node worker: build the surrogate once, then serve batches.

    Result-queue rows are tagged so the main rank can supervise:

    * ``("hb", worker_id)`` — idle heartbeat, every :data:`HEARTBEAT_S`.
    * ``("claim", worker_id, batch_id)`` — posted *before* serving, so a
      death mid-batch is attributable to exactly this batch.
    * ``("done", worker_id, batch_id, payload, busy_s)`` — the response
      buffers, or the worker-side exception.

    ``fault_plan`` scripts deliberate failures (chaos tests); the injector
    is rebuilt per worker lifetime, so a restarted worker re-runs its
    script from claim #1.
    """
    injector = FaultInjector(fault_plan or FaultPlan(), worker_id)
    surrogate = _resolve_surrogate(spec)
    while True:
        try:
            item = req_q.get(timeout=HEARTBEAT_S)
        except queue_mod.Empty:
            res_q.put(("hb", worker_id))
            continue
        if item is None:
            break
        batch_id, buffers = item
        res_q.put(("claim", worker_id, batch_id))
        injector.on_claim()
        t0 = time.perf_counter()
        try:
            injector.on_predict()
            responses = predict_batch_buffers(surrogate, buffers, pad_to=pad_to)
        except Exception as exc:  # ship the failure instead of dying silently
            res_q.put(("done", worker_id, batch_id, exc, 0.0))
            continue
        if injector.corrupts_response() and responses:
            responses[0][0] = -1.0      # tear the wire magic
        if injector.drops_response():
            continue
        res_q.put(("done", worker_id, batch_id, responses, time.perf_counter() - t0))


class _SyncTransport:
    """Execute batches inline on the caller's thread (the reference path)."""

    def __init__(self, surrogate: SNSurrogate, metrics: ServiceMetrics,
                 pad_to: int | None = None) -> None:
        self._surrogate = surrogate
        self._metrics = metrics
        self._pad_to = pad_to
        self._done: list[Reply] = []

    @property
    def n_workers(self) -> int:
        return 0

    @property
    def degraded(self) -> bool:
        return False

    def dispatch(self, batch_id: int, buffers: list[np.ndarray]) -> None:
        t0 = time.perf_counter()
        responses = predict_batch_buffers(self._surrogate, buffers, self._pad_to)
        elapsed = time.perf_counter() - t0
        self._metrics.inline_predict_s += elapsed
        self._done.append((batch_id, -1, responses, elapsed))

    def poll(self) -> list[Reply]:
        out, self._done = self._done, []
        return out

    def wait(self, timeout: float) -> list[Reply]:
        raise RuntimeError("sync transport never has in-flight batches")

    def expire_batch(self, batch_id: int) -> None:
        pass

    def close(self) -> None:
        pass


@dataclass
class _WorkerSlot:
    """Supervision state for one worker position in the pool."""

    worker_id: int
    proc: mp.process.BaseProcess | None = None
    #: Deaths since the last successfully served batch.
    failures: int = 0
    #: Monotonic time the pending restart fires (None: no restart pending).
    restart_at: float | None = None
    died_at: float | None = None
    last_seen: float = 0.0
    #: True once the supervisor stopped restarting this slot.
    gave_up: bool = False


class _WorkerSupervisor:
    """Detects dead workers, restarts them with backoff, tracks give-up.

    Owns the worker processes for a transport; the transport supplies the
    spawn callable (so supervisor logic is transport-agnostic).  Liveness
    combines ``is_alive`` with the tagged rows workers post on the result
    queue (heartbeats while idle, claims while busy) — ``note_seen``
    timestamps both, and ``reap`` turns ``is_alive`` edges into restart
    schedules.  A slot that dies ``max_consecutive_failures`` times without
    serving a batch in between is abandoned; when every slot is abandoned
    the supervisor reports ``degraded`` and the server finishes the run
    inline.
    """

    def __init__(self, spawn, n_workers: int, config: SupervisionConfig,
                 metrics: ServiceMetrics, tracer=None) -> None:
        self._spawn = spawn
        self._config = config
        self._metrics = metrics
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._slots = [_WorkerSlot(worker_id=i) for i in range(n_workers)]

    def start(self) -> None:
        now = time.monotonic()
        for slot in self._slots:
            slot.proc = self._spawn(slot.worker_id)
            slot.last_seen = now

    @property
    def n_workers(self) -> int:
        return len(self._slots)

    @property
    def degraded(self) -> bool:
        return all(s.gave_up for s in self._slots)

    def alive_worker_ids(self) -> list[int]:
        return [
            s.worker_id for s in self._slots
            if s.proc is not None and s.proc.is_alive()
        ]

    def note_seen(self, worker_id: int) -> None:
        self._slots[worker_id].last_seen = time.monotonic()

    def note_success(self, worker_id: int) -> None:
        """A served batch resets the slot's consecutive-failure count."""
        self._slots[worker_id].failures = 0

    def reap(self) -> list[int]:
        """One supervision pass; returns worker ids found dead *this* pass.

        Newly dead workers get a restart scheduled ``backoff_base_s *
        2**(failures-1)`` (capped) in the future, executed by a later pass;
        each restart is counted and its detection-to-respawn latency
        sampled into ``metrics.recovery_s``.
        """
        now = time.monotonic()
        cfg = self._config
        dead: list[int] = []
        for slot in self._slots:
            if slot.gave_up:
                continue
            if slot.proc is not None and not slot.proc.is_alive():
                slot.proc.join(timeout=0)       # reap the zombie process
                slot.proc = None
                slot.failures += 1
                slot.died_at = now
                dead.append(slot.worker_id)
                if slot.failures > cfg.max_consecutive_failures:
                    slot.gave_up = True
                    slot.restart_at = None
                else:
                    backoff = min(
                        cfg.backoff_cap_s,
                        cfg.backoff_base_s * 2.0 ** (slot.failures - 1),
                    )
                    slot.restart_at = now + backoff
            elif (slot.proc is None and slot.restart_at is not None
                  and now >= slot.restart_at):
                slot.proc = self._spawn(slot.worker_id)
                slot.restart_at = None
                slot.last_seen = now
                self._metrics.n_worker_restarts += 1
                self._tracer.instant(
                    "serve.worker_restart", cat="serve",
                    tid=f"worker-{slot.worker_id}", worker=slot.worker_id,
                    failures=slot.failures,
                )
                if slot.died_at is not None:
                    self._metrics.recovery_s.append(now - slot.died_at)
        if dead and self.degraded:
            self._metrics.degraded = True
        return dead

    def close(self) -> None:
        for slot in self._slots:
            proc, slot.proc = slot.proc, None
            slot.gave_up = True
            if proc is None:
                continue
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)


class _WorkerTransportBase:
    """Shared machinery of the ``process``/``shm`` transports.

    Owns the queue pair, the :class:`_WorkerSupervisor`, and the tagged-row
    pump that turns worker rows into :data:`Reply` items — including the
    synthetic :class:`WorkerLost` replies for batches whose claiming worker
    died.  Subclasses provide the worker entry point and may hook batch
    encoding (shm slot leasing) and lease reclamation.
    """

    _worker_kind = "worker"

    def __init__(self, spec, n_workers: int, ctx_method: str | None = None,
                 pad_to: int | None = None, metrics: ServiceMetrics | None = None,
                 fault_plan: FaultPlan | None = None,
                 supervision: SupervisionConfig | None = None,
                 tracer=None) -> None:
        if n_workers < 1:
            raise ValueError(f"{self._worker_kind} transport needs at least one worker")
        methods = mp.get_all_start_methods()
        method = ctx_method or ("fork" if "fork" in methods else "spawn")
        self._ctx = mp.get_context(method)
        self._spec = spec
        self._pad_to = pad_to
        self._fault_plan = fault_plan
        self._metrics = metrics if metrics is not None else ServiceMetrics()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._req_q = self._ctx.Queue()
        self._res_q = self._ctx.Queue()
        #: batch_id -> worker_id that posted the claim row (in-flight only).
        self._claims: dict[int, int] = {}
        self._closed = False
        self._supervisor = _WorkerSupervisor(
            self._spawn, n_workers, supervision or SupervisionConfig(),
            self._metrics, tracer=self._tracer,
        )
        self._supervisor.start()

    # ------------------------------------------------------- subclass hooks
    def _worker_target(self):
        raise NotImplementedError

    def _worker_args(self, worker_id: int) -> tuple:
        raise NotImplementedError

    def _encode_batch(self, batch_id: int, buffers: list[np.ndarray]):
        """What actually rides the request queue for this batch."""
        return buffers

    def _convert_payload(self, batch_id: int, payload):
        """Turn a done-row payload into response buffers (or pass the exc)."""
        return payload

    def _on_claim_row(self, worker_id: int, batch_id: int) -> None:
        pass

    def _reclaim_batch(self, batch_id: int) -> None:
        """Reclaim transport resources of a batch lost to a dead worker."""

    def _on_worker_dead(self, worker_id: int) -> None:
        pass

    def _reclaim_all(self) -> None:
        """Reclaim every outstanding transport resource (no live workers)."""

    def _close_extra(self) -> None:
        pass

    # ------------------------------------------------------------- plumbing
    def _spawn(self, worker_id: int) -> mp.process.BaseProcess:
        proc = self._ctx.Process(
            target=self._worker_target(),
            args=self._worker_args(worker_id),
            daemon=True,
            name=f"repro-serve-{self._worker_kind}-{worker_id}",
        )
        proc.start()
        return proc

    @property
    def n_workers(self) -> int:
        return self._supervisor.n_workers

    @property
    def degraded(self) -> bool:
        return self._supervisor.degraded

    def dispatch(self, batch_id: int, buffers: list[np.ndarray]) -> None:
        self._req_q.put((batch_id, self._encode_batch(batch_id, buffers)))

    def expire_batch(self, batch_id: int) -> None:
        """The server timed this batch out; release what can be released.

        The claim attribution is kept: if the (possibly hung) worker later
        dies while still holding the batch, the death is attributed and
        reclaimed normally; if it eventually replies, the reply converts
        and the server drops it as a stale duplicate.
        """

    def _handle_row(self, row) -> Reply | None:
        tag, worker_id = row[0], row[1]
        self._supervisor.note_seen(worker_id)
        if tag == "hb":
            return None
        if tag == "claim":
            batch_id = row[2]
            self._claims[batch_id] = worker_id
            self._tracer.instant(
                "serve.claim", cat="serve", tid=f"worker-{worker_id}",
                batch=batch_id, worker=worker_id,
            )
            self._on_claim_row(worker_id, batch_id)
            return None
        _tag, worker_id, batch_id, payload, busy_s = row
        self._claims.pop(batch_id, None)
        if not isinstance(payload, Exception):
            self._supervisor.note_success(worker_id)
        return (batch_id, worker_id, self._convert_payload(batch_id, payload), busy_s)

    def _drain(self) -> list[Reply]:
        out: list[Reply] = []
        while True:
            try:
                row = self._res_q.get_nowait()
            except queue_mod.Empty:
                return out
            reply = self._handle_row(row)
            if reply is not None:
                out.append(reply)

    def _reap(self) -> list[Reply]:
        """Supervision pass: convert worker deaths into WorkerLost replies."""
        dead = self._supervisor.reap()
        lost: list[Reply] = []
        for worker_id in dead:
            for batch_id in [b for b, w in self._claims.items() if w == worker_id]:
                del self._claims[batch_id]
                self._reclaim_batch(batch_id)
                lost.append((
                    batch_id, worker_id,
                    WorkerLost(
                        f"serve worker {worker_id} died holding batch {batch_id}"
                    ),
                    0.0,
                ))
            self._on_worker_dead(worker_id)
        if dead and self._supervisor.degraded:
            # No worker will ever run again: everything still leased to the
            # transport (claimed or queued) is safe to take back.
            self._reclaim_all()
        return lost

    def poll(self) -> list[Reply]:
        return self._drain() + self._reap()

    def wait(self, timeout: float) -> list[Reply]:
        """Block up to ``timeout`` for replies; [] on timeout or degraded.

        Unlike the pre-supervision protocol this never raises on worker
        death — deaths come back as :class:`WorkerLost` replies and the
        *server* decides (recover or raise) per its fault mode.
        """
        deadline = time.monotonic() + timeout
        while True:
            replies = self.poll()
            if replies:
                return replies
            if self._supervisor.degraded:
                return []
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return []
            try:
                row = self._res_q.get(timeout=min(_WAIT_SLICE_S, remaining))
            except queue_mod.Empty:
                continue
            reply = self._handle_row(row)
            if reply is not None:
                return [reply]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._supervisor.alive_worker_ids():
            self._req_q.put(None)
        self._supervisor.close()
        # All workers are gone.  Drain both queues: late done-rows still
        # return their slot leases through _handle_row, and an empty
        # request pipe is what lets join_thread() below terminate even when
        # undelivered batches were buffered for dead workers.
        while True:
            try:
                self._handle_row(self._res_q.get_nowait())
            except queue_mod.Empty:
                break
        while True:
            try:
                self._req_q.get_nowait()
            except queue_mod.Empty:
                break
        self._reclaim_all()
        self._close_extra()
        for q in (self._req_q, self._res_q):
            q.close()
            q.join_thread()


class _ProcessTransport(_WorkerTransportBase):
    """N worker processes fed from one shared request queue (pipes)."""

    def _worker_target(self):
        return _worker_main

    def _worker_args(self, worker_id: int) -> tuple:
        return (worker_id, self._spec, self._req_q, self._res_q, self._pad_to,
                self._fault_plan)


class SurrogateServer:
    """Batched inference over SN regions with sync or process transport.

    Parameters
    ----------
    surrogate : in-process surrogate (required for ``sync``; for the
        worker transports it is the recipe source when ``spec`` is absent —
        a spec is derived when possible, else the object itself is pickled
        — and the builder of inline spill/oracle predictions).
    spec : a :class:`SurrogateSpec` workers build from (preferred for the
        worker transports — each worker loads its own model instead of
        inheriting a pickled copy through the queue args).
    transport : ``"sync"``, ``"process"``, or ``"shm"`` (zero-copy
        shared-memory ring, see :mod:`repro.serve.shm`).
    n_workers / max_batch / max_wait_steps / pad_to : see module and
        :class:`BatchScheduler` docs.
    shm_slots / shm_slot_particles : ``shm`` ring sizing — slot count and
        the per-slot particle capacity (a bigger request falls back to the
        pickled queue path for that event, so these are performance knobs,
        not correctness limits).
    fault_mode : ``"recover"`` (default) survives worker faults via the
        in-flight registry + supervision; ``"raise"`` surfaces the first
        fault as an exception (see :class:`~repro.serve.policies.FaultMode`).
    fault_plan : scripted failure injection for the workers — a
        :class:`~repro.serve.faults.FaultPlan`, its string form, or None to
        read ``REPRO_SERVE_FAULTS`` from the environment.
    supervision : :class:`SupervisionConfig` overriding restart backoff,
        give-up threshold, and the per-batch timeout.
    max_redispatch : lost-batch re-dispatch attempts before the remaining
        events resolve inline on the main rank.
    """

    def __init__(
        self,
        surrogate: SNSurrogate | None = None,
        spec: SurrogateSpec | None = None,
        transport: str = "sync",
        n_workers: int = 2,
        max_batch: int = 8,
        max_wait_steps: int = 1,
        pad_to: int | None = None,
        ctx_method: str | None = None,
        shm_slots: int = 32,
        shm_slot_particles: int = 4096,
        fault_mode: FaultMode | str = FaultMode.RECOVER,
        fault_plan: FaultPlan | str | None = None,
        supervision: SupervisionConfig | None = None,
        max_redispatch: int = 2,
        tracer=None,
    ) -> None:
        if surrogate is None and spec is None:
            raise ValueError("need a surrogate or a SurrogateSpec")
        self.transport_name = transport
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = ServiceMetrics(started_at=time.perf_counter())
        self.scheduler = BatchScheduler(
            max_batch=max_batch,
            max_wait_steps=max_wait_steps,
            pad_to=pad_to,
            metrics=self.metrics,
        )
        self._surrogate = surrogate
        self._spec = spec
        self.shm_slots = shm_slots
        self.shm_slot_particles = shm_slot_particles
        self._fault_mode = FaultMode.parse(fault_mode)
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        elif isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        self._fault_plan = fault_plan
        self._supervision = supervision if supervision is not None else SupervisionConfig()
        self._max_redispatch = int(max_redispatch)
        if transport == "sync":
            self._transport = _SyncTransport(
                self.local_surrogate, self.metrics, pad_to
            )
        elif transport == "process":
            self._transport = _ProcessTransport(
                self._worker_recipe(), n_workers, ctx_method=ctx_method,
                pad_to=pad_to, metrics=self.metrics,
                fault_plan=self._fault_plan, supervision=self._supervision,
                tracer=self.tracer,
            )
        elif transport == "shm":
            from repro.serve.shm import _ShmTransport
            from repro.serve.wire import request_nfloats

            self._transport = _ShmTransport(
                self._worker_recipe(), n_workers, ctx_method=ctx_method,
                pad_to=pad_to,
                n_slots=shm_slots,
                slot_floats=request_nfloats(shm_slot_particles),
                metrics=self.metrics,
                fault_plan=self._fault_plan, supervision=self._supervision,
                tracer=self.tracer,
            )
            self.metrics.shm_n_slots = shm_slots
            self.metrics.shm_slot_bytes = request_nfloats(shm_slot_particles) * 8
        else:
            raise ValueError(f"unknown transport {transport!r}")
        self._next_event_id = 0
        self._next_batch_id = 0
        self._in_flight: set[int] = set()                # outstanding batch ids
        self._expected: dict[int, tuple[int, int]] = {}  # id -> (dispatch, return)
        self._client: dict[int, int] = {}                # id -> client tag (coupled runs)
        self._completed: dict[int, ServeResponse] = {}
        #: In-flight request registry: batch id -> the dispatched request
        #: buffers, held until the batch's responses are absorbed so any
        #: lost batch can be re-dispatched or resolved inline.
        self._dispatched: dict[int, list[np.ndarray]] = {}
        self._dispatch_wall: dict[int, float] = {}       # id -> monotonic dispatch time
        self._dispatch_trace_t0: dict[int, float] = {}   # id -> tracer.now() at dispatch
        self._redispatch_gen: dict[int, int] = {}        # id -> re-dispatch generation
        self._last_depth_sample_step: int | None = None
        self._closed = False

    # -------------------------------------------------------------- plumbing
    def _worker_recipe(self):
        """What the worker transports build their surrogate from.

        Prefer a :class:`SurrogateSpec` (explicit, or derived from the
        in-process surrogate — oracle- and exported-model-backed both
        derive) so each worker builds its own; fall back to pickling the
        surrogate object for predictors with no serializable recipe.
        """
        if self._spec is not None:
            return self._spec
        try:
            return SurrogateSpec.from_surrogate(self._surrogate)
        except ValueError:
            return self._surrogate

    @property
    def local_surrogate(self) -> SNSurrogate:
        """An in-process surrogate (built lazily from the spec if needed).

        This is also the fault-recovery fallback: it is built from the
        *same* recipe the workers build from, so inline recovery
        predictions are bit-identical to what the lost worker would have
        returned.
        """
        if self._surrogate is None:
            self._surrogate = self._spec.build()
        return self._surrogate

    @property
    def n_workers(self) -> int:
        return self._transport.n_workers

    @property
    def n_outstanding(self) -> int:
        """Events submitted but not yet handed back by :meth:`collect`."""
        return len(self._expected)

    @property
    def fault_mode(self) -> FaultMode:
        return self._fault_mode

    @property
    def degraded(self) -> bool:
        """True once the worker pool is abandoned and service runs inline."""
        return self._transport_degraded()

    def _transport_degraded(self) -> bool:
        return bool(getattr(self._transport, "degraded", False))

    def supervise(self) -> None:
        """One explicit supervision pass (deaths → recovery, due restarts).

        Supervision normally rides on the transport polling inside
        :meth:`collect`; a workload that finishes before a scheduled
        restart's backoff elapses would otherwise close with the restart
        pending forever.  Chaos tests (and callers that must leave the
        pool healthy for a next phase) drive the supervisor to quiescence
        with this instead of sleeping and hoping a collect happens by.
        """
        self._absorb(self._transport.poll())

    # ---------------------------------------------------------------- submit
    def submit(
        self,
        region: ParticleSet,
        center: np.ndarray,
        star_pid: int,
        dispatch_step: int,
        return_step: int,
        base_seed: int = 0,
        client: int | None = None,
    ) -> ServeRequest:
        """Encode one SN region and queue it for batched prediction.

        ``client`` tags the event for multi-client (coupled multi-rank)
        runs: :meth:`collect` with the same tag hands back only this
        client's predictions.  Untagged events go to any collector.
        """
        request = ServeRequest(
            event_id=self._next_event_id,
            base_seed=int(base_seed),
            star_pid=int(star_pid),
            dispatch_step=int(dispatch_step),
            return_step=int(return_step),
            center=np.asarray(center, dtype=np.float64),
            region=region,
        )
        self._next_event_id += 1
        if client is not None:
            self._client[request.event_id] = int(client)
        buf = request.to_buffer()
        self.metrics.n_submitted += 1
        self.metrics.bytes_in += int(buf.nbytes)
        self._expected[request.event_id] = (request.dispatch_step, request.return_step)
        self.scheduler.add(buf, request.event_id, dispatch_step, return_step)
        return request

    def predict_inline(self, request: ServeRequest,
                       surrogate: SNSurrogate | None = None) -> None:
        """Run one already-submitted request *now* on the caller's thread.

        The backpressure paths (spill-to-sync, drop-to-oracle) use this: the
        request leaves the scheduler queue and its prediction is stored for
        delivery at the normal return step.
        """
        buf = self.scheduler.remove(request.event_id)
        t0 = time.perf_counter()
        tt0 = self.tracer.now()
        [resp_buf] = predict_batch_buffers(surrogate or self.local_surrogate, [buf])
        elapsed = time.perf_counter() - t0
        self.metrics.inline_predict_s += elapsed
        if self.tracer.enabled:
            self.tracer.span_at(
                "serve.inline_predict", tt0, elapsed, cat="serve", tid="inline",
                event=request.event_id,
            )
        self._store_response(resp_buf)

    # ------------------------------------------------------------------ tick
    def tick(self, step: int) -> None:
        """Flush due batches to the transport (idempotent within a step).

        Both the dispatch-side flush and :meth:`collect` tick; the queue
        depth is sampled only on the first tick of a step (before any
        flush) so the observability stream has one pre-flush sample per
        step.
        """
        if step != self._last_depth_sample_step:
            self._last_depth_sample_step = step
            self.metrics.queue_depth_samples.append(self.scheduler.queue_depth)
        for buffers in self.scheduler.due_batches(step):
            self._dispatch(buffers)

    def _dispatch(self, buffers: list[np.ndarray], redispatch_gen: int = 0) -> None:
        if self._transport_degraded():
            # No live workers: the batch would sit in the request queue
            # until its timeout; resolve it inline right away instead.
            self._resolve_inline_fault(buffers, "service degraded: no live workers")
            return
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        self._in_flight.add(batch_id)
        self._dispatched[batch_id] = buffers
        self._dispatch_wall[batch_id] = time.monotonic()
        if self.tracer.enabled:
            self._dispatch_trace_t0[batch_id] = self.tracer.now()
            self.tracer.instant(
                "serve.dispatch", cat="serve", batch=batch_id,
                events=len(buffers), generation=redispatch_gen,
            )
        if redispatch_gen:
            self._redispatch_gen[batch_id] = redispatch_gen
        self._transport.dispatch(batch_id, buffers)

    # --------------------------------------------------------------- collect
    def collect(self, step: int, client: int | None = None) -> list[ServeResponse]:
        """All predictions due at ``step``.

        Drains finished batches without blocking; if a due prediction is
        still running (the pool is genuinely contended) the call blocks
        until it lands and charges the wait to ``metrics.exposed_wait_s`` —
        the non-overlapped remainder the paper's ideal sizing drives to
        zero.  Worker faults encountered on the way are recovered (or
        raised, under ``fault_mode="raise"``).

        With a ``client`` tag only that client's events are handed back
        (and popped); other clients' completions stay buffered for their
        own collect calls.  The wait itself is still global — every due
        event must have landed before any client's delivery, which keeps
        the coupled runner's per-rank collect order deterministic.
        """
        self.tick(step)  # any request due back by now is past its deadline
        self._absorb(self._transport.poll())
        last_progress = time.monotonic()
        while self._missing_due(step):
            self._check_timeouts()
            if not self._missing_due(step):
                break
            if self._transport_degraded():
                self._recover_all_in_flight("service degraded: no live workers")
                if self._missing_due(step):
                    raise RuntimeError(
                        "due serve events unrecoverable: service degraded and "
                        "inline recovery did not produce them"
                    )
                break
            t0 = time.perf_counter()
            tt0 = self.tracer.now()
            replies = self._transport.wait(self._wait_slice())
            waited = time.perf_counter() - t0
            self.metrics.exposed_wait_s += waited
            if self.tracer.enabled:
                self.tracer.span_at(
                    "serve.exposed_wait", tt0, waited, cat="serve", step=step,
                )
            if replies:
                self._absorb(replies)
                last_progress = time.monotonic()
            elif time.monotonic() - last_progress > WORKER_TIMEOUT_S:
                raise TimeoutError(
                    f"no serve progress within {WORKER_TIMEOUT_S:.0f}s"
                )
        out = []
        for eid in sorted(self._completed.keys()):
            if client is not None and self._client.get(eid) != client:
                continue
            dispatch_step, return_step = self._expected[eid]
            if return_step <= step:
                out.append(self._completed.pop(eid))
                del self._expected[eid]
                self._client.pop(eid, None)
                self.metrics.record_completion(dispatch_step, step)
        return out

    def collect_all(self, client: int | None = None) -> list[ServeResponse]:
        """Flush and wait for everything outstanding (drain/shutdown path)."""
        for buffers in self.scheduler.flush_all(step=0):
            self._dispatch(buffers)
        self._absorb(self._transport.poll())
        last_progress = time.monotonic()
        while self._in_flight:
            self._check_timeouts()
            if not self._in_flight:
                break
            if self._transport_degraded():
                self._recover_all_in_flight("service degraded: no live workers")
                break
            replies = self._transport.wait(self._wait_slice())
            if replies:
                self._absorb(replies)
                last_progress = time.monotonic()
            elif time.monotonic() - last_progress > WORKER_TIMEOUT_S:
                raise TimeoutError(
                    f"no serve progress within {WORKER_TIMEOUT_S:.0f}s"
                )
        out = []
        for eid in sorted(self._completed.keys()):
            if client is not None and self._client.get(eid) != client:
                continue
            dispatch_step, return_step = self._expected[eid]
            out.append(self._completed.pop(eid))
            del self._expected[eid]
            self._client.pop(eid, None)
            # No caller step here; the request's return step is the honest
            # latency stand-in (the prediction was due back then).
            self.metrics.record_completion(dispatch_step, return_step)
        return out

    def _wait_slice(self) -> float:
        """Longest single transport wait — short enough that per-batch
        timeouts are checked several times per timeout window."""
        return max(0.05, min(1.0, self._supervision.batch_timeout_s / 4.0))

    def _missing_due(self, step: int) -> bool:
        """A due event is neither completed nor pending — it is in flight."""
        for eid, (_d, return_step) in self._expected.items():
            if return_step <= step and eid not in self._completed:
                return True
        return False

    # ------------------------------------------------------- fault recovery
    def _event_pending(self, event_id: int) -> bool:
        return event_id in self._expected and event_id not in self._completed

    def _retire_batch(self, batch_id: int) -> None:
        self._in_flight.discard(batch_id)
        self._dispatched.pop(batch_id, None)
        self._dispatch_wall.pop(batch_id, None)
        self._dispatch_trace_t0.pop(batch_id, None)
        self._redispatch_gen.pop(batch_id, None)

    def _check_timeouts(self) -> None:
        """Expire batches past the per-batch deadline and recover them."""
        if not self._in_flight:
            return
        timeout = self._supervision.batch_timeout_s
        now = time.monotonic()
        expired = [
            bid for bid in sorted(self._in_flight)
            if now - self._dispatch_wall.get(bid, now) > timeout
        ]
        for bid in expired:
            self.metrics.n_batch_timeouts += 1
            if self._fault_mode is FaultMode.RAISE:
                self._retire_batch(bid)
                raise TimeoutError(
                    f"serve batch {bid} produced no response within {timeout:.0f}s"
                )
            self._transport.expire_batch(bid)
            self._recover_batch(
                bid, redispatch=True,
                cause=f"batch {bid} timed out after {timeout:.0f}s",
            )

    def _recover_batch(self, batch_id: int, redispatch: bool, cause: str) -> None:
        """Re-deliver a lost batch's still-pending events.

        Re-dispatch re-sends the *original* request buffers, so the
        per-event RNG (seeded by dispatch step, not wall time) and hence the
        prediction bytes are unchanged; events past ``max_redispatch``
        attempts — or worker-independent failures — resolve inline.
        """
        buffers = self._dispatched.get(batch_id, [])
        generation = self._redispatch_gen.get(batch_id, 0)
        self._retire_batch(batch_id)
        pending = [b for b in buffers if self._event_pending(int(b[2]))]
        if not pending:
            return
        can_redispatch = (
            redispatch
            and generation < self._max_redispatch
            and self.n_workers > 0
            and not self._transport_degraded()
        )
        if can_redispatch:
            self.metrics.n_redispatch += 1
            self.tracer.instant(
                "serve.redispatch", cat="serve", batch=batch_id,
                events=len(pending), generation=generation + 1, cause=cause,
            )
            self._dispatch(pending, redispatch_gen=generation + 1)
        else:
            self._resolve_inline_fault(pending, cause)

    def _recover_all_in_flight(self, cause: str) -> None:
        for batch_id in sorted(self._in_flight):
            self._recover_batch(batch_id, redispatch=False, cause=cause)

    def _resolve_inline_fault(self, buffers: list[np.ndarray], cause: str) -> None:
        """Serve request buffers on the main rank — the recovery of last
        resort, bit-identical because :attr:`local_surrogate` is built from
        the same recipe the workers use."""
        t0 = time.perf_counter()
        tt0 = self.tracer.now()
        try:
            responses = predict_batch_buffers(
                self.local_surrogate, buffers, pad_to=self.scheduler.pad_to
            )
        except Exception as exc:
            raise RuntimeError(
                f"serve worker fault ({cause}) could not be recovered inline"
            ) from exc
        elapsed = time.perf_counter() - t0
        self.metrics.inline_predict_s += elapsed
        if self.tracer.enabled:
            self.tracer.span_at(
                "serve.inline_recovery", tt0, elapsed, cat="serve",
                tid="inline", events=len(buffers), cause=cause,
            )
        self.metrics.n_fault_oracle += len(buffers)
        for buf in responses:
            self._store_response(buf)

    def _absorb(self, replies) -> None:
        for batch_id, worker_id, payload, busy_s in replies:
            if batch_id not in self._in_flight:
                # Stale duplicate: a hung worker finally answered a batch
                # already recovered (idempotent — the transport has freed
                # its resources; the events were delivered elsewhere).
                continue
            if isinstance(payload, WorkerLost):
                if self._fault_mode is FaultMode.RAISE:
                    self._retire_batch(batch_id)
                    raise RuntimeError(str(payload)) from None
                self._recover_batch(batch_id, redispatch=True, cause=str(payload))
                continue
            if isinstance(payload, Exception):
                self.metrics.n_worker_errors += 1
                if self._fault_mode is FaultMode.RAISE:
                    self._retire_batch(batch_id)
                    raise RuntimeError(
                        f"serve worker {worker_id} failed on batch {batch_id}"
                    ) from payload
                # The worker is alive and shipped a predict failure: the
                # fault is request-dependent, so a retry on another worker
                # would hit the same bug — go straight to inline recovery.
                self._recover_batch(
                    batch_id, redispatch=False,
                    cause=f"worker {worker_id} predict error: {payload!r}",
                )
                continue
            if worker_id >= 0:
                self.metrics.add_worker_busy(worker_id, busy_s)
            corrupt: WireFormatError | None = None
            for buf in payload:
                try:
                    self._store_response(buf)
                except WireFormatError as exc:
                    corrupt = exc
            if corrupt is None:
                if self.tracer.enabled:
                    t0 = self._dispatch_trace_t0.get(batch_id)
                    now = self.tracer.now()
                    lane = f"worker-{worker_id}" if worker_id >= 0 else "inline"
                    self.tracer.span_at(
                        "serve.batch", t0 if t0 is not None else now,
                        now - t0 if t0 is not None else 0.0, cat="serve",
                        tid=lane, batch=batch_id, events=len(payload),
                        busy_s=busy_s, worker=worker_id,
                    )
                self._retire_batch(batch_id)
            elif self._fault_mode is FaultMode.RAISE:
                self._retire_batch(batch_id)
                raise RuntimeError(
                    f"serve worker {worker_id} returned a corrupt response "
                    f"for batch {batch_id}"
                ) from corrupt
            else:
                # A torn response cannot name its event: recover whichever
                # of the batch's events the good buffers did not cover.
                self._recover_batch(
                    batch_id, redispatch=True,
                    cause=f"corrupt response from worker {worker_id}",
                )

    def _store_response(self, buf: np.ndarray) -> None:
        response = ServeResponse.from_buffer(buf)
        eid = response.event_id
        if eid not in self._expected or eid in self._completed:
            return  # stale duplicate from a re-dispatched or expired batch
        self.metrics.bytes_out += int(buf.nbytes)
        self._completed[eid] = response

    # ----------------------------------------------------------------- close
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.metrics.stopped_at = time.perf_counter()
        self._transport.close()

    def __enter__(self) -> "SurrogateServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except (OSError, ValueError, AttributeError, RuntimeError):
            # Interpreter teardown: queues, processes, and module globals
            # may already be half-collected; close() during normal
            # operation (__exit__, explicit) still surfaces everything.
            pass

    def metrics_dict(self) -> dict:
        return self.metrics.as_dict(
            max_batch=self.scheduler.max_batch, n_workers=self.n_workers
        )
