"""`SurrogateServer` — the asynchronous, batched SN-inference service.

The server owns a :class:`BatchScheduler` and a transport:

* ``sync`` — predictions execute in-process at flush time on the caller's
  thread.  Deterministic, dependency-free, and exactly the critical-path
  shape of the old lazy ``PoolManager`` — the tests' reference path.
* ``process`` — ``n_workers`` OS processes, each of which builds its own
  surrogate (from a picklable :class:`SurrogateSpec` or a pickled
  :class:`SNSurrogate`) and serves batches from a shared request queue.
  Inference then genuinely overlaps the main loop: the only wall-clock the
  main rank ever pays is the submit/collect bookkeeping, plus an *exposed
  wait* (recorded in :class:`ServiceMetrics`) when a prediction misses its
  return step.
* ``shm`` — the same worker pool, but every request and prediction lives
  in a :class:`repro.serve.shm.SharedMemoryRing` slot; the queues carry
  only slot indices, so nothing is pickled and no payload bytes cross a
  pipe (see :mod:`repro.serve.shm`).

Because the Gibbs re-sampling is seeded per event
(:func:`repro.serve.wire.event_rng`), all transports — and any batch
composition or worker count — produce bit-identical predictions.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from dataclasses import dataclass

import numpy as np

from repro.fdps.particles import ParticleSet
from repro.serve.batch import BatchScheduler
from repro.serve.metrics import ServiceMetrics
from repro.serve.wire import ServeRequest, ServeResponse
from repro.surrogate.model import SedovBlastOracle, SNSurrogate
from repro.util.constants import SN_ENERGY

#: Seconds collect() waits for a late worker before declaring it dead.
WORKER_TIMEOUT_S = 120.0


@dataclass(frozen=True)
class SurrogateSpec:
    """A picklable recipe for building the surrogate inside a worker.

    ``kind="oracle"`` builds the analytic Sedov oracle; ``kind="model"``
    loads an exported U-Net through :class:`repro.ml.serialize
    .InferenceEngine` — the two pool-node deployments of Sec. 3.3.
    """

    kind: str = "oracle"
    n_grid: int = 16
    side: float = 60.0
    gibbs_sweeps: int = 8
    # oracle parameters
    t_after: float = 0.1
    energy: float = SN_ENERGY
    t_floor: float = 10.0
    # model parameters
    model_path: str | None = None
    #: Non-default field-transform parameters as (rho_floor, t_floor,
    #: v_floor, v_scale); None means the default FieldTransform.  Captured
    #: so a worker-built surrogate encodes/decodes exactly like the
    #: in-process one.
    transform: tuple | None = None

    def _transform_kwargs(self) -> dict:
        if self.transform is None:
            return {}
        from repro.surrogate.transforms import FieldTransform

        return {"transform": FieldTransform(*self.transform)}

    def build(self) -> SNSurrogate:
        if self.kind == "oracle":
            return SNSurrogate(
                oracle=SedovBlastOracle(
                    energy=self.energy, t_after=self.t_after, t_floor=self.t_floor
                ),
                n_grid=self.n_grid,
                side=self.side,
                gibbs_sweeps=self.gibbs_sweeps,
                **self._transform_kwargs(),
            )
        if self.kind == "model":
            from repro.ml.serialize import InferenceEngine

            if self.model_path is None:
                raise ValueError("kind='model' requires model_path")
            return SNSurrogate(
                predictor=InferenceEngine.load(self.model_path),
                n_grid=self.n_grid,
                side=self.side,
                gibbs_sweeps=self.gibbs_sweeps,
                **self._transform_kwargs(),
            )
        raise ValueError(f"unknown surrogate spec kind {self.kind!r}")

    @classmethod
    def from_surrogate(cls, surr: SNSurrogate) -> "SurrogateSpec":
        """Best-effort spec for an existing surrogate.

        Two deployments are derivable: the analytic Sedov oracle, and a
        trained exported model whose predictor remembers where it was
        loaded from (:class:`repro.ml.serialize.InferenceEngine` records
        ``model_path``) — workers then reload the export themselves instead
        of inheriting a pickled copy of every weight tensor.
        """
        from dataclasses import astuple

        from repro.surrogate.transforms import FieldTransform

        if type(surr.transform) is not FieldTransform:
            raise ValueError(
                "no derivable spec: the surrogate uses a custom transform "
                "object the spec cannot capture; let the server pickle the "
                "surrogate itself"
            )
        transform = (
            None if surr.transform == FieldTransform()
            else astuple(surr.transform)
        )
        if isinstance(surr.oracle, SedovBlastOracle):
            return cls(
                kind="oracle",
                n_grid=surr.n_grid,
                side=surr.side,
                gibbs_sweeps=surr.gibbs_sweeps,
                t_after=surr.oracle.t_after,
                energy=surr.oracle.energy,
                t_floor=surr.oracle.t_floor,
                transform=transform,
            )
        model_path = getattr(surr.predictor, "model_path", None)
        if model_path:
            return cls(
                kind="model",
                model_path=str(model_path),
                n_grid=surr.n_grid,
                side=surr.side,
                gibbs_sweeps=surr.gibbs_sweeps,
                transform=transform,
            )
        raise ValueError(
            "no derivable spec: the surrogate is neither Sedov-oracle-backed "
            "nor backed by a predictor that records its model_path (load the "
            "export via InferenceEngine.load); pass a SurrogateSpec("
            "kind='model', model_path=...) or let the server pickle the "
            "surrogate object itself"
        )


def _resolve_surrogate(spec) -> SNSurrogate:
    return spec.build() if isinstance(spec, SurrogateSpec) else spec


def predict_batch_buffers(
    surrogate: SNSurrogate, buffers: list[np.ndarray], pad_to: int | None = None
) -> list[np.ndarray]:
    """Decode a request batch, run the batched predictor, encode responses.

    This is the worker inner loop — shared verbatim by the sync transport so
    both paths execute identical code on identical bytes.
    """
    requests = [ServeRequest.from_buffer(b) for b in buffers]
    predicted = surrogate.predict_batch(
        [r.region for r in requests],
        [r.center for r in requests],
        [r.rng() for r in requests],
        pad_to=pad_to,
    )
    return [
        ServeResponse(
            event_id=r.event_id, return_step=r.return_step, particles=p
        ).to_buffer()
        for r, p in zip(requests, predicted, strict=True)
    ]


def _worker_main(worker_id: int, spec, req_q, res_q, pad_to: int | None) -> None:
    """Pool-node worker: build the surrogate once, then serve batches."""
    surrogate = _resolve_surrogate(spec)
    while True:
        item = req_q.get()
        if item is None:
            break
        batch_id, buffers = item
        t0 = time.perf_counter()
        try:
            responses = predict_batch_buffers(surrogate, buffers, pad_to=pad_to)
        except Exception as exc:  # ship the failure instead of dying silently
            res_q.put((batch_id, worker_id, exc, 0.0))
            continue
        res_q.put((batch_id, worker_id, responses, time.perf_counter() - t0))


class _SyncTransport:
    """Execute batches inline on the caller's thread (the reference path)."""

    def __init__(self, surrogate: SNSurrogate, metrics: ServiceMetrics,
                 pad_to: int | None = None) -> None:
        self._surrogate = surrogate
        self._metrics = metrics
        self._pad_to = pad_to
        self._done: list[tuple[int, int, list[np.ndarray], float]] = []

    @property
    def n_workers(self) -> int:
        return 0

    def dispatch(self, batch_id: int, buffers: list[np.ndarray]) -> None:
        t0 = time.perf_counter()
        responses = predict_batch_buffers(self._surrogate, buffers, self._pad_to)
        elapsed = time.perf_counter() - t0
        self._metrics.inline_predict_s += elapsed
        self._done.append((batch_id, -1, responses, elapsed))

    def poll(self) -> list[tuple[int, int, list[np.ndarray], float]]:
        out, self._done = self._done, []
        return out

    def wait(self, timeout: float):
        raise RuntimeError("sync transport never has in-flight batches")

    def close(self) -> None:
        pass


class _ProcessTransport:
    """N worker processes fed from one shared request queue (pipes)."""

    def __init__(self, spec, n_workers: int, ctx_method: str | None = None,
                 pad_to: int | None = None) -> None:
        if n_workers < 1:
            raise ValueError("process transport needs at least one worker")
        methods = mp.get_all_start_methods()
        method = ctx_method or ("fork" if "fork" in methods else "spawn")
        ctx = mp.get_context(method)
        self._req_q = ctx.Queue()
        self._res_q = ctx.Queue()
        self._workers = [
            ctx.Process(
                target=_worker_main,
                args=(i, spec, self._req_q, self._res_q, pad_to),
                daemon=True,
                name=f"repro-serve-worker-{i}",
            )
            for i in range(n_workers)
        ]
        for w in self._workers:
            w.start()

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def dispatch(self, batch_id: int, buffers: list[np.ndarray]) -> None:
        self._req_q.put((batch_id, buffers))

    def poll(self) -> list[tuple[int, int, list[np.ndarray], float]]:
        out = []
        while True:
            try:
                out.append(self._res_q.get_nowait())
            except queue_mod.Empty:
                return out

    def wait(self, timeout: float = WORKER_TIMEOUT_S):
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self._res_q.get(timeout=1.0)
            except queue_mod.Empty:
                if not any(w.is_alive() for w in self._workers):
                    raise RuntimeError("all serve workers died") from None
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"no serve response within {timeout:.0f}s"
                    ) from None

    def close(self) -> None:
        for _ in self._workers:
            self._req_q.put(None)
        for w in self._workers:
            w.join(timeout=10.0)
        for w in self._workers:
            if w.is_alive():
                w.terminate()
                w.join(timeout=5.0)
        self._req_q.close()
        self._res_q.close()


class SurrogateServer:
    """Batched inference over SN regions with sync or process transport.

    Parameters
    ----------
    surrogate : in-process surrogate (required for ``sync``; for the
        worker transports it is the recipe source when ``spec`` is absent —
        a spec is derived when possible, else the object itself is pickled
        — and the builder of inline spill/oracle predictions).
    spec : a :class:`SurrogateSpec` workers build from (preferred for the
        worker transports — each worker loads its own model instead of
        inheriting a pickled copy through the queue args).
    transport : ``"sync"``, ``"process"``, or ``"shm"`` (zero-copy
        shared-memory ring, see :mod:`repro.serve.shm`).
    n_workers / max_batch / max_wait_steps / pad_to : see module and
        :class:`BatchScheduler` docs.
    shm_slots / shm_slot_particles : ``shm`` ring sizing — slot count and
        the per-slot particle capacity (a bigger request falls back to the
        pickled queue path for that event, so these are performance knobs,
        not correctness limits).
    """

    def __init__(
        self,
        surrogate: SNSurrogate | None = None,
        spec: SurrogateSpec | None = None,
        transport: str = "sync",
        n_workers: int = 2,
        max_batch: int = 8,
        max_wait_steps: int = 1,
        pad_to: int | None = None,
        ctx_method: str | None = None,
        shm_slots: int = 32,
        shm_slot_particles: int = 4096,
    ) -> None:
        if surrogate is None and spec is None:
            raise ValueError("need a surrogate or a SurrogateSpec")
        self.transport_name = transport
        self.metrics = ServiceMetrics(started_at=time.perf_counter())
        self.scheduler = BatchScheduler(
            max_batch=max_batch,
            max_wait_steps=max_wait_steps,
            pad_to=pad_to,
            metrics=self.metrics,
        )
        self._surrogate = surrogate
        self._spec = spec
        self.shm_slots = shm_slots
        self.shm_slot_particles = shm_slot_particles
        if transport == "sync":
            self._transport = _SyncTransport(
                self.local_surrogate, self.metrics, pad_to
            )
        elif transport == "process":
            self._transport = _ProcessTransport(
                self._worker_recipe(), n_workers, ctx_method, pad_to
            )
        elif transport == "shm":
            from repro.serve.shm import _ShmTransport
            from repro.serve.wire import request_nfloats

            self._transport = _ShmTransport(
                self._worker_recipe(), n_workers, ctx_method, pad_to,
                n_slots=shm_slots,
                slot_floats=request_nfloats(shm_slot_particles),
                metrics=self.metrics,
            )
            self.metrics.shm_n_slots = shm_slots
            self.metrics.shm_slot_bytes = request_nfloats(shm_slot_particles) * 8
        else:
            raise ValueError(f"unknown transport {transport!r}")
        self._next_event_id = 0
        self._next_batch_id = 0
        self._in_flight: set[int] = set()                # outstanding batch ids
        self._expected: dict[int, tuple[int, int]] = {}  # id -> (dispatch, return)
        self._completed: dict[int, ServeResponse] = {}
        self._last_depth_sample_step: int | None = None
        self._closed = False

    # -------------------------------------------------------------- plumbing
    def _worker_recipe(self):
        """What the worker transports build their surrogate from.

        Prefer a :class:`SurrogateSpec` (explicit, or derived from the
        in-process surrogate — oracle- and exported-model-backed both
        derive) so each worker builds its own; fall back to pickling the
        surrogate object for predictors with no serializable recipe.
        """
        if self._spec is not None:
            return self._spec
        try:
            return SurrogateSpec.from_surrogate(self._surrogate)
        except ValueError:
            return self._surrogate

    @property
    def local_surrogate(self) -> SNSurrogate:
        """An in-process surrogate (built lazily from the spec if needed)."""
        if self._surrogate is None:
            self._surrogate = self._spec.build()
        return self._surrogate

    @property
    def n_workers(self) -> int:
        return self._transport.n_workers

    @property
    def n_outstanding(self) -> int:
        """Events submitted but not yet handed back by :meth:`collect`."""
        return len(self._expected)

    # ---------------------------------------------------------------- submit
    def submit(
        self,
        region: ParticleSet,
        center: np.ndarray,
        star_pid: int,
        dispatch_step: int,
        return_step: int,
        base_seed: int = 0,
    ) -> ServeRequest:
        """Encode one SN region and queue it for batched prediction."""
        request = ServeRequest(
            event_id=self._next_event_id,
            base_seed=int(base_seed),
            star_pid=int(star_pid),
            dispatch_step=int(dispatch_step),
            return_step=int(return_step),
            center=np.asarray(center, dtype=np.float64),
            region=region,
        )
        self._next_event_id += 1
        buf = request.to_buffer()
        self.metrics.n_submitted += 1
        self.metrics.bytes_in += int(buf.nbytes)
        self._expected[request.event_id] = (request.dispatch_step, request.return_step)
        self.scheduler.add(buf, request.event_id, dispatch_step, return_step)
        return request

    def predict_inline(self, request: ServeRequest,
                       surrogate: SNSurrogate | None = None) -> None:
        """Run one already-submitted request *now* on the caller's thread.

        The backpressure paths (spill-to-sync, drop-to-oracle) use this: the
        request leaves the scheduler queue and its prediction is stored for
        delivery at the normal return step.
        """
        buf = self.scheduler.remove(request.event_id)
        t0 = time.perf_counter()
        [resp_buf] = predict_batch_buffers(surrogate or self.local_surrogate, [buf])
        self.metrics.inline_predict_s += time.perf_counter() - t0
        self._store_response(resp_buf)

    # ------------------------------------------------------------------ tick
    def tick(self, step: int) -> None:
        """Flush due batches to the transport (idempotent within a step).

        Both the dispatch-side flush and :meth:`collect` tick; the queue
        depth is sampled only on the first tick of a step (before any
        flush) so the observability stream has one pre-flush sample per
        step.
        """
        if step != self._last_depth_sample_step:
            self._last_depth_sample_step = step
            self.metrics.queue_depth_samples.append(self.scheduler.queue_depth)
        for buffers in self.scheduler.due_batches(step):
            self._dispatch(buffers)

    def _dispatch(self, buffers: list[np.ndarray]) -> None:
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        self._in_flight.add(batch_id)
        self._transport.dispatch(batch_id, buffers)

    # --------------------------------------------------------------- collect
    def collect(self, step: int) -> list[ServeResponse]:
        """All predictions due at ``step``.

        Drains finished batches without blocking; if a due prediction is
        still running (the pool is genuinely contended) the call blocks
        until it lands and charges the wait to ``metrics.exposed_wait_s`` —
        the non-overlapped remainder the paper's ideal sizing drives to
        zero.
        """
        self.tick(step)  # any request due back by now is past its deadline
        self._absorb(self._transport.poll())
        while self._missing_due(step):
            t0 = time.perf_counter()
            item = self._transport.wait(WORKER_TIMEOUT_S)
            self.metrics.exposed_wait_s += time.perf_counter() - t0
            self._absorb([item])
        out = []
        for eid in sorted(self._completed.keys()):
            dispatch_step, return_step = self._expected[eid]
            if return_step <= step:
                out.append(self._completed.pop(eid))
                del self._expected[eid]
                self.metrics.record_completion(dispatch_step, step)
        return out

    def collect_all(self) -> list[ServeResponse]:
        """Flush and wait for everything outstanding (drain/shutdown path)."""
        for buffers in self.scheduler.flush_all(step=0):
            self._dispatch(buffers)
        self._absorb(self._transport.poll())
        while self._in_flight:
            self._absorb([self._transport.wait(WORKER_TIMEOUT_S)])
        out = []
        for eid in sorted(self._completed.keys()):
            dispatch_step, return_step = self._expected[eid]
            out.append(self._completed.pop(eid))
            del self._expected[eid]
            # No caller step here; the request's return step is the honest
            # latency stand-in (the prediction was due back then).
            self.metrics.record_completion(dispatch_step, return_step)
        return out

    def _missing_due(self, step: int) -> bool:
        """A due event is neither completed nor pending — it is in flight."""
        for eid, (_d, return_step) in self._expected.items():
            if return_step <= step and eid not in self._completed:
                return True
        return False

    def _absorb(self, items) -> None:
        for batch_id, worker_id, payload, busy_s in items:
            if isinstance(payload, Exception):
                raise RuntimeError(
                    f"serve worker {worker_id} failed on batch {batch_id}"
                ) from payload
            self._in_flight.discard(batch_id)
            if worker_id >= 0:
                self.metrics.add_worker_busy(worker_id, busy_s)
            for buf in payload:
                self._store_response(buf)

    def _store_response(self, buf: np.ndarray) -> None:
        response = ServeResponse.from_buffer(buf)
        self.metrics.bytes_out += int(buf.nbytes)
        self._completed[response.event_id] = response

    # ----------------------------------------------------------------- close
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.metrics.stopped_at = time.perf_counter()
        self._transport.close()

    def __enter__(self) -> "SurrogateServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def metrics_dict(self) -> dict:
        return self.metrics.as_dict(
            max_batch=self.scheduler.max_batch, n_workers=self.n_workers
        )
