"""Request coalescing: in-flight SN regions -> padded voxel batches.

The scheduler holds encoded requests between :meth:`add` and the next
:meth:`due_batches` call and decides *when* to flush, trading batch
occupancy (bigger batches amortize the per-call overhead of the inference
engine) against deadline safety (every prediction must land within
``latency_steps`` of its dispatch).  Two triggers:

* **full** — as soon as ``max_batch`` requests are pending, a full batch is
  cut immediately (and repeatedly, when a burst queued several batches);
* **deadline** — a request never waits more than ``max_wait_steps`` global
  steps in the queue: once the oldest pending request reaches its flush
  deadline the whole remainder is flushed as one partial batch, so the
  prediction has the rest of its latency window to execute overlapped.

``pad_to`` optionally pads every flushed batch to a fixed event count (the
predictor sees shape-stable ``(pad_to, C, n, n, n)`` inputs — what a JIT or
graph-compiled engine wants); padding slots are flagged so the surrogate
drops them after the forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serve.metrics import ServiceMetrics


@dataclass
class _Pending:
    buffer: np.ndarray          # encoded ServeRequest
    event_id: int
    enqueue_step: int
    flush_deadline: int         # latest step at which this request must ship


@dataclass
class BatchScheduler:
    """Deadline-aware batch coalescing over encoded serve requests."""

    max_batch: int = 8
    max_wait_steps: int = 1
    pad_to: int | None = None
    metrics: ServiceMetrics | None = None
    _pending: list[_Pending] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_steps < 0:
            raise ValueError("max_wait_steps must be >= 0")
        if self.pad_to is not None and self.pad_to < self.max_batch:
            raise ValueError("pad_to must be >= max_batch")

    # ------------------------------------------------------------------ state
    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def add(self, buffer: np.ndarray, event_id: int, step: int,
            return_step: int) -> None:
        """Queue one encoded request dispatched at ``step``.

        The flush deadline is ``step + max_wait_steps`` but never later than
        the step *before* the prediction is due back — a request that waited
        that long must ship even into an empty batch.
        """
        deadline = min(int(step) + self.max_wait_steps, int(return_step) - 1)
        self._pending.append(
            _Pending(
                buffer=buffer,
                event_id=int(event_id),
                enqueue_step=int(step),
                flush_deadline=max(deadline, int(step)),
            )
        )

    # ------------------------------------------------------------------ flush
    def due_batches(self, step: int) -> list[list[np.ndarray]]:
        """Cut every batch that must ship at ``step`` (FIFO order)."""
        batches: list[list[np.ndarray]] = []
        # Full batches first: a burst that queued >= max_batch ships now.
        while len(self._pending) >= self.max_batch:
            batches.append(self._cut(self.max_batch, step))
        # Deadline: the oldest pending request pulls the remainder along.
        if self._pending and any(p.flush_deadline <= step for p in self._pending):
            batches.append(self._cut(len(self._pending), step))
        return batches

    def remove(self, event_id: int) -> np.ndarray:
        """Pull one pending request out of the queue (backpressure paths)."""
        for i, p in enumerate(self._pending):
            if p.event_id == event_id:
                return self._pending.pop(i).buffer
        raise ValueError(f"event {event_id} is not pending")

    def flush_all(self, step: int) -> list[list[np.ndarray]]:
        """Unconditionally ship everything (drain/shutdown path)."""
        batches: list[list[np.ndarray]] = []
        while self._pending:
            batches.append(self._cut(min(self.max_batch, len(self._pending)), step))
        return batches

    def _cut(self, size: int, step: int) -> list[np.ndarray]:
        taken, self._pending = self._pending[:size], self._pending[size:]
        if self.metrics is not None:
            self.metrics.record_batch(len(taken))
            for p in taken:
                self.metrics.flush_wait_steps.append(int(step) - p.enqueue_step)
        return [p.buffer for p in taken]
