"""Deterministic fault injection for the serve worker pool.

The fault-tolerance layer of :mod:`repro.serve.server` (supervision,
re-dispatch, inline-oracle degradation) is only trustworthy if its failure
paths are *testable on purpose*.  This module scripts worker failures
deterministically so the chaos suite (``tests/serve/test_faults.py``) and
``benchmarks/bench_serve_faults.py`` can assert the headline invariant: a
run with injected faults finishes **bit-identical** to a fault-free run,
with the recoveries visible only in :class:`~repro.serve.metrics
.ServiceMetrics`.

* :class:`Fault` — one scripted failure: ``(action, worker, nth batch)``
  plus an optional duration.  Actions:

  ========== ============================================================
  ``kill``    SIGKILL the worker process at claim time (crash fault)
  ``hang``    sleep ``seconds`` at claim time (hung-worker fault; the
              server's per-batch timeout must fire)
  ``raise``   raise :class:`InjectedWorkerError` inside the predict call
              (shipped back as an exception row, like any worker bug)
  ``corrupt`` flip the first response buffer's wire magic after a
              successful predict (torn/corrupt response fault)
  ``drop``    serve the batch but never post the ``done`` row (lost
              response fault; again the per-batch timeout must fire)
  ========== ============================================================

* :class:`FaultPlan` — a picklable tuple of faults, threaded to
  ``_worker_main``/``_shm_worker_main`` through the worker spawn args (next
  to the :class:`~repro.serve.server.SurrogateSpec`), parseable from the
  ``REPRO_SERVE_FAULTS`` environment variable or a
  :class:`~repro.core.simulation.GalaxySimulation` kwarg.
* :class:`FaultInjector` — the per-worker runtime: counts the batches this
  worker process has claimed (1-based, resetting when a worker is
  restarted — a restarted worker re-runs its script) and fires the matching
  actions at the scripted points.

Faults are keyed on the *worker's own claim ordinal*, not a global batch
id: which worker claims which batch is a queue race, but per-event seeded
Gibbs makes the predictions independent of worker/ordering, so the
bit-identity assertions hold regardless of which batch a fault lands on.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

#: Actions :class:`FaultInjector` knows how to perform.
FAULT_ACTIONS = ("kill", "hang", "raise", "corrupt", "drop")

#: Seconds a worker sleeps between posting its claim row and SIGKILLing
#: itself, so the queue feeder thread flushes the claim and the supervisor
#: can attribute the lost batch (the per-batch timeout is the backstop when
#: the row is lost anyway).
KILL_FLUSH_S = 0.05


class InjectedWorkerError(RuntimeError):
    """The scripted ``raise`` fault — a stand-in for any worker-side bug."""


@dataclass(frozen=True)
class Fault:
    """One scripted failure on one worker's nth claimed batch (1-based)."""

    action: str
    worker: int
    nth: int
    seconds: float = 0.0        # hang duration; unused by other actions

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(options: {', '.join(FAULT_ACTIONS)})"
            )
        if self.worker < 0 or self.nth < 1:
            raise ValueError("fault needs worker >= 0 and nth >= 1")

    def as_str(self) -> str:
        base = f"{self.action}@w{self.worker}:b{self.nth}"
        return f"{base}:{self.seconds:g}" if self.seconds else base


@dataclass(frozen=True)
class FaultPlan:
    """A picklable script of worker failures for one server lifetime."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``"kill@w0:b1,hang@w1:b2:0.5"`` (comma-separated faults).

        Each fault is ``action@w<worker>:b<nth>[:<seconds>]``; ``seconds``
        is only meaningful for ``hang``.
        """
        faults = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            try:
                action, _, rest = chunk.partition("@")
                parts = rest.split(":")
                worker = int(parts[0].lstrip("w"))
                nth = int(parts[1].lstrip("b"))
                seconds = float(parts[2]) if len(parts) > 2 else 0.0
            except (ValueError, IndexError) as exc:
                raise ValueError(
                    f"bad fault spec {chunk!r}; expected "
                    "action@w<worker>:b<nth>[:<seconds>]"
                ) from exc
            faults.append(Fault(action, worker, nth, seconds))
        return cls(faults=tuple(faults))

    @classmethod
    def from_env(cls, var: str = "REPRO_SERVE_FAULTS") -> "FaultPlan | None":
        """The plan scripted in the environment, or None when unset/empty."""
        text = os.environ.get(var, "").strip()
        if not text:
            return None
        return cls.parse(text)

    def as_str(self) -> str:
        return ",".join(f.as_str() for f in self.faults)

    def for_worker(self, worker_id: int) -> tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.worker == worker_id)


class FaultInjector:
    """Per-worker runtime that fires a :class:`FaultPlan`'s scripted faults.

    Built inside the worker process (one per worker lifetime, so a
    restarted worker starts a fresh claim count and re-runs its script —
    which is exactly what the degradation tests rely on: a worker whose
    first claim always kills it can never serve, and the supervisor must
    eventually stop restarting it).
    """

    def __init__(self, plan: FaultPlan, worker_id: int) -> None:
        self._faults = plan.for_worker(worker_id)
        self._n = 0

    def _find(self, action: str) -> Fault | None:
        for f in self._faults:
            if f.action == action and f.nth == self._n:
                return f
        return None

    def on_claim(self) -> None:
        """Claim-time faults: advance the ordinal, then kill or hang."""
        self._n += 1
        if self._find("kill") is not None:
            time.sleep(KILL_FLUSH_S)      # let the claim row flush first
            os.kill(os.getpid(), signal.SIGKILL)
        hang = self._find("hang")
        if hang is not None:
            time.sleep(hang.seconds)

    def on_predict(self) -> None:
        """Predict-time fault: raise inside the worker's try block."""
        if self._find("raise") is not None:
            raise InjectedWorkerError(
                f"injected worker fault on claim #{self._n}"
            )

    def drops_response(self) -> bool:
        """True when the scripted fault is to swallow this batch's reply."""
        return self._find("drop") is not None

    def corrupts_response(self) -> bool:
        """True when the first response header must be torn before sending."""
        return self._find("corrupt") is not None
