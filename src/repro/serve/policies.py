"""Degradation policy: what happens when the service cannot keep up — or
cannot stay up.

Two independent axes of trouble share one principle (*no SN event is ever
dropped*: every policy still delivers a prediction at the event's return
step, at worst from the inline Sedov-oracle fallback):

* **Load** — every pool node busy.  The paper sizes the pool so this never
  happens (n_pool = latency_steps means one SN per step per pool node
  sustains forever, Sec. 3.2), but a bursty star-formation region can
  exceed that.  :class:`OverflowPolicy` makes the choice explicit.
* **Crash** — a worker dies, hangs, or returns garbage.
  :class:`FaultMode` decides whether the server recovers (re-dispatch from
  the in-flight request registry, restart the worker, degrade to inline
  prediction — the default, what a long production run needs) or raises
  (the strict mode debugging wants).
"""

from __future__ import annotations

from enum import Enum


class OverflowPolicy(str, Enum):
    """Dispatch behaviour when :meth:`PoolManager.free_pool_rank` is None."""

    #: Legacy: queue on the next pool node anyway (it runs two predictions
    #: in one latency window — fine in simulation, optimistic on hardware).
    QUEUE = "queue"
    #: Stall the main loop until the earliest pool node frees, then dispatch
    #: there; the prediction horizon starts at the *effective* dispatch step
    #: so it still lands ``latency_steps`` later.  The stall is charged to
    #: ``ServiceMetrics.blocked_stall_steps``.
    BLOCK = "block"
    #: Spill to the synchronous path: the main rank runs the full surrogate
    #: itself, immediately, and holds the result until the return step.
    #: Costs main-node wall-clock (``inline_predict_s``) but no pool slot.
    SPILL = "spill"
    #: Degrade to the analytic Sedov oracle, run inline on the main rank —
    #: the cheapest guaranteed fallback; the event is flagged so analysis
    #: can discount it.
    ORACLE = "oracle"

    @classmethod
    def parse(cls, value: "OverflowPolicy | str") -> "OverflowPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            options = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown overflow policy {value!r} (options: {options})"
            ) from None


class FaultMode(str, Enum):
    """Server behaviour when a worker dies, hangs, or ships a bad reply."""

    #: Recover: restart dead workers (capped exponential backoff),
    #: re-dispatch lost batches from the in-flight request registry, and
    #: after repeated failures degrade to inline prediction on the main
    #: rank — the simulation finishes with recoveries visible only in
    #: :class:`~repro.serve.metrics.ServiceMetrics`.
    RECOVER = "recover"
    #: Strict: any worker fault raises ``RuntimeError`` on the main rank
    #: (the pre-fault-tolerance behaviour; useful when debugging the
    #: workers themselves, where silent recovery would hide the bug).
    RAISE = "raise"

    @classmethod
    def parse(cls, value: "FaultMode | str") -> "FaultMode":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            options = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown fault mode {value!r} (options: {options})"
            ) from None
