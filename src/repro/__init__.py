"""repro — ASURA-FDPS-ML reproduced in Python.

A star-by-star N-body/SPH galaxy simulation framework coupled with a deep-
learning surrogate model for supernova feedback, reproducing Hirashima et
al., "The First Star-by-star N-body/Hydrodynamics Simulation of Our Galaxy
Coupling with a Surrogate Model" (SC '25), together with the substrates the
paper depends on: the FDPS particle-simulation framework, the PIKG kernel
generator, AGAMA-style initial conditions, a from-scratch 3D U-Net, and a
machine/network performance model for Fugaku, Rusty and Miyabi.

Quick start::

    from repro import GalaxySimulation, make_mw_mini
    ps = make_mw_mini(n_total=3000, seed=1)
    sim = GalaxySimulation(ps, dt=2e-3)   # fixed 2,000 yr global timestep
    sim.run(5)
    print(sim.diagnostics())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the mapping of
every paper table/figure to a benchmark.
"""

__version__ = "1.0.0"

from repro.fdps.particles import ParticleSet, ParticleType

__all__ = [
    "ParticleSet",
    "ParticleType",
    "GalaxySimulation",
    "make_mw_model",
    "make_mw_mini",
    "__version__",
]


def __getattr__(name: str):
    # Lazy imports keep `import repro` light and avoid circular imports
    # while still exposing the headline API at the top level.
    if name == "GalaxySimulation":
        from repro.core.simulation import GalaxySimulation

        return GalaxySimulation
    if name in ("make_mw_model", "make_mw_mini"):
        from repro.ic import galaxy

        return getattr(galaxy, name)
    raise AttributeError(name)
