"""Shared utilities: unit system, constants, RNG streams, timers, logging.

The whole library works in the "galactic" unit system used by ASURA-style
codes: length in parsec, mass in solar masses, time in megayears.  In these
units the gravitational constant is of order 4.5e-3 and one velocity unit is
about 0.978 km/s, which keeps all dynamical quantities within a few orders of
magnitude of unity — convenient for the mixed-precision force kernels
(Sec. 4.3 of the paper).
"""

from repro.util.constants import (
    GRAV_CONST,
    KM_PER_S,
    SN_ENERGY,
    BOLTZMANN,
    PROTON_MASS,
    GAMMA,
    MU_NEUTRAL,
    MU_IONIZED,
    MSUN_G,
    PC_CM,
    MYR_S,
    YR_MYR,
    temperature_to_internal_energy,
    internal_energy_to_temperature,
    sound_speed,
)
from repro.util.rng import RandomStreams, default_rng
from repro.util.timers import Timer, TimerRegistry
from repro.util.logging import get_logger

__all__ = [
    "GRAV_CONST",
    "KM_PER_S",
    "SN_ENERGY",
    "BOLTZMANN",
    "PROTON_MASS",
    "GAMMA",
    "MU_NEUTRAL",
    "MU_IONIZED",
    "MSUN_G",
    "PC_CM",
    "MYR_S",
    "YR_MYR",
    "temperature_to_internal_energy",
    "internal_energy_to_temperature",
    "sound_speed",
    "RandomStreams",
    "default_rng",
    "Timer",
    "TimerRegistry",
    "get_logger",
]
