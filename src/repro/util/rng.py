"""Deterministic random-number streams.

Every stochastic component (IC sampling, IMF draws, Gibbs sampler, turbulence
fields, weight init) pulls an independent child generator from a single seed
so that full simulations are bit-reproducible regardless of the order in
which subsystems consume randomness — the property the paper relies on when
comparing the surrogate scheme against direct integration on the same ICs.
"""

from __future__ import annotations

import numpy as np


def default_rng(seed: int | None = 0) -> np.random.Generator:
    """A plain PCG64 generator; ``seed=None`` gives OS entropy."""
    return np.random.default_rng(seed)


class RandomStreams:
    """Named, independent random generators derived from one master seed.

    Streams are spawned lazily by name via ``SeedSequence.spawn``; asking for
    the same name twice returns the same generator object, and the mapping
    name -> stream is stable under insertion order because each name is
    hashed into the spawn key.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        if name not in self._streams:
            # Derive a per-name key from a stable hash of the name so the
            # stream does not depend on creation order.
            key = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            seq = np.random.SeedSequence([self.seed, *key.tolist()])
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.get(name)

    def fork(self, salt: int) -> "RandomStreams":
        """A new independent family of streams (e.g. per MPI rank)."""
        return RandomStreams(seed=self.seed * 1_000_003 + int(salt) + 1)
