"""Wall-clock timers mirroring the paper's MPI_Wtime instrumentation.

The paper brackets every critical routine with MPI_Barrier/MPI_Wtime and
reports the slowest rank (Table 3 footnote).  ``TimerRegistry`` reproduces
that bookkeeping: named accumulating timers, per-step snapshots, and a
"slowest rank" merge for the simulated-MPI runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Timer:
    """A single accumulating wall-clock timer."""

    name: str
    total: float = 0.0
    count: int = 0
    _t0: float | None = None

    def start(self) -> None:
        self._t0 = time.perf_counter()

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError(f"timer {self.name!r} stopped before start")
        dt = time.perf_counter() - self._t0
        self.total += dt
        self.count += 1
        self._t0 = None
        return dt

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class TimerRegistry:
    """A named collection of timers with context-manager access."""

    timers: dict[str, Timer] = field(default_factory=dict)

    def get(self, name: str) -> Timer:
        if name not in self.timers:
            self.timers[name] = Timer(name)
        return self.timers[name]

    @contextmanager
    def measure(self, name: str):
        t = self.get(name)
        t.start()
        try:
            yield t
        finally:
            t.stop()

    def totals(self) -> dict[str, float]:
        return {k: v.total for k, v in self.timers.items()}

    def reset(self) -> None:
        for t in self.timers.values():
            t.total = 0.0
            t.count = 0

    @staticmethod
    def slowest(registries: list["TimerRegistry"]) -> dict[str, float]:
        """Per-item maximum across ranks — the paper's 'slowest MPI process'."""
        merged: dict[str, float] = {}
        for reg in registries:
            for name, total in reg.totals().items():
                merged[name] = max(merged.get(name, 0.0), total)
        return merged
