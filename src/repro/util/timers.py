"""Wall-clock timers mirroring the paper's MPI_Wtime instrumentation.

The paper brackets every critical routine with MPI_Barrier/MPI_Wtime and
reports the slowest rank (Table 3 footnote).  ``TimerRegistry`` reproduces
that bookkeeping: named accumulating timers, per-step snapshots, and a
"slowest rank" merge for the simulated-MPI runs.

A registry can additionally feed a :class:`repro.obs.trace.Tracer`: set
``registry.tracer`` (plus optional ``cat``/``rank``) and every
``measure()`` bracket also emits a span carrying the same name, so the
``python -m repro.obs report`` breakdown and the in-process timers are two
views of the same brackets.  With the default :data:`~repro.obs.trace
.NULL_TRACER` the bridge costs one attribute load per bracket.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.trace import NullTracer, Tracer


def _null_tracer() -> "NullTracer":
    from repro.obs.trace import NULL_TRACER

    return NULL_TRACER


@dataclass
class Timer:
    """A single accumulating wall-clock timer.

    ``start``/``stop`` pairs may nest (recursive phases, a phase measured
    inside itself via two code paths): only the *outermost* interval is
    accumulated, so re-entry neither clobbers the start stamp nor double
    counts the enclosed time.
    """

    name: str
    total: float = 0.0
    count: int = 0
    _t0: float | None = None
    _depth: int = 0

    def start(self) -> None:
        if self._depth == 0:
            self._t0 = time.perf_counter()
        self._depth += 1

    def stop(self) -> float:
        if self._depth == 0 or self._t0 is None:
            raise RuntimeError(f"timer {self.name!r} stopped before start")
        self._depth -= 1
        if self._depth > 0:
            return 0.0
        dt = time.perf_counter() - self._t0
        self.total += dt
        self.count += 1
        self._t0 = None
        return dt

    @property
    def running(self) -> bool:
        return self._depth > 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class TimerRegistry:
    """A named collection of timers with context-manager access."""

    timers: dict[str, Timer] = field(default_factory=dict)
    #: Optional span-trace bridge: when set, every ``measure()`` bracket
    #: also opens a span of the same name on this tracer.
    tracer: Any = field(default_factory=_null_tracer, repr=False)
    #: Span category for bridged spans ("sim" for integrator/engine phases).
    cat: str = "sim"
    #: Rank attribute stamped onto bridged spans (multi-rank registries).
    rank: int | None = None

    def get(self, name: str) -> Timer:
        if name not in self.timers:
            self.timers[name] = Timer(name)
        return self.timers[name]

    @contextmanager
    def measure(self, name: str, **attrs: Any):
        t = self.get(name)
        tracer = self.tracer
        if tracer.enabled:
            if self.rank is not None:
                attrs.setdefault("rank", self.rank)
            with tracer.span(name, cat=self.cat, **attrs):
                t.start()
                try:
                    yield t
                finally:
                    t.stop()
        else:
            t.start()
            try:
                yield t
            finally:
                t.stop()

    def totals(self) -> dict[str, float]:
        return {k: v.total for k, v in self.timers.items()}

    def reset(self) -> None:
        for t in self.timers.values():
            t.total = 0.0
            t.count = 0

    @staticmethod
    def slowest(registries: list["TimerRegistry"]) -> dict[str, float]:
        """Per-item maximum across ranks — the paper's 'slowest MPI process'."""
        merged: dict[str, float] = {}
        for reg in registries:
            for name, total in reg.totals().items():
                merged[name] = max(merged.get(name, 0.0), total)
        return merged
