"""Library logging: one namespaced logger, silent by default.

Examples and benchmarks attach their own handlers; the library itself never
configures the root logger (standard practice for importable packages).
"""

from __future__ import annotations

import logging

_BASE = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the library logger, or a child of it."""
    logger = logging.getLogger(_BASE if name is None else f"{_BASE}.{name}")
    if not logging.getLogger(_BASE).handlers:
        logging.getLogger(_BASE).addHandler(logging.NullHandler())
    return logger
