"""Physical constants and unit conversions in the pc / M_sun / Myr system.

Derivations
-----------
G = 6.674e-8 cm^3 g^-1 s^-2
  = 6.674e-8 * (MSUN_G / PC_CM^3) * MYR_S^2  pc^3 M_sun^-1 Myr^-2
  = 4.49850e-3 pc^3 M_sun^-1 Myr^-2

1 velocity unit = 1 pc/Myr = PC_CM / MYR_S cm/s = 0.97779e5 cm/s = 0.97779 km/s

1 internal-energy unit = (pc/Myr)^2 per unit mass.

SN energy: 1e51 erg = 1e51 / (MSUN_G * (PC_CM/MYR_S)^2)  M_sun (pc/Myr)^2
"""

from __future__ import annotations

import numpy as np

# --- CGS anchors -----------------------------------------------------------
MSUN_G = 1.98892e33          # g per solar mass
PC_CM = 3.08568e18           # cm per parsec
MYR_S = 3.1557e13            # s per megayear
YR_MYR = 1.0e-6              # Myr per year

KB_CGS = 1.380649e-16        # erg/K
MP_CGS = 1.6726219e-24       # g
G_CGS = 6.6743e-8            # cm^3 g^-1 s^-2

# --- Derived code-unit constants -------------------------------------------
#: Gravitational constant in pc^3 M_sun^-1 Myr^-2.
GRAV_CONST = G_CGS * MSUN_G / PC_CM**3 * MYR_S**2

#: One code velocity unit (pc/Myr) expressed in km/s.
KM_PER_S = PC_CM / MYR_S / 1.0e5

#: Canonical supernova energy, 1e51 erg, in M_sun (pc/Myr)^2.
SN_ENERGY = 1.0e51 / (MSUN_G * (PC_CM / MYR_S) ** 2)

#: Boltzmann constant in code units per proton mass: k_B/m_p in
#: (pc/Myr)^2 K^-1 — i.e. the specific gas constant for mu = 1.
BOLTZMANN = KB_CGS / MP_CGS / (PC_CM / MYR_S) ** 2

#: Proton mass in solar masses (used for number densities).
PROTON_MASS = MP_CGS / MSUN_G

#: Adiabatic index of the monatomic ideal gas used throughout.
GAMMA = 5.0 / 3.0

#: Mean molecular weight of neutral (atomic H + He) gas.
MU_NEUTRAL = 1.27

#: Mean molecular weight of fully ionized gas.
MU_IONIZED = 0.59

#: Conversion from M_sun/pc^3 to hydrogen nuclei per cm^3 (for X_H = 0.76).
DENSITY_TO_NH = MSUN_G / PC_CM**3 * 0.76 / MP_CGS


def mean_molecular_weight(temperature: np.ndarray | float) -> np.ndarray | float:
    """Crude two-state mean molecular weight: neutral below 1e4 K, ionized above.

    A smooth blend over half a dex avoids a discontinuous sound speed at the
    ionization edge, which would otherwise inject noise into the CFL timestep.
    """
    t = np.asarray(temperature, dtype=np.float64)
    x = np.clip((np.log10(np.maximum(t, 1.0)) - 4.0) / 0.5, 0.0, 1.0)
    mu = MU_NEUTRAL * (1.0 - x) + MU_IONIZED * x
    if np.isscalar(temperature):
        return float(mu)
    return mu


def temperature_to_internal_energy(
    temperature: np.ndarray | float, mu: np.ndarray | float | None = None
) -> np.ndarray | float:
    """Specific internal energy u [(pc/Myr)^2] of an ideal gas at temperature T [K].

    u = k_B T / ((gamma - 1) mu m_p)
    """
    if mu is None:
        mu = mean_molecular_weight(temperature)
    return BOLTZMANN * np.asarray(temperature) / ((GAMMA - 1.0) * np.asarray(mu))


def internal_energy_to_temperature(
    u: np.ndarray | float, mu: np.ndarray | float | None = None
) -> np.ndarray | float:
    """Temperature [K] from specific internal energy [(pc/Myr)^2].

    When ``mu`` is not given the neutral/ionized blend is solved by a single
    fixed-point sweep (the blend is monotone, so one pass after an initial
    neutral guess is accurate to better than a percent).
    """
    u = np.asarray(u, dtype=np.float64)
    if mu is not None:
        return (GAMMA - 1.0) * np.asarray(mu) * u / BOLTZMANN
    t = (GAMMA - 1.0) * MU_NEUTRAL * u / BOLTZMANN
    # Damped fixed-point: the blend makes the bare map contract at only
    # ~0.6x per sweep near 2e4 K, so average each step with the previous.
    for _ in range(40):
        t = 0.5 * (t + (GAMMA - 1.0) * mean_molecular_weight(t) * u / BOLTZMANN)
    return t


def sound_speed(u: np.ndarray | float) -> np.ndarray | float:
    """Adiabatic sound speed c_s = sqrt(gamma (gamma-1) u) in pc/Myr."""
    return np.sqrt(GAMMA * (GAMMA - 1.0) * np.asarray(u))
