"""Timestep criteria — the quantity the whole paper is about.

The Courant–Friedrichs–Lewy condition ties the allowed step to the kernel
size over the signal speed.  In SN-heated gas (c_s ~ 1000 km/s) at
star-by-star resolution this collapses to ~100 yr (Sec. 1), which is the
bottleneck the surrogate scheme removes: with the surrogate handling SN
interiors, the *global* step stays fixed at 2,000 yr.

``timestep_mass_scaling`` encodes the paper's resolution argument
dt_CFL ~ m^{5/6} used in Secs. 1 and 5.3.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import GRAV_CONST


def cfl_timestep(
    h: np.ndarray,
    v_signal: np.ndarray,
    courant: float = 0.3,
) -> np.ndarray:
    """Per-particle CFL timestep dt_i = C h_i / v_sig,i [Myr]."""
    vs = np.maximum(np.asarray(v_signal, dtype=np.float64), 1e-300)
    return courant * np.asarray(h, dtype=np.float64) / vs


def acceleration_timestep(
    h: np.ndarray, acc: np.ndarray, eta: float = 0.25
) -> np.ndarray:
    """Kick criterion dt = eta sqrt(h / |a|) — relevant for cold collapse."""
    amag = np.linalg.norm(np.atleast_2d(acc), axis=1)
    return eta * np.sqrt(np.asarray(h) / np.maximum(amag, 1e-300))


def global_timestep(
    dt_particles: np.ndarray,
    dt_max: float = np.inf,
    dt_min: float = 0.0,
) -> float:
    """Shared timestep = min over particles, clamped to [dt_min, dt_max]."""
    dt = float(np.min(dt_particles)) if len(dt_particles) else dt_max
    return float(np.clip(dt, dt_min, dt_max))


def hierarchical_bins(dt_particles: np.ndarray, dt_base: float) -> np.ndarray:
    """Power-of-two timestep bin per particle (conventional codes, Sec. 1).

    Bin k integrates with step dt_base / 2^k; returns k >= 0 such that
    dt_base / 2^k <= dt_i.  This is the individual/hierarchical timestep
    bookkeeping whose *inefficiency* at high resolution motivates the paper.
    """
    dt = np.maximum(np.asarray(dt_particles, dtype=np.float64), 1e-300)
    k = np.ceil(np.log2(np.maximum(dt_base / dt, 1.0)))
    return k.astype(np.int64)


def timestep_mass_scaling(m_ref: float, dt_ref: float, m_new: float) -> float:
    """dt_CFL ~ m^{5/6} (the paper: dt ~ rho/m^{1/3} ~ m^{5/6} at fixed
    column through SN shells): timestep at a new mass resolution."""
    return dt_ref * (m_new / m_ref) ** (5.0 / 6.0)


def hierarchical_update_fractions(
    dt_particles: np.ndarray, dt_base: float
) -> tuple[np.ndarray, np.ndarray]:
    """Per-bin particle fractions under hierarchical timesteps.

    Returns (bin levels k, fraction of particles in each occupied bin).
    This quantifies the paper's Sec. 1 argument: after an SN only a tiny
    fraction of particles occupies the deepest bin, yet every substep
    still pays the global costs (prediction of all particles, tree
    construction, communication).
    """
    bins = hierarchical_bins(dt_particles, dt_base)
    levels, counts = np.unique(bins, return_counts=True)
    return levels, counts / len(bins)


def hierarchical_efficiency(
    dt_particles: np.ndarray,
    dt_base: float,
    fixed_overhead: float = 0.3,
) -> dict:
    """Cost accounting: shared vs individual (hierarchical) timesteps.

    With a shared step everything advances at dt_min: cost ~ N * 2^k_max
    particle-updates per dt_base.  With hierarchical bins each particle
    updates at its own rate, cost ~ sum_i 2^{k_i} — but every one of the
    2^{k_max} substeps also pays a *global* overhead (predict/tree/comm)
    modeled as ``fixed_overhead * N``.  The paper: "These processes consume
    time for communication that is comparable to that required for updating
    all particles.  As a result, smaller timesteps worsen efficiency in
    high-resolution simulations, even when individual or hierarchical
    timestep methods are employed."

    Returns the update counts and the effective speedup of hierarchical
    over shared stepping — which saturates at ~1/fixed_overhead no matter
    how few particles sit in the deep bins.
    """
    bins = hierarchical_bins(dt_particles, dt_base)
    k_max = int(bins.max())
    n = len(bins)
    shared_updates = n * 2**k_max
    individual_updates = int(np.sum(2.0**bins))
    overhead_updates = fixed_overhead * n * 2**k_max
    speedup = shared_updates / (individual_updates + overhead_updates)
    return {
        "k_max": k_max,
        "shared_updates": shared_updates,
        "individual_updates": individual_updates,
        "overhead_updates": overhead_updates,
        "speedup": speedup,
        "speedup_ceiling": 1.0 / fixed_overhead if fixed_overhead > 0 else np.inf,
    }


def dynamical_time(dens: np.ndarray) -> np.ndarray:
    """Local free-fall/dynamical time sqrt(3 pi / (32 G rho)) [Myr]."""
    rho = np.maximum(np.asarray(dens, dtype=np.float64), 1e-300)
    return np.sqrt(3.0 * np.pi / (32.0 * GRAV_CONST * rho))
