"""Smoothed-particle hydrodynamics.

A density–energy SPH formulation with grad-h correction terms, Monaghan
artificial viscosity with the Balsara switch, and the iterative kernel-size
solve whose communication pattern the paper profiles in Sec. 5.2.5 ("the
iterations are usually twice, if we can set the initial guess of the kernel
size properly").

Neighbor search is a vectorized cell-linked list (:mod:`repro.sph.neighbors`)
producing flat pair (edge) lists; all SPH sums are then NumPy scatter-adds
over those edges — the SoA-friendly analogue of PIKG's generated loops.
"""

from repro.sph.kernels import CubicSpline, WendlandC2, SPHKernel
from repro.sph.neighbors import NeighborGrid, neighbor_pairs
from repro.sph.density import compute_density, DensityResult
from repro.sph.forces import compute_hydro_forces, HydroForceResult
from repro.sph.eos import pressure, sound_speed_from_density
from repro.sph.timestep import cfl_timestep, timestep_mass_scaling

__all__ = [
    "CubicSpline",
    "WendlandC2",
    "SPHKernel",
    "NeighborGrid",
    "neighbor_pairs",
    "compute_density",
    "DensityResult",
    "compute_hydro_forces",
    "HydroForceResult",
    "pressure",
    "sound_speed_from_density",
    "cfl_timestep",
    "timestep_mass_scaling",
]
