"""SPH smoothing kernels.

Convention: ``h`` is the *full support radius* — W(r, h) = 0 for r >= h
(the GADGET convention; some papers call this 2h).  Each kernel provides the
normalized value, the radial derivative, and the derivative with respect to
``h`` (needed by the grad-h correction factor Omega).

These are also the functions the PIKG piecewise-polynomial approximation
(Sec. 3.5) targets: :mod:`repro.pikg.ppa` builds minimax tables for
``w(q)`` and ``dw(q)`` and the test suite checks the tables against the
exact forms here.
"""

from __future__ import annotations

import numpy as np


class SPHKernel:
    """Base class: dimensionless profile w(q) with q = r/h in [0, 1].

    3D normalization: W(r, h) = (sigma / h^3) * w(q) with
    integral of W over the support equal to 1.
    """

    sigma: float  # 3D normalization constant

    def w(self, q: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def dw(self, q: np.ndarray) -> np.ndarray:
        """dw/dq."""
        raise NotImplementedError

    # ---- dimensional forms -------------------------------------------------
    def value(self, r: np.ndarray, h: np.ndarray) -> np.ndarray:
        """W(r, h) [1/length^3]."""
        q = np.minimum(np.asarray(r) / np.asarray(h), 1.0)
        return self.sigma / np.asarray(h) ** 3 * self.w(q)

    def grad_factor(self, r: np.ndarray, h: np.ndarray) -> np.ndarray:
        """(1/r) dW/dr, so grad_i W = grad_factor * (r_i - r_j).

        Finite as r -> 0 for kernels with dw ~ O(q) near zero (both kernels
        here); we clamp r to avoid 0/0.
        """
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = np.minimum(r / h, 1.0)
        rs = np.maximum(r, 1e-12 * np.maximum(h, 1e-300))
        return self.sigma / h**3 * self.dw(q) / (rs * h)

    def dvalue_dh(self, r: np.ndarray, h: np.ndarray) -> np.ndarray:
        """dW/dh at fixed r: -(3 w(q) + q dw(q)) * sigma / h^4."""
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = np.minimum(r / h, 1.0)
        return -self.sigma / h**4 * (3.0 * self.w(q) + q * self.dw(q))


class CubicSpline(SPHKernel):
    """Monaghan M4 cubic spline (the classic ASURA/GADGET kernel)."""

    sigma = 8.0 / np.pi

    def w(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        out = np.zeros_like(q)
        lo = q < 0.5
        hi = (q >= 0.5) & (q < 1.0)
        out[lo] = 1.0 - 6.0 * q[lo] ** 2 + 6.0 * q[lo] ** 3
        out[hi] = 2.0 * (1.0 - q[hi]) ** 3
        return out

    def dw(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        out = np.zeros_like(q)
        lo = q < 0.5
        hi = (q >= 0.5) & (q < 1.0)
        out[lo] = -12.0 * q[lo] + 18.0 * q[lo] ** 2
        out[hi] = -6.0 * (1.0 - q[hi]) ** 2
        return out


class WendlandC2(SPHKernel):
    """Wendland C2 kernel — stable against the pairing instability at large
    neighbor numbers, the choice of modern high-resolution SPH codes."""

    sigma = 21.0 / (2.0 * np.pi)

    def w(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        t = np.maximum(1.0 - q, 0.0)
        return t**4 * (1.0 + 4.0 * q)

    def dw(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        t = np.maximum(1.0 - q, 0.0)
        return -20.0 * q * t**3


#: Default kernel used across the library.
DEFAULT_KERNEL = CubicSpline()
