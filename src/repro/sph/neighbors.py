"""Vectorized cell-linked-list neighbor search.

Particles are binned into a uniform grid of cell size >= the largest search
radius; candidate neighbors of a query then live in the 27 surrounding
cells.  Everything — binning, per-cell ranges, candidate-pair generation —
is done with sorted integer keys and ``searchsorted``/``repeat`` arithmetic,
so the cost is O(N + n_pairs) NumPy work with no Python-level loops over
particles (only the fixed loop over the 27 offsets).

The output is a flat *edge list* ``(i, j)`` of candidate pairs, which is the
natural input for scatter-add SPH sums (``np.add.at`` / ``np.bincount``).

A built :class:`NeighborGrid` is *reusable*: the same grid serves every
h-iteration of the density solve and the force pass, as long as the largest
search radius still fits inside one cell (``grid.covers(radius)``), and it
answers box queries (:meth:`NeighborGrid.points_in_box`) for region
extraction.  The symmetric force search additionally
supports a *half-pair* mode that emits each unordered pair exactly once
(an ``i < j`` cut of the cached candidates), so the force kernel does half
the pairwise work and mirrors the result by scatter-add.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

@dataclass
class NeighborGrid:
    """A built cell grid over one set of points."""

    lo: np.ndarray
    cell: float
    dims: np.ndarray          # (3,) number of cells per axis
    order: np.ndarray         # particle indices sorted by cell key
    sorted_keys: np.ndarray   # cell key per sorted particle
    pos: np.ndarray
    # Lazily cached (i, j, r) candidates among the grid's own points: they
    # depend only on the binning, so every h-iteration and the force pass
    # share one generation.  Sized O(27-stencil pairs) — release with
    # :meth:`release_pairs` once the per-step searches are done.
    _self_pairs: tuple[np.ndarray, np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )
    # Compacted variant: candidates with r < cell only (see
    # :meth:`compact_self_pairs`).
    _compact_pairs: tuple[np.ndarray, np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def build(cls, pos: np.ndarray, cell: float) -> "NeighborGrid":
        pos = np.asarray(pos, dtype=np.float64)
        lo = pos.min(axis=0) - 1e-9
        hi = pos.max(axis=0) + 1e-9
        dims = np.maximum(((hi - lo) / cell).astype(np.int64) + 1, 1)
        keys = cls._keys_of(pos, lo, cell, dims)
        order = np.argsort(keys, kind="stable")
        return cls(lo=lo, cell=float(cell), dims=dims, order=order,
                   sorted_keys=keys[order], pos=pos)

    @staticmethod
    def _keys_of(pos: np.ndarray, lo: np.ndarray, cell: float, dims: np.ndarray) -> np.ndarray:
        c = np.floor((pos - lo) / cell).astype(np.int64)
        c = np.clip(c, 0, dims - 1)
        return (c[:, 0] * dims[1] + c[:, 1]) * dims[2] + c[:, 2]

    @property
    def n_points(self) -> int:
        return len(self.pos)

    def covers(self, radius: float) -> bool:
        """True if a search of ``radius`` is answered exactly by this grid
        (every true neighbor lies inside the 27-cell stencil)."""
        return float(radius) <= self.cell

    # ----------------------------------------------------------- pair search
    def _slots_for_offset(
        self, qc: np.ndarray, off: tuple[int, int, int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(query_row, source_slot) pairs for one cell offset.

        ``source_slot`` indexes the grid's sorted order; map through
        ``self.order`` for original indices.
        """
        empty = np.empty(0, dtype=np.int64)
        c = qc + np.array(off, dtype=np.int64)
        valid = np.all((c >= 0) & (c < self.dims), axis=1)
        if not valid.any():
            return empty, empty
        keys = (c[valid, 0] * self.dims[1] + c[valid, 1]) * self.dims[2] + c[valid, 2]
        starts = np.searchsorted(self.sorted_keys, keys, side="left")
        ends = np.searchsorted(self.sorted_keys, keys, side="right")
        lens = ends - starts
        total = int(lens.sum())
        if total == 0:
            return empty, empty
        qidx = np.flatnonzero(valid)
        # Expand ranges [starts, ends) into flat index arrays.
        rep_q = np.repeat(qidx, lens)
        cum = np.concatenate([[0], np.cumsum(lens)])
        local = np.arange(total) - np.repeat(cum[:-1], lens)
        slots = np.repeat(starts, lens) + local
        return rep_q, slots

    def _query_cells(self, query_pos: np.ndarray) -> np.ndarray:
        qp = np.asarray(query_pos, dtype=np.float64)
        qc = np.floor((qp - self.lo) / self.cell).astype(np.int64)
        return np.clip(qc, 0, self.dims - 1)

    def candidate_pairs(self, query_pos: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All (query, source) pairs with the source in a cell adjacent to
        the query's cell (27-cell stencil).  Distances are NOT filtered here.
        """
        qc = self._query_cells(query_pos)
        out_i: list[np.ndarray] = []
        out_j: list[np.ndarray] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    rep_q, slots = self._slots_for_offset(qc, (dx, dy, dz))
                    if len(rep_q):
                        out_i.append(rep_q)
                        out_j.append(self.order[slots])
        if not out_i:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(out_i), np.concatenate(out_j)

    def self_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unfiltered candidate pairs (i, j, r) among the grid's own points,
        computed once and cached: repeated searches at different radii (the
        h iteration, then the force pass) only re-run the cheap distance
        comparison."""
        if self._self_pairs is None:
            i, j = self.candidate_pairs(self.pos)
            d = self.pos[i] - self.pos[j]
            r = np.sqrt(np.einsum("ij,ij->i", d, d))
            self._self_pairs = (i, j, r)
        return self._self_pairs

    def compact_self_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Candidate pairs (i, j, r) compacted to ``r < cell``.

        Any search this grid can answer exactly uses a radius <= the cell
        size (:meth:`covers`), so stencil candidates at r >= cell can never
        survive a distance filter — dropping them once shrinks the cached
        list ~6x (sphere-to-stencil volume ratio) and every later sweep
        filters the small list.  Built directly per stencil offset (squared
        distances, sqrt only on survivors) without materializing the full
        list; kept pairs appear in exactly the order :meth:`self_pairs`
        would yield them, so downstream scatter sums are bit-identical.
        """
        if self._compact_pairs is None:
            if self._self_pairs is not None:
                i, j, r = self._self_pairs
                keep = r < self.cell
                self._compact_pairs = (i[keep], j[keep], r[keep])
            else:
                cell2 = self.cell * self.cell
                qc = self._query_cells(self.pos)
                out_i: list[np.ndarray] = []
                out_j: list[np.ndarray] = []
                out_r: list[np.ndarray] = []
                for dx in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dz in (-1, 0, 1):
                            rep_q, slots = self._slots_for_offset(qc, (dx, dy, dz))
                            if not len(rep_q):
                                continue
                            jj = self.order[slots]
                            d = self.pos[rep_q] - self.pos[jj]
                            d2 = np.einsum("ij,ij->i", d, d)
                            keep = d2 < cell2
                            out_i.append(rep_q[keep])
                            out_j.append(jj[keep])
                            out_r.append(np.sqrt(d2[keep]))
                if out_i:
                    self._compact_pairs = (
                        np.concatenate(out_i),
                        np.concatenate(out_j),
                        np.concatenate(out_r),
                    )
                else:
                    empty = np.empty(0, dtype=np.int64)
                    self._compact_pairs = (empty, empty, np.empty(0))
        return self._compact_pairs

    def release_pairs(self) -> None:
        """Drop the cached candidate lists (the largest transients of a step)."""
        self._self_pairs = None
        self._compact_pairs = None

    # ------------------------------------------------------------ box query
    def points_in_box(self, box_lo: np.ndarray, box_hi: np.ndarray) -> np.ndarray:
        """Indices of the grid's points inside [box_lo, box_hi] (inclusive).

        Candidate cells overlapping the box are gathered via contiguous
        z-runs of the sorted keys; candidates are then filtered exactly, so
        the result is identical to a full scan at O(cells + candidates) cost.
        """
        box_lo = np.asarray(box_lo, dtype=np.float64)
        box_hi = np.asarray(box_hi, dtype=np.float64)
        clo = np.clip(np.floor((box_lo - self.lo) / self.cell).astype(np.int64), 0, self.dims - 1)
        chi = np.clip(np.floor((box_hi - self.lo) / self.cell).astype(np.int64), 0, self.dims - 1)
        xs = np.arange(clo[0], chi[0] + 1)
        ys = np.arange(clo[1], chi[1] + 1)
        gx, gy = np.meshgrid(xs, ys, indexing="ij")
        base = (gx.ravel() * self.dims[1] + gy.ravel()) * self.dims[2]
        starts = np.searchsorted(self.sorted_keys, base + clo[2], side="left")
        ends = np.searchsorted(self.sorted_keys, base + chi[2], side="right")
        lens = ends - starts
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        cum = np.concatenate([[0], np.cumsum(lens)])
        local = np.arange(total) - np.repeat(cum[:-1], lens)
        cand = self.order[np.repeat(starts, lens) + local]
        p = self.pos[cand]
        inside = np.all((p >= box_lo) & (p <= box_hi), axis=1)
        return cand[inside]


def neighbor_pairs(
    pos: np.ndarray,
    radius: np.ndarray | float,
    mode: str = "gather",
    include_self: bool = True,
    grid: NeighborGrid | None = None,
    half: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distance-filtered neighbor pairs.

    Parameters
    ----------
    pos : (N, 3) positions.
    radius : scalar or per-particle search radii (the SPH support h_i).
    mode :
        * ``"gather"`` — keep pairs with r_ij < radius_i (density sums);
        * ``"symmetric"`` — keep pairs with r_ij < max(radius_i, radius_j)
          (force sums, where either particle's kernel may cover the other).
    include_self : keep the i == j pair (the self kernel contribution to
        density).
    grid : a prebuilt :class:`NeighborGrid` over the *same* ``pos`` to
        reuse; a fresh grid is built when absent or when the largest radius
        outgrows its cell size.
    half : emit each unordered pair once instead of both orderings (only
        meaningful with ``mode="symmetric"``; implies no self pairs).  The
        caller is expected to mirror per-pair terms by scatter-add.

    Returns
    -------
    (i, j, r) : pair endpoints and separations.
    """
    pos = np.asarray(pos, dtype=np.float64)
    r_arr = np.broadcast_to(np.asarray(radius, dtype=np.float64), (len(pos),))
    r_max = float(r_arr.max())
    if r_max <= 0.0:
        raise ValueError("search radius must be positive")
    if half and mode != "symmetric":
        raise ValueError("half-pair search requires mode='symmetric'")
    if grid is None or not grid.covers(r_max) or grid.n_points != len(pos):
        grid = NeighborGrid.build(pos, r_max)
    i, j, r = grid.self_pairs()
    if mode == "gather":
        keep = r < r_arr[i]
    elif mode == "symmetric":
        keep = r < np.maximum(r_arr[i], r_arr[j])
    else:
        raise ValueError(f"unknown mode {mode!r}")
    if half:
        # The full candidate list holds both orderings of every unordered
        # pair; i < j keeps each exactly once (and drops self pairs).
        keep &= i < j
    elif not include_self:
        keep &= i != j
    return i[keep], j[keep], r[keep]


def neighbor_counts(pos: np.ndarray, radius: np.ndarray | float) -> np.ndarray:
    """Number of neighbors (incl. self) within each particle's radius."""
    i, _, _ = neighbor_pairs(pos, radius, mode="gather", include_self=True)
    return np.bincount(i, minlength=len(np.atleast_2d(pos)))
