"""Vectorized cell-linked-list neighbor search.

Particles are binned into a uniform grid of cell size >= the largest search
radius; candidate neighbors of a query then live in the 27 surrounding
cells.  Everything — binning, per-cell ranges, candidate-pair generation —
is done with sorted integer keys and ``searchsorted``/``repeat`` arithmetic,
so the cost is O(N + n_pairs) NumPy work with no Python-level loops over
particles (only the fixed loop over the 27 offsets).

The output is a flat *edge list* ``(i, j)`` of candidate pairs, which is the
natural input for scatter-add SPH sums (``np.add.at`` / ``np.bincount``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class NeighborGrid:
    """A built cell grid over one set of points."""

    lo: np.ndarray
    cell: float
    dims: np.ndarray          # (3,) number of cells per axis
    order: np.ndarray         # particle indices sorted by cell key
    sorted_keys: np.ndarray   # cell key per sorted particle
    pos: np.ndarray

    @classmethod
    def build(cls, pos: np.ndarray, cell: float) -> "NeighborGrid":
        pos = np.asarray(pos, dtype=np.float64)
        lo = pos.min(axis=0) - 1e-9
        hi = pos.max(axis=0) + 1e-9
        dims = np.maximum(((hi - lo) / cell).astype(np.int64) + 1, 1)
        keys = cls._keys_of(pos, lo, cell, dims)
        order = np.argsort(keys, kind="stable")
        return cls(lo=lo, cell=float(cell), dims=dims, order=order,
                   sorted_keys=keys[order], pos=pos)

    @staticmethod
    def _keys_of(pos: np.ndarray, lo: np.ndarray, cell: float, dims: np.ndarray) -> np.ndarray:
        c = np.floor((pos - lo) / cell).astype(np.int64)
        c = np.clip(c, 0, dims - 1)
        return (c[:, 0] * dims[1] + c[:, 1]) * dims[2] + c[:, 2]

    def candidate_pairs(self, query_pos: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All (query, source) pairs with the source in a cell adjacent to
        the query's cell (27-cell stencil).  Distances are NOT filtered here.
        """
        qp = np.asarray(query_pos, dtype=np.float64)
        qc = np.floor((qp - self.lo) / self.cell).astype(np.int64)
        qc = np.clip(qc, 0, self.dims - 1)
        out_i: list[np.ndarray] = []
        out_j: list[np.ndarray] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    c = qc + np.array([dx, dy, dz])
                    valid = np.all((c >= 0) & (c < self.dims), axis=1)
                    if not valid.any():
                        continue
                    keys = (c[:, 0] * self.dims[1] + c[:, 1]) * self.dims[2] + c[:, 2]
                    starts = np.searchsorted(self.sorted_keys, keys[valid], side="left")
                    ends = np.searchsorted(self.sorted_keys, keys[valid], side="right")
                    lens = ends - starts
                    total = int(lens.sum())
                    if total == 0:
                        continue
                    qidx = np.flatnonzero(valid)
                    # Expand ranges [starts, ends) into flat index arrays.
                    rep_q = np.repeat(qidx, lens)
                    cum = np.concatenate([[0], np.cumsum(lens)])
                    local = np.arange(total) - np.repeat(cum[:-1], lens)
                    rep_s = self.order[np.repeat(starts, lens) + local]
                    out_i.append(rep_q)
                    out_j.append(rep_s)
        if not out_i:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(out_i), np.concatenate(out_j)


def neighbor_pairs(
    pos: np.ndarray,
    radius: np.ndarray | float,
    mode: str = "gather",
    include_self: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distance-filtered neighbor pairs.

    Parameters
    ----------
    pos : (N, 3) positions.
    radius : scalar or per-particle search radii (the SPH support h_i).
    mode :
        * ``"gather"`` — keep pairs with r_ij < radius_i (density sums);
        * ``"symmetric"`` — keep pairs with r_ij < max(radius_i, radius_j)
          (force sums, where either particle's kernel may cover the other).
    include_self : keep the i == j pair (the self kernel contribution to
        density).

    Returns
    -------
    (i, j, r) : pair endpoints and separations.
    """
    pos = np.asarray(pos, dtype=np.float64)
    r_arr = np.broadcast_to(np.asarray(radius, dtype=np.float64), (len(pos),))
    cell = float(r_arr.max())
    if cell <= 0.0:
        raise ValueError("search radius must be positive")
    grid = NeighborGrid.build(pos, cell)
    i, j = grid.candidate_pairs(pos)
    d = pos[i] - pos[j]
    r = np.sqrt(np.einsum("ij,ij->i", d, d))
    if mode == "gather":
        keep = r < r_arr[i]
    elif mode == "symmetric":
        keep = r < np.maximum(r_arr[i], r_arr[j])
    else:
        raise ValueError(f"unknown mode {mode!r}")
    if not include_self:
        keep &= i != j
    return i[keep], j[keep], r[keep]


def neighbor_counts(pos: np.ndarray, radius: np.ndarray | float) -> np.ndarray:
    """Number of neighbors (incl. self) within each particle's radius."""
    i, _, _ = neighbor_pairs(pos, radius, mode="gather", include_self=True)
    return np.bincount(i, minlength=len(np.atleast_2d(pos)))
