"""SPH density and the iterative kernel-size (h) solve.

Each gas particle adapts ``h_i`` so that a fixed target number of neighbors
falls inside its support:

.. math::  \\frac{4\\pi}{3} h_i^3 \\, n_i(h_i) = N_{\\rm ngb}

solved by the multiplicative fixed point
``h <- h * (N_target / N(h))^{1/3}`` — the production scheme whose iteration
count the paper tracks in Sec. 5.2.5 (two sweeps with a good initial guess;
each sweep is one neighbor exchange with remote ranks).  Alongside density
we accumulate everything else obtainable in the same pass: the grad-h
correction Omega, velocity divergence and curl (for the Balsara viscosity
limiter), pressure and sound speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fdps.interaction import InteractionCounter
from repro.sph.eos import pressure, sound_speed_from_density
from repro.sph.kernels import DEFAULT_KERNEL, SPHKernel
from repro.sph.neighbors import NeighborGrid


@dataclass
class DensityResult:
    """Output of the density/kernel-size pass."""

    h: np.ndarray
    dens: np.ndarray
    omega: np.ndarray      # grad-h correction factor
    divv: np.ndarray
    curlv: np.ndarray
    pres: np.ndarray
    csnd: np.ndarray
    n_neighbors: np.ndarray
    iterations: int        # h-solve sweeps actually used
    grid_builds: int = 0   # neighbor grids constructed during the solve
    grid: NeighborGrid | None = None  # the grid of the final sweep (reusable)
    pairs: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None  # gather (i, j, r)


def compute_density(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    u: np.ndarray,
    h_guess: np.ndarray,
    n_ngb: int = 64,
    kernel: SPHKernel = DEFAULT_KERNEL,
    max_iter: int = 10,
    tol: float = 0.05,
    counter: InteractionCounter | None = None,
    index=None,
    backend=None,
) -> DensityResult:
    """Solve for h and compute density and companion fields.

    ``tol`` is the acceptable relative deviation of the neighbor count from
    ``n_ngb``; with a good ``h_guess`` convergence takes ~2 sweeps (the
    paper's observation).  One :class:`NeighborGrid` is built on the first
    sweep and reused by every subsequent one, rebinning only when ``max(h)``
    outgrows the cell size; pass ``index`` (a
    :class:`repro.accel.SpatialIndex`) to source the grid from a shared
    cache instead.  The gather sums run on the selected compute backend
    (name or instance; see :func:`repro.accel.backends.get_backend`), which
    keeps per-solve state so repeated sweeps over one grid stay cheap.
    """
    from repro.accel.backends import get_backend

    pos = np.asarray(pos, dtype=np.float64)
    vel = np.asarray(vel, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = len(pos)
    h = np.asarray(h_guess, dtype=np.float64).copy()
    bk = get_backend(backend)

    kernel_volume = 4.0 * np.pi / 3.0
    used_iter = 0
    grid: NeighborGrid | None = None
    gather = None
    grid_builds = 0
    for it in range(max_iter):
        used_iter = it + 1
        h_max = float(h.max())
        if index is not None:
            new_grid = index.grid_for(pos, h_max)
        elif grid is None or not grid.covers(h_max):
            new_grid = NeighborGrid.build(pos, h_max)
            grid_builds += 1
        else:
            new_grid = grid
        if gather is None or new_grid is not grid:
            # First sweep, or h outgrew the binning: new per-solve state.
            grid = new_grid
            gather = bk.density_gather(grid, pos, kernel)
        # Smoothed neighbor number: N(h) = (4 pi / 3) h^3 sum_j W(r_ij, h).
        # Unlike the discrete count this is continuous in h, so the
        # multiplicative fixed point converges instead of oscillating
        # between neighbor shells (the standard GADGET/ASURA device).
        n_smooth = kernel_volume * h**3 * gather.weight_sum(h)
        n_smooth = np.maximum(n_smooth, 0.1)
        converged = np.abs(n_smooth - n_ngb) <= tol * n_ngb
        if converged.all():
            break
        fac = np.clip((float(n_ngb) / n_smooth) ** (1.0 / 3.0), 0.7, 1.5)
        h[~converged] *= fac[~converged]

    assert gather is not None
    dens, drho_dh, counts, pairs = gather.finalize(h, mass)
    if counter is not None:
        counter.add("hydro_density", 1, len(pairs[0]))

    # grad-h term: Omega_i = 1 + (h_i / 3 rho_i) d rho_i / d h_i.
    dens_safe = np.maximum(dens, 1e-300)
    omega = 1.0 + h / (3.0 * dens_safe) * drho_dh
    omega = np.clip(omega, 0.2, 5.0)  # guard against pathological geometry

    divv, curlv = _velocity_estimators(pairs, pos, vel, mass, h, dens_safe, kernel)

    pres = pressure(dens, u)
    csnd = sound_speed_from_density(dens, pres)

    return DensityResult(
        h=h,
        dens=dens,
        omega=omega,
        divv=divv,
        curlv=curlv,
        pres=pres,
        csnd=csnd,
        n_neighbors=counts,
        iterations=used_iter,
        grid_builds=grid_builds,
        grid=grid,
        pairs=pairs,
    )


def _velocity_estimators(
    pairs: tuple[np.ndarray, np.ndarray, np.ndarray],
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    h: np.ndarray,
    dens_safe: np.ndarray,
    kernel: SPHKernel,
) -> tuple[np.ndarray, np.ndarray]:
    """Standard SPH (divv, curlv) estimators over a gather pair list.

    Shared by the full density pass and the step-7 fast path so the two can
    never diverge.
    """
    i, j, r = pairs
    n = len(dens_safe)
    gf = kernel.grad_factor(r, h[i])           # (1/r) dW/dr
    dvec = np.asarray(pos)[i] - np.asarray(pos)[j]
    vvec = np.asarray(vel)[i] - np.asarray(vel)[j]
    # div v_i = -(1/rho_i) sum_j m_j (v_ij . r_ij) gf
    vdotr = np.einsum("ij,ij->i", vvec, dvec)
    divv = -np.bincount(i, weights=mass[j] * vdotr * gf, minlength=n) / dens_safe
    # curl v_i = (1/rho_i) | sum_j m_j (v_ij x r_ij) gf |
    cross = np.cross(vvec, dvec)
    cx = np.bincount(i, weights=mass[j] * cross[:, 0] * gf, minlength=n)
    cy = np.bincount(i, weights=mass[j] * cross[:, 1] * gf, minlength=n)
    cz = np.bincount(i, weights=mass[j] * cross[:, 2] * gf, minlength=n)
    curlv = np.sqrt(cx**2 + cy**2 + cz**2) / dens_safe
    return divv, curlv


def refresh_velocity_fields(
    d: DensityResult,
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    kernel: SPHKernel = DEFAULT_KERNEL,
) -> tuple[np.ndarray, np.ndarray]:
    """Recompute (divv, curlv) for *changed velocities only*.

    Valid while positions and kernel sizes match the ``DensityResult`` —
    the cached gather pair list is reused, so no neighbor search or h
    iteration is paid.  This is the step-7 fast path of the integrator
    (positions identical; kicks changed v, cooling changed u).
    """
    assert d.pairs is not None
    dens_safe = np.maximum(d.dens, 1e-300)
    return _velocity_estimators(d.pairs, pos, vel, mass, d.h, dens_safe, kernel)
