"""Ideal-gas equation of state (gamma = 5/3 monatomic)."""

from __future__ import annotations

import numpy as np

from repro.util.constants import GAMMA


def pressure(dens: np.ndarray, u: np.ndarray) -> np.ndarray:
    """P = (gamma - 1) rho u."""
    return (GAMMA - 1.0) * np.asarray(dens) * np.asarray(u)


def sound_speed_from_density(dens: np.ndarray, pres: np.ndarray) -> np.ndarray:
    """c_s = sqrt(gamma P / rho)."""
    dens = np.maximum(np.asarray(dens, dtype=np.float64), 1e-300)
    return np.sqrt(GAMMA * np.asarray(pres) / dens)
