"""SPH momentum and energy equations.

Density–energy formulation with grad-h correction factors (Omega) and
Monaghan artificial viscosity moderated by the Balsara switch:

.. math::

    \\frac{d\\mathbf{v}_i}{dt} = -\\sum_j m_j \\Big[
        \\frac{P_i}{\\Omega_i \\rho_i^2} \\nabla_i W(h_i)
      + \\frac{P_j}{\\Omega_j \\rho_j^2} \\nabla_i W(h_j)
      + \\Pi_{ij} \\overline{\\nabla_i W} \\Big]

    \\frac{du_i}{dt} = \\frac{P_i}{\\Omega_i \\rho_i^2}
        \\sum_j m_j \\mathbf{v}_{ij} \\cdot \\nabla_i W(h_i)
      + \\frac{1}{2} \\sum_j m_j \\Pi_{ij}
        \\mathbf{v}_{ij} \\cdot \\overline{\\nabla_i W}

The pairwise loop is evaluated once per *unordered* pair (half-pair edge
list): every shared factor — kernel gradients, viscosity, signal velocity —
is computed once and mirrored onto both endpoints by scatter-add with the
sign flip the antisymmetry dictates.  Momentum conservation therefore holds
to machine precision by construction (the i and j contributions are the
same product scaled by m_j and m_i) while the kernel work is half that of
the ordered-pair formulation — verified property-style in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fdps.interaction import InteractionCounter
from repro.sph.kernels import DEFAULT_KERNEL, SPHKernel
from repro.sph.neighbors import NeighborGrid, neighbor_pairs


@dataclass
class HydroForceResult:
    acc: np.ndarray          # (N, 3) hydrodynamic acceleration
    du_dt: np.ndarray        # (N,) specific internal energy rate
    v_signal: np.ndarray     # (N,) max signal velocity (for the CFL step)
    n_pairs: int             # unordered pairs evaluated
    pairs: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None


def compute_hydro_forces(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    h: np.ndarray,
    dens: np.ndarray,
    pres: np.ndarray,
    csnd: np.ndarray,
    omega: np.ndarray | None = None,
    divv: np.ndarray | None = None,
    curlv: np.ndarray | None = None,
    kernel: SPHKernel = DEFAULT_KERNEL,
    alpha_visc: float = 1.0,
    beta_visc: float = 2.0,
    counter: InteractionCounter | None = None,
    grid: NeighborGrid | None = None,
    pairs: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> HydroForceResult:
    """Evaluate hydro accelerations and energy rates for all particles.

    ``grid`` reuses a prebuilt neighbor grid (e.g. the density solve's) for
    the pair search; ``pairs`` skips the search entirely by supplying a
    previously returned half-pair edge list ``(i, j, r)`` — valid only while
    positions and kernel sizes are unchanged (the step-7 fast path of the
    integrator, where only the internal energy moved).
    """
    pos = np.asarray(pos, dtype=np.float64)
    vel = np.asarray(vel, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = len(pos)
    omega = np.ones(n) if omega is None else np.asarray(omega)
    dens_safe = np.maximum(np.asarray(dens, dtype=np.float64), 1e-300)

    if pairs is not None:
        i, j, r = pairs
    else:
        i, j, r = neighbor_pairs(
            pos, h, mode="symmetric", include_self=False, grid=grid, half=True
        )
    if counter is not None:
        # Each unordered pair is two interactions of the ordered formulation.
        counter.add("hydro_force", 2, len(i))
    if len(i) == 0:
        return HydroForceResult(
            acc=np.zeros((n, 3)),
            du_dt=np.zeros(n),
            v_signal=np.asarray(csnd, dtype=np.float64).copy(),
            n_pairs=0,
            pairs=(i, j, r),
        )

    dvec = pos[i] - pos[j]
    vvec = vel[i] - vel[j]
    vdotr = np.einsum("ij,ij->i", vvec, dvec)

    gf_i = kernel.grad_factor(r, h[i])   # (1/r) dW/dr at h_i
    gf_j = kernel.grad_factor(r, h[j])
    gf_bar = 0.5 * (gf_i + gf_j)

    # --- artificial viscosity -------------------------------------------------
    h_bar = 0.5 * (h[i] + h[j])
    rho_bar = 0.5 * (dens_safe[i] + dens_safe[j])
    c_bar = 0.5 * (csnd[i] + csnd[j])
    mu = h_bar * vdotr / (r**2 + 0.01 * h_bar**2)
    mu = np.where(vdotr < 0.0, mu, 0.0)  # only approaching pairs dissipate
    if divv is not None and curlv is not None:
        f_i = np.abs(divv) / (np.abs(divv) + curlv + 1e-4 * csnd / np.maximum(h, 1e-300))
        balsara = 0.5 * (f_i[i] + f_i[j])
    else:
        balsara = 1.0
    visc = balsara * (-alpha_visc * c_bar * mu + beta_visc * mu**2) / rho_bar

    # --- pressure gradient -----------------------------------------------------
    # All per-pair factors are symmetric in (i, j) except the mass weight and
    # the separation sign, so one evaluation feeds both endpoints.
    p_term_i = pres[i] / (omega[i] * dens_safe[i] ** 2)
    p_term_j = pres[j] / (omega[j] * dens_safe[j] ** 2)
    scal = p_term_i * gf_i + p_term_j * gf_j + visc * gf_bar

    acc = np.zeros((n, 3))
    w_ij = mass[j] * scal   # i receives -w_ij * dvec
    w_ji = mass[i] * scal   # j receives +w_ji * dvec
    for ax in range(3):
        np.add.at(acc[:, ax], i, -w_ij * dvec[:, ax])
        np.add.at(acc[:, ax], j, w_ji * dvec[:, ax])

    # --- energy equation --------------------------------------------------------
    # v_ji . r_ji == v_ij . r_ij, so the same vdotr serves both endpoints.
    du_visc = 0.5 * visc * vdotr * gf_bar
    du_dt = np.bincount(i, weights=mass[j] * (p_term_i * vdotr * gf_i + du_visc), minlength=n)
    du_dt += np.bincount(j, weights=mass[i] * (p_term_j * vdotr * gf_j + du_visc), minlength=n)

    # --- signal velocity (Monaghan 1997) ----------------------------------------
    w_rel = np.where(r > 0, vdotr / np.maximum(r, 1e-300), 0.0)
    vsig_pair = csnd[i] + csnd[j] - 3.0 * np.minimum(w_rel, 0.0)
    v_signal = np.asarray(csnd, dtype=np.float64).copy()
    np.maximum.at(v_signal, i, vsig_pair)
    np.maximum.at(v_signal, j, vsig_pair)

    return HydroForceResult(
        acc=acc, du_dt=du_dt, v_signal=v_signal, n_pairs=len(i), pairs=(i, j, r)
    )
