"""SPH momentum and energy equations.

Density–energy formulation with grad-h correction factors (Omega) and
Monaghan artificial viscosity moderated by the Balsara switch:

.. math::

    \\frac{d\\mathbf{v}_i}{dt} = -\\sum_j m_j \\Big[
        \\frac{P_i}{\\Omega_i \\rho_i^2} \\nabla_i W(h_i)
      + \\frac{P_j}{\\Omega_j \\rho_j^2} \\nabla_i W(h_j)
      + \\Pi_{ij} \\overline{\\nabla_i W} \\Big]

    \\frac{du_i}{dt} = \\frac{P_i}{\\Omega_i \\rho_i^2}
        \\sum_j m_j \\mathbf{v}_{ij} \\cdot \\nabla_i W(h_i)
      + \\frac{1}{2} \\sum_j m_j \\Pi_{ij}
        \\mathbf{v}_{ij} \\cdot \\overline{\\nabla_i W}

The pairwise loop is evaluated once per *unordered* pair (half-pair edge
list): every shared factor — kernel gradients, viscosity, signal velocity —
is computed once and mirrored onto both endpoints by scatter-add with the
sign flip the antisymmetry dictates.  Momentum conservation therefore holds
to machine precision by construction (the i and j contributions are the
same product scaled by m_j and m_i) while the kernel work is half that of
the ordered-pair formulation — verified property-style in the test suite.

The per-pair arithmetic and the scatter reduction run on the selected
compute backend (:mod:`repro.accel.backends`): vectorized
bincount-reduction on ``numpy``, a fused jitted loop on ``numba``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fdps.interaction import InteractionCounter
from repro.sph.kernels import DEFAULT_KERNEL, SPHKernel
from repro.sph.neighbors import NeighborGrid


@dataclass
class HydroForceResult:
    acc: np.ndarray          # (N, 3) hydrodynamic acceleration
    du_dt: np.ndarray        # (N,) specific internal energy rate
    v_signal: np.ndarray     # (N,) max signal velocity (for the CFL step)
    n_pairs: int             # unordered pairs evaluated
    pairs: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None


def compute_hydro_forces(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    h: np.ndarray,
    dens: np.ndarray,
    pres: np.ndarray,
    csnd: np.ndarray,
    omega: np.ndarray | None = None,
    divv: np.ndarray | None = None,
    curlv: np.ndarray | None = None,
    kernel: SPHKernel = DEFAULT_KERNEL,
    alpha_visc: float = 1.0,
    beta_visc: float = 2.0,
    counter: InteractionCounter | None = None,
    grid: NeighborGrid | None = None,
    pairs: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    backend=None,
) -> HydroForceResult:
    """Evaluate hydro accelerations and energy rates for all particles.

    ``grid`` reuses a prebuilt neighbor grid (e.g. the density solve's) for
    the pair search; ``pairs`` skips the search entirely by supplying a
    previously returned half-pair edge list ``(i, j, r)`` — valid only while
    positions and kernel sizes are unchanged (the step-7 fast path of the
    integrator, where only the internal energy moved).  ``backend`` is a
    compute-backend name or instance (default: the registry's selection).
    """
    from repro.accel.backends import get_backend

    pos = np.asarray(pos, dtype=np.float64)
    vel = np.asarray(vel, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    dens = np.asarray(dens, dtype=np.float64)
    pres = np.asarray(pres, dtype=np.float64)
    csnd = np.asarray(csnd, dtype=np.float64)
    n = len(pos)
    omega = np.ones(n) if omega is None else np.asarray(omega, dtype=np.float64)

    if divv is not None and curlv is not None:
        # Per-particle Balsara limiter; the backend averages it per pair.
        balsara = np.abs(divv) / (
            np.abs(divv) + np.asarray(curlv) + 1e-4 * csnd / np.maximum(h, 1e-300)
        )
    else:
        balsara = None

    acc, du_dt, v_signal, out_pairs = get_backend(backend).hydro_force_pairs(
        pos, vel, mass, h, dens, pres, csnd, omega, balsara,
        alpha_visc, beta_visc, kernel, grid=grid, pairs=pairs,
    )
    n_pairs = len(out_pairs[0])
    if counter is not None:
        # Each unordered pair is two interactions of the ordered formulation.
        counter.add("hydro_force", 2, n_pairs)
    return HydroForceResult(
        acc=acc, du_dt=du_dt, v_signal=v_signal, n_pairs=n_pairs, pairs=out_pairs
    )
