"""SPH momentum and energy equations.

Density–energy formulation with grad-h correction factors (Omega) and
Monaghan artificial viscosity moderated by the Balsara switch:

.. math::

    \\frac{d\\mathbf{v}_i}{dt} = -\\sum_j m_j \\Big[
        \\frac{P_i}{\\Omega_i \\rho_i^2} \\nabla_i W(h_i)
      + \\frac{P_j}{\\Omega_j \\rho_j^2} \\nabla_i W(h_j)
      + \\Pi_{ij} \\overline{\\nabla_i W} \\Big]

    \\frac{du_i}{dt} = \\frac{P_i}{\\Omega_i \\rho_i^2}
        \\sum_j m_j \\mathbf{v}_{ij} \\cdot \\nabla_i W(h_i)
      + \\frac{1}{2} \\sum_j m_j \\Pi_{ij}
        \\mathbf{v}_{ij} \\cdot \\overline{\\nabla_i W}

The pairwise loop is evaluated once per *ordered* pair from the symmetric
edge list, so momentum conservation holds to machine precision by
construction (each unordered pair contributes equal and opposite terms) —
verified property-style in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fdps.interaction import InteractionCounter
from repro.sph.kernels import DEFAULT_KERNEL, SPHKernel
from repro.sph.neighbors import neighbor_pairs


@dataclass
class HydroForceResult:
    acc: np.ndarray          # (N, 3) hydrodynamic acceleration
    du_dt: np.ndarray        # (N,) specific internal energy rate
    v_signal: np.ndarray     # (N,) max signal velocity (for the CFL step)
    n_pairs: int


def compute_hydro_forces(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    h: np.ndarray,
    dens: np.ndarray,
    pres: np.ndarray,
    csnd: np.ndarray,
    omega: np.ndarray | None = None,
    divv: np.ndarray | None = None,
    curlv: np.ndarray | None = None,
    kernel: SPHKernel = DEFAULT_KERNEL,
    alpha_visc: float = 1.0,
    beta_visc: float = 2.0,
    counter: InteractionCounter | None = None,
) -> HydroForceResult:
    """Evaluate hydro accelerations and energy rates for all particles."""
    pos = np.asarray(pos, dtype=np.float64)
    vel = np.asarray(vel, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = len(pos)
    omega = np.ones(n) if omega is None else np.asarray(omega)
    dens_safe = np.maximum(np.asarray(dens, dtype=np.float64), 1e-300)

    i, j, r = neighbor_pairs(pos, h, mode="symmetric", include_self=False)
    if counter is not None:
        counter.add("hydro_force", 1, len(i))
    if len(i) == 0:
        return HydroForceResult(
            acc=np.zeros((n, 3)),
            du_dt=np.zeros(n),
            v_signal=np.asarray(csnd, dtype=np.float64).copy(),
            n_pairs=0,
        )

    dvec = pos[i] - pos[j]
    vvec = vel[i] - vel[j]
    vdotr = np.einsum("ij,ij->i", vvec, dvec)

    gf_i = kernel.grad_factor(r, h[i])   # (1/r) dW/dr at h_i
    gf_j = kernel.grad_factor(r, h[j])
    gf_bar = 0.5 * (gf_i + gf_j)

    # --- artificial viscosity -------------------------------------------------
    h_bar = 0.5 * (h[i] + h[j])
    rho_bar = 0.5 * (dens_safe[i] + dens_safe[j])
    c_bar = 0.5 * (csnd[i] + csnd[j])
    mu = h_bar * vdotr / (r**2 + 0.01 * h_bar**2)
    mu = np.where(vdotr < 0.0, mu, 0.0)  # only approaching pairs dissipate
    if divv is not None and curlv is not None:
        f_i = np.abs(divv) / (np.abs(divv) + curlv + 1e-4 * csnd / np.maximum(h, 1e-300))
        balsara = 0.5 * (f_i[i] + f_i[j])
    else:
        balsara = 1.0
    visc = balsara * (-alpha_visc * c_bar * mu + beta_visc * mu**2) / rho_bar

    # --- pressure gradient -----------------------------------------------------
    p_term_i = pres[i] / (omega[i] * dens_safe[i] ** 2)
    p_term_j = pres[j] / (omega[j] * dens_safe[j] ** 2)
    scal = mass[j] * (p_term_i * gf_i + p_term_j * gf_j + visc * gf_bar)

    acc = np.zeros((n, 3))
    np.add.at(acc[:, 0], i, -scal * dvec[:, 0])
    np.add.at(acc[:, 1], i, -scal * dvec[:, 1])
    np.add.at(acc[:, 2], i, -scal * dvec[:, 2])

    # --- energy equation --------------------------------------------------------
    du_press = p_term_i * mass[j] * vdotr * gf_i
    du_visc = 0.5 * visc * mass[j] * vdotr * gf_bar
    du_dt = np.bincount(i, weights=du_press + du_visc, minlength=n)

    # --- signal velocity (Monaghan 1997) ----------------------------------------
    w_ij = np.where(r > 0, vdotr / np.maximum(r, 1e-300), 0.0)
    vsig_pair = csnd[i] + csnd[j] - 3.0 * np.minimum(w_ij, 0.0)
    v_signal = np.maximum(
        np.asarray(csnd, dtype=np.float64),
        _segment_max(i, vsig_pair, n),
    )

    return HydroForceResult(acc=acc, du_dt=du_dt, v_signal=v_signal, n_pairs=len(i))


def _segment_max(idx: np.ndarray, values: np.ndarray, n: int) -> np.ndarray:
    """Per-segment maximum via np.maximum.at (0 where a segment is empty)."""
    out = np.zeros(n)
    np.maximum.at(out, idx, values)
    return out
