"""Training-data generation for the SN surrogate.

The paper: "To prepare training data, we conduct SN explosion simulations
with a gas particle resolution of 1 M_sun, and obtain the gas distributions
just before the explosion and after 0.1 Myr.  As initial conditions, we use
density fields disturbed by turbulent velocity fields that follow v ~ k^-4"
(Sec. 3.3).

Two generators produce (input, target) channel pairs:

* :func:`generate_sedov_pair` — the ambient turbulent box before the SN and
  the exact Sedov–Taylor state 0.1 Myr after; fast enough to build datasets
  of hundreds of pairs in seconds (the default for examples/benchmarks);
* :func:`generate_sph_pair` — the same setup integrated with the *actual*
  SPH code and direct thermal feedback (the paper's procedure, at reduced
  particle count so pure Python remains tractable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.sn.turbulence import make_turbulent_box
from repro.surrogate.model import SedovBlastOracle
from repro.surrogate.transforms import FieldTransform
from repro.surrogate.voxelize import voxelize_particles
from repro.util.constants import SN_ENERGY


@dataclass
class SNTrainingDataset:
    """Paired (input channels, target channels) samples plus metadata."""

    inputs: list[np.ndarray] = field(default_factory=list)
    targets: list[np.ndarray] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.inputs)

    def add(self, x: np.ndarray, y: np.ndarray) -> None:
        if len(self.inputs) and x.shape != self.inputs[0].shape:
            raise ValueError("inconsistent input shape")
        self.inputs.append(np.asarray(x))
        self.targets.append(np.asarray(y))

    def split(self, val_fraction: float, rng: np.random.Generator):
        """(train_dataset, val_dataset) random split."""
        n = len(self)
        perm = rng.permutation(n)
        n_val = int(round(val_fraction * n))
        val, train = perm[:n_val], perm[n_val:]
        mk = lambda idx: SNTrainingDataset(
            inputs=[self.inputs[i] for i in idx],
            targets=[self.targets[i] for i in idx],
            meta=dict(self.meta),
        )
        return mk(train), mk(val)

    def save(self, path: str | Path) -> None:
        payload: dict[str, np.ndarray] = {}
        for i, (x, y) in enumerate(zip(self.inputs, self.targets, strict=True)):
            payload[f"x{i}"] = x
            payload[f"y{i}"] = y
        np.savez_compressed(path, n=np.array(len(self)), **payload)

    @classmethod
    def load(cls, path: str | Path) -> "SNTrainingDataset":
        ds = cls()
        with np.load(path) as data:
            n = int(data["n"])
            for i in range(n):
                ds.add(data[f"x{i}"], data[f"y{i}"])
        return ds


def generate_sedov_pair(
    seed: int,
    n_grid: int = 16,
    side: float = 60.0,
    n_per_side: int = 12,
    mean_density: float = 1.0,
    temperature: float = 100.0,
    mach: float = 5.0,
    t_after: float = 0.1,
    energy: float = SN_ENERGY,
    transform: FieldTransform | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One (input, target) channel pair from the analytic blast oracle.

    Each seed draws an independent turbulent realization, so a dataset is
    simply ``[generate_sedov_pair(s) for s in range(n)]``.
    """
    tf = transform or FieldTransform()
    box = make_turbulent_box(
        n_per_side=n_per_side,
        side=side,
        mean_density=mean_density,
        temperature=temperature,
        mach=mach,
        seed=seed,
    )
    grid_in = voxelize_particles(box, np.zeros(3), side, n_grid)
    oracle = SedovBlastOracle(energy=energy, t_after=t_after)
    grid_out = oracle(grid_in)
    return tf.encode(grid_in.fields), tf.encode_target(grid_out.fields)


def generate_sph_pair(
    seed: int,
    n_grid: int = 16,
    side: float = 60.0,
    n_per_side: int = 10,
    mean_density: float = 1.0,
    temperature: float = 100.0,
    mach: float = 5.0,
    t_after: float = 0.1,
    energy: float = SN_ENERGY,
    transform: FieldTransform | None = None,
    courant: float = 0.2,
    max_steps: int = 2000,
) -> tuple[np.ndarray, np.ndarray]:
    """One (input, target) pair from a real SPH blast integration.

    This is the paper's actual procedure: snapshot the turbulent box,
    inject 1e51 erg thermally at the centre, integrate with the adaptive
    CFL timestep (the *conventional* scheme — exactly the computation the
    surrogate is trained to bypass), and snapshot again at ``t_after``.
    """
    # Imported lazily: repro.core depends on this package for the pool nodes.
    from repro.core.conventional import ConventionalIntegrator
    from repro.physics.feedback import SNFeedback

    tf = transform or FieldTransform()
    box = make_turbulent_box(
        n_per_side=n_per_side,
        side=side,
        mean_density=mean_density,
        temperature=temperature,
        mach=mach,
        seed=seed,
    )
    grid_in = voxelize_particles(box, np.zeros(3), side, n_grid)

    SNFeedback(energy=energy).inject(box, center=np.zeros(3))
    sim = ConventionalIntegrator(
        box,
        courant=courant,
        self_gravity=False,  # a 0.1 Myr blast: gravity is negligible
        enable_cooling=False,
        enable_star_formation=False,
    )
    sim.run_until(t_after, max_steps=max_steps)
    grid_out = voxelize_particles(sim.ps, np.zeros(3), side, n_grid)
    return tf.encode(grid_in.fields), tf.encode_target(grid_out.fields)


def build_dataset(
    n_samples: int,
    generator=generate_sedov_pair,
    base_seed: int = 0,
    **kwargs,
) -> SNTrainingDataset:
    """A dataset of ``n_samples`` independent turbulent-box SN pairs."""
    ds = SNTrainingDataset(meta={"generator": generator.__name__, **kwargs})
    for s in range(n_samples):
        x, y = generator(seed=base_seed + s, **kwargs)
        ds.add(x, y)
    return ds
