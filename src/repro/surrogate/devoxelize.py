"""Voxel -> particle conversion via Gibbs sampling.

"When we obtain an output of structured grid data from the machine, we
convert it back to particle data using Gibbs sampling, which is one of the
Markov chain Monte Carlo methods.  Mass conservation is ensured by making
the number of created particles the same as the number of particles in the
input data." (Sec. 3.3)

:func:`gibbs_sample_positions` runs a per-particle Gibbs chain over the
three coordinates: each sweep resamples one coordinate from its exact
conditional p(x | y, z) ~ rho(x, y, z) along the grid line through the
particle's current cell (inverse-CDF over the line), vectorized across all
particles.  After burn-in the particle set is an unbiased draw from the
(normalized) predicted density field; uniform intra-voxel jitter removes
grid imprinting.
"""

from __future__ import annotations

import numpy as np

from repro.fdps.particles import ParticleSet, ParticleType
from repro.surrogate.voxelize import VoxelGrid
from repro.util.constants import temperature_to_internal_energy


def gibbs_sample_positions(
    density: np.ndarray,
    n_particles: int,
    rng: np.random.Generator,
    n_sweeps: int = 8,
) -> np.ndarray:
    """Sample fractional grid coordinates (N, 3) from a 3D density field.

    Coordinates are continuous in [0, n): integer part = cell index,
    fractional part = uniform jitter inside the cell.
    """
    dens = np.maximum(np.asarray(density, dtype=np.float64), 0.0)
    if dens.sum() <= 0:
        raise ValueError("density field has no mass to sample")
    n = dens.shape[0]

    # Initialize from the marginal distribution of cells (a good start that
    # shortens burn-in; any start converges).
    flat_p = dens.ravel() / dens.sum()
    start = rng.choice(len(flat_p), size=n_particles, p=flat_p)
    ix, iy, iz = np.unravel_index(start, dens.shape)
    coords = np.stack([ix, iy, iz], axis=1).astype(np.int64)

    for _sweep in range(n_sweeps):
        for axis in range(3):
            other = [a for a in range(3) if a != axis]
            # Conditional distribution along the grid line through each
            # particle: rows of the density cube indexed by the other two
            # coordinates.
            lines = np.moveaxis(dens, axis, -1)[
                coords[:, other[0]], coords[:, other[1]], :
            ]  # (N, n)
            cum = np.cumsum(lines, axis=1)
            total = cum[:, -1]
            # Degenerate (empty) lines keep their current coordinate.
            ok = total > 0
            u = rng.uniform(0.0, 1.0, n_particles) * np.maximum(total, 1e-300)
            new = np.minimum(
                (cum < u[:, None]).sum(axis=1), n - 1
            )
            coords[ok, axis] = new[ok]

    jitter = rng.uniform(0.0, 1.0, (n_particles, 3))
    return coords.astype(np.float64) + jitter


def _trilinear_fields(grid: VoxelGrid, frac_coords: np.ndarray) -> np.ndarray:
    """Sample all 5 fields at fractional grid coordinates (clamped edges)."""
    n = grid.n_grid
    c = np.clip(frac_coords - 0.5, 0.0, n - 1.0)  # field values live at centres
    i0 = np.floor(c).astype(np.int64)
    i0 = np.clip(i0, 0, n - 2)
    f = c - i0
    out = np.zeros((grid.fields.shape[0], len(frac_coords)))
    for dx in (0, 1):
        wx = (1 - f[:, 0]) if dx == 0 else f[:, 0]
        for dy in (0, 1):
            wy = (1 - f[:, 1]) if dy == 0 else f[:, 1]
            for dz in (0, 1):
                wz = (1 - f[:, 2]) if dz == 0 else f[:, 2]
                w = wx * wy * wz
                vals = grid.fields[:, i0[:, 0] + dx, i0[:, 1] + dy, i0[:, 2] + dz]
                out += w[None, :] * vals
    return out


def devoxelize_to_particles(
    grid: VoxelGrid,
    template: ParticleSet,
    rng: np.random.Generator,
    n_sweeps: int = 8,
) -> ParticleSet:
    """Create particles from a field cube, conserving count, mass, and IDs.

    ``template`` supplies the particle identities: the output has exactly
    the same ``pid``, ``mass``, ``ptype``, softening and metallicity, with
    positions drawn from the predicted density via Gibbs sampling and
    velocities/internal energy interpolated from the predicted fields —
    this is what a pool node sends back to the main nodes.
    """
    n_particles = len(template)
    if n_particles == 0:
        return template.copy()
    coords = gibbs_sample_positions(grid.field("density"), n_particles, rng, n_sweeps)
    fields = _trilinear_fields(grid, coords)

    out = template.copy()
    cell = grid.cell
    out.pos[:] = grid.center[None, :] + coords * cell - grid.side / 2.0
    out.vel[:, 0] = fields[2]
    out.vel[:, 1] = fields[3]
    out.vel[:, 2] = fields[4]
    out.u[:] = temperature_to_internal_energy(np.maximum(fields[1], 1.0))
    out.dens[:] = np.maximum(fields[0], 0.0)
    # Smoothing guess from the local predicted density: h ~ (m N_ngb / rho)^(1/3).
    with np.errstate(divide="ignore"):
        h_est = (out.mass * 32.0 / np.maximum(out.dens, 1e-12)) ** (1.0 / 3.0)
    out.h[:] = np.clip(h_est, 0.25 * cell, grid.side)
    out.ptype[:] = int(ParticleType.GAS)
    return out
