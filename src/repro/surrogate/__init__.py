"""The supernova surrogate-model pipeline (Sec. 3.3).

End-to-end path, exactly as in the paper:

1. **particle -> voxel** (:mod:`repro.surrogate.voxelize`): gas particles in
   the (60 pc)^3 box around the SN are mapped onto a regular grid with SPH
   kernel weights and Shepard normalization — 5 physical fields (density,
   temperature, v_x, v_y, v_z);
2. **transform** (:mod:`repro.surrogate.transforms`): logarithms tame the
   multi-order-of-magnitude dynamic range; each velocity component is split
   into positive/negative cubes, giving the 8 input channels;
3. **U-Net inference** (:mod:`repro.ml`): predicts the transformed fields
   0.1 Myr after the explosion;
4. **voxel -> particle** (:mod:`repro.surrogate.devoxelize`): Gibbs sampling
   of the predicted density field recreates exactly as many particles as
   came in (mass conservation), with velocities/temperatures interpolated
   from the predicted fields.

:class:`~repro.surrogate.model.SNSurrogate` wires the steps together;
:mod:`repro.surrogate.training_data` builds training pairs from either the
exact Sedov solution (fast) or real SPH blast simulations.
"""

from repro.surrogate.voxelize import (
    RegionIncompleteError,
    VoxelGrid,
    extract_region,
    voxelize_particles,
)
from repro.surrogate.transforms import FieldTransform
from repro.surrogate.devoxelize import gibbs_sample_positions, devoxelize_to_particles
from repro.surrogate.model import SNSurrogate, SedovBlastOracle
from repro.surrogate.training_data import (
    SNTrainingDataset,
    generate_sedov_pair,
    generate_sph_pair,
)

__all__ = [
    "voxelize_particles",
    "extract_region",
    "RegionIncompleteError",
    "VoxelGrid",
    "FieldTransform",
    "gibbs_sample_positions",
    "devoxelize_to_particles",
    "SNSurrogate",
    "SedovBlastOracle",
    "SNTrainingDataset",
    "generate_sedov_pair",
    "generate_sph_pair",
]
