"""Field transforms: the 8-channel logarithmic encoding (Sec. 3.3).

"A general and crucial problem ... is the dynamical range of physical
quantities, which spans several orders of magnitude" — so the paper takes
logarithms, and splits each velocity component into positive/negative cubes
before taking the log of the absolute value.  Encoding (input to the net):

=====  =================================
chan   content
=====  =================================
0      log10(max(density, rho_floor))
1      log10(max(temperature, t_floor))
2,3    log10(|v_x|) for v_x > 0 / v_x < 0 (floor elsewhere)
4,5    same for v_y
6,7    same for v_z
=====  =================================

The *output* of the net stays 5 channels (matching the "5 x 64^3" output of
the paper's Fig. 3): log density, log temperature, and three sign-preserving
``asinh``-scaled velocities (asinh behaves like a signed log at large |v|
and is linear through zero, avoiding the sign-reconstruction ambiguity of a
pos/neg split on the *prediction* side; the substitution is recorded in
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class FieldTransform:
    """Invertible mapping between physical fields and network channels."""

    rho_floor: float = 1e-8     # M_sun/pc^3
    t_floor: float = 1.0        # K
    v_floor: float = 1e-3       # pc/Myr; below this a velocity half is "off"
    v_scale: float = 10.0       # asinh knee for output velocities [pc/Myr]

    # -------------------------------------------------------------- encoding
    def encode(self, fields: np.ndarray) -> np.ndarray:
        """(5, n, n, n) physical fields -> (8, n, n, n) input channels."""
        rho, temp, vx, vy, vz = fields
        chans = [
            np.log10(np.maximum(rho, self.rho_floor)),
            np.log10(np.maximum(temp, self.t_floor)),
        ]
        lf = np.log10(self.v_floor)
        for v in (vx, vy, vz):
            pos = np.where(v > self.v_floor, np.log10(np.maximum(v, self.v_floor)), lf)
            neg = np.where(v < -self.v_floor, np.log10(np.maximum(-v, self.v_floor)), lf)
            chans.extend([pos, neg])
        return np.stack(chans)

    def decode_input(self, chans: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`encode` (used by tests and the field oracle)."""
        rho = 10.0 ** chans[0]
        temp = 10.0 ** chans[1]
        out = [rho, temp]
        lf = np.log10(self.v_floor)
        for c in range(3):
            vpos = np.where(chans[2 + 2 * c] > lf, 10.0 ** chans[2 + 2 * c], 0.0)
            vneg = np.where(chans[3 + 2 * c] > lf, 10.0 ** chans[3 + 2 * c], 0.0)
            out.append(vpos - vneg)
        return np.stack(out)

    # -------------------------------------------------------------- targets
    def encode_target(self, fields: np.ndarray) -> np.ndarray:
        """(5, n, n, n) physical fields -> (5, n, n, n) training targets."""
        rho, temp, vx, vy, vz = fields
        return np.stack(
            [
                np.log10(np.maximum(rho, self.rho_floor)),
                np.log10(np.maximum(temp, self.t_floor)),
                np.arcsinh(vx / self.v_scale),
                np.arcsinh(vy / self.v_scale),
                np.arcsinh(vz / self.v_scale),
            ]
        )

    def decode_target(self, target: np.ndarray) -> np.ndarray:
        """(5, n, n, n) network output -> physical fields."""
        return np.stack(
            [
                10.0 ** target[0],
                10.0 ** target[1],
                np.sinh(target[2]) * self.v_scale,
                np.sinh(target[3]) * self.v_scale,
                np.sinh(target[4]) * self.v_scale,
            ]
        )
