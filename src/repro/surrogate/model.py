"""The end-to-end SN surrogate: particles in, predicted particles out.

:class:`SNSurrogate` is what a pool node runs (Fig. 3): voxelize the
received (60 pc)^3 region, encode to 8 channels, predict the state 0.1 Myr
after the explosion, decode, and Gibbs-sample the result back into exactly
as many particles as came in.

The predictor is pluggable:

* a trained :class:`~repro.ml.serialize.InferenceEngine` / ``UNet3D``
  (the paper's path) — build the engine with ``InferenceEngine.load`` so
  it remembers its export path and the surrogate gains a derivable
  ``kind="model"`` :class:`~repro.serve.SurrogateSpec` (serve workers and
  checkpoints then reload the export instead of pickling weights), or
* :class:`SedovBlastOracle` — the exact Sedov–Taylor field update, which is
  the physics the U-Net learns; it lets the full coupled scheme run and be
  validated without a lengthy training phase, and it provides the training
  labels in :mod:`repro.surrogate.training_data`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fdps.particles import ParticleSet
from repro.sn.sedov import SedovSolution
from repro.surrogate.devoxelize import devoxelize_to_particles
from repro.surrogate.transforms import FieldTransform
from repro.surrogate.voxelize import VoxelGrid, voxelize_particles
from repro.util.constants import SN_ENERGY, internal_energy_to_temperature


@dataclass
class SedovBlastOracle:
    """Analytic field-space SN update: ambient fields -> blast fields.

    Inside the shock radius at ``t_after`` the Sedov profile (scaled to the
    mean ambient density of the input region) replaces density and
    temperature and adds the radial blast velocity; outside, the input
    fields pass through untouched.
    """

    energy: float = SN_ENERGY
    t_after: float = 0.1  # Myr — the paper's prediction horizon
    t_floor: float = 10.0

    def __call__(self, grid: VoxelGrid) -> VoxelGrid:
        rho_in = grid.field("density")
        rho0 = float(np.mean(rho_in))
        rho0 = max(rho0, 1e-10)
        sol = SedovSolution(energy=self.energy, rho0=rho0)
        r = grid.voxel_radii()
        dens_b, vrad_b, u_b = sol.evaluate(r.ravel(), self.t_after)
        dens_b = dens_b.reshape(r.shape)
        vrad_b = vrad_b.reshape(r.shape)
        u_b = u_b.reshape(r.shape)
        inside = r <= sol.shock_radius(self.t_after)

        out = grid.fields.copy()
        out[0] = np.where(inside, np.maximum(dens_b, 1e-12), rho_in)
        t_blast = np.maximum(
            internal_energy_to_temperature(np.maximum(u_b, 1e-12)), self.t_floor
        )
        out[1] = np.where(inside, t_blast, grid.field("temperature"))
        g = grid.voxel_centers_1d()
        xx, yy, zz = np.meshgrid(g, g, g, indexing="ij")
        rs = np.maximum(r, 1e-12)
        for c, comp in enumerate((xx, yy, zz)):
            out[2 + c] = np.where(
                inside, grid.fields[2 + c] + vrad_b * comp / rs, grid.fields[2 + c]
            )
        return VoxelGrid(fields=out, center=grid.center, side=grid.side)


@dataclass
class SNSurrogate:
    """Pool-node predictor: region particles -> particles 0.1 Myr later.

    Parameters
    ----------
    predictor : a callable (8, n, n, n) -> (5, n, n, n) in *transformed*
        space (a UNet3D, an InferenceEngine, ...), or None when using
        ``oracle``.
    oracle : a field-space callable VoxelGrid -> VoxelGrid (e.g.
        :class:`SedovBlastOracle`).  Exactly one of predictor/oracle must be
        set.
    n_grid / side : the voxelization (paper: 64 and 60 pc).
    """

    predictor: object | None = None
    oracle: object | None = None
    n_grid: int = 64
    side: float = 60.0
    transform: FieldTransform = field(default_factory=FieldTransform)
    gibbs_sweeps: int = 8

    def __post_init__(self) -> None:
        if (self.predictor is None) == (self.oracle is None):
            raise ValueError("provide exactly one of predictor or oracle")

    # ------------------------------------------------------------- field path
    def predict_fields(self, grid: VoxelGrid) -> VoxelGrid:
        """Field-space prediction (both branches used by the benchmarks)."""
        if self.oracle is not None:
            return self.oracle(grid)
        chans = self.transform.encode(grid.fields)
        raw = self.predictor(chans)  # type: ignore[operator]
        fields = self.transform.decode_target(np.asarray(raw))
        return VoxelGrid(fields=fields, center=grid.center, side=grid.side)

    def predict_fields_batch(
        self, grids: list[VoxelGrid], pad_to: int | None = None
    ) -> list[VoxelGrid]:
        """Field-space prediction for a coalesced batch of regions.

        The U-Net path stacks the encoded channels into one
        ``(B, 8, n, n, n)`` tensor and runs a single batched forward pass
        (``predict_batch`` / ``forward_batch`` on the predictor, falling
        back to a per-sample loop for plain callables).  ``pad_to`` zero-pads
        the batch axis to a fixed size — shape-stable inputs for engines
        that specialize per shape — and the padding rows are dropped before
        decoding.  The oracle path is elementwise per grid, so it simply
        loops.
        """
        if not grids:
            return []
        if self.oracle is not None:
            return [self.oracle(g) for g in grids]
        chans = np.stack([self.transform.encode(g.fields) for g in grids])
        batched = hasattr(self.predictor, "predict_batch") or hasattr(
            self.predictor, "forward_batch"
        )
        # Padding only helps engines that see the whole batch at once; the
        # per-sample fallback would just burn forward passes on zero grids.
        if batched and pad_to is not None and pad_to > len(grids):
            pad = np.zeros((pad_to - len(grids), *chans.shape[1:]))
            chans = np.concatenate([chans, pad], axis=0)
        if hasattr(self.predictor, "predict_batch"):
            raw = self.predictor.predict_batch(chans)
        elif hasattr(self.predictor, "forward_batch"):
            raw = self.predictor.forward_batch(chans)
        else:
            raw = np.stack([self.predictor(c) for c in chans])  # type: ignore[operator]
        raw = np.asarray(raw)[: len(grids)]
        return [
            VoxelGrid(
                fields=self.transform.decode_target(r), center=g.center, side=g.side
            )
            for r, g in zip(raw, grids, strict=True)
        ]

    # ---------------------------------------------------------- particle path
    def predict_particles(
        self,
        region: ParticleSet,
        center: np.ndarray,
        rng: np.random.Generator,
    ) -> ParticleSet:
        """Full pool-node pipeline on one SN region.

        The returned set has the same particle count, IDs and masses as the
        input (mass conservation by construction); positions, velocities and
        internal energies carry the predicted post-SN state.
        """
        if len(region) == 0:
            return region.copy()
        grid_in = voxelize_particles(region, center, self.side, self.n_grid)
        grid_out = self.predict_fields(grid_in)
        return devoxelize_to_particles(
            grid_out, region, rng, n_sweeps=self.gibbs_sweeps
        )

    def predict_batch(
        self,
        regions: list[ParticleSet],
        centers: list[np.ndarray],
        rngs: list[np.random.Generator],
        pad_to: int | None = None,
    ) -> list[ParticleSet]:
        """Batched pool-node pipeline over coalesced SN regions.

        Voxelization and the Gibbs devoxelization are independent per
        region; the predictor forward pass is shared through
        :meth:`predict_fields_batch`.  Each region draws from its *own*
        generator (per-event seeding, see :func:`repro.serve.wire
        .event_rng`), so the output for a region is identical whether it is
        predicted alone, in any batch, or in any order — empty regions pass
        through untouched, exactly as in :meth:`predict_particles`.
        """
        if not (len(regions) == len(centers) == len(rngs)):
            raise ValueError("regions, centers and rngs must have equal length")
        out: list[ParticleSet | None] = [None] * len(regions)
        live = [i for i, r in enumerate(regions) if len(r) > 0]
        grids = [
            voxelize_particles(regions[i], centers[i], self.side, self.n_grid)
            for i in live
        ]
        for i, grid_out in zip(live, self.predict_fields_batch(grids, pad_to=pad_to), strict=True):
            out[i] = devoxelize_to_particles(
                grid_out, regions[i], rngs[i], n_sweeps=self.gibbs_sweeps
            )
        for i, r in enumerate(regions):
            if out[i] is None:
                out[i] = r.copy()
        return out  # type: ignore[return-value]
