"""The end-to-end SN surrogate: particles in, predicted particles out.

:class:`SNSurrogate` is what a pool node runs (Fig. 3): voxelize the
received (60 pc)^3 region, encode to 8 channels, predict the state 0.1 Myr
after the explosion, decode, and Gibbs-sample the result back into exactly
as many particles as came in.

The predictor is pluggable:

* a trained :class:`~repro.ml.serialize.InferenceEngine` / ``UNet3D``
  (the paper's path), or
* :class:`SedovBlastOracle` — the exact Sedov–Taylor field update, which is
  the physics the U-Net learns; it lets the full coupled scheme run and be
  validated without a lengthy training phase, and it provides the training
  labels in :mod:`repro.surrogate.training_data`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fdps.particles import ParticleSet
from repro.sn.sedov import SedovSolution
from repro.surrogate.devoxelize import devoxelize_to_particles
from repro.surrogate.transforms import FieldTransform
from repro.surrogate.voxelize import VoxelGrid, voxelize_particles
from repro.util.constants import SN_ENERGY, internal_energy_to_temperature


@dataclass
class SedovBlastOracle:
    """Analytic field-space SN update: ambient fields -> blast fields.

    Inside the shock radius at ``t_after`` the Sedov profile (scaled to the
    mean ambient density of the input region) replaces density and
    temperature and adds the radial blast velocity; outside, the input
    fields pass through untouched.
    """

    energy: float = SN_ENERGY
    t_after: float = 0.1  # Myr — the paper's prediction horizon
    t_floor: float = 10.0

    def __call__(self, grid: VoxelGrid) -> VoxelGrid:
        rho_in = grid.field("density")
        rho0 = float(np.mean(rho_in))
        rho0 = max(rho0, 1e-10)
        sol = SedovSolution(energy=self.energy, rho0=rho0)
        r = grid.voxel_radii()
        dens_b, vrad_b, u_b = sol.evaluate(r.ravel(), self.t_after)
        dens_b = dens_b.reshape(r.shape)
        vrad_b = vrad_b.reshape(r.shape)
        u_b = u_b.reshape(r.shape)
        inside = r <= sol.shock_radius(self.t_after)

        out = grid.fields.copy()
        out[0] = np.where(inside, np.maximum(dens_b, 1e-12), rho_in)
        t_blast = np.maximum(
            internal_energy_to_temperature(np.maximum(u_b, 1e-12)), self.t_floor
        )
        out[1] = np.where(inside, t_blast, grid.field("temperature"))
        g = grid.voxel_centers_1d()
        xx, yy, zz = np.meshgrid(g, g, g, indexing="ij")
        rs = np.maximum(r, 1e-12)
        for c, comp in enumerate((xx, yy, zz)):
            out[2 + c] = np.where(
                inside, grid.fields[2 + c] + vrad_b * comp / rs, grid.fields[2 + c]
            )
        return VoxelGrid(fields=out, center=grid.center, side=grid.side)


@dataclass
class SNSurrogate:
    """Pool-node predictor: region particles -> particles 0.1 Myr later.

    Parameters
    ----------
    predictor : a callable (8, n, n, n) -> (5, n, n, n) in *transformed*
        space (a UNet3D, an InferenceEngine, ...), or None when using
        ``oracle``.
    oracle : a field-space callable VoxelGrid -> VoxelGrid (e.g.
        :class:`SedovBlastOracle`).  Exactly one of predictor/oracle must be
        set.
    n_grid / side : the voxelization (paper: 64 and 60 pc).
    """

    predictor: object | None = None
    oracle: object | None = None
    n_grid: int = 64
    side: float = 60.0
    transform: FieldTransform = field(default_factory=FieldTransform)
    gibbs_sweeps: int = 8

    def __post_init__(self) -> None:
        if (self.predictor is None) == (self.oracle is None):
            raise ValueError("provide exactly one of predictor or oracle")

    # ------------------------------------------------------------- field path
    def predict_fields(self, grid: VoxelGrid) -> VoxelGrid:
        """Field-space prediction (both branches used by the benchmarks)."""
        if self.oracle is not None:
            return self.oracle(grid)
        chans = self.transform.encode(grid.fields)
        raw = self.predictor(chans)  # type: ignore[operator]
        fields = self.transform.decode_target(np.asarray(raw))
        return VoxelGrid(fields=fields, center=grid.center, side=grid.side)

    # ---------------------------------------------------------- particle path
    def predict_particles(
        self,
        region: ParticleSet,
        center: np.ndarray,
        rng: np.random.Generator,
    ) -> ParticleSet:
        """Full pool-node pipeline on one SN region.

        The returned set has the same particle count, IDs and masses as the
        input (mass conservation by construction); positions, velocities and
        internal energies carry the predicted post-SN state.
        """
        if len(region) == 0:
            return region.copy()
        grid_in = voxelize_particles(region, center, self.side, self.n_grid)
        grid_out = self.predict_fields(grid_in)
        return devoxelize_to_particles(
            grid_out, region, rng, n_sweeps=self.gibbs_sweeps
        )
