"""Particle -> voxel mapping with SPH kernel weights and Shepard normalization.

The paper (Sec. 3.3): "mapping gas particles into voxels using the SPH
kernel convolution and the Shepard algorithm".  Concretely:

* **density** is the standard SPH estimate accumulated on voxel centres,
  rho(x_v) = sum_j m_j W(|x_v - x_j|, h_j);
* **intensive fields** (temperature, velocity components) are
  Shepard-normalized kernel averages,
  A(x_v) = sum_j w_j A_j / sum_j w_j with w_j = W(|x_v - x_j|, h_j),
  which reproduces constants exactly regardless of particle sampling;
* voxels no particle kernel reaches fall back to nearest-particle values so
  the grid never contains undefined entries.

The scatter is vectorized per stencil offset: every particle deposits into
the voxels of a (2K+1)^3 cube around it (K from the largest kernel).  The
per-offset contributions are collected and reduced with one
``np.bincount`` per field — bit-identical to the sequential ``np.add.at``
chain it replaces (both accumulate contributions per voxel left-to-right
in deposit order, starting from zero) but without the buffered
per-element scatter on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fdps.particles import ParticleSet, ParticleType
from repro.sph.kernels import DEFAULT_KERNEL, SPHKernel
from repro.util.constants import internal_energy_to_temperature

#: Order of the 5 physical fields in the voxel cube.
FIELD_NAMES = ("density", "temperature", "vx", "vy", "vz")


@dataclass
class VoxelGrid:
    """A (5, n, n, n) cube of physical fields over a cubic region."""

    fields: np.ndarray          # (5, n, n, n)
    center: np.ndarray          # (3,)
    side: float

    @property
    def n_grid(self) -> int:
        return self.fields.shape[1]

    @property
    def cell(self) -> float:
        return self.side / self.n_grid

    def voxel_centers_1d(self) -> np.ndarray:
        n = self.n_grid
        return (np.arange(n) + 0.5) * self.cell - self.side / 2.0

    def voxel_radii(self) -> np.ndarray:
        """(n, n, n) distances of voxel centres from the region centre."""
        g = self.voxel_centers_1d()
        xx, yy, zz = np.meshgrid(g, g, g, indexing="ij")
        return np.sqrt(xx**2 + yy**2 + zz**2)

    def field(self, name: str) -> np.ndarray:
        return self.fields[FIELD_NAMES.index(name)]


def voxelize_particles(
    ps: ParticleSet,
    center: np.ndarray,
    side: float,
    n_grid: int = 64,
    kernel: SPHKernel = DEFAULT_KERNEL,
    gas_only: bool = True,
) -> VoxelGrid:
    """Deposit gas particles onto a (5, n, n, n) field cube.

    Parameters mirror the paper: ``side = 60`` pc, ``n_grid = 64``.
    Particles outside the box still contribute to edge voxels their kernels
    overlap.
    """
    center = np.asarray(center, dtype=np.float64)
    if gas_only:
        sel = ps.where_type(ParticleType.GAS)
        pos = ps.pos[sel]
        mass = ps.mass[sel]
        vel = ps.vel[sel]
        h = ps.h[sel]
        temp = internal_energy_to_temperature(ps.u[sel])
    else:
        pos, mass, vel, h = ps.pos, ps.mass, ps.vel, ps.h
        temp = internal_energy_to_temperature(ps.u)

    n = n_grid
    cell = side / n
    # Fractional voxel coordinates of each particle (voxel centres at
    # integer coordinates 0..n-1).
    fc = (pos - center[None, :] + side / 2.0) / cell - 0.5
    # Effective kernel radius: at least one cell so every particle reaches
    # its nearest voxel centre even when h is unresolved by the grid.
    h_eff = np.maximum(np.asarray(h, dtype=np.float64), 1.001 * cell)
    k_max = int(np.ceil(h_eff.max() / cell))
    base = np.rint(fc).astype(np.int64)

    values = np.stack([temp, vel[:, 0], vel[:, 1], vel[:, 2]])

    # Collect (voxel, contribution) pairs per offset, then reduce each field
    # with a single np.bincount.  bincount accumulates per voxel in input
    # order starting from zero — exactly the order the per-offset np.add.at
    # chain used — so the result is bit-identical while avoiding the
    # buffered per-element scatter on the hot path.
    flat_parts: list[np.ndarray] = []
    w_parts: list[np.ndarray] = []
    mw_parts: list[np.ndarray] = []
    val_parts: list[list[np.ndarray]] = [[] for _ in range(4)]

    offsets = range(-k_max, k_max + 1)
    for dx in offsets:
        for dy in offsets:
            for dz in offsets:
                vox = base + np.array([dx, dy, dz])
                ok = np.all((vox >= 0) & (vox < n), axis=1)
                if not ok.any():
                    continue
                d = (vox - fc) * cell
                r = np.sqrt(np.einsum("ij,ij->i", d, d))
                w = kernel.value(r, h_eff)
                live = ok & (w > 0)
                if not live.any():
                    continue
                flat_parts.append((vox[live, 0] * n + vox[live, 1]) * n + vox[live, 2])
                w_parts.append(w[live])
                mw_parts.append(mass[live] * w[live])
                for f in range(4):
                    val_parts[f].append(w[live] * values[f, live])

    size = n * n * n
    if flat_parts:
        flat_all = np.concatenate(flat_parts)
        rho = np.bincount(flat_all, weights=np.concatenate(mw_parts), minlength=size)
        wsum = np.bincount(flat_all, weights=np.concatenate(w_parts), minlength=size)
        acc = np.stack(
            [
                np.bincount(flat_all, weights=np.concatenate(val_parts[f]), minlength=size)
                for f in range(4)
            ]
        )
    else:
        rho = np.zeros(size)
        wsum = np.zeros(size)
        acc = np.zeros((4, size))
    rho = rho.reshape(n, n, n)
    wsum = wsum.reshape(n, n, n)
    acc = acc.reshape(4, n, n, n)  # temperature + 3 velocities

    covered = wsum > 0
    for f in range(4):
        acc[f][covered] /= wsum[covered]

    # Fill uncovered voxels from their nearest particle.  At production
    # grids (64^3) a sparsely-sampled region can leave most of the 262k
    # voxels uncovered, so this must not materialize the (n_holes,
    # n_particles) distance matrix — a KD-tree query is O((n+m) log n) and
    # byte-for-byte tiny, with a chunked brute-force fallback when scipy is
    # unavailable.
    if not covered.all():
        g = (np.arange(n) + 0.5) * cell - side / 2.0
        xx, yy, zz = np.meshgrid(g, g, g, indexing="ij")
        holes = np.flatnonzero(~covered.ravel())
        hx = np.column_stack([xx.ravel()[holes], yy.ravel()[holes], zz.ravel()[holes]])
        if len(pos):
            nearest = _nearest_particle(hx + center[None, :], pos)
            for f, vals in enumerate(values):
                acc[f].ravel()[holes] = vals[nearest]

    fields = np.concatenate([rho[None], acc], axis=0)
    return VoxelGrid(fields=fields, center=center, side=float(side))


def _nearest_particle(points: np.ndarray, pos: np.ndarray) -> np.ndarray:
    """Index of the particle nearest each query point."""
    try:
        from scipy.spatial import cKDTree
    except ImportError:
        # Chunked brute force: bounded temporaries instead of one
        # (n_points, n_particles) matrix.
        out = np.empty(len(points), dtype=np.int64)
        chunk = max(1, int(4e6) // max(len(pos), 1))
        for lo in range(0, len(points), chunk):
            d2 = (
                (points[lo:lo + chunk, None, :] - pos[None, :, :]) ** 2
            ).sum(axis=2)
            out[lo:lo + chunk] = d2.argmin(axis=1)
        return out
    return cKDTree(pos).query(points, workers=-1)[1]


class RegionIncompleteError(ValueError):
    """An SN region cube extends past the caller's domain slab.

    Raised by :func:`extract_region` when a ``domain`` is declared, the
    cube crosses one of its *finite* faces, and no ``ghosts`` were
    supplied: the local particle set cannot contain every gas particle of
    the region, so extracting it silently would truncate the surrogate's
    input.  Multi-rank callers fetch the missing particles first (see
    ``DistributedGravity.exchange_region_ghosts``) and pass them as
    ``ghosts``.
    """


def extract_region(
    ps: ParticleSet,
    center: np.ndarray,
    side: float,
    index=None,
    domain: tuple[np.ndarray, np.ndarray] | None = None,
    ghosts: ParticleSet | None = None,
) -> tuple[ParticleSet, np.ndarray]:
    """Gas particles inside the (side)^3 cube around ``center``.

    Returns the extracted copy and the indices into ``ps`` — this is step
    (2) of the Sec. 3.2 loop ("pick up particles in the (60 pc)^3 box around
    the exploding star").  ``index`` (a :class:`repro.accel.SpatialIndex`
    whose cached grid scopes this particle set) answers the cube query from
    the binned cells instead of a full O(N) scan; the exact distance-and-type
    filter below makes the result identical either way.

    ``domain`` declares the (lo, hi) slab that ``ps`` is complete for (a
    rank's domain box; ±inf bounds mark outer faces).  A cube that crosses
    a finite face needs particles this rank doesn't own: with ``ghosts``
    (remote gas pulled across) the region is ghost-filled and pid-sorted so
    its content and order match a single-rank extraction from the global
    set; without, :class:`RegionIncompleteError` is raised rather than
    silently truncating.  The returned index array always refers to local
    particles only — ghost rows have no index into ``ps``.
    """
    center = np.asarray(center, dtype=np.float64)
    half = side / 2.0
    if domain is not None and ghosts is None:
        lo, hi = (np.asarray(b, dtype=np.float64) for b in domain)
        # ±inf faces are the global boundary — nothing lives beyond them,
        # so the comparison is False there and only interior faces raise.
        if bool(np.any(center - half < lo) or np.any(center + half > hi)):
            raise RegionIncompleteError(
                f"region cube (center {center.tolist()}, side {side}) crosses "
                "a finite domain face; pass the remote gas as `ghosts` or "
                "extract from the global particle set"
            )
    cand = None
    if index is not None:
        cand = index.query_box(center - half, center + half)
    if cand is None:
        inside = np.all(np.abs(ps.pos - center[None, :]) <= half, axis=1)
        inside &= ps.where_type(ParticleType.GAS)
        idx = np.flatnonzero(inside)
    else:
        inside = np.all(np.abs(ps.pos[cand] - center[None, :]) <= half, axis=1)
        inside &= ps.where_type(ParticleType.GAS)[cand]
        idx = np.sort(cand[inside])
    region = ps.select(idx)
    if ghosts is not None and len(ghosts):
        g_in = np.all(np.abs(ghosts.pos - center[None, :]) <= half, axis=1)
        g_in &= ghosts.where_type(ParticleType.GAS)
        g_idx = np.flatnonzero(g_in)
        if g_idx.size:
            region = region.append(ghosts.select(g_idx))
            # pid order == global index order: exactly what a single-rank
            # extraction from the (pid-sorted) global set would produce.
            region.reorder(np.argsort(region.pid, kind="stable"))
    return region, idx
