"""The checker: walk files, run every applicable rule, apply suppressions."""

from __future__ import annotations

import os
from pathlib import Path

from repro.lint.base import ModuleContext
from repro.lint.findings import Finding, sort_findings
from repro.lint.registry import all_rules
from repro.lint.suppressions import apply_suppressions, parse_suppressions

import repro.lint.rules  # noqa: F401  (registers the builtin rules)


def module_name_for(path: Path) -> str:
    """Dotted module name for a source file.

    ``.../src/repro/serve/shm.py`` -> ``repro.serve.shm``;  a path with no
    ``repro`` package root falls back to the stem (fixture files in tests
    pass an explicit module instead).
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("repro",):
        if anchor in parts:
            return ".".join(parts[parts.index(anchor):])
    return parts[-1] if parts else ""


def lint_source(
    source: str,
    module: str,
    path: str = "<string>",
    select: list[str] | None = None,
) -> list[Finding]:
    """Lint one module's source text (the fixture-test entry point)."""
    ctx = ModuleContext.parse(path=path, module=module, source=source)
    raw: list[Finding] = []
    active: set[str] = set()
    for rule in all_rules(select):
        if rule.applies_to(module):
            active.add(rule.name)
            raw.extend(rule.check(ctx))
    return sort_findings(
        apply_suppressions(raw, parse_suppressions(source), path, active_rules=active)
    )


def iter_python_files(paths: list[str]) -> list[Path]:
    out: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    return out


def lint_paths(paths: list[str], select: list[str] | None = None) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    findings: list[Finding] = []
    cwd = Path(os.getcwd())
    for file in iter_python_files(paths):
        try:
            display = str(file.relative_to(cwd))
        except ValueError:
            display = str(file)
        source = file.read_text()
        try:
            findings.extend(
                lint_source(
                    source, module_name_for(file), path=display, select=select
                )
            )
        except SyntaxError as exc:
            findings.append(Finding(
                rule="parse-error", path=display,
                line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                message=f"could not parse: {exc.msg}",
            ))
    return sort_findings(findings)
