"""Per-line ``# repro-lint: disable=<rule>[,<rule>...]`` suppressions.

A suppression comment silences findings of the named rules *on its own
line* (put it on the line the finding points at — for a multi-line
statement that is the statement's first line).  ``disable=<all>`` (the
literal word ``all``) silences every rule on that line.  Prose may follow
the rule list after ``--``::

    from x import y  # repro-lint: disable=<rule> -- reason it is intentional

Suppressions that silence nothing are themselves reported (rule
``unused-suppression``) so stale annotations cannot rot in the tree; that
meta-finding is deliberately not suppressible.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.lint.findings import Finding

UNUSED_RULE = "unused-suppression"

_PATTERN = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")


def _comment_tokens(source: str) -> list[tuple[int, str]]:
    """(lineno, text) for every real COMMENT token.

    Tokenizing (rather than regexing raw lines) is what keeps the syntax
    *mentioned* in a docstring — like the examples in this module's own
    docstring — from acting as a live suppression.
    """
    out: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable tail: the checker reports the SyntaxError itself
    return out


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number (1-based) -> set of suppressed rule names."""
    out: dict[int, set[str]] = {}
    for lineno, comment in _comment_tokens(source):
        m = _PATTERN.search(comment)
        if not m:
            continue
        spec = m.group(1).split("--")[0]  # cut trailing "-- reason" prose
        rules = {tok.strip() for tok in spec.split(",")}
        out[lineno] = {r for r in rules if r}
    return out


def apply_suppressions(
    findings: list[Finding],
    suppressions: dict[int, set[str]],
    path: str,
    active_rules: set[str] | None = None,
) -> list[Finding]:
    """Drop suppressed findings; report suppressions that matched nothing.

    ``active_rules`` is the set of rule names that actually ran on this
    module (None = everything ran).  A suppression naming a rule outside
    that set is not reported unused — under ``--select`` or on a module a
    rule doesn't apply to, it had no chance to match.
    """
    used: set[tuple[int, str]] = set()
    kept: list[Finding] = []
    for f in findings:
        rules = suppressions.get(f.line, set())
        if f.rule in rules:
            used.add((f.line, f.rule))
        elif "all" in rules:
            used.add((f.line, "all"))
        else:
            kept.append(f)
    for lineno, rules in sorted(suppressions.items()):
        for rule in sorted(rules):
            if (lineno, rule) in used:
                continue
            if active_rules is not None and rule != "all" and rule not in active_rules:
                continue
            kept.append(
                Finding(
                    rule=UNUSED_RULE,
                    path=path,
                    line=lineno,
                    col=1,
                    message=(
                        f"suppression 'disable={rule}' silences nothing on "
                        "this line; remove it"
                    ),
                )
            )
    return kept
