"""Findings: what a rule reports and how it is rendered.

A :class:`Finding` pins one invariant violation to a (file, line, column)
and names the rule that produced it, so the CLI can render it ruff-style
(``path:line:col: rule: message``) or as a JSON record for tooling.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=Finding.sort_key)
