"""``python -m repro.lint`` — run the repo-invariant checker from CI/hooks.

Exit status: 0 when the tree is clean, 1 when any finding (including an
unused suppression) survives, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.checker import lint_paths
from repro.lint.registry import get_rule, registered_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based checker for this repo's determinism, ledger, "
        "backend-purity and shm-lease invariants (see the repro.lint "
        "package docstring for the rule catalog).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for name in registered_rules():
            print(f"{name}: {get_rule(name).description}")
        return 0
    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
        unknown = [s for s in select if s not in registered_rules()]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    findings = lint_paths(args.paths, select=select)
    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
        n = len(findings)
        print(f"repro.lint: {n} finding{'s' if n != 1 else ''}"
              if n else "repro.lint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
