"""repro.lint — AST-based checker for this repo's contract invariants.

The codebase's headline guarantees are *cross-cutting*: bit-identical
physics across compute backends, transports, batch compositions and worker
counts; exact :class:`~repro.fdps.comm.SimComm` byte ledgers; a zero-copy
shm slot-lease protocol that never leaks.  Runtime tests catch violations
only when the right configuration happens to run — a global RNG call
surfaces as a *flaky* parity failure weeks later.  This package holds the
line at lint time instead: ``python -m repro.lint src`` runs in CI next to
ruff and fails on the whole violation class, deterministically.

Repo invariants (the rule catalog)
----------------------------------

``determinism``
    No ``np.random`` module-state calls, stdlib ``random``, or absolute
    clocks (``time.time``, ``datetime.now``) in
    ``repro.{core,physics,sph,gravity,sn,surrogate,ml,serve,obs}``.  Every draw
    flows from a seeded ``np.random.Generator`` or
    :func:`repro.serve.wire.event_rng`; wall-clock metrics use
    ``perf_counter``/``monotonic``.  Motivated by the cross-backend /
    cross-transport parity suites (``tests/accel/test_backends.py``,
    ``tests/serve``) — the paper's surrogate-coupling correctness claim.

``ledger-label``
    Every comm-crossing call site (``send``, ``alltoallv``/``_3d``,
    ``allgather``, ``allreduce_sum``) passes an explicit ``label=`` so its
    bytes land in a deliberately chosen :class:`CommStats` row.  Motivated
    by the PR 2 exchange-ledger exactness tests and the ``pool_p2p``
    accounting of PR 4/5.

``import-gating``
    Optional toolchains (``numba``, and ``cupy``/``triton`` when the GPU
    backend lands) are imported only inside try/except ImportError scopes,
    and only in ``repro.accel.backends.*`` / ``repro.pikg.codegen``.
    CPU-only CI must import every module.

``backend-purity``
    Backend modules import neither sibling backends (``base`` excepted)
    nor ``repro.core``/``repro.serve``.  Backends stay independently
    loadable leaves of the registry; the sanctioned exception (inheriting
    the always-available ``numpy`` reference implementation) carries an
    inline suppression with its reason.

``hotpath-hygiene``
    No ``np.add.at`` or per-particle ``range(len(...))`` Python loops in
    kernel-owning modules (``repro.sph``, ``repro.gravity``,
    ``repro.surrogate.voxelize``, ``repro.analysis.maps``) outside
    ``backends/``.  Motivated by the PR 3 kernel benchmarks: bincount
    reductions are order-identical and ~10x faster.

``lease-pairing``
    In ``repro.serve.shm`` every slot lease (``_free.pop()``) reaches a
    release (``_free.extend``/``append`` on a ``finally`` edge) or a
    handoff into a lease registry (``_batch_slots``, or ``_zombies`` for
    timed-out batches whose worker may still touch the slot); takeovers
    from either registry release or hand off the same way.  Motivated by
    the worker-exception slot-reclaim test in ``tests/serve/test_shm.py``
    and the fault-recovery zombie protocol of ISSUE 8.

``silent-except``
    No bare ``except`` / ``except Exception`` / ``BaseException`` handler
    in ``repro`` may swallow the failure without a trace: it must
    re-raise, log, or use the bound exception (e.g. ship it back over a
    result queue).  Narrow tuples pass.  Motivated by the fault-tolerance
    work: an invisible swallow is a fault the ``ServiceMetrics`` counters
    and the chaos suite can never pin.

``wire-symmetry``
    Every wire encoder class defines ``from_buffer``, and the constant
    header slots written by ``encode_into`` equal those read by
    ``from_buffer`` (slots validated by a shared ``*check_header*`` helper
    count as read).  Motivated by the PR 5 in-place shm encoding, where a
    header drift corrupts silently.

``rng-plumbing``
    Public functions that build a generator take the seed from their
    caller — an ``rng``/``seed``-like parameter or a seed-carrying
    attribute of ``self`` — so the parity suites can pin every draw.

``span-pairing``
    Every ``tracer.span(...)`` handle is a ``with`` context expression (or
    an assigned handle closed in a ``finally`` block), so a span record
    can never leak and the tracer's nesting stack cannot corrupt.  The
    companion clock invariant — ``repro.obs`` timestamps are
    monotonic-epoch only — rides the ``determinism`` rule, whose scope
    includes ``repro.obs``.  Motivated by the ISSUE 9 observability
    subsystem: traces must stay comparable across runs and complete under
    exceptions.

Suppressions
------------

Silence one finding with a comment on the flagged line — the syntax is
``repro-lint: disable=<rule>[,<rule>...]`` with optional prose after
``--``, e.g. on a sanctioned sibling-backend import::

    from ... import NumpyBackend  # repro-lint: disable=<rule> -- reason

Multiple rules separate with commas; the literal rule name ``all``
silences the line entirely.
A suppression that silences nothing is itself an error
(``unused-suppression``), so annotations cannot go stale.

Running
-------

``python -m repro.lint src`` (exit 0 clean / 1 findings), ``--format json``
for tooling, ``--list-rules`` for the catalog, ``--select rule1,rule2`` to
narrow.  ``tools/static_analysis.sh`` bundles it with ruff and the mypy
subset as the pre-commit / CI entry point.  New rules follow the
``repro.accel.backends`` pattern: subclass :class:`~repro.lint.base.Rule`,
decorate with :func:`~repro.lint.registry.register_rule`, import the module
from :mod:`repro.lint.rules`.
"""

from repro.lint.base import ModuleContext, Rule
from repro.lint.checker import lint_paths, lint_source, module_name_for
from repro.lint.findings import Finding
from repro.lint.registry import all_rules, get_rule, register_rule, registered_rules
from repro.lint.suppressions import UNUSED_RULE

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "UNUSED_RULE",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "register_rule",
    "registered_rules",
]
