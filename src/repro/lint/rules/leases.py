"""Shm slot-lease pairing: leases release on success *and* exception edges.

The zero-copy transport (PR 5) hands shared-memory ring slots to in-flight
batches: ``dispatch`` pops indices off the free stack, ``_convert`` returns
them when the batch lands.  A leaked slot is not a crash — it is a ring
that quietly shrinks until every request takes the pickled fallback path
and the "zero-copy" benchmark numbers stop being zero-copy (the exact
regression ``tests/serve/test_shm.py`` pins for the worker-exception path).

The rule is an intraprocedural walk over each function in
``repro.serve.shm``:

* a function that *acquires* (``<x>._free.pop()``) must either release in
  the same function or hand the lease off to a lease registry (assign into
  ``<x>._batch_slots[...]`` or, for timed-out batches whose worker may
  still touch the slot, ``<x>._zombies[...]``);
* a function that *releases* (``<x>._free.extend/append``) after acquiring
  or taking over leases (``<x>._batch_slots.pop(...)`` /
  ``<x>._zombies.pop(...)``) must do so on a ``finally`` edge, so the
  exception path releases too;
* a takeover with neither a release nor a handoff to the other registry is
  a leak.

The ``try/finally`` requirement is the CFG bit: a release reached only on
the fall-through edge misses every raising path through the function.
"""

from __future__ import annotations

import ast

from repro.lint.base import ModuleContext, Rule, dotted_name, in_finally_block
from repro.lint.findings import Finding
from repro.lint.registry import register_rule

#: Attribute names that define the lease protocol in repro.serve.shm.
FREE_STACK_ATTR = "_free"
INFLIGHT_REGISTRY_ATTR = "_batch_slots"
#: Leases of timed-out batches park here until provably released (fault
#: recovery, ISSUE 8) — same pairing discipline as the in-flight registry.
ZOMBIE_REGISTRY_ATTR = "_zombies"

_REGISTRY_ATTRS = (INFLIGHT_REGISTRY_ATTR, ZOMBIE_REGISTRY_ATTR)


def _attr_chain_contains(node: ast.AST, attr: str) -> bool:
    chain = dotted_name(node)
    return chain is not None and attr in chain.split(".")


@register_rule
class LeasePairingRule(Rule):
    """R6: every acquired shm slot lease reaches a release or a handoff."""

    name = "lease-pairing"
    description = (
        "slot leases (_free.pop) must be released (_free.extend/append in a "
        "finally) or handed to _batch_slots/_zombies; takeovers must release "
        "in a finally or hand off"
    )
    scope_prefixes = ("repro.serve.shm",)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.extend(self._check_function(ctx, node))
        return out

    def _check_function(
        self, ctx: ModuleContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[Finding]:
        acquires: list[ast.Call] = []
        releases: list[ast.Call] = []
        takeovers: list[ast.Call] = []
        handoffs: list[ast.AST] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                owner = node.func.value
                if node.func.attr == "pop" and _attr_chain_contains(owner, FREE_STACK_ATTR):
                    acquires.append(node)
                elif node.func.attr in ("extend", "append") and _attr_chain_contains(
                    owner, FREE_STACK_ATTR
                ):
                    releases.append(node)
                elif node.func.attr == "pop" and any(
                    _attr_chain_contains(owner, attr) for attr in _REGISTRY_ATTRS
                ):
                    takeovers.append(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and any(
                        _attr_chain_contains(target.value, attr)
                        for attr in _REGISTRY_ATTRS
                    ):
                        handoffs.append(node)

        out: list[Finding] = []
        if acquires and not releases and not handoffs:
            out.append(ctx.finding(
                acquires[0], self.name,
                f"'{fn.name}' pops a slot lease but neither releases it nor "
                f"records it in {INFLIGHT_REGISTRY_ATTR}/"
                f"{ZOMBIE_REGISTRY_ATTR}; the slot leaks",
            ))
        if (acquires or takeovers) and releases:
            if not any(in_finally_block(r) for r in releases):
                out.append(ctx.finding(
                    releases[0], self.name,
                    f"'{fn.name}' releases slot leases outside any finally "
                    "block; an exception on the way leaks every leased slot",
                ))
        if takeovers and not releases and not handoffs:
            out.append(ctx.finding(
                takeovers[0], self.name,
                f"'{fn.name}' takes over leases from a lease registry but "
                "neither releases them nor hands them to the other registry",
            ))
        return out
