"""Span hygiene: every opened span must be guaranteed to close.

A :meth:`repro.obs.trace.Tracer.span` handle records *nothing* until its
``__exit__`` runs — an un-entered or leaked handle silently drops the
measurement AND corrupts the tracer's nesting stack for every span that
follows.  The repo-wide contract is therefore structural: ``.span(...)``
is either the context expression of a ``with`` statement or a handle whose
closing is pinned in a ``finally`` block.  ``span_at``/``instant``/
``count``/``gauge`` record immediately and need no pairing.

The absolute-clock half of the ``repro.obs`` contract (trace timestamps
are monotonic-epoch only, so two runs' traces are comparable and the
determinism guarantee extends to traced runs) is enforced by listing
``repro.obs`` in :data:`repro.lint.rules.determinism.DETERMINISTIC_MODULES`
— the existing R1 clock clause covers it.
"""

from __future__ import annotations

import ast

from repro.lint.base import ModuleContext, Rule, dotted_name, enclosing_function
from repro.lint.findings import Finding
from repro.lint.registry import register_rule

#: Receiver name tails that identify a tracer object.  Heuristic on
#: purpose: the repo's convention is to call the variable/attribute holding
#: a tracer exactly this (``tracer``, ``self.tracer``, ``self._tracer``).
_TRACER_TAILS = {"tracer", "_tracer"}


def _is_tracer_span_call(node: ast.Call) -> bool:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "span"):
        return False
    receiver = dotted_name(func.value)
    if receiver is None:
        return False
    return receiver.split(".")[-1] in _TRACER_TAILS


def _is_with_context(node: ast.Call) -> bool:
    parent = getattr(node, "parent", None)
    return isinstance(parent, ast.withitem) and parent.context_expr is node


def _closed_in_finally(node: ast.Call) -> bool:
    """An assigned handle counts as paired when the enclosing function has a
    ``finally`` block that touches the assigned name (manual pairing)."""
    parent = getattr(node, "parent", None)
    if not isinstance(parent, ast.Assign):
        return False
    targets = {t.id for t in parent.targets if isinstance(t, ast.Name)}
    if not targets:
        return False
    func = enclosing_function(node)
    scope: ast.AST = func if func is not None else _module_root(node)
    for sub in ast.walk(scope):
        if isinstance(sub, ast.Try):
            for stmt in sub.finalbody:
                for leaf in ast.walk(stmt):
                    if isinstance(leaf, ast.Name) and leaf.id in targets:
                        return True
    return False


def _module_root(node: ast.AST) -> ast.AST:
    cur = node
    while getattr(cur, "parent", None) is not None:
        cur = cur.parent
    return cur


@register_rule
class SpanPairingRule(Rule):
    """R9: tracer spans open under ``with`` (or close in a ``finally``)."""

    name = "span-pairing"
    description = (
        "tracer .span(...) handles must be `with` context expressions or "
        "assigned handles closed in a finally block — a leaked span records "
        "nothing and corrupts the nesting stack"
    )
    # Repo-wide: instrumentation lives at the seams, not in one package.
    scope_prefixes = ()

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not _is_tracer_span_call(node):
                continue
            if _is_with_context(node) or _closed_in_finally(node):
                continue
            out.append(ctx.finding(
                node, self.name,
                "tracer span opened outside a `with` statement and never "
                "closed in a finally block; use `with tracer.span(...):` so "
                "the record cannot leak",
            ))
        return out
