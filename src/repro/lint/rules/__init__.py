"""Builtin rule modules — importing this package registers every rule."""

from repro.lint.rules import (  # noqa: F401
    determinism,
    exceptions,
    hotpath,
    imports,
    ledger,
    leases,
    spans,
    wire,
)
