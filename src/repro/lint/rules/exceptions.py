"""Silent exception swallowing: broad handlers must leave a trace.

A fault-tolerant service (ISSUE 8) lives and dies by its failure paths
being *observable*: a worker crash that is caught, counted, and recovered
is robustness; an ``except Exception: pass`` is a worker crash the metrics
never see and the chaos suite can never pin.  The rule flags every handler
that

* catches broadly — bare ``except``, ``Exception``, or ``BaseException``
  (narrow tuples like ``except (OSError, ValueError)`` are a deliberate
  enumeration and pass), and
* does nothing observable with the failure — no ``raise``, no logging call
  (``log.warning`` & friends, ``warnings.warn``), and no use of the bound
  exception name (a worker shipping ``exc`` back over a result queue *is*
  the observation).

Deliberate swallows — interpreter-teardown ``__del__`` guards, best-effort
cleanup — either narrow the tuple to what teardown can actually raise or
carry a ``# repro-lint: disable=silent-except -- reason`` with the reason
on record.
"""

from __future__ import annotations

import ast

from repro.lint.base import ModuleContext, Rule, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import register_rule

#: Catching these swallows faults indiscriminately; anything narrower is a
#: deliberate enumeration of expected failures.
_BROAD_TYPES = {"Exception", "BaseException"}
#: A call to any of these methods inside the handler counts as observing
#: the failure (stdlib logging, repro.util.logging, warnings.warn).
_LOG_METHODS = {
    "debug", "info", "warning", "warn", "error", "exception", "critical", "log",
}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:                                   # bare except
        return True
    types = t.elts if isinstance(t, ast.Tuple) else [t]
    for node in types:
        name = dotted_name(node)
        if name is not None and name.split(".")[-1] in _BROAD_TYPES:
            return True
    return False


def _observes_failure(handler: ast.ExceptHandler) -> bool:
    bound = handler.name  # "exc" in ``except Exception as exc``
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee is not None and callee.split(".")[-1] in _LOG_METHODS:
                return True
        if bound and isinstance(node, ast.Name) and node.id == bound:
            if not isinstance(getattr(node, "parent", None), ast.ExceptHandler):
                return True  # exc is used: re-shipped, stored, formatted...
    return False


@register_rule
class SilentExceptRule(Rule):
    """R7: broad exception handlers must raise, log, or use the exception."""

    name = "silent-except"
    description = (
        "bare/Exception/BaseException handlers that neither re-raise, log, "
        "nor use the bound exception swallow faults invisibly"
    )
    scope_prefixes = ("repro",)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _observes_failure(node):
                caught = "bare except" if node.type is None else (
                    f"except {ast.unparse(node.type)}"
                )
                out.append(ctx.finding(
                    node, self.name,
                    f"{caught} swallows the failure silently — re-raise, "
                    "log it, or narrow the handler to the expected types",
                ))
        return out
