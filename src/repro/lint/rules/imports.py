"""Import rules: optional-dependency gating and backend purity.

``import-gating`` (R3): CPU-only CI and bare user environments must import
every module of the tree — the numba job leg is *additive*, never required.
Optional toolchains (numba today; cupy/triton when the GPU backend of
ROADMAP.md lands) may therefore only be imported inside try/except
ImportError scopes, and only in the modules whose whole job is wrapping
them: ``repro.accel.backends.*`` and ``repro.pikg.codegen``.  Anywhere else
even a gated import is flagged — optional-dep handling concentrated in the
backend seam is what keeps the other 90 modules trivially importable.

``backend-purity`` (R4): a compute backend is a leaf.  It may import the
contract (``base``), the numeric/toolchain world, and the kernel-parameter
modules — but not its sibling backends and never the orchestration layers
(``repro.core``, ``repro.serve``).  Sibling imports couple availability
(the GPU backend must not die because numba is missing); orchestration
imports invert the dependency arrow the registry exists to enforce.  The
one sanctioned exception — inheriting the ``numpy`` reference backend as
the always-available fallback implementation — is suppressed inline where
it happens, with the reason on the line.
"""

from __future__ import annotations

import ast

from repro.lint.base import ModuleContext, Rule, in_import_guard
from repro.lint.findings import Finding
from repro.lint.registry import register_rule

#: Toolchains the container may lack; gate or stay out.
OPTIONAL_DEPS = ("numba", "cupy", "triton")

#: Modules allowed to (gated-)import optional toolchains.
GATED_IMPORT_MODULES = ("repro.accel.backends", "repro.pikg.codegen")

BACKEND_PACKAGE = "repro.accel.backends"
#: Modules a backend must never import (orchestration layers).
FORBIDDEN_FOR_BACKENDS = ("repro.core", "repro.serve")


def _imported_modules(node: ast.Import | ast.ImportFrom) -> list[str]:
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if node.module and node.level == 0:
        return [node.module]
    return []


@register_rule
class ImportGatingRule(Rule):
    """R3: optional deps only behind try/except, only in the backend seam."""

    name = "import-gating"
    description = (
        "numba/cupy/triton imports must sit in try/except ImportError inside "
        "repro.accel.backends.* or repro.pikg.codegen only"
    )
    scope_prefixes = ("repro",)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        allowed_here = any(
            ctx.module == p or ctx.module.startswith(p + ".")
            for p in GATED_IMPORT_MODULES
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target in _imported_modules(node):
                root = target.split(".")[0]
                if root not in OPTIONAL_DEPS:
                    continue
                if not allowed_here:
                    out.append(ctx.finding(
                        node, self.name,
                        f"optional dependency '{root}' imported outside the "
                        "backend seam; route it through repro.accel.backends",
                    ))
                elif not in_import_guard(node):
                    out.append(ctx.finding(
                        node, self.name,
                        f"optional dependency '{root}' imported without a "
                        "try/except ImportError gate; bare environments must "
                        "still import this module",
                    ))
        return out


@register_rule
class BackendPurityRule(Rule):
    """R4: backend modules import neither siblings nor orchestration."""

    name = "backend-purity"
    description = (
        "a backend module must not import sibling backends (base excepted) "
        "or repro.core/repro.serve"
    )
    scope_prefixes = (BACKEND_PACKAGE,)

    def applies_to(self, module: str) -> bool:
        # Submodules only: the package __init__ is the registry and has to
        # import every backend to register it.
        return (
            module.startswith(BACKEND_PACKAGE + ".")
            and module != BACKEND_PACKAGE + ".base"
        )

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target in _imported_modules(node):
                if target.startswith(BACKEND_PACKAGE + "."):
                    sibling = target[len(BACKEND_PACKAGE) + 1:].split(".")[0]
                    if sibling != "base" and f"{BACKEND_PACKAGE}.{sibling}" != ctx.module:
                        out.append(ctx.finding(
                            node, self.name,
                            f"backend imports sibling backend '{sibling}'; "
                            "backends must stay independently loadable",
                        ))
                elif any(
                    target == p or target.startswith(p + ".")
                    for p in FORBIDDEN_FOR_BACKENDS
                ):
                    out.append(ctx.finding(
                        node, self.name,
                        f"backend imports orchestration module '{target}'; "
                        "the dependency arrow points the other way",
                    ))
        return out
