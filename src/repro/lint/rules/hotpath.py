"""Hot-path hygiene: no slow scatter/loop idioms in kernel-owning modules.

PR 3 replaced every ``np.add.at`` in the force pipeline with single-pass
``np.bincount`` reductions (same accumulation order, bit-identical, ~10x
faster — ``benchmarks/bench_backend_kernels.py``) and moved per-particle
scalar loops behind the ``repro.accel.backends`` registry where numba can
JIT them.  This rule keeps those idioms from leaking back into the
vectorized kernel-owning modules: ``np.add.at`` is a buffered per-element
scatter with no fast path, and a Python ``for`` over ``range(len(arr))`` /
``range(arr.shape[0])`` is a per-particle loop the interpreter executes.

Inside ``repro.accel.backends`` both idioms are legitimate (the ``seed``
baseline reproduces them on purpose; numba backends JIT their scalar
loops), so backends are exempt.
"""

from __future__ import annotations

import ast

from repro.lint.base import ModuleContext, Rule, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import register_rule

#: Modules that own vectorized per-particle kernels outside backends/:
#: the SPH/gravity pipeline plus the two deposit kernels (voxelize feeds
#: every surrogate prediction; maps feeds the Fig. 5 observables).
KERNEL_MODULES = (
    "repro.sph",
    "repro.gravity",
    "repro.surrogate.voxelize",
    "repro.analysis.maps",
)


@register_rule
class HotPathRule(Rule):
    """R5: no np.add.at / per-particle Python loops outside backends."""

    name = "hotpath-hygiene"
    description = (
        "kernel-owning modules use bincount-style reductions, not np.add.at "
        "or per-particle range(len(...)) loops (backends are exempt)"
    )
    scope_prefixes = KERNEL_MODULES

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if chain is None:
                    continue
                resolved = ctx.resolve(chain)
                if resolved == "numpy.add.at":
                    out.append(ctx.finding(
                        node, self.name,
                        "np.add.at is a buffered per-element scatter; use a "
                        "np.bincount reduction (same accumulation order, "
                        "bit-identical) or move the kernel into a backend",
                    ))
            elif isinstance(node, ast.For):
                if self._per_element_range(node.iter):
                    out.append(ctx.finding(
                        node, self.name,
                        "per-particle Python loop (for ... in range(len/shape)); "
                        "vectorize it or move the kernel behind "
                        "repro.accel.backends",
                    ))
        return out

    @staticmethod
    def _per_element_range(iter_node: ast.AST) -> bool:
        if not (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "range"
            and len(iter_node.args) == 1
        ):
            return False
        arg = iter_node.args[0]
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Name)
            and arg.func.id == "len"
        ):
            return True
        # arr.shape[0]
        return (
            isinstance(arg, ast.Subscript)
            and isinstance(arg.value, ast.Attribute)
            and arg.value.attr == "shape"
        )
