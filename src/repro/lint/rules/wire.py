"""Wire symmetry: every encoder has a decoder and they agree on the header.

The serve wire format (:mod:`repro.serve.wire`) is hand-rolled — a float64
header whose slot offsets appear twice, once in ``encode_into`` and once in
``from_buffer``.  Adding a header field to one side and not the other does
not crash: the decoder happily reads a stale slot and every downstream
value is silently wrong (the torn-buffer checks validate length and magic,
not field order).  This rule diffs the two sides' header-slot sets
statically:

* a class with ``encode_into``/``to_buffer`` must define ``from_buffer``;
* the constant indices/slices written to the output buffer in
  ``encode_into`` must equal those read from the input buffer in
  ``from_buffer`` — indices validated by a shared ``*check_header*`` helper
  (magic + version, slots 0-1) count as read, as do the constant slot
  indices a ``*header_counts*`` helper is asked to decode.

Non-constant subscripts (the payload slice ``out[HEADER:total]``) are
outside the header contract and ignored.
"""

from __future__ import annotations

import ast

from repro.lint.base import ModuleContext, Rule, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import register_rule

#: Header slots a `*check_header*` helper validates (magic, version).
CHECKED_BY_HELPER = {0, 1}


def _const_indices(sub: ast.Subscript) -> set[int] | None:
    """{indices} for a constant int subscript or constant slice, else None."""
    s = sub.slice
    if isinstance(s, ast.Constant) and isinstance(s.value, int):
        return {s.value}
    if isinstance(s, ast.Slice):
        lo, hi = s.lower, s.upper
        if (
            isinstance(lo, ast.Constant) and isinstance(lo.value, int)
            and isinstance(hi, ast.Constant) and isinstance(hi.value, int)
        ):
            return set(range(lo.value, hi.value))
    return None


def _buffer_param(fn: ast.FunctionDef) -> str | None:
    """The buffer argument: first parameter that is not self/cls."""
    for a in fn.args.posonlyargs + fn.args.args:
        if a.arg not in ("self", "cls"):
            return a.arg
    return None


def _header_slots(fn: ast.FunctionDef, buffer: str, stores: bool) -> set[int]:
    want = ast.Store if stores else ast.Load
    out: set[int] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, want)
            and isinstance(node.value, ast.Name)
            and node.value.id == buffer
        ):
            idx = _const_indices(node)
            if idx is not None:
                out |= idx
    return out


def _helper_validated_slots(fn: ast.FunctionDef) -> set[int]:
    """Header slots a decoder delegates to shared validation helpers.

    ``*check_header*`` covers magic+version (slots 0-1); a
    ``*header_counts*`` call reads whatever constant slot indices it is
    handed (the count/width slots, e.g. ``_header_counts(buf, 10, 11, ...)``).
    """
    out: set[int] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        chain = dotted_name(node.func)
        if not chain:
            continue
        leaf = chain.rsplit(".", 1)[-1]
        if "check_header" in leaf:
            out |= CHECKED_BY_HELPER
        elif "header_counts" in leaf:
            out |= {
                a.value for a in node.args
                if isinstance(a, ast.Constant) and isinstance(a.value, int)
            }
    return out


@register_rule
class WireSymmetryRule(Rule):
    """R7: encode_into/from_buffer pairs exist and header slots agree."""

    name = "wire-symmetry"
    description = (
        "every wire encoder class defines from_buffer, and the constant "
        "header slots written by encode_into equal those read by from_buffer"
    )
    scope_prefixes = ("repro.serve",)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {
                m.name: m for m in cls.body if isinstance(m, ast.FunctionDef)
            }
            is_encoder = "encode_into" in methods or "to_buffer" in methods
            if not is_encoder:
                continue
            decoder = methods.get("from_buffer")
            if decoder is None:
                out.append(ctx.finding(
                    cls, self.name,
                    f"'{cls.name}' encodes to the wire but defines no "
                    "from_buffer decoder; the format is write-only",
                ))
                continue
            encoder = methods.get("encode_into")
            if encoder is None:
                continue  # to_buffer-only classes delegate; nothing to diff
            enc_buf = _buffer_param(encoder)
            dec_buf = _buffer_param(decoder)
            if enc_buf is None or dec_buf is None:
                continue
            written = _header_slots(encoder, enc_buf, stores=True)
            read = _header_slots(decoder, dec_buf, stores=False)
            read |= _helper_validated_slots(decoder)
            if written != read:
                only_w = sorted(written - read)
                only_r = sorted(read - written)
                detail = []
                if only_w:
                    detail.append(f"written but never decoded: {only_w}")
                if only_r:
                    detail.append(f"decoded but never written: {only_r}")
                out.append(ctx.finding(
                    encoder, self.name,
                    f"'{cls.name}' header slots disagree between encode_into "
                    f"and from_buffer ({'; '.join(detail)})",
                ))
        return out
