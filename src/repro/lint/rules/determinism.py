"""Determinism rules: no ambient randomness or wall-clock in physics paths.

The repo's headline guarantee — bit-identical results across backends,
transports, batch compositions and worker counts (PR 3/4/5 parity suites) —
survives only because every random draw flows from an explicit seed
(``np.random.Generator`` streams, :func:`repro.serve.wire.event_rng`) and no
result depends on wall-clock time.  One ``np.random.normal()`` against the
global state, or one ``time.time()`` folded into physics, breaks the whole
class of parity tests *flakily* — the worst way to find out.

``determinism`` flags the call sites; ``rng-plumbing`` flags public
functions that build their own generator without taking the seed from the
caller (randomness a caller cannot pin is randomness the parity suite
cannot replay).

Wall-clock *metrics* are fine: ``time.perf_counter``/``monotonic`` price
latency and never feed results, so only ``time.time``-style absolute clocks
and ``datetime`` constructors are flagged.
"""

from __future__ import annotations

import ast
import re

from repro.lint.base import ModuleContext, Rule, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import register_rule

#: Subsystems whose outputs must be a pure function of (inputs, seeds).
DETERMINISTIC_MODULES = (
    # "repro.core" covers the run-orchestration layer too
    # (repro.core.runner.*): the coupled runner's dispatch ordering and
    # ghost exchange are exactly the code where ambient randomness would
    # break the single-rank/multi-rank bit-identity contract.
    "repro.core",
    "repro.physics",
    "repro.sph",
    "repro.gravity",
    "repro.sn",
    "repro.surrogate",
    "repro.ml",
    "repro.serve",
    # Trace timestamps are monotonic-epoch by contract (repro.obs module
    # docs): an absolute clock here would make two runs' traces
    # incomparable and is flagged by the same R1 clock clause.
    "repro.obs",
)

#: numpy.random entry points that are seeded-stream safe.
_SEEDED_OK = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
}

#: time/datetime calls that read the absolute clock (results may depend on
#: them); perf_counter/monotonic/process_time are relative and metrics-only.
_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_SEEDY_PARAM = re.compile(r"(^|_)(rng|seed|random_state)(_|$)|(^|_)seed$|^seed")
_SEEDY_ATTR = re.compile(r"(rng|seed)")


def _resolved_call_chain(ctx: ModuleContext, node: ast.Call) -> str | None:
    chain = dotted_name(node.func)
    if chain is None:
        return None
    return ctx.resolve(chain)


@register_rule
class DeterminismRule(Rule):
    """R1: no global-state RNG or absolute-clock calls in physics paths."""

    name = "determinism"
    description = (
        "no np.random module-state calls, stdlib random, or absolute clocks "
        "in deterministic subsystems; use a seeded Generator / event_rng"
    )
    scope_prefixes = DETERMINISTIC_MODULES

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = _resolved_call_chain(ctx, node)
            if resolved is None or resolved.startswith("local:"):
                continue
            if resolved.startswith("numpy.random."):
                leaf = resolved.rsplit(".", 1)[-1]
                if leaf not in _SEEDED_OK:
                    out.append(ctx.finding(
                        node, self.name,
                        f"'{resolved}' draws from numpy's global RNG state; "
                        "thread a seeded np.random.Generator instead",
                    ))
            elif resolved.startswith("random."):
                out.append(ctx.finding(
                    node, self.name,
                    f"stdlib '{resolved}' is process-global and unseeded here; "
                    "use a seeded np.random.Generator",
                ))
            elif resolved in _CLOCK_CALLS:
                out.append(ctx.finding(
                    node, self.name,
                    f"'{resolved}' reads the absolute wall clock; results must "
                    "not depend on it (perf_counter/monotonic are fine for "
                    "metrics)",
                ))
        return out


@register_rule
class RngPlumbingRule(Rule):
    """R8: public randomness consumers take an explicit rng/seed argument."""

    name = "rng-plumbing"
    description = (
        "public functions that build a Generator must take rng/seed from the "
        "caller (a parameter or a seed-carrying attribute of self)"
    )
    scope_prefixes = DETERMINISTIC_MODULES + ("repro.ic", "repro.fdps")

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            builds = [
                call for call in ast.walk(node)
                if isinstance(call, ast.Call)
                and self._builds_generator(ctx, call)
            ]
            if not builds:
                continue
            if self._has_seed_param(node) or self._uses_self_seed(node):
                continue
            out.append(ctx.finding(
                builds[0], self.name,
                f"public '{node.name}' builds its own generator with no "
                "rng/seed parameter; callers cannot pin its randomness",
            ))
        return out

    @staticmethod
    def _builds_generator(ctx: ModuleContext, call: ast.Call) -> bool:
        resolved = _resolved_call_chain(ctx, call)
        if resolved is None:
            return False
        if resolved.startswith("numpy.random."):
            return resolved.rsplit(".", 1)[-1] in {"default_rng", "Generator"}
        # repro.util.rng.default_rng and serve.wire.event_rng count too.
        return resolved.endswith((".default_rng", ".event_rng"))

    @staticmethod
    def _has_seed_param(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        return any(_SEEDY_PARAM.search(n) for n in names)

    @staticmethod
    def _uses_self_seed(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Attribute)
                and _SEEDY_ATTR.search(sub.attr)
                and isinstance(sub.value, (ast.Name, ast.Attribute))
            ):
                chain = dotted_name(sub)
                if chain and chain.startswith("self."):
                    return True
        return False
