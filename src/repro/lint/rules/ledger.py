"""Ledger rule: every comm-crossing call names its CommStats row.

The :class:`repro.fdps.comm.SimComm` byte ledger is the input to the whole
performance model (``perf.costmodel`` prices measured bytes on a machine
network model) and to the cross-transport parity claims of PR 4/5 — the
``pool_p2p`` row must contain exactly the serve wire bytes, the exchange
rows exactly the packed-FIELDS payloads.  An unlabeled ``send`` silently
lands in the default ``"p2p"`` row, which *looks* fine until someone prices
a breakdown and the rows don't add up.  This rule makes the label explicit
at every call site, so a new transport or exchange path cannot forget to
pick its row.
"""

from __future__ import annotations

import ast

from repro.lint.base import ModuleContext, Rule
from repro.lint.findings import Finding
from repro.lint.registry import register_rule

#: Methods that cross the simulated communicator and charge the ledger.
COMM_METHODS = ("send", "alltoallv", "alltoallv_3d", "allgather", "allreduce_sum")


@register_rule
class LedgerLabelRule(Rule):
    """R2: comm-crossing calls pass an explicit ``label=``."""

    name = "ledger-label"
    description = (
        "SimComm send/collective call sites must pass label= so the byte "
        "ledger row is chosen deliberately, never by default"
    )
    scope_prefixes = ("repro",)

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in COMM_METHODS:
                continue
            if any(kw.arg == "label" for kw in node.keywords):
                continue
            # Forwarding `label` positionally is not a thing in this repo's
            # comm API (label is keyword-ish by convention); flag it.
            out.append(ctx.finding(
                node, self.name,
                f"comm-crossing '.{func.attr}(...)' without an explicit "
                "label=; the bytes land in the default ledger row",
            ))
        return out
