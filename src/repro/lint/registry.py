"""Rule registry — the same register/get pattern as ``repro.accel.backends``.

Rules register by name; instances are process-wide singletons (rules are
stateless, all per-run state lives in the checker).  ``all_rules`` is what
the checker iterates; ``--select`` on the CLI narrows it.
"""

from __future__ import annotations

from repro.lint.base import Rule

_FACTORIES: dict[str, type[Rule]] = {}
_INSTANCES: dict[str, Rule] = {}


def register_rule(factory: type[Rule], replace: bool = False) -> type[Rule]:
    """Register a rule class under its ``name`` (usable as a decorator)."""
    key = factory.name
    if key in _FACTORIES and not replace:
        raise ValueError(f"lint rule {key!r} is already registered")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)
    return factory


def registered_rules() -> list[str]:
    return sorted(_FACTORIES)


def get_rule(name: str) -> Rule:
    if name not in _FACTORIES:
        raise ValueError(f"unknown lint rule {name!r}; registered: {registered_rules()}")
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def all_rules(select: list[str] | None = None) -> list[Rule]:
    names = registered_rules() if select is None else list(select)
    return [get_rule(n) for n in names]
