"""Rule base class and the per-module analysis context.

A rule is an AST pass over one module.  The :class:`ModuleContext` hands it
everything repo rules keep needing: the parsed tree with parent links, the
dotted module name (scoping), the raw source lines (suppression comments
live there), and an import-alias map so a rule can ask "does ``np.random``
here really mean :mod:`numpy.random`?" instead of string-matching local
variable names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.findings import Finding


def attach_parents(tree: ast.AST) -> None:
    """Give every node a ``.parent`` link (None at the module root)."""
    tree.parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, None for anything dynamic."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def enclosing_function(node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """Nearest enclosing def (via parent links), None at module scope."""
    cur = getattr(node, "parent", None)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cur
        cur = getattr(cur, "parent", None)
    return None


def in_finally_block(node: ast.AST) -> bool:
    """True when ``node`` executes on a ``finally`` edge of some try."""
    cur, parent = node, getattr(node, "parent", None)
    while parent is not None:
        if isinstance(parent, ast.Try) and any(
            cur is stmt or _contains(stmt, cur) for stmt in parent.finalbody
        ):
            return True
        cur, parent = parent, getattr(parent, "parent", None)
    return False


def in_import_guard(node: ast.AST) -> bool:
    """True when ``node`` sits in a try body whose handlers catch ImportError."""
    cur, parent = node, getattr(node, "parent", None)
    guard_names = {"ImportError", "ModuleNotFoundError", "Exception"}
    while parent is not None:
        if isinstance(parent, ast.Try) and any(
            cur is stmt or _contains(stmt, cur) for stmt in parent.body
        ):
            for handler in parent.handlers:
                for name in _handler_type_names(handler):
                    if name in guard_names:
                        return True
        cur, parent = parent, getattr(parent, "parent", None)
    return False


def _handler_type_names(handler: ast.ExceptHandler) -> list[str]:
    t = handler.type
    if t is None:
        return ["Exception"]  # bare except catches ImportError too
    types = t.elts if isinstance(t, ast.Tuple) else [t]
    out = []
    for node in types:
        name = dotted_name(node)
        if name:
            out.append(name.split(".")[-1])
    return out


def _contains(root: ast.AST, target: ast.AST) -> bool:
    return any(n is target for n in ast.walk(root))


@dataclass
class ModuleContext:
    """Everything rules need to analyze one module."""

    path: str                 # display path (relative where possible)
    module: str               # dotted name, e.g. "repro.serve.shm"
    source: str
    tree: ast.Module = field(repr=False)
    #: alias -> imported dotted module/object, e.g. {"np": "numpy",
    #: "default_rng": "numpy.random.default_rng"}.
    imports: dict[str, str] = field(default_factory=dict, repr=False)

    @classmethod
    def parse(cls, path: str, module: str, source: str) -> "ModuleContext":
        tree = ast.parse(source)
        attach_parents(tree)
        imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        return cls(path=path, module=module, source=source, tree=tree, imports=imports)

    def resolve(self, chain: str) -> str:
        """Expand the first segment of ``chain`` through the import aliases.

        ``np.random.seed`` -> ``numpy.random.seed`` under ``import numpy as
        np``; an unimported root returns the chain unchanged with a leading
        ``local:`` marker so callers never confuse a variable for a module.
        """
        root, _, rest = chain.partition(".")
        target = self.imports.get(root)
        if target is None:
            return f"local:{chain}"
        return f"{target}.{rest}" if rest else target

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class: subclasses set ``name``/``description`` and ``check``.

    ``scope_prefixes`` restricts a rule to modules whose dotted name equals
    or starts with one of the prefixes; empty means every module.  Rules are
    stateless — one instance serves the whole run (mirroring the
    :mod:`repro.accel.backends` singleton convention).
    """

    name: str = "abstract"
    description: str = ""
    #: Module-name prefixes this rule applies to ("" matches everything).
    scope_prefixes: tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        if not self.scope_prefixes:
            return True
        return any(
            module == p or module.startswith(p + ".") for p in self.scope_prefixes
        )

    def check(self, ctx: ModuleContext) -> list[Finding]:
        raise NotImplementedError
