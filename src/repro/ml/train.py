"""Training loop: batch size 1, MSE, Adam — the paper's recipe (Sec. 3.3).

The paper trains for 100 epochs with batch size 1 at lr = 1e-6 and keeps the
model once validation error "converged and stabilized"; :func:`train_model`
reproduces that loop at configurable scale with per-epoch train/validation
tracking and optional early stopping on validation plateau.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.layers import Layer
from repro.ml.loss import mse_grad, mse_loss
from repro.ml.optim import Adam


@dataclass
class TrainHistory:
    """Per-epoch losses."""

    train: list[float] = field(default_factory=list)
    val: list[float] = field(default_factory=list)

    @property
    def best_val(self) -> float:
        return min(self.val) if self.val else np.inf


def train_model(
    model: Layer,
    inputs: list[np.ndarray],
    targets: list[np.ndarray],
    epochs: int = 10,
    lr: float = 1e-3,
    val_fraction: float = 0.2,
    optimizer: Adam | None = None,
    shuffle: bool = True,
    seed: int = 0,
    patience: int | None = None,
) -> TrainHistory:
    """Train ``model`` on (inputs[i], targets[i]) pairs, batch size 1.

    ``patience`` enables early stopping when validation loss has not
    improved for that many epochs; the model is then left holding the
    weights of its *best* validation epoch, not the stale last-epoch ones —
    the paper keeps the model "once validation error converged and
    stabilized", which is the converged snapshot, not whatever the final
    (worse) update produced.  Returns the loss history.
    """
    if len(inputs) != len(targets):
        raise ValueError("inputs and targets must pair up")
    if len(inputs) == 0:
        raise ValueError("no training data")
    rng = np.random.default_rng(seed)
    n = len(inputs)
    n_val = int(round(val_fraction * n))
    perm = rng.permutation(n)
    val_idx = perm[:n_val]
    train_idx = perm[n_val:]
    if len(train_idx) == 0:
        train_idx, val_idx = perm, perm[:0]

    opt = optimizer or Adam(lr=lr)
    history = TrainHistory()
    stale = 0
    best = np.inf
    best_params: dict[str, np.ndarray] | None = None
    for _epoch in range(epochs):
        order = rng.permutation(train_idx) if shuffle else train_idx
        ep_loss = 0.0
        for i in order:
            pred = model.forward(inputs[i])
            ep_loss += mse_loss(pred, targets[i])
            model.backward(mse_grad(pred, targets[i]))
            opt.step(model.params(), model.grads())
        history.train.append(ep_loss / max(len(order), 1))

        if len(val_idx):
            v = float(
                np.mean([mse_loss(model.forward(inputs[i]), targets[i]) for i in val_idx])
            )
        else:
            v = history.train[-1]
        history.val.append(v)
        if patience is not None:
            if v < best - 1e-12:
                best, stale = v, 0
                best_params = {k: p.copy() for k, p in model.params().items()}
            else:
                stale += 1
                if stale >= patience:
                    break
    if best_params is not None:
        # Restore the best-validation snapshot in place (the optimizer
        # mutates the live arrays, so in-place restore keeps identity).
        for k, p in model.params().items():
            p[...] = best_params[k]
    return history


def evaluate_model(
    model: Layer, inputs: list[np.ndarray], targets: list[np.ndarray]
) -> float:
    """Mean MSE of the model over a dataset."""
    return float(np.mean([mse_loss(model.forward(x), y) for x, y in zip(inputs, targets, strict=True)]))
