"""Optimizers: Adam (the paper's choice, lr = 1e-6) and SGD.

Optimizers mutate the parameter arrays of a model in place, keyed by the
model's ``params()``/``grads()`` dictionaries, so the same instance can be
reused across steps without re-registering.
"""

from __future__ import annotations

import numpy as np


class SGD:
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, lr: float = 1e-3, momentum: float = 0.0) -> None:
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        for k, p in params.items():
            g = grads[k]
            if self.momentum:
                v = self._velocity.setdefault(k, np.zeros_like(p))
                v *= self.momentum
                v -= self.lr * g
                p += v
            else:
                p -= self.lr * g


class Adam:
    """Adam (Kingma & Ba 2015) — the paper's optimizer (Sec. 3.3)."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        self.t += 1
        b1t = 1.0 - self.beta1**self.t
        b2t = 1.0 - self.beta2**self.t
        for k, p in params.items():
            g = grads[k]
            m = self._m.setdefault(k, np.zeros_like(p))
            v = self._v.setdefault(k, np.zeros_like(p))
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g**2
            p -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)
