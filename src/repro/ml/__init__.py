"""A from-scratch NumPy deep-learning framework for the 3D U-Net surrogate.

The paper trains a Keras/TensorFlow 3D U-Net on an A100 and then deploys it
for *CPU* inference via ONNX (x86-64) and SoftNeuro (A64FX) so pool nodes
need no GPUs (Sec. 3.3).  This package reproduces both halves in pure NumPy:

* :mod:`repro.ml.layers` — Conv3D, pooling, upsampling, activations with
  hand-written backward passes (gradient-checked in the test suite);
* :mod:`repro.ml.unet` — the 3D U-Net (encoder/decoder with skip
  concatenations), batch-size-1 training exactly like the paper;
* :mod:`repro.ml.optim` / :mod:`repro.ml.loss` — Adam and MSE;
* :mod:`repro.ml.train` — the training loop with validation tracking;
* :mod:`repro.ml.serialize` — an ONNX-like export (architecture JSON +
  weights NPZ) and a forward-only :class:`InferenceEngine` standing in for
  the ONNX Runtime / SoftNeuro deployment.

Tensors are (C, D, H, W) single samples — batch size 1, as in the paper.
"""

from repro.ml.layers import (
    Conv3D,
    LeakyReLU,
    MaxPool3D,
    Upsample3D,
    Layer,
)
from repro.ml.unet import UNet3D
from repro.ml.loss import mse_loss, mse_grad
from repro.ml.optim import Adam, SGD
from repro.ml.train import train_model, TrainHistory
from repro.ml.serialize import save_model, load_model, InferenceEngine

__all__ = [
    "Conv3D",
    "LeakyReLU",
    "MaxPool3D",
    "Upsample3D",
    "Layer",
    "UNet3D",
    "mse_loss",
    "mse_grad",
    "Adam",
    "SGD",
    "train_model",
    "TrainHistory",
    "save_model",
    "load_model",
    "InferenceEngine",
]
