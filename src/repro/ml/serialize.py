"""Model export and CPU inference — the ONNX/SoftNeuro deployment path.

The paper avoids GPU inference on the pool nodes by exporting the trained
Keras model to ONNX (x86-64) / SoftNeuro (A64FX) and running it on CPUs
(Sec. 3.3).  We mirror that split: :func:`save_model` writes a single
``.npz`` holding the architecture config (JSON) plus every weight tensor,
and :class:`InferenceEngine` is the forward-only runtime that pool nodes
load — it never allocates gradient buffers and is the only ML entry point
:mod:`repro.core.pool` uses.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.ml.unet import UNet3D


def npz_path(path: str | Path) -> Path:
    """The path a model export actually lives at.

    ``np.savez`` silently appends ``.npz`` when the target lacks it, so an
    un-normalized ``save_model(p); load_model(p)`` round trip used to write
    ``p + ".npz"`` and then fail to find ``p``.  Both directions normalize
    through this single rule instead.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_model(model: UNet3D, path: str | Path) -> Path:
    """Serialize architecture + weights to one ``.npz`` file.

    Returns the (suffix-normalized) path the file was written to.
    """
    path = npz_path(path)
    payload: dict[str, np.ndarray] = {
        f"param/{k}": v for k, v in model.params().items()
    }
    payload["config"] = np.frombuffer(
        json.dumps(model.config()).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)
    return path


def load_model(path: str | Path) -> UNet3D:
    """Rebuild a trainable U-Net from a saved file."""
    with np.load(npz_path(path)) as data:
        config = json.loads(bytes(data["config"]).decode("utf-8"))
        model = UNet3D(**config)
        model.load_params(
            {k[len("param/"):]: data[k] for k in data.files if k.startswith("param/")}
        )
    return model


class InferenceEngine:
    """Forward-only CPU runtime for an exported U-Net.

    Usage::

        engine = InferenceEngine.load("surrogate.npz")
        fields_out = engine(fields_in)     # (C_in, n, n, n) -> (C_out, n, n, n)

    An engine built through :meth:`load` remembers its ``model_path``, which
    is what lets :meth:`repro.serve.SurrogateSpec.from_surrogate` derive a
    ``kind="model"`` recipe — serve workers then reload the export
    themselves instead of receiving a pickled copy of every weight tensor.
    """

    def __init__(self, model: UNet3D, model_path: str | Path | None = None) -> None:
        self._model = model
        #: Where the export was loaded from (None for in-memory engines).
        self.model_path: str | None = (
            str(npz_path(model_path)) if model_path is not None else None
        )

    @classmethod
    def load(cls, path: str | Path) -> "InferenceEngine":
        return cls(load_model(path), model_path=path)

    @property
    def in_channels(self) -> int:
        return self._model.in_channels

    @property
    def out_channels(self) -> int:
        return self._model.out_channels

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self._model.forward(np.asarray(x, dtype=np.float64))

    def predict_batch(self, x: np.ndarray) -> np.ndarray:
        """Batched forward: (B, C_in, n, n, n) -> (B, C_out, n, n, n).

        This is the pool-node serving path of :mod:`repro.serve` — several
        coalesced SN regions share one pass, so every convolution tap's
        matmul runs at batch width and the per-call overhead is amortized.
        """
        return self._model.forward_batch(np.asarray(x, dtype=np.float64))

    def n_parameters(self) -> int:
        return self._model.n_parameters()
