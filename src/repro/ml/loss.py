"""Losses — the paper trains with plain MSE between true and predicted
log-space physical fields (Sec. 3.3)."""

from __future__ import annotations

import numpy as np


def mse_loss(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error over all elements."""
    diff = np.asarray(pred) - np.asarray(target)
    return float(np.mean(diff**2))


def mse_grad(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    """d(MSE)/d(pred)."""
    diff = np.asarray(pred) - np.asarray(target)
    return 2.0 * diff / diff.size


def mae_loss(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error (reported as a secondary validation metric)."""
    return float(np.mean(np.abs(np.asarray(pred) - np.asarray(target))))
