"""The 3D U-Net surrogate architecture (Sec. 3.3, Fig. 3).

Encoder/decoder with skip concatenations:

* each level applies two (Conv3D + LeakyReLU) blocks;
* downsampling is 2x max pooling, upsampling is nearest-neighbor 2x;
* decoder levels concatenate the matching encoder feature map;
* a final 1x1x1 convolution maps to the output fields.

The paper's configuration is 8 input channels (log density, log
temperature, and the log-magnitude positive/negative halves of three
velocity components) and 5 output fields on a 64^3 grid; the class is fully
parameterized so the tests can run tiny instances (e.g. 8^3, base=4).
"""

from __future__ import annotations

import numpy as np

from repro.ml.layers import Conv3D, Layer, LeakyReLU, MaxPool3D, Upsample3D


class _ConvBlock(Layer):
    """(Conv3D -> LeakyReLU) x 2."""

    def __init__(self, cin: int, cout: int, rng: np.random.Generator) -> None:
        self.c1 = Conv3D(cin, cout, 3, rng=rng)
        self.a1 = LeakyReLU()
        self.c2 = Conv3D(cout, cout, 3, rng=rng)
        self.a2 = LeakyReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.a2(self.c2(self.a1(self.c1(x))))

    def forward_batch(self, x: np.ndarray) -> np.ndarray:
        return self.a2.forward_batch(
            self.c2.forward_batch(self.a1.forward_batch(self.c1.forward_batch(x)))
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.c1.backward(self.a1.backward(self.c2.backward(self.a2.backward(grad))))

    def params(self) -> dict[str, np.ndarray]:
        out = {}
        for name, layer in (("c1", self.c1), ("c2", self.c2)):
            for k, v in layer.params().items():
                out[f"{name}.{k}"] = v
        return out

    def grads(self) -> dict[str, np.ndarray]:
        out = {}
        for name, layer in (("c1", self.c1), ("c2", self.c2)):
            for k, v in layer.grads().items():
                out[f"{name}.{k}"] = v
        return out


class UNet3D(Layer):
    """A 3D U-Net: ``depth`` pooling levels over a ``base``-channel stem.

    Input (in_channels, n, n, n) with n divisible by 2**depth; output
    (out_channels, n, n, n).
    """

    def __init__(
        self,
        in_channels: int = 8,
        out_channels: int = 5,
        base_channels: int = 16,
        depth: int = 2,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.base_channels = base_channels
        self.depth = depth
        self.seed = seed

        chans = [base_channels * 2**lv for lv in range(depth + 1)]
        self.encoders = []
        cin = in_channels
        for lv in range(depth):
            self.encoders.append(_ConvBlock(cin, chans[lv], rng))
            cin = chans[lv]
        self.pools = [MaxPool3D() for _ in range(depth)]
        self.bottleneck = _ConvBlock(cin, chans[depth], rng)
        self.ups = [Upsample3D() for _ in range(depth)]
        self.decoders = []
        for lv in reversed(range(depth)):
            # concat(upsampled deeper map, encoder skip) channels in.
            self.decoders.append(_ConvBlock(chans[lv + 1] + chans[lv], chans[lv], rng))
        self.head = Conv3D(chans[0], out_channels, 1, rng=rng)
        self._skip_channels: list[int] = []

    # ------------------------------------------------------------------ passes
    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[0] != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {x.shape[0]}")
        if any(s % 2**self.depth for s in x.shape[1:]):
            raise ValueError(f"spatial dims must be divisible by {2**self.depth}")
        skips: list[np.ndarray] = []
        for enc, pool in zip(self.encoders, self.pools, strict=True):
            x = enc.forward(x)
            skips.append(x)
            x = pool.forward(x)
        x = self.bottleneck.forward(x)
        self._skip_channels = [s.shape[0] for s in skips]
        for dec, up, skip in zip(self.decoders, self.ups, reversed(skips), strict=True):
            x = up.forward(x)
            x = np.concatenate([x, skip], axis=0)
            x = dec.forward(x)
        return self.head.forward(x)

    def forward_batch(self, x: np.ndarray) -> np.ndarray:
        """Inference-only batched forward over (B, C, n, n, n) inputs.

        Same dataflow as :meth:`forward` with the batch axis folded into
        every convolution tap's matmul; skip concatenations happen on axis 1
        (channels).  Writes no backward caches.
        """
        if x.ndim != 5:
            raise ValueError(f"expected (B, C, n, n, n) input, got {x.shape}")
        if x.shape[1] != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {x.shape[1]}")
        if any(s % 2**self.depth for s in x.shape[2:]):
            raise ValueError(f"spatial dims must be divisible by {2**self.depth}")
        skips: list[np.ndarray] = []
        for enc, pool in zip(self.encoders, self.pools, strict=True):
            x = enc.forward_batch(x)
            skips.append(x)
            x = pool.forward_batch(x)
        x = self.bottleneck.forward_batch(x)
        for dec, up, skip in zip(self.decoders, self.ups, reversed(skips), strict=True):
            x = up.forward_batch(x)
            x = np.concatenate([x, skip], axis=1)
            x = dec.forward_batch(x)
        return self.head.forward_batch(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad)
        skip_grads: list[np.ndarray] = []
        for dec, up, c_skip in zip(
            self.decoders, self.ups, reversed(self._skip_channels)
        , strict=True):
            grad = dec.backward(grad)
            c_up = grad.shape[0] - c_skip
            skip_grads.append(grad[c_up:])
            grad = up.backward(grad[:c_up])
        grad = self.bottleneck.backward(grad)
        for enc, pool, sg in zip(
            reversed(self.encoders), reversed(self.pools), skip_grads
        , strict=True):
            grad = pool.backward(grad)
            grad = enc.backward(grad + sg)
        return grad

    # ------------------------------------------------------------- parameters
    def _named_modules(self) -> list[tuple[str, Layer]]:
        mods: list[tuple[str, Layer]] = []
        for i, enc in enumerate(self.encoders):
            mods.append((f"enc{i}", enc))
        mods.append(("bottleneck", self.bottleneck))
        for i, dec in enumerate(self.decoders):
            mods.append((f"dec{i}", dec))
        mods.append(("head", self.head))
        return mods

    def params(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for name, mod in self._named_modules():
            for k, v in mod.params().items():
                out[f"{name}.{k}"] = v
        return out

    def grads(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for name, mod in self._named_modules():
            for k, v in mod.grads().items():
                out[f"{name}.{k}"] = v
        return out

    def n_parameters(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.params().values())

    # -------------------------------------------------------------- serialize
    def config(self) -> dict:
        """Architecture hyper-parameters (the JSON half of the export)."""
        return {
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "base_channels": self.base_channels,
            "depth": self.depth,
            "seed": self.seed,
        }

    def load_params(self, values: dict[str, np.ndarray]) -> None:
        mine = self.params()
        missing = set(mine) - set(values)
        if missing:
            raise KeyError(f"missing parameters: {sorted(missing)[:5]}")
        for k, v in mine.items():
            v[...] = values[k]
