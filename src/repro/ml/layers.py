"""Neural-network layers with hand-written backward passes.

All tensors are single samples shaped (C, D, H, W).  Convolutions are
implemented as a sum of k^3 shifted matmuls — each tap is one
(C_out, C_in) @ (C_in, D*H*W) product — which is both the fastest pure-NumPy
strategy for small kernels and exactly the dataflow a CPU inference engine
like the paper's ONNX/SoftNeuro deployment uses after layout optimization.

Every layer caches what its backward pass needs during ``forward`` and
exposes ``params()``/``grads()`` dictionaries for the optimizer; the
gradients are verified against finite differences in the test suite.
"""

from __future__ import annotations

import numpy as np


class Layer:
    """Base layer: forward/backward plus parameter access."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward_batch(self, x: np.ndarray) -> np.ndarray:
        """Inference-only batched forward over (B, C, D, H, W) inputs.

        The base implementation loops :meth:`forward` per sample; layers on
        the inference hot path override it with a genuinely vectorized
        version that writes no backward caches.
        """
        return np.stack([self.forward(sample) for sample in x])

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> dict[str, np.ndarray]:
        return {}

    def grads(self) -> dict[str, np.ndarray]:
        return {}

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Conv3D(Layer):
    """3D convolution, stride 1, 'same' zero padding.

    Weight shape (C_out, C_in, k, k, k); He-normal initialization.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        if kernel_size % 2 != 1:
            raise ValueError("kernel_size must be odd for 'same' padding")
        rng = rng or np.random.default_rng(0)
        self.cin = in_channels
        self.cout = out_channels
        self.k = kernel_size
        fan_in = in_channels * kernel_size**3
        self.weight = rng.normal(0.0, np.sqrt(2.0 / fan_in),
                                 (out_channels, in_channels, *(kernel_size,) * 3))
        self.bias = np.zeros(out_channels)
        self.dweight = np.zeros_like(self.weight)
        self.dbias = np.zeros_like(self.bias)
        self._x_padded: np.ndarray | None = None
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        c, d, h, w = x.shape
        if c != self.cin:
            raise ValueError(f"expected {self.cin} input channels, got {c}")
        p = self.k // 2
        xp = np.pad(x, ((0, 0), (p, p), (p, p), (p, p)))
        self._x_padded = xp
        self._shape = (c, d, h, w)
        out = np.zeros((self.cout, d, h, w))
        flat = out.reshape(self.cout, -1)
        for i in range(self.k):
            for j in range(self.k):
                for l in range(self.k):
                    patch = xp[:, i : i + d, j : j + h, l : l + w].reshape(c, -1)
                    flat += self.weight[:, :, i, j, l] @ patch
        out += self.bias[:, None, None, None]
        return out

    def forward_batch(self, x: np.ndarray) -> np.ndarray:
        """Batched taps: one (C_out, C_in) @ (C_in, B*D*H*W) matmul per tap.

        Each sample is padded independently (no bleed across the batch) and
        the batch axis is folded into the spatial flattening, so every tap
        amortizes its Python/BLAS call overhead over the whole batch — the
        entire speedup of batched CPU inference for these small cubes.
        """
        b, c, d, h, w = x.shape
        if c != self.cin:
            raise ValueError(f"expected {self.cin} input channels, got {c}")
        p = self.k // 2
        xp = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p), (p, p)))
        xp = np.ascontiguousarray(xp.transpose(1, 0, 2, 3, 4))  # (C, B, ...)
        out = np.zeros((self.cout, b, d, h, w))
        flat = out.reshape(self.cout, -1)
        for i in range(self.k):
            for j in range(self.k):
                for l in range(self.k):
                    patch = xp[:, :, i : i + d, j : j + h, l : l + w].reshape(c, -1)
                    flat += self.weight[:, :, i, j, l] @ patch
        out += self.bias[:, None, None, None, None]
        return out.transpose(1, 0, 2, 3, 4)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x_padded is not None and self._shape is not None
        c, d, h, w = self._shape
        p = self.k // 2
        xp = self._x_padded
        gflat = grad.reshape(self.cout, -1)
        self.dbias[...] = grad.sum(axis=(1, 2, 3))
        dxp = np.zeros_like(xp)
        for i in range(self.k):
            for j in range(self.k):
                for l in range(self.k):
                    patch = xp[:, i : i + d, j : j + h, l : l + w].reshape(c, -1)
                    self.dweight[:, :, i, j, l] = gflat @ patch.T
                    dxp[:, i : i + d, j : j + h, l : l + w] += (
                        self.weight[:, :, i, j, l].T @ gflat
                    ).reshape(c, d, h, w)
        if p:
            return dxp[:, p:-p, p:-p, p:-p]
        return dxp

    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def grads(self) -> dict[str, np.ndarray]:
        return {"weight": self.dweight, "bias": self.dbias}


class LeakyReLU(Layer):
    """max(x, slope * x)."""

    def __init__(self, slope: float = 0.1) -> None:
        self.slope = slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x >= 0
        return np.where(self._mask, x, self.slope * x)

    def forward_batch(self, x: np.ndarray) -> np.ndarray:
        return np.where(x >= 0, x, self.slope * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return np.where(self._mask, grad, self.slope * grad)


class MaxPool3D(Layer):
    """2x2x2 max pooling; dims must be even."""

    def __init__(self) -> None:
        self._argmax: np.ndarray | None = None
        self._shape: tuple | None = None

    @staticmethod
    def _blocks(x: np.ndarray) -> np.ndarray:
        c, d, h, w = x.shape
        xr = x.reshape(c, d // 2, 2, h // 2, 2, w // 2, 2)
        return xr.transpose(0, 1, 3, 5, 2, 4, 6).reshape(c, d // 2, h // 2, w // 2, 8)

    def forward(self, x: np.ndarray) -> np.ndarray:
        c, d, h, w = x.shape
        if d % 2 or h % 2 or w % 2:
            raise ValueError("MaxPool3D needs even spatial dimensions")
        blocks = self._blocks(x)
        self._argmax = blocks.argmax(axis=-1)
        self._shape = x.shape
        return blocks.max(axis=-1)

    def forward_batch(self, x: np.ndarray) -> np.ndarray:
        b, c, d, h, w = x.shape
        if d % 2 or h % 2 or w % 2:
            raise ValueError("MaxPool3D needs even spatial dimensions")
        xr = x.reshape(b, c, d // 2, 2, h // 2, 2, w // 2, 2)
        return xr.transpose(0, 1, 2, 4, 6, 3, 5, 7).reshape(
            b, c, d // 2, h // 2, w // 2, 8
        ).max(axis=-1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._argmax is not None and self._shape is not None
        c, d, h, w = self._shape
        out_blocks = np.zeros((c, d // 2, h // 2, w // 2, 8))
        np.put_along_axis(out_blocks, self._argmax[..., None], grad[..., None], axis=-1)
        xr = out_blocks.reshape(c, d // 2, h // 2, w // 2, 2, 2, 2)
        return xr.transpose(0, 1, 4, 2, 5, 3, 6).reshape(c, d, h, w)


class Upsample3D(Layer):
    """Nearest-neighbor 2x upsampling; backward sums over the 2^3 block."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.repeat(2, axis=1).repeat(2, axis=2).repeat(2, axis=3)

    def forward_batch(self, x: np.ndarray) -> np.ndarray:
        return x.repeat(2, axis=2).repeat(2, axis=3).repeat(2, axis=4)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        c, d, h, w = grad.shape
        gr = grad.reshape(c, d // 2, 2, h // 2, 2, w // 2, 2)
        return gr.sum(axis=(2, 4, 6))


class Sequential(Layer):
    """A simple forward/backward chain of layers."""

    def __init__(self, *layers: Layer) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for idx, layer in enumerate(self.layers):
            for k, v in layer.params().items():
                out[f"{idx}.{k}"] = v
        return out

    def grads(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for idx, layer in enumerate(self.layers):
            for k, v in layer.grads().items():
                out[f"{idx}.{k}"] = v
        return out
