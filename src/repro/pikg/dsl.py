"""The kernel DSL: declarations plus arithmetic statements.

A kernel description looks like::

    # gravity monopole (Eq. 1)
    i: xi[3], eps2_i
    j: xj[3], m_j, eps2_j
    acc: f[3]
    rij = xi - xj
    r2 = dot(rij, rij) + eps2_i + eps2_j
    rinv = rsqrt(r2)
    rinv3 = rinv * rinv * rinv
    f -= m_j * rinv3 * rij

Grammar
-------
* ``i:`` / ``j:`` / ``acc:`` lines declare per-target variables, per-source
  variables and accumulators; ``name[3]`` marks a 3-vector.
* Remaining lines are assignments ``lhs = expr``, ``lhs += expr`` or
  ``lhs -= expr``; expressions support ``+ - * /``, unary minus, parentheses
  and the intrinsics ``sqrt, rsqrt, min, max, dot, abs``.
* ``+=``/``-=`` on an accumulator means "sum over all j".

Expressions are parsed with :mod:`ast` (restricted node whitelist — no
attribute access, no calls beyond the intrinsics), which both keeps the
parser small and makes the op-count walk trivial.  The op count uses the
same convention as the paper's Table 4: one per add/sub/mul, four per
divide/sqrt/rsqrt (their amortized SIMD cost), three per dot product pair.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Allowed intrinsic functions and their per-call operation cost
#: (scalar-equivalent; vector args multiply by component count).
INTRINSICS = {
    "sqrt": 4,
    "rsqrt": 4,
    "min": 1,
    "max": 1,
    "abs": 1,
    "dot": 5,   # 3 mul + 2 add
}

_ALLOWED_NODES = (
    ast.Expression,
    ast.BinOp,
    ast.UnaryOp,
    ast.USub,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.Call,
    ast.Name,
    ast.Constant,
    ast.Load,
)

_OP_COST = {ast.Add: 1, ast.Sub: 1, ast.Mult: 1, ast.Div: 4}


@dataclass
class Statement:
    """One assignment: target, op ('=', '+=', '-='), expression AST."""

    target: str
    op: str
    expr: ast.Expression
    source: str


@dataclass
class KernelSpec:
    """A parsed kernel: declarations, statements, op count."""

    name: str
    i_vars: dict[str, int] = field(default_factory=dict)   # name -> width
    j_vars: dict[str, int] = field(default_factory=dict)
    accumulators: dict[str, int] = field(default_factory=dict)
    statements: list[Statement] = field(default_factory=list)

    # -------------------------------------------------------------- widths
    def width_of(self, name: str, local: dict[str, int]) -> int:
        for table in (self.i_vars, self.j_vars, self.accumulators, local):
            if name in table:
                return table[name]
        raise KeyError(f"unknown variable {name!r} in kernel {self.name!r}")

    def _expr_width(self, node: ast.AST, local: dict[str, int]) -> int:
        if isinstance(node, ast.Expression):
            return self._expr_width(node.body, local)
        if isinstance(node, ast.Constant):
            return 1
        if isinstance(node, ast.Name):
            return self.width_of(node.id, local)
        if isinstance(node, ast.UnaryOp):
            return self._expr_width(node.operand, local)
        if isinstance(node, ast.BinOp):
            return max(
                self._expr_width(node.left, local), self._expr_width(node.right, local)
            )
        if isinstance(node, ast.Call):
            if node.func.id == "dot":
                return 1
            return max(self._expr_width(a, local) for a in node.args)
        raise TypeError(f"unsupported node {type(node).__name__}")

    # ------------------------------------------------------------ op count
    def operation_count(self) -> int:
        """Scalar-equivalent operations per (i, j) interaction."""
        local: dict[str, int] = {}
        total = 0
        for st in self.statements:
            w = self._expr_width(st.expr, local)
            total += self._count_expr(st.expr.body, local)
            if st.op in ("+=", "-="):
                total += self.width_of(st.target, local)  # the accumulate add
            else:
                local[st.target] = w
        return total

    def _count_expr(self, node: ast.AST, local: dict[str, int]) -> int:
        if isinstance(node, (ast.Constant, ast.Name)):
            return 0
        if isinstance(node, ast.UnaryOp):
            return self._count_expr(node.operand, local)
        if isinstance(node, ast.BinOp):
            w = max(
                self._expr_width(node.left, local), self._expr_width(node.right, local)
            )
            return (
                _OP_COST[type(node.op)] * w
                + self._count_expr(node.left, local)
                + self._count_expr(node.right, local)
            )
        if isinstance(node, ast.Call):
            fname = node.func.id
            inner = sum(self._count_expr(a, local) for a in node.args)
            if fname == "dot":
                return INTRINSICS["dot"] + inner
            w = max(self._expr_width(a, local) for a in node.args)
            return INTRINSICS[fname] * w + inner
        raise TypeError(f"unsupported node {type(node).__name__}")


def _validate(tree: ast.Expression, name: str) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise ValueError(
                f"kernel {name!r}: disallowed syntax {type(node).__name__}"
            )
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name) or node.func.id not in INTRINSICS:
                raise ValueError(f"kernel {name!r}: unknown intrinsic")


def _parse_decl(line: str) -> dict[str, int]:
    out: dict[str, int] = {}
    body = line.split(":", 1)[1]
    for tok in body.split(","):
        tok = tok.strip()
        if not tok:
            continue
        if tok.endswith("[3]"):
            out[tok[:-3].strip()] = 3
        else:
            out[tok] = 1
    return out


def parse_kernel(text: str, name: str = "kernel") -> KernelSpec:
    """Parse a DSL description into a :class:`KernelSpec`."""
    spec = KernelSpec(name=name)
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("i:"):
            spec.i_vars.update(_parse_decl(line))
        elif line.startswith("j:"):
            spec.j_vars.update(_parse_decl(line))
        elif line.startswith("acc:"):
            spec.accumulators.update(_parse_decl(line))
        else:
            for op in ("+=", "-=", "="):
                if op in line:
                    target, expr_src = line.split(op, 1)
                    target = target.strip()
                    tree = ast.parse(expr_src.strip(), mode="eval")
                    _validate(tree, name)
                    if op in ("+=", "-=") and target not in spec.accumulators:
                        raise ValueError(
                            f"kernel {name!r}: '{op}' target {target!r} is not an accumulator"
                        )
                    spec.statements.append(
                        Statement(target=target, op=op, expr=tree, source=expr_src.strip())
                    )
                    break
            else:
                raise ValueError(f"kernel {name!r}: cannot parse line {raw!r}")
    if not spec.statements:
        raise ValueError(f"kernel {name!r}: no statements")
    return spec


#: The paper's gravity monopole kernel (Eq. 1) in the DSL.
GRAVITY_DSL = """
i: xi[3], eps2_i
j: xj[3], m_j, eps2_j
acc: f[3]
rij = xi - xj
r2 = dot(rij, rij) + eps2_i + eps2_j
rinv = rsqrt(r2)
rinv3 = rinv * rinv * rinv
f -= m_j * rinv3 * rij
"""

#: SPH density with the Wendland C2 kernel — expressible branch-free in the
#: DSL because max(1-q, 0) encodes the compact support (the same trick the
#: production PIKG uses instead of per-lane branches), with
#: W = sigma/h^3 (1-q)^4 (1+4q), sigma = 21/(2 pi).
WENDLAND_DENSITY_DSL = """
i: xi[3], hinv_i
j: xj[3], m_j
acc: rho
rij = xi - xj
q = sqrt(dot(rij, rij)) * hinv_i
t = max(1.0 - q, 0.0)
t2 = t * t
w = t2 * t2 * (1.0 + 4.0 * q)
rho += 3.3422538049298023 * hinv_i * hinv_i * hinv_i * m_j * w
"""

#: SPH density with the M4 cubic spline (the library default kernel), in the
#: same branch-free style: the classic two-branch piecewise polynomial is
#: the difference of two truncated cubics,
#: w(q) = 2 [max(1-q, 0)^3 - 4 max(1/2 - q, 0)^3], sigma = 8/pi — so one
#: straight-line DSL body covers both segments and the q >= 1 cutoff.
CUBIC_DENSITY_DSL = """
i: xi[3], hinv_i
j: xj[3], m_j
acc: rho
rij = xi - xj
q = sqrt(dot(rij, rij)) * hinv_i
t1 = max(1.0 - q, 0.0)
t2 = max(0.5 - q, 0.0)
w = 2.0 * (t1 * t1 * t1 - 4.0 * t2 * t2 * t2)
rho += 2.5464790894703255 * hinv_i * hinv_i * hinv_i * m_j * w
"""
