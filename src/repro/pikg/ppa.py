"""Piecewise polynomial approximation with Remez minimax fitting (Sec. 3.5).

The production code uses Sollya to compute minimax polynomials on each of
``m`` subdomains of an SPH kernel function's domain, stores the
``m * (n+1)`` coefficients in SIMD registers, and evaluates them via a
table-lookup instruction.  :func:`remez_minimax` is a from-scratch Remez
exchange solver (the Sollya stand-in) and :class:`PPATable` is the segment
table with vectorized Horner evaluation (``np.take`` plays the role of the
SVE/AVX-512 table-lookup instruction; the paper notes AVX2 must fall back
to gather loads, which its Table 4 hydro numbers suffer for).

Equation (2) of the paper:
``f_app(x; k) = sum_l a_{k,l} (x - k d)^l`` with ``d`` the segment length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def remez_minimax(
    f,
    a: float,
    b: float,
    degree: int,
    n_iter: int = 30,
    grid: int = 4001,
) -> tuple[np.ndarray, float]:
    """Minimax polynomial of given degree for ``f`` on [a, b].

    Classic Remez exchange: solve for coefficients + equioscillation level E
    on degree+2 reference points, move the references to the extrema of the
    error, repeat.  Returns (coefficients low->high, max abs error).
    """
    if b <= a:
        raise ValueError("need a < b")
    xs_dense = np.linspace(a, b, grid)
    fs_dense = f(xs_dense)
    # Chebyshev-node initial reference.
    k = np.arange(degree + 2)
    ref = 0.5 * (a + b) + 0.5 * (b - a) * np.cos(np.pi * k / (degree + 1))
    ref = np.sort(ref)

    coeffs = np.zeros(degree + 1)
    for _ in range(n_iter):
        # Solve: sum_l c_l x_i^l + (-1)^i E = f(x_i).
        vand = np.vander(ref, degree + 1, increasing=True)
        signs = ((-1.0) ** np.arange(degree + 2))[:, None]
        a_mat = np.hstack([vand, signs])
        sol = np.linalg.solve(a_mat, f(ref))
        coeffs = sol[:-1]
        level = abs(sol[-1])

        err = np.polyval(coeffs[::-1], xs_dense) - fs_dense
        # Standard Remez termination: the dense error no longer exceeds the
        # equioscillation level (also catches the exactly-representable
        # case, where the "error" is pure floating-point noise and the
        # extrema exchange would feed garbage references to the next solve).
        if np.max(np.abs(err)) <= level * (1.0 + 1e-9) + 1e-13 * max(
            1.0, np.max(np.abs(fs_dense))
        ):
            break
        # New references: local extrema of the error (sign-alternating).
        idx = _alternating_extrema(err, degree + 2)
        new_ref = xs_dense[idx]
        if np.allclose(new_ref, ref, rtol=0, atol=(b - a) * 1e-12):
            ref = new_ref
            break
        ref = new_ref
    err = np.polyval(coeffs[::-1], xs_dense) - fs_dense
    return coeffs, float(np.max(np.abs(err)))


def _alternating_extrema(err: np.ndarray, count: int) -> np.ndarray:
    """Indices of the ``count`` largest alternating local extrema of err."""
    n = len(err)
    cand = [0]
    for i in range(1, n - 1):
        if (err[i] - err[i - 1]) * (err[i + 1] - err[i]) <= 0:
            cand.append(i)
    cand.append(n - 1)
    cand = np.array(sorted(set(cand)))
    # Greedy: walk candidates keeping the largest |err| per sign run.
    picked: list[int] = []
    cur_sign = 0.0
    for i in cand:
        s = np.sign(err[i])
        if s == 0:
            continue
        if s != cur_sign:
            picked.append(i)
            cur_sign = s
        elif abs(err[i]) > abs(err[picked[-1]]):
            picked[-1] = i
    while len(picked) < count:
        # Degenerate error curve: pad with evenly spaced points.
        extras = np.linspace(0, n - 1, count).astype(int)
        picked = sorted(set(picked) | set(extras))[:count]
    if len(picked) > count:
        # Keep the largest-magnitude alternating subset.
        picked = sorted(picked, key=lambda i: -abs(err[i]))[:count]
        picked = sorted(picked)
    return np.asarray(picked, dtype=np.int64)


@dataclass
class PPATable:
    """Segmented minimax approximation of f on [0, x_max].

    ``coeffs[k, l]`` is the coefficient of (x - k d)^l on segment k —
    exactly Eq. (2) of the paper.
    """

    coeffs: np.ndarray    # (m, n+1), low -> high order
    x_max: float
    max_error: float

    @classmethod
    def fit(
        cls, f, x_max: float, n_segments: int = 8, degree: int = 3
    ) -> "PPATable":
        """Fit minimax polynomials on each of ``n_segments`` subdomains."""
        d = x_max / n_segments
        coeffs = np.zeros((n_segments, degree + 1))
        worst = 0.0
        for k in range(n_segments):
            lo = k * d
            # Fit in the local coordinate t = x - k d on [0, d].
            c, err = remez_minimax(lambda t: f(t + lo), 0.0, d, degree)
            coeffs[k] = c
            worst = max(worst, err)
        return cls(coeffs=coeffs, x_max=float(x_max), max_error=worst)

    @property
    def n_segments(self) -> int:
        return self.coeffs.shape[0]

    @property
    def degree(self) -> int:
        return self.coeffs.shape[1] - 1

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Vectorized evaluation: table lookup + Horner."""
        x = np.asarray(x, dtype=np.float64)
        d = self.x_max / self.n_segments
        k = np.clip((x / d).astype(np.int64), 0, self.n_segments - 1)
        t = x - k * d
        # np.take = the SIMD table-lookup of the coefficients.
        result = np.take(self.coeffs[:, -1], k)
        for l in range(self.degree - 1, -1, -1):
            result = result * t + np.take(self.coeffs[:, l], k)
        return result

    def flops_per_eval(self) -> int:
        """2 ops per Horner stage + segment-index arithmetic."""
        return 2 * self.degree + 3
