"""Code generation: DSL -> compiled Python kernels.

Two backends mirror what the production PIKG does for SIMD targets:

* **numpy** — fully vectorized over the (N_i, N_j) interaction tile:
  i-variables become shape (N_i, 1[, 3]) views, j-variables (1, N_j[, 3]),
  all statements broadcast, and accumulators reduce over the j axis.  This
  is the "SoA conversion + vector loop" transformation PIKG performs for
  SVE/AVX (the NumPy ufunc layer stands in for the SIMD lanes);
* **scalar** — a plain double loop used as the semantics reference (what
  the intrinsics must agree with).

Generated source is compiled with :func:`exec` into a function
``kernel(i_arrays: dict, j_arrays: dict) -> dict`` mapping accumulator
names to (N_i[, 3]) arrays.  The source string is kept on the function as
``.source`` for inspection (the paper quotes ~500 generated lines for the
A64FX gravity kernel; ours is rather shorter).
"""

from __future__ import annotations

import ast
import math

import numpy as np

from repro.pikg.dsl import KernelSpec


def _expr_to_py(node: ast.AST, backend: str) -> str:
    if isinstance(node, ast.Expression):
        return _expr_to_py(node.body, backend)
    if isinstance(node, ast.Constant):
        return repr(node.value)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.UnaryOp):
        return f"(-{_expr_to_py(node.operand, backend)})"
    if isinstance(node, ast.BinOp):
        op = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/"}[type(node.op)]
        return f"({_expr_to_py(node.left, backend)} {op} {_expr_to_py(node.right, backend)})"
    if isinstance(node, ast.Call):
        args = ", ".join(_expr_to_py(a, backend) for a in node.args)
        return f"_{node.func.id}({args})"
    raise TypeError(type(node).__name__)


# Intrinsic implementations per backend.
_NUMPY_INTRINSICS = {
    "_sqrt": np.sqrt,
    "_rsqrt": lambda x: 1.0 / np.sqrt(x),
    "_min": np.minimum,
    "_max": np.maximum,
    "_abs": np.abs,
    "_dot": lambda a, b: np.sum(a * b, axis=-1, keepdims=True),
}
_SCALAR_INTRINSICS = {
    "_sqrt": math.sqrt,
    "_rsqrt": lambda x: 1.0 / math.sqrt(x),
    "_min": min,
    "_max": max,
    "_abs": abs,
    "_dot": lambda a, b: sum(x * y for x, y in zip(a, b)),
}


def generate_numpy_kernel(spec: KernelSpec):
    """Compile the vectorized kernel; returns the function (with .source)."""
    lines = [f"def {spec.name}(i_arrays, j_arrays):"]
    lines.append("    import numpy as np")
    lines.append(
        "    # --- SoA unpack onto a uniform (Ni, Nj, components) broadcast"
    )
    lines.append("    # layout: scalars carry a singleton component axis.")
    for name, width in spec.i_vars.items():
        tail = ", 3" if width == 3 else ", 1"
        lines.append(
            f"    {name} = np.asarray(i_arrays['{name}'], dtype=np.float64)"
            f".reshape(-1, 1{tail})"
        )
    for name, width in spec.j_vars.items():
        tail = ", 3" if width == 3 else ", 1"
        lines.append(
            f"    {name} = np.asarray(j_arrays['{name}'], dtype=np.float64)"
            f".reshape(1, -1{tail})"
        )
    lines.append("    _ni = len(next(iter(i_arrays.values())))")
    lines.append("    _nj = len(next(iter(j_arrays.values())))")
    for name, width in spec.accumulators.items():
        shape = "(_ni, 3)" if width == 3 else "(_ni,)"
        lines.append(f"    {name}_out = np.zeros({shape})")
    for st in spec.statements:
        expr = _expr_to_py(st.expr, "numpy")
        if st.op == "=":
            lines.append(f"    {st.target} = {expr}")
        else:
            sign = "+" if st.op == "+=" else "-"
            width = spec.accumulators[st.target]
            if width == 3:
                lines.append(
                    f"    {st.target}_out {sign}= np.sum(np.broadcast_to({expr}, "
                    f"(_ni, _nj, 3)), axis=1)"
                )
            else:
                lines.append(
                    f"    {st.target}_out {sign}= np.sum(np.broadcast_to({expr}, "
                    f"(_ni, _nj, 1)), axis=(1, 2))"
                )
    lines.append(
        "    return {"
        + ", ".join(f"'{n}': {n}_out" for n in spec.accumulators)
        + "}"
    )
    source = "\n".join(lines)

    env: dict = dict(_NUMPY_INTRINSICS)
    exec(source, env)
    fn = env[spec.name]
    fn.source = source
    fn.spec = spec
    return fn


def generate_scalar_kernel(spec: KernelSpec):
    """Compile the reference double-loop kernel (slow; for verification)."""
    lines = [f"def {spec.name}(i_arrays, j_arrays):"]
    lines.append("    import numpy as np")
    lines.append("    _ni = len(next(iter(i_arrays.values())))")
    lines.append("    _nj = len(next(iter(j_arrays.values())))")
    for name, width in spec.accumulators.items():
        shape = "(_ni, 3)" if width == 3 else "(_ni,)"
        lines.append(f"    {name}_out = np.zeros({shape})")
    lines.append("    for _i in range(_ni):")
    for name, width in spec.i_vars.items():
        conv = "np.asarray(i_arrays['%s'][_i], dtype=np.float64)" % name
        lines.append(f"        {name} = {conv}")
    lines.append("        for _j in range(_nj):")
    for name, width in spec.j_vars.items():
        conv = "np.asarray(j_arrays['%s'][_j], dtype=np.float64)" % name
        lines.append(f"            {name} = {conv}")
    for st in spec.statements:
        expr = _expr_to_py(st.expr, "scalar")
        if st.op == "=":
            lines.append(f"            {st.target} = {expr}")
        else:
            sign = "+" if st.op == "+=" else "-"
            lines.append(f"            {st.target}_out[_i] {sign}= {expr}")
    lines.append(
        "    return {"
        + ", ".join(f"'{n}': {n}_out" for n in spec.accumulators)
        + "}"
    )
    source = "\n".join(lines)
    env: dict = dict(_SCALAR_INTRINSICS)
    env["_sqrt"] = np.sqrt   # scalar path still sees small arrays for vectors
    env["_rsqrt"] = lambda x: 1.0 / np.sqrt(x)
    env["_abs"] = np.abs
    env["_min"] = np.minimum
    env["_max"] = np.maximum
    env["_dot"] = lambda a, b: float(np.sum(np.asarray(a) * np.asarray(b)))
    exec(source, env)
    fn = env[spec.name]
    fn.source = source
    fn.spec = spec
    return fn
