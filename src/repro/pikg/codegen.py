"""Code generation: DSL -> compiled Python kernels.

Three targets mirror what the production PIKG does for SIMD/accelerator
ISAs:

* **numpy** — fully vectorized over the (N_i, N_j) interaction tile:
  i-variables become shape (N_i, 1[, 3]) views, j-variables (1, N_j[, 3]),
  all statements broadcast, and accumulators reduce over the j axis.  This
  is the "SoA conversion + vector loop" transformation PIKG performs for
  SVE/AVX (the NumPy ufunc layer stands in for the SIMD lanes);
* **scalar** — a plain double loop used as the semantics reference (what
  the intrinsics must agree with);
* **numba** (:func:`generate_numba_kernel`) — a fully scalarized loop nest
  (3-vectors unrolled into per-component scalars, exactly the SoA register
  allocation PIKG performs) that is ``@numba.njit``-compiled when numba is
  importable and runs as plain Python otherwise.  This is the target the
  ``pikg`` entry of :mod:`repro.accel.backends` feeds into the production
  force pipeline, closing the loop between the DSL reproduction and the
  fast path.

Generated source is compiled with :func:`exec` into a function
``kernel(i_arrays: dict, j_arrays: dict) -> dict`` mapping accumulator
names to (N_i[, 3]) arrays.  The source string is kept on the function as
``.source`` for inspection (the paper quotes ~500 generated lines for the
A64FX gravity kernel; ours is rather shorter).
"""

from __future__ import annotations

import ast
import math

import numpy as np

from repro.pikg.dsl import KernelSpec


def _expr_to_py(node: ast.AST, backend: str) -> str:
    if isinstance(node, ast.Expression):
        return _expr_to_py(node.body, backend)
    if isinstance(node, ast.Constant):
        return repr(node.value)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.UnaryOp):
        return f"(-{_expr_to_py(node.operand, backend)})"
    if isinstance(node, ast.BinOp):
        op = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/"}[type(node.op)]
        return f"({_expr_to_py(node.left, backend)} {op} {_expr_to_py(node.right, backend)})"
    if isinstance(node, ast.Call):
        args = ", ".join(_expr_to_py(a, backend) for a in node.args)
        return f"_{node.func.id}({args})"
    raise TypeError(type(node).__name__)


# Intrinsic implementations per backend.
_NUMPY_INTRINSICS = {
    "_sqrt": np.sqrt,
    "_rsqrt": lambda x: 1.0 / np.sqrt(x),
    "_min": np.minimum,
    "_max": np.maximum,
    "_abs": np.abs,
    "_dot": lambda a, b: np.sum(a * b, axis=-1, keepdims=True),
}
_SCALAR_INTRINSICS = {
    "_sqrt": math.sqrt,
    "_rsqrt": lambda x: 1.0 / math.sqrt(x),
    "_min": min,
    "_max": max,
    "_abs": abs,
    "_dot": lambda a, b: sum(x * y for x, y in zip(a, b, strict=True)),
}


def generate_numpy_kernel(spec: KernelSpec):
    """Compile the vectorized kernel; returns the function (with .source)."""
    lines = [f"def {spec.name}(i_arrays, j_arrays):"]
    lines.append("    import numpy as np")
    lines.append(
        "    # --- SoA unpack onto a uniform (Ni, Nj, components) broadcast"
    )
    lines.append("    # layout: scalars carry a singleton component axis.")
    for name, width in spec.i_vars.items():
        tail = ", 3" if width == 3 else ", 1"
        lines.append(
            f"    {name} = np.asarray(i_arrays['{name}'], dtype=np.float64)"
            f".reshape(-1, 1{tail})"
        )
    for name, width in spec.j_vars.items():
        tail = ", 3" if width == 3 else ", 1"
        lines.append(
            f"    {name} = np.asarray(j_arrays['{name}'], dtype=np.float64)"
            f".reshape(1, -1{tail})"
        )
    lines.append("    _ni = len(next(iter(i_arrays.values())))")
    lines.append("    _nj = len(next(iter(j_arrays.values())))")
    for name, width in spec.accumulators.items():
        shape = "(_ni, 3)" if width == 3 else "(_ni,)"
        lines.append(f"    {name}_out = np.zeros({shape})")
    for st in spec.statements:
        expr = _expr_to_py(st.expr, "numpy")
        if st.op == "=":
            lines.append(f"    {st.target} = {expr}")
        else:
            sign = "+" if st.op == "+=" else "-"
            width = spec.accumulators[st.target]
            if width == 3:
                lines.append(
                    f"    {st.target}_out {sign}= np.sum(np.broadcast_to({expr}, "
                    f"(_ni, _nj, 3)), axis=1)"
                )
            else:
                lines.append(
                    f"    {st.target}_out {sign}= np.sum(np.broadcast_to({expr}, "
                    f"(_ni, _nj, 1)), axis=(1, 2))"
                )
    lines.append(
        "    return {"
        + ", ".join(f"'{n}': {n}_out" for n in spec.accumulators)
        + "}"
    )
    source = "\n".join(lines)

    env: dict = dict(_NUMPY_INTRINSICS)
    exec(source, env)
    fn = env[spec.name]
    fn.source = source
    fn.spec = spec
    return fn


def generate_scalar_kernel(spec: KernelSpec):
    """Compile the reference double-loop kernel (slow; for verification)."""
    lines = [f"def {spec.name}(i_arrays, j_arrays):"]
    lines.append("    import numpy as np")
    lines.append("    _ni = len(next(iter(i_arrays.values())))")
    lines.append("    _nj = len(next(iter(j_arrays.values())))")
    for name, width in spec.accumulators.items():
        shape = "(_ni, 3)" if width == 3 else "(_ni,)"
        lines.append(f"    {name}_out = np.zeros({shape})")
    lines.append("    for _i in range(_ni):")
    for name in spec.i_vars:
        conv = "np.asarray(i_arrays['%s'][_i], dtype=np.float64)" % name
        lines.append(f"        {name} = {conv}")
    lines.append("        for _j in range(_nj):")
    for name in spec.j_vars:
        conv = "np.asarray(j_arrays['%s'][_j], dtype=np.float64)" % name
        lines.append(f"            {name} = {conv}")
    for st in spec.statements:
        expr = _expr_to_py(st.expr, "scalar")
        if st.op == "=":
            lines.append(f"            {st.target} = {expr}")
        else:
            sign = "+" if st.op == "+=" else "-"
            lines.append(f"            {st.target}_out[_i] {sign}= {expr}")
    lines.append(
        "    return {"
        + ", ".join(f"'{n}': {n}_out" for n in spec.accumulators)
        + "}"
    )
    source = "\n".join(lines)
    env: dict = dict(_SCALAR_INTRINSICS)
    env["_sqrt"] = np.sqrt   # scalar path still sees small arrays for vectors
    env["_rsqrt"] = lambda x: 1.0 / np.sqrt(x)
    env["_abs"] = np.abs
    env["_min"] = np.minimum
    env["_max"] = np.maximum
    env["_dot"] = lambda a, b: float(np.sum(np.asarray(a) * np.asarray(b)))
    exec(source, env)
    fn = env[spec.name]
    fn.source = source
    fn.spec = spec
    return fn


# --------------------------------------------------------------------- numba
def _emit_scalar(node: ast.AST, comp: int, spec: KernelSpec, local: dict[str, int]) -> str:
    """Emit one scalar component of an expression.

    3-vector names become ``name_<comp>`` scalars (the component unrolling
    PIKG performs when it allocates SoA registers); width-1 names emit the
    same scalar for every component.  Intrinsics are inlined as plain
    Python/numpy scalar operations so the source needs no call environment
    beyond ``np`` — which is exactly what ``numba.njit`` wants to see.
    """
    if isinstance(node, ast.Expression):
        return _emit_scalar(node.body, comp, spec, local)
    if isinstance(node, ast.Constant):
        return repr(node.value)
    if isinstance(node, ast.Name):
        if spec.width_of(node.id, local) == 3:
            return f"{node.id}_{comp}"
        return node.id
    if isinstance(node, ast.UnaryOp):
        return f"(-{_emit_scalar(node.operand, comp, spec, local)})"
    if isinstance(node, ast.BinOp):
        op = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/"}[type(node.op)]
        return (
            f"({_emit_scalar(node.left, comp, spec, local)} {op} "
            f"{_emit_scalar(node.right, comp, spec, local)})"
        )
    if isinstance(node, ast.Call):
        fname = node.func.id
        if fname == "dot":
            a, b = node.args
            terms = " + ".join(
                f"{_emit_scalar(a, c, spec, local)} * {_emit_scalar(b, c, spec, local)}"
                for c in range(3)
            )
            return f"({terms})"
        args = [_emit_scalar(a, comp, spec, local) for a in node.args]
        if fname == "sqrt":
            return f"np.sqrt({args[0]})"
        if fname == "rsqrt":
            return f"(1.0 / np.sqrt({args[0]}))"
        if fname == "abs":
            return f"abs({args[0]})"
        if fname in ("min", "max"):
            return f"{fname}({', '.join(args)})"
        raise ValueError(f"unknown intrinsic {fname!r}")
    raise TypeError(type(node).__name__)


def _emit_statements(spec: KernelSpec, indent: str, acc_target) -> list[str]:
    """Body statements, scalarized.

    ``acc_target(name, comp, width)`` formats the accumulation target — a
    scalar register for the tile layout, an output-row element for the
    scatter (pairs) layout — so both layouts share one emission of the
    statement semantics.
    """
    lines: list[str] = []
    local: dict[str, int] = {}
    for st in spec.statements:
        width = spec._expr_width(st.expr, local)
        if st.op == "=":
            if width == 3:
                for c in range(3):
                    lines.append(
                        f"{indent}{st.target}_{c} = {_emit_scalar(st.expr, c, spec, local)}"
                    )
            else:
                lines.append(f"{indent}{st.target} = {_emit_scalar(st.expr, 0, spec, local)}")
            local[st.target] = width
        else:
            sign = "+" if st.op == "+=" else "-"
            acc_width = spec.accumulators[st.target]
            for c in range(acc_width):
                lines.append(
                    f"{indent}{acc_target(st.target, c, acc_width)} {sign}= "
                    f"{_emit_scalar(st.expr, c, spec, local)}"
                )
    return lines


def _unpack_vars(names: dict[str, int], row: str, indent: str) -> list[str]:
    lines = []
    for name, width in names.items():
        if width == 3:
            for c in range(3):
                lines.append(f"{indent}{name}_{c} = _a_{name}[{row}, {c}]")
        else:
            lines.append(f"{indent}{name} = _a_{name}[{row}]")
    return lines


def generate_numba_kernel(spec: KernelSpec, layout: str = "tile"):
    """Compile the fully scalarized loop kernel (numba target).

    ``layout="tile"`` emits the dense (N_i x N_j) double loop — the shape
    PIKG generates for direct/tree-walk gravity — parallelized over targets
    with ``prange``.  ``layout="pairs"`` emits a single loop over a
    precomputed edge list ``(ii, jj)`` with scatter accumulation — the
    shape of the SPH gather/scatter kernels (serial: the scatter races
    under threads).

    When numba is importable the inner function is ``@njit``-compiled
    (``fastmath=True``, ``parallel=True`` for the tile layout); otherwise
    the plain Python source runs as-is, so the target stays usable (and
    testable) in a bare environment.  The returned wrapper keeps the
    ``kernel(i_arrays, j_arrays[, ii, jj])`` dict convention of the other
    generators and carries ``.source`` / ``.spec`` / ``.inner`` /
    ``.jitted``.
    """
    if layout not in ("tile", "pairs"):
        raise ValueError(f"unknown layout {layout!r}")
    i_args = [f"_a_{n}" for n in spec.i_vars]
    j_args = [f"_a_{n}" for n in spec.j_vars]
    if layout == "tile":
        params = ", ".join(i_args + j_args)
    else:
        params = ", ".join(["_ii", "_jj", "_n_i", *i_args, *j_args])
    lines = [f"def {spec.name}({params}):"]
    if layout == "tile":
        lines.append(f"    _ni = _a_{next(iter(spec.i_vars))}.shape[0]")
        lines.append(f"    _nj = _a_{next(iter(spec.j_vars))}.shape[0]")
    else:
        lines.append("    _ni = _n_i")
    for name, width in spec.accumulators.items():
        shape = "(_ni, 3)" if width == 3 else "_ni"
        lines.append(f"    {name}_out = np.zeros({shape})")
    def _out_elem(name: str, comp: int, width: int) -> str:
        return f"{name}_out[_i, {comp}]" if width == 3 else f"{name}_out[_i]"

    if layout == "tile":
        lines.append("    for _i in _prange(_ni):")
        lines.extend(_unpack_vars(spec.i_vars, "_i", " " * 8))
        for name, width in spec.accumulators.items():
            for c in range(width):
                lines.append(f"        _acc_{name}_{c} = 0.0")
        lines.append("        for _j in range(_nj):")
        lines.extend(_unpack_vars(spec.j_vars, "_j", " " * 12))
        # Accumulate into per-target scalar registers inside the j loop...
        lines.extend(
            _emit_statements(spec, " " * 12, lambda n, c, w: f"_acc_{n}_{c}")
        )
        # ...then spill them to the output rows once per target.
        for name, width in spec.accumulators.items():
            for c in range(width):
                lines.append(f"        {_out_elem(name, c, width)} = _acc_{name}_{c}")
    else:
        lines.append("    for _p in range(_ii.shape[0]):")
        lines.append("        _i = _ii[_p]")
        lines.append("        _j = _jj[_p]")
        lines.extend(_unpack_vars(spec.i_vars, "_i", " " * 8))
        lines.extend(_unpack_vars(spec.j_vars, "_j", " " * 8))
        # Scatter layout accumulates straight into the output rows.
        lines.extend(_emit_statements(spec, " " * 8, _out_elem))
    rets = ", ".join(f"{n}_out" for n in spec.accumulators)
    lines.append(f"    return ({rets},)")
    source = "\n".join(lines)

    try:
        import numba

        env: dict = {"np": np, "_prange": numba.prange}
        exec(source, env)
        inner = numba.njit(fastmath=True, parallel=(layout == "tile"))(env[spec.name])
        jitted = True
    except ImportError:
        env = {"np": np, "_prange": range}
        exec(source, env)
        inner = env[spec.name]
        jitted = False

    def _gather(arrays: dict, names: dict[str, int]) -> list[np.ndarray]:
        out = []
        for name, width in names.items():
            a = np.ascontiguousarray(arrays[name], dtype=np.float64)
            out.append(a.reshape(-1, 3) if width == 3 else a.reshape(-1))
        return out

    if layout == "tile":

        def kernel(i_arrays, j_arrays):
            outs = inner(*_gather(i_arrays, spec.i_vars), *_gather(j_arrays, spec.j_vars))
            return dict(zip(spec.accumulators, outs, strict=True))

    else:

        def kernel(i_arrays, j_arrays, ii, jj):
            i_in = _gather(i_arrays, spec.i_vars)
            n_i = len(i_in[0])
            outs = inner(
                np.ascontiguousarray(ii, dtype=np.int64),
                np.ascontiguousarray(jj, dtype=np.int64),
                n_i, *i_in, *_gather(j_arrays, spec.j_vars),
            )
            return dict(zip(spec.accumulators, outs, strict=True))

    kernel.source = source
    kernel.spec = spec
    kernel.inner = inner
    kernel.jitted = jitted
    kernel.layout = layout
    return kernel
