"""PIKG — the Particle-particle Interaction Kernel Generator (Sec. 3.5).

The production PIKG takes a small DSL describing a pairwise interaction and
emits architecture-specific code (ARM SVE intrinsics, AVX-512, CUDA), with
automatic AoS<->SoA conversion, loop unrolling/fission, and piecewise
polynomial approximation (PPA) of kernel functions via Sollya-computed
minimax polynomials evaluated by SIMD table lookup.

This package reproduces the pipeline with a NumPy backend:

* :mod:`repro.pikg.dsl` — parse kernel descriptions (i-vars, j-vars,
  accumulators, arithmetic statements) into a typed AST with an operation
  count (the 27/73/101 numbers of Table 4 are exactly such counts);
* :mod:`repro.pikg.codegen` — generate and compile a vectorized NumPy
  kernel (broadcast over i x j tiles, SoA in/out) and a scalar reference
  kernel for cross-checking;
* :mod:`repro.pikg.ppa` — a Remez-exchange minimax solver (the Sollya
  stand-in) and segment-table evaluation of SPH kernel functions.
"""

from repro.pikg.dsl import KernelSpec, parse_kernel
from repro.pikg.codegen import generate_numpy_kernel, generate_scalar_kernel
from repro.pikg.ppa import remez_minimax, PPATable

__all__ = [
    "KernelSpec",
    "parse_kernel",
    "generate_numpy_kernel",
    "generate_scalar_kernel",
    "remez_minimax",
    "PPATable",
]
