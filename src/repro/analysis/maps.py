"""Projection maps: the Fig. 5 face-on/edge-on column-density views."""

from __future__ import annotations

import numpy as np

from repro.fdps.particles import ParticleSet, ParticleType

_AXES = {"xy": (0, 1), "xz": (0, 2), "yz": (1, 2)}


def column_density_map(
    ps: ParticleSet,
    plane: str = "xy",
    extent: float = 5000.0,
    n_pix: int = 64,
    species: ParticleType | None = ParticleType.GAS,
) -> np.ndarray:
    """Surface density [M_sun/pc^2] on a (n_pix, n_pix) grid.

    ``plane='xy'`` is the face-on panel of Fig. 5, ``'xz'`` the edge-on one;
    ``extent`` is the half-width in pc.  Mass is NGP-deposited (the paper's
    figure is an SPH projection; NGP at 64-128 pixels is visually
    equivalent for maps and exactly mass-conserving).
    """
    if plane not in _AXES:
        raise ValueError(f"plane must be one of {sorted(_AXES)}")
    ax, ay = _AXES[plane]
    sel = np.ones(len(ps), dtype=bool) if species is None else ps.where_type(species)
    pos = ps.pos[sel]
    mass = ps.mass[sel]
    a = pos[:, ax]
    b = pos[:, ay]
    inside = (np.abs(a) < extent) & (np.abs(b) < extent)
    pix = 2.0 * extent / n_pix
    ia = np.clip(((a[inside] + extent) / pix).astype(np.int64), 0, n_pix - 1)
    ib = np.clip(((b[inside] + extent) / pix).astype(np.int64), 0, n_pix - 1)
    # bincount reduction — same per-pixel accumulation order as the
    # np.add.at scatter it replaces, so the deposit is bit-identical.
    grid = np.bincount(
        ia * n_pix + ib, weights=mass[inside], minlength=n_pix * n_pix
    ).reshape(n_pix, n_pix)
    return grid / pix**2


def surface_density_profile(
    ps: ParticleSet,
    n_bins: int = 32,
    r_max: float = 20000.0,
    species: ParticleType | None = ParticleType.STAR,
) -> tuple[np.ndarray, np.ndarray]:
    """Azimuthally averaged Sigma(R) [M_sun/pc^2] (disk structure check)."""
    sel = np.ones(len(ps), dtype=bool) if species is None else ps.where_type(species)
    r = np.hypot(ps.pos[sel, 0], ps.pos[sel, 1])
    mass = ps.mass[sel]
    edges = np.linspace(0.0, r_max, n_bins + 1)
    which = np.clip(np.digitize(r, edges) - 1, 0, n_bins - 1)
    ok = r < r_max
    msum = np.bincount(which[ok], weights=mass[ok], minlength=n_bins)
    area = np.pi * (edges[1:] ** 2 - edges[:-1] ** 2)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, msum / area


def disk_thickness(ps: ParticleSet, species: ParticleType = ParticleType.GAS) -> float:
    """Mass-weighted rms height of a species [pc]."""
    sel = ps.where_type(species)
    z = ps.pos[sel, 2]
    m = ps.mass[sel]
    if m.sum() <= 0:
        return 0.0
    return float(np.sqrt(np.sum(m * z**2) / m.sum()))
