"""Density/temperature PDFs — the Sec. 3.3 validation statistics.

The paper (via ref. [14]) validates the surrogate by showing "the
probability distribution functions of gas density and temperature are
reproduced with the surrogate model for SNe".  These helpers compute
mass-weighted log-space PDFs and a comparison metric.
"""

from __future__ import annotations

import numpy as np

from repro.fdps.particles import ParticleSet, ParticleType
from repro.util.constants import internal_energy_to_temperature


def _gas(ps: ParticleSet) -> np.ndarray:
    return ps.where_type(ParticleType.GAS)


def density_pdf(
    ps: ParticleSet, bins: np.ndarray | int = 32, range_dex: tuple[float, float] = (-6, 4)
) -> tuple[np.ndarray, np.ndarray]:
    """Mass-weighted PDF of log10 gas density; returns (bin centers, pdf)."""
    sel = _gas(ps)
    logrho = np.log10(np.maximum(ps.dens[sel], 1e-300))
    if isinstance(bins, int):
        bins = np.linspace(range_dex[0], range_dex[1], bins + 1)
    hist, edges = np.histogram(logrho, bins=bins, weights=ps.mass[sel], density=True)
    return 0.5 * (edges[:-1] + edges[1:]), hist


def temperature_pdf(
    ps: ParticleSet, bins: np.ndarray | int = 32, range_dex: tuple[float, float] = (0, 9)
) -> tuple[np.ndarray, np.ndarray]:
    """Mass-weighted PDF of log10 gas temperature."""
    sel = _gas(ps)
    logt = np.log10(np.maximum(internal_energy_to_temperature(ps.u[sel]), 1.0))
    if isinstance(bins, int):
        bins = np.linspace(range_dex[0], range_dex[1], bins + 1)
    hist, edges = np.histogram(logt, bins=bins, weights=ps.mass[sel], density=True)
    return 0.5 * (edges[:-1] + edges[1:]), hist


def phase_diagram(
    ps: ParticleSet, n_bins: int = 32
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mass-weighted (log rho, log T) 2D histogram: (rho_edges, t_edges, H)."""
    sel = _gas(ps)
    logrho = np.log10(np.maximum(ps.dens[sel], 1e-300))
    logt = np.log10(np.maximum(internal_energy_to_temperature(ps.u[sel]), 1.0))
    h, rho_edges, t_edges = np.histogram2d(
        logrho, logt, bins=n_bins, weights=ps.mass[sel]
    )
    return rho_edges, t_edges, h


def pdf_distance(
    pdf_a: tuple[np.ndarray, np.ndarray], pdf_b: tuple[np.ndarray, np.ndarray]
) -> float:
    """L1 distance between two PDFs on the same bins (0 = identical, 2 = disjoint)."""
    xa, ya = pdf_a
    xb, yb = pdf_b
    if len(xa) != len(xb) or not np.allclose(xa, xb):
        raise ValueError("PDFs must share binning")
    dx = np.diff(xa).mean() if len(xa) > 1 else 1.0
    return float(np.sum(np.abs(ya - yb)) * dx)
