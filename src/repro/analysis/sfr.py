"""Star-formation and outflow diagnostics (the global validation metrics
of Sec. 3.3: "star formation rates and mass loading factors")."""

from __future__ import annotations

import numpy as np

from repro.fdps.particles import ParticleSet, ParticleType


def star_formation_history(
    ps: ParticleSet, t_now: float, bin_width: float = 1.0, n_bins: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """SFR(t) [M_sun/Myr] from star formation times.

    Uses the ``tform`` stamps of star particles (stars present in the ICs
    carry tform = +inf and are excluded).
    """
    stars = ps.where_type(ParticleType.STAR)
    tf = ps.tform[stars]
    m = ps.mass[stars]
    formed = np.isfinite(tf)
    edges = t_now - bin_width * np.arange(n_bins, -1, -1)
    hist, _ = np.histogram(tf[formed], bins=edges, weights=m[formed])
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, hist / bin_width


def outflow_rate(
    ps: ParticleSet, z_plane: float = 1000.0, dz: float = 200.0
) -> float:
    """Gas mass flux [M_sun/Myr] crossing |z| = z_plane moving outward."""
    gas = ps.where_type(ParticleType.GAS)
    z = ps.pos[gas, 2]
    vz = ps.vel[gas, 2]
    m = ps.mass[gas]
    in_slab = (np.abs(z) > z_plane - dz / 2) & (np.abs(z) < z_plane + dz / 2)
    outgoing = np.sign(z) * vz > 0
    sel = in_slab & outgoing
    # Flux = sum(m * |vz|) / dz for particles in the measurement slab.
    return float(np.sum(m[sel] * np.abs(vz[sel])) / dz)


def mass_loading_factor(
    ps: ParticleSet, sfr: float, z_plane: float = 1000.0, dz: float = 200.0
) -> float:
    """eta = outflow rate / SFR (the paper's wind-strength diagnostic)."""
    if sfr <= 0:
        return np.inf if outflow_rate(ps, z_plane, dz) > 0 else 0.0
    return outflow_rate(ps, z_plane, dz) / sfr
