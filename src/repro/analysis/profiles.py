"""Kinematic profiles: rotation curves and disk-stability diagnostics.

Used to verify that the AGAMA-lite initial conditions actually realize the
target Milky Way structure (McMillan 2017 calibration, Sec. 4.2) and to
monitor the disk during integration.
"""

from __future__ import annotations

import numpy as np

from repro.fdps.particles import ParticleSet, ParticleType
from repro.util.constants import GRAV_CONST


def rotation_curve(
    ps: ParticleSet,
    n_bins: int = 24,
    r_max: float = 2.0e4,
    species: ParticleType | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Mean tangential velocity v_phi(R) measured from particle kinematics."""
    sel = np.ones(len(ps), dtype=bool) if species is None else ps.where_type(species)
    x, y = ps.pos[sel, 0], ps.pos[sel, 1]
    vx, vy = ps.vel[sel, 0], ps.vel[sel, 1]
    r = np.hypot(x, y)
    vphi = (x * vy - y * vx) / np.maximum(r, 1e-12)
    edges = np.linspace(0.0, r_max, n_bins + 1)
    which = np.clip(np.digitize(r, edges) - 1, 0, n_bins - 1)
    ok = r < r_max
    num = np.bincount(which[ok], weights=vphi[ok], minlength=n_bins)
    cnt = np.maximum(np.bincount(which[ok], minlength=n_bins), 1)
    return 0.5 * (edges[:-1] + edges[1:]), num / cnt


def circular_velocity_from_mass(
    ps: ParticleSet, n_bins: int = 24, r_max: float = 2.0e4
) -> tuple[np.ndarray, np.ndarray]:
    """v_c(r) = sqrt(G M(<r)/r) from the sampled enclosed mass."""
    r = np.linalg.norm(ps.pos, axis=1)
    order = np.argsort(r)
    cum = np.cumsum(ps.mass[order])
    radii = np.linspace(r_max / n_bins, r_max, n_bins)
    m_enc = cum[np.clip(np.searchsorted(r[order], radii) - 1, 0, len(cum) - 1)]
    return radii, np.sqrt(GRAV_CONST * m_enc / radii)


def velocity_dispersion_profile(
    ps: ParticleSet,
    n_bins: int = 16,
    r_max: float = 2.0e4,
    species: ParticleType = ParticleType.STAR,
) -> tuple[np.ndarray, np.ndarray]:
    """Radial velocity dispersion sigma_R(R) of a disk species."""
    sel = ps.where_type(species)
    x, y = ps.pos[sel, 0], ps.pos[sel, 1]
    vx, vy = ps.vel[sel, 0], ps.vel[sel, 1]
    r = np.hypot(x, y)
    vr = (x * vx + y * vy) / np.maximum(r, 1e-12)
    edges = np.linspace(0.0, r_max, n_bins + 1)
    which = np.clip(np.digitize(r, edges) - 1, 0, n_bins - 1)
    ok = r < r_max
    cnt = np.maximum(np.bincount(which[ok], minlength=n_bins), 1)
    mean = np.bincount(which[ok], weights=vr[ok], minlength=n_bins) / cnt
    var = (
        np.bincount(which[ok], weights=vr[ok] ** 2, minlength=n_bins) / cnt
        - mean**2
    )
    return 0.5 * (edges[:-1] + edges[1:]), np.sqrt(np.maximum(var, 0.0))


def toomre_q_stars(
    ps: ParticleSet, n_bins: int = 12, r_max: float = 1.2e4
) -> tuple[np.ndarray, np.ndarray]:
    """Toomre Q = sigma_R kappa / (3.36 G Sigma) for the stellar disk.

    The epicyclic frequency kappa uses the flat-curve approximation
    kappa = sqrt(2) v_c / R (adequate for stability *monitoring*; Q > 1
    means locally stable).
    """
    from repro.analysis.maps import surface_density_profile

    r_sig, sigma_r = velocity_dispersion_profile(ps, n_bins, r_max)
    _, v_c = circular_velocity_from_mass(ps, n_bins, r_max)
    _, surf = surface_density_profile(ps, n_bins, r_max, species=ParticleType.STAR)
    kappa = np.sqrt(2.0) * v_c / np.maximum(r_sig, 1e-12)
    q = sigma_r * kappa / (3.36 * GRAV_CONST * np.maximum(surf, 1e-300))
    return r_sig, q
