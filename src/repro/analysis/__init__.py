"""Analysis: the diagnostics the paper validates its scheme against.

Column-density maps (Fig. 5), density–temperature PDFs, star-formation
history and mass-loading factors (the Sec. 3.3 validation claims via
ref. [14]), plus conservation audits used throughout the test suite.
"""

from repro.analysis.maps import column_density_map, surface_density_profile
from repro.analysis.pdfs import density_pdf, temperature_pdf, phase_diagram, pdf_distance
from repro.analysis.sfr import star_formation_history, mass_loading_factor, outflow_rate
from repro.analysis.conservation import ConservationAudit

__all__ = [
    "column_density_map",
    "surface_density_profile",
    "density_pdf",
    "temperature_pdf",
    "phase_diagram",
    "pdf_distance",
    "star_formation_history",
    "mass_loading_factor",
    "outflow_rate",
    "ConservationAudit",
]
