"""Conservation audits: mass, momentum, energy bookkeeping across a run.

The surrogate swap is *not* exactly conservative (the U-Net prediction
replaces integration), so the audit distinguishes hard invariants (mass,
particle IDs — conserved by construction) from physical drifts (energy
injected by SNe is *supposed* to appear).  The paper validates the
surrogate's energy/momentum against direct simulations [14]; these helpers
produce the same ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fdps.particles import ParticleSet
from repro.gravity.kernels import total_potential_energy


@dataclass
class Snapshot:
    time: float
    mass: float
    n_particles: int
    momentum: np.ndarray
    kinetic: float
    thermal: float
    potential: float | None

    @property
    def total_energy(self) -> float:
        pot = self.potential if self.potential is not None else 0.0
        return self.kinetic + self.thermal + pot


@dataclass
class ConservationAudit:
    """Collects snapshots and reports drifts."""

    include_potential: bool = False
    history: list[Snapshot] = field(default_factory=list)

    def record(self, ps: ParticleSet, time: float) -> Snapshot:
        pot = (
            total_potential_energy(ps.pos, ps.mass, ps.eps)
            if self.include_potential
            else None
        )
        snap = Snapshot(
            time=time,
            mass=ps.total_mass(),
            n_particles=len(ps),
            momentum=ps.momentum(),
            kinetic=ps.kinetic_energy(),
            thermal=ps.thermal_energy(),
            potential=pot,
        )
        self.history.append(snap)
        return snap

    def mass_drift(self) -> float:
        """Relative |dM|/M between first and last snapshots."""
        if len(self.history) < 2:
            return 0.0
        m0, m1 = self.history[0].mass, self.history[-1].mass
        return abs(m1 - m0) / max(abs(m0), 1e-300)

    def momentum_drift(self) -> float:
        """|dP| normalized by the total |m v| scale."""
        if len(self.history) < 2:
            return 0.0
        p0, p1 = self.history[0].momentum, self.history[-1].momentum
        scale = max(np.linalg.norm(p0), self.history[0].kinetic ** 0.5, 1e-300)
        return float(np.linalg.norm(p1 - p0) / scale)

    def energy_change(self) -> float:
        """Absolute change of (kinetic + thermal [+ potential]) energy."""
        if len(self.history) < 2:
            return 0.0
        return self.history[-1].total_energy - self.history[0].total_energy

    def injected_energy_accounted(
        self, n_sn: int, energy_per_sn: float, tolerance: float = 1.0
    ) -> bool:
        """Is the energy change within [0, (1+tol) x injected]?

        After an SN the budget should grow by ~1e51 erg minus radiative and
        boundary losses; growth far beyond the injection signals a bug.
        """
        de = self.energy_change()
        budget = n_sn * energy_per_sn
        return -tolerance * budget <= de <= (1.0 + tolerance) * budget
