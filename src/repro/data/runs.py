"""Table 2: the paper's run configurations.

Each row records the node range and the per-species particle masses/counts;
``n_total`` is the sum of species counts (what the scaling figures sweep).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperRun:
    """One row of Table 2."""

    name: str
    machine: str                  # "fugaku" | "rusty" | "miyabi"
    nodes_max: int
    nodes_min: int
    m_dm: float
    n_dm: float
    m_star: float
    n_star: float
    m_gas: float
    n_gas: float
    m_tot: float
    kind: str                     # "weak" | "strong" | "single"

    @property
    def n_total(self) -> float:
        return self.n_dm + self.n_star + self.n_gas

    @property
    def gas_fraction(self) -> float:
        return self.n_gas / self.n_total


RUN_TABLE: tuple[PaperRun, ...] = (
    PaperRun("weakMW2M", "fugaku", 148896, 128, 6.0, 1.8e11, 0.75, 7.2e10, 0.75, 4.9e10, 1.2e12, "weak"),
    PaperRun("weakMW_rusty", "rusty", 193, 11, 7.7, 1.4e11, 0.96, 5.5e10, 0.96, 3.8e10, 1.2e12, "weak"),
    PaperRun("strongMW", "fugaku", 148896, 67680, 11.7, 9.3e10, 1.4, 3.7e10, 1.4, 2.6e10, 1.2e12, "strong"),
    PaperRun("strongMWs", "fugaku", 40608, 4096, 4.0, 2.8e10, 0.5, 1.2e10, 0.5, 7.5e9, 1.2e11, "strong"),
    PaperRun("strongMWm", "fugaku", 1024, 128, 12.0, 1.4e9, 1.5, 3.7e8, 1.5, 3.4e9, 1.8e10, "strong"),
    PaperRun("strongMW_rusty", "rusty", 193, 43, 36.0, 3.0e10, 4.5, 1.2e10, 4.5, 8.4e9, 1.2e12, "strong"),
    PaperRun("strongMWs_rusty", "rusty", 43, 11, 166.0, 6.5e9, 21.0, 2.6e9, 21.0, 1.8e9, 1.2e12, "strong"),
    PaperRun("MW_miyabi", "miyabi", 1024, 1024, 87.9, 1.2e10, 11.0, 5.0e9, 11.0, 3.4e9, 1.2e12, "single"),
)


def run_by_name(name: str) -> PaperRun:
    for run in RUN_TABLE:
        if run.name == name:
            return run
    raise KeyError(name)
