"""Literature data and run registries (Tables 1 and 2, Figure 2)."""

from repro.data.sota import SOTA_RUNS, SOTARun, THIS_WORK, figure2_series
from repro.data.runs import RUN_TABLE, PaperRun

__all__ = ["SOTA_RUNS", "SOTARun", "THIS_WORK", "figure2_series", "RUN_TABLE", "PaperRun"]
