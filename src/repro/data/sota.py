"""Table 1: state-of-the-art isolated-disk galaxy simulations, and the
Figure 2 resolution/mass planes derived from them."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SOTARun:
    """One row of Table 1."""

    paper: str
    n_gas: float
    m_gas: float        # M_sun
    n_star: float
    m_star: float
    n_dm: float
    m_tot: float
    n_tot: float
    code: str

    @property
    def m_dm(self) -> float:
        """DM particle mass implied by the totals (roughly: the DM carries
        what baryons do not)."""
        m_baryon = self.n_gas * self.m_gas + self.n_star * self.m_star
        if self.n_dm <= 0:
            return float("nan")
        return max(self.m_tot - m_baryon, 0.0) / self.n_dm


SOTA_RUNS: tuple[SOTARun, ...] = (
    SOTARun("Hu et al. (2017)", 1e7, 4.0, 1e7, 4.0, 4e6, 2e10, 2.4e7, "GADGET-3"),
    SOTARun("Smith et al. (2018)", 1.9e7, 20.0, 1e5, 20.0, 1e5, 1e10, 2.0e7, "AREPO"),
    SOTARun("Smith et al. (2018) Large", 1.9e7, 200.0, 1e5, 200.0, 1e5, 1e11, 2.0e7, "AREPO"),
    SOTARun("Smith et al. (2021)", 3.4e6, 20.0, 4.9e6, 20.0, 6.2e6, 1e10, 2.0e7, "AREPO"),
    SOTARun("Richings et al. (2022)", 1e7, 400.0, 3e7, 400.0, 1.6e8, 1e12, 2.0e8, "GIZMO"),
    SOTARun("Hu et al. (2023)", 7e7, 1.0, 1e7, 1.0, 1e7, 1e10, 2.4e7, "GIZMO"),
    SOTARun("Steinwandel et al. (2024)", 1e8, 4.0, 5e8, 4.0, 4e7, 2e11, 6.4e8, "GADGET-3"),
)

#: "This work" — the bottom row of Table 1.
THIS_WORK = SOTARun(
    "This work (Hirashima et al. 2025)",
    4.9e10,
    0.75,
    7.2e10,
    0.75,
    1.8e11,
    1.2e12,
    3.0e11,
    "ASURA",
)

#: The billion-particle barrier line of Fig. 2.
ONE_BILLION = 1.0e9


def figure2_series() -> dict:
    """Data behind the two Fig. 2 panels.

    Returns a dict with, per panel ('dm' and 'gas'):
    points [(name, total mass, particle mass)], this-work point, and the
    iso-N diagonal lines for N = 1e6, 1e8, 1e10 plus the one-billion
    barrier.
    """
    out: dict = {}
    for panel in ("dm", "gas"):
        pts = []
        for run in SOTA_RUNS:
            if panel == "gas":
                total = run.n_gas * run.m_gas
                pts.append((run.paper, total, run.m_gas))
            else:
                if not np.isfinite(run.m_dm):
                    continue
                pts.append((run.paper, run.n_dm * run.m_dm, run.m_dm))
        if panel == "gas":
            this = (THIS_WORK.paper, THIS_WORK.n_gas * THIS_WORK.m_gas, THIS_WORK.m_gas)
        else:
            this = (THIS_WORK.paper, THIS_WORK.n_dm * THIS_WORK.m_dm, THIS_WORK.m_dm)
        m_grid = np.logspace(7 if panel == "dm" else 6, 13, 60)
        lines = {
            f"N=1e{int(np.log10(n))}": (m_grid, m_grid / n)
            for n in (1e6, 1e8, 1e10)
        }
        lines["one_billion"] = (m_grid, m_grid / ONE_BILLION)
        out[panel] = {"points": pts, "this_work": this, "lines": lines}
    return out


def breaks_billion_barrier(run: SOTARun) -> bool:
    """Whether a run's total particle count exceeds one billion."""
    return run.n_tot > ONE_BILLION
