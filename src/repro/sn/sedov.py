"""Exact Sedov–Taylor point explosion (spherical, gamma-law gas).

The self-similar ansatz

.. math::

    u = \\dot R \\, U(\\lambda), \\quad \\rho = \\rho_0 G(\\lambda),
    \\quad p = \\rho_0 \\dot R^2 P(\\lambda), \\qquad \\lambda = r / R(t)

with :math:`R(t) = \\beta (E t^2/\\rho_0)^{1/5}` reduces the Euler equations
to three ODEs in :math:`\\lambda`:

.. math::

    (U-\\lambda)\\,G'/G + U' + 2U/\\lambda &= 0 \\\\
    (U-\\lambda)\\,U' + P'/G &= \\tfrac{3}{2} U \\\\
    (U-\\lambda)\\,(P'/P - \\gamma G'/G) &= 3

integrated inward from the strong-shock jump conditions at
:math:`\\lambda = 1`.  The normalization :math:`\\beta` follows from the
energy integral; for :math:`\\gamma = 5/3` the classic value is
:math:`\\beta \\approx 1.152`, which the test suite checks against the
literature.  The solution provides the "0.1 Myr after the explosion" target
states used to train the surrogate (Sec. 3.3) without running a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np
from scipy.integrate import solve_ivp

from repro.util.constants import GAMMA


def _similarity_rhs(lam: float, y: np.ndarray, gamma: float) -> np.ndarray:
    """Right-hand side (U', G', P') of the similarity ODE system."""
    u, g, p = y
    w = u - lam  # always negative inside the shock
    # Linear system A @ (U', G', P') = b from the three reduced equations.
    a = np.array(
        [
            [1.0, w / g, 0.0],
            [w, 0.0, 1.0 / g],
            [0.0, -gamma * w / g, w / p],
        ]
    )
    b = np.array([-2.0 * u / lam, 1.5 * u, 3.0])
    return np.linalg.solve(a, b)


@lru_cache(maxsize=8)
def _integrate_profile(gamma: float, lam_min: float = 1e-3) -> tuple:
    """Integrate the similarity ODEs from lambda=1 to lam_min.

    Returns (lam_grid, U, G, P, beta) with beta the shock-position
    normalization from the energy integral.
    """
    y0 = np.array(
        [2.0 / (gamma + 1.0), (gamma + 1.0) / (gamma - 1.0), 2.0 / (gamma + 1.0)]
    )
    sol = solve_ivp(
        _similarity_rhs,
        (1.0, lam_min),
        y0,
        args=(gamma,),
        method="LSODA",
        dense_output=True,
        rtol=1e-10,
        atol=1e-12,
        max_step=1e-2,
    )
    if not sol.success:
        raise RuntimeError(f"Sedov similarity integration failed: {sol.message}")
    lam = np.linspace(lam_min, 1.0, 4000)
    u, g, p = sol.sol(lam)
    g = np.maximum(g, 0.0)
    p = np.maximum(p, 0.0)
    # Energy integral: 1 = (16 pi / 25) beta^5 * I,
    # I = int_0^1 (G U^2 / 2 + P/(gamma-1)) lambda^2 dlambda.
    integrand = (0.5 * g * u**2 + p / (gamma - 1.0)) * lam**2
    i_val = np.trapezoid(integrand, lam)
    beta = (25.0 / (16.0 * np.pi * i_val)) ** 0.2
    return lam, u, g, p, float(beta)


def sedov_shock_radius(
    energy: float, rho0: float, t: float, gamma: float = GAMMA
) -> float:
    """Shock radius R(t) = beta (E t^2 / rho0)^{1/5}."""
    beta = _integrate_profile(gamma)[4]
    return float(beta * (energy * t**2 / rho0) ** 0.2)


@dataclass
class SedovSolution:
    """Evaluable blast-wave state at arbitrary (r, t).

    Units are whatever ``energy``/``rho0`` are expressed in (the library
    uses pc / M_sun / Myr).  Ambient gas outside the shock keeps
    (rho0, u_ambient, zero velocity).
    """

    energy: float
    rho0: float
    gamma: float = GAMMA
    u_ambient: float = 0.0
    _profile: tuple = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._profile = _integrate_profile(self.gamma)

    @property
    def beta(self) -> float:
        return self._profile[4]

    def shock_radius(self, t: float) -> float:
        return float(self.beta * (self.energy * t**2 / self.rho0) ** 0.2)

    def shock_velocity(self, t: float) -> float:
        return 0.4 * self.shock_radius(t) / t

    def evaluate(
        self, r: np.ndarray, t: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(density, radial velocity, specific internal energy) at radius r.

        Inside the shock the similarity profile is interpolated; outside,
        the ambient state.  The origin uses the innermost integrated value
        (G -> 0 there, so density vanishes at the center as it must).
        """
        lam_grid, u_g, g_g, p_g, _ = self._profile
        r = np.asarray(r, dtype=np.float64)
        rs = self.shock_radius(t)
        vs = self.shock_velocity(t)
        lam = np.clip(r / rs, lam_grid[0], 1.0)
        inside = r <= rs

        dens = np.where(inside, self.rho0 * np.interp(lam, lam_grid, g_g), self.rho0)
        vel = np.where(inside, vs * np.interp(lam, lam_grid, u_g), 0.0)
        pres = np.where(inside, self.rho0 * vs**2 * np.interp(lam, lam_grid, p_g), 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            u_int = pres / ((self.gamma - 1.0) * np.maximum(dens, 1e-300))
        u_int = np.where(inside, np.maximum(u_int, self.u_ambient), self.u_ambient)
        return dens, vel, u_int

    def apply_to_particles(
        self, pos: np.ndarray, center: np.ndarray, t: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Blast state at particle positions: (density, velocity(N,3), u).

        Velocities point radially away from ``center``.
        """
        pos = np.asarray(pos, dtype=np.float64)
        center = np.asarray(center, dtype=np.float64)
        d = pos - center[None, :]
        r = np.sqrt(np.einsum("ij,ij->i", d, d))
        dens, vrad, u_int = self.evaluate(r, t)
        rhat = d / np.maximum(r, 1e-300)[:, None]
        vel = vrad[:, None] * rhat
        return dens, vel, u_int

    def swept_mass(self, t: float) -> float:
        """Mass inside the shock — equals the displaced ambient mass."""
        return 4.0 / 3.0 * np.pi * self.rho0 * self.shock_radius(t) ** 3

    def total_energy(self, t: float, n_shells: int = 2000) -> float:
        """Numerical check: kinetic + thermal energy inside the shock."""
        rs = self.shock_radius(t)
        r = np.linspace(rs * 1e-3, rs * (1 - 1e-9), n_shells)
        dens, vel, u_int = self.evaluate(r, t)
        e_density = 0.5 * dens * vel**2 + dens * u_int
        return float(np.trapezoid(4.0 * np.pi * r**2 * e_density, r))
