"""Turbulent velocity fields and turbulent-box initial conditions.

The paper's training data uses "density fields disturbed by turbulent
velocity fields that follow v ~ k^-4, which imitate environments of
star-forming regions" (Sec. 3.3).  We synthesize such fields spectrally:
each velocity component is a Gaussian random field with power spectrum
P(k) ~ k^{-4} (Burgers-like, appropriate for shock-dominated ISM
turbulence), generated on a grid by inverse FFT and interpolated to
particle positions trilinearly.
"""

from __future__ import annotations

import numpy as np

from repro.fdps.particles import ParticleSet, ParticleType
from repro.util.constants import temperature_to_internal_energy


def turbulent_velocity_field(
    n_grid: int,
    spectral_index: float = -4.0,
    seed: int | np.random.Generator = 0,
    solenoidal_fraction: float | None = None,
) -> np.ndarray:
    """A (3, n, n, n) random velocity field with P(k) ~ k^{spectral_index}.

    Normalized to unit rms per component.  ``solenoidal_fraction`` optionally
    performs a Helmholtz projection mixing solenoidal (divergence-free) and
    compressive parts; ``None`` keeps the natural (2/3, 1/3) mix.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    k1 = np.fft.fftfreq(n_grid) * n_grid
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    k2 = kx**2 + ky**2 + kz**2
    kmag = np.sqrt(k2)
    # Amplitude ~ sqrt(P(k)); P here is the 3D power spectral density so the
    # shell-integrated spectrum E(k) ~ k^2 P(k) ~ k^{index+2}.
    with np.errstate(divide="ignore"):
        amp = np.where(kmag > 0, kmag ** (spectral_index / 2.0), 0.0)
    amp[kmag > n_grid / 2] = 0.0  # isotropic truncation at Nyquist

    vel = np.empty((3, n_grid, n_grid, n_grid))
    spec = np.empty((3, n_grid, n_grid, n_grid), dtype=np.complex128)
    for c in range(3):
        phase = rng.uniform(0, 2 * np.pi, (n_grid,) * 3)
        mag = rng.normal(0.0, 1.0, (n_grid,) * 3)
        spec[c] = amp * mag * np.exp(1j * phase)

    if solenoidal_fraction is not None:
        # Helmholtz decomposition in k space: v_comp = k (k.v)/k^2.
        with np.errstate(divide="ignore", invalid="ignore"):
            kdotv = (kx * spec[0] + ky * spec[1] + kz * spec[2]) / np.where(k2 > 0, k2, 1.0)
        comp = np.stack([kx * kdotv, ky * kdotv, kz * kdotv])
        sol = spec - comp
        w_sol = np.sqrt(max(solenoidal_fraction, 0.0))
        w_comp = np.sqrt(max(1.0 - solenoidal_fraction, 0.0))
        spec = w_sol * sol + w_comp * comp

    for c in range(3):
        v = np.fft.ifftn(spec[c]).real
        rms = np.sqrt(np.mean(v**2))
        vel[c] = v / max(rms, 1e-300)
    return vel


def measure_power_spectrum(
    field: np.ndarray, n_bins: int = 16
) -> tuple[np.ndarray, np.ndarray]:
    """Shell-averaged 3D power spectrum P(k) of one scalar grid field."""
    n = field.shape[0]
    fk = np.fft.fftn(field)
    power = np.abs(fk) ** 2
    k1 = np.fft.fftfreq(n) * n
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    kmag = np.sqrt(kx**2 + ky**2 + kz**2).ravel()
    p = power.ravel()
    # Log-spaced shells with log-mean pairing: for a pure power law
    # log P = alpha log k + c, averaging the *logs* per shell keeps the
    # (mean log k, mean log P) points exactly on the line, so the fitted
    # slope is unbiased even for very steep spectra (arithmetic shell means
    # are dominated by the low-k edge and bias the slope steep).
    bins = np.geomspace(1.2, n / 2.0, n_bins + 1)
    which = np.digitize(kmag, bins) - 1
    ok = (which >= 0) & (which < n_bins) & (p > 0) & (kmag > 0)
    cnt = np.maximum(np.bincount(which[ok], minlength=n_bins), 1)
    klog = np.bincount(which[ok], weights=np.log(kmag[ok]), minlength=n_bins) / cnt
    plog = np.bincount(which[ok], weights=np.log(p[ok]), minlength=n_bins) / cnt
    has = np.bincount(which[ok], minlength=n_bins) > 0
    return np.exp(klog[has]), np.exp(plog[has])


def _trilinear_sample(grid: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """Sample a periodic scalar grid at fractional coordinates (N, 3)."""
    n = grid.shape[0]
    c = np.mod(coords, n)
    i0 = np.floor(c).astype(np.int64) % n
    f = c - np.floor(c)
    i1 = (i0 + 1) % n
    out = np.zeros(len(coords))
    for dx, wx in ((0, 1 - f[:, 0]), (1, f[:, 0])):
        ix = i0[:, 0] if dx == 0 else i1[:, 0]
        for dy, wy in ((0, 1 - f[:, 1]), (1, f[:, 1])):
            iy = i0[:, 1] if dy == 0 else i1[:, 1]
            for dz, wz in ((0, 1 - f[:, 2]), (1, f[:, 2])):
                iz = i0[:, 2] if dz == 0 else i1[:, 2]
                out += wx * wy * wz * grid[ix, iy, iz]
    return out


def make_turbulent_box(
    n_per_side: int = 16,
    side: float = 60.0,
    mean_density: float = 1.0,
    temperature: float = 100.0,
    mach: float = 5.0,
    seed: int = 0,
    particle_mass: float | None = None,
    grid_n: int = 32,
) -> ParticleSet:
    """A (side)^3 pc turbulent star-forming-region box of gas particles.

    Positions start on a jittered lattice; the k^-4 turbulent velocity field
    is scaled to the requested Mach number relative to the isothermal sound
    speed at ``temperature``.  This is the paper's SN-training environment:
    sample a box, optionally let it relax, explode a star at the center.
    """
    rng = np.random.default_rng(seed)
    g = (np.arange(n_per_side) + 0.5) / n_per_side * side - side / 2.0
    xx, yy, zz = np.meshgrid(g, g, g, indexing="ij")
    pos = np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])
    spacing = side / n_per_side
    pos += rng.normal(0.0, 0.1 * spacing, pos.shape)
    n = len(pos)

    u = temperature_to_internal_energy(temperature)
    cs_iso = np.sqrt(2.0 / 3.0 * u)  # isothermal sound speed ~ sqrt((gamma-1) u)
    vfield = turbulent_velocity_field(grid_n, spectral_index=-4.0, seed=rng)
    coords = (pos + side / 2.0) / side * grid_n
    vel = np.column_stack([_trilinear_sample(vfield[c], coords) for c in range(3)])
    # Rescale: the sampled field's rms differs slightly from the grid rms.
    rms = np.sqrt(np.mean(np.sum(vel**2, axis=1)) / 3.0)
    vel *= mach * cs_iso / max(rms, 1e-300)
    vel -= vel.mean(axis=0)  # zero net momentum

    mass = particle_mass if particle_mass is not None else mean_density * side**3 / n
    ps = ParticleSet.from_arrays(
        pos=pos,
        vel=vel,
        mass=np.full(n, mass),
        pid=np.arange(n),
        ptype=np.full(n, int(ParticleType.GAS)),
        eps=np.full(n, 0.25 * spacing),
    )
    ps.u[:] = u
    ps.h[:] = 2.0 * spacing
    return ps
