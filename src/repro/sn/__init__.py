"""Supernova blast-wave physics and star-forming-region turbulence.

Two generators feed the surrogate-model pipeline:

* :mod:`repro.sn.sedov` — the exact Sedov–Taylor self-similar blast wave
  (similarity ODEs integrated from the strong-shock boundary), used for fast
  analytic training labels and for validating the SPH blast simulations;
* :mod:`repro.sn.turbulence` — Gaussian random velocity fields with the
  P(k) ~ k^-4 spectrum the paper uses to "imitate environments of
  star-forming regions" (Sec. 3.3), plus the turbulent-box initial
  conditions for training-data generation.
"""

from repro.sn.sedov import SedovSolution, sedov_shock_radius
from repro.sn.turbulence import turbulent_velocity_field, make_turbulent_box

__all__ = [
    "SedovSolution",
    "sedov_shock_radius",
    "turbulent_velocity_field",
    "make_turbulent_box",
]
