"""Pairwise gravity kernels (Eq. 1 of the paper).

.. math::

    \\mathbf{F}_{ij} = -G \\frac{m_i m_j}
        {(r_{ij}^2 + \\epsilon_i^2 + \\epsilon_j^2)^{3/2}} \\mathbf{r}_{ij}

All kernels are vectorized over (targets x sources) tiles and chunk the
source axis to bound temporary memory; they optionally report interaction
counts to an :class:`~repro.fdps.interaction.InteractionCounter` for the
FLOP accounting of Table 3/4.
"""

from __future__ import annotations

import numpy as np

from repro.fdps.interaction import InteractionCounter
from repro.util.constants import GRAV_CONST

#: Source-axis chunk that keeps the (n_i, chunk, 3) temporaries ~O(10 MB).
_CHUNK = 4096


def accel_between(
    target_pos: np.ndarray,
    target_eps: np.ndarray,
    source_pos: np.ndarray,
    source_mass: np.ndarray,
    source_eps: np.ndarray | None = None,
    counter: InteractionCounter | None = None,
    exclude_self: bool = False,
    g: float = GRAV_CONST,
) -> np.ndarray:
    """Acceleration on targets from sources (double precision).

    ``exclude_self`` masks pairs at identical positions (a particle never
    pulls on itself; softening alone would still produce NaN-free zeros, but
    masking keeps the count ledger exact).
    """
    tp = np.asarray(target_pos, dtype=np.float64)
    te = np.asarray(target_eps, dtype=np.float64)
    sp = np.asarray(source_pos, dtype=np.float64)
    sm = np.asarray(source_mass, dtype=np.float64)
    se = np.zeros(len(sp)) if source_eps is None else np.asarray(source_eps, dtype=np.float64)

    acc = np.zeros_like(tp)
    n_t = len(tp)
    for s0 in range(0, len(sp), _CHUNK):
        s1 = min(s0 + _CHUNK, len(sp))
        d = tp[:, None, :] - sp[None, s0:s1, :]              # (n_t, c, 3)
        r2 = np.einsum("ijk,ijk->ij", d, d)
        soft2 = te[:, None] ** 2 + se[None, s0:s1] ** 2
        denom = (r2 + soft2) ** 1.5
        w = sm[None, s0:s1] / np.maximum(denom, 1e-300)
        if exclude_self:
            w = np.where(r2 <= 0.0, 0.0, w)
        acc -= g * np.einsum("ij,ijk->ik", w, d)
    if counter is not None:
        counter.add("gravity", n_t, len(sp))
    return acc


def accel_between_mixed(
    target_pos: np.ndarray,
    target_eps: np.ndarray,
    source_pos: np.ndarray,
    source_mass: np.ndarray,
    source_eps: np.ndarray | None = None,
    counter: InteractionCounter | None = None,
    exclude_self: bool = False,
    g: float = GRAV_CONST,
) -> np.ndarray:
    """Mixed-precision kernel (Sec. 4.3).

    Positions are shifted to the centroid of the *target group* (the
    representative value of the receiving particles) and cast to float32
    before the force loop; the accumulation and the final result are float64.
    Relative accuracy of the interaction is single precision while absolute
    double-precision positions survive upstream — exactly the production
    scheme.
    """
    tp = np.asarray(target_pos, dtype=np.float64)
    origin = tp.mean(axis=0)
    tp32 = (tp - origin).astype(np.float32)
    sp32 = (np.asarray(source_pos, dtype=np.float64) - origin).astype(np.float32)
    te32 = np.asarray(target_eps, dtype=np.float32)
    sm32 = np.asarray(source_mass, dtype=np.float32)
    se32 = (
        np.zeros(len(sp32), dtype=np.float32)
        if source_eps is None
        else np.asarray(source_eps, dtype=np.float32)
    )

    acc = np.zeros_like(tp)
    for s0 in range(0, len(sp32), _CHUNK):
        s1 = min(s0 + _CHUNK, len(sp32))
        d = tp32[:, None, :] - sp32[None, s0:s1, :]
        r2 = np.einsum("ijk,ijk->ij", d, d)
        soft2 = te32[:, None] ** 2 + se32[None, s0:s1] ** 2
        denom = (r2 + soft2) ** np.float32(1.5)
        w = sm32[None, s0:s1] / np.maximum(denom, np.float32(1e-30))
        if exclude_self:
            w = np.where(r2 <= np.float32(0.0), np.float32(0.0), w)
        acc -= g * np.einsum("ij,ijk->ik", w, d).astype(np.float64)
    if counter is not None:
        counter.add("gravity", len(tp), len(sp32))
    return acc


def accel_direct(
    pos: np.ndarray,
    mass: np.ndarray,
    eps: np.ndarray,
    counter: InteractionCounter | None = None,
    g: float = GRAV_CONST,
) -> np.ndarray:
    """Full O(N^2) direct summation — the reference for tree accuracy tests."""
    return accel_between(
        pos, eps, pos, mass, eps, counter=counter, exclude_self=True, g=g
    )


def potential_direct(
    pos: np.ndarray,
    mass: np.ndarray,
    eps: np.ndarray,
    g: float = GRAV_CONST,
) -> np.ndarray:
    """Softened specific potential phi_i = -G sum_j m_j / sqrt(r^2 + eps^2).

    Used by the conservation audits (total energy E = K + U + thermal).
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    eps = np.asarray(eps, dtype=np.float64)
    pot = np.zeros(len(pos))
    for s0 in range(0, len(pos), _CHUNK):
        s1 = min(s0 + _CHUNK, len(pos))
        d = pos[:, None, :] - pos[None, s0:s1, :]
        r2 = np.einsum("ijk,ijk->ij", d, d)
        soft2 = eps[:, None] ** 2 + eps[None, s0:s1] ** 2
        inv = 1.0 / np.sqrt(r2 + soft2)
        inv = np.where(r2 <= 0.0, 0.0, inv)
        pot -= g * np.einsum("j,ij->i", mass[s0:s1], inv)
    return pot


def total_potential_energy(
    pos: np.ndarray, mass: np.ndarray, eps: np.ndarray, g: float = GRAV_CONST
) -> float:
    """U = 1/2 sum_i m_i phi_i (each pair counted once)."""
    return float(0.5 * np.sum(mass * potential_direct(pos, mass, eps, g=g)))
