"""Pairwise gravity kernels (Eq. 1 of the paper).

.. math::

    \\mathbf{F}_{ij} = -G \\frac{m_i m_j}
        {(r_{ij}^2 + \\epsilon_i^2 + \\epsilon_j^2)^{3/2}} \\mathbf{r}_{ij}

The arithmetic lives in the pluggable compute backends of
:mod:`repro.accel.backends` (numpy reference, numba JIT, PIKG-generated);
the functions here are the stable entry points: they resolve the backend,
dispatch the tile, and report interaction counts to an
:class:`~repro.fdps.interaction.InteractionCounter` for the FLOP accounting
of Table 3/4.

The numpy backend chunks the source axis to bound temporary memory; the
tile size comes from :func:`grav_chunk_size` (env-tunable via
``REPRO_GRAV_CHUNK`` / ``REPRO_GRAV_TEMP_MB``).
"""

from __future__ import annotations

import os

import numpy as np

from repro.fdps.interaction import InteractionCounter
from repro.util.constants import GRAV_CONST

#: Default temporary-buffer budget (MiB) for one source-axis tile of the
#: vectorized kernel; ~64 MiB reproduces the historical 4096-source chunk
#: at the default interaction-group size of 256 targets.
DEFAULT_GRAV_TEMP_MB = 64.0

#: float64 temporaries per (target, source) cell of a tile: the (n_t, c, 3)
#: separation plus four (n_t, c) scalars -> 7 doubles.
_TILE_DOUBLES = 7


def grav_chunk_size(n_targets: int) -> int:
    """Source-axis tile size for the vectorized pairwise kernel.

    ``REPRO_GRAV_CHUNK`` forces a fixed value; otherwise the chunk is sized
    so one tile's temporaries fit a ``REPRO_GRAV_TEMP_MB`` (default 64 MiB)
    budget, clamped to [256, 65536].  Benchmarks record the value actually
    chosen (``benchmarks/bench_backend_kernels.py``).
    """
    forced = os.environ.get("REPRO_GRAV_CHUNK")
    if forced:
        return max(int(forced), 16)
    budget_mb = float(os.environ.get("REPRO_GRAV_TEMP_MB", DEFAULT_GRAV_TEMP_MB))
    per_source = _TILE_DOUBLES * 8 * max(int(n_targets), 1)
    return int(np.clip(budget_mb * 2**20 // per_source, 256, 65536))


def accel_between(
    target_pos: np.ndarray,
    target_eps: np.ndarray,
    source_pos: np.ndarray,
    source_mass: np.ndarray,
    source_eps: np.ndarray | None = None,
    counter: InteractionCounter | None = None,
    exclude_self: bool = False,
    g: float = GRAV_CONST,
    backend=None,
    mixed: bool = False,
) -> np.ndarray:
    """Acceleration on targets from sources (double precision).

    ``exclude_self`` masks pairs at identical positions (a particle never
    pulls on itself; softening alone would still produce NaN-free zeros, but
    masking keeps the count ledger exact).  ``backend`` is a backend name or
    instance (default: the registry's selection, see
    :func:`repro.accel.backends.get_backend`); ``mixed`` selects the
    float32 variant (see :func:`accel_between_mixed`).
    """
    from repro.accel.backends import get_backend

    n_src = len(source_pos)
    se = np.zeros(n_src) if source_eps is None else source_eps
    acc = get_backend(backend).grav_tile(
        target_pos, target_eps, source_pos, source_mass, se,
        exclude_self=exclude_self, mixed=mixed, g=g,
    )
    if counter is not None:
        counter.add("gravity", len(acc), n_src)
    return acc


def accel_between_mixed(
    target_pos: np.ndarray,
    target_eps: np.ndarray,
    source_pos: np.ndarray,
    source_mass: np.ndarray,
    source_eps: np.ndarray | None = None,
    counter: InteractionCounter | None = None,
    exclude_self: bool = False,
    g: float = GRAV_CONST,
    backend=None,
) -> np.ndarray:
    """Mixed-precision kernel (Sec. 4.3).

    Positions are shifted to the centroid of the *target group* (the
    representative value of the receiving particles) and cast to float32
    before the force loop; the accumulation and the final result are float64.
    Relative accuracy of the interaction is single precision while absolute
    double-precision positions survive upstream — exactly the production
    scheme.
    """
    return accel_between(
        target_pos, target_eps, source_pos, source_mass, source_eps,
        counter=counter, exclude_self=exclude_self, g=g, backend=backend,
        mixed=True,
    )


def accel_direct(
    pos: np.ndarray,
    mass: np.ndarray,
    eps: np.ndarray,
    counter: InteractionCounter | None = None,
    g: float = GRAV_CONST,
    backend=None,
) -> np.ndarray:
    """Full O(N^2) direct summation — the reference for tree accuracy tests."""
    return accel_between(
        pos, eps, pos, mass, eps, counter=counter, exclude_self=True, g=g,
        backend=backend,
    )


def potential_direct(
    pos: np.ndarray,
    mass: np.ndarray,
    eps: np.ndarray,
    g: float = GRAV_CONST,
) -> np.ndarray:
    """Softened specific potential phi_i = -G sum_j m_j / sqrt(r^2 + eps^2).

    Used by the conservation audits (total energy E = K + U + thermal).
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    eps = np.asarray(eps, dtype=np.float64)
    pot = np.zeros(len(pos))
    chunk = grav_chunk_size(len(pos))
    for s0 in range(0, len(pos), chunk):
        s1 = min(s0 + chunk, len(pos))
        d = pos[:, None, :] - pos[None, s0:s1, :]
        r2 = np.einsum("ijk,ijk->ij", d, d)
        soft2 = eps[:, None] ** 2 + eps[None, s0:s1] ** 2
        inv = 1.0 / np.sqrt(r2 + soft2)
        inv = np.where(r2 <= 0.0, 0.0, inv)
        pot -= g * np.einsum("j,ij->i", mass[s0:s1], inv)
    return pot


def total_potential_energy(
    pos: np.ndarray, mass: np.ndarray, eps: np.ndarray, g: float = GRAV_CONST
) -> float:
    """U = 1/2 sum_i m_i phi_i (each pair counted once)."""
    return float(0.5 * np.sum(mass * potential_direct(pos, mass, eps, g=g)))
