"""Barnes–Hut tree gravity using the FDPS group-walk strategy.

For each Morton-contiguous interaction group of up to ``n_g`` particles, one
tree walk builds a shared interaction list (accepted monopoles + opened-leaf
particles) and a single vectorized kernel call evaluates the whole
group-versus-list tile.  This is the structure whose cost trade-off the
paper analyses in Sec. 5.2.4: tree-walk cost ~ O(N log(N_loc)/n_g), kernel
cost ~ O(N n_l) with list length n_l ~ O(log N + n_g).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fdps.interaction import InteractionCounter, walk_tree_for_group
from repro.fdps.tree import Octree
from repro.util.constants import GRAV_CONST


@dataclass
class TreeGravityResult:
    """Acceleration plus the walk statistics the performance model consumes."""

    acc: np.ndarray
    n_groups: int
    mean_list_length: float
    interactions: int
    #: Per-particle interaction-list length — the measured gravity work of
    #: each target, usable as a domain-decomposition weight (Sec. 5.2).
    work: np.ndarray | None = None


def tree_accel(
    pos: np.ndarray,
    mass: np.ndarray,
    eps: np.ndarray,
    theta: float = 0.5,
    n_g: int = 256,
    leaf_size: int = 16,
    counter: InteractionCounter | None = None,
    mixed_precision: bool = False,
    extra_pos: np.ndarray | None = None,
    extra_mass: np.ndarray | None = None,
    g: float = GRAV_CONST,
    tree: Octree | None = None,
    backend=None,
) -> TreeGravityResult:
    """Tree acceleration on all particles.

    ``backend`` selects the compute backend evaluating the group-vs-list
    tiles (name or instance; default: the registry's selection).

    ``extra_pos/extra_mass`` inject imported LET matter (pseudo + boundary
    particles from remote ranks); they contribute force but receive none.
    ``tree`` skips construction by supplying a prebuilt :class:`Octree` (e.g.
    the cached tree of a :class:`repro.accel.SpatialIndex`), in one of two
    shapes:

    * covering exactly local + extra particles in that order — the combined
      tree is walked as if built here;
    * covering exactly the *local* particles while extras are present — the
      local tree is walked for the local-local forces and the imports
      (already per-domain-aggregated by the LET construction) are evaluated
      once as direct sources on every local target.  This is the distributed
      reuse path: the same cached local tree serves the LET export and the
      force walk, trading a modest kernel-work increase (no MAC
      re-compression of the import list — every target sees every import
      entry) for skipping the per-step combined-tree build entirely; the
      inflation is bounded by the LET summary size, which the export MAC
      keeps far below N_remote.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    eps = np.asarray(eps, dtype=np.float64)
    n_local = len(pos)
    has_extra = extra_pos is not None and len(extra_pos) > 0
    if has_extra:
        extra_pos = np.asarray(extra_pos, dtype=np.float64)
        extra_mass = np.asarray(extra_mass, dtype=np.float64)
        extra_eps = np.zeros(len(extra_pos))

    local_tree_mode = (
        tree is not None and has_extra and tree.n_particles == n_local
    )
    if local_tree_mode:
        all_pos, all_mass, all_eps = pos, mass, eps
    elif has_extra:
        all_pos = np.concatenate([pos, extra_pos])
        all_mass = np.concatenate([mass, extra_mass])
        all_eps = np.concatenate([eps, extra_eps])
    else:
        all_pos, all_mass, all_eps = pos, mass, eps

    if tree is None:
        tree = Octree.build(all_pos, all_mass, leaf_size=leaf_size)
    elif tree.n_particles != len(all_pos):
        raise ValueError(
            f"prebuilt tree covers {tree.n_particles} particles, "
            f"expected {len(all_pos)}"
            + (f" (or the {n_local} local ones)" if has_extra else "")
        )
    from repro.accel.backends import get_backend

    bk = get_backend(backend)

    acc = np.zeros_like(pos)
    work = np.zeros(n_local)

    lists = 0
    total_list = 0
    total_inter = 0
    for (start, end) in tree.group_slices(n_g):
        members = tree.order[start:end]           # original indices in group
        local = members < n_local
        if not local.any():
            continue
        targets = members[local]
        nodes, parts = walk_tree_for_group(tree, start, end, theta)
        src_pos = np.concatenate([tree.node_com[nodes], all_pos[parts]])
        src_mass = np.concatenate([tree.node_mass[nodes], all_mass[parts]])
        src_eps = np.concatenate([np.zeros(len(nodes)), all_eps[parts]])
        acc[targets] = bk.grav_tile(
            pos[targets],
            eps[targets],
            src_pos,
            src_mass,
            src_eps,
            exclude_self=True,
            mixed=mixed_precision,
            g=g,
        )
        if counter is not None:
            counter.add("gravity", len(targets), len(src_mass))
        work[targets] = len(src_mass)
        lists += 1
        total_list += len(src_mass)
        total_inter += len(targets) * len(src_mass)

    if local_tree_mode:
        # The imports are needed by every group, so evaluate them once for
        # all local targets instead of copying them into each group's list.
        acc += bk.grav_tile(
            pos, eps, extra_pos, extra_mass, extra_eps,
            mixed=mixed_precision, g=g,
        )
        if counter is not None:
            counter.add("gravity", n_local, len(extra_pos))
        work += len(extra_pos)
        total_list += lists * len(extra_pos)
        total_inter += n_local * len(extra_pos)

    return TreeGravityResult(
        acc=acc,
        n_groups=lists,
        mean_list_length=total_list / lists if lists else 0.0,
        interactions=total_inter,
        work=work,
    )
