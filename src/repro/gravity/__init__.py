"""Gravitational force evaluation: direct summation and Barnes–Hut tree.

The pairwise kernel is the 27-operation softened monopole of Eq. (1); the
tree walk uses the FDPS group strategy with interaction-group size ``n_g``.
The mixed-precision path reproduces Sec. 4.3: positions are converted to
coordinates *relative to the target group* and truncated to float32 before
the force loop, retaining double-precision global resolution while the hot
loop runs in single precision.
"""

from repro.gravity.kernels import (
    accel_direct,
    accel_between,
    accel_between_mixed,
    potential_direct,
)
from repro.gravity.treegrav import tree_accel, TreeGravityResult

__all__ = [
    "accel_direct",
    "accel_between",
    "accel_between_mixed",
    "potential_direct",
    "tree_accel",
    "TreeGravityResult",
]
