"""Shared spatial-acceleration service: cached grids, octrees, force pipeline.

The paper's performance story (Sec. 5.2) hinges on never paying for the same
spatial structure twice in one step: a single tree build serves the force
walk and the LET export, and one neighbor binning serves every kernel-size
sweep.  This package is that seam for the reproduction, and it now also
owns the pluggable compute backends evaluating the kernels themselves.

Compute-backend contract
------------------------

:mod:`repro.accel.backends` is a registry of
:class:`~repro.accel.backends.base.KernelBackend` implementations of the
four hot kernels (pairwise/tree-walk gravity tile, SPH density gather,
half-pair hydro scatter).  The rules:

* **Registration** — ``register_backend(name, factory)``; built-ins are
  ``numpy`` (reference, default), ``numba`` (JIT scalar loops), ``pikg``
  (DSL-generated kernels) and ``seed`` (the frozen pre-registry kernels,
  for benchmarking).  Selection: explicit ``cfg.backend`` >
  ``$REPRO_BACKEND`` > ``numpy``; :class:`ForceEngine` resolves once at
  construction and threads the instance everywhere, so single-rank and
  multi-rank (:class:`repro.fdps.distributed.DistributedGravity`) paths
  hit identical kernels.
* **Fallback** — a factory whose toolchain is missing raises
  ``BackendUnavailable``; ``get_backend`` logs one warning and returns
  ``numpy``, so a bare environment always works.
* **Invalidation interplay** — backends are *stateless* with respect to
  the simulation: all spatial caching stays in :class:`SpatialIndex`
  (grids, trees) and in per-solve
  :class:`~repro.accel.backends.base.DensityGatherState` objects whose
  lifetime is one kernel-size solve over one immutable grid.  The
  invalidation contract below therefore never needs to reach into a
  backend: dropping the grid/pair caches is sufficient, whatever backend
  produced the numbers.  Backend instances are process-wide singletons and
  safe to share between engines.

Caching / invalidation contract
-------------------------------

:class:`SpatialIndex` owns one reusable cell-linked
:class:`~repro.sph.neighbors.NeighborGrid` and one cached
:class:`~repro.fdps.tree.Octree`.  Because checking array *contents* would
cost as much as rebuilding, validity is explicit:

* The owner MUST call :meth:`SpatialIndex.invalidate_positions` whenever any
  coordinate it previously indexed changes (drift kicks, SN-region particle
  replacement), and :meth:`SpatialIndex.invalidate_all` whenever membership
  changes (star formation, domain exchange).  Pure internal-energy or
  velocity updates require no invalidation.
* Accessors (:meth:`SpatialIndex.grid_for`, :meth:`SpatialIndex.tree_for`)
  additionally verify cheap structural facts — particle count, cell-size
  coverage of the requested search radius, scope identity — and rebuild
  (never silently return a stale structure) when they fail.
* :attr:`SpatialIndex.stats` counts builds vs reuses; the steady-state
  integrator step performs at most one grid build per density solve and at
  most one tree build per step (asserted by the tier-1 tests and recorded
  by ``benchmarks/bench_accel_reuse.py``).

:class:`ForceEngine` layers the per-step force pipeline on top: persistent
work buffers, one full gravity + density + hydro pass
(:meth:`ForceEngine.gravity` / :meth:`ForceEngine.hydro`), and the step-7
fast path (:meth:`ForceEngine.refresh_hydro`) that re-evaluates hydro on the
cached pair lists after cooling/feedback changed ``u`` and kicks changed
``v`` — positions and kernel sizes being untouched, the result is identical
to a cold recompute whose h solve converges on its first sweep.  Owners
signal state changes through :meth:`ForceEngine.notify_positions_changed`
and :meth:`ForceEngine.notify_membership_changed`, which forward to the
index and drop the pair-list cache.

The multi-rank driver (:class:`repro.fdps.distributed.DistributedGravity`)
owns one :class:`SpatialIndex` per rank under the same contract —
invalidated at the drift and exchange boundaries — and uses
:class:`ConcatStratifiedSampler` to draw the domain-decomposition subsample
stratified along the chained per-rank Morton orders
(``benchmarks/bench_distributed_reuse.py`` records the cross-rank build
budget).
"""

from repro.accel.backends import available_backends, get_backend, register_backend
from repro.accel.engine import ForceEngine
from repro.accel.index import ConcatStratifiedSampler, IndexStats, SpatialIndex

__all__ = [
    "ConcatStratifiedSampler",
    "ForceEngine",
    "IndexStats",
    "SpatialIndex",
    "available_backends",
    "get_backend",
    "register_backend",
]
