"""Shared spatial index: cached neighbor grid + octree with explicit invalidation.

See :mod:`repro.accel` for the caching/invalidation contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fdps.tree import Octree
from repro.sph.neighbors import NeighborGrid


@dataclass
class IndexStats:
    """Build/reuse counters — the instrumentation the reuse benchmark records."""

    grid_builds: int = 0
    grid_reuses: int = 0
    tree_builds: int = 0
    tree_reuses: int = 0

    def reset(self) -> None:
        self.grid_builds = self.grid_reuses = 0
        self.tree_builds = self.tree_reuses = 0

    def as_dict(self) -> dict:
        return {
            "grid_builds": self.grid_builds,
            "grid_reuses": self.grid_reuses,
            "tree_builds": self.tree_builds,
            "tree_reuses": self.tree_reuses,
        }


@dataclass
class SpatialIndex:
    """Owns one reusable :class:`NeighborGrid` and one cached :class:`Octree`.

    The index never inspects array *contents* to decide validity — that would
    cost as much as rebuilding.  Validity is driven by the owner through
    :meth:`invalidate_positions` / :meth:`invalidate_all` plus cheap
    structural checks (particle count, cell-size coverage, scope identity).
    """

    stats: IndexStats = field(default_factory=IndexStats)
    _grid: NeighborGrid | None = field(default=None, repr=False)
    _grid_scope: np.ndarray | None = field(default=None, repr=False)
    _tree: Octree | None = field(default=None, repr=False)

    # -------------------------------------------------------------- validity
    def invalidate_positions(self) -> None:
        """Any indexed coordinate changed: both structures are stale."""
        self._grid = None
        self._grid_scope = None
        self._tree = None

    def invalidate_all(self) -> None:
        """Membership changed (particles added/removed/reordered)."""
        self.invalidate_positions()

    @property
    def has_grid(self) -> bool:
        return self._grid is not None

    @property
    def has_tree(self) -> bool:
        return self._tree is not None

    # ------------------------------------------------------------------ grid
    def grid_for(
        self,
        pos: np.ndarray,
        radius: float,
        scope: np.ndarray | None = None,
    ) -> NeighborGrid:
        """The cached grid if it still answers a ``radius`` search over these
        points, else a fresh build (which becomes the new cache entry).

        ``scope`` identifies the subset of a larger particle set the grid
        covers (e.g. global indices of the gas); box queries report indices
        through it.  A cached grid is reused only for an equal scope.
        """
        g = self._grid
        if (
            g is not None
            and g.n_points == len(pos)
            and g.covers(radius)
            and _same_scope(self._grid_scope, scope)
        ):
            self.stats.grid_reuses += 1
            return g
        g = NeighborGrid.build(pos, float(radius))
        self.stats.grid_builds += 1
        self._grid = g
        self._grid_scope = None if scope is None else np.asarray(scope)
        return g

    def set_grid_scope(self, scope: np.ndarray | None) -> None:
        """Attach subset indices to the cached grid without rebuilding: the
        grid's points are ``pos[scope]`` of a larger particle set, and box
        queries will report indices into that larger set."""
        self._grid_scope = None if scope is None else np.asarray(scope)

    def query_box(self, box_lo: np.ndarray, box_hi: np.ndarray) -> np.ndarray | None:
        """Indices of cached-grid points inside [box_lo, box_hi] (inclusive),
        mapped through the grid's scope; ``None`` when no grid is cached (the
        caller falls back to a full scan)."""
        if self._grid is None:
            return None
        local = self._grid.points_in_box(box_lo, box_hi)
        if self._grid_scope is None:
            return local
        return self._grid_scope[local]

    # ------------------------------------------------------------------ tree
    def tree_for(self, pos: np.ndarray, mass: np.ndarray, leaf_size: int = 16) -> Octree:
        """The cached octree when still valid for these particles, else a
        fresh build (cached for subsequent calls)."""
        t = self._tree
        if t is not None and t.n_particles == len(pos) and t.leaf_size == leaf_size:
            self.stats.tree_reuses += 1
            return t
        t = Octree.build(pos, mass, leaf_size=leaf_size)
        self.stats.tree_builds += 1
        self._tree = t
        return t

    def cached_order(self, n_total: int) -> np.ndarray | None:
        """The space-filling permutation of a cached structure covering
        exactly ``n_total`` points (octree Morton order, else the grid's
        cell-sorted order); ``None`` when nothing valid is cached."""
        if self._tree is not None and self._tree.n_particles == n_total:
            return self._tree.order
        if (
            self._grid is not None
            and self._grid_scope is None
            and self._grid.n_points == n_total
        ):
            return self._grid.order
        return None

    def stratified_sample(self, n_sample: int, n_total: int) -> np.ndarray | None:
        """Spatially stratified subsample: every k-th particle of a cached
        space-filling order.  ``None`` when nothing valid is cached for
        ``n_total`` points — the caller falls back to random sampling.
        """
        order = self.cached_order(n_total)
        if order is None or n_sample >= n_total:
            return None
        return order[_even_picks(n_total, n_sample)]


@dataclass
class ConcatStratifiedSampler:
    """Stratified sampling over a concatenation of per-rank particle sets.

    The multi-rank analogue of :meth:`SpatialIndex.stratified_sample`: rank
    *r*'s particles occupy rows ``[offset_r, offset_r + counts[r])`` of the
    concatenated array, and ``orders[r]`` is that rank's cached space-filling
    permutation (snapshotted from its :class:`SpatialIndex` *before* a drift
    invalidates it — a permutation stays a spatially coherent visiting order
    even after sub-cell position updates).  Sampling evenly along the chained
    per-rank curves draws from each rank proportionally to its count and
    spatially evenly within it.

    Duck-typed for :func:`repro.fdps.domain.multisection_bounds`'s ``index``
    hook — only :meth:`stratified_sample` is required.
    """

    orders: list[np.ndarray | None]
    counts: list[int]

    def stratified_sample(self, n_sample: int, n_total: int) -> np.ndarray | None:
        if sum(self.counts) != n_total or n_sample >= n_total:
            return None
        if any(o is None for o, c in zip(self.orders, self.counts, strict=True) if c > 0):
            return None
        offsets = np.concatenate([[0], np.cumsum(self.counts)])[:-1]
        chained = np.concatenate(
            [off + o for off, o, c in zip(offsets, self.orders, self.counts, strict=True) if c > 0]
        )
        return chained[_even_picks(n_total, n_sample)]


def _even_picks(n_total: int, n_sample: int) -> np.ndarray:
    # Evenly spaced positions along the whole curve — a plain stride
    # would truncate the tail whenever n_total/n_sample isn't integral,
    # spatially biasing the sample toward the curve's start.
    return np.linspace(0, n_total - 1, n_sample).astype(np.int64)


def _same_scope(a: np.ndarray | None, b: np.ndarray | None) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return len(a) == len(b) and (a is b or bool(np.array_equal(a, b)))
