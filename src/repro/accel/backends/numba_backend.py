"""Numba-JIT backend: scalar-loop kernels, parallel over targets.

The kernels below are the scalar loops PIKG would emit for a CPU ISA —
one target per thread (``prange``), sources streamed through registers, no
(n_t, n_s) temporaries at all.  The density and force searches walk the
cell grid directly (27-cell stencil, binary search into the sorted keys)
instead of materializing the candidate edge list, which removes the
largest per-step transient entirely.

The module imports *without* numba: every kernel is plain Python that
:func:`_jit` passes through untouched when numba is missing, so the logic
is unit-testable in a bare environment (``NumbaBackend(force_python=True)``
on tiny particle counts).  Constructing the backend without numba and
without ``force_python`` raises
:class:`~repro.accel.backends.base.BackendUnavailable`, which the registry
turns into a logged fallback to ``numpy``.

Scalar-loop accumulation reassociates sums relative to the vectorized
reference (and ``fastmath`` allows further reordering), so agreement with
``numpy`` is to tight tolerance (~1e-13 relative), not bit-exact — the
parity tests pin 1e-10.
"""

from __future__ import annotations

import numpy as np

from repro.accel.backends.base import BackendUnavailable, DensityGatherState
from repro.accel.backends.numpy_backend import (  # repro-lint: disable=backend-purity -- numpy is the always-available reference backend; numba subclasses it to inherit the fallback paths
    NumpyBackend,
)
from repro.sph.kernels import CubicSpline
from repro.sph.neighbors import NeighborGrid
from repro.util.constants import GRAV_CONST

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    HAVE_NUMBA = True
    prange = _numba.prange

    def _jit(fn):
        return _numba.njit(cache=True, fastmath=True)(fn)

    def _pjit(fn):
        return _numba.njit(cache=True, fastmath=True, parallel=True)(fn)

except ImportError:
    HAVE_NUMBA = False
    prange = range

    def _jit(fn):
        return fn

    def _pjit(fn):
        return fn


_SIGMA_CUBIC = 8.0 / np.pi


@_jit
def _w_cubic(q):
    if q < 0.5:
        return 1.0 - 6.0 * q * q + 6.0 * q * q * q
    if q < 1.0:
        t = 1.0 - q
        return 2.0 * t * t * t
    return 0.0


@_jit
def _dw_cubic(q):
    if q < 0.5:
        return -12.0 * q + 18.0 * q * q
    if q < 1.0:
        t = 1.0 - q
        return -6.0 * t * t
    return 0.0


@_jit
def _bisect_left(a, v):
    lo, hi = 0, len(a)
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] < v:
            lo = mid + 1
        else:
            hi = mid
    return lo


@_jit
def _bisect_right(a, v):
    lo, hi = 0, len(a)
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] <= v:
            lo = mid + 1
        else:
            hi = mid
    return lo


# --------------------------------------------------------------------- gravity
@_pjit
def _grav_tile_f64(tp, te, sp, sm, se, exclude_self, g):
    n_t = tp.shape[0]
    n_s = sp.shape[0]
    acc = np.zeros((n_t, 3))
    for i in prange(n_t):
        xi, yi, zi = tp[i, 0], tp[i, 1], tp[i, 2]
        e2 = te[i] * te[i]
        ax = 0.0
        ay = 0.0
        az = 0.0
        for j in range(n_s):
            dx = xi - sp[j, 0]
            dy = yi - sp[j, 1]
            dz = zi - sp[j, 2]
            r2 = dx * dx + dy * dy + dz * dz
            if exclude_self and r2 <= 0.0:
                continue
            s = r2 + e2 + se[j] * se[j]
            if s <= 0.0:
                continue
            w = sm[j] / (s * np.sqrt(s))
            ax += w * dx
            ay += w * dy
            az += w * dz
        acc[i, 0] = -g * ax
        acc[i, 1] = -g * ay
        acc[i, 2] = -g * az
    return acc


@_pjit
def _grav_tile_f32(tp, te, sp, sm, se, exclude_self):
    """float32 arithmetic, float64 accumulation (mixed precision, Sec. 4.3)."""
    n_t = tp.shape[0]
    n_s = sp.shape[0]
    acc = np.zeros((n_t, 3))
    for i in prange(n_t):
        xi, yi, zi = tp[i, 0], tp[i, 1], tp[i, 2]
        e2 = te[i] * te[i]
        ax = 0.0
        ay = 0.0
        az = 0.0
        for j in range(n_s):
            dx = xi - sp[j, 0]
            dy = yi - sp[j, 1]
            dz = zi - sp[j, 2]
            r2 = dx * dx + dy * dy + dz * dz
            if exclude_self and r2 <= np.float32(0.0):
                continue
            s = r2 + e2 + se[j] * se[j]
            if s <= np.float32(0.0):
                continue
            w = sm[j] / (s * np.sqrt(s))
            ax += w * dx
            ay += w * dy
            az += w * dz
        acc[i, 0] = -ax
        acc[i, 1] = -ay
        acc[i, 2] = -az
    return acc


# --------------------------------------------------------------------- density
@_pjit
def _density_wsum(pos, h, lox, loy, loz, cell, d0, d1, d2, order, sorted_keys):
    n = pos.shape[0]
    wsum = np.zeros(n)
    for i in prange(n):
        hi = h[i]
        hi2 = hi * hi
        wnorm = _SIGMA_CUBIC / (hi * hi * hi)
        cx = min(max(int((pos[i, 0] - lox) / cell), 0), d0 - 1)
        cy = min(max(int((pos[i, 1] - loy) / cell), 0), d1 - 1)
        cz = min(max(int((pos[i, 2] - loz) / cell), 0), d2 - 1)
        acc = 0.0
        for ox in range(-1, 2):
            x = cx + ox
            if x < 0 or x >= d0:
                continue
            for oy in range(-1, 2):
                y = cy + oy
                if y < 0 or y >= d1:
                    continue
                for oz in range(-1, 2):
                    z = cz + oz
                    if z < 0 or z >= d2:
                        continue
                    key = (x * d1 + y) * d2 + z
                    s0 = _bisect_left(sorted_keys, key)
                    s1 = _bisect_right(sorted_keys, key)
                    for s in range(s0, s1):
                        jj = order[s]
                        dx = pos[i, 0] - pos[jj, 0]
                        dy = pos[i, 1] - pos[jj, 1]
                        dz = pos[i, 2] - pos[jj, 2]
                        r2 = dx * dx + dy * dy + dz * dz
                        if r2 < hi2:
                            q = min(np.sqrt(r2) / hi, 1.0)
                            acc += wnorm * _w_cubic(q)
        wsum[i] = acc
    return wsum


@_pjit
def _density_counts(pos, h, lox, loy, loz, cell, d0, d1, d2, order, sorted_keys):
    n = pos.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    for i in prange(n):
        hi2 = h[i] * h[i]
        cx = min(max(int((pos[i, 0] - lox) / cell), 0), d0 - 1)
        cy = min(max(int((pos[i, 1] - loy) / cell), 0), d1 - 1)
        cz = min(max(int((pos[i, 2] - loz) / cell), 0), d2 - 1)
        c = 0
        for ox in range(-1, 2):
            x = cx + ox
            if x < 0 or x >= d0:
                continue
            for oy in range(-1, 2):
                y = cy + oy
                if y < 0 or y >= d1:
                    continue
                for oz in range(-1, 2):
                    z = cz + oz
                    if z < 0 or z >= d2:
                        continue
                    key = (x * d1 + y) * d2 + z
                    s0 = _bisect_left(sorted_keys, key)
                    s1 = _bisect_right(sorted_keys, key)
                    for s in range(s0, s1):
                        jj = order[s]
                        dx = pos[i, 0] - pos[jj, 0]
                        dy = pos[i, 1] - pos[jj, 1]
                        dz = pos[i, 2] - pos[jj, 2]
                        if dx * dx + dy * dy + dz * dz < hi2:
                            c += 1
        counts[i] = c
    return counts


@_pjit
def _density_finalize(
    pos, h, mass, offsets,
    lox, loy, loz, cell, d0, d1, d2, order, sorted_keys,
    pi, pj, pr, dens, drho_dh,
):
    n = pos.shape[0]
    for i in prange(n):
        hi = h[i]
        hi2 = hi * hi
        h3 = hi * hi * hi
        wnorm = _SIGMA_CUBIC / h3
        dwnorm = -_SIGMA_CUBIC / (h3 * hi)
        cx = min(max(int((pos[i, 0] - lox) / cell), 0), d0 - 1)
        cy = min(max(int((pos[i, 1] - loy) / cell), 0), d1 - 1)
        cz = min(max(int((pos[i, 2] - loz) / cell), 0), d2 - 1)
        cur = offsets[i]
        rho = 0.0
        drho = 0.0
        for ox in range(-1, 2):
            x = cx + ox
            if x < 0 or x >= d0:
                continue
            for oy in range(-1, 2):
                y = cy + oy
                if y < 0 or y >= d1:
                    continue
                for oz in range(-1, 2):
                    z = cz + oz
                    if z < 0 or z >= d2:
                        continue
                    key = (x * d1 + y) * d2 + z
                    s0 = _bisect_left(sorted_keys, key)
                    s1 = _bisect_right(sorted_keys, key)
                    for s in range(s0, s1):
                        jj = order[s]
                        dx = pos[i, 0] - pos[jj, 0]
                        dy = pos[i, 1] - pos[jj, 1]
                        dz = pos[i, 2] - pos[jj, 2]
                        r2 = dx * dx + dy * dy + dz * dz
                        if r2 < hi2:
                            r = np.sqrt(r2)
                            q = min(r / hi, 1.0)
                            w = _w_cubic(q)
                            rho += mass[jj] * wnorm * w
                            drho += mass[jj] * dwnorm * (3.0 * w + q * _dw_cubic(q))
                            pi[cur] = i
                            pj[cur] = jj
                            pr[cur] = r
                            cur += 1
        dens[i] = rho
        drho_dh[i] = drho


# ----------------------------------------------------------------- hydro force
@_pjit
def _half_pair_counts(pos, h, lox, loy, loz, cell, d0, d1, d2, order, sorted_keys):
    n = pos.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    for i in prange(n):
        hi = h[i]
        cx = min(max(int((pos[i, 0] - lox) / cell), 0), d0 - 1)
        cy = min(max(int((pos[i, 1] - loy) / cell), 0), d1 - 1)
        cz = min(max(int((pos[i, 2] - loz) / cell), 0), d2 - 1)
        c = 0
        for ox in range(-1, 2):
            x = cx + ox
            if x < 0 or x >= d0:
                continue
            for oy in range(-1, 2):
                y = cy + oy
                if y < 0 or y >= d1:
                    continue
                for oz in range(-1, 2):
                    z = cz + oz
                    if z < 0 or z >= d2:
                        continue
                    key = (x * d1 + y) * d2 + z
                    s0 = _bisect_left(sorted_keys, key)
                    s1 = _bisect_right(sorted_keys, key)
                    for s in range(s0, s1):
                        jj = order[s]
                        if jj <= i:
                            continue
                        dx = pos[i, 0] - pos[jj, 0]
                        dy = pos[i, 1] - pos[jj, 1]
                        dz = pos[i, 2] - pos[jj, 2]
                        hm = max(hi, h[jj])
                        if dx * dx + dy * dy + dz * dz < hm * hm:
                            c += 1
        counts[i] = c
    return counts


@_pjit
def _half_pair_fill(
    pos, h, offsets, lox, loy, loz, cell, d0, d1, d2, order, sorted_keys, pi, pj, pr
):
    n = pos.shape[0]
    for i in prange(n):
        hi = h[i]
        cx = min(max(int((pos[i, 0] - lox) / cell), 0), d0 - 1)
        cy = min(max(int((pos[i, 1] - loy) / cell), 0), d1 - 1)
        cz = min(max(int((pos[i, 2] - loz) / cell), 0), d2 - 1)
        cur = offsets[i]
        for ox in range(-1, 2):
            x = cx + ox
            if x < 0 or x >= d0:
                continue
            for oy in range(-1, 2):
                y = cy + oy
                if y < 0 or y >= d1:
                    continue
                for oz in range(-1, 2):
                    z = cz + oz
                    if z < 0 or z >= d2:
                        continue
                    key = (x * d1 + y) * d2 + z
                    s0 = _bisect_left(sorted_keys, key)
                    s1 = _bisect_right(sorted_keys, key)
                    for s in range(s0, s1):
                        jj = order[s]
                        if jj <= i:
                            continue
                        dx = pos[i, 0] - pos[jj, 0]
                        dy = pos[i, 1] - pos[jj, 1]
                        dz = pos[i, 2] - pos[jj, 2]
                        r2 = dx * dx + dy * dy + dz * dz
                        hm = max(hi, h[jj])
                        if r2 < hm * hm:
                            pi[cur] = i
                            pj[cur] = jj
                            pr[cur] = np.sqrt(r2)
                            cur += 1


@_jit
def _hydro_force_eval(
    i_arr, j_arr, r_arr, pos, vel, mass, h, dens, pres, csnd, omega,
    fbals, use_balsara, alpha, beta, acc, du_dt, v_signal,
):
    for p in range(len(i_arr)):
        i = i_arr[p]
        j = j_arr[p]
        r = r_arr[p]
        dx = pos[i, 0] - pos[j, 0]
        dy = pos[i, 1] - pos[j, 1]
        dz = pos[i, 2] - pos[j, 2]
        vx = vel[i, 0] - vel[j, 0]
        vy = vel[i, 1] - vel[j, 1]
        vz = vel[i, 2] - vel[j, 2]
        vdotr = vx * dx + vy * dy + vz * dz

        hi = h[i]
        hj = h[j]
        rs_i = max(r, 1e-12 * max(hi, 1e-300))
        rs_j = max(r, 1e-12 * max(hj, 1e-300))
        qi = min(r / hi, 1.0)
        qj = min(r / hj, 1.0)
        gf_i = _SIGMA_CUBIC / (hi * hi * hi) * _dw_cubic(qi) / (rs_i * hi)
        gf_j = _SIGMA_CUBIC / (hj * hj * hj) * _dw_cubic(qj) / (rs_j * hj)
        gf_bar = 0.5 * (gf_i + gf_j)

        rho_i = max(dens[i], 1e-300)
        rho_j = max(dens[j], 1e-300)
        h_bar = 0.5 * (hi + hj)
        rho_bar = 0.5 * (rho_i + rho_j)
        c_bar = 0.5 * (csnd[i] + csnd[j])
        visc = 0.0
        if vdotr < 0.0:
            mu = h_bar * vdotr / (r * r + 0.01 * h_bar * h_bar)
            fb = 0.5 * (fbals[i] + fbals[j]) if use_balsara else 1.0
            visc = fb * (-alpha * c_bar * mu + beta * mu * mu) / rho_bar

        p_term_i = pres[i] / (omega[i] * rho_i * rho_i)
        p_term_j = pres[j] / (omega[j] * rho_j * rho_j)
        scal = p_term_i * gf_i + p_term_j * gf_j + visc * gf_bar
        wi = mass[j] * scal
        wj = mass[i] * scal
        acc[i, 0] -= wi * dx
        acc[i, 1] -= wi * dy
        acc[i, 2] -= wi * dz
        acc[j, 0] += wj * dx
        acc[j, 1] += wj * dy
        acc[j, 2] += wj * dz

        du_visc = 0.5 * visc * vdotr * gf_bar
        du_dt[i] += mass[j] * (p_term_i * vdotr * gf_i + du_visc)
        du_dt[j] += mass[i] * (p_term_j * vdotr * gf_j + du_visc)

        w_rel = vdotr / max(r, 1e-300) if r > 0 else 0.0
        vsig = csnd[i] + csnd[j] - 3.0 * min(w_rel, 0.0)
        if vsig > v_signal[i]:
            v_signal[i] = vsig
        if vsig > v_signal[j]:
            v_signal[j] = vsig


def _grid_args(grid: NeighborGrid):
    return (
        float(grid.lo[0]), float(grid.lo[1]), float(grid.lo[2]),
        float(grid.cell),
        int(grid.dims[0]), int(grid.dims[1]), int(grid.dims[2]),
        grid.order, grid.sorted_keys,
    )


class _NumbaDensityGather(DensityGatherState):
    """Cell-walk gather: no candidate list is ever materialized."""

    def __init__(self, grid: NeighborGrid, pos: np.ndarray, kernel) -> None:
        self.grid = grid
        self.pos = np.ascontiguousarray(pos, dtype=np.float64)
        self.kernel = kernel
        self.n = len(pos)

    def weight_sum(self, h: np.ndarray) -> np.ndarray:
        return _density_wsum(self.pos, h, *_grid_args(self.grid))

    def finalize(self, h: np.ndarray, mass: np.ndarray):
        args = _grid_args(self.grid)
        counts = _density_counts(self.pos, h, *args)
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        total = int(offsets[-1])
        pi = np.empty(total, dtype=np.int64)
        pj = np.empty(total, dtype=np.int64)
        pr = np.empty(total)
        dens = np.empty(self.n)
        drho_dh = np.empty(self.n)
        _density_finalize(
            self.pos, h, np.ascontiguousarray(mass, dtype=np.float64),
            offsets[:-1], *args, pi, pj, pr, dens, drho_dh,
        )
        return dens, drho_dh, counts, (pi, pj, pr)


class NumbaBackend(NumpyBackend):
    """JIT scalar-loop kernels (``@njit(parallel=True, fastmath=True)``).

    Kernels are specialized to the library's default
    :class:`~repro.sph.kernels.CubicSpline`; a custom SPH kernel object
    falls back to the inherited numpy path for the SPH sums (gravity is
    kernel-independent and always runs jitted).
    """

    name = "numba"

    def __init__(self, force_python: bool = False) -> None:
        if not HAVE_NUMBA and not force_python:
            raise BackendUnavailable(
                "backend 'numba' requires the numba package (not importable)"
            )

    # ------------------------------------------------------------- gravity
    def grav_tile(
        self, target_pos, target_eps, source_pos, source_mass, source_eps,
        exclude_self: bool = False, mixed: bool = False, g: float = GRAV_CONST,
    ) -> np.ndarray:
        tp = np.ascontiguousarray(target_pos, dtype=np.float64)
        sp = np.ascontiguousarray(source_pos, dtype=np.float64)
        if len(tp) == 0 or len(sp) == 0:
            return np.zeros((len(tp), 3))
        if mixed:
            origin = tp.mean(axis=0)
            acc = _grav_tile_f32(
                (tp - origin).astype(np.float32),
                np.asarray(target_eps, dtype=np.float32),
                (sp - origin).astype(np.float32),
                np.asarray(source_mass, dtype=np.float32),
                np.asarray(source_eps, dtype=np.float32),
                exclude_self,
            )
            return g * acc
        return _grav_tile_f64(
            tp,
            np.ascontiguousarray(target_eps, dtype=np.float64),
            sp,
            np.ascontiguousarray(source_mass, dtype=np.float64),
            np.ascontiguousarray(source_eps, dtype=np.float64),
            exclude_self,
            float(g),
        )

    # ------------------------------------------------------------- density
    def density_gather(self, grid, pos, kernel) -> DensityGatherState:
        if not isinstance(kernel, CubicSpline):
            return super().density_gather(grid, pos, kernel)
        return _NumbaDensityGather(grid, pos, kernel)

    # --------------------------------------------------------- hydro force
    def hydro_force_pairs(
        self, pos, vel, mass, h, dens, pres, csnd, omega, balsara,
        alpha_visc, beta_visc, kernel, grid=None, pairs=None,
    ):
        if not isinstance(kernel, CubicSpline):
            return super().hydro_force_pairs(
                pos, vel, mass, h, dens, pres, csnd, omega, balsara,
                alpha_visc, beta_visc, kernel, grid=grid, pairs=pairs,
            )
        pos = np.ascontiguousarray(pos, dtype=np.float64)
        n = len(pos)
        if pairs is not None:
            i, j, r = pairs
        else:
            r_max = float(h.max())
            if grid is None or not grid.covers(r_max) or grid.n_points != n:
                grid = NeighborGrid.build(pos, r_max)
            args = _grid_args(grid)
            counts = _half_pair_counts(pos, h, *args)
            offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
            total = int(offsets[-1])
            i = np.empty(total, dtype=np.int64)
            j = np.empty(total, dtype=np.int64)
            r = np.empty(total)
            _half_pair_fill(pos, h, offsets[:-1], *args, i, j, r)
        if len(i) == 0:
            return np.zeros((n, 3)), np.zeros(n), csnd.copy(), (i, j, r)
        acc = np.zeros((n, 3))
        du_dt = np.zeros(n)
        v_signal = csnd.astype(np.float64).copy()
        use_balsara = balsara is not None
        fbals = balsara if use_balsara else np.ones(0)
        _hydro_force_eval(
            i, j, r,
            pos,
            np.ascontiguousarray(vel, dtype=np.float64),
            np.ascontiguousarray(mass, dtype=np.float64),
            np.ascontiguousarray(h, dtype=np.float64),
            np.ascontiguousarray(dens, dtype=np.float64),
            np.ascontiguousarray(pres, dtype=np.float64),
            np.ascontiguousarray(csnd, dtype=np.float64),
            np.ascontiguousarray(omega, dtype=np.float64),
            np.ascontiguousarray(fbals, dtype=np.float64),
            use_balsara, float(alpha_visc), float(beta_visc),
            acc, du_dt, v_signal,
        )
        return acc, du_dt, v_signal, (i, j, r)
