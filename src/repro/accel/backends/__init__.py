"""Pluggable compute-backend registry for the hot interaction kernels.

The paper's performance story rests on PIKG generating
architecture-specific interaction kernels behind one interface (Sec. 3.5,
Table 4) — the same DSL emits SVE, AVX and CUDA loops.  This package is
that seam for the reproduction: every hot kernel of the force pipeline
(pairwise/tree-walk gravity, SPH density gather, half-pair hydro scatter)
is dispatched through a :class:`~repro.accel.backends.base.KernelBackend`,
and implementations register here by name:

``numpy``
    The tuned vectorized reference (default) — bincount scatter reduction,
    compacted candidate lists, budget-sized gravity tiles.
``numba``
    ``@njit(parallel=True, fastmath=True)`` scalar-loop kernels with
    grid-walk neighbor iteration; import-gated — selecting it without
    numba installed logs a warning and falls back to ``numpy``.
``pikg``
    Kernels *generated* from the PIKG DSL
    (:func:`repro.pikg.codegen.generate_numba_kernel`), jitted when numba
    is importable, pure Python otherwise.
``seed``
    The pre-registry kernels frozen for benchmarking
    (``benchmarks/bench_backend_kernels.py`` reports speedups against it).

Selection: an explicit name (config field ``cfg.backend``, threaded by
:class:`~repro.accel.ForceEngine` and
:class:`~repro.fdps.distributed.DistributedGravity`) wins; otherwise the
``REPRO_BACKEND`` environment variable; otherwise ``numpy``.  Instances
are process-wide singletons — backends hold no per-simulation state (all
caching lives in :class:`~repro.accel.SpatialIndex` and per-solve gather
objects), so sharing them is safe.
"""

from __future__ import annotations

import os

from repro.accel.backends.base import BackendUnavailable, DensityGatherState, KernelBackend
from repro.util.logging import get_logger

_log = get_logger("accel.backends")

#: Environment variable consulted when no explicit backend is requested.
ENV_VAR = "REPRO_BACKEND"
DEFAULT_BACKEND = "numpy"

_FACTORIES: dict[str, type[KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_WARNED: set[str] = set()


def register_backend(name: str, factory, replace: bool = False) -> None:
    """Register a backend factory (a zero-argument callable, typically the
    class) under ``name``.  The factory may raise
    :class:`BackendUnavailable` when its toolchain is missing; selection
    then falls back to the default with a logged warning."""
    key = name.lower()
    if key in _FACTORIES and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def registered_backends() -> list[str]:
    """All registered names, available or not."""
    return sorted(_FACTORIES)


def available_backends() -> list[str]:
    """Registered backends whose construction succeeds in this environment."""
    out = []
    for name in sorted(_FACTORIES):
        try:
            _instance(name)
        except BackendUnavailable:
            continue
        out.append(name)
    return out


def _instance(key: str) -> KernelBackend:
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]


def get_backend(name: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve a backend: explicit name > ``$REPRO_BACKEND`` > ``numpy``.

    Passing an instance returns it unchanged (so call sites can thread a
    resolved backend through without re-lookup).  An unknown name raises;
    a known-but-unavailable one (e.g. ``numba`` without numba installed)
    logs a warning once and returns the default.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    key = name.lower()
    if key not in _FACTORIES:
        raise ValueError(
            f"unknown backend {name!r}; registered: {registered_backends()}"
        )
    try:
        return _instance(key)
    except BackendUnavailable as exc:
        if key not in _WARNED:
            _WARNED.add(key)
            _log.warning("backend %r unavailable (%s); falling back to %r",
                         key, exc, DEFAULT_BACKEND)
        return _instance(DEFAULT_BACKEND)


def _register_builtins() -> None:
    from repro.accel.backends.numba_backend import NumbaBackend
    from repro.accel.backends.numpy_backend import NumpyBackend, SeedBackend
    from repro.accel.backends.pikg_backend import PikgBackend

    register_backend("numpy", NumpyBackend)
    register_backend("seed", SeedBackend)
    register_backend("numba", NumbaBackend)
    register_backend("pikg", PikgBackend)


_register_builtins()

__all__ = [
    "BackendUnavailable",
    "DensityGatherState",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
]
