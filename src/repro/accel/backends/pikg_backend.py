"""PIKG backend: DSL-generated kernels driving the production fast path.

The production code never hand-writes interaction kernels — PIKG emits them
per ISA from the DSL (Sec. 3.5).  This backend does the same for the
reproduction: the gravity tile and the cubic-spline density gather are
*generated* from :data:`~repro.pikg.dsl.GRAVITY_DSL` /
:data:`~repro.pikg.dsl.CUBIC_DENSITY_DSL` through
:func:`~repro.pikg.codegen.generate_numba_kernel` and plugged into the same
registry slots the hand-written backends fill.  Kernels are numba-jitted
when numba is importable and run as plain Python otherwise (correct but
slow — fine for the parity tests a bare environment runs).

Coverage follows what the DSL expresses: the hydro force (whose half-pair
scatter structure the tile DSL does not model) and the mixed-precision
gravity variant inherit the numpy reference.  The density gather feeds the
generated kernel the *unfiltered* compact candidate list: pairs beyond the
support radius contribute exactly zero because the DSL encodes the cutoff
branch-free (``max(1-q, 0)``), the same trick the production PIKG uses
instead of per-lane branches.
"""

from __future__ import annotations

import numpy as np

from repro.accel.backends.numpy_backend import (  # repro-lint: disable=backend-purity -- numpy is the always-available reference backend; the PIKG backend falls back to it when numba is absent
    NumpyBackend,
    _NumpyDensityGather,
)
from repro.pikg.codegen import generate_numba_kernel
from repro.pikg.dsl import CUBIC_DENSITY_DSL, GRAVITY_DSL, parse_kernel
from repro.sph.kernels import CubicSpline
from repro.util.constants import GRAV_CONST


class _PikgDensityGather(_NumpyDensityGather):
    """Gather sweeps through the generated density kernel.

    Finalization (grad-h sums, pair-list emission) inherits the reference
    implementation — the DSL covers the density sum itself.
    """

    def __init__(self, grid, pos, kernel, pikg_kernel) -> None:
        super().__init__(grid, pos, kernel)
        self._pikg = pikg_kernel
        self._pos = np.asarray(pos, dtype=np.float64)
        self._ones = np.ones(self.n)

    def weight_sum(self, h: np.ndarray) -> np.ndarray:
        out = self._pikg(
            {"xi": self._pos, "hinv_i": 1.0 / h},
            {"xj": self._pos, "m_j": self._ones},
            self.ci, self.cj,
        )
        return out["rho"]


class PikgBackend(NumpyBackend):
    """Kernels generated from the PIKG DSL (numba-jitted when available)."""

    name = "pikg"

    def __init__(self) -> None:
        self._grav = generate_numba_kernel(
            parse_kernel(GRAVITY_DSL, name="pikg_gravity"), layout="tile"
        )
        self._dens = generate_numba_kernel(
            parse_kernel(CUBIC_DENSITY_DSL, name="pikg_density"), layout="pairs"
        )

    @property
    def jitted(self) -> bool:
        """True when the generated kernels compiled through numba."""
        return bool(self._grav.jitted)

    # ------------------------------------------------------------- gravity
    def grav_tile(
        self, target_pos, target_eps, source_pos, source_mass, source_eps,
        exclude_self: bool = False, mixed: bool = False, g: float = GRAV_CONST,
    ) -> np.ndarray:
        te = np.asarray(target_eps, dtype=np.float64)
        se = np.asarray(source_eps, dtype=np.float64)
        if mixed or (np.any(te <= 0.0) and np.any(se <= 0.0)):
            # The DSL kernel has no coincident-pair mask: rsqrt(0) goes NaN
            # unless nonzero softening keeps r2 > 0 (production always has
            # some).  Whenever softening cannot guarantee that on both
            # sides — and for the float32 variant — fall back to the
            # reference implementation.
            return super().grav_tile(
                target_pos, target_eps, source_pos, source_mass, source_eps,
                exclude_self=exclude_self, mixed=mixed, g=g,
            )
        out = self._grav(
            {"xi": target_pos, "eps2_i": te**2},
            {"xj": source_pos, "m_j": source_mass, "eps2_j": se**2},
        )
        return g * out["f"]

    # ------------------------------------------------------------- density
    def density_gather(self, grid, pos, kernel):
        if not isinstance(kernel, CubicSpline):
            return super().density_gather(grid, pos, kernel)
        return _PikgDensityGather(grid, pos, kernel, self._dens)
